package main

import (
	"errors"
	"fmt"
	"os"
	"strings"

	"profitlb/internal/core"
	"profitlb/internal/obs"
)

// obsSession wires the -metrics/-trace/-pprof flags into one
// observability scope for a CLI run: an in-memory registry dumped to
// -metrics on Close, a JSONL trace stream written as events arrive, and
// an optional pprof+metrics HTTP server. With none of the flags given
// the session is inert and Scope() returns nil — the run stays on the
// uninstrumented (bit-identical) path.
type obsSession struct {
	scope       *obs.Scope
	metricsPath string
	traceFile   *os.File
	jsonl       *obs.JSONL
	stopPprof   func() error
}

// openObs builds the session from the three flag values.
func openObs(metricsPath, tracePath, pprofAddr string) (*obsSession, error) {
	s := &obsSession{metricsPath: metricsPath}
	if metricsPath == "" && tracePath == "" && pprofAddr == "" {
		return s, nil
	}
	reg := obs.NewRegistry()
	var sink obs.Sink
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, fmt.Errorf("trace file: %w", err)
		}
		s.traceFile = f
		s.jsonl = obs.NewJSONL(f)
		sink = s.jsonl
	}
	s.scope = obs.NewScope(reg, sink)
	if pprofAddr != "" {
		addr, stop, err := obs.Serve(pprofAddr, reg)
		if err != nil {
			_ = s.Close()
			return nil, fmt.Errorf("pprof server: %w", err)
		}
		s.stopPprof = stop
		fmt.Fprintf(os.Stderr, "profitlb: serving pprof + metrics on http://%s/debug/pprof/ and /metrics\n", addr)
	}
	return s, nil
}

// Scope returns the scope to thread through the run (nil when no
// observability flag was given).
func (s *obsSession) Scope() *obs.Scope { return s.scope }

// Close flushes the session: the registry is dumped to the -metrics
// path (Prometheus text, or JSON when the path ends in .json), the
// trace file is closed with its sticky write error surfaced, and the
// pprof server is stopped. Idempotent, so it can be deferred for error
// paths and still called explicitly to collect the flush error.
func (s *obsSession) Close() error {
	var errs []error
	if s.metricsPath != "" && s.scope != nil {
		path := s.metricsPath
		s.metricsPath = ""
		f, err := os.Create(path)
		if err != nil {
			errs = append(errs, fmt.Errorf("metrics file: %w", err))
		} else {
			if strings.HasSuffix(path, ".json") {
				err = s.scope.Metrics.WriteJSON(f)
			} else {
				err = s.scope.Metrics.WritePrometheus(f)
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				errs = append(errs, fmt.Errorf("metrics file: %w", err))
			}
		}
	}
	if s.jsonl != nil {
		if err := s.jsonl.Err(); err != nil {
			errs = append(errs, fmt.Errorf("trace stream: %w", err))
		}
		s.jsonl = nil
	}
	if s.traceFile != nil {
		if err := s.traceFile.Close(); err != nil {
			errs = append(errs, fmt.Errorf("trace file: %w", err))
		}
		s.traceFile = nil
	}
	if s.stopPprof != nil {
		if err := s.stopPprof(); err != nil {
			errs = append(errs, fmt.Errorf("pprof server: %w", err))
		}
		s.stopPprof = nil
	}
	return errors.Join(errs...)
}

// attachObs hands the scope to a planner that carries a search engine;
// baselines have nothing to report and are left alone.
func attachObs(p core.Planner, sc *obs.Scope) {
	switch pp := p.(type) {
	case *core.Optimized:
		pp.Obs = sc
	case *core.LevelSearch:
		pp.Obs = sc
	}
}

package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// obsScenario writes a scaffold scenario into a temp dir and returns
// its path plus the dir for the observability output files.
func obsScenario(t *testing.T) (cfgPath, dir string) {
	t.Helper()
	scaffoldOut, err := capture(t, func() error { return run([]string{"scaffold"}) })
	if err != nil {
		t.Fatal(err)
	}
	dir = t.TempDir()
	cfgPath = dir + "/s.json"
	if err := os.WriteFile(cfgPath, []byte(scaffoldOut), 0o644); err != nil {
		t.Fatal(err)
	}
	return cfgPath, dir
}

func TestCmdSimulateObsFiles(t *testing.T) {
	cfgPath, dir := obsScenario(t)
	metricsPath := dir + "/metrics.txt"
	tracePath := dir + "/trace.jsonl"
	if _, err := capture(t, func() error {
		return run([]string{"simulate", "-config", cfgPath, "-faults", "storm", "-seed", "42",
			"-resilient", "-parallel", "2", "-metrics", metricsPath, "-trace", tracePath})
	}); err != nil {
		t.Fatal(err)
	}

	metrics, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sim_slots_total", "sim_plan_seconds", "resilient_commits_total", "core_lp_solves_total"} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics file missing series %q:\n%.400s", want, metrics)
		}
	}

	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(trace), "\n"), "\n")
	if len(lines) < 24 { // at least one event per slot of the 24-slot horizon
		t.Fatalf("trace has %d lines, want >= 24", len(lines))
	}
	kinds := map[string]bool{}
	for i, ln := range lines {
		var ev struct {
			Kind string `json:"kind"`
			Slot int    `json:"slot"`
		}
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("trace line %d is not valid JSON: %v\n%s", i, err, ln)
		}
		if ev.Kind == "" {
			t.Fatalf("trace line %d has no kind: %s", i, ln)
		}
		kinds[ev.Kind] = true
	}
	for _, want := range []string{"slot-start", "slot-end", "plan-committed", "tier-commit"} {
		if !kinds[want] {
			t.Fatalf("trace stream has no %q event; kinds seen: %v", want, kinds)
		}
	}
}

func TestCmdSimulateObsJSONMetrics(t *testing.T) {
	cfgPath, dir := obsScenario(t)
	metricsPath := dir + "/metrics.json"
	if _, err := capture(t, func() error {
		return run([]string{"simulate", "-config", cfgPath, "-metrics", metricsPath})
	}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters   map[string]int64   `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]any     `json:"histograms"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf(".json metrics file is not valid JSON: %v\n%.400s", err, raw)
	}
	var slots int64
	for id, v := range snap.Counters {
		if strings.HasPrefix(id, "sim_slots_total") {
			slots += v
		}
	}
	if slots != 24 {
		t.Fatalf("sim_slots_total = %d, want 24 (one per slot of the horizon)", slots)
	}
}

// TestCmdSimulateObsOutputUnchanged asserts the CLI-level face of the
// bit-identical guarantee: the report printed with observability
// enabled matches the one printed without it, byte for byte.
func TestCmdSimulateObsOutputUnchanged(t *testing.T) {
	cfgPath, dir := obsScenario(t)
	plain, err := capture(t, func() error {
		return run([]string{"simulate", "-config", cfgPath, "-faults", "storm", "-seed", "9", "-resilient"})
	})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := capture(t, func() error {
		return run([]string{"simulate", "-config", cfgPath, "-faults", "storm", "-seed", "9", "-resilient",
			"-metrics", dir + "/m.txt", "-trace", dir + "/t.jsonl"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain != observed {
		t.Fatal("simulate report changed when -metrics/-trace were enabled")
	}
}

func TestCmdChaosObs(t *testing.T) {
	dir := t.TempDir()
	metricsPath := dir + "/chaos.json"
	tracePath := dir + "/chaos.jsonl"
	out, err := capture(t, func() error {
		return run([]string{"chaos", "-seed", "5", "-feeds", "-metrics", metricsPath, "-trace", tracePath})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "RETAINED") {
		t.Fatalf("chaos output unexpected:\n%.300s", out)
	}
	raw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	var fetches int64
	for id, v := range snap.Counters {
		if strings.HasPrefix(id, "feed_fetches_total") {
			fetches += v
		}
	}
	if fetches == 0 {
		t.Fatal("chaos -feeds run recorded no feed fetches")
	}
	if fi, err := os.Stat(tracePath); err != nil || fi.Size() == 0 {
		t.Fatalf("chaos trace file empty or missing: %v", err)
	}
}

func TestCmdSimulatePprofSmoke(t *testing.T) {
	cfgPath, _ := obsScenario(t)
	// Port 0 lets the kernel pick a free port; the server runs for the
	// duration of the command and is stopped by the session Close.
	if _, err := capture(t, func() error {
		return run([]string{"simulate", "-config", cfgPath, "-pprof", "127.0.0.1:0"})
	}); err != nil {
		t.Fatalf("simulate -pprof failed: %v", err)
	}
	if err := run([]string{"simulate", "-config", cfgPath, "-pprof", "not-an-addr:port:extra"}); err == nil {
		t.Fatal("bad -pprof address must error")
	}
}

// Command profitlb runs the paper-reproduction experiments and utilities
// from the command line.
//
// Usage:
//
//	profitlb list                 list registered experiments
//	profitlb run <id>... | all    run experiments (-csv DIR for CSV export)
//	profitlb prices               print the embedded electricity traces
//	profitlb trace [-seed N]      print a workload trace (-stats for summary)
//	profitlb bench [-servers N]   time one planner invocation per planner
//	profitlb scaffold             print an example JSON scenario
//	profitlb simulate -config F   run a JSON scenario and print the report
//	profitlb compare -config F    run a scenario under every planner
//	profitlb analyze -config F    capacity advice + shadow prices
//	profitlb export-lp -config F  dump a slot's dispatch LP (CPLEX format)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"text/tabwriter"
	"time"

	"profitlb/internal/advisor"
	"profitlb/internal/baseline"
	"profitlb/internal/config"
	"profitlb/internal/core"
	"profitlb/internal/exp"
	"profitlb/internal/market"
	"profitlb/internal/sim"
	"profitlb/internal/stats"
	"profitlb/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "profitlb:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return nil
	}
	switch args[0] {
	case "list":
		return cmdList()
	case "run":
		return cmdRun(args[1:])
	case "prices":
		return cmdPrices()
	case "trace":
		return cmdTrace(args[1:])
	case "bench":
		return cmdBench(args[1:])
	case "scaffold":
		return cmdScaffold()
	case "simulate":
		return cmdSimulate(args[1:])
	case "analyze":
		return cmdAnalyze(args[1:])
	case "compare":
		return cmdCompare(args[1:])
	case "export-lp":
		return cmdExportLP(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func usage() {
	fmt.Println(`profitlb — profit-aware load balancing for distributed cloud data centers

commands:
  list                 list registered experiments (one per paper table/figure)
  run <id>... | all    run experiments and print their tables
  prices               print the embedded electricity price traces (Fig. 1)
  trace [-seed N]      print a World-Cup-like workload trace (Fig. 5 generator)
  bench [-servers N]   time one planning call per planner variant
  scaffold             print an example JSON scenario to stdout
  simulate -config F   run a JSON scenario file and print the report
  analyze -config F    capacity advice + shadow prices for a scenario
  compare -config F    run a scenario under every planner
  export-lp -config F  dump one slot's dispatch LP in CPLEX LP format`)
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	path := fs.String("config", "", "path to a scenario JSON file (see 'scaffold')")
	add := fs.Int("add", 2, "expansion candidate size (servers per center)")
	serverCost := fs.Float64("server-cost", 0, "one-time cost per added server ($), for payback")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("analyze: -config is required")
	}
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc, err := config.Load(f)
	if err != nil {
		return err
	}
	adv, err := advisor.Advise(advisor.Config{
		Sim:        sc.SimConfig(),
		AddServers: *add,
		ServerCost: *serverCost,
	})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "scenario %s: baseline profit $%.2f over %d slots\n", sc.Name, adv.BaselineProfit, sc.Slots)
	fmt.Fprintln(w, "CENTER\tGAIN($)\tGAIN/SERVER($)\tSHARE DUAL($)\tPAYBACK(SLOTS)")
	for _, rec := range adv.Recommendations {
		payback := "-"
		if *serverCost > 0 {
			payback = fmt.Sprintf("%.1f", rec.PaybackSlots)
		}
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\t%s\n",
			rec.Name, rec.ProfitGain, rec.GainPerServer, rec.ShareDual, payback)
	}
	return w.Flush()
}

// loadScenario opens and decodes a scenario file given on the flag.
func loadScenario(path string) (*config.Scenario, error) {
	if path == "" {
		return nil, fmt.Errorf("-config is required")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return config.Load(f)
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	path := fs.String("config", "", "path to a scenario JSON file (see 'scaffold')")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := loadScenario(*path)
	if err != nil {
		return err
	}
	planners := []core.Planner{
		core.NewOptimized(),
		core.NewLevelSearch(),
		baseline.NewBalanced(),
		baseline.NewNearest(),
		baseline.NewGreedyProfit(),
		baseline.NewRandom(1),
	}
	reports, err := sim.Compare(sc.SimConfig(), planners...)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "scenario %s: %d slots\n", sc.Name, sc.Slots)
	fmt.Fprintln(w, "PLANNER\tNET PROFIT($)\tVS BEST\tCOST($)")
	best := reports[0].TotalNetProfit()
	for _, r := range reports {
		if r.TotalNetProfit() > best {
			best = r.TotalNetProfit()
		}
	}
	for _, r := range reports {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f%%\t%.2f\n",
			r.Planner, r.TotalNetProfit(), 100*r.TotalNetProfit()/best, r.TotalCost())
	}
	return w.Flush()
}

func cmdExportLP(args []string) error {
	fs := flag.NewFlagSet("export-lp", flag.ContinueOnError)
	path := fs.String("config", "", "path to a scenario JSON file (see 'scaffold')")
	slot := fs.Int("slot", 0, "window slot whose dispatch LP to export")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := loadScenario(*path)
	if err != nil {
		return err
	}
	cfg := sc.SimConfig()
	sys := cfg.Sys
	arr := make([][]float64, sys.S())
	for s := 0; s < sys.S(); s++ {
		arr[s] = make([]float64, sys.K())
		for k := 0; k < sys.K(); k++ {
			arr[s][k] = cfg.Traces[s].At(cfg.StartSlot+*slot, k)
		}
	}
	prices := make([]float64, sys.L())
	for l := 0; l < sys.L(); l++ {
		prices[l] = cfg.Prices[l].At(cfg.StartSlot + *slot)
	}
	m, err := core.DispatchModel(&core.Input{Sys: sys, Arrivals: arr, Prices: prices})
	if err != nil {
		return err
	}
	return m.WriteLPFormat(os.Stdout)
}

func cmdScaffold() error {
	return config.Example().Save(os.Stdout)
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	path := fs.String("config", "", "path to a scenario JSON file (see 'scaffold')")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("simulate: -config is required")
	}
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc, err := config.Load(f)
	if err != nil {
		return err
	}
	rep, err := sc.Run()
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "scenario %s: planner %s, %d slots\n", sc.Name, rep.Planner, len(rep.Slots))
	fmt.Fprintln(w, "SLOT\tOFFERED\tSERVED\tREVENUE($)\tENERGY($)\tTRANSFER($)\tNET($)\tSERVERS")
	for _, s := range rep.Slots {
		fmt.Fprintf(w, "%d\t%.0f\t%.0f\t%.2f\t%.2f\t%.2f\t%.2f\t%d\n",
			s.Slot, s.Offered(), s.Served(), s.Revenue, s.EnergyCost, s.TransferCost, s.NetProfit, s.ServersOn)
	}
	fmt.Fprintf(w, "total\t\t\t\t\t\t%.2f\t\n", rep.TotalNetProfit())
	return w.Flush()
}

func cmdList() error {
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ID\tPAPER\tTITLE")
	for _, e := range exp.All() {
		fmt.Fprintf(w, "%s\t%s\t%s\n", e.ID, e.Paper, e.Title)
	}
	return w.Flush()
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	csvDir := fs.String("csv", "", "also write each result table as CSV into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	args = fs.Args()
	if len(args) == 0 {
		return fmt.Errorf("run: need experiment ids or 'all'")
	}
	var todo []*exp.Experiment
	if len(args) == 1 && args[0] == "all" {
		todo = exp.All()
	} else {
		for _, id := range args {
			e, ok := exp.Get(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (try 'profitlb list')", id)
			}
			todo = append(todo, e)
		}
	}
	for _, e := range todo {
		res, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(res)
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, res); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeCSVs dumps every table of a result as <dir>/<id>_<n>.csv.
func writeCSVs(dir string, res *exp.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range res.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", res.ID, i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func cmdPrices() error {
	e, _ := exp.Get("fig1")
	res, err := e.Run()
	if err != nil {
		return err
	}
	fmt.Println(res)
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "generator seed")
	types := fs.Int("types", 3, "request types to derive by time shifting")
	base := fs.Float64("base", 650, "baseline arrival rate")
	showStats := fs.Bool("stats", false, "print per-type statistics instead of the CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}
	series := workload.WorldCupLike(workload.WorldCupConfig{Seed: *seed, Base: *base})
	tr := workload.ShiftTypes(fmt.Sprintf("worldcup-seed%d", *seed), series, *types, 4)
	if !*showStats {
		return tr.WriteCSV(os.Stdout)
	}
	sums, err := stats.ForTrace(tr)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "TYPE\tMEAN\tSD\tCV\tMIN\tMAX\tP50\tP95\tPEAK/MEAN\tLAG1-AC")
	for _, ts := range sums {
		sm := ts.Summary
		fmt.Fprintf(w, "type%d\t%.1f\t%.1f\t%.3f\t%.1f\t%.1f\t%.1f\t%.1f\t%.2f\t%.3f\n",
			ts.Type, sm.Mean, sm.SD, sm.CV, sm.Min, sm.Max, sm.P50, sm.P95, sm.PeakToMean, ts.Lag1)
	}
	return w.Flush()
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	servers := fs.Int("servers", 6, "servers per data center")
	if err := fs.Parse(args); err != nil {
		return err
	}
	planners := []core.Planner{
		core.NewOptimized(),
		func() core.Planner {
			o := core.NewOptimized()
			o.PerServer = true
			return o
		}(),
		core.NewLevelSearch(),
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "PLANNER\tSERVERS/CENTER\tTIME")
	for _, p := range planners {
		d, err := exp.PlanOnce(*servers, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%s\n", p.Name(), *servers, d.Round(time.Microsecond))
	}
	_ = market.Locations() // keep the embedded traces linked for -trimpath builds
	return w.Flush()
}

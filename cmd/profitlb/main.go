// Command profitlb runs the paper-reproduction experiments and utilities
// from the command line.
//
// Usage:
//
//	profitlb list                 list registered experiments
//	profitlb run <id>... | all    run experiments (-csv DIR for CSV export)
//	profitlb prices               print the embedded electricity traces
//	profitlb trace [-seed N]      print a workload trace (-stats for summary)
//	profitlb bench [-servers N]   time one planner invocation per planner
//	                              (-parallel N engages the search engine)
//	profitlb scaffold             print an example JSON scenario
//	profitlb simulate -config F   run a JSON scenario and print the report
//	                              (-faults F|storm, -resilient, -seed N,
//	                              -parallel N for the plan-search engine,
//	                              -feeds on|F for the telemetry feed layer,
//	                              -horizon H / -defer N,N for the rolling-
//	                              horizon mpc planner and its backlog,
//	                              -metrics/-trace/-pprof for observability)
//	profitlb chaos -config F      profit retention per planner under a
//	                              seeded outage + price-spike storm
//	                              (-feeds adds feed faults and routes inputs
//	                              through the feed layer, -parallel N,
//	                              -metrics/-trace/-pprof observe the storm)
//	profitlb compare -config F    run a scenario under every planner
//	profitlb analyze -config F    capacity advice + shadow prices
//	profitlb export-lp -config F  dump a slot's dispatch LP (CPLEX format)
//	profitlb serve -config F      run the online dispatch gateway over HTTP
//	                              (-addr, -slot-seconds, -seed; -replicas N
//	                              runs a replicated fleet, -join URL joins
//	                              one as a data-plane replica, -control arms
//	                              the sub-slot drift controller; graceful
//	                              drain on SIGINT/SIGTERM)
//	profitlb loadtest -config F   replay a scenario against the dispatch
//	                              plane and report achieved vs planned rates
//	                              (-slots, -seed, -burst-factor, -closed,
//	                              -faults F|storm|flash, -feeds, -resilient,
//	                              -burst-front-end S pins the MMPP burst,
//	                              -control arms the drift controller,
//	                              -replicas N replays against a fleet;
//	                              -addr URL[,URL...] fires at live gateways)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"profitlb/internal/advisor"
	"profitlb/internal/baseline"
	"profitlb/internal/config"
	"profitlb/internal/core"
	"profitlb/internal/exp"
	"profitlb/internal/fault"
	"profitlb/internal/feed"
	"profitlb/internal/market"
	"profitlb/internal/mpc"
	"profitlb/internal/report"
	"profitlb/internal/resilient"
	"profitlb/internal/sim"
	"profitlb/internal/stats"
	"profitlb/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "profitlb:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return nil
	}
	switch args[0] {
	case "list":
		return cmdList()
	case "run":
		return cmdRun(args[1:])
	case "prices":
		return cmdPrices()
	case "trace":
		return cmdTrace(args[1:])
	case "bench":
		return cmdBench(args[1:])
	case "scaffold":
		return cmdScaffold()
	case "simulate":
		return cmdSimulate(args[1:])
	case "analyze":
		return cmdAnalyze(args[1:])
	case "compare":
		return cmdCompare(args[1:])
	case "chaos":
		return cmdChaos(args[1:])
	case "serve":
		return cmdServe(args[1:])
	case "loadtest":
		return cmdLoadtest(args[1:])
	case "export-lp":
		return cmdExportLP(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func usage() {
	fmt.Println(`profitlb — profit-aware load balancing for distributed cloud data centers

commands:
  list                 list registered experiments (one per paper table/figure)
  run <id>... | all    run experiments and print their tables
  prices               print the embedded electricity price traces (Fig. 1)
  trace [-seed N]      print a World-Cup-like workload trace (Fig. 5 generator)
  bench [-servers N]   time one planning call per planner variant
                       (-parallel N engages the plan-search engine)
  scaffold             print an example JSON scenario to stdout
  simulate -config F   run a JSON scenario file and print the report
                       (-faults F|storm injects failures, -resilient wraps
                       the planner in the fallback chain, -seed N seeds
                       storms, -parallel N sets plan-search workers,
                       -feeds on|F routes inputs through the feed layer,
                       -horizon H plans each slot as the first of an
                       H-slot rolling window (the mpc planner) and
                       -defer N,N,... grants per-class deferral
                       allowances in slots for its deadline-aware
                       backlog, -metrics F dumps run metrics, -trace F
                       streams planner-decision events as JSON lines,
                       -pprof ADDR serves net/http/pprof + /metrics)
  chaos -config F      profit retention per planner under a seeded fault
                       storm (outages + price spikes), resilient chains on
                       (-feeds adds feed faults + the feed layer,
                       -parallel N sets plan-search workers;
                       -metrics/-trace/-pprof observe the storm run)
  analyze -config F    capacity advice + shadow prices for a scenario
  compare -config F    run a scenario under every planner
  export-lp -config F  dump one slot's dispatch LP in CPLEX LP format
  serve -config F      run the online dispatch gateway: one HTTP endpoint
                       per front-end (/dispatch/<front-end>/<class>),
                       admin endpoints (/healthz /readyz /admin/plan
                       /admin/stats /metrics), plan hot-swap at slot
                       boundaries and graceful drain on SIGINT/SIGTERM
                       (-addr, -slot-seconds N maps one plan slot onto N
                       wall seconds, -seed N fixes the routing seed;
                       -replicas N serves a replicated gateway fleet with
                       epoch-fenced plan distribution at /cluster/plan,
                       -join URL -id NAME joins a remote fleet as a
                       planner-less data-plane replica, -control arms the
                       sub-slot drift controller publishing fenced
                       (epoch, sub) corrections)
  loadtest -config F   replay a scenario against the dispatch plane at
                       request granularity and report achieved vs planned
                       per-lane rates, shed fractions and realized profit
                       (-slots, -seed, -burst-factor F, -closed -users N,
                       -faults F|storm|flash, -feeds on|F, -resilient,
                       -metrics F, -burst-front-end S pins the MMPP burst
                       to one front-end, -control arms the sub-slot drift
                       controller and reports demand error + actuations;
                       -replicas N replays against an in-process fleet
                       with per-replica reconciliation;
                       -addr URL[,URL...] -n N fires at live 'serve'
                       gateways over HTTP instead)`)
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	path := fs.String("config", "", "path to a scenario JSON file (see 'scaffold')")
	add := fs.Int("add", 2, "expansion candidate size (servers per center)")
	serverCost := fs.Float64("server-cost", 0, "one-time cost per added server ($), for payback")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("analyze: -config is required")
	}
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc, err := config.Load(f)
	if err != nil {
		return err
	}
	adv, err := advisor.Advise(advisor.Config{
		Sim:        sc.SimConfig(),
		AddServers: *add,
		ServerCost: *serverCost,
	})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "scenario %s: baseline profit $%.2f over %d slots\n", sc.Name, adv.BaselineProfit, sc.Slots)
	fmt.Fprintln(w, "CENTER\tGAIN($)\tGAIN/SERVER($)\tSHARE DUAL($)\tPAYBACK(SLOTS)")
	for _, rec := range adv.Recommendations {
		payback := "-"
		if *serverCost > 0 {
			payback = fmt.Sprintf("%.1f", rec.PaybackSlots)
		}
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\t%s\n",
			rec.Name, rec.ProfitGain, rec.GainPerServer, rec.ShareDual, payback)
	}
	return w.Flush()
}

// loadScenario opens and decodes a scenario file given on the flag.
func loadScenario(path string) (*config.Scenario, error) {
	if path == "" {
		return nil, fmt.Errorf("-config is required")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return config.Load(f)
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	path := fs.String("config", "", "path to a scenario JSON file (see 'scaffold')")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := loadScenario(*path)
	if err != nil {
		return err
	}
	planners := []core.Planner{
		core.NewOptimized(),
		core.NewLevelSearch(),
		baseline.NewBalanced(),
		baseline.NewNearest(),
		baseline.NewGreedyProfit(),
		baseline.NewRandom(1),
	}
	reports, err := sim.Compare(sc.SimConfig(), planners...)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "scenario %s: %d slots\n", sc.Name, sc.Slots)
	fmt.Fprintln(w, "PLANNER\tNET PROFIT($)\tVS BEST\tCOST($)")
	best := reports[0].TotalNetProfit()
	for _, r := range reports {
		if r.TotalNetProfit() > best {
			best = r.TotalNetProfit()
		}
	}
	for _, r := range reports {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f%%\t%.2f\n",
			r.Planner, r.TotalNetProfit(), 100*report.Frac(r.TotalNetProfit(), best), r.TotalCost())
	}
	return w.Flush()
}

func cmdExportLP(args []string) error {
	fs := flag.NewFlagSet("export-lp", flag.ContinueOnError)
	path := fs.String("config", "", "path to a scenario JSON file (see 'scaffold')")
	slot := fs.Int("slot", 0, "window slot whose dispatch LP to export")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := loadScenario(*path)
	if err != nil {
		return err
	}
	cfg := sc.SimConfig()
	sys := cfg.Sys
	arr := make([][]float64, sys.S())
	for s := 0; s < sys.S(); s++ {
		arr[s] = make([]float64, sys.K())
		for k := 0; k < sys.K(); k++ {
			arr[s][k] = cfg.Traces[s].At(cfg.StartSlot+*slot, k)
		}
	}
	prices := make([]float64, sys.L())
	for l := 0; l < sys.L(); l++ {
		prices[l] = cfg.Prices[l].At(cfg.StartSlot + *slot)
	}
	m, err := core.DispatchModel(&core.Input{Sys: sys, Arrivals: arr, Prices: prices})
	if err != nil {
		return err
	}
	return m.WriteLPFormat(os.Stdout)
}

func cmdScaffold() error {
	return config.Example().Save(os.Stdout)
}

// applyFaultsFlag resolves the -faults flag onto the scenario: a path to
// a fault-schedule JSON file ({"events":[...]}), "storm" for a seeded
// outage + price-spike storm generated against the scenario's topology,
// or "flash" for a horizon-long flash crowd (2× mean) pinned to
// front-end 0 — the drift scenario the sub-slot controller corrects.
func applyFaultsFlag(sc *config.Scenario, faultsArg string, seed int64) error {
	switch {
	case faultsArg == "":
		return nil
	case faultsArg == "flash":
		sc.Faults = &fault.Schedule{Events: []fault.Event{{
			Kind: fault.FlashCrowd, FrontEnd: 0, Factor: 2,
			From: sc.StartSlot, To: sc.StartSlot + sc.Slots - 1,
		}}}
		return nil
	case faultsArg == "storm":
		sch, err := fault.Storm(fault.StormConfig{
			Seed:      seed,
			Start:     sc.StartSlot,
			Slots:     sc.Slots,
			Centers:   sc.System.L(),
			FrontEnds: sc.System.S(),
			Outages:   1, OutageSlots: 3,
			Spikes: 2, SpikeFactor: 2,
		})
		if err != nil {
			return err
		}
		sc.Faults = sch
	default:
		f, err := os.Open(faultsArg)
		if err != nil {
			return err
		}
		defer f.Close()
		var sch fault.Schedule
		dec := json.NewDecoder(f)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&sch); err != nil {
			return fmt.Errorf("faults file %s: %w", faultsArg, err)
		}
		sc.Faults = &sch
	}
	return sc.Validate()
}

// applyFeedsFlag resolves the -feeds flag onto the scenario: "on" (or
// "default") routes the planner's inputs through the telemetry feed
// layer with default settings, any other value is a path to a
// feed-config JSON file. An empty flag leaves the scenario's own feeds
// block (if any) in force.
func applyFeedsFlag(sc *config.Scenario, feedsArg string) error {
	switch feedsArg {
	case "":
		return nil
	case "on", "default":
		sc.Feeds = &feed.Config{}
	default:
		f, err := os.Open(feedsArg)
		if err != nil {
			return err
		}
		defer f.Close()
		var cfg feed.Config
		dec := json.NewDecoder(f)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&cfg); err != nil {
			return fmt.Errorf("feeds file %s: %w", feedsArg, err)
		}
		sc.Feeds = &cfg
	}
	return sc.Validate()
}

// applyMPCFlags resolves -horizon/-defer onto the scenario: either flag
// switches the planner to the rolling-horizon mpc planner, overriding the
// matching fields of the scenario's mpc block. Zero/empty flags leave the
// scenario untouched.
func applyMPCFlags(sc *config.Scenario, horizon int, deferArg string) error {
	if horizon == 0 && deferArg == "" {
		return nil
	}
	var mc mpc.Config
	if sc.MPC != nil {
		mc = *sc.MPC
	}
	if horizon != 0 {
		mc.Horizon = horizon
	}
	if deferArg != "" {
		var allow []int
		for _, part := range strings.Split(deferArg, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("-defer %q: %w", deferArg, err)
			}
			allow = append(allow, n)
		}
		mc.MaxDefer = allow
	}
	sc.MPC = &mc
	sc.Planner = "mpc"
	return sc.Validate()
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	path := fs.String("config", "", "path to a scenario JSON file (see 'scaffold')")
	faultsArg := fs.String("faults", "", "fault schedule: a JSON file of events, 'storm' for a seeded outage+spike storm, or 'flash' for a front-end-0 flash crowd")
	seed := fs.Int64("seed", 1, "storm seed (with -faults storm)")
	resilient := fs.Bool("resilient", false, "wrap the planner in the resilient fallback chain")
	parallel := fs.Int("parallel", 0, "plan-search workers (0 serial, -1 all CPUs); overrides the scenario's parallelism")
	sparse := fs.Bool("sparse", true, "route warm-started LPs above the row threshold through the sparse revised simplex; overrides the scenario's sparse setting")
	feedsArg := fs.String("feeds", "", "telemetry feed layer: 'on' for defaults, or a feed-config JSON file")
	horizon := fs.Int("horizon", 0, "rolling-horizon window length in slots: switches the scenario to the mpc planner (overrides the scenario's mpc block)")
	deferArg := fs.String("defer", "", "per-class deferral allowances in slots for the mpc planner, comma-separated (e.g. '0,2'); switches the scenario to the mpc planner")
	metricsPath := fs.String("metrics", "", "write the run's metrics to this file on exit (Prometheus text; JSON when the path ends in .json)")
	tracePath := fs.String("trace", "", "stream structured planner-decision events to this file (JSON lines)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and live /metrics on this address (e.g. 127.0.0.1:6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := loadScenario(*path)
	if err != nil {
		return err
	}
	sess, err := openObs(*metricsPath, *tracePath, *pprofAddr)
	if err != nil {
		return err
	}
	defer sess.Close()
	sc.Obs = sess.Scope()
	if *resilient {
		sc.Resilient = true
	}
	// Only an explicitly given -parallel/-sparse overrides the scenario,
	// so that `-parallel 0` can force the legacy serial search and
	// `-sparse=false` the dense warm tableau.
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "parallel":
			sc.Parallelism = *parallel
		case "sparse":
			sc.Sparse = sparse
		}
	})
	if err := applyFaultsFlag(sc, *faultsArg, *seed); err != nil {
		return err
	}
	if err := applyFeedsFlag(sc, *feedsArg); err != nil {
		return err
	}
	if err := applyMPCFlags(sc, *horizon, *deferArg); err != nil {
		return err
	}
	rep, err := sc.Run()
	if err != nil {
		return err
	}
	withFaults := !sc.Faults.Empty() || sc.Resilient
	withFeeds := sc.Feeds != nil
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "scenario %s: planner %s, %d slots\n", sc.Name, rep.Planner, len(rep.Slots))
	if !sc.Faults.Empty() {
		var names []string
		for i := range sc.Faults.Events {
			names = append(names, sc.Faults.Events[i].String())
		}
		fmt.Fprintf(w, "fault schedule: %s\n", strings.Join(names, " "))
	}
	header := "SLOT\tOFFERED\tSERVED\tREVENUE($)\tENERGY($)\tTRANSFER($)\tNET($)\tSERVERS"
	if withFaults {
		header += "\tTIER\tFAULTS"
	}
	if withFeeds {
		header += "\tFEEDS"
	}
	fmt.Fprintln(w, header)
	for _, s := range rep.Slots {
		fmt.Fprintf(w, "%d\t%.0f\t%.0f\t%.2f\t%.2f\t%.2f\t%.2f\t%d",
			s.Slot, s.Offered(), s.Served(), s.Revenue, s.EnergyCost, s.TransferCost, s.NetProfit, s.ServersOn)
		if withFaults {
			fmt.Fprintf(w, "\t%s\t%s", fallbackLabel(s), strings.Join(s.FaultsActive, " "))
		}
		if withFeeds {
			fmt.Fprintf(w, "\t%s", feedLabel(s))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "total\t\t\t\t\t\t%.2f\t\n", rep.TotalNetProfit())
	if withFaults {
		fmt.Fprintf(w, "degraded slots %d of %d, lost revenue $%.2f\n",
			rep.DegradedSlots(), len(rep.Slots), rep.TotalLostRevenue())
	}
	if deferred, drained, forced, shed := rep.DeferralTotals(); deferred+drained+forced+shed > 0 {
		T := sc.System.Slot()
		fmt.Fprintf(w, "deferral: %.0f deferred, %.0f drained (%.0f forced), %.0f shed requests; final backlog %.0f req/slot\n",
			deferred*T, drained*T, forced*T, shed*T, rep.FinalBacklog()*T)
	}
	if withFeeds {
		fmt.Fprintf(w, "feed tiers %s, mean staleness %.2f slots, breaker-open feed-slots %d\n",
			tierMix(rep), rep.MeanFeedStaleness(), rep.BreakerOpenSlots())
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return sess.Close()
}

// feedLabel compresses a slot's feed health for the report table:
// "fresh" when every feed delivered a live sample, otherwise the
// non-fresh feeds as e.g. "p0:lkg(1) a1:prior(3)!" (p = price feed of
// center N, a = arrival feed of front-end N, bang = open breaker).
func feedLabel(s sim.SlotReport) string {
	if s.Feeds == nil {
		return "-"
	}
	if s.Feeds.AllFresh() {
		return "fresh"
	}
	var parts []string
	for l, h := range s.Feeds.Prices {
		if h.Tier != feed.TierFresh || h.Breaker != feed.Closed {
			parts = append(parts, fmt.Sprintf("p%d:%s", l, h.Label()))
		}
	}
	for fe, h := range s.Feeds.Arrivals {
		if h.Tier != feed.TierFresh || h.Breaker != feed.Closed {
			parts = append(parts, fmt.Sprintf("a%d:%s", fe, h.Label()))
		}
	}
	if len(parts) == 0 {
		return "fresh"
	}
	return strings.Join(parts, " ")
}

// tierMix renders a run's estimator-tier counts, e.g.
// "fresh:40 lkg:5 prior:3".
func tierMix(rep *sim.Report) string {
	counts := rep.FeedTierCounts()
	var parts []string
	for _, tier := range []string{"fresh", "lkg", "forecast", "prior"} {
		if counts[tier] > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", tier, counts[tier]))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// fallbackLabel renders a slot's fallback state for the report table.
func fallbackLabel(s sim.SlotReport) string {
	switch {
	case s.FallbackTier == 0:
		return "primary"
	case s.FallbackTier > 0:
		return fmt.Sprintf("%d:%s", s.FallbackTier, s.FallbackName)
	case s.FallbackName != "": // the simulator itself shed the slot
		return s.FallbackName
	default:
		return "-"
	}
}

// cmdChaos runs the scenario twice per planner — clean and under a
// seeded outage + price-spike storm with every planner wrapped in the
// resilient fallback chain — and tables profit retention, completion and
// degradation. The same seed always reproduces the same storm.
func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	path := fs.String("config", "", "path to a scenario JSON file (defaults to the built-in example)")
	seed := fs.Int64("seed", 1, "storm seed")
	outages := fs.Int("outages", 1, "center outages to inject")
	outageSlots := fs.Int("outage-slots", 3, "slots each outage lasts")
	spikes := fs.Int("spikes", 2, "price spikes to inject")
	spikeFactor := fs.Float64("spike-factor", 2, "price multiplier during a spike")
	parallel := fs.Int("parallel", 0, "plan-search workers (0 serial, -1 all CPUs); overrides the scenario's parallelism")
	sparse := fs.Bool("sparse", true, "route warm-started LPs above the row threshold through the sparse revised simplex; overrides the scenario's sparse setting")
	feeds := fs.Bool("feeds", false, "route planner inputs through the telemetry feed layer and add feed faults to the storm")
	metricsPath := fs.String("metrics", "", "write the storm run's metrics to this file on exit (Prometheus text; JSON when the path ends in .json)")
	tracePath := fs.String("trace", "", "stream the storm run's planner-decision events to this file (JSON lines)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and live /metrics on this address (e.g. 127.0.0.1:6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc := config.Example()
	if *path != "" {
		var err error
		if sc, err = loadScenario(*path); err != nil {
			return err
		}
	}
	sess, err := openObs(*metricsPath, *tracePath, *pprofAddr)
	if err != nil {
		return err
	}
	defer sess.Close()
	// Only an explicitly given -parallel/-sparse overrides the scenario
	// (same precedence as simulate), so `-parallel 0` can force serial
	// search and `-sparse=false` the dense warm tableau.
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "parallel":
			sc.Parallelism = *parallel
		case "sparse":
			sc.Sparse = sparse
		}
	})
	if err := sc.Validate(); err != nil { // resolves named price references
		return err
	}
	stormCfg := fault.StormConfig{
		Seed:      *seed,
		Start:     sc.StartSlot,
		Slots:     sc.Slots,
		Centers:   sc.System.L(),
		FrontEnds: sc.System.S(),
		Outages:   *outages, OutageSlots: *outageSlots,
		Spikes: *spikes, SpikeFactor: *spikeFactor,
	}
	if *feeds {
		stormCfg.FeedDropouts, stormCfg.FeedNoises, stormCfg.FeedDelays = 2, 1, 1
	}
	storm, err := fault.Storm(stormCfg)
	if err != nil {
		return err
	}
	cleanCfg := sc.SimConfig()
	cleanCfg.Obs = nil // observe the storm run only: lanes share one scope
	faultedCfg := cleanCfg
	faultedCfg.Faults = storm
	faultedCfg.DegradeOnFailure = true
	faultedCfg.Obs = sess.Scope()
	if *feeds && faultedCfg.Feeds == nil {
		faultedCfg.Feeds = &feed.Config{}
	}

	type lane struct {
		name    string
		planner func() core.Planner
	}
	par := sc.Parallelism
	lanes := []lane{
		{"optimized", func() core.Planner {
			p := core.NewOptimized()
			p.Parallelism = par
			return p
		}},
		{"level-search", func() core.Planner {
			p := core.NewLevelSearch()
			p.Parallelism = par
			return p
		}},
		{"balanced", func() core.Planner { return baseline.NewBalanced() }},
	}
	cleanPlanners := make([]core.Planner, len(lanes))
	stormPlanners := make([]core.Planner, len(lanes))
	for i, ln := range lanes {
		cleanPlanners[i] = ln.planner()
		sp := ln.planner()
		attachObs(sp, sess.Scope())
		chain := resilient.Wrap(sp)
		chain.Obs = sess.Scope()
		stormPlanners[i] = chain
	}
	clean, err := sim.Compare(cleanCfg, cleanPlanners...)
	if err != nil {
		return err
	}
	faulted, err := sim.Compare(faultedCfg, stormPlanners...)
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "scenario %s: storm seed %d over %d slots\n", sc.Name, *seed, sc.Slots)
	var names []string
	for _, e := range storm.Events {
		names = append(names, e.String())
	}
	fmt.Fprintf(w, "storm: %s\n", strings.Join(names, " "))
	header := "PLANNER\tCLEAN($)\tSTORM($)\tRETAINED\tCOMPLETION\tDEGRADED\tLOST($)"
	if *feeds {
		header += "\tFEED TIERS"
	}
	fmt.Fprintln(w, header)
	for i, ln := range lanes {
		var completion float64
		for k := 0; k < sc.System.K(); k++ {
			completion += faulted[i].CompletionRate(k)
		}
		completion = report.Frac(completion, float64(sc.System.K()))
		retained := report.Frac(faulted[i].TotalNetProfit(), clean[i].TotalNetProfit())
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.1f%%\t%.1f%%\t%d/%d\t%.2f",
			ln.name, clean[i].TotalNetProfit(), faulted[i].TotalNetProfit(),
			100*retained, 100*completion,
			faulted[i].DegradedSlots(), len(faulted[i].Slots),
			faulted[i].TotalLostRevenue())
		if *feeds {
			fmt.Fprintf(w, "\t%s", tierMix(faulted[i]))
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return sess.Close()
}

func cmdList() error {
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ID\tPAPER\tTITLE")
	for _, e := range exp.All() {
		fmt.Fprintf(w, "%s\t%s\t%s\n", e.ID, e.Paper, e.Title)
	}
	return w.Flush()
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	csvDir := fs.String("csv", "", "also write each result table as CSV into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	args = fs.Args()
	if len(args) == 0 {
		return fmt.Errorf("run: need experiment ids or 'all'")
	}
	var todo []*exp.Experiment
	if len(args) == 1 && args[0] == "all" {
		todo = exp.All()
	} else {
		for _, id := range args {
			e, ok := exp.Get(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (try 'profitlb list')", id)
			}
			todo = append(todo, e)
		}
	}
	for _, e := range todo {
		res, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(res)
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, res); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeCSVs dumps every table of a result as <dir>/<id>_<n>.csv.
func writeCSVs(dir string, res *exp.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range res.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", res.ID, i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func cmdPrices() error {
	e, _ := exp.Get("fig1")
	res, err := e.Run()
	if err != nil {
		return err
	}
	fmt.Println(res)
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "generator seed")
	types := fs.Int("types", 3, "request types to derive by time shifting")
	base := fs.Float64("base", 650, "baseline arrival rate")
	showStats := fs.Bool("stats", false, "print per-type statistics instead of the CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}
	series := workload.WorldCupLike(workload.WorldCupConfig{Seed: *seed, Base: *base})
	tr := workload.ShiftTypes(fmt.Sprintf("worldcup-seed%d", *seed), series, *types, 4)
	if !*showStats {
		return tr.WriteCSV(os.Stdout)
	}
	sums, err := stats.ForTrace(tr)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "TYPE\tMEAN\tSD\tCV\tMIN\tMAX\tP50\tP95\tPEAK/MEAN\tLAG1-AC")
	for _, ts := range sums {
		sm := ts.Summary
		fmt.Fprintf(w, "type%d\t%.1f\t%.1f\t%.3f\t%.1f\t%.1f\t%.1f\t%.1f\t%.2f\t%.3f\n",
			ts.Type, sm.Mean, sm.SD, sm.CV, sm.Min, sm.Max, sm.P50, sm.P95, sm.PeakToMean, ts.Lag1)
	}
	return w.Flush()
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	servers := fs.Int("servers", 6, "servers per data center")
	parallel := fs.Int("parallel", 0, "plan-search workers for the engine planners (0 serial, -1 all CPUs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	planners := []core.Planner{
		func() core.Planner {
			o := core.NewOptimized()
			o.Parallelism = *parallel
			return o
		}(),
		func() core.Planner {
			o := core.NewOptimized()
			o.PerServer = true
			o.Parallelism = *parallel
			return o
		}(),
		func() core.Planner {
			ls := core.NewLevelSearch()
			ls.Parallelism = *parallel
			return ls
		}(),
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "PLANNER\tSERVERS/CENTER\tTIME")
	for _, p := range planners {
		d, err := exp.PlanOnce(*servers, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%s\n", p.Name(), *servers, d.Round(time.Microsecond))
	}
	_ = market.Locations() // keep the embedded traces linked for -trimpath builds
	return w.Flush()
}

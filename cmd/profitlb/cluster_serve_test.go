package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"profitlb/internal/loadgen"
)

// startModeServer boots a server with explicit options and registers the
// drain cleanup.
func startModeServer(t *testing.T, opt serveOptions) *gatewayServer {
	t.Helper()
	gs, err := newServer(serveScenario(t), "127.0.0.1:0", opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := gs.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = gs.Shutdown(ctx)
	})
	return gs
}

// waitForHTTP polls cond for up to 5 seconds.
func waitForHTTP(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestServeReadyz: /readyz answers 503 until the first plan epoch is
// applied, 200 once it is, and 503 again while draining — distinct from
// /healthz, which stays green before the first plan.
func TestServeReadyz(t *testing.T) {
	gs, err := newServer(serveScenario(t), "127.0.0.1:0", serveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Before Start no plan epoch has been applied: not ready.
	rec := httptest.NewRecorder()
	gs.handleReady(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before the first plan = %d, want 503", rec.Code)
	}
	var body map[string]any
	if rec.Body.Len() == 0 {
		t.Fatal("empty /readyz body")
	}
	if code := decodeBody(t, rec, &body); code != http.StatusServiceUnavailable ||
		body["ready"] != false || body["reason"] != "no plan epoch applied yet" {
		t.Fatalf("/readyz before the first plan: %d %v", code, body)
	}
	// But the process is live.
	rec = httptest.NewRecorder()
	gs.handleHealth(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz before the first plan = %d, want 200 (liveness, not readiness)", rec.Code)
	}

	if err := gs.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = gs.Shutdown(ctx)
	})
	base := "http://" + gs.Addr()
	var ready map[string]any
	if code := getJSON(t, base+"/readyz", &ready); code != http.StatusOK || ready["ready"] != true {
		t.Fatalf("/readyz after the first plan: %d %v", code, ready)
	}

	gs.draining.Store(true)
	if code := getJSON(t, base+"/readyz", &ready); code != http.StatusServiceUnavailable ||
		ready["reason"] != "draining" {
		t.Fatalf("/readyz while draining: %d %v", code, ready)
	}
}

// decodeBody decodes a recorded JSON response.
func decodeBody(t *testing.T, rec *httptest.ResponseRecorder, v any) int {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
		t.Fatalf("decoding recorded body: %v", err)
	}
	return rec.Code
}

// TestServeFleetSmoke: a 3-replica fleet server admits a burst spread
// over its replicas, every replica serves the same epoch, and the
// per-replica counters sum to the burst exactly.
func TestServeFleetSmoke(t *testing.T) {
	gs := startModeServer(t, serveOptions{Replicas: 3})
	if gs.mode != "fleet" {
		t.Fatalf("mode %q, want fleet", gs.mode)
	}
	base := "http://" + gs.Addr()

	var ready map[string]any
	if code := getJSON(t, base+"/readyz", &ready); code != http.StatusOK || ready["mode"] != "fleet" {
		t.Fatalf("/readyz on a booted fleet: %d %v", code, ready)
	}

	const n = 300
	res, err := loadgen.FireHTTP(base, gs.sc.System, n, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != n || res.Rejected != 0 {
		t.Fatalf("fired %+v, want %d sent and 0 rejected", res, n)
	}
	if res.Admitted == 0 {
		t.Fatalf("fleet admitted nothing: %+v", res)
	}

	var stats map[string]any
	if code := getJSON(t, base+"/admin/stats", &stats); code != http.StatusOK {
		t.Fatalf("/admin/stats = %d", code)
	}
	rows, ok := stats["replicas"].([]any)
	if !ok || len(rows) != 3 {
		t.Fatalf("stats replicas: %v", stats["replicas"])
	}
	published := stats["publishedEpoch"].(float64)
	if published == 0 {
		t.Fatal("fleet has no published epoch after boot")
	}
	var total float64
	for _, row := range rows {
		r := row.(map[string]any)
		if r["ready"] != true {
			t.Fatalf("replica %v not ready after boot", r["id"])
		}
		if r["epoch"].(float64) != published {
			t.Fatalf("replica %v at epoch %v, published %v", r["id"], r["epoch"], published)
		}
		total += r["stats"].(map[string]any)["TotalRequests"].(float64)
	}
	if int(total) != n {
		t.Fatalf("replica counters sum to %d requests, want %d", int(total), n)
	}
	if members, ok := stats["members"].([]any); !ok || len(members) != 3 {
		t.Fatalf("fleet members: %v", stats["members"])
	}

	// The control plane is mounted: an external joiner's first pull joins
	// it to the membership and gets a freshly re-spread epoch.
	var pub map[string]any
	if code := getJSON(t, base+"/cluster/plan?after=0&id=probe&wait=10", &pub); code != http.StatusOK {
		t.Fatalf("/cluster/plan = %d, want 200", code)
	}
	if pub["epoch"].(float64) < published {
		t.Fatalf("/cluster/plan epoch %v below published %v", pub["epoch"], published)
	}
	probeJoined := false
	for _, m := range pub["members"].([]any) {
		if m == "probe" {
			probeJoined = true
		}
	}
	if !probeJoined {
		t.Fatalf("first pull did not join the prober: %v", pub["members"])
	}
}

// TestServeJoinSmoke: a join-mode server (no planner) pulls its plan
// from a fleet server, turns ready once the first epoch lands, and then
// serves dispatch traffic of its own.
func TestServeJoinSmoke(t *testing.T) {
	fleet := startModeServer(t, serveOptions{Replicas: 2})
	join := startModeServer(t, serveOptions{JoinURL: "http://" + fleet.Addr(), JoinID: "ext-test"})
	if join.mode != "join" {
		t.Fatalf("mode %q, want join", join.mode)
	}
	jbase := "http://" + join.Addr()

	waitForHTTP(t, "the joiner to apply its first epoch", func() bool {
		resp, err := http.Get(jbase + "/readyz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})

	// The joiner shows up in the fleet's membership.
	var fstats map[string]any
	if code := getJSON(t, "http://"+fleet.Addr()+"/admin/stats", &fstats); code != http.StatusOK {
		t.Fatalf("fleet /admin/stats = %d", code)
	}
	found := false
	for _, m := range fstats["members"].([]any) {
		if m == "ext-test" {
			found = true
		}
	}
	if !found {
		t.Fatalf("joiner missing from fleet members: %v", fstats["members"])
	}

	// And serves requests through its own gateway.
	sc := join.sc
	u := fmt.Sprintf("%s/dispatch/%s/%s", jbase, sc.System.FrontEnds[0].Name, sc.System.Classes[0].Name)
	var dec map[string]any
	if code := getJSON(t, u, &dec); code != http.StatusOK && code != http.StatusTooManyRequests {
		t.Fatalf("join-mode dispatch = %d, want 200 or 429", code)
	}

	var jstats map[string]any
	if code := getJSON(t, jbase+"/admin/stats", &jstats); code != http.StatusOK {
		t.Fatalf("join /admin/stats = %d", code)
	}
	if jstats["mode"] != "join" {
		t.Fatalf("join stats mode: %v", jstats["mode"])
	}
	sub, ok := jstats["subscriber"].(map[string]any)
	if !ok || sub["rounds"].(float64) < 1 {
		t.Fatalf("join subscriber stats: %v", jstats["subscriber"])
	}
}

// TestServeControlSmoke: a fleet server with -control boots the drift
// controller, ticks it between slot boundaries without freezing on a
// healthy clock, surfaces its state in /admin/stats, and drains cleanly.
// A single-mode server arms it too; a join-mode server refuses it.
func TestServeControlSmoke(t *testing.T) {
	sc := serveScenario(t)
	sc.Dispatch.SlotSeconds = 2 // 8 ticks ⇒ one control tick every 250ms
	gs, err := newServer(sc, "127.0.0.1:0", serveOptions{Replicas: 2, Control: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := gs.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = gs.Shutdown(ctx)
	})
	base := "http://" + gs.Addr()
	// Serve traffic across a few control ticks.
	rep, err := loadgen.FireHTTP(base, sc.System, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 400 {
		t.Fatalf("sent %d of 400 under control", rep.Sent)
	}
	time.Sleep(600 * time.Millisecond)
	var stats map[string]any
	if code := getJSON(t, base+"/admin/stats", &stats); code != http.StatusOK {
		t.Fatalf("/admin/stats = %d", code)
	}
	ctrl, ok := stats["control"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing control block: %v", stats)
	}
	if frozen, ok := ctrl["frozen"].(bool); !ok || frozen {
		t.Fatalf("controller frozen on a healthy clock: %v", ctrl)
	}

	// Single mode arms the controller too.
	single, err := newServer(serveScenario(t), "127.0.0.1:0", serveOptions{Control: true})
	if err != nil {
		t.Fatal(err)
	}
	if single.ctrl == nil {
		t.Fatal("single-mode server did not build a controller")
	}

	// Join mode has no local control plane to correct.
	if _, err := newServer(serveScenario(t), "127.0.0.1:0",
		serveOptions{JoinURL: "http://127.0.0.1:1", JoinID: "edge", Control: true}); err == nil {
		t.Fatal("join-mode -control accepted")
	}
}

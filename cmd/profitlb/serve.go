package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"profitlb/internal/config"
	"profitlb/internal/dispatch"
	"profitlb/internal/obs"
	"profitlb/internal/sim"
)

// gatewayServer is the `profitlb serve` runtime: an HTTP front-end over
// a dispatch.Gateway plus the background planner loop that hot-swaps the
// routing table at slot boundaries. One loop goroutine owns the driver;
// the HTTP handlers only touch the gateway (concurrency-safe) and
// snapshots.
type gatewayServer struct {
	sc     *config.Scenario
	dcfg   dispatch.Config
	driver *dispatch.Driver
	gw     *dispatch.Gateway
	reg    *obs.Registry

	srv *http.Server
	ln  net.Listener

	feByName    map[string]int
	classByName map[string]int
	exposed     []bool // by front-end index

	startWall time.Time
	draining  atomic.Bool
	stopOnce  sync.Once
	stopLoop  chan struct{}
	loopDone  chan struct{}
}

// newGatewayServer assembles the gateway, planner loop and HTTP mux for
// a validated scenario. addr is the listen address ("127.0.0.1:0" picks
// a free port).
func newGatewayServer(sc *config.Scenario, addr string) (*gatewayServer, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	planner, err := sc.BuildPlanner()
	if err != nil {
		return nil, err
	}
	src, err := sim.NewInputSource(sc.SimConfig())
	if err != nil {
		return nil, err
	}
	dcfg := sc.DispatchConfig()
	reg := obs.NewRegistry()
	scope := obs.NewScope(reg, nil)
	gs := &gatewayServer{
		sc:          sc,
		dcfg:        dcfg,
		reg:         reg,
		gw:          dispatch.NewGateway(sc.System, dcfg, scope),
		feByName:    map[string]int{},
		classByName: map[string]int{},
		exposed:     make([]bool, sc.System.S()),
		stopLoop:    make(chan struct{}),
		loopDone:    make(chan struct{}),
	}
	gs.driver = &dispatch.Driver{Gateway: gs.gw, Planner: planner, Source: src}
	for i := range sc.System.FrontEnds {
		gs.feByName[sc.System.FrontEnds[i].Name] = i
	}
	for i := range sc.System.Classes {
		gs.classByName[sc.System.Classes[i].Name] = i
	}
	if len(dcfg.FrontEnds) == 0 {
		for i := range gs.exposed {
			gs.exposed[i] = true
		}
	} else {
		for _, name := range dcfg.FrontEnds {
			gs.exposed[gs.feByName[name]] = true // names validated by the config
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/dispatch/", gs.handleDispatch)
	mux.HandleFunc("/healthz", gs.handleHealth)
	mux.HandleFunc("/admin/plan", gs.handlePlan)
	mux.HandleFunc("/admin/stats", gs.handleStats)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.WritePrometheus(w)
	})
	gs.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	gs.ln, err = net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return gs, nil
}

// Addr returns the bound listen address.
func (gs *gatewayServer) Addr() string { return gs.ln.Addr().String() }

// now maps wall-clock time onto the gateway's virtual clock: one
// SlotSeconds of wall time is one slot length T of virtual time.
func (gs *gatewayServer) now() float64 {
	return time.Since(gs.startWall).Seconds() / gs.dcfg.SlotSeconds * gs.sc.System.Slot()
}

// Start installs the first slot's table and begins serving and slot
// rotation. It returns once the server is accepting requests.
func (gs *gatewayServer) Start() error {
	gs.startWall = time.Now()
	if _, err := gs.driver.BeginSlot(gs.sc.StartSlot, 0); err != nil {
		return err
	}
	go gs.slotLoop()
	go func() { _ = gs.srv.Serve(gs.ln) }()
	return nil
}

// slotLoop rotates the plan at slot boundaries: slot i begins
// i*SlotSeconds after start. The loop goroutine is the only driver
// caller after Start.
func (gs *gatewayServer) slotLoop() {
	defer close(gs.loopDone)
	period := time.Duration(gs.dcfg.SlotSeconds * float64(time.Second))
	for i := 1; ; i++ {
		next := gs.startWall.Add(time.Duration(i) * period)
		timer := time.NewTimer(time.Until(next))
		select {
		case <-gs.stopLoop:
			timer.Stop()
			return
		case <-timer.C:
		}
		abs := gs.sc.StartSlot + i
		if _, err := gs.driver.BeginSlot(abs, float64(i)*gs.sc.System.Slot()); err != nil {
			// Wiring errors only; the driver degrades plan failures to
			// an all-shed table on its own.
			fmt.Fprintf(os.Stderr, "profitlb: serve: slot %d: %v\n", abs, err)
		}
	}
}

// Shutdown drains the gateway: new requests are refused with 503, the
// slot loop stops, and in-flight requests finish (bounded by the drain
// deadline). A clean drain returns nil. Safe to call more than once.
func (gs *gatewayServer) Shutdown(ctx context.Context) error {
	gs.draining.Store(true)
	gs.stopOnce.Do(func() { close(gs.stopLoop) })
	err := gs.srv.Shutdown(ctx)
	<-gs.loopDone
	return err
}

// writeJSON emits one JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// handleDispatch is the request hot path: /dispatch/<front-end>/<class>,
// where both segments accept a name or an index. Admitted requests get
// 200 with the serving center and level; shed requests get 429 with the
// reason; a draining gateway refuses with 503.
func (gs *gatewayServer) handleDispatch(w http.ResponseWriter, r *http.Request) {
	if gs.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"outcome": "draining"})
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/dispatch/")
	parts := strings.Split(rest, "/")
	if len(parts) != 2 {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "want /dispatch/<front-end>/<class>"})
		return
	}
	s, ok := gs.lookup(parts[0], gs.feByName, gs.sc.System.S())
	if !ok || !gs.exposed[s] {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("unknown front-end %q", parts[0])})
		return
	}
	k, ok := gs.lookup(parts[1], gs.classByName, gs.sc.System.K())
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("unknown class %q", parts[1])})
		return
	}
	dec := gs.gw.Handle(k, s, gs.now())
	switch dec.Outcome {
	case dispatch.Admitted:
		writeJSON(w, http.StatusOK, map[string]any{
			"outcome": dec.Outcome.String(),
			"center":  gs.sc.System.Centers[dec.Center].Name,
			"level":   dec.Level,
		})
	case dispatch.ShedUnplanned, dispatch.ShedBudget:
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"outcome": dec.Outcome.String()})
	default:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"outcome": dec.Outcome.String()})
	}
}

// lookup resolves a path segment as a name or a bare index.
func (gs *gatewayServer) lookup(seg string, byName map[string]int, n int) (int, bool) {
	if i, ok := byName[seg]; ok {
		return i, true
	}
	if i, err := strconv.Atoi(seg); err == nil && i >= 0 && i < n {
		return i, true
	}
	return 0, false
}

// handleHealth reports liveness: 200 while serving, 503 while draining.
func (gs *gatewayServer) handleHealth(w http.ResponseWriter, _ *http.Request) {
	st := gs.gw.Stats(gs.now())
	status := http.StatusOK
	state := "ok"
	if gs.draining.Load() {
		status, state = http.StatusServiceUnavailable, "draining"
	}
	writeJSON(w, status, map[string]any{
		"status":   state,
		"slot":     st.Slot,
		"degraded": st.Degraded,
		"tier":     st.Tier,
		"swaps":    st.Swaps,
	})
}

// handlePlan dumps the committed routing table.
func (gs *gatewayServer) handlePlan(w http.ResponseWriter, _ *http.Request) {
	t := gs.gw.Table()
	if t == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "no table installed"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"slot":      t.Slot,
		"objective": t.Objective,
		"serversOn": t.ServersOn,
		"degraded":  t.Degraded,
		"tier":      t.Tier,
		"seed":      t.Seed,
		"lanes":     t.Lanes,
	})
}

// handleStats dumps the gateway counters and per-lane tallies.
func (gs *gatewayServer) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, gs.gw.Stats(gs.now()))
}

// cmdServe boots the HTTP gateway for a scenario and runs until
// interrupted, then drains gracefully.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	path := fs.String("config", "", "path to a scenario JSON file (see 'scaffold')")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	slotSeconds := fs.Float64("slot-seconds", 0, "wall seconds per plan slot (overrides the scenario's dispatch block)")
	seed := fs.Uint64("seed", 0, "routing seed (overrides the scenario's dispatch block)")
	resilient := fs.Bool("resilient", true, "wrap the planner in the resilient fallback chain")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := loadScenario(*path)
	if err != nil {
		return err
	}
	if *resilient {
		sc.Resilient = true
	}
	if sc.Dispatch == nil {
		d := dispatch.Config{}.WithDefaults()
		sc.Dispatch = &d
	}
	if *slotSeconds > 0 {
		sc.Dispatch.SlotSeconds = *slotSeconds
	}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			sc.Dispatch.Seed = *seed
		}
	})
	gs, err := newGatewayServer(sc, *addr)
	if err != nil {
		return err
	}
	if err := gs.Start(); err != nil {
		return err
	}
	fmt.Printf("profitlb: serving scenario %s on http://%s (slot %d, %gs per slot)\n",
		sc.Name, gs.Addr(), sc.StartSlot, sc.Dispatch.SlotSeconds)
	fmt.Printf("profitlb: endpoints: /dispatch/<front-end>/<class>, /healthz, /admin/plan, /admin/stats, /metrics\n")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	drainCtx, cancel := context.WithTimeout(context.Background(),
		time.Duration(gs.dcfg.DrainSeconds*float64(time.Second)))
	defer cancel()
	fmt.Println("profitlb: draining...")
	if err := gs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	st := gs.gw.Stats(gs.now())
	fmt.Printf("profitlb: drained cleanly: %d requests, %d admitted, %d shed\n",
		st.TotalRequests, st.TotalAdmitted, st.TotalShed)
	return nil
}

package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"profitlb/internal/cluster"
	"profitlb/internal/config"
	"profitlb/internal/control"
	"profitlb/internal/dispatch"
	"profitlb/internal/obs"
	"profitlb/internal/sim"
)

// gatewayServer is the `profitlb serve` runtime in one of three modes:
//
//   - single: one gateway, one in-process planner loop (the original).
//   - fleet: a control plane (cluster.Publisher over the driver) plus N
//     in-process gateway replicas; /dispatch round-robins over ready
//     replicas and /cluster/plan lets external join-mode servers pull
//     the same epochs.
//   - join: one data-plane replica with no planner at all, pulling
//     epoch-fenced plans from a remote fleet server's /cluster endpoint.
//
// One loop goroutine owns the driver (or the staleness ticker in join
// mode); the HTTP handlers only touch gateways (concurrency-safe) and
// snapshots.
type gatewayServer struct {
	sc   *config.Scenario
	dcfg dispatch.Config
	ccfg cluster.Config
	mode string // "single", "fleet" or "join"

	driver *dispatch.Driver
	gw     *dispatch.Gateway // single mode only
	pub    *cluster.Publisher
	reps   []*cluster.Replica
	sub    *cluster.Subscriber
	rr     atomic.Uint64
	reg    *obs.Registry

	// ctrl, when -control is set, closes the sub-slot loop: the loop
	// goroutine ticks it between slot boundaries and it hot-swaps
	// re-scaled tables through the same install fences the planner uses.
	ctrl    *control.Controller
	ctrlCfg control.Config
	plant   *control.FleetPlant // fleet mode only

	srv *http.Server
	ln  net.Listener

	feByName    map[string]int
	classByName map[string]int
	exposed     []bool // by front-end index

	startWall time.Time
	draining  atomic.Bool
	stopOnce  sync.Once
	stopLoop  chan struct{}
	loopDone  chan struct{}
}

// serveOptions selects the server mode.
type serveOptions struct {
	// Replicas > 1 (or a scenario cluster block) selects fleet mode.
	Replicas int
	// JoinURL selects join mode: the base URL of a fleet server.
	JoinURL string
	// JoinID is the replica identity a join-mode server announces.
	JoinID string
	// Control enables the sub-slot drift controller (internal/control).
	Control bool
}

// newGatewayServer assembles the single-mode gateway, planner loop and
// HTTP mux for a validated scenario. addr is the listen address
// ("127.0.0.1:0" picks a free port).
func newGatewayServer(sc *config.Scenario, addr string) (*gatewayServer, error) {
	return newServer(sc, addr, serveOptions{})
}

// newServer assembles a server in the mode the options select.
func newServer(sc *config.Scenario, addr string, opt serveOptions) (*gatewayServer, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	scope := obs.NewScope(reg, nil)
	gs := &gatewayServer{
		sc:          sc,
		dcfg:        sc.DispatchConfig(),
		ccfg:        sc.ClusterConfig(),
		mode:        "single",
		reg:         reg,
		feByName:    map[string]int{},
		classByName: map[string]int{},
		exposed:     make([]bool, sc.System.S()),
		stopLoop:    make(chan struct{}),
		loopDone:    make(chan struct{}),
	}
	if opt.Replicas > 0 {
		gs.ccfg.Replicas = opt.Replicas
	}
	for i := range sc.System.FrontEnds {
		gs.feByName[sc.System.FrontEnds[i].Name] = i
	}
	for i := range sc.System.Classes {
		gs.classByName[sc.System.Classes[i].Name] = i
	}
	if len(gs.dcfg.FrontEnds) == 0 {
		for i := range gs.exposed {
			gs.exposed[i] = true
		}
	} else {
		for _, name := range gs.dcfg.FrontEnds {
			gs.exposed[gs.feByName[name]] = true // names validated by the config
		}
	}

	switch {
	case opt.JoinURL != "":
		gs.mode = "join"
		id := opt.JoinID
		if id == "" {
			id = fmt.Sprintf("ext-%d", os.Getpid())
		}
		rep := cluster.NewReplica(id, sc.System, gs.dcfg, gs.ccfg, scope)
		gs.reps = []*cluster.Replica{rep}
		gs.sub = cluster.NewSubscriber(strings.TrimSuffix(opt.JoinURL, "/")+"/cluster", rep, gs.ccfg, gs.now)
	case gs.ccfg.Replicas > 1:
		gs.mode = "fleet"
		fallthrough
	default:
		planner, err := sc.BuildPlanner()
		if err != nil {
			return nil, err
		}
		src, err := sim.NewInputSource(sc.SimConfig())
		if err != nil {
			return nil, err
		}
		if gs.mode == "fleet" {
			// The driver still needs a gateway for compile configuration
			// and scope, but in fleet mode it never serves requests.
			gs.driver = &dispatch.Driver{
				Gateway: dispatch.NewGateway(sc.System, gs.dcfg, scope),
				Planner: planner, Source: src,
			}
			gs.pub = cluster.NewPublisher(gs.ccfg, gs.driver, scope)
			for i := 0; i < gs.ccfg.Replicas; i++ {
				gs.reps = append(gs.reps, cluster.NewReplica(cluster.ReplicaID(i), sc.System, gs.dcfg, gs.ccfg, scope))
			}
		} else {
			gs.gw = dispatch.NewGateway(sc.System, gs.dcfg, scope)
			gs.driver = &dispatch.Driver{Gateway: gs.gw, Planner: planner, Source: src}
		}
	}

	if opt.Control {
		if gs.mode == "join" {
			return nil, fmt.Errorf("profitlb: -control needs a local control plane; a join-mode replica only applies what the fleet publishes")
		}
		gs.ctrlCfg = sc.ControlConfig()
		if gs.mode == "fleet" {
			gs.plant = &control.FleetPlant{Pub: gs.pub, Replicas: gs.reps}
			gs.ctrl = control.NewController(gs.ctrlCfg, gs.dcfg, gs.plant, scope)
		} else {
			gs.ctrl = control.NewController(gs.ctrlCfg, gs.dcfg, control.GatewayPlant{GW: gs.gw}, scope)
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/dispatch/", gs.handleDispatch)
	mux.HandleFunc("/healthz", gs.handleHealth)
	mux.HandleFunc("/readyz", gs.handleReady)
	mux.HandleFunc("/admin/plan", gs.handlePlan)
	mux.HandleFunc("/admin/stats", gs.handleStats)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.WritePrometheus(w)
	})
	if gs.pub != nil {
		mux.Handle("/cluster/", http.StripPrefix("/cluster", gs.pub.Handler()))
	}
	gs.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	var err error
	gs.ln, err = net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return gs, nil
}

// Addr returns the bound listen address.
func (gs *gatewayServer) Addr() string { return gs.ln.Addr().String() }

// now maps wall-clock time onto the gateway's virtual clock: one
// SlotSeconds of wall time is one slot length T of virtual time.
func (gs *gatewayServer) now() float64 {
	return time.Since(gs.startWall).Seconds() / gs.dcfg.SlotSeconds * gs.sc.System.Slot()
}

// pick returns the gateway serving the next request: the single gateway,
// or the next ready replica in round-robin order (falling back to any
// replica — a not-ready gateway answers Invalid, which maps to 503).
func (gs *gatewayServer) pick() *dispatch.Gateway {
	if len(gs.reps) == 0 {
		return gs.gw
	}
	n := len(gs.reps)
	start := int(gs.rr.Add(1)-1) % n
	for i := 0; i < n; i++ {
		r := gs.reps[(start+i)%n]
		if r.Ready() {
			return r.Gateway()
		}
	}
	return gs.reps[start].Gateway()
}

// ready reports whether the serving plane has applied a first plan
// epoch: in cluster modes, at least one replica; in single mode, the
// gateway. Draining is never ready.
func (gs *gatewayServer) ready() bool {
	if gs.draining.Load() {
		return false
	}
	if len(gs.reps) > 0 {
		for _, r := range gs.reps {
			if r.Ready() {
				return true
			}
		}
		return false
	}
	return gs.gw.Table() != nil
}

// Start installs the first slot's plan (single and fleet modes; join
// mode starts its pull loop instead and becomes ready when the first
// epoch lands) and begins serving and slot rotation. It returns once the
// server is accepting requests.
func (gs *gatewayServer) Start() error {
	gs.startWall = time.Now()
	switch gs.mode {
	case "join":
		gs.sub.Start()
	case "fleet":
		if err := gs.fleetSlot(gs.sc.StartSlot, 0); err != nil {
			return err
		}
	default:
		if _, err := gs.driver.BeginSlot(gs.sc.StartSlot, 0); err != nil {
			return err
		}
	}
	gs.beginControlSlot(gs.sc.StartSlot, 0)
	go gs.slotLoop()
	go func() { _ = gs.srv.Serve(gs.ln) }()
	return nil
}

// fleetSlot runs one control-plane slot cycle: heartbeat the in-process
// replicas (external joiners beat through their pulls), sweep health,
// publish the slot's plan under its new epoch, and deliver + tick the
// in-process replicas. External joiners receive the publish through
// their parked long-polls.
func (gs *gatewayServer) fleetSlot(abs int, now float64) error {
	for _, r := range gs.reps {
		gs.pub.Beat(r.ID, abs)
	}
	gs.pub.SweepHealth(abs)
	pub, err := gs.pub.PublishSlot(abs)
	if err != nil {
		return err
	}
	for _, r := range gs.reps {
		if _, err := r.Apply(pub, now); err != nil {
			fmt.Fprintf(os.Stderr, "profitlb: serve: %v\n", err)
		}
		r.Tick(abs, now)
	}
	return nil
}

// beginControlSlot re-arms the controller on the slot's committed table
// (the fleet-wide undivided one in fleet mode). A slot with no table —
// a publish outage — disarms it until the next boundary.
func (gs *gatewayServer) beginControlSlot(abs int, now float64) {
	if gs.ctrl == nil {
		return
	}
	var t *dispatch.Table
	if gs.mode == "fleet" {
		gs.plant.Slot = abs
		if cur := gs.pub.Current(); cur != nil {
			if tab, err := dispatch.FromWire(cur.Table); err == nil {
				t = tab
			}
		}
	} else {
		t = gs.gw.Table()
	}
	var cf []float64
	if sch := gs.sc.Faults; sch != nil {
		for l := 0; l < gs.sc.System.L(); l++ {
			if f := sch.SlowCenterFactor(l, abs); f < 1 {
				if cf == nil {
					cf = make([]float64, gs.sc.System.L())
					for i := range cf {
						cf[i] = 1
					}
				}
				cf[l] = f
			}
		}
	}
	gs.ctrl.BeginSlot(t, now, cf)
}

// slotLoop rotates the plan at slot boundaries: slot i begins
// i*SlotSeconds after start. The loop goroutine is the only driver
// caller after Start. In join mode the loop only advances staleness —
// the subscriber goroutine applies whatever the control plane sends.
// With -control it also ticks the drift controller between boundaries,
// SlotSeconds/TicksPerSlot apart.
func (gs *gatewayServer) slotLoop() {
	defer close(gs.loopDone)
	period := time.Duration(gs.dcfg.SlotSeconds * float64(time.Second))
	ticks := 1
	if gs.ctrl != nil {
		ticks = gs.ctrlCfg.TicksPerSlot
	}
	joinSlot := -1
	for i := 1; ; i++ {
		// Sub-slot control ticks inside slot i-1; the tick that would land
		// on the boundary is the slot rotation itself.
		slotStart := gs.startWall.Add(time.Duration(i-1) * period)
		for j := 1; j < ticks; j++ {
			at := slotStart.Add(time.Duration(j) * period / time.Duration(ticks))
			tt := time.NewTimer(time.Until(at))
			select {
			case <-gs.stopLoop:
				tt.Stop()
				return
			case <-tt.C:
			}
			gs.ctrl.Tick(gs.now())
		}
		next := gs.startWall.Add(time.Duration(i) * period)
		timer := time.NewTimer(time.Until(next))
		select {
		case <-gs.stopLoop:
			timer.Stop()
			return
		case <-timer.C:
		}
		abs := gs.sc.StartSlot + i
		now := float64(i) * gs.sc.System.Slot()
		switch gs.mode {
		case "join":
			// Track the applied slot when plans flow; count boundaries
			// past it when they stop, so staleness (and the TTL
			// downgrade) advances even though this server never plans.
			r := gs.reps[0]
			t := r.Gateway().Table()
			if t == nil {
				continue
			}
			if t.Slot > joinSlot {
				joinSlot = t.Slot
			} else {
				joinSlot++
			}
			r.Tick(joinSlot, now)
		case "fleet":
			if err := gs.fleetSlot(abs, now); err != nil {
				fmt.Fprintf(os.Stderr, "profitlb: serve: slot %d: %v\n", abs, err)
			}
		default:
			if _, err := gs.driver.BeginSlot(abs, now); err != nil {
				// Wiring errors only; the driver degrades plan failures to
				// an all-shed table on its own.
				fmt.Fprintf(os.Stderr, "profitlb: serve: slot %d: %v\n", abs, err)
			}
		}
		gs.beginControlSlot(abs, now)
	}
}

// Shutdown drains the gateway: new requests are refused with 503, the
// slot loop stops, and in-flight requests finish (bounded by the drain
// deadline). A clean drain returns nil. Safe to call more than once.
func (gs *gatewayServer) Shutdown(ctx context.Context) error {
	gs.draining.Store(true)
	gs.stopOnce.Do(func() { close(gs.stopLoop) })
	if gs.sub != nil {
		gs.sub.Stop()
	}
	err := gs.srv.Shutdown(ctx)
	<-gs.loopDone
	return err
}

// writeJSON emits one JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// handleDispatch is the request hot path: /dispatch/<front-end>/<class>,
// where both segments accept a name or an index. Admitted requests get
// 200 with the serving center and level; shed requests get 429 with the
// reason; a draining gateway refuses with 503.
func (gs *gatewayServer) handleDispatch(w http.ResponseWriter, r *http.Request) {
	if gs.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"outcome": "draining"})
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/dispatch/")
	parts := strings.Split(rest, "/")
	if len(parts) != 2 {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "want /dispatch/<front-end>/<class>"})
		return
	}
	s, ok := gs.lookup(parts[0], gs.feByName, gs.sc.System.S())
	if !ok || !gs.exposed[s] {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("unknown front-end %q", parts[0])})
		return
	}
	k, ok := gs.lookup(parts[1], gs.classByName, gs.sc.System.K())
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("unknown class %q", parts[1])})
		return
	}
	dec := gs.pick().Handle(k, s, gs.now())
	switch dec.Outcome {
	case dispatch.Admitted:
		writeJSON(w, http.StatusOK, map[string]any{
			"outcome": dec.Outcome.String(),
			"center":  gs.sc.System.Centers[dec.Center].Name,
			"level":   dec.Level,
		})
	case dispatch.ShedUnplanned, dispatch.ShedBudget:
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"outcome": dec.Outcome.String()})
	default:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"outcome": dec.Outcome.String()})
	}
}

// lookup resolves a path segment as a name or a bare index.
func (gs *gatewayServer) lookup(seg string, byName map[string]int, n int) (int, bool) {
	if i, ok := byName[seg]; ok {
		return i, true
	}
	if i, err := strconv.Atoi(seg); err == nil && i >= 0 && i < n {
		return i, true
	}
	return 0, false
}

// handleHealth reports liveness: 200 while the process serves (even
// before the first plan — that is readiness, not liveness), 503 while
// draining.
func (gs *gatewayServer) handleHealth(w http.ResponseWriter, _ *http.Request) {
	st := gs.pick().Stats(gs.now())
	status := http.StatusOK
	state := "ok"
	if gs.draining.Load() {
		status, state = http.StatusServiceUnavailable, "draining"
	}
	writeJSON(w, status, map[string]any{
		"status":   state,
		"mode":     gs.mode,
		"slot":     st.Slot,
		"degraded": st.Degraded,
		"tier":     st.Tier,
		"swaps":    st.Swaps,
	})
}

// handleReady reports readiness: 200 only once a first plan epoch is
// applied and the server is not draining. Load balancers gate on this;
// liveness (/healthz) stays green while a fresh replica is still waiting
// for its first epoch.
func (gs *gatewayServer) handleReady(w http.ResponseWriter, _ *http.Request) {
	if gs.ready() {
		writeJSON(w, http.StatusOK, map[string]any{"ready": true, "mode": gs.mode})
		return
	}
	reason := "no plan epoch applied yet"
	if gs.draining.Load() {
		reason = "draining"
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "mode": gs.mode, "reason": reason})
}

// handlePlan dumps the committed routing table (in cluster modes, the
// picked replica's — all ready replicas serve the same epoch outside
// failure windows).
func (gs *gatewayServer) handlePlan(w http.ResponseWriter, _ *http.Request) {
	t := gs.pick().Table()
	if t == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "no table installed"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"slot":      t.Slot,
		"epoch":     t.Epoch,
		"objective": t.Objective,
		"serversOn": t.ServersOn,
		"degraded":  t.Degraded,
		"tier":      t.Tier,
		"seed":      t.Seed,
		"lanes":     t.Lanes,
	})
}

// replicaStatus is one replica's row in the cluster stats block.
type replicaStatus struct {
	ID        string         `json:"id"`
	Ready     bool           `json:"ready"`
	Epoch     uint64         `json:"epoch"`
	Staleness int            `json:"staleness"`
	Degraded  bool           `json:"degraded"`
	Stats     dispatch.Stats `json:"stats"`
}

// handleStats dumps the gateway counters and per-lane tallies; cluster
// modes add the fleet status (published epoch, membership, per-replica
// epochs/staleness/fence counters).
func (gs *gatewayServer) handleStats(w http.ResponseWriter, _ *http.Request) {
	if len(gs.reps) == 0 {
		writeJSON(w, http.StatusOK, gs.gw.Stats(gs.now()))
		return
	}
	now := gs.now()
	out := map[string]any{"mode": gs.mode}
	var rows []replicaStatus
	for _, r := range gs.reps {
		rows = append(rows, replicaStatus{
			ID: r.ID, Ready: r.Ready(), Epoch: r.Epoch(),
			Staleness: r.Staleness(), Degraded: r.Degraded(),
			Stats: r.Gateway().Stats(now),
		})
	}
	out["replicas"] = rows
	if gs.pub != nil {
		out["publishedEpoch"] = gs.pub.Epoch()
		out["members"] = gs.pub.Members()
	}
	if gs.ctrl != nil {
		out["control"] = map[string]any{
			"sub": gs.ctrl.Sub(), "actuations": gs.ctrl.Actuations(),
			"freezes": gs.ctrl.Freezes(), "frozen": gs.ctrl.Frozen(),
		}
	}
	if gs.sub != nil {
		rounds, failures, lastErr := gs.sub.Stats()
		sub := map[string]any{"rounds": rounds, "failures": failures}
		if lastErr != nil {
			sub["lastErr"] = lastErr.Error()
		}
		out["subscriber"] = sub
	}
	writeJSON(w, http.StatusOK, out)
}

// cmdServe boots the HTTP gateway for a scenario and runs until
// interrupted, then drains gracefully.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	path := fs.String("config", "", "path to a scenario JSON file (see 'scaffold')")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	slotSeconds := fs.Float64("slot-seconds", 0, "wall seconds per plan slot (overrides the scenario's dispatch block)")
	seed := fs.Uint64("seed", 0, "routing seed (overrides the scenario's dispatch block)")
	resilient := fs.Bool("resilient", true, "wrap the planner in the resilient fallback chain")
	replicas := fs.Int("replicas", 0, "run a replicated gateway fleet with this many in-process replicas (overrides the scenario's cluster block)")
	join := fs.String("join", "", "join an existing fleet as a data-plane replica: base URL of a fleet server (no planner runs locally)")
	joinID := fs.String("id", "", "replica identity announced when joining (default ext-<pid>)")
	controlOn := fs.Bool("control", false, "close the sub-slot loop: a drift controller re-scales routing tables mid-slot from achieved lane rates (tunable via the scenario's control block)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := loadScenario(*path)
	if err != nil {
		return err
	}
	if *resilient {
		sc.Resilient = true
	}
	if sc.Dispatch == nil {
		d := dispatch.Config{}.WithDefaults()
		sc.Dispatch = &d
	}
	if *slotSeconds > 0 {
		sc.Dispatch.SlotSeconds = *slotSeconds
	}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			sc.Dispatch.Seed = *seed
		}
	})
	gs, err := newServer(sc, *addr, serveOptions{Replicas: *replicas, JoinURL: *join, JoinID: *joinID, Control: *controlOn})
	if err != nil {
		return err
	}
	if err := gs.Start(); err != nil {
		return err
	}
	switch gs.mode {
	case "fleet":
		fmt.Printf("profitlb: serving scenario %s on http://%s as a %d-replica fleet (slot %d, %gs per slot)\n",
			sc.Name, gs.Addr(), len(gs.reps), sc.StartSlot, sc.Dispatch.SlotSeconds)
	case "join":
		fmt.Printf("profitlb: serving scenario %s on http://%s, joining fleet at %s as %s\n",
			sc.Name, gs.Addr(), *join, gs.reps[0].ID)
	default:
		fmt.Printf("profitlb: serving scenario %s on http://%s (slot %d, %gs per slot)\n",
			sc.Name, gs.Addr(), sc.StartSlot, sc.Dispatch.SlotSeconds)
	}
	fmt.Printf("profitlb: endpoints: /dispatch/<front-end>/<class>, /healthz, /readyz, /admin/plan, /admin/stats, /metrics\n")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	drainCtx, cancel := context.WithTimeout(context.Background(),
		time.Duration(gs.dcfg.DrainSeconds*float64(time.Second)))
	defer cancel()
	fmt.Println("profitlb: draining...")
	if err := gs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	st := gs.pick().Stats(gs.now())
	fmt.Printf("profitlb: drained cleanly: %d requests, %d admitted, %d shed\n",
		st.TotalRequests, st.TotalAdmitted, st.TotalShed)
	return nil
}

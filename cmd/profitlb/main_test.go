package main

import (
	"os"
	"strings"
	"testing"
)

// capture redirects stdout while fn runs and returns what was printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	return out, ferr
}

func TestCmdList(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig1", "fig11", "tab9", "val1-mm1"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestCmdRunSingle(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"run", "tab9"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Sub-deadlines") {
		t.Fatalf("run tab9 output unexpected: %q", out)
	}
}

func TestCmdRunUnknown(t *testing.T) {
	_, err := capture(t, func() error { return run([]string{"run", "nope"}) })
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("got %v", err)
	}
}

func TestCmdRunNeedsArgs(t *testing.T) {
	if err := run([]string{"run"}); err == nil {
		t.Fatal("want error without ids")
	}
}

func TestCmdPrices(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"prices"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Houston") || !strings.Contains(out, "Atlanta") {
		t.Fatal("prices output missing locations")
	}
}

func TestCmdTrace(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"trace", "-seed", "3", "-types", "2"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "slot,type0,type1") {
		t.Fatalf("trace header wrong: %q", out[:40])
	}
	if lines := strings.Count(out, "\n"); lines != 25 { // header + 24 slots
		t.Fatalf("trace lines = %d, want 25", lines)
	}
}

func TestCmdBench(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"bench", "-servers", "2"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "optimized/per-server") {
		t.Fatal("bench output missing planner")
	}
}

func TestCmdHelpAndUnknown(t *testing.T) {
	if _, err := capture(t, func() error { return run(nil) }); err != nil {
		t.Fatal("bare invocation should print usage without error")
	}
	if _, err := capture(t, func() error { return run([]string{"help"}) }); err != nil {
		t.Fatal("help should not error")
	}
	_, err := capture(t, func() error { return run([]string{"frobnicate"}) })
	if err == nil {
		t.Fatal("unknown command should error")
	}
}

func TestCmdScaffoldAndSimulate(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"scaffold"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"planner": "optimized"`) {
		t.Fatalf("scaffold output unexpected: %.120s", out)
	}
	path := t.TempDir() + "/scenario.json"
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	simOut, err := capture(t, func() error { return run([]string{"simulate", "-config", path}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(simOut, "total") || !strings.Contains(simOut, "scenario example") {
		t.Fatalf("simulate output unexpected: %.160s", simOut)
	}
}

func TestCmdSimulateErrors(t *testing.T) {
	if err := run([]string{"simulate"}); err == nil {
		t.Fatal("want error without -config")
	}
	if err := run([]string{"simulate", "-config", "/nonexistent.json"}); err == nil {
		t.Fatal("want error for missing file")
	}
}

// TestCmdSimulateMPCFlags: -horizon/-defer switch the scenario onto the
// rolling-horizon planner, and malformed or mis-sized allowance lists are
// rejected before the run starts.
func TestCmdSimulateMPCFlags(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"scaffold"}) })
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/scenario.json"
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	simOut, err := capture(t, func() error {
		return run([]string{"simulate", "-config", path, "-horizon", "4", "-defer", "0,2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(simOut, "planner mpc") {
		t.Fatalf("simulate did not switch to mpc: %.160s", simOut)
	}
	if err := run([]string{"simulate", "-config", path, "-defer", "0,oops"}); err == nil {
		t.Fatal("malformed -defer accepted")
	}
	if err := run([]string{"simulate", "-config", path, "-horizon", "4", "-defer", "1,2,3"}); err == nil {
		t.Fatal("mis-sized -defer accepted")
	}
}

func TestCmdAnalyze(t *testing.T) {
	scaffoldOut, err := capture(t, func() error { return run([]string{"scaffold"}) })
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/s.json"
	if err := os.WriteFile(path, []byte(scaffoldOut), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"analyze", "-config", path, "-add", "1", "-server-cost", "100"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "baseline profit") || !strings.Contains(out, "SHARE DUAL") {
		t.Fatalf("analyze output unexpected: %.200s", out)
	}
	if err := run([]string{"analyze"}); err == nil {
		t.Fatal("want error without -config")
	}
}

func TestCmdCompareAndExportLP(t *testing.T) {
	scaffoldOut, err := capture(t, func() error { return run([]string{"scaffold"}) })
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/s.json"
	if err := os.WriteFile(path, []byte(scaffoldOut), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error { return run([]string{"compare", "-config", path}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"optimized", "balanced", "nearest", "VS BEST"} {
		if !strings.Contains(out, want) {
			t.Fatalf("compare output missing %q", want)
		}
	}
	lpOut, err := capture(t, func() error { return run([]string{"export-lp", "-config", path, "-slot", "3"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Maximize", "Subject To", "Bounds", "End"} {
		if !strings.Contains(lpOut, want) {
			t.Fatalf("export-lp output missing %q", want)
		}
	}
	if err := run([]string{"compare"}); err == nil {
		t.Fatal("compare without -config should error")
	}
	if err := run([]string{"export-lp"}); err == nil {
		t.Fatal("export-lp without -config should error")
	}
}

func TestCmdSimulateFaultStorm(t *testing.T) {
	scaffoldOut, err := capture(t, func() error { return run([]string{"scaffold"}) })
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/s.json"
	if err := os.WriteFile(path, []byte(scaffoldOut), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"simulate", "-config", path, "-faults", "storm", "-seed", "42"})
	})
	if err != nil {
		t.Fatalf("fault storm aborted the horizon: %v", err)
	}
	for _, want := range []string{"TIER", "FAULTS", "fault schedule", "degraded slots"} {
		if !strings.Contains(out, want) {
			t.Fatalf("simulate -faults output missing %q:\n%.400s", want, out)
		}
	}
	// The full 24-slot horizon completed despite the storm.
	if !strings.Contains(out, "23") {
		t.Fatal("horizon did not reach the final slot")
	}
	// Same seed → identical report.
	again, err := capture(t, func() error {
		return run([]string{"simulate", "-config", path, "-faults", "storm", "-seed", "42"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if out != again {
		t.Fatal("same seed produced a different report")
	}
	// A different seed draws a different storm.
	other, err := capture(t, func() error {
		return run([]string{"simulate", "-config", path, "-faults", "storm", "-seed", "43"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if out == other {
		t.Fatal("different seeds produced identical storms")
	}
}

func TestCmdSimulateFaultsFile(t *testing.T) {
	scaffoldOut, err := capture(t, func() error { return run([]string{"scaffold"}) })
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfgPath := dir + "/s.json"
	if err := os.WriteFile(cfgPath, []byte(scaffoldOut), 0o644); err != nil {
		t.Fatal(err)
	}
	faultsPath := dir + "/faults.json"
	schedule := `{"events":[
		{"kind":"center-outage","center":1,"from":3,"to":5},
		{"kind":"price-spike","center":0,"factor":2,"from":4,"to":6}]}`
	if err := os.WriteFile(faultsPath, []byte(schedule), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"simulate", "-config", cfgPath, "-faults", faultsPath})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "center-outage") || !strings.Contains(out, "price-spike") {
		t.Fatalf("scheduled faults not reported:\n%.400s", out)
	}
	// A schedule targeting a center the scenario doesn't have is rejected.
	bad := dir + "/bad.json"
	if err := os.WriteFile(bad, []byte(`{"events":[{"kind":"center-outage","center":9,"from":0,"to":0}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"simulate", "-config", cfgPath, "-faults", bad}); err == nil {
		t.Fatal("out-of-range fault schedule accepted")
	}
}

func TestCmdChaos(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"chaos", "-seed", "7"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"storm", "optimized", "balanced", "RETAINED", "COMPLETION", "DEGRADED"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chaos output missing %q:\n%.400s", want, out)
		}
	}
	again, err := capture(t, func() error { return run([]string{"chaos", "-seed", "7"}) })
	if err != nil {
		t.Fatal(err)
	}
	if out != again {
		t.Fatal("chaos with the same seed is not reproducible")
	}
}

func TestCmdRunChaosExperiment(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"run", "rob2-chaos"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"storm", "retained", "fallback"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rob2-chaos output missing %q", want)
		}
	}
}

func TestCmdTraceStats(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"trace", "-stats", "-types", "2"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "PEAK/MEAN") || !strings.Contains(out, "type1") {
		t.Fatalf("trace -stats output unexpected: %q", out)
	}
}

func TestCmdSimulateParallelMatchesSerial(t *testing.T) {
	scaffoldOut, err := capture(t, func() error { return run([]string{"scaffold"}) })
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/s.json"
	if err := os.WriteFile(path, []byte(scaffoldOut), 0o644); err != nil {
		t.Fatal(err)
	}
	serial, err := capture(t, func() error { return run([]string{"simulate", "-config", path}) })
	if err != nil {
		t.Fatal(err)
	}
	// The engine commits bit-identical plans, so the whole report — every
	// dollar figure on every slot — must match the serial run byte for byte.
	for _, par := range []string{"1", "-1"} {
		out, err := capture(t, func() error {
			return run([]string{"simulate", "-config", path, "-parallel", par})
		})
		if err != nil {
			t.Fatal(err)
		}
		if out != serial {
			t.Fatalf("-parallel %s report differs from the serial report", par)
		}
	}
}

func TestCmdBenchParallel(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"bench", "-servers", "2", "-parallel", "2"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "level-search") {
		t.Fatal("bench -parallel output missing planner")
	}
}

// writeScaffold dumps the example scenario to a temp file, optionally
// rewriting it first.
func writeScaffold(t *testing.T, rewrite func(string) string) string {
	t.Helper()
	out, err := capture(t, func() error { return run([]string{"scaffold"}) })
	if err != nil {
		t.Fatal(err)
	}
	if rewrite != nil {
		out = rewrite(out)
	}
	path := t.TempDir() + "/s.json"
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdChaosParallelPrecedence(t *testing.T) {
	// Plans are bit-identical across parallelism settings, so the chaos
	// table must be byte-identical whether the workers come from the
	// scenario's parallelism field, the -parallel flag, or neither — and
	// an explicit -parallel 0 must override a scenario that asks for all
	// CPUs (same precedence rule as simulate).
	plain := writeScaffold(t, nil)
	parallelScenario := writeScaffold(t, func(s string) string {
		return strings.Replace(s, `"slots": 24`, `"slots": 24, "parallelism": -1`, 1)
	})
	base, err := capture(t, func() error { return run([]string{"chaos", "-config", plain, "-seed", "3"}) })
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"chaos", "-config", plain, "-seed", "3", "-parallel", "-1"},
		{"chaos", "-config", parallelScenario, "-seed", "3"},
		{"chaos", "-config", parallelScenario, "-seed", "3", "-parallel", "0"},
	}
	for _, args := range cases {
		out, err := capture(t, func() error { return run(args) })
		if err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if out != base {
			t.Fatalf("%v: report differs from the serial baseline", args)
		}
	}
}

// TestCmdChaosFeeds is the chaos+feeds smoke test (the `make
// verify-feeds` tier runs it explicitly): one storm with feed faults,
// inputs routed through the feed layer, reproducible by seed.
func TestCmdChaosFeeds(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"chaos", "-seed", "5", "-feeds"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"FEED TIERS", "fresh:", "feed-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chaos -feeds output missing %q:\n%.500s", want, out)
		}
	}
	again, err := capture(t, func() error { return run([]string{"chaos", "-seed", "5", "-feeds"}) })
	if err != nil {
		t.Fatal(err)
	}
	if out != again {
		t.Fatal("chaos -feeds with the same seed is not reproducible")
	}
}

func TestCmdSimulateFeeds(t *testing.T) {
	path := writeScaffold(t, nil)
	out, err := capture(t, func() error { return run([]string{"simulate", "-config", path, "-feeds", "on"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "FEEDS") || !strings.Contains(out, "feed tiers fresh:") {
		t.Fatalf("simulate -feeds output missing feed health:\n%.500s", out)
	}
	// A feed-config file works too, and hostile files are rejected.
	feedsPath := t.TempDir() + "/feeds.json"
	if err := os.WriteFile(feedsPath, []byte(`{"ttl": 2, "staleMargin": 0.1, "seed": 3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error {
		return run([]string{"simulate", "-config", path, "-feeds", feedsPath})
	}); err != nil {
		t.Fatalf("simulate with feeds file: %v", err)
	}
	badPath := t.TempDir() + "/bad.json"
	if err := os.WriteFile(badPath, []byte(`{"bogusKnob": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error {
		return run([]string{"simulate", "-config", path, "-feeds", badPath})
	}); err == nil {
		t.Fatal("unknown feed-config field must be rejected")
	}
	if _, err := capture(t, func() error {
		return run([]string{"simulate", "-config", path, "-feeds", "/nonexistent.json"})
	}); err == nil {
		t.Fatal("missing feeds file must error")
	}
}

func TestCmdRunDarkFeedsExperiment(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"run", "rob3-darkfeeds"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dark", "prior", "feeds-clean", "100.00%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rob3-darkfeeds output missing %q", want)
		}
	}
}

package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"profitlb/internal/cluster"
	"profitlb/internal/config"
	"profitlb/internal/dispatch"
	"profitlb/internal/loadgen"
	"profitlb/internal/obs"
	"profitlb/internal/sim"
)

// cmdLoadtest replays a scenario against the dispatch plane at request
// granularity and reports achieved vs planned traffic, shed fractions
// and realized vs predicted profit. By default it runs the gateway
// in-process (driver + load generator in virtual time); with -addr it
// instead fires requests at a live `profitlb serve` gateway over HTTP.
func cmdLoadtest(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ContinueOnError)
	path := fs.String("config", "", "path to a scenario JSON file (see 'scaffold')")
	slots := fs.Int("slots", 0, "slots to replay (default: the scenario's horizon)")
	seed := fs.Int64("seed", 1, "arrival-synthesis seed (and storm seed with -faults storm)")
	burst := fs.Float64("burst-factor", 0, "open-loop burstiness: >1 switches Poisson to a two-state MMPP with this peak-to-mean ratio")
	burstFE := fs.Int("burst-front-end", -1, "pin the MMPP burst to this front-end index; other front-ends stay Poisson (-1 bursts all)")
	controlOn := fs.Bool("control", false, "close the sub-slot loop: a drift controller re-scales routing tables mid-slot from achieved lane rates (tunable via the scenario's control block)")
	closed := fs.Bool("closed", false, "closed-loop load: think-time users per (type, front-end) stream instead of open-loop arrivals")
	users := fs.Int("users", 0, "closed-loop users per stream (default 32)")
	think := fs.Float64("think", 0, "closed-loop mean think time in virtual time units (default: slot/8)")
	faultsArg := fs.String("faults", "", "fault schedule: a JSON file of events, 'storm' for a seeded outage+spike storm, or 'flash' for a front-end-0 flash crowd")
	feedsArg := fs.String("feeds", "", "telemetry feed layer: 'on' for defaults, or a feed-config JSON file")
	resilient := fs.Bool("resilient", false, "wrap the planner in the resilient fallback chain")
	parallel := fs.Int("parallel", 0, "plan-search workers (0 serial, -1 all CPUs); overrides the scenario's parallelism")
	minPlanned := fs.Float64("min-planned", 500, "lanes below this planned request count are excluded from the rate-error gate")
	addr := fs.String("addr", "", "HTTP mode: base URL of a live gateway, or a comma-separated list of replica URLs")
	n := fs.Int("n", 1000, "HTTP mode: requests to fire")
	replicas := fs.Int("replicas", 0, "replay against an in-process replicated gateway fleet of this size (overrides the scenario's cluster block)")
	metricsPath := fs.String("metrics", "", "write the replay's metrics to this file on exit (Prometheus text; JSON when the path ends in .json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := loadScenario(*path)
	if err != nil {
		return err
	}
	if *addr != "" {
		targets := strings.Split(*addr, ",")
		if len(targets) == 1 {
			res, err := loadgen.FireHTTP(targets[0], sc.System, *n, *seed)
			if err != nil {
				return err
			}
			fmt.Printf("loadtest %s: %d requests → %d admitted, %d shed, %d rejected (%d retries)\n",
				targets[0], res.Sent, res.Admitted, res.Shed, res.Rejected, res.Retries)
			return nil
		}
		total, per, err := loadgen.FireHTTPMulti(targets, sc.System, *n, *seed, loadgen.FireConfig{})
		if err != nil {
			return err
		}
		for i, p := range per {
			fmt.Printf("  %s: %d requests → %d admitted, %d shed, %d rejected (%d retries)\n",
				targets[i], p.Sent, p.Admitted, p.Shed, p.Rejected, p.Retries)
		}
		fmt.Printf("loadtest fleet of %d: %d requests → %d admitted, %d shed, %d rejected (%d retries)\n",
			len(targets), total.Sent, total.Admitted, total.Shed, total.Rejected, total.Retries)
		return nil
	}
	if *resilient {
		sc.Resilient = true
	}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "parallel" {
			sc.Parallelism = *parallel
		}
	})
	if err := applyFaultsFlag(sc, *faultsArg, *seed); err != nil {
		return err
	}
	if err := applyFeedsFlag(sc, *feedsArg); err != nil {
		return err
	}
	if err := sc.Validate(); err != nil {
		return err
	}
	// The gateway always runs instrumented here: the summary cross-checks
	// the load generator's tallies against the dispatch counters.
	reg := obs.NewRegistry()
	scope := obs.NewScope(reg, nil)
	sc.Obs = scope
	planner, err := sc.BuildPlanner()
	if err != nil {
		return err
	}
	src, err := sim.NewInputSource(sc.SimConfig())
	if err != nil {
		return err
	}
	gw := dispatch.NewGateway(sc.System, sc.DispatchConfig(), scope)
	d := &dispatch.Driver{Gateway: gw, Planner: planner, Source: src}
	lcfg := loadgen.Config{
		Seed:        *seed,
		StartSlot:   sc.StartSlot,
		Slots:       sc.Slots,
		BurstFactor: *burst,
		Closed:      *closed,
		Users:       *users,
		Think:       *think,
	}
	if *burstFE >= 0 {
		lcfg.BurstFrontEnd = burstFE
	}
	if *controlOn {
		ctrlCfg := sc.ControlConfig()
		lcfg.Control = &ctrlCfg
	}
	if *slots > 0 {
		lcfg.Slots = *slots
	}
	ccfg := sc.ClusterConfig()
	if *replicas > 0 {
		ccfg.Replicas = *replicas
	}
	if ccfg.Replicas > 1 {
		return fleetLoadtest(sc, ccfg, d, src, lcfg, scope, *minPlanned)
	}
	rep, err := loadgen.Run(d, src, lcfg)
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "loadtest %s: planner %s, %d slots, seed %d\n", sc.Name, rep.Planner, len(rep.Slots), *seed)
	fmt.Fprintln(w, "SLOT\tOFFERED\tADMITTED\tSHED(BUDGET)\tSHED(UNPLANNED)\tNET($)\tPLANNED($)\tTIER")
	for i := range rep.Slots {
		s := &rep.Slots[i]
		tier := s.Tier
		if tier == "" {
			tier = "primary"
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%.2f\t%.2f\t%s\n",
			s.Slot, s.Offered, s.Admitted, s.ShedBudget, s.ShedUnplanned, s.NetProfit, s.PlannedProfit, tier)
	}
	offered, admitted, shed := rep.Totals()
	fmt.Fprintf(w, "total\t%d\t%d\t%d\t\t%.2f\t%.2f\t\n", offered, admitted, shed,
		rep.TotalNetProfit(), rep.TotalPlannedProfit())
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("shed fraction %.4f (%d budget, %d unplanned), max lane rate error %.2f%% (lanes ≥ %.0f planned), degraded slots %d/%d\n",
		rep.ShedFraction(), rep.BudgetShed(), shed-rep.BudgetShed(),
		100*rep.MaxLaneError(*minPlanned), *minPlanned, rep.DegradedSlots(), len(rep.Slots))
	if lcfg.Control != nil {
		fmt.Printf("control: %d actuations, max lane demand error %.2f%% (lanes ≥ %.0f demand)\n",
			rep.Actuations(), 100*rep.MaxDemandError(*minPlanned), *minPlanned)
	}

	// Reconcile the generator's accounting with the gateway's counters:
	// both watched the same requests through independent code paths.
	cReq := scope.Counter("dispatch_requests_total").Value()
	cAdmit := scope.Counter("dispatch_admitted_total").Value()
	cShed := scope.Counter("dispatch_shed_total", obs.L("reason", "budget")).Value() +
		scope.Counter("dispatch_shed_total", obs.L("reason", "unplanned")).Value()
	if cReq == offered && cAdmit == admitted && cShed == shed {
		fmt.Printf("obs counters reconcile: %d requests = %d admitted + %d shed\n", cReq, cAdmit, cShed)
	} else {
		fmt.Printf("obs counters DISAGREE: counters %d/%d/%d vs report %d/%d/%d\n",
			cReq, cAdmit, cShed, offered, admitted, shed)
	}
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		werr := error(nil)
		if strings.HasSuffix(*metricsPath, ".json") {
			werr = reg.WriteJSON(f)
		} else {
			werr = reg.WritePrometheus(f)
		}
		if werr != nil {
			return werr
		}
	}
	return nil
}

// fleetLoadtest replays the scenario against an in-process replicated
// gateway fleet and reconciles each replica's gateway counters against
// the generator's per-replica tallies.
func fleetLoadtest(sc *config.Scenario, ccfg cluster.Config, d *dispatch.Driver, src *sim.InputSource, lcfg loadgen.Config, scope *obs.Scope, minPlanned float64) error {
	f, err := cluster.NewFleet(sc.System, sc.DispatchConfig(), ccfg, d, sc.Faults, scope)
	if err != nil {
		return err
	}
	rep, err := loadgen.RunFleet(f, src, lcfg)
	if err != nil {
		return err
	}
	rep.Planner = d.Planner.Name()

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "loadtest %s: planner %s, fleet of %d, %d slots, seed %d\n",
		sc.Name, rep.Planner, rep.Replicas, len(rep.Slots), lcfg.Seed)
	fmt.Fprintln(w, "SLOT\tEPOCH\tLIVE\tSTALE\tOFFERED\tADMITTED\tSHED(BUDGET)\tSHED(UNPLANNED)\tINVALID\tTIER")
	for i := range rep.Slots {
		s := &rep.Slots[i]
		tier := s.Tier
		if tier == "" {
			tier = "primary"
		}
		if s.Epoch == 0 {
			tier = "outage"
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			s.Slot, s.Epoch, s.Live, s.Stale, s.Offered, s.Admitted, s.ShedBudget, s.ShedUnplanned, s.Invalid, tier)
	}
	offered, admitted, shed := rep.Totals()
	fmt.Fprintf(w, "total\t\t\t\t%d\t%d\t%d\t\t%d\t\n", offered, admitted, shed, rep.Invalid())
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("max fleet lane rate error %.2f%% (lanes ≥ %.0f planned), invalid answers %d\n",
		100*rep.MaxLaneError(minPlanned), minPlanned, rep.Invalid())
	if lcfg.Control != nil {
		fmt.Printf("control: %d actuations, max fleet lane demand error %.2f%% (lanes ≥ %.0f demand)\n",
			rep.Actuations(), 100*rep.MaxDemandError(minPlanned), minPlanned)
	}

	// Reconcile each replica's gateway counters against the generator's
	// per-replica ground truth: every request the balancer fired at a
	// replica must be in that replica's own accounting, exactly.
	now := float64(len(rep.Slots)) * sc.System.Slot()
	ok := true
	for i, pr := range rep.PerReplica {
		st := f.Replicas[i].Gateway().Stats(now)
		if st.TotalRequests != pr.Offered || st.TotalAdmitted != pr.Admitted ||
			st.TotalShed != pr.ShedBudget+pr.ShedUnplanned {
			ok = false
			fmt.Printf("replica %s DISAGREES: gateway %d/%d/%d vs generator %d/%d/%d\n",
				pr.ID, st.TotalRequests, st.TotalAdmitted, st.TotalShed,
				pr.Offered, pr.Admitted, pr.ShedBudget+pr.ShedUnplanned)
		}
	}
	if ok {
		fmt.Printf("per-replica counters reconcile across %d replicas: %d requests = %d admitted + %d shed\n",
			rep.Replicas, offered, admitted, shed)
	}
	return nil
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"profitlb/internal/config"
	"profitlb/internal/dispatch"
	"profitlb/internal/loadgen"
)

// serveScenario is the smoke-test fixture: the example scenario with a
// dispatch block whose slot is long enough that no rotation happens
// mid-test and whose drain deadline is short.
func serveScenario(t *testing.T) *config.Scenario {
	t.Helper()
	sc := config.Example()
	sc.Name = "serve-smoke"
	sc.Dispatch = &dispatch.Config{Seed: 42, SlotSeconds: 300, DrainSeconds: 5}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	return sc
}

// startServer boots a gateway server on a free port and registers a
// cleanup drain in case the test bails early.
func startServer(t *testing.T, sc *config.Scenario) *gatewayServer {
	t.Helper()
	gs, err := newGatewayServer(sc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := gs.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = gs.Shutdown(ctx)
	})
	return gs
}

// getJSON fetches a URL and decodes the JSON body.
func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decoding body: %v", url, err)
	}
	return resp.StatusCode
}

// TestServeSmoke is the verify-dispatch gate: boot the gateway, fire a
// burst over HTTP with the load generator, check every endpoint, and
// drain cleanly. The admitted+shed totals must reconcile between the
// HTTP client, /admin/stats and /metrics.
func TestServeSmoke(t *testing.T) {
	sc := serveScenario(t)
	gs := startServer(t, sc)
	base := "http://" + gs.Addr()

	var health map[string]any
	if code := getJSON(t, base+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", code)
	}
	if health["status"] != "ok" || health["degraded"] == true {
		t.Fatalf("unhealthy at boot: %v", health)
	}

	var plan map[string]any
	if code := getJSON(t, base+"/admin/plan", &plan); code != http.StatusOK {
		t.Fatalf("/admin/plan = %d, want 200", code)
	}
	if lanes, ok := plan["lanes"].([]any); !ok || len(lanes) == 0 {
		t.Fatalf("/admin/plan has no lanes: %v", plan["lanes"])
	}
	if plan["degraded"] == true {
		t.Fatalf("boot plan is degraded: %v", plan)
	}

	const n = 400
	res, err := loadgen.FireHTTP(base, sc.System, n, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != n || res.Rejected != 0 {
		t.Fatalf("fired %+v, want %d sent and 0 rejected", res, n)
	}
	if res.Admitted == 0 {
		t.Fatalf("gateway admitted nothing: %+v", res)
	}

	// A named dispatch answers with the serving center.
	var dec map[string]any
	u := fmt.Sprintf("%s/dispatch/%s/%s", base, sc.System.FrontEnds[0].Name, sc.System.Classes[0].Name)
	if code := getJSON(t, u, &dec); code != http.StatusOK && code != http.StatusTooManyRequests {
		t.Fatalf("GET %s = %d, want 200 or 429", u, code)
	}
	extra := 1
	if dec["outcome"] == "admitted" && dec["center"] == nil {
		t.Fatalf("admitted decision without a center: %v", dec)
	}

	// Unknown names 404 without counting against the gateway.
	resp, err := http.Get(base + "/dispatch/mars/web")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/dispatch/mars/web = %d, want 404", resp.StatusCode)
	}

	var stats dispatch.Stats
	if code := getJSON(t, base+"/admin/stats", &stats); code != http.StatusOK {
		t.Fatalf("/admin/stats = %d, want 200", code)
	}
	if got, want := stats.TotalRequests, int64(n+extra); got != want {
		t.Fatalf("stats counted %d requests, want %d", got, want)
	}
	if stats.TotalAdmitted+stats.TotalShed != stats.TotalRequests {
		t.Fatalf("stats do not reconcile: %+v", stats)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mblob, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", mresp.StatusCode)
	}
	metrics := string(mblob)
	if !strings.Contains(metrics, "dispatch_requests_total") ||
		!strings.Contains(metrics, fmt.Sprintf("dispatch_requests_total %d", stats.TotalRequests)) {
		t.Fatalf("/metrics missing dispatch_requests_total %d:\n%s", stats.TotalRequests, metrics)
	}

	// Drain: the shutdown completes within the deadline and late
	// requests are refused, not served.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := gs.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("gateway still answering after drain")
	}
}

// TestServeDrainRefusesNewWork: a draining gateway answers 503 on the
// dispatch path before the listener closes.
func TestServeDrainRefusesNewWork(t *testing.T) {
	sc := serveScenario(t)
	gs := startServer(t, sc)
	gs.draining.Store(true)
	var dec map[string]any
	u := fmt.Sprintf("http://%s/dispatch/%s/%s", gs.Addr(), sc.System.FrontEnds[0].Name, sc.System.Classes[0].Name)
	if code := getJSON(t, u, &dec); code != http.StatusServiceUnavailable {
		t.Fatalf("dispatch while draining = %d, want 503", code)
	}
	if dec["outcome"] != "draining" {
		t.Fatalf("draining body: %v", dec)
	}
	var health map[string]any
	if code := getJSON(t, "http://"+gs.Addr()+"/healthz", &health); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while draining = %d, want 503", code)
	}
}

// TestServeFrontEndExposure: a dispatch block that exposes only one
// front-end 404s the others.
func TestServeFrontEndExposure(t *testing.T) {
	sc := serveScenario(t)
	sc.Dispatch.FrontEnds = []string{sc.System.FrontEnds[0].Name}
	gs := startServer(t, sc)
	base := "http://" + gs.Addr()
	class := sc.System.Classes[0].Name
	resp, err := http.Get(fmt.Sprintf("%s/dispatch/%s/%s", base, sc.System.FrontEnds[0].Name, class))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("exposed front-end = %d, want 200 or 429", resp.StatusCode)
	}
	resp, err = http.Get(fmt.Sprintf("%s/dispatch/%s/%s", base, sc.System.FrontEnds[1].Name, class))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unexposed front-end = %d, want 404", resp.StatusCode)
	}
}

// TestServeRejectsInvalidScenario: wiring errors surface at construction.
func TestServeRejectsInvalidScenario(t *testing.T) {
	sc := serveScenario(t)
	sc.Planner = "no-such-planner"
	if _, err := newGatewayServer(sc, "127.0.0.1:0"); err == nil {
		t.Fatal("bogus planner accepted")
	}
}

package profitlb_test

import (
	"fmt"

	"profitlb"
)

// ExampleNewTUF builds a two-level step-downward time utility function
// and evaluates it across its brackets.
func ExampleNewTUF() {
	t, err := profitlb.NewTUF(
		profitlb.TUFLevel{Utility: 20, Deadline: 0.5},
		profitlb.TUFLevel{Utility: 8, Deadline: 2},
	)
	if err != nil {
		panic(err)
	}
	for _, r := range []float64{0.25, 0.5, 1.0, 2.0, 3.0} {
		fmt.Printf("U(%.2f) = %g\n", r, t.Utility(r))
	}
	// Output:
	// U(0.25) = 20
	// U(0.50) = 20
	// U(1.00) = 8
	// U(2.00) = 8
	// U(3.00) = 0
}

// ExampleNewTUFConstraintSeries shows the paper's Section IV
// transformation: the step TUF becomes a set of big-M inequalities that
// admit exactly one utility value at every delay.
func ExampleNewTUFConstraintSeries() {
	t := profitlb.MustTUF(
		profitlb.TUFLevel{Utility: 10, Deadline: 1},
		profitlb.TUFLevel{Utility: 4, Deadline: 2},
	)
	series := profitlb.NewTUFConstraintSeries(t, 0, 0, 10)
	fmt.Println("feasible at R=0.5:", series.FeasibleUtilities(0.5))
	fmt.Println("feasible at R=1.5:", series.FeasibleUtilities(1.5))
	// Output:
	// feasible at R=0.5: [10]
	// feasible at R=1.5: [4]
}

// ExampleOptimized_Plan plans one slot on a single-center system: all
// profitable demand is served and the idle margin of the fleet stays off.
func ExampleOptimized_Plan() {
	sys := &profitlb.System{
		Classes: []profitlb.RequestClass{{
			Name: "web",
			TUF:  profitlb.MustTUF(profitlb.TUFLevel{Utility: 10, Deadline: 0.01}),
		}},
		FrontEnds: []profitlb.FrontEnd{{Name: "fe", DistanceMiles: []float64{100}}},
		Centers: []profitlb.DataCenter{{
			Name: "dc", Servers: 10, Capacity: 1,
			ServiceRate:      []float64{1000},
			EnergyPerRequest: []float64{0.001},
		}},
	}
	in := &profitlb.Input{Sys: sys, Arrivals: [][]float64{{1500}}, Prices: []float64{0.1}}
	plan, err := profitlb.NewOptimized().Plan(in)
	if err != nil {
		panic(err)
	}
	fmt.Printf("served %.0f of 1500 requests/h on %d of 10 servers\n",
		plan.Served(0), plan.ServersOn[0])
	// Output:
	// served 1500 of 1500 requests/h on 2 of 10 servers
}

// ExampleSimulate runs a two-slot fluid simulation and prints the
// accounted net profit.
func ExampleSimulate() {
	sys := &profitlb.System{
		Classes: []profitlb.RequestClass{{
			Name: "web",
			TUF:  profitlb.MustTUF(profitlb.TUFLevel{Utility: 1, Deadline: 0.01}),
		}},
		FrontEnds: []profitlb.FrontEnd{{Name: "fe", DistanceMiles: []float64{100}}},
		Centers: []profitlb.DataCenter{{
			Name: "dc", Servers: 4, Capacity: 1,
			ServiceRate:      []float64{5000},
			EnergyPerRequest: []float64{0.002},
		}},
	}
	cfg := profitlb.SimConfig{
		Sys:    sys,
		Traces: []*profitlb.Trace{profitlb.ConstantTrace("fe", []float64{8000}, 2)},
		Prices: []*profitlb.PriceTrace{{Name: "flat", Prices: []float64{0.05, 0.05}}},
		Slots:  2,
	}
	rep, err := profitlb.Simulate(cfg, profitlb.NewOptimized())
	if err != nil {
		panic(err)
	}
	fmt.Printf("2 slots, net profit $%.2f\n", rep.TotalNetProfit())
	// Output:
	// 2 slots, net profit $15998.40
}

// ExampleExpandHeterogeneous flattens a heterogeneous center into
// homogeneous groups.
func ExampleExpandHeterogeneous() {
	classes := []profitlb.RequestClass{{
		Name: "web", TUF: profitlb.MustTUF(profitlb.TUFLevel{Utility: 10, Deadline: 0.01}),
	}}
	fes := []profitlb.FrontEnd{{Name: "fe", DistanceMiles: []float64{150}}}
	centers := []profitlb.HeterogeneousCenter{{
		Name: "dc",
		Groups: []profitlb.ServerGroup{
			{Name: "fast", Servers: 2, Capacity: 1, ServiceRate: []float64{4000}, EnergyPerRequest: []float64{0.004}},
			{Name: "slow", Servers: 6, Capacity: 1, ServiceRate: []float64{1000}, EnergyPerRequest: []float64{0.001}},
		},
	}}
	sys, err := profitlb.ExpandHeterogeneous(classes, fes, centers, 0)
	if err != nil {
		panic(err)
	}
	for _, c := range sys.Centers {
		fmt.Println(c.Name, c.Servers)
	}
	// Output:
	// dc/fast 2
	// dc/slow 6
}

// ExamplePlanHorizon shows temporal arbitrage: deferrable work waits for
// the cheap half of the window.
func ExamplePlanHorizon() {
	sys := &profitlb.System{
		Classes: []profitlb.RequestClass{{
			Name: "batch",
			TUF:  profitlb.MustTUF(profitlb.TUFLevel{Utility: 6, Deadline: 0.1}),
		}},
		FrontEnds: []profitlb.FrontEnd{{Name: "fe", DistanceMiles: []float64{100}}},
		Centers: []profitlb.DataCenter{{
			Name: "dc", Servers: 4, Capacity: 1,
			ServiceRate:      []float64{800},
			EnergyPerRequest: []float64{4},
		}},
	}
	h := &profitlb.HorizonInput{Sys: sys, MaxDefer: []int{2}}
	for t := 0; t < 4; t++ {
		h.Arrivals = append(h.Arrivals, [][]float64{{500}})
		price := 1.0 // expensive first half
		if t >= 2 {
			price = 0.1
		}
		h.Prices = append(h.Prices, []float64{price})
	}
	plan, err := profitlb.PlanHorizon(h)
	if err != nil {
		panic(err)
	}
	fmt.Printf("deferred fraction: %.0f%%\n", 100*plan.DeferredFraction[0])
	for t, slot := range plan.Slots {
		fmt.Printf("slot %d served %.0f\n", t, slot.Served(0))
	}
	// Output:
	// deferred fraction: 50%
	// slot 0 served 0
	// slot 1 served 0
	// slot 2 served 1500
	// slot 3 served 500
}

// ExampleOptimized_Sensitivity prices the scarce resources of a slot.
func ExampleOptimized_Sensitivity() {
	sys := &profitlb.System{
		Classes: []profitlb.RequestClass{{
			Name: "web",
			TUF:  profitlb.MustTUF(profitlb.TUFLevel{Utility: 10, Deadline: 0.01}),
		}},
		FrontEnds: []profitlb.FrontEnd{{Name: "fe", DistanceMiles: []float64{100}}},
		Centers: []profitlb.DataCenter{{
			Name: "dc", Servers: 2, Capacity: 1,
			ServiceRate:      []float64{1000},
			EnergyPerRequest: []float64{0.001},
		}},
	}
	// Demand far beyond capacity: CPU share is the binding resource.
	in := &profitlb.Input{Sys: sys, Arrivals: [][]float64{{10000}}, Prices: []float64{0.1}}
	sens, err := profitlb.NewOptimized().Sensitivity(in)
	if err != nil {
		panic(err)
	}
	fmt.Printf("share is worth money: %v\n", sens.ShareValue[0] > 0)
	fmt.Printf("extra demand is worthless: %v\n", sens.DemandValue[0][0] == 0)
	// Output:
	// share is worth money: true
	// extra demand is worthless: true
}

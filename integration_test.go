package profitlb

// End-to-end integration: one realistic provider workflow exercising the
// whole stack through the public facade — scenario definition, fluid
// simulation, baseline comparison, forecast-driven planning, request-level
// realization, sensitivity, capacity advice and multi-slot deferral — with
// cross-checks between the layers.

import (
	"bytes"
	"math"
	"testing"
)

// buildProviderSystem is a mid-size realistic topology: 3 classes
// (interactive, API, batch), 2 front-ends, 3 centers.
func buildProviderSystem() *System {
	return &System{
		Classes: []RequestClass{
			{Name: "interactive", TUF: MustTUF(
				TUFLevel{Utility: 0.02, Deadline: 0.002},
				TUFLevel{Utility: 0.008, Deadline: 0.01},
			), TransferCostPerMile: 2e-7},
			{Name: "api", TUF: MustTUF(
				TUFLevel{Utility: 0.005, Deadline: 0.005},
			), TransferCostPerMile: 1e-7},
			{Name: "batch", TUF: MustTUF(
				TUFLevel{Utility: 0.05, Deadline: 0.1},
			), TransferCostPerMile: 3e-7},
		},
		FrontEnds: []FrontEnd{
			{Name: "east", DistanceMiles: []float64{200, 2300, 800}},
			{Name: "west", DistanceMiles: []float64{2400, 150, 1600}},
		},
		Centers: []DataCenter{
			{Name: "virginia", Servers: 8, Capacity: 1,
				ServiceRate:      []float64{40000, 90000, 2500},
				EnergyPerRequest: []float64{0.0001, 0.00004, 0.01}},
			{Name: "oregon", Servers: 8, Capacity: 1,
				ServiceRate:      []float64{38000, 95000, 2800},
				EnergyPerRequest: []float64{0.00011, 0.00004, 0.009}},
			{Name: "dallas", Servers: 6, Capacity: 1,
				ServiceRate:      []float64{42000, 88000, 2600},
				EnergyPerRequest: []float64{0.00009, 0.000045, 0.0095}},
		},
	}
}

func buildProviderConfig(sys *System) SimConfig {
	east := ShiftTypes("east", WorldCupLike(WorldCupConfig{Seed: 501, Base: 60000}), 3, 7)
	west := ShiftTypes("west", WorldCupLike(WorldCupConfig{Seed: 502, Base: 52000}), 3, 7)
	return SimConfig{
		Sys:    sys,
		Traces: []*Trace{east, west},
		Prices: []*PriceTrace{Atlanta(), MountainView(), Houston()},
		Slots:  24,
	}
}

func TestIntegrationFullPipeline(t *testing.T) {
	sys := buildProviderSystem()
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := buildProviderConfig(sys)

	// 1. Fluid comparison: the optimizer must dominate every baseline.
	reports, err := CompareApproaches(cfg,
		NewOptimized(), NewBalanced(), NewNearest(), NewGreedyProfit(), NewRandomBaseline(5))
	if err != nil {
		t.Fatal(err)
	}
	opt := reports[0]
	for _, r := range reports[1:] {
		if opt.TotalNetProfit() < r.TotalNetProfit()-1e-6 {
			t.Fatalf("optimized %g below %s %g", opt.TotalNetProfit(), r.Planner, r.TotalNetProfit())
		}
	}

	// 2. Forecast-driven planning stays within a sane band of the oracle.
	predicted := make([]*Trace, len(cfg.Traces))
	for i, tr := range cfg.Traces {
		p, err := PredictTrace(tr, 1e8, 5e7)
		if err != nil {
			t.Fatal(err)
		}
		predicted[i] = p
	}
	fcCfg := cfg
	fcCfg.PlanTraces = predicted
	fc, err := Simulate(fcCfg, NewOptimized())
	if err != nil {
		t.Fatal(err)
	}
	frac := fc.TotalNetProfit() / opt.TotalNetProfit()
	if frac < 0.5 || frac > 1.0+1e-9 {
		t.Fatalf("forecast-driven fraction %g outside (0.5, 1]", frac)
	}

	// 3. Request-level realization tracks the fluid service volumes.
	des, err := SimulateRequests(cfg, NewOptimized(), 77)
	if err != nil {
		t.Fatal(err)
	}
	var fluidServed, realServed float64
	for i := range opt.Slots {
		fluidServed += opt.Slots[i].Served()
		for _, cs := range des.Slots[i].Classes {
			realServed += float64(cs.Served)
		}
	}
	if math.Abs(realServed-fluidServed)/fluidServed > 0.05 {
		t.Fatalf("request-level served %g vs fluid %g", realServed, fluidServed)
	}

	// 4. Sensitivity and advice agree on where capacity is short.
	in := &Input{Sys: sys, Prices: make([]float64, 3)}
	in.Arrivals = make([][]float64, 2)
	for s := 0; s < 2; s++ {
		in.Arrivals[s] = make([]float64, 3)
		for k := 0; k < 3; k++ {
			in.Arrivals[s][k] = cfg.Traces[s].At(15, k) // the busy hour
		}
	}
	for l := 0; l < 3; l++ {
		in.Prices[l] = cfg.Prices[l].At(15)
	}
	sens, err := NewOptimized().Sensitivity(in)
	if err != nil {
		t.Fatal(err)
	}
	for l, v := range sens.ShareValue {
		if v < 0 {
			t.Fatalf("negative share price at center %d: %g", l, v)
		}
	}

	// 5. The advisor runs on a shortened horizon and ranks sanely.
	short := cfg
	short.Slots = 4
	short.StartSlot = 13
	adv, err := Advise(AdvisorConfig{Sim: short, AddServers: 2, ServerCost: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Recommendations) != 3 {
		t.Fatalf("recommendations %d", len(adv.Recommendations))
	}
	for i := 1; i < len(adv.Recommendations); i++ {
		if adv.Recommendations[i-1].GainPerServer < adv.Recommendations[i].GainPerServer {
			t.Fatal("recommendations not sorted")
		}
	}

	// 6. Scenario JSON round trip reproduces the exact fluid result.
	sc := &Scenario{Name: "integration", System: sys, Traces: cfg.Traces,
		Prices: cfg.Prices, Slots: cfg.Slots, Planner: "optimized"}
	var buf bytes.Buffer
	if err := sc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := back.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.TotalNetProfit()-opt.TotalNetProfit()) > 1e-6*(1+opt.TotalNetProfit()) {
		t.Fatalf("scenario round trip changed profit: %g vs %g",
			rep.TotalNetProfit(), opt.TotalNetProfit())
	}

	// 7. Deferral over a price valley never hurts and the plan verifies.
	h := &HorizonInput{Sys: sys, MaxDefer: []int{0, 0, 3}}
	for tt := 12; tt < 20; tt++ {
		arr := make([][]float64, 2)
		for s := 0; s < 2; s++ {
			arr[s] = make([]float64, 3)
			for k := 0; k < 3; k++ {
				arr[s][k] = cfg.Traces[s].At(tt, k)
			}
		}
		prices := make([]float64, 3)
		for l := 0; l < 3; l++ {
			prices[l] = cfg.Prices[l].At(tt)
		}
		h.Arrivals = append(h.Arrivals, arr)
		h.Prices = append(h.Prices, prices)
	}
	flexible, err := PlanHorizon(h)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyHorizon(h, flexible, 1e-5); err != nil {
		t.Fatal(err)
	}
	h.MaxDefer = []int{0, 0, 0}
	myopic, err := PlanHorizon(h)
	if err != nil {
		t.Fatal(err)
	}
	if flexible.Objective < myopic.Objective-1e-6*(1+math.Abs(myopic.Objective)) {
		t.Fatalf("deferral hurt: %g vs %g", flexible.Objective, myopic.Objective)
	}
}

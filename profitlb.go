// Package profitlb is a reproduction of "Profit Aware Load Balancing for
// Distributed Cloud Data Centers" (Liu, Ren, Quan, Zhao, Ren — IPDPS
// Workshops 2013): an energy-, profit- and cost-aware request dispatching
// and resource allocation library for a cloud provider operating
// geographically distributed data centers in a multi-electricity-market
// environment.
//
// The package is a facade over the implementation packages. A typical use:
//
//	sys := &profitlb.System{ ... }           // topology: classes, front-ends, centers
//	cfg := profitlb.SimConfig{Sys: sys, Traces: ..., Prices: ..., Slots: 24}
//	rep, err := profitlb.Simulate(cfg, profitlb.NewOptimized())
//
// The Optimized planner maximizes the provider's net profit (utility earned
// by meeting per-type SLA time-utility functions, minus electricity and
// transfer dollar costs) by solving a per-slot linear program; Balanced is
// the paper's static price-ordered baseline. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for the paper-vs-measured record.
package profitlb

import (
	"io"

	"profitlb/internal/advisor"
	"profitlb/internal/baseline"
	"profitlb/internal/config"
	"profitlb/internal/core"
	"profitlb/internal/datacenter"
	"profitlb/internal/des"
	"profitlb/internal/exp"
	"profitlb/internal/fault"
	"profitlb/internal/forecast"
	"profitlb/internal/lp"
	"profitlb/internal/market"
	"profitlb/internal/mpc"
	"profitlb/internal/resilient"
	"profitlb/internal/sim"
	"profitlb/internal/switching"
	"profitlb/internal/tuf"
	"profitlb/internal/workload"
)

// Topology types (see internal/datacenter).
type (
	// System is the full topology: request classes, front-ends, centers.
	System = datacenter.System
	// DataCenter is one location of homogeneous servers.
	DataCenter = datacenter.DataCenter
	// FrontEnd is one request collector with per-center distances.
	FrontEnd = datacenter.FrontEnd
	// RequestClass is one service type: its TUF and transfer cost.
	RequestClass = datacenter.RequestClass
	// ServerGroup is one homogeneous slice of a heterogeneous center.
	ServerGroup = datacenter.ServerGroup
	// HeterogeneousCenter is a center made of several server groups.
	HeterogeneousCenter = datacenter.HeterogeneousCenter
)

// ExpandHeterogeneous flattens heterogeneous data centers into co-located
// homogeneous server groups, the paper's suggested extension to
// heterogeneous servers.
func ExpandHeterogeneous(classes []RequestClass, frontEnds []FrontEnd, centers []HeterogeneousCenter, slotHours float64) (*System, error) {
	return datacenter.ExpandHeterogeneous(classes, frontEnds, centers, slotHours)
}

// Time-utility-function types (see internal/tuf).
type (
	// TUF is a multi-level step-downward time utility function.
	TUF = tuf.StepDownward
	// TUFLevel is one step: a utility earned up to a sub-deadline.
	TUFLevel = tuf.Level
	// TUFConstraintSeries is the paper's big-M encoding of a step TUF.
	TUFConstraintSeries = tuf.ConstraintSeries
)

// Planning types (see internal/core).
type (
	// Planner produces a dispatch/allocation Plan for one slot.
	Planner = core.Planner
	// Plan is a slot decision: rates, shares, powered-on servers.
	Plan = core.Plan
	// Input is the per-slot planner input.
	Input = core.Input
	// Optimized is the paper's profit-aware planner.
	Optimized = core.Optimized
	// LevelSearch is the discrete MINLP-style comparator planner.
	LevelSearch = core.LevelSearch
)

// Workload and market types.
type (
	// Trace is an arrival-rate matrix for one front-end.
	Trace = workload.Trace
	// PriceTrace is an hourly electricity price series for one location.
	PriceTrace = market.PriceTrace
)

// Simulation types (see internal/sim).
type (
	// SimConfig configures a time-slotted simulation.
	SimConfig = sim.Config
	// Report is the accounted outcome of a simulation run.
	Report = sim.Report
	// SlotReport is one slot's dollar flows.
	SlotReport = sim.SlotReport
)

// Experiment is one registered reproduction of a paper table or figure.
type Experiment = exp.Experiment

// ExperimentResult is a rendered experiment outcome.
type ExperimentResult = exp.Result

// NewTUF builds a validated multi-level step-downward TUF.
func NewTUF(levels ...TUFLevel) (*TUF, error) { return tuf.New(levels) }

// ConstantTUF builds the one-level TUF: utility u before deadline d.
func ConstantTUF(u, d float64) (*TUF, error) { return tuf.Constant(u, d) }

// MustTUF is NewTUF for statically known level sets; it panics on error.
func MustTUF(levels ...TUFLevel) *TUF { return tuf.MustNew(levels) }

// NewTUFConstraintSeries builds the paper's big-M constraint series
// (Eqs. 11–26) for a step TUF. Pass m <= 0 to derive the minimal
// sufficient constant for delays up to horizon, and delta <= 0 for the
// default δ.
func NewTUFConstraintSeries(t *TUF, m, delta, horizon float64) *TUFConstraintSeries {
	return tuf.NewConstraintSeries(t, m, delta, horizon)
}

// NewOptimized returns the paper's Optimized planner with its defaults
// (aggregated LP, subset refinement and server consolidation on).
func NewOptimized() *Optimized { return core.NewOptimized() }

// NewLevelSearch returns the discrete level-commitment planner.
func NewLevelSearch() *LevelSearch { return core.NewLevelSearch() }

// NewBalanced returns the paper's static price-ordered baseline.
func NewBalanced() Planner { return baseline.NewBalanced() }

// NewNearest returns the nearest-center-first ablation baseline.
func NewNearest() Planner { return baseline.NewNearest() }

// NewGreedyProfit returns the myopic unit-profit ablation baseline.
func NewGreedyProfit() Planner { return baseline.NewGreedyProfit() }

// NewRandomBaseline returns the seeded random-order ablation baseline.
func NewRandomBaseline(seed int64) Planner { return baseline.NewRandom(seed) }

// VerifyPlan checks a plan against the physical invariants (arrival
// budgets, CPU shares, server counts, level deadlines).
func VerifyPlan(in *Input, p *Plan, tol float64) error { return core.Verify(in, p, tol) }

// Simulate runs the time-slotted evaluation loop under one planner.
func Simulate(cfg SimConfig, p Planner) (*Report, error) { return sim.Run(cfg, p) }

// CompareApproaches runs several planners over the same configuration.
func CompareApproaches(cfg SimConfig, planners ...Planner) ([]*Report, error) {
	return sim.Compare(cfg, planners...)
}

// Electricity price constructors.

// Houston returns the embedded Houston, TX price trace stand-in (Fig. 1).
func Houston() *PriceTrace { return market.Houston() }

// MountainView returns the Mountain View, CA stand-in (Fig. 1).
func MountainView() *PriceTrace { return market.MountainView() }

// Atlanta returns the Atlanta, GA stand-in (Fig. 1).
func Atlanta() *PriceTrace { return market.Atlanta() }

// SyntheticPrices generates a seeded diurnal price trace.
func SyntheticPrices(cfg market.SyntheticConfig) *PriceTrace { return market.Synthetic(cfg) }

// PriceConfig parameterizes SyntheticPrices.
type PriceConfig = market.SyntheticConfig

// Workload constructors.

// ConstantTrace builds a trace with fixed per-type rates in every slot.
func ConstantTrace(name string, rates []float64, slots int) *Trace {
	return workload.Constant(name, rates, slots)
}

// WorldCupLike generates the diurnal flash-crowd series of the paper's
// Section VI workload (stand-in for the 1998 World Cup logs).
func WorldCupLike(cfg workload.WorldCupConfig) []float64 { return workload.WorldCupLike(cfg) }

// WorldCupConfig parameterizes WorldCupLike.
type WorldCupConfig = workload.WorldCupConfig

// GoogleLike generates the short bursty series of the paper's Section VII
// workload (stand-in for the 2010 Google cluster trace).
func GoogleLike(cfg workload.GoogleConfig) []float64 { return workload.GoogleLike(cfg) }

// GoogleConfig parameterizes GoogleLike.
type GoogleConfig = workload.GoogleConfig

// ShiftTypes derives a multi-type trace from one base series by time
// shifting, as the paper does.
func ShiftTypes(name string, base []float64, types, shift int) *Trace {
	return workload.ShiftTypes(name, base, types, shift)
}

// Forecasting (the paper's optional prediction substrate).

// PredictTrace produces one-slot-ahead Kalman predictions for a trace.
func PredictTrace(tr *Trace, processVar, measureVar float64) (*Trace, error) {
	return forecast.PredictTrace(tr, processVar, measureVar)
}

// Sensitivity is the shadow-price report of the slot LP (see
// (*Optimized).Sensitivity): the marginal dollar value of CPU share per
// center and of extra demand per front-end and type.
type Sensitivity = core.Sensitivity

// Scenario is a JSON-serializable simulation description (topology,
// traces, prices, horizon, planner) for file-driven runs.
type Scenario = config.Scenario

// LoadScenario decodes and validates a scenario from JSON.
func LoadScenario(r io.Reader) (*Scenario, error) { return config.Load(r) }

// ExampleScenario returns a small runnable scenario, the starting point
// for hand-written configuration files (`profitlb scaffold`).
func ExampleScenario() *Scenario { return config.Example() }

// RequestLevelReport is the outcome of a request-level (discrete-event)
// realization of the planner's decisions.
type RequestLevelReport = des.Report

// SimulateRequests realizes every slot's plan request by request: Poisson
// arrivals, exponential service, per-request TUF billing. It is the
// empirical counterpart of Simulate's fluid accounting.
func SimulateRequests(cfg SimConfig, p Planner, seed int64) (*RequestLevelReport, error) {
	return des.Run(des.Config{Sim: cfg, Planner: p, Seed: seed})
}

// SwitchingPlanner wraps a planner with server power-toggle costs and
// hold-down hysteresis, relaxing the paper's negligible-switching
// assumption. Pair it with DataCenter.IdleEnergyPerServer to make the
// trade-off real.
type SwitchingPlanner = switching.Planner

// Multi-slot lookahead types (the temporal-arbitrage extension).
type (
	// HorizonInput is a multi-slot planning window with per-class
	// deferral allowances.
	HorizonInput = core.HorizonInput
	// HorizonPlan is the joint multi-slot decision.
	HorizonPlan = core.HorizonPlan
)

// PlanHorizon solves the joint LP over a window of slots, letting
// deferrable classes wait for cheap-electricity hours — the temporal
// freedom the paper's per-slot optimization cannot exploit.
func PlanHorizon(h *HorizonInput) (*HorizonPlan, error) {
	return core.PlanHorizon(h, lp.Options{})
}

// VerifyHorizon checks the physical invariants of a horizon plan.
func VerifyHorizon(h *HorizonInput, hp *HorizonPlan, tol float64) error {
	return core.VerifyHorizon(h, hp, tol)
}

// Rolling-horizon MPC planning: the online counterpart of PlanHorizon.
// Where PlanHorizon needs the whole window's arrivals and prices up
// front (clairvoyant), the MPC planner forecasts them each slot, solves
// the joint horizon LP, commits only the first slot's decision and rolls
// forward, buffering unserved deferrable work in a deadline-aware
// backlog. Plug it into Simulate like any other Planner.
type (
	// MPCConfig parameterizes the receding-horizon planner: window
	// length, per-class deferral allowances (slots each class may wait),
	// the forecast-hedge margin and the Kalman filter knobs.
	MPCConfig = mpc.Config
	// MPCPlanner is the rolling-horizon planner with its deferrable
	// backlog. It implements Planner.
	MPCPlanner = mpc.Planner
	// DeferralLedger is one slot's backlog settlement record (carried,
	// drained, forced, shed, newly deferred volumes per class); see
	// SlotReport.Backlog and Report.DeferralTotals.
	DeferralLedger = core.BacklogSlot
)

// NewMPC returns the receding-horizon MPC planner for cfg (zero-valued
// fields take their documented defaults at first use).
func NewMPC(cfg MPCConfig) *MPCPlanner { return mpc.New(cfg) }

// Advice is a ranked capacity-expansion report (see Advise).
type Advice = advisor.Advice

// AdvisorConfig parameterizes Advise.
type AdvisorConfig = advisor.Config

// Advise evaluates expanding each data center over a workload/price
// horizon and ranks the candidates by profit gain per added server,
// cross-checked against the slot LPs' share shadow prices.
func Advise(cfg AdvisorConfig) (*Advice, error) { return advisor.Advise(cfg) }

// Fault injection and resilient planning (DESIGN.md §6).
type (
	// FaultSchedule is a replayable set of timed fault events: center
	// outages/degradations, price spikes/blackouts, arrival-trace
	// drops/corruptions, planner timeout/error/panic.
	FaultSchedule = fault.Schedule
	// FaultEvent is one timed fault (inclusive slot range).
	FaultEvent = fault.Event
	// FaultInjector wraps a planner so the schedule's planner faults fire
	// at their slots.
	FaultInjector = fault.Injector
	// ResilientChain is an ordered planner fallback ladder with per-tier
	// deadlines, panic recovery and feasibility gating.
	ResilientChain = resilient.Chain
	// StormConfig parameterizes the seeded random storm generator.
	StormConfig = fault.StormConfig
)

// Storm draws a reproducible random fault schedule from a seed.
func Storm(cfg StormConfig) (*FaultSchedule, error) { return fault.Storm(cfg) }

// Resilient wraps a planner in the default degradation ladder:
// planner → greedy level-search → balanced → last-plan replay → shed.
func Resilient(primary Planner) *ResilientChain { return resilient.Wrap(primary) }

// Experiments returns every registered paper-artifact reproduction.
func Experiments() []*Experiment { return exp.All() }

// ExperimentByID looks up one experiment (e.g. "fig6").
func ExperimentByID(id string) (*Experiment, bool) { return exp.Get(id) }

module profitlb

go 1.22

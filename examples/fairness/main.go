// Fairness: completion floors on top of profit maximization.
//
// The paper's objective is pure profit: under scarcity the planner serves
// whichever type pays best per unit of capacity and can starve the rest.
// MinCompletion adds per-type service floors, and this example prices
// them: the profit/fairness frontier of a congested day.
package main

import (
	"fmt"

	"profitlb"
)

func main() {
	sys := &profitlb.System{
		Classes: []profitlb.RequestClass{
			// Low-value bulk traffic vs premium traffic contending for the
			// same servers.
			{Name: "bulk", TUF: profitlb.MustTUF(profitlb.TUFLevel{Utility: 2, Deadline: 0.02}),
				TransferCostPerMile: 0.0001},
			{Name: "premium", TUF: profitlb.MustTUF(profitlb.TUFLevel{Utility: 25, Deadline: 0.01}),
				TransferCostPerMile: 0.0002},
		},
		FrontEnds: []profitlb.FrontEnd{{Name: "fe", DistanceMiles: []float64{200, 800}}},
		Centers: []profitlb.DataCenter{
			{Name: "east", Servers: 4, Capacity: 1,
				ServiceRate: []float64{1500, 1200}, EnergyPerRequest: []float64{0.8, 1.2}},
			{Name: "west", Servers: 4, Capacity: 1,
				ServiceRate: []float64{1400, 1300}, EnergyPerRequest: []float64{0.7, 1.1}},
		},
	}
	cfg := profitlb.SimConfig{
		Sys: sys,
		Traces: []*profitlb.Trace{profitlb.ShiftTypes("fe",
			profitlb.WorldCupLike(profitlb.WorldCupConfig{Seed: 21, Base: 4200}), 2, 6)},
		Prices: []*profitlb.PriceTrace{profitlb.Houston(), profitlb.Atlanta()},
		Slots:  24,
	}

	fmt.Println("bulk floor  net profit($)  bulk completion  premium completion")
	var base float64
	for _, floor := range []float64{0, 0.25, 0.5, 0.75, 0.9} {
		p := profitlb.NewOptimized()
		if floor > 0 {
			p.MinCompletion = []float64{floor, 0}
		}
		rep, err := profitlb.Simulate(cfg, p)
		if err != nil {
			fmt.Printf("%9.0f%%  infeasible — the floor exceeds what the fleet can serve\n", floor*100)
			continue
		}
		if floor == 0 {
			base = rep.TotalNetProfit()
		}
		fmt.Printf("%9.0f%%  %13.0f  %14.2f%%  %17.2f%%   (%.2f%% of unconstrained)\n",
			floor*100, rep.TotalNetProfit(),
			100*rep.CompletionRate(0), 100*rep.CompletionRate(1),
			100*rep.TotalNetProfit()/base)
	}
	fmt.Println("\neach percentage point of bulk completion bought under congestion costs")
	fmt.Println("premium capacity — the floors make that trade explicit and auditable.")
}

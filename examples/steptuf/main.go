// Steptuf: multi-level step-downward time utility functions.
//
// The example first demonstrates the paper's core formulation trick — the
// big-M constraint series (Eqs. 11–26) that pins the utility variable to
// TUF(R) without if/else constructs — and then runs the Section VII style
// two-level-TUF scenario, showing how the Optimized planner serves part of
// a type's traffic at the tight (high-value) sub-deadline and the rest at
// the loose one when capacity is scarce.
package main

import (
	"fmt"
	"log"

	"profitlb"
)

func main() {
	// A three-level TUF: $9 within 0.5 h, $6 within 1.5 h, $2 within 3 h.
	t := profitlb.MustTUF(
		profitlb.TUFLevel{Utility: 9, Deadline: 0.5},
		profitlb.TUFLevel{Utility: 6, Deadline: 1.5},
		profitlb.TUFLevel{Utility: 2, Deadline: 3},
	)
	series := profitlb.NewTUFConstraintSeries(t, 0, 0, 10)
	fmt.Printf("TUF %v encoded as %d big-M constraints (M=%.1f)\n", t, len(series.Constraints), series.M)
	fmt.Println("delay  TUF(R)  utilities feasible under the constraint series")
	for _, r := range []float64{0.2, 0.5, 0.9, 1.5, 2.4, 5.0} {
		fmt.Printf("%5.2f  %6.2f  %v\n", r, t.Utility(r), series.FeasibleUtilities(r))
	}
	fmt.Println("→ exactly one utility is feasible at every delay, and it equals TUF(R):")
	fmt.Println("  the step function became solver-friendly inequalities, as in paper §IV.")

	// Section VII shape: one front-end, two data centers, two-level TUFs.
	sys := &profitlb.System{
		Classes: []profitlb.RequestClass{
			{Name: "request1", TUF: profitlb.MustTUF(
				profitlb.TUFLevel{Utility: 10, Deadline: 0.005},
				profitlb.TUFLevel{Utility: 4, Deadline: 0.02},
			), TransferCostPerMile: 0.0002},
			{Name: "request2", TUF: profitlb.MustTUF(
				profitlb.TUFLevel{Utility: 20, Deadline: 0.004},
				profitlb.TUFLevel{Utility: 8, Deadline: 0.015},
			), TransferCostPerMile: 0.0003},
		},
		FrontEnds: []profitlb.FrontEnd{{Name: "frontend", DistanceMiles: []float64{1000, 2000}}},
		Centers: []profitlb.DataCenter{
			{Name: "dc1", Servers: 6, Capacity: 1,
				ServiceRate: []float64{1500, 600}, EnergyPerRequest: []float64{0.0004, 0.0006}},
			{Name: "dc2", Servers: 6, Capacity: 1,
				ServiceRate: []float64{1200, 900}, EnergyPerRequest: []float64{0.0005, 0.0005}},
		},
	}
	if err := sys.Validate(); err != nil {
		log.Fatal(err)
	}
	base := profitlb.GoogleLike(profitlb.GoogleConfig{Seed: 200, Mean: 4100})
	cfg := profitlb.SimConfig{
		Sys:       sys,
		Traces:    []*profitlb.Trace{profitlb.ShiftTypes("frontend", base, 2, 2)},
		Prices:    []*profitlb.PriceTrace{profitlb.Houston(), profitlb.MountainView()},
		Slots:     6,
		StartSlot: 14, // the paper's high-vibration 14:00-19:00 window
		KeepPlans: true,
	}
	rep, err := profitlb.Simulate(cfg, profitlb.NewOptimized())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntwo-level dispatch in the 14:00-19:00 window (requests/hour):")
	fmt.Println("hour  type      tight-level  loose-level")
	for i, sr := range rep.Slots {
		plan := sr.Plan
		for k, cls := range sys.Classes {
			var byLevel [2]float64
			for q := 0; q < 2; q++ {
				for l := 0; l < sys.L(); l++ {
					byLevel[q] += plan.CenterRate(k, q, l)
				}
			}
			fmt.Printf("h%02d   %-8s  %11.0f  %11.0f\n", 14+i, cls.Name, byLevel[0], byLevel[1])
		}
	}
	fmt.Printf("\nnet profit over the window: $%.0f\n", rep.TotalNetProfit())
}

// Geoarbitrage: the paper's Section VI scenario shape — three data centers
// in different electricity markets, four front-ends with diurnal traces —
// showing how the Optimized planner shifts load toward whichever location
// is cheap each hour while the Balanced baseline's price-only ordering
// leaves profit on the table.
package main

import (
	"fmt"
	"log"

	"profitlb"
)

func buildSystem() *profitlb.System {
	return &profitlb.System{
		Classes: []profitlb.RequestClass{
			{Name: "request1", TUF: profitlb.MustTUF(profitlb.TUFLevel{Utility: 10, Deadline: 0.010}), TransferCostPerMile: 0.003},
			{Name: "request2", TUF: profitlb.MustTUF(profitlb.TUFLevel{Utility: 20, Deadline: 0.008}), TransferCostPerMile: 0.005},
			{Name: "request3", TUF: profitlb.MustTUF(profitlb.TUFLevel{Utility: 30, Deadline: 0.006}), TransferCostPerMile: 0.007},
		},
		FrontEnds: []profitlb.FrontEnd{
			{Name: "frontend1", DistanceMiles: []float64{300, 1900, 700}},
			{Name: "frontend2", DistanceMiles: []float64{500, 2100, 900}},
			{Name: "frontend3", DistanceMiles: []float64{400, 2000, 600}},
			{Name: "frontend4", DistanceMiles: []float64{600, 2200, 800}},
		},
		Centers: []profitlb.DataCenter{
			{Name: "houston", Servers: 6, Capacity: 1,
				ServiceRate:      []float64{1500, 1400, 1200},
				EnergyPerRequest: []float64{0.0003, 0.0005, 0.0007}},
			{Name: "mountain-view", Servers: 6, Capacity: 1,
				ServiceRate:      []float64{1500, 1300, 1600},
				EnergyPerRequest: []float64{0.00028, 0.00052, 0.00068}},
			{Name: "atlanta", Servers: 6, Capacity: 1,
				ServiceRate:      []float64{2500, 1500, 1400},
				EnergyPerRequest: []float64{0.00032, 0.00048, 0.00072}},
		},
	}
}

func main() {
	sys := buildSystem()
	if err := sys.Validate(); err != nil {
		log.Fatal(err)
	}
	traces := make([]*profitlb.Trace, 4)
	for s := range traces {
		base := profitlb.WorldCupLike(profitlb.WorldCupConfig{
			Seed: int64(101 + s), Base: 650 + 100*float64(s),
		})
		traces[s] = profitlb.ShiftTypes(sys.FrontEnds[s].Name, base, 3, 4)
	}
	cfg := profitlb.SimConfig{
		Sys:    sys,
		Traces: traces,
		Prices: []*profitlb.PriceTrace{profitlb.Houston(), profitlb.MountainView(), profitlb.Atlanta()},
		Slots:  24,
	}
	reports, err := profitlb.CompareApproaches(cfg, profitlb.NewOptimized(), profitlb.NewBalanced())
	if err != nil {
		log.Fatal(err)
	}
	opt, bal := reports[0], reports[1]

	fmt.Println("request1 dispatch by the Optimized planner (requests/hour):")
	fmt.Println("hour  houston  mtn-view  atlanta  cheapest")
	for i := range opt.Slots {
		sr := opt.Slots[i]
		cheapest := 0
		for l, p := range sr.Prices {
			if p < sr.Prices[cheapest] {
				cheapest = l
			}
		}
		fmt.Printf("h%02d   %7.0f  %8.0f  %7.0f  %s\n",
			i, sr.CenterServed[0][0], sr.CenterServed[0][1], sr.CenterServed[0][2],
			sys.Centers[cheapest].Name)
	}
	fmt.Printf("\nnet profit: optimized $%.0f vs balanced $%.0f (+%.1f%%)\n",
		opt.TotalNetProfit(), bal.TotalNetProfit(),
		100*(opt.TotalNetProfit()/bal.TotalNetProfit()-1))
	fmt.Println("\nmountain-view is ~2000 miles from every front-end: despite sometimes")
	fmt.Println("having the lowest price, transfer costs keep its share of request1 low —")
	fmt.Println("the same trade-off the paper observes for its datacenter2 in Fig. 7.")
}

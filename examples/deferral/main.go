// Deferral: temporal arbitrage with batch work, online.
//
// The paper plans each hour in isolation, so an energy-hungry batch
// class is simply dropped whenever the electricity price exceeds its
// utility. The MPC planner runs the same slot loop but looks ahead:
// each hour it forecasts the next Horizon hours, solves one LP across
// the window, commits only the current hour and parks unserved batch
// work in a deadline-aware backlog. Over the Houston afternoon price
// vibration (spikes at 14:00, 16:00 and 18:00 with cheap valleys in
// between) that turns "drop it" into "wait one hour".
//
// Unlike the clairvoyant PlanHorizon, nothing here sees the future:
// prices and arrivals are learned online from what the simulation
// reveals slot by slot.
package main

import (
	"fmt"
	"log"

	"profitlb"
)

func main() {
	sys := &profitlb.System{
		Classes: []profitlb.RequestClass{
			{
				Name:                "web",
				TUF:                 profitlb.MustTUF(profitlb.TUFLevel{Utility: 10, Deadline: 0.2}),
				TransferCostPerMile: 0.0005,
			},
			{
				// Batch analytics: 40 kWh per krequest makes the class
				// loss-making whenever electricity crosses ~0.124 $/kWh —
				// exactly the Houston afternoon spikes.
				Name:                "batch",
				TUF:                 profitlb.MustTUF(profitlb.TUFLevel{Utility: 5, Deadline: 1.0}),
				TransferCostPerMile: 0.0005,
			},
		},
		FrontEnds: []profitlb.FrontEnd{{Name: "fe", DistanceMiles: []float64{100}}},
		Centers: []profitlb.DataCenter{{
			Name: "dc", Servers: 8, Capacity: 1,
			ServiceRate:      []float64{120, 100},
			EnergyPerRequest: []float64{1.0, 40},
		}},
	}
	houston := profitlb.Houston()
	const start, slots = 13, 8 // 13:00–20:00: the vibration window
	cfg := profitlb.SimConfig{
		Sys:       sys,
		Traces:    []*profitlb.Trace{profitlb.ConstantTrace("fe", []float64{300, 200}, start+slots)},
		Prices:    []*profitlb.PriceTrace{houston},
		Slots:     slots,
		StartSlot: start,
	}

	// Web must run in its arrival hour; batch may wait up to 2 hours,
	// and everything still buffered must clear by hour 21.
	mp := profitlb.NewMPC(profitlb.MPCConfig{
		Horizon:  5,
		MaxDefer: []int{0, 2},
		EndSlot:  start + slots,
	})
	reports, err := profitlb.CompareApproaches(cfg, mp, profitlb.NewOptimized())
	if err != nil {
		log.Fatal(err)
	}
	m, myo := reports[0], reports[1]

	fmt.Println("hour  price($/kWh)  batch served (myopic)  batch served (mpc)  backlog out")
	for i := range m.Slots {
		t := start + i
		var backlog float64
		if b := m.Slots[i].Backlog; b != nil {
			for _, v := range b.BacklogOut {
				backlog += v
			}
		}
		fmt.Printf("h%02d   %11.3f  %21.0f  %18.0f  %11.0f\n",
			t, houston.At(t),
			myo.Slots[i].ServedByType[1], m.Slots[i].ServedByType[1], backlog)
	}

	deferred, drained, forced, shed := m.DeferralTotals()
	fmt.Printf("\ndeferral ledger: %.0f req/h deferred, %.0f drained (%.0f forced), %.0f shed; final backlog %.0f\n",
		deferred, drained, forced, shed, m.FinalBacklog())
	fmt.Printf("batch completion: myopic %.0f%% vs mpc %.0f%%\n",
		100*myo.CompletionRate(1), 100*m.CompletionRate(1))
	fmt.Printf("window net profit: myopic $%.0f vs mpc $%.0f (+%.2f%%)\n",
		myo.TotalNetProfit(), m.TotalNetProfit(),
		100*(m.TotalNetProfit()/myo.TotalNetProfit()-1))
}

// Deferral: temporal arbitrage with batch work.
//
// The paper plans each hour in isolation. Real batch jobs ("finish within
// a few hours") can wait for cheap electricity; PlanHorizon solves one
// LP across the whole window and decides when — not just where — each
// class runs.
package main

import (
	"fmt"
	"log"

	"profitlb"
)

func main() {
	sys := &profitlb.System{
		Classes: []profitlb.RequestClass{
			{
				Name:                "interactive",
				TUF:                 profitlb.MustTUF(profitlb.TUFLevel{Utility: 10, Deadline: 0.005}),
				TransferCostPerMile: 0.0002,
			},
			{
				// Energy-hungry analytics jobs: 20 kWh per request.
				Name:                "analytics",
				TUF:                 profitlb.MustTUF(profitlb.TUFLevel{Utility: 8, Deadline: 0.2}),
				TransferCostPerMile: 0.0001,
			},
		},
		FrontEnds: []profitlb.FrontEnd{{Name: "fe", DistanceMiles: []float64{300, 1200}}},
		Centers: []profitlb.DataCenter{
			{Name: "dc1", Servers: 5, Capacity: 1,
				ServiceRate: []float64{2000, 700}, EnergyPerRequest: []float64{0.5, 20}},
			{Name: "dc2", Servers: 5, Capacity: 1,
				ServiceRate: []float64{1800, 800}, EnergyPerRequest: []float64{0.45, 18}},
		},
	}
	inter := profitlb.WorldCupLike(profitlb.WorldCupConfig{Seed: 55, Base: 1500})
	batch := profitlb.WorldCupLike(profitlb.WorldCupConfig{Seed: 56, Base: 900})
	houston, mv := profitlb.Houston(), profitlb.MountainView()

	build := func(deferSlots int) *profitlb.HorizonInput {
		h := &profitlb.HorizonInput{Sys: sys, MaxDefer: []int{0, deferSlots}}
		for t := 0; t < 24; t++ {
			h.Arrivals = append(h.Arrivals, [][]float64{{inter[t], batch[t]}})
			h.Prices = append(h.Prices, []float64{houston.At(t), mv.At(t)})
		}
		return h
	}

	myopic, err := profitlb.PlanHorizon(build(0))
	if err != nil {
		log.Fatal(err)
	}
	flexible, err := profitlb.PlanHorizon(build(6))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("hour  price(dc1)  analytics served (myopic)  analytics served (defer≤6)")
	for t := 0; t < 24; t++ {
		fmt.Printf("h%02d   %9.3f  %25.0f  %26.0f\n",
			t, houston.At(t), myopic.Slots[t].Served(1), flexible.Slots[t].Served(1))
	}
	fmt.Printf("\nwindow net profit: myopic $%.0f vs deferral $%.0f (+%.2f%%)\n",
		myopic.Objective, flexible.Objective,
		100*(flexible.Objective/myopic.Objective-1))
	fmt.Printf("%.0f%% of analytics volume was shifted to cheaper hours\n",
		100*flexible.DeferredFraction[1])
}

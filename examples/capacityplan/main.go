// Capacityplan: use the planner as a what-if tool.
//
// Part 1 sweeps the fleet size to find the smallest number of servers per
// data center that reaches full completion on a day's workload — the
// "dynamic right-sizing" question the paper's consolidation step answers
// per slot, asked here at provisioning time.
//
// Part 2 exercises the forecasting substrate: the dispatcher plans each
// slot on Kalman-predicted arrival rates (what a deployed system would
// have) and the result is compared with planning on the oracle rates.
package main

import (
	"fmt"
	"log"

	"profitlb"
)

func buildSystem(servers int) *profitlb.System {
	return &profitlb.System{
		Classes: []profitlb.RequestClass{
			{Name: "interactive", TUF: profitlb.MustTUF(
				profitlb.TUFLevel{Utility: 12, Deadline: 0.004},
				profitlb.TUFLevel{Utility: 5, Deadline: 0.02},
			), TransferCostPerMile: 0.0004},
			{Name: "batch", TUF: profitlb.MustTUF(
				profitlb.TUFLevel{Utility: 6, Deadline: 0.1},
			), TransferCostPerMile: 0.0002},
		},
		FrontEnds: []profitlb.FrontEnd{
			{Name: "fe-east", DistanceMiles: []float64{200, 1800}},
			{Name: "fe-west", DistanceMiles: []float64{1900, 300}},
		},
		Centers: []profitlb.DataCenter{
			{Name: "east", Servers: servers, Capacity: 1,
				ServiceRate: []float64{1600, 900}, EnergyPerRequest: []float64{0.0004, 0.001}},
			{Name: "west", Servers: servers, Capacity: 1,
				ServiceRate: []float64{1500, 1000}, EnergyPerRequest: []float64{0.00045, 0.0009}},
		},
	}
}

func traces(sys *profitlb.System) []*profitlb.Trace {
	east := profitlb.ShiftTypes("fe-east",
		profitlb.WorldCupLike(profitlb.WorldCupConfig{Seed: 31, Base: 1800}), 2, 5)
	west := profitlb.ShiftTypes("fe-west",
		profitlb.WorldCupLike(profitlb.WorldCupConfig{Seed: 32, Base: 1500}), 2, 5)
	return []*profitlb.Trace{east, west}
}

func runDay(servers int, trs []*profitlb.Trace) (*profitlb.Report, error) {
	sys := buildSystem(servers)
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return profitlb.Simulate(profitlb.SimConfig{
		Sys:    sys,
		Traces: trs,
		Prices: []*profitlb.PriceTrace{profitlb.Atlanta(), profitlb.MountainView()},
		Slots:  24,
	}, profitlb.NewOptimized())
}

func main() {
	trs := traces(buildSystem(4))

	fmt.Println("fleet sizing sweep (Optimized planner, one simulated day):")
	fmt.Println("servers/center  net profit($)  interactive  batch     peak servers on")
	for servers := 2; servers <= 12; servers += 2 {
		rep, err := runDay(servers, trs)
		if err != nil {
			log.Fatal(err)
		}
		peak := 0
		for _, s := range rep.Slots {
			if s.ServersOn > peak {
				peak = s.ServersOn
			}
		}
		fmt.Printf("%14d  %13.0f  %10.2f%%  %7.2f%%  %15d\n",
			servers, rep.TotalNetProfit(),
			100*rep.CompletionRate(0), 100*rep.CompletionRate(1), peak)
	}

	// Part 2: plan on Kalman-predicted rates instead of oracle rates.
	predicted := make([]*profitlb.Trace, len(trs))
	for i, tr := range trs {
		p, err := profitlb.PredictTrace(tr, 5000, 2000)
		if err != nil {
			log.Fatal(err)
		}
		predicted[i] = p
	}
	sys := buildSystem(8)
	oracle, err := profitlb.Simulate(profitlb.SimConfig{
		Sys: sys, Traces: trs,
		Prices: []*profitlb.PriceTrace{profitlb.Atlanta(), profitlb.MountainView()},
		Slots:  24,
	}, profitlb.NewOptimized())
	if err != nil {
		log.Fatal(err)
	}
	fc, err := profitlb.Simulate(profitlb.SimConfig{
		Sys: sys, Traces: predicted,
		Prices: []*profitlb.PriceTrace{profitlb.Atlanta(), profitlb.MountainView()},
		Slots:  24,
	}, profitlb.NewOptimized())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplanning on Kalman-predicted rates: net profit $%.0f vs oracle $%.0f (%.2f%% of oracle)\n",
		fc.TotalNetProfit(), oracle.TotalNetProfit(),
		100*fc.TotalNetProfit()/oracle.TotalNetProfit())
	fmt.Println("(the paper assumes per-slot average rates are known; the Kalman filter is")
	fmt.Println(" the prediction substrate it points to for deployment)")
}

// Quickstart: build a two-data-center system, run one simulated day under
// the profit-aware Optimized planner and the paper's Balanced baseline,
// and print the comparison.
package main

import (
	"fmt"
	"log"

	"profitlb"
)

func main() {
	// Topology: two request classes, two front-ends, two data centers in
	// different electricity markets. Rates are per hour; one-hour slots.
	sys := &profitlb.System{
		Classes: []profitlb.RequestClass{
			{
				Name: "web-search",
				// $0.01 per request if answered within 36 s (0.01 h).
				TUF:                 profitlb.MustTUF(profitlb.TUFLevel{Utility: 0.01, Deadline: 0.01}),
				TransferCostPerMile: 1e-6,
			},
			{
				Name: "video-encode",
				// Two-level SLA: $0.05 within 3 min, $0.02 within 15 min.
				TUF: profitlb.MustTUF(
					profitlb.TUFLevel{Utility: 0.05, Deadline: 0.05},
					profitlb.TUFLevel{Utility: 0.02, Deadline: 0.25},
				),
				TransferCostPerMile: 2e-6,
			},
		},
		FrontEnds: []profitlb.FrontEnd{
			{Name: "us-east", DistanceMiles: []float64{300, 2400}},
			{Name: "us-west", DistanceMiles: []float64{2500, 200}},
		},
		Centers: []profitlb.DataCenter{
			{
				Name: "texas", Servers: 8, Capacity: 1,
				ServiceRate:      []float64{20000, 3000}, // requests/hour/server
				EnergyPerRequest: []float64{0.0003, 0.004},
			},
			{
				Name: "california", Servers: 8, Capacity: 1,
				ServiceRate:      []float64{18000, 3500},
				EnergyPerRequest: []float64{0.0003, 0.0035},
			},
		},
	}
	if err := sys.Validate(); err != nil {
		log.Fatal(err)
	}

	// Workload: a diurnal trace per front-end, two types derived by time
	// shifting; electricity prices from the embedded location tables.
	east := profitlb.ShiftTypes("us-east",
		profitlb.WorldCupLike(profitlb.WorldCupConfig{Seed: 1, Base: 30000}), 2, 6)
	west := profitlb.ShiftTypes("us-west",
		profitlb.WorldCupLike(profitlb.WorldCupConfig{Seed: 2, Base: 24000}), 2, 6)

	cfg := profitlb.SimConfig{
		Sys:    sys,
		Traces: []*profitlb.Trace{east, west},
		Prices: []*profitlb.PriceTrace{profitlb.Houston(), profitlb.MountainView()},
		Slots:  24,
	}

	reports, err := profitlb.CompareApproaches(cfg, profitlb.NewOptimized(), profitlb.NewBalanced())
	if err != nil {
		log.Fatal(err)
	}
	opt, bal := reports[0], reports[1]

	fmt.Println("hour  optimized($)  balanced($)")
	for i := range opt.Slots {
		fmt.Printf("h%02d   %12.2f  %11.2f\n", i, opt.Slots[i].NetProfit, bal.Slots[i].NetProfit)
	}
	fmt.Printf("\ntotal net profit: optimized $%.2f vs balanced $%.2f (+%.1f%%)\n",
		opt.TotalNetProfit(), bal.TotalNetProfit(),
		100*(opt.TotalNetProfit()/bal.TotalNetProfit()-1))
	for k, cls := range sys.Classes {
		fmt.Printf("%-12s completion: optimized %.2f%%, balanced %.2f%%\n",
			cls.Name, 100*opt.CompletionRate(k), 100*bal.CompletionRate(k))
	}
}

// Expansion: use the library as a capacity-planning instrument.
//
// The advisor answers "which data center should grow?" two ways — an
// exact what-if (re-simulating the horizon with an enlarged fleet) and
// the LP shadow prices of CPU share that fall out of every slot's
// optimization for free — and converts the gain into a hardware payback
// horizon.
package main

import (
	"fmt"
	"log"

	"profitlb"
)

func main() {
	sys := &profitlb.System{
		Classes: []profitlb.RequestClass{
			{Name: "api", TUF: profitlb.MustTUF(
				profitlb.TUFLevel{Utility: 0.004, Deadline: 0.002},
				profitlb.TUFLevel{Utility: 0.0015, Deadline: 0.01},
			), TransferCostPerMile: 2e-7},
			{Name: "render", TUF: profitlb.MustTUF(
				profitlb.TUFLevel{Utility: 0.03, Deadline: 0.05},
			), TransferCostPerMile: 5e-7},
		},
		FrontEnds: []profitlb.FrontEnd{
			{Name: "east", DistanceMiles: []float64{150, 2300, 900}},
			{Name: "west", DistanceMiles: []float64{2400, 180, 1500}},
		},
		Centers: []profitlb.DataCenter{
			{Name: "virginia", Servers: 6, Capacity: 1,
				ServiceRate: []float64{90000, 4000}, EnergyPerRequest: []float64{0.00005, 0.002}},
			{Name: "oregon", Servers: 6, Capacity: 1,
				ServiceRate: []float64{85000, 4500}, EnergyPerRequest: []float64{0.00005, 0.0018}},
			{Name: "dallas", Servers: 4, Capacity: 1,
				ServiceRate: []float64{95000, 4200}, EnergyPerRequest: []float64{0.000045, 0.0019}},
		},
	}
	east := profitlb.ShiftTypes("east",
		profitlb.WorldCupLike(profitlb.WorldCupConfig{Seed: 11, Base: 150000}), 2, 8)
	west := profitlb.ShiftTypes("west",
		profitlb.WorldCupLike(profitlb.WorldCupConfig{Seed: 12, Base: 130000}), 2, 8)
	cfg := profitlb.SimConfig{
		Sys:    sys,
		Traces: []*profitlb.Trace{east, west},
		Prices: []*profitlb.PriceTrace{profitlb.Atlanta(), profitlb.MountainView(), profitlb.Houston()},
		Slots:  24,
	}

	advice, err := profitlb.Advise(profitlb.AdvisorConfig{
		Sim:        cfg,
		AddServers: 2,
		ServerCost: 8000, // $ per commissioned server
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline day profit at current fleet: $%.0f\n\n", advice.BaselineProfit)
	fmt.Println("center    gain/day(+2 srv)  gain/server  Σ share dual  payback")
	for _, rec := range advice.Recommendations {
		payback := "—"
		if rec.PaybackSlots > 0 && rec.PaybackSlots < 1e6 {
			payback = fmt.Sprintf("%.1f slots", rec.PaybackSlots)
		} else if rec.ProfitGain <= 0 {
			payback = "never"
		}
		fmt.Printf("%-9s %16.0f  %11.0f  %12.0f  %s\n",
			rec.Name, rec.ProfitGain, rec.GainPerServer, rec.ShareDual, payback)
	}
	best := advice.Best()
	fmt.Printf("\n→ grow %s first; each server pays for itself in %.1f hours of operation\n",
		best.Name, best.PaybackSlots)
	fmt.Println("  (the what-if simulation and the per-slot LP shadow prices agree on the top pick)")
}

// Heterogeneous: the paper's suggested extension to heterogeneous data
// centers with heterogeneous servers. A center with a fast-but-power-hungry
// GPU-era group and a slow-but-frugal group is expanded into co-located
// homogeneous groups; the planner then decides per slot which group earns
// its electricity, shifting between them as the price moves.
package main

import (
	"fmt"
	"log"

	"profitlb"
)

func main() {
	classes := []profitlb.RequestClass{
		{
			Name: "inference",
			TUF: profitlb.MustTUF(
				profitlb.TUFLevel{Utility: 0.02, Deadline: 0.002},
				profitlb.TUFLevel{Utility: 0.008, Deadline: 0.02},
			),
			TransferCostPerMile: 1e-6,
		},
	}
	frontEnds := []profitlb.FrontEnd{
		{Name: "edge", DistanceMiles: []float64{400, 1200}},
	}
	centers := []profitlb.HeterogeneousCenter{
		{Name: "primary", Groups: []profitlb.ServerGroup{
			// Fast servers: 4x the throughput, 6x the energy per request.
			{Name: "fast", Servers: 2, Capacity: 1,
				ServiceRate: []float64{48000}, EnergyPerRequest: []float64{0.0012}},
			{Name: "slow", Servers: 8, Capacity: 1,
				ServiceRate: []float64{12000}, EnergyPerRequest: []float64{0.0002}},
		}},
		{Name: "backup", Groups: []profitlb.ServerGroup{
			{Servers: 6, Capacity: 1,
				ServiceRate: []float64{15000}, EnergyPerRequest: []float64{0.00025}},
		}},
	}
	sys, err := profitlb.ExpandHeterogeneous(classes, frontEnds, centers, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expanded %d heterogeneous centers into %d homogeneous groups:\n", len(centers), sys.L())
	for _, c := range sys.Centers {
		fmt.Printf("  %-14s %d servers, mu=%6.0f/h, %.4f kWh/request\n",
			c.Name, c.Servers, c.ServiceRate[0], c.EnergyPerRequest[0])
	}

	base := profitlb.WorldCupLike(profitlb.WorldCupConfig{Seed: 77, Base: 90000})
	cfg := profitlb.SimConfig{
		Sys:       sys,
		Traces:    []*profitlb.Trace{profitlb.ShiftTypes("edge", base, 1, 0)},
		Prices:    []*profitlb.PriceTrace{profitlb.Houston(), profitlb.Houston(), profitlb.Atlanta()},
		Slots:     24,
		KeepPlans: true,
	}
	rep, err := profitlb.Simulate(cfg, profitlb.NewOptimized())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nhour  price($/kWh)  fast grp  slow grp  backup   profit($)")
	for i, sr := range rep.Slots {
		fmt.Printf("h%02d   %12.3f  %8.0f  %8.0f  %7.0f  %9.2f\n",
			i, sr.Prices[0],
			sr.CenterServed[0][0], sr.CenterServed[0][1], sr.CenterServed[0][2],
			sr.NetProfit)
	}
	fmt.Printf("\ntotal net profit: $%.2f, completion %.2f%%\n",
		rep.TotalNetProfit(), 100*rep.CompletionRate(0))
	fmt.Println("off-peak, the frugal slow group carries everything; as the trace peaks")
	fmt.Println("the planner engages the power-hungry fast group first (its extra energy")
	fmt.Println("costs less than shipping requests to the distant backup), and only at")
	fmt.Println("the flash crowd does the backup center earn its transfer cost.")
}

package profitlb

import (
	"math"
	"testing"
	"time"
)

// exampleSystem builds a small but complete topology through the facade.
func exampleSystem() *System {
	return &System{
		Classes: []RequestClass{
			{Name: "web", TUF: MustTUF(TUFLevel{Utility: 10, Deadline: 0.01}), TransferCostPerMile: 0.0005},
			{Name: "batch", TUF: MustTUF(
				TUFLevel{Utility: 20, Deadline: 0.005},
				TUFLevel{Utility: 8, Deadline: 0.05},
			), TransferCostPerMile: 0.0008},
		},
		FrontEnds: []FrontEnd{
			{Name: "fe1", DistanceMiles: []float64{100, 1200}},
		},
		Centers: []DataCenter{
			{Name: "dc1", Servers: 4, Capacity: 1,
				ServiceRate: []float64{2000, 1500}, EnergyPerRequest: []float64{0.0004, 0.0008}},
			{Name: "dc2", Servers: 4, Capacity: 1,
				ServiceRate: []float64{1800, 1700}, EnergyPerRequest: []float64{0.0005, 0.0007}},
		},
	}
}

func TestFacadeTUFConstructors(t *testing.T) {
	c, err := ConstantTUF(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumLevels() != 1 || c.Utility(0.5) != 5 {
		t.Fatal("ConstantTUF wrong")
	}
	if _, err := NewTUF(); err == nil {
		t.Fatal("NewTUF with no levels should fail")
	}
	s := NewTUFConstraintSeries(MustTUF(
		TUFLevel{Utility: 10, Deadline: 1},
		TUFLevel{Utility: 4, Deadline: 2},
	), 0, 0, 5)
	if got := s.FeasibleUtilities(0.5); len(got) != 1 || got[0] != 10 {
		t.Fatalf("series pinning wrong: %v", got)
	}
}

func TestFacadeSimulation(t *testing.T) {
	sys := exampleSystem()
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	base := WorldCupLike(WorldCupConfig{Seed: 9, Base: 2500})
	cfg := SimConfig{
		Sys:    sys,
		Traces: []*Trace{ShiftTypes("fe1", base, 2, 3)},
		Prices: []*PriceTrace{Houston(), Atlanta()},
		Slots:  24,
	}
	reports, err := CompareApproaches(cfg,
		NewOptimized(), NewBalanced(), NewNearest(), NewGreedyProfit(), NewRandomBaseline(3))
	if err != nil {
		t.Fatal(err)
	}
	opt := reports[0]
	for _, r := range reports[1:] {
		if opt.TotalNetProfit() < r.TotalNetProfit()-1e-6 {
			t.Fatalf("optimized %g below baseline %s %g",
				opt.TotalNetProfit(), r.Planner, r.TotalNetProfit())
		}
	}
}

func TestFacadePlanVerify(t *testing.T) {
	sys := exampleSystem()
	in := &Input{Sys: sys, Arrivals: [][]float64{{500, 400}}, Prices: []float64{0.1, 0.08}}
	plan, err := NewOptimized().Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPlan(in, plan, 1e-6); err != nil {
		t.Fatal(err)
	}
	if plan.Served(0) <= 0 {
		t.Fatal("nothing served")
	}
}

func TestFacadeLevelSearch(t *testing.T) {
	sys := exampleSystem()
	in := &Input{Sys: sys, Arrivals: [][]float64{{500, 400}}, Prices: []float64{0.1, 0.08}}
	plan, err := NewLevelSearch().Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPlan(in, plan, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestFacadePrices(t *testing.T) {
	for _, tr := range []*PriceTrace{Houston(), MountainView(), Atlanta()} {
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	syn := SyntheticPrices(PriceConfig{Name: "x", Seed: 4})
	if err := syn.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	if len(GoogleLike(GoogleConfig{Seed: 1})) != 7 {
		t.Fatal("GoogleLike default length")
	}
	tr := ConstantTrace("c", []float64{1, 2}, 3)
	if tr.Slots() != 3 || tr.Types() != 2 {
		t.Fatal("ConstantTrace shape")
	}
	pred, err := PredictTrace(tr, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Slots() != 3 {
		t.Fatal("PredictTrace shape")
	}
}

func TestFacadeExperiments(t *testing.T) {
	all := Experiments()
	if len(all) != 47 {
		t.Fatalf("%d experiments registered, want 47 (21 paper artifacts + 26 extensions)", len(all))
	}
	e, ok := ExperimentByID("fig6")
	if !ok {
		t.Fatal("fig6 missing")
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 {
		t.Fatal("no tables")
	}
}

func TestFacadeEndToEndProfitPositive(t *testing.T) {
	sys := exampleSystem()
	cfg := SimConfig{
		Sys:    sys,
		Traces: []*Trace{ConstantTrace("fe1", []float64{800, 600}, 6)},
		Prices: []*PriceTrace{Houston(), MountainView()},
		Slots:  6,
	}
	rep, err := Simulate(cfg, NewOptimized())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalNetProfit() <= 0 {
		t.Fatalf("net profit %g not positive", rep.TotalNetProfit())
	}
	if math.IsNaN(rep.TotalCost()) {
		t.Fatal("NaN cost")
	}
}

func TestFacadeHorizon(t *testing.T) {
	sys := exampleSystem()
	h := &HorizonInput{Sys: sys, MaxDefer: []int{0, 2}}
	for tt := 0; tt < 4; tt++ {
		h.Arrivals = append(h.Arrivals, [][]float64{{400, 300}})
		price := 0.5
		if tt >= 2 {
			price = 0.05
		}
		h.Prices = append(h.Prices, []float64{price, price})
	}
	hp, err := PlanHorizon(h)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyHorizon(h, hp, 1e-5); err != nil {
		t.Fatal(err)
	}
	if len(hp.Slots) != 4 || hp.Objective <= 0 {
		t.Fatalf("horizon plan slots %d obj %g", len(hp.Slots), hp.Objective)
	}
}

func TestFacadeMinCompletion(t *testing.T) {
	sys := exampleSystem()
	in := &Input{Sys: sys, Arrivals: [][]float64{{5000, 5000}}, Prices: []float64{0.1, 0.1}}
	p := NewOptimized()
	p.MinCompletion = []float64{0.3, 0.3}
	plan, err := p.Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		if plan.Served(k) < 0.3*5000-1e-6 {
			t.Fatalf("type %d floor violated: %g", k, plan.Served(k))
		}
	}
}

func TestFacadeAdvise(t *testing.T) {
	sys := exampleSystem()
	cfg := SimConfig{
		Sys:    sys,
		Traces: []*Trace{ConstantTrace("fe1", []float64{9000, 7000}, 2)},
		Prices: []*PriceTrace{Houston(), Atlanta()},
		Slots:  2,
	}
	adv, err := Advise(AdvisorConfig{Sim: cfg, AddServers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Recommendations) != 2 {
		t.Fatalf("recommendations %d", len(adv.Recommendations))
	}
}

func TestFacadeSimulateRequests(t *testing.T) {
	sys := exampleSystem()
	cfg := SimConfig{
		Sys:    sys,
		Traces: []*Trace{ConstantTrace("fe1", []float64{800, 600}, 2)},
		Prices: []*PriceTrace{Houston(), Atlanta()},
		Slots:  2,
	}
	rep, err := SimulateRequests(cfg, NewOptimized(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalRealized() <= 0 {
		t.Fatalf("realized %g", rep.TotalRealized())
	}
}

func TestFacadeSwitchingPlanner(t *testing.T) {
	sys := exampleSystem()
	w := &SwitchingPlanner{Inner: NewOptimized(), TogglePrice: 1, HoldSlots: 1}
	cfg := SimConfig{
		Sys:    sys,
		Traces: []*Trace{ConstantTrace("fe1", []float64{500, 300}, 3)},
		Prices: []*PriceTrace{Houston(), Atlanta()},
		Slots:  3,
	}
	if _, err := Simulate(cfg, w); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeScenario(t *testing.T) {
	sc := ExampleScenario()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalNetProfit() <= 0 {
		t.Fatal("scenario unprofitable")
	}
}

func TestFacadeFaultStorm(t *testing.T) {
	sys := exampleSystem()
	base := WorldCupLike(WorldCupConfig{Seed: 11, Base: 2500})
	storm, err := Storm(StormConfig{
		Seed: 5, Slots: 6, Centers: 2, FrontEnds: 1,
		Outages: 1, Spikes: 1, PlannerFaults: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := SimConfig{
		Sys:              sys,
		Traces:           []*Trace{ShiftTypes("fe1", base, 2, 3)},
		Prices:           []*PriceTrace{Houston(), Atlanta()},
		Slots:            6,
		Faults:           storm,
		DegradeOnFailure: true,
	}
	chain := Resilient(&FaultInjector{Planner: NewOptimized(), Sched: storm})
	chain.Timeout = 20 * time.Millisecond // below the injector's hang
	rep, err := Simulate(cfg, chain)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Slots) != 6 {
		t.Fatalf("storm horizon stopped at %d slots", len(rep.Slots))
	}
	if rep.DegradedSlots() == 0 {
		t.Fatal("injected planner fault never degraded a slot")
	}
}

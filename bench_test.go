package profitlb

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (each re-runs the registered experiment that
// regenerates the artifact), plus micro-benchmarks of the optimization
// substrates and the ablations called out in DESIGN.md §5.
//
// Run with: go test -bench=. -benchmem

import (
	"fmt"
	"testing"

	"profitlb/internal/core"
	"profitlb/internal/exp"
	"profitlb/internal/lp"
	"profitlb/internal/sim"
	"profitlb/internal/tuf"
	"profitlb/internal/workload"
)

// benchExperiment re-runs a registered experiment end to end.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkFig01Prices(b *testing.B)         { benchExperiment(b, "fig1") }
func BenchmarkTab02ArrivalSets(b *testing.B)    { benchExperiment(b, "tab2") }
func BenchmarkTab03DataCenters(b *testing.B)    { benchExperiment(b, "tab3") }
func BenchmarkFig04aLowLoad(b *testing.B)       { benchExperiment(b, "fig4a") }
func BenchmarkFig04bHighLoad(b *testing.B)      { benchExperiment(b, "fig4b") }
func BenchmarkFig05Traces(b *testing.B)         { benchExperiment(b, "fig5") }
func BenchmarkTab04Capacities(b *testing.B)     { benchExperiment(b, "tab4") }
func BenchmarkTab05Distances(b *testing.B)      { benchExperiment(b, "tab5") }
func BenchmarkTab06ProcessingCost(b *testing.B) { benchExperiment(b, "tab6") }
func BenchmarkTab07TUFs(b *testing.B)           { benchExperiment(b, "tab7") }
func BenchmarkFig06NetProfit(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkFig07Dispatch(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkTab08Capacities(b *testing.B)     { benchExperiment(b, "tab8") }
func BenchmarkTab09SubDeadlines(b *testing.B)   { benchExperiment(b, "tab9") }
func BenchmarkTab10TUFValues(b *testing.B)      { benchExperiment(b, "tab10") }
func BenchmarkTab11Power(b *testing.B)          { benchExperiment(b, "tab11") }
func BenchmarkFig08TwoLevel(b *testing.B)       { benchExperiment(b, "fig8") }
func BenchmarkFig09Alloc(b *testing.B)          { benchExperiment(b, "fig9") }
func BenchmarkFig10aLowLoad(b *testing.B)       { benchExperiment(b, "fig10a") }
func BenchmarkFig10bHighLoad(b *testing.B)      { benchExperiment(b, "fig10b") }

// BenchmarkFig11PlanTime reproduces the computation-time sweep directly:
// one sub-benchmark per fleet size, timing single per-server planner calls
// (the quantity plotted in the paper's Fig. 11).
func BenchmarkFig11PlanTime(b *testing.B) {
	for _, m := range exp.Fig11ServerCounts {
		m := m
		b.Run(planSizeName(m), func(b *testing.B) {
			planner := core.NewOptimized()
			planner.PerServer = true
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exp.PlanOnce(m, planner); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func planSizeName(m int) string { return fmt.Sprintf("servers=%02d", m) }

// Substrate micro-benchmarks.

func benchInput() *core.Input {
	ts := exp.NewTwoLevelSetup()
	return &core.Input{
		Sys:      ts.Sys,
		Arrivals: [][]float64{{ts.Traces[0].At(15, 0), ts.Traces[0].At(15, 1)}},
		Prices:   []float64{ts.Prices[0].At(15), ts.Prices[1].At(15)},
	}
}

func BenchmarkPlannerOptimized(b *testing.B) {
	in := benchInput()
	p := core.NewOptimized()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Plan(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlannerBalanced(b *testing.B) {
	in := benchInput()
	p := NewBalanced()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Plan(in); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation 1 (DESIGN.md §5): level-search strategies.
func BenchmarkLevelSearchStrategies(b *testing.B) {
	in := benchInput()
	for _, s := range []core.Strategy{core.Exhaustive, core.Greedy, core.BranchBound} {
		s := s
		b.Run(s.String(), func(b *testing.B) {
			p := core.NewLevelSearch()
			p.Strategy = s
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Plan(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation 2: simplex pivoting rules on the dispatch LP.
func BenchmarkSimplexPivot(b *testing.B) {
	in := benchInput()
	for _, bland := range []bool{false, true} {
		name := "dantzig"
		if bland {
			name = "bland"
		}
		bland := bland
		b.Run(name, func(b *testing.B) {
			p := core.NewOptimized()
			p.LPOpts = lp.Options{Bland: bland}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Plan(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation 3: per-server (paper-faithful) vs aggregated variables.
func BenchmarkAggregation(b *testing.B) {
	in := benchInput()
	for _, perServer := range []bool{false, true} {
		name := "aggregated"
		if perServer {
			name = "per-server"
		}
		perServer := perServer
		b.Run(name, func(b *testing.B) {
			p := core.NewOptimized()
			p.PerServer = perServer
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Plan(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation 4: subset refinement on vs off.
func BenchmarkRefinement(b *testing.B) {
	in := benchInput()
	for _, refine := range []bool{false, true} {
		name := "off"
		if refine {
			name = "on"
		}
		refine := refine
		b.Run(name, func(b *testing.B) {
			p := core.NewOptimized()
			p.Refine = refine
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Plan(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSimplexDispatchLPDirect(b *testing.B) {
	// A raw LP of the Section VI shape: 3 types × 3 centers × 4 FEs.
	build := func() *lp.Model {
		m := lp.NewModel()
		const K, S, L = 3, 4, 3
		var x [K][S][L]int
		var f [K][L]int
		for k := 0; k < K; k++ {
			for l := 0; l < L; l++ {
				f[k][l] = m.AddVariable("f", 0)
				for s := 0; s < S; s++ {
					x[k][s][l] = m.AddVariable("x", 10+float64(k))
				}
			}
		}
		for k := 0; k < K; k++ {
			for l := 0; l < L; l++ {
				terms := []lp.Term{{Var: f[k][l], Coef: 9000}}
				for s := 0; s < S; s++ {
					terms = append(terms, lp.Term{Var: x[k][s][l], Coef: -1})
				}
				m.AddConstraint("cap", terms, lp.GE, 600)
			}
			for s := 0; s < S; s++ {
				var terms []lp.Term
				for l := 0; l < L; l++ {
					terms = append(terms, lp.Term{Var: x[k][s][l], Coef: 1})
				}
				m.AddConstraint("arr", terms, lp.LE, 2500)
			}
		}
		for l := 0; l < L; l++ {
			var terms []lp.Term
			for k := 0; k < K; k++ {
				terms = append(terms, lp.Term{Var: f[k][l], Coef: 1})
			}
			m.AddConstraint("share", terms, lp.LE, 1)
		}
		return m
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := build().Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBigMSeriesEval(b *testing.B) {
	t := tuf.MustNew([]tuf.Level{{Utility: 9, Deadline: 0.5}, {Utility: 6, Deadline: 1.5}, {Utility: 2, Deadline: 3}})
	cs := tuf.NewConstraintSeries(t, 0, 0, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cs.FeasibleUtilities(0.9)
	}
}

func BenchmarkWorldCupGenerator(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		workload.WorldCupLike(workload.WorldCupConfig{Seed: int64(i)})
	}
}

func BenchmarkSimulate24Slots(b *testing.B) {
	ts := exp.NewTraceSetup()
	cfg := ts.Config()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg, core.NewOptimized()); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension experiments (ablations + validation).

func BenchmarkAbl1LevelSearch(b *testing.B) { benchExperiment(b, "abl1-levelsearch") }
func BenchmarkAbl2Refine(b *testing.B)      { benchExperiment(b, "abl2-refine") }
func BenchmarkAbl3Aggregation(b *testing.B) { benchExperiment(b, "abl3-aggregation") }
func BenchmarkAbl4TopUp(b *testing.B)       { benchExperiment(b, "abl4-topup") }
func BenchmarkAbl5Forecast(b *testing.B)    { benchExperiment(b, "abl5-forecast") }
func BenchmarkAbl6Baselines(b *testing.B)   { benchExperiment(b, "abl6-baselines") }
func BenchmarkVal1MM1(b *testing.B)         { benchExperiment(b, "val1-mm1") }

func BenchmarkAbl7ShadowPrices(b *testing.B) { benchExperiment(b, "abl7-shadowprices") }
func BenchmarkVal2Utility(b *testing.B)      { benchExperiment(b, "val2-utility") }

// BenchmarkSensitivity prices one slot's scarce resources.
func BenchmarkSensitivity(b *testing.B) {
	in := benchInput()
	p := core.NewOptimized()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Sensitivity(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAbl8PUE(b *testing.B)   { benchExperiment(b, "abl8-pue") }
func BenchmarkAbl9Scale(b *testing.B) { benchExperiment(b, "abl9-scale") }

func BenchmarkVal3DES(b *testing.B) { benchExperiment(b, "val3-des") }

func BenchmarkAbl10Switching(b *testing.B) { benchExperiment(b, "abl10-switching") }

func BenchmarkAbl11Advisor(b *testing.B) { benchExperiment(b, "abl11-advisor") }

func BenchmarkVal4ServiceCV(b *testing.B) { benchExperiment(b, "val4-servicecv") }

func BenchmarkAbl12Fairness(b *testing.B) { benchExperiment(b, "abl12-fairness") }

func BenchmarkAbl13Defer(b *testing.B) { benchExperiment(b, "abl13-defer") }

func BenchmarkAbl14Margin(b *testing.B) { benchExperiment(b, "abl14-margin") }

func BenchmarkAbl15PriceBlind(b *testing.B) { benchExperiment(b, "abl15-priceblind") }
func BenchmarkVal5Arrivals(b *testing.B)    { benchExperiment(b, "val5-arrivals") }

func BenchmarkAbl16Pooling(b *testing.B) { benchExperiment(b, "abl16-pooling") }
func BenchmarkAbl17Week(b *testing.B)    { benchExperiment(b, "abl17-week") }

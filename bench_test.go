package profitlb

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (each re-runs the registered experiment that
// regenerates the artifact), plus micro-benchmarks of the optimization
// substrates and the ablations called out in DESIGN.md §5.
//
// Run with: go test -bench=. -benchmem

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"profitlb/internal/core"
	"profitlb/internal/datacenter"
	"profitlb/internal/exp"
	"profitlb/internal/lp"
	"profitlb/internal/sim"
	"profitlb/internal/tuf"
	"profitlb/internal/workload"
)

// benchExperiment re-runs a registered experiment end to end.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkFig01Prices(b *testing.B)         { benchExperiment(b, "fig1") }
func BenchmarkTab02ArrivalSets(b *testing.B)    { benchExperiment(b, "tab2") }
func BenchmarkTab03DataCenters(b *testing.B)    { benchExperiment(b, "tab3") }
func BenchmarkFig04aLowLoad(b *testing.B)       { benchExperiment(b, "fig4a") }
func BenchmarkFig04bHighLoad(b *testing.B)      { benchExperiment(b, "fig4b") }
func BenchmarkFig05Traces(b *testing.B)         { benchExperiment(b, "fig5") }
func BenchmarkTab04Capacities(b *testing.B)     { benchExperiment(b, "tab4") }
func BenchmarkTab05Distances(b *testing.B)      { benchExperiment(b, "tab5") }
func BenchmarkTab06ProcessingCost(b *testing.B) { benchExperiment(b, "tab6") }
func BenchmarkTab07TUFs(b *testing.B)           { benchExperiment(b, "tab7") }
func BenchmarkFig06NetProfit(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkFig07Dispatch(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkTab08Capacities(b *testing.B)     { benchExperiment(b, "tab8") }
func BenchmarkTab09SubDeadlines(b *testing.B)   { benchExperiment(b, "tab9") }
func BenchmarkTab10TUFValues(b *testing.B)      { benchExperiment(b, "tab10") }
func BenchmarkTab11Power(b *testing.B)          { benchExperiment(b, "tab11") }
func BenchmarkFig08TwoLevel(b *testing.B)       { benchExperiment(b, "fig8") }
func BenchmarkFig09Alloc(b *testing.B)          { benchExperiment(b, "fig9") }
func BenchmarkFig10aLowLoad(b *testing.B)       { benchExperiment(b, "fig10a") }
func BenchmarkFig10bHighLoad(b *testing.B)      { benchExperiment(b, "fig10b") }

// BenchmarkFig11PlanTime reproduces the computation-time sweep directly:
// one sub-benchmark per fleet size, timing single per-server planner calls
// (the quantity plotted in the paper's Fig. 11).
func BenchmarkFig11PlanTime(b *testing.B) {
	for _, m := range exp.Fig11ServerCounts {
		m := m
		b.Run(planSizeName(m), func(b *testing.B) {
			planner := core.NewOptimized()
			planner.PerServer = true
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exp.PlanOnce(m, planner); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func planSizeName(m int) string { return fmt.Sprintf("servers=%02d", m) }

// Substrate micro-benchmarks.

func benchInput() *core.Input {
	ts := exp.NewTwoLevelSetup()
	return &core.Input{
		Sys:      ts.Sys,
		Arrivals: [][]float64{{ts.Traces[0].At(15, 0), ts.Traces[0].At(15, 1)}},
		Prices:   []float64{ts.Prices[0].At(15), ts.Prices[1].At(15)},
	}
}

func BenchmarkPlannerOptimized(b *testing.B) {
	in := benchInput()
	p := core.NewOptimized()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Plan(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlannerBalanced(b *testing.B) {
	in := benchInput()
	p := NewBalanced()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Plan(in); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation 1 (DESIGN.md §5): level-search strategies.
func BenchmarkLevelSearchStrategies(b *testing.B) {
	in := benchInput()
	for _, s := range []core.Strategy{core.Exhaustive, core.Greedy, core.BranchBound} {
		s := s
		b.Run(s.String(), func(b *testing.B) {
			p := core.NewLevelSearch()
			p.Strategy = s
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Plan(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation 2: simplex pivoting rules on the dispatch LP.
func BenchmarkSimplexPivot(b *testing.B) {
	in := benchInput()
	for _, bland := range []bool{false, true} {
		name := "dantzig"
		if bland {
			name = "bland"
		}
		bland := bland
		b.Run(name, func(b *testing.B) {
			p := core.NewOptimized()
			p.LPOpts = lp.Options{Bland: bland}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Plan(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation 3: per-server (paper-faithful) vs aggregated variables.
func BenchmarkAggregation(b *testing.B) {
	in := benchInput()
	for _, perServer := range []bool{false, true} {
		name := "aggregated"
		if perServer {
			name = "per-server"
		}
		perServer := perServer
		b.Run(name, func(b *testing.B) {
			p := core.NewOptimized()
			p.PerServer = perServer
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Plan(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation 4: subset refinement on vs off.
func BenchmarkRefinement(b *testing.B) {
	in := benchInput()
	for _, refine := range []bool{false, true} {
		name := "off"
		if refine {
			name = "on"
		}
		refine := refine
		b.Run(name, func(b *testing.B) {
			p := core.NewOptimized()
			p.Refine = refine
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Plan(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSimplexDispatchLPDirect(b *testing.B) {
	// A raw LP of the Section VI shape: 3 types × 3 centers × 4 FEs.
	build := func() *lp.Model {
		m := lp.NewModel()
		const K, S, L = 3, 4, 3
		var x [K][S][L]int
		var f [K][L]int
		for k := 0; k < K; k++ {
			for l := 0; l < L; l++ {
				f[k][l] = m.AddVariable("f", 0)
				for s := 0; s < S; s++ {
					x[k][s][l] = m.AddVariable("x", 10+float64(k))
				}
			}
		}
		for k := 0; k < K; k++ {
			for l := 0; l < L; l++ {
				terms := []lp.Term{{Var: f[k][l], Coef: 9000}}
				for s := 0; s < S; s++ {
					terms = append(terms, lp.Term{Var: x[k][s][l], Coef: -1})
				}
				m.AddConstraint("cap", terms, lp.GE, 600)
			}
			for s := 0; s < S; s++ {
				var terms []lp.Term
				for l := 0; l < L; l++ {
					terms = append(terms, lp.Term{Var: x[k][s][l], Coef: 1})
				}
				m.AddConstraint("arr", terms, lp.LE, 2500)
			}
		}
		for l := 0; l < L; l++ {
			var terms []lp.Term
			for k := 0; k < K; k++ {
				terms = append(terms, lp.Term{Var: f[k][l], Coef: 1})
			}
			m.AddConstraint("share", terms, lp.LE, 1)
		}
		return m
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := build().Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBigMSeriesEval(b *testing.B) {
	t := tuf.MustNew([]tuf.Level{{Utility: 9, Deadline: 0.5}, {Utility: 6, Deadline: 1.5}, {Utility: 2, Deadline: 3}})
	cs := tuf.NewConstraintSeries(t, 0, 0, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cs.FeasibleUtilities(0.9)
	}
}

func BenchmarkWorldCupGenerator(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		workload.WorldCupLike(workload.WorldCupConfig{Seed: int64(i)})
	}
}

func BenchmarkSimulate24Slots(b *testing.B) {
	ts := exp.NewTraceSetup()
	cfg := ts.Config()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg, core.NewOptimized()); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension experiments (ablations + validation).

func BenchmarkAbl1LevelSearch(b *testing.B) { benchExperiment(b, "abl1-levelsearch") }
func BenchmarkAbl2Refine(b *testing.B)      { benchExperiment(b, "abl2-refine") }
func BenchmarkAbl3Aggregation(b *testing.B) { benchExperiment(b, "abl3-aggregation") }
func BenchmarkAbl4TopUp(b *testing.B)       { benchExperiment(b, "abl4-topup") }
func BenchmarkAbl5Forecast(b *testing.B)    { benchExperiment(b, "abl5-forecast") }
func BenchmarkAbl6Baselines(b *testing.B)   { benchExperiment(b, "abl6-baselines") }
func BenchmarkVal1MM1(b *testing.B)         { benchExperiment(b, "val1-mm1") }

func BenchmarkAbl7ShadowPrices(b *testing.B) { benchExperiment(b, "abl7-shadowprices") }
func BenchmarkVal2Utility(b *testing.B)      { benchExperiment(b, "val2-utility") }

// BenchmarkSensitivity prices one slot's scarce resources.
func BenchmarkSensitivity(b *testing.B) {
	in := benchInput()
	p := core.NewOptimized()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Sensitivity(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAbl8PUE(b *testing.B)   { benchExperiment(b, "abl8-pue") }
func BenchmarkAbl9Scale(b *testing.B) { benchExperiment(b, "abl9-scale") }

func BenchmarkVal3DES(b *testing.B) { benchExperiment(b, "val3-des") }

func BenchmarkAbl10Switching(b *testing.B) { benchExperiment(b, "abl10-switching") }

func BenchmarkAbl11Advisor(b *testing.B) { benchExperiment(b, "abl11-advisor") }

func BenchmarkVal4ServiceCV(b *testing.B) { benchExperiment(b, "val4-servicecv") }

func BenchmarkAbl12Fairness(b *testing.B) { benchExperiment(b, "abl12-fairness") }

func BenchmarkAbl13Defer(b *testing.B) { benchExperiment(b, "abl13-defer") }

func BenchmarkAbl14Margin(b *testing.B) { benchExperiment(b, "abl14-margin") }

func BenchmarkAbl15PriceBlind(b *testing.B) { benchExperiment(b, "abl15-priceblind") }
func BenchmarkVal5Arrivals(b *testing.B)    { benchExperiment(b, "val5-arrivals") }

func BenchmarkAbl16Pooling(b *testing.B) { benchExperiment(b, "abl16-pooling") }
func BenchmarkAbl17Week(b *testing.B)    { benchExperiment(b, "abl17-week") }

// rob2ChaosScaleInput is the planning slot of the parallel-search
// benchmarks: the Section VII two-level topology grown to the scale of
// the rob2-chaos storm experiment — a third request class and a third,
// energy-expensive data center that is unprofitable for every class.
// The exhaustive level space has 2^9 = 512 assignments, but every
// choice on the unprofitable center's pairs filters to the same
// commodity set, so only 2^6 = 64 distinct subset LPs exist: the
// redundancy the engine's memo cache is built to collapse.
func rob2ChaosScaleInput() *core.Input {
	sys := &datacenter.System{
		Classes: []datacenter.RequestClass{
			{Name: "request1", TUF: tuf.MustNew([]tuf.Level{{Utility: 10, Deadline: 0.005}, {Utility: 4, Deadline: 0.02}}), TransferCostPerMile: 0.0002},
			{Name: "request2", TUF: tuf.MustNew([]tuf.Level{{Utility: 20, Deadline: 0.004}, {Utility: 8, Deadline: 0.015}}), TransferCostPerMile: 0.0003},
			{Name: "request3", TUF: tuf.MustNew([]tuf.Level{{Utility: 15, Deadline: 0.006}, {Utility: 6, Deadline: 0.03}}), TransferCostPerMile: 0.0002},
		},
		FrontEnds: []datacenter.FrontEnd{{Name: "frontend", DistanceMiles: []float64{1000, 2000, 1500}}},
		Centers: []datacenter.DataCenter{
			{Name: "dc1", Servers: 6, Capacity: 1, ServiceRate: []float64{1500, 600, 1000}, EnergyPerRequest: []float64{0.0004, 0.0006, 0.0005}},
			{Name: "dc2", Servers: 6, Capacity: 1, ServiceRate: []float64{1200, 900, 1100}, EnergyPerRequest: []float64{0.0005, 0.0005, 0.0005}},
			{Name: "dc3", Servers: 6, Capacity: 1, ServiceRate: []float64{1000, 1000, 1000}, EnergyPerRequest: []float64{0.9, 0.9, 0.9}},
		},
	}
	return &core.Input{Sys: sys, Arrivals: [][]float64{{3000, 2500, 2800}}, Prices: []float64{40, 45, 60}}
}

// planSearchPlanners enumerates the engine planners benchmarked serial
// (Parallelism 0, the legacy uncached search) vs parallel (all CPUs +
// memo cache).
func planSearchPlanners(par int, stats *core.SearchStats) map[string]core.Planner {
	ls := core.NewLevelSearch()
	ls.Strategy = core.Exhaustive
	ls.Parallelism = par
	ls.Stats = stats
	o := core.NewOptimized()
	o.Parallelism = par
	o.Stats = stats
	return map[string]core.Planner{"level-search": ls, "optimized": o}
}

// BenchmarkPlanSearch is the serial-vs-parallel comparison on the
// rob2-chaos-scale slot. Compare with benchstat:
//
//	go test -bench BenchmarkPlanSearch -count 10 -run NONE .
func BenchmarkPlanSearch(b *testing.B) {
	in := rob2ChaosScaleInput()
	for _, mode := range []struct {
		name string
		par  int
	}{{"serial", 0}, {"parallel", -1}} {
		for name, p := range planSearchPlanners(mode.par, nil) {
			p := p
			b.Run(name+"/"+mode.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := p.Plan(in); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// TestPlanSearchTrajectory measures the serial-vs-parallel plan times on
// the rob2-chaos-scale slot and writes the trajectory point to the file
// named by BENCH_PLAN_JSON (skipped when unset; `make bench` sets it).
// It also enforces the engine's headline claim: the parallel exhaustive
// search must finish the slot at least twice as fast as the legacy
// serial search, while committing a bit-identical plan.
func TestPlanSearchTrajectory(t *testing.T) {
	out := os.Getenv("BENCH_PLAN_JSON")
	if out == "" {
		t.Skip("set BENCH_PLAN_JSON=FILE to record the benchmark trajectory")
	}
	in := rob2ChaosScaleInput()
	bestOf := func(p core.Planner) (time.Duration, *core.Plan) {
		best := time.Duration(1 << 62)
		var plan *core.Plan
		for i := 0; i < 3; i++ {
			start := time.Now()
			got, err := p.Plan(in)
			if err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best, plan = d, got
			}
		}
		return best, plan
	}
	type point struct {
		Planner    string  `json:"planner"`
		SerialNs   int64   `json:"serial_ns"`
		ParallelNs int64   `json:"parallel_ns"`
		Speedup    float64 `json:"speedup"`
		LPSolves   int64   `json:"lp_solves"`
		CacheHits  int64   `json:"cache_hits"`
	}
	var points []point
	for _, name := range []string{"level-search", "optimized"} {
		stats := &core.SearchStats{}
		serialT, serialPlan := bestOf(planSearchPlanners(0, nil)[name])
		parT, parPlan := bestOf(planSearchPlanners(-1, stats)[name])
		if serialPlan.Objective != parPlan.Objective {
			t.Fatalf("%s: parallel objective %v != serial %v", name, parPlan.Objective, serialPlan.Objective)
		}
		speedup := float64(serialT) / float64(parT)
		if name == "level-search" && speedup < 2 {
			t.Errorf("level-search parallel speedup %.2fx, want >= 2x (serial %v, parallel %v)", speedup, serialT, parT)
		}
		points = append(points, point{
			Planner: name, SerialNs: serialT.Nanoseconds(), ParallelNs: parT.Nanoseconds(),
			Speedup: speedup, LPSolves: stats.Solves, CacheHits: stats.CacheHits,
		})
	}
	blob, err := json.MarshalIndent(map[string]any{
		"bench":    "plan-search",
		"scenario": "rob2-chaos-scale",
		"workers":  runtime.NumCPU(),
		"results":  points,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("trajectory written to %s: %s", out, blob)
}

package profitlb

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (each re-runs the registered experiment that
// regenerates the artifact), plus micro-benchmarks of the optimization
// substrates and the ablations called out in DESIGN.md §5.
//
// Run with: go test -bench=. -benchmem

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"profitlb/internal/core"
	"profitlb/internal/datacenter"
	"profitlb/internal/exp"
	"profitlb/internal/lp"
	"profitlb/internal/market"
	"profitlb/internal/mpc"
	"profitlb/internal/sim"
	"profitlb/internal/tuf"
	"profitlb/internal/workload"
)

// benchExperiment re-runs a registered experiment end to end.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkFig01Prices(b *testing.B)         { benchExperiment(b, "fig1") }
func BenchmarkTab02ArrivalSets(b *testing.B)    { benchExperiment(b, "tab2") }
func BenchmarkTab03DataCenters(b *testing.B)    { benchExperiment(b, "tab3") }
func BenchmarkFig04aLowLoad(b *testing.B)       { benchExperiment(b, "fig4a") }
func BenchmarkFig04bHighLoad(b *testing.B)      { benchExperiment(b, "fig4b") }
func BenchmarkFig05Traces(b *testing.B)         { benchExperiment(b, "fig5") }
func BenchmarkTab04Capacities(b *testing.B)     { benchExperiment(b, "tab4") }
func BenchmarkTab05Distances(b *testing.B)      { benchExperiment(b, "tab5") }
func BenchmarkTab06ProcessingCost(b *testing.B) { benchExperiment(b, "tab6") }
func BenchmarkTab07TUFs(b *testing.B)           { benchExperiment(b, "tab7") }
func BenchmarkFig06NetProfit(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkFig07Dispatch(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkTab08Capacities(b *testing.B)     { benchExperiment(b, "tab8") }
func BenchmarkTab09SubDeadlines(b *testing.B)   { benchExperiment(b, "tab9") }
func BenchmarkTab10TUFValues(b *testing.B)      { benchExperiment(b, "tab10") }
func BenchmarkTab11Power(b *testing.B)          { benchExperiment(b, "tab11") }
func BenchmarkFig08TwoLevel(b *testing.B)       { benchExperiment(b, "fig8") }
func BenchmarkFig09Alloc(b *testing.B)          { benchExperiment(b, "fig9") }
func BenchmarkFig10aLowLoad(b *testing.B)       { benchExperiment(b, "fig10a") }
func BenchmarkFig10bHighLoad(b *testing.B)      { benchExperiment(b, "fig10b") }

// BenchmarkFig11PlanTime reproduces the computation-time sweep directly:
// one sub-benchmark per fleet size, timing single per-server planner calls
// (the quantity plotted in the paper's Fig. 11).
func BenchmarkFig11PlanTime(b *testing.B) {
	for _, m := range exp.Fig11ServerCounts {
		m := m
		b.Run(planSizeName(m), func(b *testing.B) {
			planner := core.NewOptimized()
			planner.PerServer = true
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exp.PlanOnce(m, planner); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func planSizeName(m int) string { return fmt.Sprintf("servers=%02d", m) }

// Substrate micro-benchmarks.

func benchInput() *core.Input {
	ts := exp.NewTwoLevelSetup()
	return &core.Input{
		Sys:      ts.Sys,
		Arrivals: [][]float64{{ts.Traces[0].At(15, 0), ts.Traces[0].At(15, 1)}},
		Prices:   []float64{ts.Prices[0].At(15), ts.Prices[1].At(15)},
	}
}

func BenchmarkPlannerOptimized(b *testing.B) {
	in := benchInput()
	p := core.NewOptimized()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Plan(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlannerBalanced(b *testing.B) {
	in := benchInput()
	p := NewBalanced()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Plan(in); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation 1 (DESIGN.md §5): level-search strategies.
func BenchmarkLevelSearchStrategies(b *testing.B) {
	in := benchInput()
	for _, s := range []core.Strategy{core.Exhaustive, core.Greedy, core.BranchBound} {
		s := s
		b.Run(s.String(), func(b *testing.B) {
			p := core.NewLevelSearch()
			p.Strategy = s
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Plan(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation 2: simplex pivoting rules on the dispatch LP.
func BenchmarkSimplexPivot(b *testing.B) {
	in := benchInput()
	for _, bland := range []bool{false, true} {
		name := "dantzig"
		if bland {
			name = "bland"
		}
		bland := bland
		b.Run(name, func(b *testing.B) {
			p := core.NewOptimized()
			p.LPOpts = lp.Options{Bland: bland}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Plan(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation 3: per-server (paper-faithful) vs aggregated variables.
func BenchmarkAggregation(b *testing.B) {
	in := benchInput()
	for _, perServer := range []bool{false, true} {
		name := "aggregated"
		if perServer {
			name = "per-server"
		}
		perServer := perServer
		b.Run(name, func(b *testing.B) {
			p := core.NewOptimized()
			p.PerServer = perServer
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Plan(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation 4: subset refinement on vs off.
func BenchmarkRefinement(b *testing.B) {
	in := benchInput()
	for _, refine := range []bool{false, true} {
		name := "off"
		if refine {
			name = "on"
		}
		refine := refine
		b.Run(name, func(b *testing.B) {
			p := core.NewOptimized()
			p.Refine = refine
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Plan(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSimplexDispatchLPDirect(b *testing.B) {
	// A raw LP of the Section VI shape: 3 types × 3 centers × 4 FEs.
	build := func() *lp.Model {
		m := lp.NewModel()
		const K, S, L = 3, 4, 3
		var x [K][S][L]int
		var f [K][L]int
		for k := 0; k < K; k++ {
			for l := 0; l < L; l++ {
				f[k][l] = m.AddVariable("f", 0)
				for s := 0; s < S; s++ {
					x[k][s][l] = m.AddVariable("x", 10+float64(k))
				}
			}
		}
		for k := 0; k < K; k++ {
			for l := 0; l < L; l++ {
				terms := []lp.Term{{Var: f[k][l], Coef: 9000}}
				for s := 0; s < S; s++ {
					terms = append(terms, lp.Term{Var: x[k][s][l], Coef: -1})
				}
				m.AddConstraint("cap", terms, lp.GE, 600)
			}
			for s := 0; s < S; s++ {
				var terms []lp.Term
				for l := 0; l < L; l++ {
					terms = append(terms, lp.Term{Var: x[k][s][l], Coef: 1})
				}
				m.AddConstraint("arr", terms, lp.LE, 2500)
			}
		}
		for l := 0; l < L; l++ {
			var terms []lp.Term
			for k := 0; k < K; k++ {
				terms = append(terms, lp.Term{Var: f[k][l], Coef: 1})
			}
			m.AddConstraint("share", terms, lp.LE, 1)
		}
		return m
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := build().Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBigMSeriesEval(b *testing.B) {
	t := tuf.MustNew([]tuf.Level{{Utility: 9, Deadline: 0.5}, {Utility: 6, Deadline: 1.5}, {Utility: 2, Deadline: 3}})
	cs := tuf.NewConstraintSeries(t, 0, 0, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cs.FeasibleUtilities(0.9)
	}
}

func BenchmarkWorldCupGenerator(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		workload.WorldCupLike(workload.WorldCupConfig{Seed: int64(i)})
	}
}

func BenchmarkSimulate24Slots(b *testing.B) {
	ts := exp.NewTraceSetup()
	cfg := ts.Config()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg, core.NewOptimized()); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension experiments (ablations + validation).

func BenchmarkAbl1LevelSearch(b *testing.B) { benchExperiment(b, "abl1-levelsearch") }
func BenchmarkAbl2Refine(b *testing.B)      { benchExperiment(b, "abl2-refine") }
func BenchmarkAbl3Aggregation(b *testing.B) { benchExperiment(b, "abl3-aggregation") }
func BenchmarkAbl4TopUp(b *testing.B)       { benchExperiment(b, "abl4-topup") }
func BenchmarkAbl5Forecast(b *testing.B)    { benchExperiment(b, "abl5-forecast") }
func BenchmarkAbl6Baselines(b *testing.B)   { benchExperiment(b, "abl6-baselines") }
func BenchmarkVal1MM1(b *testing.B)         { benchExperiment(b, "val1-mm1") }

func BenchmarkAbl7ShadowPrices(b *testing.B) { benchExperiment(b, "abl7-shadowprices") }
func BenchmarkVal2Utility(b *testing.B)      { benchExperiment(b, "val2-utility") }

// BenchmarkSensitivity prices one slot's scarce resources.
func BenchmarkSensitivity(b *testing.B) {
	in := benchInput()
	p := core.NewOptimized()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Sensitivity(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAbl8PUE(b *testing.B)   { benchExperiment(b, "abl8-pue") }
func BenchmarkAbl9Scale(b *testing.B) { benchExperiment(b, "abl9-scale") }

func BenchmarkVal3DES(b *testing.B) { benchExperiment(b, "val3-des") }

func BenchmarkAbl10Switching(b *testing.B) { benchExperiment(b, "abl10-switching") }

func BenchmarkAbl11Advisor(b *testing.B) { benchExperiment(b, "abl11-advisor") }

func BenchmarkVal4ServiceCV(b *testing.B) { benchExperiment(b, "val4-servicecv") }

func BenchmarkAbl12Fairness(b *testing.B) { benchExperiment(b, "abl12-fairness") }

func BenchmarkAbl13Defer(b *testing.B) { benchExperiment(b, "abl13-defer") }

func BenchmarkAbl14Margin(b *testing.B) { benchExperiment(b, "abl14-margin") }

func BenchmarkAbl15PriceBlind(b *testing.B) { benchExperiment(b, "abl15-priceblind") }
func BenchmarkVal5Arrivals(b *testing.B)    { benchExperiment(b, "val5-arrivals") }

func BenchmarkAbl16Pooling(b *testing.B) { benchExperiment(b, "abl16-pooling") }
func BenchmarkAbl17Week(b *testing.B)    { benchExperiment(b, "abl17-week") }

func BenchmarkMPC1PriceShift(b *testing.B) { benchExperiment(b, "mpc1-priceshift") }
func BenchmarkMPC2FaultDefer(b *testing.B) { benchExperiment(b, "mpc2-faultdefer") }

// mpcVibrationConfig is the MPC trajectory scenario: the Houston
// 13:00–21:00 vibration window (spikes at 14/16/18h) with a web class
// pinned to its arrival hour and an energy-heavy batch class worth
// deferring across the spikes — the mpc1-priceshift physics.
func mpcVibrationConfig() (sim.Config, int) {
	sys := &datacenter.System{
		Classes: []datacenter.RequestClass{
			{Name: "web", TUF: tuf.MustNew([]tuf.Level{{Utility: 10, Deadline: 0.2}}), TransferCostPerMile: 0.0005},
			{Name: "batch", TUF: tuf.MustNew([]tuf.Level{{Utility: 5, Deadline: 1.0}}), TransferCostPerMile: 0.0005},
		},
		FrontEnds: []datacenter.FrontEnd{{Name: "fe", DistanceMiles: []float64{100}}},
		Centers: []datacenter.DataCenter{{
			Name: "dc", Servers: 8, Capacity: 1,
			ServiceRate:      []float64{120, 100},
			EnergyPerRequest: []float64{1.0, 40},
		}},
	}
	const start, slots = 13, 8
	return sim.Config{
		Sys:       sys,
		Traces:    []*workload.Trace{workload.Constant("fe", []float64{300, 200}, start+slots)},
		Prices:    []*market.PriceTrace{market.Houston()},
		Slots:     slots,
		StartSlot: start,
	}, start + slots
}

// TestMPCHorizonTrajectory sweeps the rolling-horizon window length over
// the vibration scenario and records per-horizon run latency, net profit
// and deferral volume under the "mpc" key of the file named by
// BENCH_PLAN_JSON (skipped when unset; `make bench` sets it). The gates
// are the planning plane's headline claims: every horizon's ledger
// settles clean (nothing shed, no stranded backlog), H=1 reduces to the
// myopic planner's profit exactly, and a window of 4+ slots beats the
// myopic profit on the vibration.
func TestMPCHorizonTrajectory(t *testing.T) {
	out := os.Getenv("BENCH_PLAN_JSON")
	if out == "" {
		t.Skip("set BENCH_PLAN_JSON=FILE to record the benchmark trajectory")
	}
	cfg, endSlot := mpcVibrationConfig()
	myo, err := sim.Run(cfg, core.NewOptimized())
	if err != nil {
		t.Fatal(err)
	}
	type point struct {
		Horizon   int     `json:"horizon"`
		RunNs     int64   `json:"run_ns"`
		NetProfit float64 `json:"net_profit"`
		Deferred  float64 `json:"deferred"`
		Forced    float64 `json:"forced"`
		VsMyopic  float64 `json:"vs_myopic"`
	}
	var points []point
	for _, h := range []int{1, 2, 4, 8} {
		mc := mpc.Config{Horizon: h, MaxDefer: []int{0, 2}, EndSlot: endSlot}
		// Min over 3 passes: a full 8-slot run is ~ms-scale, so one
		// stall of a shared box could dominate a single sample.
		best := time.Duration(1 << 62)
		var rep *sim.Report
		for i := 0; i < 3; i++ {
			start := time.Now()
			r, err := sim.Run(cfg, mpc.New(mc))
			if err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best, rep = d, r
			}
		}
		deferred, _, forced, shed := rep.DeferralTotals()
		if shed != 0 {
			t.Errorf("horizon %d: shed %g on a clean ample-capacity window", h, shed)
		}
		if got := rep.FinalBacklog(); got != 0 {
			t.Errorf("horizon %d: stranded backlog %g", h, got)
		}
		net := rep.TotalNetProfit()
		if h == 1 && net != myo.TotalNetProfit() {
			t.Errorf("horizon 1 net %g != myopic %g — reduction broken", net, myo.TotalNetProfit())
		}
		if h >= 4 && net <= myo.TotalNetProfit() {
			t.Errorf("horizon %d net %g does not beat myopic %g on the vibration",
				h, net, myo.TotalNetProfit())
		}
		points = append(points, point{
			Horizon: h, RunNs: best.Nanoseconds(), NetProfit: net,
			Deferred: deferred, Forced: forced,
			VsMyopic: net/myo.TotalNetProfit() - 1,
		})
	}
	updateBenchJSON(t, out, "mpc", map[string]any{
		"scenario":          "houston-vibration-13h-21h",
		"slots":             cfg.Slots,
		"max_defer":         []int{0, 2},
		"myopic_net_profit": myo.TotalNetProfit(),
		"results":           points,
	})
}

// rob2ChaosScaleInput is the planning slot of the parallel-search
// benchmarks: the Section VII two-level topology grown to the scale of
// the rob2-chaos storm experiment — a third request class and a third,
// energy-expensive data center that is unprofitable for every class.
// The exhaustive level space has 2^9 = 512 assignments, but every
// choice on the unprofitable center's pairs filters to the same
// commodity set, so only 2^6 = 64 distinct subset LPs exist: the
// redundancy the engine's memo cache is built to collapse.
func rob2ChaosScaleInput() *core.Input {
	sys := &datacenter.System{
		Classes: []datacenter.RequestClass{
			{Name: "request1", TUF: tuf.MustNew([]tuf.Level{{Utility: 10, Deadline: 0.005}, {Utility: 4, Deadline: 0.02}}), TransferCostPerMile: 0.0002},
			{Name: "request2", TUF: tuf.MustNew([]tuf.Level{{Utility: 20, Deadline: 0.004}, {Utility: 8, Deadline: 0.015}}), TransferCostPerMile: 0.0003},
			{Name: "request3", TUF: tuf.MustNew([]tuf.Level{{Utility: 15, Deadline: 0.006}, {Utility: 6, Deadline: 0.03}}), TransferCostPerMile: 0.0002},
		},
		FrontEnds: []datacenter.FrontEnd{{Name: "frontend", DistanceMiles: []float64{1000, 2000, 1500}}},
		Centers: []datacenter.DataCenter{
			{Name: "dc1", Servers: 6, Capacity: 1, ServiceRate: []float64{1500, 600, 1000}, EnergyPerRequest: []float64{0.0004, 0.0006, 0.0005}},
			{Name: "dc2", Servers: 6, Capacity: 1, ServiceRate: []float64{1200, 900, 1100}, EnergyPerRequest: []float64{0.0005, 0.0005, 0.0005}},
			{Name: "dc3", Servers: 6, Capacity: 1, ServiceRate: []float64{1000, 1000, 1000}, EnergyPerRequest: []float64{0.9, 0.9, 0.9}},
		},
	}
	return &core.Input{Sys: sys, Arrivals: [][]float64{{3000, 2500, 2800}}, Prices: []float64{40, 45, 60}}
}

// planSearchPlanners enumerates the engine planners benchmarked serial
// (Parallelism 0, warm starts off — the legacy uncached cold search) vs
// parallel (engine workers + memo cache + warm-started re-solves).
func planSearchPlanners(par int, warm bool, stats *core.SearchStats) map[string]core.Planner {
	ls := core.NewLevelSearch()
	ls.Strategy = core.Exhaustive
	ls.Parallelism = par
	ls.WarmStart = warm
	ls.Stats = stats
	o := core.NewOptimized()
	o.Parallelism = par
	o.WarmStart = warm
	o.Stats = stats
	return map[string]core.Planner{"level-search": ls, "optimized": o}
}

// parallelSearchWorkers is the worker count of the benchmarks' parallel
// rows: every CPU, but at least 4 so the engine's batching (speculative
// evaluation, subtree splitting) is exercised even on small boxes.
func parallelSearchWorkers() int {
	if n := runtime.NumCPU(); n > 4 {
		return n
	}
	return 4
}

// BenchmarkPlanSearch is the serial-vs-parallel comparison on the
// rob2-chaos-scale slot. Compare with benchstat:
//
//	go test -bench BenchmarkPlanSearch -count 10 -run NONE .
func BenchmarkPlanSearch(b *testing.B) {
	in := rob2ChaosScaleInput()
	for _, mode := range []struct {
		name string
		par  int
		warm bool
	}{{"serial", 0, false}, {"parallel", parallelSearchWorkers(), true}} {
		for name, p := range planSearchPlanners(mode.par, mode.warm, nil) {
			p := p
			b.Run(name+"/"+mode.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := p.Plan(in); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// updateBenchJSON read-modify-writes one top-level section of the
// benchmark trajectory file, so the trajectory tests can each own a key
// without clobbering the others' results.
func updateBenchJSON(t *testing.T, path, key string, section any) {
	t.Helper()
	doc := map[string]json.RawMessage{}
	if blob, err := os.ReadFile(path); err == nil {
		// Tolerate a missing or legacy-format file: start fresh then.
		_ = json.Unmarshal(blob, &doc)
	}
	raw, err := json.Marshal(section)
	if err != nil {
		t.Fatal(err)
	}
	doc[key] = raw
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("%s section of %s: %s", key, path, raw)
}

// TestPlanSearchTrajectory measures the serial-vs-parallel plan times on
// the rob2-chaos-scale slot and writes the trajectory point to the file
// named by BENCH_PLAN_JSON (skipped when unset; `make bench` sets it).
// It also enforces the engine's headline claims: the parallel exhaustive
// search must finish the slot at least twice as fast as the legacy
// serial search, and the optimized planner — whose engine run recorded
// 1.15x before warm starts — must beat that prior number. Serial rows
// run the legacy cold path
// (WarmStart off, Parallelism 0); parallel rows run the engine at
// parallelSearchWorkers() with warm starts on, which is why per-row
// worker counts are recorded instead of one global number (the old
// single "workers" field stamped runtime.NumCPU even though the serial
// rows ran on one worker and the parallel rows on the resolved knob).
func TestPlanSearchTrajectory(t *testing.T) {
	out := os.Getenv("BENCH_PLAN_JSON")
	if out == "" {
		t.Skip("set BENCH_PLAN_JSON=FILE to record the benchmark trajectory")
	}
	in := rob2ChaosScaleInput()
	// Each timing sample is a batch of 5 consecutive Plan calls — the
	// replanning pattern the engine serves in production, and an order of
	// magnitude more signal than a single ~1ms Plan on a shared box. A
	// retained warm planner re-solves later calls of a batch from its own
	// basis, which is exactly the behavior under measurement.
	timeBatch := func(p core.Planner) (time.Duration, *core.Plan) {
		const batch = 5
		start := time.Now()
		var got *core.Plan
		for j := 0; j < batch; j++ {
			var err error
			if got, err = p.Plan(in); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start), got
	}
	// measure interleaves the two contenders' batches and takes each
	// side's min, so a slow phase of a shared machine cannot land on one
	// side of the ratio only.
	measure := func(serial, parallel core.Planner) (time.Duration, time.Duration, *core.Plan, *core.Plan) {
		bestS, bestP := time.Duration(1<<62), time.Duration(1<<62)
		var planS, planP *core.Plan
		for i := 0; i < 4; i++ {
			if d, got := timeBatch(serial); d < bestS {
				bestS, planS = d, got
			}
			if d, got := timeBatch(parallel); d < bestP {
				bestP, planP = d, got
			}
		}
		return bestS, bestP, planS, planP
	}
	type point struct {
		Planner       string `json:"planner"`
		SerialNs      int64  `json:"serial_ns"`
		SerialWorkers int    `json:"serial_workers"`
		ParallelNs    int64  `json:"parallel_ns"`
		// ParallelWorkers is the requested knob; the engine caps execution
		// at the CPU count, recorded as ParallelWorkersResolved.
		ParallelWorkers         int     `json:"parallel_workers"`
		ParallelWorkersResolved int     `json:"parallel_workers_resolved"`
		Speedup                 float64 `json:"speedup"`
		LPSolves                int64   `json:"lp_solves"`
		CacheHits               int64   `json:"cache_hits"`
		WarmHits                int64   `json:"warm_hits"`
		WarmPivots              int64   `json:"warm_pivots"`
		ColdPivots              int64   `json:"cold_pivots"`
	}
	parWorkers := parallelSearchWorkers()
	var points []point
	for _, name := range []string{"level-search", "optimized"} {
		stats := &core.SearchStats{}
		serialT, parT, serialPlan, parPlan := measure(
			planSearchPlanners(0, false, nil)[name],
			planSearchPlanners(parWorkers, true, stats)[name])
		// Warm results are audited but may differ from cold at round-off
		// level, so the cross-mode check is a tolerance, not bit equality
		// (bit-identity across worker counts within each mode is enforced
		// by the core suites).
		if d := parPlan.Objective - serialPlan.Objective; d > 1e-9*(1+serialPlan.Objective) || -d > 1e-9*(1+serialPlan.Objective) {
			t.Fatalf("%s: parallel objective %v != serial %v", name, parPlan.Objective, serialPlan.Objective)
		}
		speedup := float64(serialT) / float64(parT)
		if name == "level-search" && speedup < 2 {
			t.Errorf("level-search parallel speedup %.2fx, want >= 2x (serial %v, parallel %v)", speedup, serialT, parT)
		}
		// 1.15x is the recorded pre-warm-start engine speedup for this
		// planner (cache only); warm starts must improve on it.
		if name == "optimized" && speedup <= 1.15 {
			t.Errorf("optimized parallel speedup %.2fx, want > 1.15x pre-warm baseline (serial %v, parallel %v)", speedup, serialT, parT)
		}
		resolved := parWorkers
		if n := runtime.NumCPU(); resolved > n {
			resolved = n
		}
		points = append(points, point{
			Planner: name, SerialNs: serialT.Nanoseconds(), SerialWorkers: 1,
			ParallelNs: parT.Nanoseconds(), ParallelWorkers: parWorkers, ParallelWorkersResolved: resolved,
			Speedup: speedup, LPSolves: stats.Solves, CacheHits: stats.CacheHits,
			WarmHits: stats.WarmHits, WarmPivots: stats.WarmPivots, ColdPivots: stats.ColdPivots,
		})
	}
	updateBenchJSON(t, out, "plan_search", map[string]any{
		"scenario": "rob2-chaos-scale",
		"cpus":     runtime.NumCPU(),
		"results":  points,
	})
}

// largeTopologySystem is the warm-start benchmark topology at revised-
// simplex scale: 100 centers x 20 classes x 2 TUF levels x 3 front-ends.
// Half of the (class, center) pairs are priced out by a pattern of
// energy-hungry assignments (1.5 kWh/request costs more than any
// utility at any price in the sweep), leaving ~2000 admitted
// commodities and a dispatch LP of ~2160 rows x ~8000 structural
// variables — far above DefaultSparseMinRows, and the scale where the
// dense tableau's O(rows·cols) work per hot re-solve (rhs refresh plus
// a handful of pivots, each touching the whole tableau) dominates
// re-solve latency.
func largeTopologySystem() *datacenter.System {
	const K, L, S = 20, 100, 3
	classes := make([]datacenter.RequestClass, K)
	for k := range classes {
		u := 12 + float64(k)
		classes[k] = datacenter.RequestClass{
			Name: fmt.Sprintf("class%02d", k),
			TUF: tuf.MustNew([]tuf.Level{
				{Utility: u, Deadline: 0.02},
				{Utility: u * 0.45, Deadline: 0.08},
			}),
			TransferCostPerMile: 0.00005,
		}
	}
	fes := make([]datacenter.FrontEnd, S)
	for s := range fes {
		d := make([]float64, L)
		for l := range d {
			d[l] = 200 + 37*float64((s*7+l*11)%29)
		}
		fes[s] = datacenter.FrontEnd{Name: fmt.Sprintf("fe%d", s), DistanceMiles: d}
	}
	centers := make([]datacenter.DataCenter, L)
	for l := range centers {
		mu := make([]float64, K)
		en := make([]float64, K)
		for k := range mu {
			mu[k] = 900 + 20*float64((l+k)%6)
			if (l*7+k)%2 == 0 {
				en[k] = 0.0004 + 0.00002*float64((l*3+k)%5)
			} else {
				en[k] = 1.5
			}
		}
		centers[l] = datacenter.DataCenter{
			Name: fmt.Sprintf("dc%02d", l), Servers: 4, Capacity: 1,
			ServiceRate: mu, EnergyPerRequest: en,
		}
	}
	return &datacenter.System{Classes: classes, FrontEnds: fes, Centers: centers}
}

// largeTopologyInput perturbs arrivals ±3% and prices ±2% per slot — the
// cross-slot drift of a real trace, small enough that the admitted
// commodity set (hence the LP structure) is stable and the previous
// slot's basis stays an excellent starting vertex.
func largeTopologyInput(sys *datacenter.System, slot int) *core.Input {
	K, L, S := sys.K(), sys.L(), sys.S()
	arr := make([][]float64, S)
	for s := range arr {
		arr[s] = make([]float64, K)
		for k := range arr[s] {
			base := 400 + 30*float64((s+k)%7)
			arr[s][k] = base * (1 + 0.03*math.Sin(float64(slot)+float64(s*13+k)))
		}
	}
	prices := make([]float64, L)
	for l := range prices {
		prices[l] = (30 + float64(l%9)) * (1 + 0.02*math.Cos(float64(slot)+float64(l)))
	}
	return &core.Input{Sys: sys, Arrivals: arr, Prices: prices, Slot: slot}
}

// TestWarmStartTrajectory measures dense-warm vs sparse re-solves over a
// perturbed slot sequence on the large topology and records the point in
// BENCH_PLAN_JSON. Both chains are warm-started: the dense chain runs
// the retained tableau path (Sparse off), the sparse chain the revised
// simplex with LU-factorized basis updates, which the 1160-row LP
// selects automatically under the default row threshold. Each chain has
// three regimes — slot 0 arms the machinery (a cold two-phase solve for
// dense, a crash-basis import for sparse), slot 1 is the first retained
// re-use, and every later slot is a hot re-solve (rhs refresh + a
// handful of pivots). The gate is the tentpole headline claim:
// steady-state sparse hot re-solves (slots 2+) must finish at least 3x
// faster than the dense warm chain's hot re-solves of the same slots,
// with matching audited objectives and zero audit fallbacks on either
// side. Arming costs are recorded in the JSON rather than averaged into
// the claim.
func TestWarmStartTrajectory(t *testing.T) {
	out := os.Getenv("BENCH_PLAN_JSON")
	if out == "" {
		t.Skip("set BENCH_PLAN_JSON=FILE to record the benchmark trajectory")
	}
	sys := largeTopologySystem()
	const slots = 6
	mkPlanner := func(sparse bool, stats *core.SearchStats) *core.Optimized {
		o := core.NewOptimized()
		o.Refine = false // one dispatch LP per slot: isolates the solver path
		o.Sparse = sparse
		o.Stats = stats
		return o
	}
	// runChain returns per-slot wall times, per-slot stats snapshots and
	// objectives for one fresh planner driven down the slot sequence.
	runChain := func(p *core.Optimized) ([]time.Duration, []core.SearchStats, []float64) {
		durs := make([]time.Duration, slots)
		stats := make([]core.SearchStats, slots)
		objs := make([]float64, slots)
		for slot := 0; slot < slots; slot++ {
			in := largeTopologyInput(sys, slot)
			start := time.Now()
			plan, err := p.Plan(in)
			if err != nil {
				t.Fatalf("slot %d: %v", slot, err)
			}
			durs[slot] = time.Since(start)
			if p.Stats != nil {
				stats[slot] = *p.Stats
			}
			objs[slot] = plan.Objective
		}
		return durs, stats, objs
	}
	// Per-slot minimum over 3 independent chain passes (fresh planner per
	// pass — a warm chain re-arms from its own slot 0): per-slot times at
	// this scale are well above timer noise, but a shared box can still
	// stall one pass.
	minChain := func(sparse bool) ([]time.Duration, []core.SearchStats, []float64) {
		var best []time.Duration
		var stats []core.SearchStats
		var objs []float64
		for a := 0; a < 3; a++ {
			d, s, o := runChain(mkPlanner(sparse, &core.SearchStats{}))
			if best == nil {
				best, stats, objs = d, s, o
				continue
			}
			for i := range d {
				if d[i] < best[i] {
					best[i] = d[i]
				}
			}
		}
		return best, stats, objs
	}
	denseDurs, denseStats, denseObjs := minChain(false)
	sparseDurs, sparseStats, sparseObjs := minChain(true)
	// Both chains audit every accepted result against CheckFeasible, so
	// cross-path agreement is a tolerance (round-off accumulates
	// differently through eta files than through tableau pivots), not bit
	// equality.
	for i := range denseObjs {
		if d := sparseObjs[i] - denseObjs[i]; d > 1e-7*(1+denseObjs[i]) || -d > 1e-7*(1+denseObjs[i]) {
			t.Fatalf("slot %d: sparse objective %v vs dense %v", i, sparseObjs[i], denseObjs[i])
		}
	}
	var steadyDense, steadySparse time.Duration
	var densePivots, sparsePivots, sparseSolves, hotHitsDense, hotHitsSparse, abandoned int64
	for slot := 2; slot < slots; slot++ {
		steadyDense += denseDurs[slot]
		steadySparse += sparseDurs[slot]
		densePivots += denseStats[slot].WarmPivots
		sparsePivots += sparseStats[slot].WarmPivots
		sparseSolves += sparseStats[slot].SparseSolves
		hotHitsDense += denseStats[slot].WarmHits
		hotHitsSparse += sparseStats[slot].WarmHits
		abandoned += sparseStats[slot].AbandonedPivots + denseStats[slot].AbandonedPivots
		if denseStats[slot].WarmHits == 0 {
			t.Errorf("dense chain solved slot %d without a warm hit: %+v", slot, denseStats[slot])
		}
		if sparseStats[slot].SparseSolves == 0 {
			t.Errorf("sparse chain solved slot %d without a sparse solve: %+v", slot, sparseStats[slot])
		}
	}
	// Zero audit failures: an audit rejection surfaces as a warm fallback
	// (the solver re-runs cold), so any fallback anywhere in either chain
	// fails the gate.
	for slot := 0; slot < slots; slot++ {
		if n := denseStats[slot].WarmFallbacks; n != 0 {
			t.Errorf("dense chain slot %d took %d audit fallbacks: %+v", slot, n, denseStats[slot])
		}
		if n := sparseStats[slot].WarmFallbacks; n != 0 {
			t.Errorf("sparse chain slot %d took %d audit fallbacks: %+v", slot, n, sparseStats[slot])
		}
	}
	speedup := float64(steadyDense) / float64(steadySparse)
	if speedup < 3 {
		t.Errorf("steady-state sparse hot re-solve speedup %.2fx over dense warm, want >= 3x (dense %v, sparse %v over slots 2..%d)",
			speedup, steadyDense, steadySparse, slots-1)
	}
	updateBenchJSON(t, out, "warm_start", map[string]any{
		"scenario":                  "large-topology-100dc-20class",
		"slots":                     slots,
		"steady_dense_warm_ns":      steadyDense.Nanoseconds(),
		"steady_sparse_ns":          steadySparse.Nanoseconds(),
		"steady_sparse_speedup":     speedup,
		"dense_cold_slot0_ns":       denseDurs[0].Nanoseconds(),
		"dense_import_slot_ns":      denseDurs[1].Nanoseconds(),
		"sparse_import_slot0_ns":    sparseDurs[0].Nanoseconds(),
		"sparse_hot_slot1_ns":       sparseDurs[1].Nanoseconds(),
		"dense_warm_pivots_steady":  densePivots,
		"sparse_warm_pivots_steady": sparsePivots,
		"sparse_solves_steady":      sparseSolves,
		"hot_hits_steady_dense":     hotHitsDense,
		"hot_hits_steady_sparse":    hotHitsSparse,
		"abandoned_pivots":          abandoned,
		"serial_workers":            1,
		"warm_start_mode":           "hot-chain+seeded-import",
	})
}

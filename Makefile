GO ?= go

.PHONY: build test vet race fuzz verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector; it exercises the
# resilient chain's deadline goroutines and sim.Compare's parallel lanes.
race:
	$(GO) test -race ./...

# fuzz gives each fuzz target a short budget beyond its checked-in corpus.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzReadCSV -fuzztime=10s ./internal/workload/
	$(GO) test -run=NONE -fuzz=FuzzLoad -fuzztime=10s ./internal/config/

# verify is the repo's full check tier: build, vet, tests, race tests.
verify: build vet test race

bench:
	$(GO) test -bench=. -benchtime=1x -run=NONE ./...

GO ?= go

.PHONY: build test vet race fuzz verify verify-feeds verify-obs verify-dispatch verify-cluster verify-control verify-lp verify-mpc bench bench-lp-sparse bench-smoke benchall

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector; it exercises the
# resilient chain's deadline goroutines and sim.Compare's parallel lanes.
race:
	$(GO) test -race ./...

# fuzz gives each fuzz target a short budget beyond its checked-in
# corpus. FuzzLoad's seeds include feeds blocks, feed fault events,
# dispatch blocks, cluster blocks and cluster fault events, so those
# config decoders are fuzzed here too. FuzzCompile drives arbitrary
# plans through the routing-table compiler. FuzzWarmBasisImport throws
# hostile (mismatched, duplicated, dependent) seed bases at the warm
# solver and checks every accepted result against the cold path.
# FuzzSparseFactors drives arbitrary sparse matrices and basis-change
# sequences through the LU factor/eta-update machinery and checks every
# FTRAN/BTRAN solve against a dense reference.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzReadCSV -fuzztime=10s ./internal/workload/
	$(GO) test -run=NONE -fuzz=FuzzLoad -fuzztime=10s ./internal/config/
	$(GO) test -run=NONE -fuzz=FuzzCompile -fuzztime=10s ./internal/dispatch/
	$(GO) test -run=NONE -fuzz=FuzzControlRescale -fuzztime=10s ./internal/dispatch/
	$(GO) test -run=NONE -fuzz=FuzzWarmBasisImport -fuzztime=10s ./internal/lp/
	$(GO) test -run=NONE -fuzz=FuzzSparseFactors -fuzztime=10s ./internal/linalg/

# verify is the repo's full check tier: build, vet, tests, race tests,
# a one-iteration smoke of the plan-search benchmarks, the feed-layer
# resilience tier, the observability tier, the dispatch-plane tier, the
# replicated-fleet tier, the warm-start solver tier, and the
# rolling-horizon planning tier.
verify: build vet test race bench-smoke verify-feeds verify-obs verify-dispatch verify-cluster verify-control verify-lp verify-mpc

# verify-mpc is the rolling-horizon planning tier: the mpc package's
# unit, invariant and sim-level acceptance suites under the race
# detector (reduction bit-identity, the Houston vibration profit gate,
# never-loses on clean scenarios, fault-storm forced drains, and the
# abandoned-goroutine timeout hammer), the multi-step forecast property
# suite, the config-layer mpc block round-trip/validation/wiring, the
# two registered mpc experiments, and the CLI -horizon/-defer smoke.
verify-mpc:
	$(GO) vet ./internal/mpc/
	$(GO) test -race ./internal/mpc/
	$(GO) test -race -run 'TestPredictH' ./internal/forecast/
	$(GO) test -race -run 'TestMPC' ./internal/config/
	$(GO) test -race -run 'TestAllExperimentsRun/mpc1-priceshift|TestAllExperimentsRun/mpc2-faultdefer' ./internal/exp/
	$(GO) test -count=1 -run 'TestCmdSimulateMPCFlags' ./cmd/profitlb/

# verify-control is the closed-loop tier: the control package under the
# race detector (step-disturbance monotone settling, dead-band/hysteresis
# gates, freeze matrix, byte-identical actuation logs under concurrent
# traffic); the loadgen acceptance gates — clean scenario bit-identical
# with zero actuations, controller-beats-frozen under flash-crowd and
# slow-center faults, burst targeting leaves untargeted streams Poisson;
# the dispatch-side actuation primitives (Rescale, lexicographic (epoch,
# sub) fencing, MaxRate headroom/telescoping); and the cluster sub-epoch
# propagation suite.
verify-control:
	$(GO) vet ./internal/control/
	$(GO) test -race ./internal/control/
	$(GO) test -race -run 'TestControl|TestFleetControl|TestBurstTargeting|TestFlashCrowd|TestSlowCenter' ./internal/loadgen/
	$(GO) test -race -run 'TestRescale|TestInstallIfNewerLexicographic|TestWireSubMaxRate|TestCompileMaxRateHeadroom|TestSubdivideMaxRateTelescopes' ./internal/dispatch/
	$(GO) test -race -run 'TestPublishControl|TestReplicaSubEpochFence|TestPartitionedReplicaKeepsFencedSub|TestStaleDowngradeAppliesExactlyOnce' ./internal/cluster/
	$(GO) test -count=1 -run 'TestServeControlSmoke' ./cmd/profitlb/

# verify-lp is the solver tier: the lp package (cold/warm simplex,
# basis export/import, hot re-solve audits, the sparse revised simplex
# with its dual-cycling regression and cold-audit suites) and the
# sparse LU/eta kernels in linalg, plus the planner warm-start and
# sparse suites — chain equivalence vs cold, sparse-vs-dense chain
# agreement, sparse-off bit-identity, worker-count invariance,
# iteration-limit escalation, horizon warm and sparse windows — under
# the race detector, with the memo-cache contention benchmark as a
# smoke.
verify-lp:
	$(GO) vet ./internal/lp/ ./internal/linalg/ ./internal/core/
	$(GO) test -race ./internal/lp/ ./internal/linalg/
	$(GO) test -race -run 'TestWarm|TestSparse|TestLevelSearchWarmChain|TestHorizonPlannerWarm|TestHorizonPlannerSparse|TestPerServerIgnoresWarmStart|TestIterationLimitEscalates|TestStats|TestParallelPlansBitIdentical' ./internal/core/
	$(GO) test -run=NONE -bench=BenchmarkSubsetCacheContention -benchtime=1x ./internal/core/

# verify-cluster is the replicated-fleet tier: the cluster package
# (epoch fencing, membership, staleness TTL, HTTP long-poll subscriber)
# under the race detector; the fleet replays — including the seeded
# replica-kill chaos smoke (TestFleetReplicaKillStorm) and the
# publisher-outage stale-serving gate; the dispatch-side cluster
# primitives (epoch fence, token carry, subdivision, wire round-trip,
# driver multi-slot recovery); and the fleet/join/readyz serve smokes.
verify-cluster:
	$(GO) vet ./internal/cluster/
	$(GO) test -race ./internal/cluster/
	$(GO) test -race -run 'TestFleet|TestRunFleet' ./internal/loadgen/
	$(GO) test -race -run 'TestEpochFence|TestTokenCarry|TestSubdivide|TestWireRoundTrip|TestFromWireRejectsHostile|TestScaleConservativeShed|TestDriverMultiSlotRecovery' ./internal/dispatch/
	$(GO) test -count=1 -run 'TestServeReadyz|TestServeFleetSmoke|TestServeJoinSmoke' ./cmd/profitlb/

# verify-dispatch is the online serving tier: the dispatch and loadgen
# packages under the race detector (seeded-routing determinism is
# asserted there with concurrent callers), plus the serve smoke through
# the CLI — boot the gateway on a free port, fire a burst with the load
# generator, check every endpoint, and drain cleanly.
verify-dispatch:
	$(GO) vet ./internal/dispatch/ ./internal/loadgen/
	$(GO) test -race ./internal/dispatch/ ./internal/loadgen/
	$(GO) test -count=1 -run 'TestServe' ./cmd/profitlb/

# verify-obs is the observability tier: the obs package under the race
# detector, the sim-level integration tests (bit-identical guard,
# escalation/trace agreement, golden trace), the worker-panic regression,
# and the CLI -metrics/-trace/-pprof smokes.
verify-obs:
	$(GO) test -race ./internal/obs/
	$(GO) test -race -run 'TestObs' ./internal/sim/
	$(GO) test -race -run 'TestMapOrderedWorkerPanicBecomesError' ./internal/core/
	$(GO) test -count=1 -run 'TestCmdSimulateObs|TestCmdChaosObs|TestCmdSimulatePprofSmoke' ./cmd/profitlb/

# verify-feeds is the telemetry-resilience tier: the feed package (and
# its sim integration) under the race detector, plus a one-shot
# chaos-with-feeds smoke through the CLI.
verify-feeds:
	$(GO) test -race ./internal/feed/ ./internal/resilient/
	$(GO) test -race -run 'TestFeedPath|TestCompareLanes|TestDarkFeeds|TestFeedEscalation' ./internal/sim/
	$(GO) test -count=1 -run 'TestCmdChaosFeeds|TestCmdSimulateFeeds' ./cmd/profitlb/

# bench compares the serial and parallel plan searches on the
# rob2-chaos-scale slot, the dense-warm vs sparse re-solve chains on
# the large 100-center topology, and the rolling-horizon sweep on the
# Houston vibration window. The -count runs feed benchstat directly
# (`make bench | benchstat -`), and the timing trajectories — speedups,
# LP solves, cache hits, pivot counts, per-horizon run latency — land in
# BENCH_plan.json under the "plan_search", "warm_start" and "mpc" keys.
bench:
	$(GO) test -bench=BenchmarkPlanSearch -benchtime=5x -count=6 -run=NONE .
	BENCH_PLAN_JSON=BENCH_plan.json $(GO) test -count=1 -run='TestPlanSearchTrajectory|TestWarmStartTrajectory|TestMPCHorizonTrajectory' .
	$(GO) test -bench=BenchmarkDispatch -count=6 -run=NONE ./internal/dispatch/
	BENCH_DISPATCH_JSON=$(CURDIR)/BENCH_dispatch.json $(GO) test -count=1 -run=TestDispatchHotPathTrajectory ./internal/dispatch/
	$(GO) test -bench=BenchmarkControlTick -count=6 -run=NONE ./internal/control/
	BENCH_DISPATCH_JSON=$(CURDIR)/BENCH_dispatch.json $(GO) test -count=1 -run=TestControlTickTrajectory ./internal/control/

# bench-lp-sparse re-runs just the solver trajectory: the dense-warm vs
# sparse re-solve chains on the 100-center topology, recording
# steady-state hot re-solve latency, pivot counts and abandoned-pivot
# spend under the "warm_start" key of BENCH_plan.json and enforcing the
# >= 3x sparse steady-state gate.
bench-lp-sparse:
	BENCH_PLAN_JSON=BENCH_plan.json $(GO) test -count=1 -run='TestWarmStartTrajectory' -v .

# bench-smoke proves every plan-search benchmark still runs (one
# iteration, no timing claims); wired into verify.
bench-smoke:
	$(GO) test -bench=BenchmarkPlanSearch -benchtime=1x -run=NONE .

# benchall sweeps the full paper-artifact benchmark suite once.
benchall:
	$(GO) test -bench=. -benchtime=1x -run=NONE ./...

package switching

import (
	"testing"

	"profitlb/internal/core"
	"profitlb/internal/datacenter"
	"profitlb/internal/market"
	"profitlb/internal/sim"
	"profitlb/internal/tuf"
	"profitlb/internal/workload"
)

func testSystem() *datacenter.System {
	return &datacenter.System{
		Classes: []datacenter.RequestClass{
			{Name: "web", TUF: tuf.MustNew([]tuf.Level{{Utility: 10, Deadline: 0.01}}), TransferCostPerMile: 0.0002},
		},
		FrontEnds: []datacenter.FrontEnd{{Name: "fe", DistanceMiles: []float64{200}}},
		Centers: []datacenter.DataCenter{{
			Name: "dc", Servers: 10, Capacity: 1,
			ServiceRate:         []float64{1000},
			EnergyPerRequest:    []float64{0.001},
			IdleEnergyPerServer: 0.3, // kWh per server-slot: consolidation now pays
		}},
	}
}

// sawtooth alternates light and heavy slots to force fleet resizing.
func sawtooth(slots int) *workload.Trace {
	tr := &workload.Trace{Name: "saw"}
	for s := 0; s < slots; s++ {
		rate := 800.0
		if s%2 == 1 {
			rate = 7000
		}
		tr.Rates = append(tr.Rates, []float64{rate})
	}
	return tr
}

func cfg(slots int) sim.Config {
	return sim.Config{
		Sys:    testSystem(),
		Traces: []*workload.Trace{sawtooth(slots)},
		Prices: []*market.PriceTrace{market.Houston()},
		Slots:  slots,
	}
}

func TestWrapperCountsToggles(t *testing.T) {
	w := &Planner{Inner: core.NewOptimized(), TogglePrice: 2}
	rep, err := sim.Run(cfg(8), w)
	if err != nil {
		t.Fatal(err)
	}
	if w.Toggles == 0 {
		t.Fatal("sawtooth load should toggle servers")
	}
	if w.ToggleCost != float64(w.Toggles)*2 {
		t.Fatalf("toggle cost %g for %d toggles", w.ToggleCost, w.Toggles)
	}
	if rep.TotalNetProfit() <= 0 {
		t.Fatal("run unprofitable")
	}
}

func TestHysteresisReducesToggles(t *testing.T) {
	plain := &Planner{Inner: core.NewOptimized(), TogglePrice: 2}
	if _, err := sim.Run(cfg(12), plain); err != nil {
		t.Fatal(err)
	}
	held := &Planner{Inner: core.NewOptimized(), TogglePrice: 2, HoldSlots: 2}
	if _, err := sim.Run(cfg(12), held); err != nil {
		t.Fatal(err)
	}
	if held.Toggles >= plain.Toggles {
		t.Fatalf("hysteresis did not reduce toggles: %d vs %d", held.Toggles, plain.Toggles)
	}
}

func TestHysteresisPlansStayFeasible(t *testing.T) {
	w := &Planner{Inner: core.NewOptimized(), HoldSlots: 3}
	c := cfg(6)
	// Drive the loop manually to verify every emitted plan.
	for slot := 0; slot < c.Slots; slot++ {
		in := &core.Input{
			Sys:      c.Sys,
			Arrivals: [][]float64{{c.Traces[0].At(slot, 0)}},
			Prices:   []float64{c.Prices[0].At(slot)},
		}
		plan, err := w.Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.Verify(in, plan, 1e-6); err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
	}
}

func TestIdleEnergyMakesConsolidationPay(t *testing.T) {
	// With idle draw, the optimized planner (consolidating) must beat a
	// variant that leaves the whole fleet on.
	allOn := core.NewOptimized()
	allOn.Consolidate = false
	conso := core.NewOptimized()
	repAll, err := sim.Run(cfg(8), allOn)
	if err != nil {
		t.Fatal(err)
	}
	repConso, err := sim.Run(cfg(8), conso)
	if err != nil {
		t.Fatal(err)
	}
	if repConso.TotalNetProfit() <= repAll.TotalNetProfit() {
		t.Fatalf("consolidation %g should beat all-on %g under idle draw",
			repConso.TotalNetProfit(), repAll.TotalNetProfit())
	}
}

func TestReset(t *testing.T) {
	w := &Planner{Inner: core.NewOptimized(), TogglePrice: 1}
	if _, err := sim.Run(cfg(4), w); err != nil {
		t.Fatal(err)
	}
	if w.Toggles == 0 {
		t.Fatal("expected toggles")
	}
	w.Reset()
	if w.Toggles != 0 || w.ToggleCost != 0 || w.NetAdjustment() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestErrors(t *testing.T) {
	w := &Planner{}
	if _, err := w.Plan(nil); err != ErrNoInner {
		t.Fatal("want ErrNoInner")
	}
	if w.Name() != "switching(?)" {
		t.Fatalf("name %q", w.Name())
	}
	w.Inner = core.NewOptimized()
	if w.Name() != "switching(optimized)" {
		t.Fatalf("name %q", w.Name())
	}
}

// Package switching relaxes the paper's assumption that "server switching
// costs and durations are negligible". It wraps any planner with
// power-state awareness: each server power toggle (on→off or off→on)
// costs TogglePrice dollars — wear, migration, and the unserviced warm-up
// the paper waves away — and an optional hysteresis keeps recently used
// servers powered to avoid paying that price twice across a demand dip.
//
// Under the paper's purely per-request energy model the profit-optimal
// policy is trivial (never power anything off); the wrapper becomes
// interesting exactly when DataCenter.IdleEnergyPerServer is set, so that
// keeping a server on costs idle energy and powering it off risks toggle
// fees. The wrapper is stateful across slots: use one instance per
// simulated horizon.
package switching

import (
	"errors"

	"profitlb/internal/core"
)

// Planner wraps an inner planner with toggle accounting and hysteresis.
type Planner struct {
	// Inner produces the per-slot plan that is then power-adjusted.
	Inner core.Planner
	// TogglePrice is the dollar cost per server power-state change.
	TogglePrice float64
	// HoldSlots keeps a server powered for this many slots after the plan
	// last needed it (0 = follow the plan exactly).
	HoldSlots int

	// prev holds the previous slot's power state per center; hold counts
	// down per server "position" (servers within a center are
	// interchangeable, so only counts matter).
	prevOn  []int
	holdAge []int

	// Toggles and ToggleCost accumulate over the horizon.
	Toggles    int
	ToggleCost float64
}

// ErrNoInner is returned when the wrapper has no inner planner.
var ErrNoInner = errors.New("switching: no inner planner")

// Name implements core.Planner.
func (p *Planner) Name() string {
	if p.Inner == nil {
		return "switching(?)"
	}
	return "switching(" + p.Inner.Name() + ")"
}

// Reset clears the power-state memory and the accumulated toggle
// statistics, making the wrapper reusable for a fresh horizon.
func (p *Planner) Reset() {
	p.prevOn = nil
	p.holdAge = nil
	p.Toggles = 0
	p.ToggleCost = 0
}

// Plan implements core.Planner: it obtains the inner plan, applies the
// hold-down hysteresis to the powered-on counts, and accounts toggles
// against the previous slot's state. Holding servers on never violates
// feasibility — extra powered servers only add idle cost, which the
// simulator accounts from ServersOn.
func (p *Planner) Plan(in *core.Input) (*core.Plan, error) {
	if p.Inner == nil {
		return nil, ErrNoInner
	}
	plan, err := p.Inner.Plan(in)
	if err != nil {
		return nil, err
	}
	L := in.Sys.L()
	if p.prevOn == nil {
		p.prevOn = make([]int, L)
		p.holdAge = make([]int, L)
	}
	if len(p.prevOn) != L {
		return nil, errors.New("switching: planner reused across different topologies")
	}
	for l := 0; l < L; l++ {
		want := plan.ServersOn[l]
		if want >= p.prevOn[l] {
			// Scaling up (or flat): no hold-down needed.
			p.holdAge[l] = 0
		} else {
			// Scaling down: hold the extra servers for HoldSlots slots.
			if p.holdAge[l] < p.HoldSlots {
				p.holdAge[l]++
				want = p.prevOn[l]
			} else {
				p.holdAge[l] = 0
			}
		}
		if want > in.Sys.Centers[l].Servers {
			want = in.Sys.Centers[l].Servers
		}
		if d := want - p.prevOn[l]; d != 0 {
			n := d
			if n < 0 {
				n = -n
			}
			p.Toggles += n
			p.ToggleCost += float64(n) * p.TogglePrice
		}
		plan.ServersOn[l] = want
		p.prevOn[l] = want
	}
	// Shares were computed for the inner plan's server count; with more
	// servers powered the per-server load only drops, so the existing
	// shares remain feasible and delays improve slightly. Keeping them is
	// conservative and preserves Verify invariants.
	return plan, nil
}

// NetAdjustment returns the accumulated toggle cost to subtract from a
// simulation report's net profit when evaluating the wrapper.
func (p *Planner) NetAdjustment() float64 { return p.ToggleCost }

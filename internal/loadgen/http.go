package loadgen

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"time"

	"profitlb/internal/datacenter"
)

// HTTPResult tallies a burst of requests fired at a live gateway over
// HTTP (the `profitlb serve` front-end).
type HTTPResult struct {
	Sent, Admitted, Shed, Rejected int
	// Retries counts transport attempts beyond the first — connection
	// errors that a retry recovered (or eventually gave up on).
	Retries int
}

// add merges another tally into this one.
func (r *HTTPResult) add(o HTTPResult) {
	r.Sent += o.Sent
	r.Admitted += o.Admitted
	r.Shed += o.Shed
	r.Rejected += o.Rejected
	r.Retries += o.Retries
}

// FireConfig shapes the HTTP client discipline: a per-request deadline
// and bounded retry-with-backoff for *connection* errors only. An HTTP
// answer — any status — is never retried: 429 means the gateway shed the
// request on purpose, and retrying sheds would turn admission control
// into a retry storm, the exact failure amplification the budget exists
// to prevent.
type FireConfig struct {
	// Timeout is the per-request deadline (default 10s).
	Timeout time.Duration
	// Retries is how many times a failed connection is retried before
	// the burst errors out (default 3).
	Retries int
	// Backoff is the first retry's delay; it doubles per attempt
	// (default 25ms).
	Backoff time.Duration
}

// withDefaults fills unset fields.
func (fc FireConfig) withDefaults() FireConfig {
	if fc.Timeout <= 0 {
		fc.Timeout = 10 * time.Second
	}
	if fc.Retries <= 0 {
		fc.Retries = 3
	}
	if fc.Backoff <= 0 {
		fc.Backoff = 25 * time.Millisecond
	}
	return fc
}

// FireHTTP fires n requests at the gateway's dispatch endpoints with the
// default client discipline, spreading them across every (front-end,
// class) pair in a seeded random order. 200 counts as admitted, 429 as
// shed, anything else (unknown endpoint, draining 503) as rejected. It
// is the client half of the serve smoke test and of `profitlb loadtest
// -addr`.
func FireHTTP(baseURL string, sys *datacenter.System, n int, seed int64) (HTTPResult, error) {
	return FireHTTPWith(baseURL, sys, n, seed, FireConfig{})
}

// FireHTTPWith is FireHTTP with an explicit client discipline.
func FireHTTPWith(baseURL string, sys *datacenter.System, n int, seed int64, fc FireConfig) (HTTPResult, error) {
	fc = fc.withDefaults()
	var res HTTPResult
	client := &http.Client{Timeout: fc.Timeout}
	rng := rand.New(rand.NewSource(seed))
	S, K := sys.S(), sys.K()
	if S == 0 || K == 0 {
		return res, fmt.Errorf("loadgen: system has no front-ends or classes")
	}
	for i := 0; i < n; i++ {
		s := rng.Intn(S)
		k := rng.Intn(K)
		u := fmt.Sprintf("%s/dispatch/%s/%s", baseURL,
			url.PathEscape(sys.FrontEnds[s].Name), url.PathEscape(sys.Classes[k].Name))
		code, err := fire(client, u, fc, &res)
		if err != nil {
			return res, err
		}
		res.Sent++
		switch code {
		case http.StatusOK:
			res.Admitted++
		case http.StatusTooManyRequests:
			res.Shed++
		default:
			res.Rejected++
		}
	}
	return res, nil
}

// fire issues one request, retrying connection errors with doubling
// backoff up to the budget. Only transport failures retry; every HTTP
// status — 200, 429, 503, whatever — is a definitive answer.
func fire(client *http.Client, u string, fc FireConfig, res *HTTPResult) (int, error) {
	var lastErr error
	for attempt := 0; attempt <= fc.Retries; attempt++ {
		if attempt > 0 {
			res.Retries++
			time.Sleep(fc.Backoff << (attempt - 1))
		}
		resp, err := client.Get(u)
		if err != nil {
			lastErr = err
			continue
		}
		resp.Body.Close()
		return resp.StatusCode, nil
	}
	return 0, fmt.Errorf("loadgen: firing %s: %d attempts failed: %w", u, fc.Retries+1, lastErr)
}

// FireHTTPMulti sprays n requests across a fleet of gateway replicas:
// each request picks a seeded-random target (the same balancer model
// RunFleet uses) and fires with the given discipline. The per-target
// tallies let a caller reconcile each replica's served counts exactly.
func FireHTTPMulti(targets []string, sys *datacenter.System, n int, seed int64, fc FireConfig) (HTTPResult, []HTTPResult, error) {
	if len(targets) == 0 {
		return HTTPResult{}, nil, fmt.Errorf("loadgen: no targets to fire at")
	}
	fc = fc.withDefaults()
	var total HTTPResult
	per := make([]HTTPResult, len(targets))
	client := &http.Client{Timeout: fc.Timeout}
	rng := rand.New(rand.NewSource(seed))
	S, K := sys.S(), sys.K()
	if S == 0 || K == 0 {
		return total, per, fmt.Errorf("loadgen: system has no front-ends or classes")
	}
	for i := 0; i < n; i++ {
		t := rng.Intn(len(targets))
		s := rng.Intn(S)
		k := rng.Intn(K)
		u := fmt.Sprintf("%s/dispatch/%s/%s", targets[t],
			url.PathEscape(sys.FrontEnds[s].Name), url.PathEscape(sys.Classes[k].Name))
		code, err := fire(client, u, fc, &per[t])
		if err != nil {
			for j := range per {
				total.add(per[j])
			}
			return total, per, err
		}
		per[t].Sent++
		switch code {
		case http.StatusOK:
			per[t].Admitted++
		case http.StatusTooManyRequests:
			per[t].Shed++
		default:
			per[t].Rejected++
		}
	}
	for i := range per {
		total.add(per[i])
	}
	return total, per, nil
}

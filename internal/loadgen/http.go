package loadgen

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"time"

	"profitlb/internal/datacenter"
)

// HTTPResult tallies a burst of requests fired at a live gateway over
// HTTP (the `profitlb serve` front-end).
type HTTPResult struct {
	Sent, Admitted, Shed, Rejected int
}

// FireHTTP fires n requests at the gateway's dispatch endpoints,
// spreading them across every (front-end, class) pair in a seeded random
// order. 200 counts as admitted, 429 as shed, anything else (unknown
// endpoint, draining 503) as rejected. It is the client half of the
// serve smoke test and of `profitlb loadtest -addr`.
func FireHTTP(baseURL string, sys *datacenter.System, n int, seed int64) (HTTPResult, error) {
	var res HTTPResult
	client := &http.Client{Timeout: 10 * time.Second}
	rng := rand.New(rand.NewSource(seed))
	S, K := sys.S(), sys.K()
	if S == 0 || K == 0 {
		return res, fmt.Errorf("loadgen: system has no front-ends or classes")
	}
	for i := 0; i < n; i++ {
		s := rng.Intn(S)
		k := rng.Intn(K)
		u := fmt.Sprintf("%s/dispatch/%s/%s", baseURL,
			url.PathEscape(sys.FrontEnds[s].Name), url.PathEscape(sys.Classes[k].Name))
		resp, err := client.Get(u)
		if err != nil {
			return res, fmt.Errorf("loadgen: firing %s: %w", u, err)
		}
		resp.Body.Close()
		res.Sent++
		switch resp.StatusCode {
		case http.StatusOK:
			res.Admitted++
		case http.StatusTooManyRequests:
			res.Shed++
		default:
			res.Rejected++
		}
	}
	return res, nil
}

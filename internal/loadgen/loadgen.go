// Package loadgen replays a scenario against the online dispatch plane
// at request granularity: it drives a dispatch.Driver slot by slot in
// virtual time, synthesizes the slot's individual arrivals from the
// scenario's true rates — open-loop Poisson, open-loop MMPP bursts
// (reusing internal/workload's process), or a closed loop of think-time
// users — and reports what the gateway actually did against what the
// plan promised: per-lane achieved vs planned rates, shed fractions by
// reason, and realized vs predicted profit.
package loadgen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"profitlb/internal/control"
	"profitlb/internal/dispatch"
	"profitlb/internal/fault"
	"profitlb/internal/sim"
	"profitlb/internal/workload"
)

// Config shapes a replay.
type Config struct {
	// Seed drives the arrival synthesis (one derived stream per
	// (slot, front-end, type), so streams are independent and the whole
	// replay is reproducible).
	Seed int64
	// StartSlot and Slots bound the replayed window.
	StartSlot int
	Slots     int
	// BurstFactor selects the open-loop arrival process: <= 1 is Poisson
	// at the slot's true rate; > 1 is a two-state MMPP with that
	// peak-to-mean ratio (mean preserved), the burstiness the paper's
	// slot-average formulation never sees.
	BurstFactor float64
	// BurstFrontEnd optionally pins the MMPP burst to one front-end: when
	// set, only that front-end's streams burst at BurstFactor, and every
	// other stream keeps plain Poisson statistics — the exact draws a
	// BurstFactor <= 1 replay of the same seed makes. Nil bursts every
	// front-end (the legacy fleet-global behaviour).
	BurstFrontEnd *int
	// Control, when non-nil, closes the sub-slot loop: a
	// control.Controller over the gateway (or fleet) samples achieved
	// per-stream rates every SlotLen/TicksPerSlot of virtual time and
	// hot-swaps corrective re-scaled tables mid-slot. Arrivals are then
	// replayed in global time order with control ticks interleaved; when
	// the controller never actuates, serving is bit-identical to a
	// control-off replay (per-lane buckets and per-stream draw sequences
	// see the same per-stream order either way).
	Control *control.Config
	// Closed switches to a closed loop: Users virtual users per
	// (type, front-end) stream, each issuing a request, waiting the
	// lane's expected delay, thinking Exp(Think), and repeating.
	Closed bool
	// Users is the closed-loop population per stream (default 32).
	Users int
	// Think is the closed-loop mean think time in virtual time units
	// (default: one slot length / 8).
	Think float64
}

// LaneStat compares one lane's achieved traffic with its plan.
type LaneStat struct {
	dispatch.Lane
	// Planned is the lane's budgeted request count λ·T for the slot.
	Planned float64
	// Admitted is the number of requests the gateway served on the lane.
	Admitted int64
	// AchievedRate is Admitted/T, the realized λ.
	AchievedRate float64
	// Demand is the lane's share of the stream's *realized* offered
	// traffic — offered_ks · (λ_i / Σλ_ks) — capped at the lane's MaxRate
	// headroom budget. Under drift (a flash crowd) Planned measures
	// conformance to a stale forecast; Demand is the target a corrective
	// dispatcher should actually track.
	Demand float64
}

// RelErr returns |achieved − planned| / planned (0 for unused lanes).
func (ls *LaneStat) RelErr() float64 {
	if ls.Planned <= 0 {
		return 0
	}
	return math.Abs(float64(ls.Admitted)-ls.Planned) / ls.Planned
}

// DemandErr returns |admitted − demand| / demand (0 for unused lanes):
// how far the lane's serving lagged the traffic actually aimed at it.
func (ls *LaneStat) DemandErr() float64 {
	if ls.Demand <= 0 {
		return 0
	}
	return math.Abs(float64(ls.Admitted)-ls.Demand) / ls.Demand
}

// SlotResult is one slot's replay accounting.
type SlotResult struct {
	Slot int
	// Offered counts synthesized arrivals; Admitted/ShedBudget/
	// ShedUnplanned/Invalid partition the gateway's answers.
	Offered, Admitted, ShedBudget, ShedUnplanned, Invalid int64
	// Lanes aligns with the slot table's Lanes.
	Lanes []LaneStat
	// Revenue/EnergyCost/TransferCost/NetProfit account the *admitted*
	// requests at the table's frozen per-request economics; PlannedProfit
	// is the plan's predicted objective for the slot.
	Revenue, EnergyCost, TransferCost, NetProfit float64
	PlannedProfit                                float64
	// Degraded and Tier mirror the slot table (resilient fallbacks and
	// emergency shed tables).
	Degraded bool
	Tier     string
	// Actuations counts the controller's published corrections this slot;
	// ControlFrozen reports it froze mid-slot. Both zero without Control.
	Actuations    int
	ControlFrozen bool
}

// Report is a whole replay.
type Report struct {
	Planner string
	Slots   []SlotResult
}

// Totals sums the per-slot tallies.
func (r *Report) Totals() (offered, admitted, shed int64) {
	for i := range r.Slots {
		s := &r.Slots[i]
		offered += s.Offered
		admitted += s.Admitted
		shed += s.ShedBudget + s.ShedUnplanned
	}
	return offered, admitted, shed
}

// ShedFraction returns total shed / total offered (0 when nothing was
// offered).
func (r *Report) ShedFraction() float64 {
	offered, _, shed := r.Totals()
	if offered == 0 {
		return 0
	}
	return float64(shed) / float64(offered)
}

// BudgetShed counts requests shed by an exhausted token bucket.
func (r *Report) BudgetShed() int64 {
	var n int64
	for i := range r.Slots {
		n += r.Slots[i].ShedBudget
	}
	return n
}

// MaxLaneError returns the worst per-lane |achieved − planned|/planned
// over lanes whose planned slot budget is at least minPlanned requests
// (thin lanes drown in Poisson noise; the 5% acceptance gate uses
// minPlanned ≈ 500).
func (r *Report) MaxLaneError(minPlanned float64) float64 {
	var worst float64
	for i := range r.Slots {
		for j := range r.Slots[i].Lanes {
			ls := &r.Slots[i].Lanes[j]
			if ls.Planned < minPlanned {
				continue
			}
			if e := ls.RelErr(); e > worst {
				worst = e
			}
		}
	}
	return worst
}

// MaxDemandError returns the worst per-lane |admitted − demand|/demand
// over lanes whose realized demand is at least minPlanned requests: the
// drift-aware counterpart of MaxLaneError, measuring how well serving
// tracked the traffic actually offered rather than the forecast.
func (r *Report) MaxDemandError(minPlanned float64) float64 {
	var worst float64
	for i := range r.Slots {
		for j := range r.Slots[i].Lanes {
			ls := &r.Slots[i].Lanes[j]
			if ls.Demand < minPlanned {
				continue
			}
			if e := ls.DemandErr(); e > worst {
				worst = e
			}
		}
	}
	return worst
}

// Actuations sums the controller's published corrections.
func (r *Report) Actuations() int {
	var n int
	for i := range r.Slots {
		n += r.Slots[i].Actuations
	}
	return n
}

// TotalNetProfit sums the realized per-slot profit.
func (r *Report) TotalNetProfit() float64 {
	var s float64
	for i := range r.Slots {
		s += r.Slots[i].NetProfit
	}
	return s
}

// TotalPlannedProfit sums the plans' predicted objectives.
func (r *Report) TotalPlannedProfit() float64 {
	var s float64
	for i := range r.Slots {
		s += r.Slots[i].PlannedProfit
	}
	return s
}

// DegradedSlots counts slots served by a fallback or emergency table.
func (r *Report) DegradedSlots() int {
	var n int
	for i := range r.Slots {
		if r.Slots[i].Degraded {
			n++
		}
	}
	return n
}

// Run replays cfg.Slots slots against the driver's gateway. The driver's
// PlanSource must be (or share views with) src: Run begins each slot via
// the driver — which pulls the planner-facing input from the source —
// and then synthesizes the slot's arrivals from the same source's view
// of the *true* rates, exactly the split the simulator enforces between
// planner view and settlement.
func Run(d *dispatch.Driver, src *sim.InputSource, cfg Config) (*Report, error) {
	if d == nil || d.Gateway == nil || src == nil {
		return nil, errors.New("loadgen: need a driver with a gateway and an input source")
	}
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("loadgen: non-positive slot count %d", cfg.Slots)
	}
	if cfg.Closed {
		if cfg.Users == 0 {
			cfg.Users = 32
		}
		if cfg.Users < 0 {
			return nil, fmt.Errorf("loadgen: negative closed-loop population %d", cfg.Users)
		}
	}
	gw := d.Gateway
	T := gw.System().Slot()
	if cfg.Think == 0 {
		cfg.Think = T / 8
	}
	if cfg.BurstFrontEnd != nil && (*cfg.BurstFrontEnd < 0 || *cfg.BurstFrontEnd >= gw.System().S()) {
		return nil, fmt.Errorf("loadgen: burst front-end %d outside [0,%d)", *cfg.BurstFrontEnd, gw.System().S())
	}
	sch := src.Config().Faults
	var ctrl *control.Controller
	if cfg.Control != nil {
		if err := cfg.Control.Validate(); err != nil {
			return nil, err
		}
		ctrl = control.NewController(*cfg.Control, gw.Config(), control.GatewayPlant{GW: gw}, gw.Scope())
	}
	rep := &Report{Planner: d.Planner.Name()}
	for i := 0; i < cfg.Slots; i++ {
		abs := cfg.StartSlot + i
		start := float64(i) * T
		table, err := d.BeginSlot(abs, start)
		if err != nil {
			return rep, err
		}
		view, err := src.View(abs)
		if err != nil {
			return rep, err
		}
		res := SlotResult{
			Slot:          abs,
			PlannedProfit: table.Objective,
			Degraded:      table.Degraded,
			Tier:          table.Tier,
		}
		laneAdmitted := make([]int64, len(table.Lanes))
		rates := view.Actual.Arrivals
		streamOffered := make([]int64, table.K()*table.S())
		handle := func(k, s int, at float64) {
			dec := gw.Handle(k, s, start+at)
			res.Offered++
			switch dec.Outcome {
			case dispatch.Admitted:
				res.Admitted++
				laneAdmitted[dec.Lane]++
			case dispatch.ShedBudget:
				res.ShedBudget++
			case dispatch.ShedUnplanned:
				res.ShedUnplanned++
			default:
				res.Invalid++
			}
		}
		var merged []arrival
		for s := range rates {
			for k := range rates[s] {
				rate := rates[s][k]
				if rate <= 0 {
					continue
				}
				seed := streamSeed(cfg.Seed, abs, s, k)
				arrivals, err := synthesize(rate, T, seed, &cfg, table, k, s, sch.FlashCrowdFactor(s, abs))
				if err != nil {
					return rep, err
				}
				if k < table.K() && s < table.S() {
					streamOffered[k*table.S()+s] += int64(len(arrivals))
				}
				if ctrl != nil {
					for _, at := range arrivals {
						merged = append(merged, arrival{at: at, k: k, s: s})
					}
					continue
				}
				for _, at := range arrivals {
					handle(k, s, at)
				}
			}
		}
		if ctrl != nil {
			prevActs := ctrl.Actuations()
			ctrl.BeginSlot(table, start, centerFactors(sch, gw.System().L(), abs))
			replayControlled(merged, T, start, cfg.Control.WithDefaults().TicksPerSlot, ctrl, handle)
			res.Actuations = ctrl.Actuations() - prevActs
			res.ControlFrozen = ctrl.Frozen()
		}
		res.Lanes = make([]LaneStat, len(table.Lanes))
		for j := range table.Lanes {
			ln := table.Lanes[j]
			n := laneAdmitted[j]
			res.Lanes[j] = LaneStat{
				Lane:         ln,
				Planned:      ln.Rate * T,
				Admitted:     n,
				AchievedRate: float64(n) / T,
				Demand:       laneDemand(table, j, streamOffered, T),
			}
			// A sagging center (slow-center fault) completes only cf of the
			// lane's budget inside the deadline: the excess admissions earn
			// zero step-TUF utility but still pay their energy and transfer.
			good := n
			if cf := sch.SlowCenterFactor(ln.L, abs); cf < 1 {
				if lim := int64(cf * ln.Rate * T); good > lim {
					good = lim
				}
			}
			res.Revenue += float64(good) * ln.Utility
			res.EnergyCost += float64(n) * ln.UnitEnergy
			res.TransferCost += float64(n) * ln.UnitTransfer
		}
		res.EnergyCost += table.IdleCost
		res.NetProfit = res.Revenue - res.EnergyCost - res.TransferCost
		rep.Slots = append(rep.Slots, res)
	}
	return rep, nil
}

// arrival is one synthesized request in a slot's merged replay stream.
type arrival struct {
	at   float64
	k, s int
}

// replayControlled fires the slot's arrivals in global time order with
// controller ticks interleaved at start + j·T/ticks. The merge keeps
// each stream's arrivals in their original order, so every per-stream
// draw sequence and per-lane bucket trajectory is identical to the
// per-stream nested replay whenever the controller never actuates.
func replayControlled(merged []arrival, T, start float64, ticks int, ctrl *control.Controller, handle func(k, s int, at float64)) {
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].at != merged[b].at {
			return merged[a].at < merged[b].at
		}
		if merged[a].s != merged[b].s {
			return merged[a].s < merged[b].s
		}
		return merged[a].k < merged[b].k
	})
	dt := T / float64(ticks)
	ei := 0
	// The final tick boundary is the slot end itself: the next BeginSlot
	// supersedes anything it could publish, so it is skipped.
	for j := 1; j < ticks; j++ {
		for ei < len(merged) && merged[ei].at < float64(j)*dt {
			handle(merged[ei].k, merged[ei].s, merged[ei].at)
			ei++
		}
		ctrl.Tick(start + float64(j)*dt)
	}
	for ; ei < len(merged); ei++ {
		handle(merged[ei].k, merged[ei].s, merged[ei].at)
	}
}

// centerFactors assembles the per-center effective service fractions for
// a slot from any active slow-center faults; nil when every center is
// nominal.
func centerFactors(sch *fault.Schedule, L, abs int) []float64 {
	var out []float64
	for l := 0; l < L; l++ {
		if cf := sch.SlowCenterFactor(l, abs); cf < 1 {
			if out == nil {
				out = make([]float64, L)
				for i := range out {
					out[i] = 1
				}
			}
			out[l] = cf
		}
	}
	return out
}

// laneDemand apportions the stream's realized offered count across its
// lanes by planned rate share, capped at the lane's MaxRate budget.
func laneDemand(table *dispatch.Table, j int, streamOffered []int64, T float64) float64 {
	ln := table.Lanes[j]
	planned, _ := table.Planned(ln.K, ln.S)
	if planned <= 0 {
		return 0
	}
	d := float64(streamOffered[ln.K*table.S()+ln.S]) * ln.Rate / planned
	if ln.MaxRate > 0 {
		if lim := ln.MaxRate * T; d > lim {
			d = lim
		}
	}
	return d
}

// streamSeed derives the arrival-synthesis seed for one (slot, s, k)
// stream (SplitMix64 over the user seed and the coordinates).
func streamSeed(seed int64, abs, s, k int) int64 {
	x := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, v := range [3]uint64{uint64(int64(abs)), uint64(s), uint64(k)} {
		x ^= v
		x += 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return int64(x >> 1) // non-negative for rand.NewSource
}

// synthesize produces the stream's arrival offsets in [0, T), sorted.
// flash > 1 is an active flash-crowd fault on the stream's front-end: a
// mean-increasing MMPP whose calm state runs at the planned (forecast)
// rate and whose burst state runs at flash× it — realized demand then
// exceeds every committed plan, unlike the mean-preserving BurstFactor
// process.
func synthesize(rate, T float64, seed int64, cfg *Config, table *dispatch.Table, k, s int, flash float64) ([]float64, error) {
	switch {
	case cfg.Closed:
		return closedLoop(rate, T, seed, cfg, table, k, s), nil
	case flash > 1:
		p := workload.MMPP{
			RateLow:  rate,
			RateHigh: rate * flash,
			MeanLow:  T / 8,
			MeanHigh: T / 8,
		}
		return p.Arrivals(T, seed)
	case cfg.BurstFactor > 1 && (cfg.BurstFrontEnd == nil || *cfg.BurstFrontEnd == s):
		f := cfg.BurstFactor
		p := workload.MMPP{
			RateLow:  2 * rate / (1 + f),
			RateHigh: 2 * rate * f / (1 + f),
			MeanLow:  T / 8,
			MeanHigh: T / 8,
		}
		return p.Arrivals(T, seed)
	default:
		return poisson(rate, T, seed), nil
	}
}

// poisson generates a homogeneous Poisson stream at the given rate.
func poisson(rate, T float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, 0, int(rate*T)+16)
	for t := rng.ExpFloat64() / rate; t < T; t += rng.ExpFloat64() / rate {
		out = append(out, t)
	}
	return out
}

// closedLoop simulates cfg.Users users on the stream: each issues a
// request, experiences the plan's expected delay for the (k, s) stream
// (the dispatch-rate-weighted mean over the stream's lanes — the users
// do not know which lane the gateway will draw), thinks Exp(Think), and
// repeats until the slot ends. The offered rate is therefore
// Users/(delay+Think) per stream, independent of the planned rate: a
// genuinely closed feedback loop.
func closedLoop(rate, T float64, seed int64, cfg *Config, table *dispatch.Table, k, s int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	// Expected response: rate-weighted lane delay for the stream.
	var wsum, dsum float64
	for _, ln := range table.Lanes {
		if ln.K == k && ln.S == s {
			wsum += ln.Rate
			dsum += ln.Rate * ln.Delay
		}
	}
	delay := 0.0
	if wsum > 0 {
		delay = dsum / wsum
	}
	next := make([]float64, cfg.Users)
	for u := range next {
		// Users phase in over the first think interval.
		next[u] = rng.ExpFloat64() * cfg.Think
	}
	var out []float64
	for {
		best := -1
		for u, t := range next {
			if t < T && (best < 0 || t < next[best]) {
				best = u
			}
		}
		if best < 0 {
			break
		}
		t := next[best]
		out = append(out, t)
		next[best] = t + delay + rng.ExpFloat64()*cfg.Think
	}
	return out
}

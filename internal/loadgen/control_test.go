package loadgen

import (
	"encoding/json"
	"testing"

	"profitlb/internal/control"
	"profitlb/internal/core"
	"profitlb/internal/fault"
)

// TestControlCleanBitIdentical: on a clean scenario the controller's
// dead band absorbs Poisson noise entirely — zero actuations, and the
// merged (time-ordered, tick-interleaved) replay serves bit-identically
// to the plain per-stream replay, down to every per-lane tally.
func TestControlCleanBitIdentical(t *testing.T) {
	run := func(ctrl *control.Config) *Report {
		cfg := testSimConfig(3)
		d, src := harness(t, cfg, core.NewOptimized(), nil)
		rep, err := Run(d, src, Config{Seed: 9, Slots: cfg.Slots, Control: ctrl})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	off := run(nil)
	on := run(&control.Config{})
	if n := on.Actuations(); n != 0 {
		t.Fatalf("clean scenario actuated %d times; the dead band should absorb Poisson noise", n)
	}
	for i := range on.Slots {
		if on.Slots[i].ControlFrozen {
			t.Fatalf("slot %d froze on the clean path", on.Slots[i].Slot)
		}
	}
	a, err := json.Marshal(off)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(on)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("controller-on replay diverged from controller-off on a clean scenario:\n%s\n%s", a, b)
	}
}

// TestBurstTargetingKeepsPoissonElsewhere: with BurstFrontEnd set, only
// the targeted front-end's streams run the MMPP — every other stream
// produces exactly the arrivals a pure-Poisson replay of the same seed
// does (the regression for the previously fleet-global BurstFactor).
func TestBurstTargetingKeepsPoissonElsewhere(t *testing.T) {
	const T = 60.0
	target := 0
	bursty := &Config{BurstFactor: 4, BurstFrontEnd: &target}
	plain := &Config{}
	for s := 0; s < 2; s++ {
		for k := 0; k < 2; k++ {
			seed := streamSeed(42, 0, s, k)
			got, err := synthesize(900, T, seed, bursty, nil, k, s, 1)
			if err != nil {
				t.Fatal(err)
			}
			want, err := synthesize(900, T, seed, plain, nil, k, s, 1)
			if err != nil {
				t.Fatal(err)
			}
			same := len(got) == len(want)
			if same {
				for i := range got {
					if got[i] != want[i] {
						same = false
						break
					}
				}
			}
			if s == target && same {
				t.Fatalf("stream (k=%d,s=%d) is the burst target but matched pure Poisson", k, s)
			}
			if s != target && !same {
				t.Fatalf("stream (k=%d,s=%d) is untargeted but diverged from pure Poisson (%d vs %d arrivals)",
					k, s, len(got), len(want))
			}
		}
	}
}

// flashSchedule pins a mean-increasing crowd on front-end 0 for the
// whole horizon.
func flashSchedule(slots int, factor float64) *fault.Schedule {
	return &fault.Schedule{Events: []fault.Event{
		{Kind: fault.FlashCrowd, FrontEnd: 0, Factor: factor, From: 0, To: slots - 1},
	}}
}

// TestFlashCrowdControllerBeatsFrozen is the tentpole's acceptance gate:
// under a flash crowd the committed plan underestimates demand, so
// frozen tables shed the excess; the controller re-scales lanes toward
// realized demand inside the MaxRate envelope and must strictly beat
// the frozen replay on both realized profit and worst lane demand
// error.
func TestFlashCrowdControllerBeatsFrozen(t *testing.T) {
	run := func(ctrl *control.Config) *Report {
		cfg := testSimConfig(4)
		cfg.Faults = flashSchedule(cfg.Slots, 2)
		d, src := harness(t, cfg, core.NewOptimized(), nil)
		rep, err := Run(d, src, Config{Seed: 17, Slots: cfg.Slots, Control: ctrl})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	frozen := run(nil)
	steered := run(&control.Config{})
	if n := steered.Actuations(); n == 0 {
		t.Fatal("flash crowd produced zero actuations")
	}
	for i := range steered.Slots {
		if steered.Slots[i].ControlFrozen {
			t.Fatalf("slot %d froze under the flash crowd", steered.Slots[i].Slot)
		}
	}
	fp, sp := frozen.TotalNetProfit(), steered.TotalNetProfit()
	if sp <= fp {
		t.Fatalf("controller profit %.2f did not beat frozen %.2f under the flash crowd", sp, fp)
	}
	fe, se := frozen.MaxDemandError(500), steered.MaxDemandError(500)
	if se >= fe {
		t.Fatalf("controller demand error %.4f did not beat frozen %.4f", se, fe)
	}
	// The crowd's realized mean is 1.5× the plan on the targeted
	// front-end: the frozen replay must visibly shed (demand error well
	// above the dead band) for the comparison to mean anything.
	if fe < 0.15 {
		t.Fatalf("frozen demand error %.4f too small — the fault is not biting", fe)
	}
}

// TestSlowCenterControllerShedsExcess: a center serving at half rate
// turns the frozen plan's excess admissions into pure cost (revenue
// zero past the sagged capacity). The controller's centerFactor cap
// ramps the center's lanes down to the effective rate, shedding exactly
// the unprofitable excess, so it must realize strictly more profit.
func TestSlowCenterControllerShedsExcess(t *testing.T) {
	run := func(ctrl *control.Config) *Report {
		cfg := testSimConfig(3)
		cfg.Faults = &fault.Schedule{Events: []fault.Event{
			{Kind: fault.SlowCenter, Center: 0, Factor: 0.5, From: 0, To: cfg.Slots - 1},
		}}
		d, src := harness(t, cfg, core.NewOptimized(), nil)
		rep, err := Run(d, src, Config{Seed: 23, Slots: cfg.Slots, Control: ctrl})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	frozen := run(nil)
	steered := run(&control.Config{})
	if steered.Actuations() == 0 {
		t.Fatal("slow center produced zero actuations")
	}
	fp, sp := frozen.TotalNetProfit(), steered.TotalNetProfit()
	if sp <= fp {
		t.Fatalf("controller profit %.2f did not beat frozen %.2f under the slow center", sp, fp)
	}
	// The steered replay serves less raw traffic on the sagged center
	// than the frozen one — the win comes from not paying for work that
	// earns nothing.
	var frozenSag, steeredSag int64
	for i := range frozen.Slots {
		for j := range frozen.Slots[i].Lanes {
			if frozen.Slots[i].Lanes[j].L == 0 {
				frozenSag += frozen.Slots[i].Lanes[j].Admitted
			}
		}
	}
	for i := range steered.Slots {
		for j := range steered.Slots[i].Lanes {
			if steered.Slots[i].Lanes[j].L == 0 {
				steeredSag += steered.Slots[i].Lanes[j].Admitted
			}
		}
	}
	if steeredSag >= frozenSag {
		t.Fatalf("steered replay admitted %d on the sagged center vs frozen %d; the cap is not actuating", steeredSag, frozenSag)
	}
}

// TestFleetControlCleanBitIdentical: the fleet replay's merged loop
// preserves per-stream arrival and spray order, so a quiet controller
// leaves a fleet replay bit-identical too.
func TestFleetControlCleanBitIdentical(t *testing.T) {
	run := func(ctrl *control.Config) *FleetReport {
		cfg := testSimConfig(3)
		f, src := fleetHarness(t, cfg, 3, nil, nil)
		rep, err := RunFleet(f, src, Config{Seed: 9, Slots: cfg.Slots, Control: ctrl})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	off := run(nil)
	on := run(&control.Config{})
	if n := on.Actuations(); n != 0 {
		t.Fatalf("clean fleet replay actuated %d times", n)
	}
	a, _ := json.Marshal(off)
	b, _ := json.Marshal(on)
	if string(a) != string(b) {
		t.Fatalf("fleet controller-on replay diverged on a clean scenario:\n%s\n%s", a, b)
	}
}

// TestFleetControlFlashCrowd: corrections propagate through the
// epoch-fenced publisher to every replica — the fleet's demand tracking
// improves and no replica ever answers Invalid.
func TestFleetControlFlashCrowd(t *testing.T) {
	run := func(ctrl *control.Config) *FleetReport {
		cfg := testSimConfig(4)
		cfg.Faults = flashSchedule(cfg.Slots, 2)
		f, src := fleetHarness(t, cfg, 3, cfg.Faults, nil)
		rep, err := RunFleet(f, src, Config{Seed: 31, Slots: cfg.Slots, Control: ctrl})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	frozen := run(nil)
	steered := run(&control.Config{})
	if steered.Actuations() == 0 {
		t.Fatal("fleet flash crowd produced zero actuations")
	}
	if steered.Invalid() != 0 {
		t.Fatalf("%d invalid answers under control", steered.Invalid())
	}
	fe, se := frozen.MaxDemandError(500), steered.MaxDemandError(500)
	if se >= fe {
		t.Fatalf("fleet controller demand error %.4f did not beat frozen %.4f", se, fe)
	}
}

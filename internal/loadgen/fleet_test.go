package loadgen

import (
	"encoding/json"
	"testing"

	"profitlb/internal/cluster"
	"profitlb/internal/core"
	"profitlb/internal/dispatch"
	"profitlb/internal/fault"
	"profitlb/internal/obs"
	"profitlb/internal/sim"
)

// fleetHarness builds a fleet around the shared test scenario: the
// driver plans fleet-wide, the fleet subdivides across replicas.
func fleetHarness(t *testing.T, cfg sim.Config, replicas int, sch *fault.Schedule, scope *obs.Scope) (*cluster.Fleet, *sim.InputSource) {
	t.Helper()
	d, src := harness(t, cfg, core.NewOptimized(), scope)
	f, err := cluster.NewFleet(cfg.Sys, dispatch.Config{Seed: 11, SlotSeconds: 60},
		cluster.Config{Replicas: replicas}, d, sch, scope)
	if err != nil {
		t.Fatal(err)
	}
	return f, src
}

// reconcile checks every replica's gateway counters against the
// generator's per-replica ground truth, exactly: requests the balancer
// never fired cannot appear in a gateway, and every fired request must
// be accounted admitted or shed.
func reconcile(t *testing.T, f *cluster.Fleet, rep *FleetReport, now float64) {
	t.Helper()
	for i, pr := range rep.PerReplica {
		st := f.Replicas[i].Gateway().Stats(now)
		if st.TotalRequests != pr.Offered || st.TotalAdmitted != pr.Admitted ||
			st.TotalShed != pr.ShedBudget+pr.ShedUnplanned {
			t.Errorf("replica %s: gateway %d/%d/%d vs generator %d/%d/%d",
				pr.ID, st.TotalRequests, st.TotalAdmitted, st.TotalShed,
				pr.Offered, pr.Admitted, pr.ShedBudget+pr.ShedUnplanned)
		}
	}
}

// TestFleetCleanScenario is the cluster acceptance gate: a 4-replica
// fleet replaying the clean scenario admits everything, every fat lane's
// fleet-aggregate achieved rate lands within 5% of the planned λ, and
// the fleet faces exactly the traffic a single gateway would.
func TestFleetCleanScenario(t *testing.T) {
	cfg := testSimConfig(4)
	reg := obs.NewRegistry()
	scope := obs.NewScope(reg, nil)
	f, src := fleetHarness(t, cfg, 4, nil, scope)
	rep, err := RunFleet(f, src, Config{Seed: 1, Slots: cfg.Slots})
	if err != nil {
		t.Fatal(err)
	}
	offered, admitted, shed := rep.Totals()
	if offered == 0 {
		t.Fatal("no requests offered")
	}
	if shed != 0 {
		t.Fatalf("clean fleet scenario shed %d of %d requests", shed, offered)
	}
	if admitted != offered {
		t.Fatalf("admitted %d of %d offered with zero shed", admitted, offered)
	}
	if rep.Invalid() != 0 {
		t.Fatalf("%d invalid answers on the clean path", rep.Invalid())
	}
	if e := rep.MaxLaneError(500); e > 0.05 {
		t.Fatalf("max fleet lane rate error %.4f, want <= 0.05", e)
	}
	for i := range rep.Slots {
		s := &rep.Slots[i]
		if s.Epoch != uint64(i+1) {
			t.Fatalf("slot %d published epoch %d, want %d", s.Slot, s.Epoch, i+1)
		}
		if s.Live != 4 || s.Stale != 0 || s.DegradedReplicas != 0 {
			t.Fatalf("slot %d: live %d stale %d degraded %d", s.Slot, s.Live, s.Stale, s.DegradedReplicas)
		}
	}
	reconcile(t, f, rep, float64(cfg.Slots)*cfg.Sys.Slot())

	// Arrival synthesis is shared with the single-gateway replay: the
	// fleet faced exactly the traffic one gateway would have.
	d, src2 := harness(t, testSimConfig(cfg.Slots), core.NewOptimized(), nil)
	single, err := Run(d, src2, Config{Seed: 1, Slots: cfg.Slots})
	if err != nil {
		t.Fatal(err)
	}
	so, _, _ := single.Totals()
	if offered != so {
		t.Fatalf("fleet faced %d requests, single gateway %d — synthesis diverged", offered, so)
	}
}

// TestFleetReplicaKillStorm: a seeded storm of replica kills (plus a
// partition) sheds, never errors — and every surviving replica's own
// counters reconcile exactly with what the balancer fired at it.
func TestFleetReplicaKillStorm(t *testing.T) {
	cfg := testSimConfig(6)
	storm, err := fault.Storm(fault.StormConfig{
		Seed:    9,
		Slots:   cfg.Slots,
		Centers: cfg.Sys.L(), FrontEnds: cfg.Sys.S(),
		Replicas:     4,
		ReplicaKills: 2, Partitions: 1, ClusterFaultSlots: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(storm.Events) != 3 {
		t.Fatalf("storm generated %d events, want 3", len(storm.Events))
	}
	reg := obs.NewRegistry()
	scope := obs.NewScope(reg, nil)
	f, src := fleetHarness(t, cfg, 4, storm, scope)
	rep, err := RunFleet(f, src, Config{Seed: 5, Slots: cfg.Slots})
	if err != nil {
		t.Fatalf("the fleet went down under the storm: %v", err)
	}
	if len(rep.Slots) != cfg.Slots {
		t.Fatalf("replayed %d of %d slots", len(rep.Slots), cfg.Slots)
	}
	if rep.Invalid() != 0 {
		t.Fatalf("%d requests answered invalid; a fleet under faults sheds, it never errors", rep.Invalid())
	}
	minLive, lastEpoch := rep.Replicas, uint64(0)
	for i := range rep.Slots {
		s := &rep.Slots[i]
		if s.Live < minLive {
			minLive = s.Live
		}
		if s.Epoch <= lastEpoch {
			t.Fatalf("slot %d published epoch %d after %d — epochs must advance", s.Slot, s.Epoch, lastEpoch)
		}
		lastEpoch = s.Epoch
	}
	if minLive == rep.Replicas {
		t.Fatal("the storm killed nothing — the test is vacuous")
	}
	reconcile(t, f, rep, float64(cfg.Slots)*cfg.Sys.Slot())
}

// TestFleetPublisherOutageServesStale: with the control plane dead for a
// slot, every replica keeps serving its last epoch — no errors, no shed
// on the clean scenario (the traffic did not change, so the stale plan
// is still right) — and the fleet reconverges the next slot.
func TestFleetPublisherOutageServesStale(t *testing.T) {
	cfg := testSimConfig(4)
	sch := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.PublisherOutage, From: 2, To: 2},
	}}
	f, src := fleetHarness(t, cfg, 2, sch, nil)
	rep, err := RunFleet(f, src, Config{Seed: 1, Slots: cfg.Slots})
	if err != nil {
		t.Fatal(err)
	}
	offered, _, shed := rep.Totals()
	if offered == 0 {
		t.Fatal("no requests offered")
	}
	if shed != 0 || rep.Invalid() != 0 {
		t.Fatalf("outage slot shed %d / errored %d on constant traffic", shed, rep.Invalid())
	}
	out := &rep.Slots[2]
	if out.Epoch != 0 {
		t.Fatalf("outage slot recorded epoch %d, want 0 (nothing published)", out.Epoch)
	}
	if out.Live != 2 || out.Stale != 2 {
		t.Fatalf("outage slot: live %d stale %d, want every live replica serving stale", out.Live, out.Stale)
	}
	if out.DegradedReplicas != 0 {
		t.Fatalf("one stale slot is inside the TTL, but %d replicas degraded", out.DegradedReplicas)
	}
	if out.Offered == 0 {
		t.Fatal("the fleet served nothing during the outage")
	}
	// Reconvergence within one slot: the next publish catches everyone up.
	next := &rep.Slots[3]
	if next.Epoch == 0 || next.Stale != 0 {
		t.Fatalf("slot after the outage: epoch %d stale %d, want a fresh epoch fleet-wide", next.Epoch, next.Stale)
	}
	reconcile(t, f, rep, float64(cfg.Slots)*cfg.Sys.Slot())
}

// TestFleetDeterministicReplay: the same scenario, seed and fault
// schedule reproduce the byte-identical fleet report.
func TestFleetDeterministicReplay(t *testing.T) {
	run := func() []byte {
		cfg := testSimConfig(3)
		sch := &fault.Schedule{Events: []fault.Event{
			{Kind: fault.ReplicaKill, Replica: 1, From: 1, To: 1},
		}}
		f, src := fleetHarness(t, cfg, 3, sch, nil)
		rep, err := RunFleet(f, src, Config{Seed: 7, Slots: cfg.Slots})
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same seed, different fleet reports:\n%s\n%s", a, b)
	}
}

func TestRunFleetValidation(t *testing.T) {
	cfg := testSimConfig(1)
	f, src := fleetHarness(t, cfg, 2, nil, nil)
	if _, err := RunFleet(nil, src, Config{Slots: 1}); err == nil {
		t.Fatal("nil fleet accepted")
	}
	if _, err := RunFleet(f, src, Config{Slots: 0}); err == nil {
		t.Fatal("zero slots accepted")
	}
	if _, err := RunFleet(f, src, Config{Slots: 1, Closed: true}); err == nil {
		t.Fatal("closed-loop fleet replay accepted")
	}
}

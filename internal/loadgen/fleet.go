package loadgen

import (
	"errors"
	"fmt"
	"math/rand"

	"profitlb/internal/cluster"
	"profitlb/internal/control"
	"profitlb/internal/dispatch"
	"profitlb/internal/sim"
)

// ReplicaStat is one replica's lifetime tally as the load generator saw
// it — the ground truth its gateway counters must reconcile against
// exactly (requests the generator never fired cannot appear in a
// gateway, and every fired request must be accounted admitted or shed).
type ReplicaStat struct {
	ID                                           string
	Offered, Admitted, ShedBudget, ShedUnplanned int64
	Invalid                                      int64
}

// FleetSlotResult is one slot's replay accounting across the fleet.
type FleetSlotResult struct {
	Slot int
	// Epoch is the slot's published epoch (0 during a publisher outage).
	Epoch uint64
	// Live is how many replicas served the slot; Stale counts live
	// replicas serving a table older than the slot; DegradedReplicas
	// counts live replicas in conservative-shed (stale-TTL) serving.
	Live, Stale, DegradedReplicas int
	// Offered..Invalid partition the fleet's answers for the slot.
	Offered, Admitted, ShedBudget, ShedUnplanned, Invalid int64
	// Lanes aggregates per-lane admissions across replicas, aligned with
	// the published fleet-wide table (nil when the slot had no fresh
	// publication — stale lanes cannot be compared against a plan).
	Lanes []LaneStat
	// PlannedProfit is the published plan's objective; Degraded mirrors
	// the published table.
	PlannedProfit float64
	Degraded      bool
	Tier          string
	// Actuations counts the controller's published corrections this slot;
	// ControlFrozen reports it froze mid-slot. Both zero without Control.
	Actuations    int
	ControlFrozen bool
}

// FleetReport is a whole fleet replay.
type FleetReport struct {
	Planner  string
	Replicas int
	Slots    []FleetSlotResult
	// PerReplica carries each replica's lifetime generator-side tallies
	// in fleet order (killed replicas simply stop accruing).
	PerReplica []ReplicaStat
}

// Totals sums the per-slot tallies.
func (r *FleetReport) Totals() (offered, admitted, shed int64) {
	for i := range r.Slots {
		s := &r.Slots[i]
		offered += s.Offered
		admitted += s.Admitted
		shed += s.ShedBudget + s.ShedUnplanned
	}
	return offered, admitted, shed
}

// Invalid sums the fleet's invalid answers (must be zero: a fleet under
// faults sheds, it never errors).
func (r *FleetReport) Invalid() int64 {
	var n int64
	for i := range r.Slots {
		n += r.Slots[i].Invalid
	}
	return n
}

// MaxLaneError returns the worst fleet-aggregate per-lane relative rate
// error over lanes with at least minPlanned budgeted requests, across
// slots that had a fresh publication.
func (r *FleetReport) MaxLaneError(minPlanned float64) float64 {
	var worst float64
	for i := range r.Slots {
		for j := range r.Slots[i].Lanes {
			ls := &r.Slots[i].Lanes[j]
			if ls.Planned < minPlanned {
				continue
			}
			if e := ls.RelErr(); e > worst {
				worst = e
			}
		}
	}
	return worst
}

// MaxDemandError returns the worst fleet-aggregate per-lane
// |admitted − demand|/demand over lanes with at least minPlanned
// realized demand, across slots that had a fresh publication.
func (r *FleetReport) MaxDemandError(minPlanned float64) float64 {
	var worst float64
	for i := range r.Slots {
		for j := range r.Slots[i].Lanes {
			ls := &r.Slots[i].Lanes[j]
			if ls.Demand < minPlanned {
				continue
			}
			if e := ls.DemandErr(); e > worst {
				worst = e
			}
		}
	}
	return worst
}

// Actuations sums the controller's published corrections.
func (r *FleetReport) Actuations() int {
	var n int
	for i := range r.Slots {
		n += r.Slots[i].Actuations
	}
	return n
}

// RunFleet replays cfg.Slots slots against a replicated gateway fleet.
// Arrival synthesis is identical to Run — same seeds, same per-stream
// processes — so a fleet replay faces the exact traffic a single-gateway
// replay of the same configuration does; each arrival is then sprayed at
// one live replica by an independent seeded draw (a front-end balancer
// that knows liveness but not plans). Slot boundaries drive the fleet's
// control plane first (heartbeats, sweep, publish, delivery, staleness
// ticks), observing any cluster faults in the fleet's schedule.
func RunFleet(f *cluster.Fleet, src *sim.InputSource, cfg Config) (*FleetReport, error) {
	if f == nil || len(f.Replicas) == 0 || src == nil {
		return nil, errors.New("loadgen: need a fleet with replicas and an input source")
	}
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("loadgen: non-positive slot count %d", cfg.Slots)
	}
	if cfg.Closed {
		return nil, errors.New("loadgen: closed-loop fleet replay is not supported (feedback would need per-replica populations)")
	}
	gw0 := f.Replicas[0].Gateway()
	T := gw0.System().Slot()
	if cfg.BurstFrontEnd != nil && (*cfg.BurstFrontEnd < 0 || *cfg.BurstFrontEnd >= gw0.System().S()) {
		return nil, fmt.Errorf("loadgen: burst front-end %d outside [0,%d)", *cfg.BurstFrontEnd, gw0.System().S())
	}
	sch := src.Config().Faults
	var ctrl *control.Controller
	var plant *control.FleetPlant
	if cfg.Control != nil {
		if err := cfg.Control.Validate(); err != nil {
			return nil, err
		}
		plant = &control.FleetPlant{Pub: f.Pub, Replicas: f.Replicas}
		ctrl = control.NewController(*cfg.Control, gw0.Config(), plant, gw0.Scope())
	}
	rep := &FleetReport{Replicas: len(f.Replicas)}
	rep.PerReplica = make([]ReplicaStat, len(f.Replicas))
	for i, r := range f.Replicas {
		rep.PerReplica[i].ID = r.ID
	}
	for i := 0; i < cfg.Slots; i++ {
		abs := cfg.StartSlot + i
		start := float64(i) * T
		pub, err := f.BeginSlot(abs, start)
		if err != nil {
			return rep, err
		}
		view, err := src.View(abs)
		if err != nil {
			return rep, err
		}
		// The balancer sprays at replicas that are alive AND ready — the
		// /readyz condition. A replica partitioned away before it ever
		// applied an epoch has no table; firing at it would turn a cluster
		// fault into Invalid answers instead of the fleet's shed-only
		// degradation.
		var live []int
		for _, ri := range f.Live(abs) {
			if f.Replicas[ri].Ready() {
				live = append(live, ri)
			}
		}
		if len(live) == 0 {
			return rep, fmt.Errorf("loadgen: slot %d has no live ready replicas", abs)
		}
		res := FleetSlotResult{Slot: abs, Live: len(live)}
		var table *dispatch.Table
		if pub != nil {
			res.Epoch = pub.Epoch
			table, err = dispatch.FromWire(pub.Table)
			if err != nil {
				return rep, err
			}
			res.PlannedProfit = table.Objective
			res.Degraded = table.Degraded
			res.Tier = table.Tier
		}
		for _, ri := range live {
			r := f.Replicas[ri]
			if r.Staleness() > 0 {
				res.Stale++
			}
			if r.Degraded() {
				res.DegradedReplicas++
			}
		}
		var laneAdmitted []int64
		var streamOffered []int64
		if table != nil {
			laneAdmitted = make([]int64, len(table.Lanes))
			streamOffered = make([]int64, table.K()*table.S())
		}
		rates := view.Actual.Arrivals
		S := len(rates)
		K := 0
		if S > 0 {
			K = len(rates[0])
		}
		fire := func(k, s int, at float64, spray *rand.Rand) {
			ri := live[spray.Intn(len(live))]
			dec := f.Replicas[ri].Gateway().Handle(k, s, start+at)
			res.Offered++
			pr := &rep.PerReplica[ri]
			pr.Offered++
			switch dec.Outcome {
			case dispatch.Admitted:
				res.Admitted++
				pr.Admitted++
				if laneAdmitted != nil && int(dec.Lane) < len(laneAdmitted) {
					laneAdmitted[dec.Lane]++
				}
			case dispatch.ShedBudget:
				res.ShedBudget++
				pr.ShedBudget++
			case dispatch.ShedUnplanned:
				res.ShedUnplanned++
				pr.ShedUnplanned++
			default:
				res.Invalid++
				pr.Invalid++
			}
		}
		var merged []arrival
		sprays := make([]*rand.Rand, S*K)
		for s := range rates {
			for k := range rates[s] {
				rate := rates[s][k]
				if rate <= 0 {
					continue
				}
				seed := streamSeed(cfg.Seed, abs, s, k)
				arrivals, err := synthesize(rate, T, seed, &cfg, table, k, s, sch.FlashCrowdFactor(s, abs))
				if err != nil {
					return rep, err
				}
				if streamOffered != nil && k < table.K() && s < table.S() {
					streamOffered[k*table.S()+s] += int64(len(arrivals))
				}
				// The spray stream is seeded independently of the arrival
				// stream so target choice never perturbs arrival times.
				spray := rand.New(rand.NewSource(streamSeed(cfg.Seed^0x5eed, abs, s, k)))
				if ctrl != nil {
					// The merged replay keeps each stream's relative order, so
					// its spray rand draws the same sequence the nested loop
					// would.
					sprays[s*K+k] = spray
					for _, at := range arrivals {
						merged = append(merged, arrival{at: at, k: k, s: s})
					}
					continue
				}
				for _, at := range arrivals {
					fire(k, s, at, spray)
				}
			}
		}
		if ctrl != nil {
			liveSet := make([]bool, len(f.Replicas))
			for _, ri := range live {
				liveSet[ri] = true
			}
			slot := abs
			plant.Slot = slot
			plant.Serving = func(i int) bool { return liveSet[i] }
			plant.Reachable = func(i int) bool { return f.Reachable(i, slot) }
			prevActs := ctrl.Actuations()
			// A publisher outage leaves table nil: BeginSlot(nil) disarms the
			// controller and the fleet serves its last fenced epochs.
			ctrl.BeginSlot(table, start, centerFactors(sch, gw0.System().L(), abs))
			replayControlled(merged, T, start, cfg.Control.WithDefaults().TicksPerSlot, ctrl,
				func(k, s int, at float64) { fire(k, s, at, sprays[s*K+k]) })
			res.Actuations = ctrl.Actuations() - prevActs
			res.ControlFrozen = ctrl.Frozen()
		}
		if table != nil {
			res.Lanes = make([]LaneStat, len(table.Lanes))
			for j := range table.Lanes {
				ln := table.Lanes[j]
				n := laneAdmitted[j]
				res.Lanes[j] = LaneStat{
					Lane:         ln,
					Planned:      ln.Rate * T,
					Admitted:     n,
					AchievedRate: float64(n) / T,
					Demand:       laneDemand(table, j, streamOffered, T),
				}
			}
		}
		rep.Slots = append(rep.Slots, res)
	}
	return rep, nil
}

package loadgen

import (
	"encoding/json"
	"testing"

	"profitlb/internal/core"
	"profitlb/internal/datacenter"
	"profitlb/internal/dispatch"
	"profitlb/internal/fault"
	"profitlb/internal/market"
	"profitlb/internal/obs"
	"profitlb/internal/resilient"
	"profitlb/internal/sim"
	"profitlb/internal/tuf"
	"profitlb/internal/workload"
)

// testSystem is sized so the optimized planner serves every arrival:
// streams are fat (λ·T ≥ 5000), which keeps each lane's Poisson
// fluctuation far inside its token-bucket burst.
func testSystem() *datacenter.System {
	return &datacenter.System{
		Classes: []datacenter.RequestClass{
			{Name: "web", TUF: tuf.MustNew([]tuf.Level{{Utility: 0.01, Deadline: 0.01}}),
				TransferCostPerMile: 1e-7},
			{Name: "batch", TUF: tuf.MustNew([]tuf.Level{
				{Utility: 0.05, Deadline: 0.05}, {Utility: 0.02, Deadline: 0.25}}),
				TransferCostPerMile: 2e-7},
		},
		FrontEnds: []datacenter.FrontEnd{
			{Name: "east", DistanceMiles: []float64{300, 2400}},
			{Name: "west", DistanceMiles: []float64{2500, 200}},
		},
		Centers: []datacenter.DataCenter{
			{Name: "tx", Servers: 8, Capacity: 1,
				ServiceRate: []float64{20000, 3000}, EnergyPerRequest: []float64{0.0003, 0.004}},
			{Name: "ca", Servers: 8, Capacity: 1,
				ServiceRate: []float64{18000, 3500}, EnergyPerRequest: []float64{0.0003, 0.0035}},
		},
	}
}

// testSimConfig uses constant traces: every slot offers the same fat
// streams, well inside capacity.
func testSimConfig(slots int) sim.Config {
	return sim.Config{
		Sys: testSystem(),
		Traces: []*workload.Trace{
			{Name: "east", Rates: [][]float64{{18000, 1500}}},
			{Name: "west", Rates: [][]float64{{15000, 1100}}},
		},
		Prices: []*market.PriceTrace{
			{Name: "tx", Prices: []float64{0.05}},
			{Name: "ca", Prices: []float64{0.08}},
		},
		Slots: slots,
	}
}

// harness builds the full in-process stack: input source, planner,
// gateway (instrumented when scope is non-nil) and driver.
func harness(t *testing.T, cfg sim.Config, planner core.Planner, scope *obs.Scope) (*dispatch.Driver, *sim.InputSource) {
	t.Helper()
	src, err := sim.NewInputSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gw := dispatch.NewGateway(cfg.Sys, dispatch.Config{Seed: 11, SlotSeconds: 60}, scope)
	return &dispatch.Driver{Gateway: gw, Planner: planner, Source: src}, src
}

// TestCleanScenario is the subsystem's acceptance gate: replaying a
// clean scenario, every fat lane's achieved rate lands within 5% of the
// planned λ and nothing is shed.
func TestCleanScenario(t *testing.T) {
	cfg := testSimConfig(3)
	d, src := harness(t, cfg, core.NewOptimized(), nil)
	rep, err := Run(d, src, Config{Seed: 1, Slots: cfg.Slots})
	if err != nil {
		t.Fatal(err)
	}
	offered, admitted, shed := rep.Totals()
	if offered == 0 {
		t.Fatal("no requests offered")
	}
	if shed != 0 {
		t.Fatalf("clean scenario shed %d of %d requests", shed, offered)
	}
	if admitted != offered {
		t.Fatalf("admitted %d of %d offered with zero shed", admitted, offered)
	}
	if e := rep.MaxLaneError(500); e > 0.05 {
		t.Fatalf("max lane rate error %.4f, want <= 0.05", e)
	}
	if rep.DegradedSlots() != 0 {
		t.Fatalf("%d degraded slots on the clean path", rep.DegradedSlots())
	}
	// Realized profit tracks the plan's prediction: same economics, the
	// only gap is Poisson noise on the admitted counts.
	got, want := rep.TotalNetProfit(), rep.TotalPlannedProfit()
	if want <= 0 {
		t.Fatalf("planned profit %g", want)
	}
	if diff := got/want - 1; diff < -0.05 || diff > 0.05 {
		t.Fatalf("realized profit %.2f vs planned %.2f (%.1f%% off)", got, want, 100*diff)
	}
}

// TestDeterministicReplay: the same scenario and seed reproduce the
// byte-identical report, including per-lane tallies.
func TestDeterministicReplay(t *testing.T) {
	run := func() []byte {
		cfg := testSimConfig(2)
		d, src := harness(t, cfg, core.NewOptimized(), nil)
		rep, err := Run(d, src, Config{Seed: 7, Slots: cfg.Slots, BurstFactor: 2})
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same seed, different reports:\n%s\n%s", a, b)
	}
}

// TestSeedMatters: different arrival seeds produce different traffic.
func TestSeedMatters(t *testing.T) {
	offered := func(seed int64) int64 {
		cfg := testSimConfig(1)
		d, src := harness(t, cfg, core.NewOptimized(), nil)
		rep, err := Run(d, src, Config{Seed: seed, Slots: 1})
		if err != nil {
			t.Fatal(err)
		}
		n, _, _ := rep.Totals()
		return n
	}
	if offered(1) == offered(2) {
		t.Fatal("two seeds produced identical offered counts (suspicious)")
	}
}

// TestFaultStorm replays under center outages and price spikes with the
// resilient chain: the gateway must stay up for the whole horizon,
// degrade by shedding (never by erroring), and the dispatch counters
// must reconcile with the report.
func TestFaultStorm(t *testing.T) {
	cfg := testSimConfig(6)
	storm, err := fault.Storm(fault.StormConfig{
		Seed:    3,
		Slots:   cfg.Slots,
		Centers: cfg.Sys.L(), FrontEnds: cfg.Sys.S(),
		Outages: 2, OutageSlots: 2,
		Spikes: 2, SpikeFactor: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = storm
	cfg.DegradeOnFailure = true
	reg := obs.NewRegistry()
	scope := obs.NewScope(reg, nil)
	d, src := harness(t, cfg, resilient.Wrap(core.NewOptimized()), scope)
	rep, err := Run(d, src, Config{Seed: 5, Slots: cfg.Slots})
	if err != nil {
		t.Fatalf("the gateway went down under the storm: %v", err)
	}
	if len(rep.Slots) != cfg.Slots {
		t.Fatalf("replayed %d of %d slots", len(rep.Slots), cfg.Slots)
	}
	offered, admitted, shed := rep.Totals()
	if offered == 0 || admitted == 0 {
		t.Fatalf("storm starved the replay: offered %d admitted %d", offered, admitted)
	}
	var invalid int64
	for i := range rep.Slots {
		invalid += rep.Slots[i].Invalid
	}
	if invalid != 0 {
		t.Fatalf("%d requests answered invalid; faults must shed, not error", invalid)
	}
	// The gateway's own counters saw exactly what the report tallied.
	cReq := scope.Counter("dispatch_requests_total").Value()
	cAdmit := scope.Counter("dispatch_admitted_total").Value()
	cShed := scope.Counter("dispatch_shed_total", obs.L("reason", "budget")).Value() +
		scope.Counter("dispatch_shed_total", obs.L("reason", "unplanned")).Value()
	if cReq != offered || cAdmit != admitted || cShed != shed {
		t.Fatalf("counters %d/%d/%d, report %d/%d/%d", cReq, cAdmit, cShed, offered, admitted, shed)
	}
}

// TestClosedLoop: the closed-loop generator produces traffic that is a
// function of the population and think time, and the gateway absorbs it.
func TestClosedLoop(t *testing.T) {
	cfg := testSimConfig(2)
	d, src := harness(t, cfg, core.NewOptimized(), nil)
	rep, err := Run(d, src, Config{Seed: 2, Slots: cfg.Slots, Closed: true, Users: 16})
	if err != nil {
		t.Fatal(err)
	}
	offered, _, _ := rep.Totals()
	if offered == 0 {
		t.Fatal("closed loop offered nothing")
	}
	for i := range rep.Slots {
		if rep.Slots[i].Invalid != 0 {
			t.Fatalf("slot %d: %d invalid answers", rep.Slots[i].Slot, rep.Slots[i].Invalid)
		}
	}
}

// TestBurstyArrivals: an MMPP with peak-to-mean 4 overruns the plan's
// slot-average budget in bursts, so the bucket sheds some load — that is
// the budget doing its job — but the replay completes and most traffic
// is still served.
func TestBurstyArrivals(t *testing.T) {
	cfg := testSimConfig(2)
	d, src := harness(t, cfg, core.NewOptimized(), nil)
	rep, err := Run(d, src, Config{Seed: 3, Slots: cfg.Slots, BurstFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	offered, _, _ := rep.Totals()
	if offered == 0 {
		t.Fatal("no bursty traffic offered")
	}
	if f := rep.ShedFraction(); f > 0.5 {
		t.Fatalf("shed fraction %.3f under bursts, want < 0.5", f)
	}
}

func TestRunValidation(t *testing.T) {
	cfg := testSimConfig(1)
	d, src := harness(t, cfg, core.NewOptimized(), nil)
	if _, err := Run(nil, src, Config{Slots: 1}); err == nil {
		t.Fatal("nil driver accepted")
	}
	if _, err := Run(d, src, Config{Slots: 0}); err == nil {
		t.Fatal("zero slots accepted")
	}
	if _, err := Run(d, src, Config{Slots: 1, Closed: true, Users: -1}); err == nil {
		t.Fatal("negative population accepted")
	}
}

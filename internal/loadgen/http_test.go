package loadgen

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fastFire is a tight client discipline for tests: real backoff values
// would slow the suite without changing behaviour.
func fastFire(retries int) FireConfig {
	return FireConfig{Timeout: 2 * time.Second, Retries: retries, Backoff: time.Millisecond}
}

// hijackClose kills the client's connection mid-request, which the
// client sees as a transport error (not an HTTP status).
func hijackClose(w http.ResponseWriter) {
	conn, _, err := w.(http.Hijacker).Hijack()
	if err == nil {
		conn.Close()
	}
}

// TestFireHTTPRetriesConnectionErrors: a server that drops the first two
// connections is survived by the retry budget — the request eventually
// lands, and the recovered attempts are tallied as retries.
func TestFireHTTPRetriesConnectionErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			hijackClose(w)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	res, err := FireHTTPWith(srv.URL, testSystem(), 1, 1, fastFire(3))
	if err != nil {
		t.Fatalf("flaky server defeated the retry budget: %v", err)
	}
	if res.Sent != 1 || res.Admitted != 1 {
		t.Fatalf("tally %+v, want 1 sent / 1 admitted", res)
	}
	if res.Retries != 2 {
		t.Fatalf("%d retries recorded, want 2 (two dropped connections)", res.Retries)
	}
}

// TestFireHTTPNeverRetriesShed: 429 is a definitive answer — the gateway
// shed the request on purpose, and retrying sheds would turn admission
// control into a retry storm. The server must see exactly one request.
func TestFireHTTPNeverRetriesShed(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	res, err := FireHTTPWith(srv.URL, testSystem(), 1, 1, fastFire(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed != 1 || res.Retries != 0 {
		t.Fatalf("tally %+v, want 1 shed / 0 retries", res)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d requests for one shed answer", n)
	}
}

// TestFireHTTPGivesUpAfterBudget: a dead-on-arrival transport exhausts
// the bounded budget and errors out instead of retrying forever.
func TestFireHTTPGivesUpAfterBudget(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hijackClose(w)
	}))
	defer srv.Close()

	res, err := FireHTTPWith(srv.URL, testSystem(), 1, 1, fastFire(2))
	if err == nil {
		t.Fatal("permanently dropping server did not error out")
	}
	if res.Retries != 2 {
		t.Fatalf("%d retries before giving up, want the full budget of 2", res.Retries)
	}
	if res.Sent != 0 {
		t.Fatalf("%d requests counted sent despite never being answered", res.Sent)
	}
}

// TestFireHTTPMultiPerTargetTallies: the multi-target sprayer keeps
// per-replica tallies that sum to the total, and each target's outcomes
// reflect its own behaviour.
func TestFireHTTPMultiPerTargetTallies(t *testing.T) {
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer ok.Close()
	shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer shedding.Close()

	const n = 40
	total, per, err := FireHTTPMulti([]string{ok.URL, shedding.URL}, testSystem(), n, 3, fastFire(1))
	if err != nil {
		t.Fatal(err)
	}
	if total.Sent != n || per[0].Sent+per[1].Sent != n {
		t.Fatalf("sent %d total, per-target %d+%d, want %d", total.Sent, per[0].Sent, per[1].Sent, n)
	}
	if per[0].Sent == 0 || per[1].Sent == 0 {
		t.Fatalf("seeded spray starved a target: %d vs %d", per[0].Sent, per[1].Sent)
	}
	if per[0].Admitted != per[0].Sent || per[0].Shed != 0 {
		t.Fatalf("healthy target tallied %+v", per[0])
	}
	if per[1].Shed != per[1].Sent || per[1].Admitted != 0 {
		t.Fatalf("shedding target tallied %+v", per[1])
	}
	if total.Admitted != per[0].Admitted || total.Shed != per[1].Shed {
		t.Fatalf("total %+v does not sum the per-target tallies", total)
	}
}

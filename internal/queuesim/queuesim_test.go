package queuesim

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"profitlb/internal/core"
	"profitlb/internal/datacenter"
	"profitlb/internal/tuf"
)

func TestRunMatchesAnalyticalDelay(t *testing.T) {
	// Across utilizations, the realized mean delay must converge to
	// Eq. 1's 1/(μ−λ) within a few percent at 200k arrivals.
	for _, rho := range []float64{0.3, 0.5, 0.7, 0.9} {
		q := MM1{Lambda: rho * 100, Mu: 100, Seed: 42}
		st, err := q.Run(200000)
		if err != nil {
			t.Fatal(err)
		}
		want := q.ExpectedDelay()
		rel := math.Abs(st.MeanDelay-want) / want
		if rel > 0.08 {
			t.Fatalf("rho=%g: simulated %g vs analytical %g (rel %g)", rho, st.MeanDelay, want, rel)
		}
	}
}

func TestRunStatsShape(t *testing.T) {
	q := MM1{Lambda: 50, Mu: 100, Seed: 7}
	st, err := q.Run(50000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Arrivals != 50000 {
		t.Fatalf("arrivals %d", st.Arrivals)
	}
	if !(st.MeanDelay < st.P95Delay && st.P95Delay <= st.MaxDelay) {
		t.Fatalf("ordering: mean %g p95 %g max %g", st.MeanDelay, st.P95Delay, st.MaxDelay)
	}
	// Little's law: L = λW; rho=0.5 → L = 1.
	if math.Abs(st.MeanQueue-1) > 0.15 {
		t.Fatalf("mean queue %g, want ≈1", st.MeanQueue)
	}
}

func TestRunDeterministicInSeed(t *testing.T) {
	a, err := MM1{Lambda: 30, Mu: 100, Seed: 5}.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MM1{Lambda: 30, Mu: 100, Seed: 5}.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same seed, different stats")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := (MM1{Lambda: 100, Mu: 100, Seed: 1}).Run(10); !errors.Is(err, ErrUnstable) {
		t.Fatal("want unstable")
	}
	if _, err := (MM1{Lambda: 10, Mu: 100}).Run(0); !errors.Is(err, ErrNoWork) {
		t.Fatal("want no-work error")
	}
	if _, err := (MM1{Lambda: -1, Mu: 100}).Run(10); err == nil {
		t.Fatal("want rate error")
	}
}

// Property: the simulated mean delay is never below the pure service time
// 1/μ and grows with utilization.
func TestDelayBoundsQuick(t *testing.T) {
	f := func(seed int64) bool {
		mu := 100.0
		q1 := MM1{Lambda: 30, Mu: mu, Seed: seed}
		q2 := MM1{Lambda: 80, Mu: mu, Seed: seed}
		s1, err1 := q1.Run(20000)
		s2, err2 := q2.Run(20000)
		if err1 != nil || err2 != nil {
			return false
		}
		return s1.MeanDelay >= 1/mu && s2.MeanDelay > s1.MeanDelay
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func planForValidation(t *testing.T) (*datacenter.System, *core.Plan) {
	t.Helper()
	sys := &datacenter.System{
		Classes: []datacenter.RequestClass{
			{Name: "a", TUF: tuf.MustNew([]tuf.Level{{Utility: 10, Deadline: 0.05}}), TransferCostPerMile: 0.0001},
			{Name: "b", TUF: tuf.MustNew([]tuf.Level{{Utility: 20, Deadline: 0.02}, {Utility: 8, Deadline: 0.2}}), TransferCostPerMile: 0.0002},
		},
		FrontEnds: []datacenter.FrontEnd{{Name: "fe", DistanceMiles: []float64{200, 700}}},
		Centers: []datacenter.DataCenter{
			{Name: "dc1", Servers: 4, Capacity: 1, ServiceRate: []float64{400, 300}, EnergyPerRequest: []float64{0.3, 0.5}},
			{Name: "dc2", Servers: 4, Capacity: 1, ServiceRate: []float64{350, 320}, EnergyPerRequest: []float64{0.25, 0.45}},
		},
	}
	in := &core.Input{Sys: sys, Arrivals: [][]float64{{600, 500}}, Prices: []float64{0.2, 0.15}}
	plan, err := core.NewOptimized().Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(in, plan, 1e-6); err != nil {
		t.Fatal(err)
	}
	return sys, plan
}

func TestValidatePlan(t *testing.T) {
	sys, plan := planForValidation(t)
	checks, err := ValidatePlan(sys, plan, 200000, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) == 0 {
		t.Fatal("no loaded commodities to validate")
	}
	if worst := WorstRelErr(checks); worst > 0.10 {
		t.Fatalf("worst model error %g exceeds 10%%", worst)
	}
	for _, c := range checks {
		// The plan meets deadlines with equality in expectation, so the
		// analytical delay must sit at or below the level deadline.
		if c.Expected > c.Deadline*(1+1e-6) {
			t.Fatalf("commodity %+v: analytical delay above deadline", c)
		}
	}
}

func TestValidatePlanErrors(t *testing.T) {
	sys, plan := planForValidation(t)
	if _, err := ValidatePlan(sys, plan, 0, 1); !errors.Is(err, ErrNoWork) {
		t.Fatal("want no-work error")
	}
	// Corrupt the plan: load with no servers on.
	plan.ServersOn[0] = 0
	plan.ServersOn[1] = 0
	if _, err := ValidatePlan(sys, plan, 100, 1); err == nil {
		t.Fatal("want error for load without servers")
	}
}

func TestWorstRelErrEmpty(t *testing.T) {
	if WorstRelErr(nil) != 0 {
		t.Fatal("empty set should be 0")
	}
}

func TestRunDelaysLength(t *testing.T) {
	d, err := MM1{Lambda: 10, Mu: 100, Seed: 3}.RunDelays(500)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 500 {
		t.Fatalf("len = %d", len(d))
	}
	for _, v := range d {
		if v <= 0 {
			t.Fatal("non-positive delay")
		}
	}
}

func TestUtilityGapDirections(t *testing.T) {
	sys, plan := planForValidation(t)
	checks, err := UtilityGap(sys, plan, 150000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) == 0 {
		t.Fatal("no checks")
	}
	for _, c := range checks {
		cls := sys.Classes[c.Class].TUF
		// Per-request utility is bounded by the TUF's extremes.
		if c.PerRequestUtility < 0 || c.PerRequestUtility > cls.MaxUtility() {
			t.Fatalf("per-request utility %g out of range", c.PerRequestUtility)
		}
		// A top-level commodity can only lose utility per request; a
		// bottom-level one can only gain.
		if c.Level == 0 && c.PerRequestUtility > c.MeanDelayUtility+1e-9 {
			t.Fatalf("top level gained utility: %+v", c)
		}
		if c.Level == cls.NumLevels()-1 && cls.NumLevels() > 1 &&
			c.PerRequestUtility < c.MeanDelayUtility-1e-9 {
			t.Fatalf("bottom level lost utility: %+v", c)
		}
	}
	mean, per := RevenueRates(checks)
	if mean <= 0 || per <= 0 {
		t.Fatalf("revenue rates %g %g", mean, per)
	}
}

func TestUtilityGapErrors(t *testing.T) {
	sys, plan := planForValidation(t)
	if _, err := UtilityGap(sys, plan, 0, 1); !errors.Is(err, ErrNoWork) {
		t.Fatal("want no-work error")
	}
	plan.ServersOn[0], plan.ServersOn[1] = 0, 0
	if _, err := UtilityGap(sys, plan, 100, 1); err == nil {
		t.Fatal("want error for load without servers")
	}
}

func TestRunArrivalsMatchesRunForPoisson(t *testing.T) {
	// Feeding Poisson arrivals through RunArrivals must reproduce M/M/1
	// behaviour: mean delay ≈ 1/(mu − lambda).
	rng := rand.New(rand.NewSource(21))
	lam, mu := 60.0, 100.0
	n := 150000
	arrivals := make([]float64, n)
	t0 := 0.0
	for i := range arrivals {
		t0 += rng.ExpFloat64() / lam
		arrivals[i] = t0
	}
	st, err := MM1{Mu: mu, Seed: 5}.RunArrivals(arrivals)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (mu - lam)
	if math.Abs(st.MeanDelay-want)/want > 0.08 {
		t.Fatalf("mean delay %g, want ≈%g", st.MeanDelay, want)
	}
}

func TestRunArrivalsErrors(t *testing.T) {
	if _, err := (MM1{Mu: 10}).RunArrivals(nil); !errors.Is(err, ErrNoWork) {
		t.Fatal("want no-work")
	}
	if _, err := (MM1{Mu: 0}).RunArrivals([]float64{1}); err == nil {
		t.Fatal("zero mu accepted")
	}
	if _, err := (MM1{Mu: 10}).RunArrivals([]float64{2, 1}); err == nil {
		t.Fatal("unsorted arrivals accepted")
	}
}

// Package queuesim is a discrete-event M/M/1 simulator used to validate
// the analytical delay model the paper's formulation rests on (Eq. 1:
// R = 1/(φCμ − λ)) and to empirically check that dispatch plans meet
// their TUF deadlines, not just in expectation formulas but on realized
// Poisson arrivals and exponential service times.
//
// Under virtualization, each (request type, level) commodity on a server
// owns a CPU share φ, so the commodity behaves as an independent M/M/1
// queue with service rate φ·C·μ. The simulator exploits the exact Lindley
// recurrence for FIFO single-server queues:
//
//	depart[i] = max(arrive[i], depart[i-1]) + service[i]
//
// which needs no event list and is O(n) per queue.
package queuesim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"profitlb/internal/core"
	"profitlb/internal/datacenter"
)

// MM1 configures one simulated queue.
type MM1 struct {
	Lambda float64 // arrival rate
	Mu     float64 // service rate (φ·C·μ for a shared server)
	Seed   int64
}

// Stats summarizes realized response times.
type Stats struct {
	Arrivals  int
	MeanDelay float64
	P95Delay  float64
	MaxDelay  float64
	// MeanQueue is the time-averaged number in system (via Little's law,
	// L = λ·W, using the realized mean delay).
	MeanQueue float64
}

// Errors returned by Run.
var (
	ErrUnstable = errors.New("queuesim: lambda >= mu, no steady state")
	ErrNoWork   = errors.New("queuesim: need at least one arrival")
)

// RunDelays simulates n arrivals through the queue and returns every
// request's response time, in arrival order. It is deterministic in the
// seed.
func (q MM1) RunDelays(n int) ([]float64, error) {
	if n < 1 {
		return nil, ErrNoWork
	}
	if q.Lambda <= 0 || q.Mu <= 0 {
		return nil, fmt.Errorf("queuesim: non-positive rates lambda=%g mu=%g", q.Lambda, q.Mu)
	}
	if q.Lambda >= q.Mu {
		return nil, ErrUnstable
	}
	rng := rand.New(rand.NewSource(q.Seed))
	delays := make([]float64, n)
	var arrive, departPrev float64
	for i := 0; i < n; i++ {
		arrive += rng.ExpFloat64() / q.Lambda
		service := rng.ExpFloat64() / q.Mu
		start := arrive
		if departPrev > start {
			start = departPrev
		}
		depart := start + service
		delays[i] = depart - arrive
		departPrev = depart
	}
	return delays, nil
}

// Run simulates n arrivals through the queue and returns realized
// statistics. It is deterministic in the seed.
func (q MM1) Run(n int) (Stats, error) {
	delays, err := q.RunDelays(n)
	if err != nil {
		return Stats{}, err
	}
	var sum, max float64
	for _, d := range delays {
		sum += d
		if d > max {
			max = d
		}
	}
	n = len(delays)
	mean := sum / float64(n)
	sorted := append([]float64(nil), delays...)
	sort.Float64s(sorted)
	p95 := sorted[int(math.Ceil(0.95*float64(n)))-1]
	return Stats{
		Arrivals:  n,
		MeanDelay: mean,
		P95Delay:  p95,
		MaxDelay:  max,
		MeanQueue: q.Lambda * mean,
	}, nil
}

// ExpectedDelay returns the analytical Eq. 1 value for the queue.
func (q MM1) ExpectedDelay() float64 { return 1 / (q.Mu - q.Lambda) }

// CommodityCheck is the empirical verdict for one planned commodity.
type CommodityCheck struct {
	Center, Class, Level int
	Lambda               float64 // per-server arrival rate
	ServiceRate          float64 // φ·C·μ
	Deadline             float64
	Expected             float64 // analytical mean delay
	Simulated            float64 // realized mean delay
	// RelErr is |simulated − expected| / expected.
	RelErr float64
}

// ValidatePlan simulates every loaded commodity of a plan with n Poisson
// arrivals each and returns the per-commodity comparison of realized vs
// analytical mean delay. It is the empirical bridge between the planner's
// queueing-theoretic guarantees and an actual stream of requests.
func ValidatePlan(sys *datacenter.System, plan *core.Plan, n int, seed int64) ([]CommodityCheck, error) {
	if n < 1 {
		return nil, ErrNoWork
	}
	var out []CommodityCheck
	for l := 0; l < sys.L(); l++ {
		dc := &sys.Centers[l]
		for k := 0; k < sys.K(); k++ {
			for q := range plan.Rate[k] {
				lamTotal := plan.CenterRate(k, q, l)
				if lamTotal <= 1e-9 {
					continue
				}
				if plan.ServersOn[l] == 0 {
					return nil, fmt.Errorf("queuesim: center %d has load but no servers on", l)
				}
				lam := lamTotal / float64(plan.ServersOn[l])
				mu := plan.Phi[l][k][q] * dc.Capacity * dc.ServiceRate[k]
				sim := MM1{Lambda: lam, Mu: mu, Seed: seed + int64(l*1000+k*100+q)}
				st, err := sim.Run(n)
				if err != nil {
					return nil, fmt.Errorf("queuesim: center %d k=%d q=%d: %w", l, k, q, err)
				}
				expected := sim.ExpectedDelay()
				out = append(out, CommodityCheck{
					Center: l, Class: k, Level: q,
					Lambda: lam, ServiceRate: mu,
					Deadline:  sys.Classes[k].TUF.Level(q).Deadline,
					Expected:  expected,
					Simulated: st.MeanDelay,
					RelErr:    math.Abs(st.MeanDelay-expected) / expected,
				})
			}
		}
	}
	return out, nil
}

// WorstRelErr returns the largest relative model error across checks
// (0 for an empty set).
func WorstRelErr(checks []CommodityCheck) float64 {
	var worst float64
	for _, c := range checks {
		if c.RelErr > worst {
			worst = c.RelErr
		}
	}
	return worst
}

// RunArrivals pushes externally generated arrival instants (sorted,
// non-negative) through the queue with exponential service at Mu,
// ignoring the Lambda field. It lets non-Poisson arrival processes (e.g.
// workload.MMPP) be replayed against the planner's M/M/1 assumptions.
func (q MM1) RunArrivals(arrivals []float64) (Stats, error) {
	if len(arrivals) == 0 {
		return Stats{}, ErrNoWork
	}
	if q.Mu <= 0 {
		return Stats{}, fmt.Errorf("queuesim: non-positive service rate %g", q.Mu)
	}
	rng := rand.New(rand.NewSource(q.Seed))
	delays := make([]float64, len(arrivals))
	var departPrev float64
	prev := -1.0
	for i, arrive := range arrivals {
		if arrive < prev {
			return Stats{}, fmt.Errorf("queuesim: arrivals not sorted at index %d", i)
		}
		prev = arrive
		start := arrive
		if departPrev > start {
			start = departPrev
		}
		depart := start + rng.ExpFloat64()/q.Mu
		delays[i] = depart - arrive
		departPrev = depart
	}
	var sum, max float64
	for _, d := range delays {
		sum += d
		if d > max {
			max = d
		}
	}
	n := len(delays)
	mean := sum / float64(n)
	sorted := append([]float64(nil), delays...)
	sort.Float64s(sorted)
	p95 := sorted[int(math.Ceil(0.95*float64(n)))-1]
	rate := 0.0
	if span := arrivals[n-1] - arrivals[0]; span > 0 {
		rate = float64(n) / span
	}
	return Stats{
		Arrivals:  n,
		MeanDelay: mean,
		P95Delay:  p95,
		MaxDelay:  max,
		MeanQueue: rate * mean,
	}, nil
}

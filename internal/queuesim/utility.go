package queuesim

import (
	"fmt"

	"profitlb/internal/core"
	"profitlb/internal/datacenter"
)

// UtilityCheck compares the two possible SLA semantics for one planned
// commodity:
//
//   - MeanDelayUtility: the paper's semantics — utility of the *average*
//     delay, U(E[R]) (paper [23]: "profit comes from successfully
//     guaranteeing the average delay satisfaction").
//   - PerRequestUtility: the per-job semantics of TUF schedulers like the
//     authors' earlier work [17] — the average of per-request utilities,
//     E[U(R)].
//
// For step-downward TUFs these differ, in both directions: a commodity
// planned at the top level loses the exponential tail of its delay
// distribution to lower levels (E[U(R)] < U(E[R])), while a commodity
// planned at a loose level serves many individual requests fast enough to
// earn a higher step (E[U(R)] > U(E[R])). The gap quantifies how much
// revenue a provider billing per request would actually collect relative
// to the mean-delay contract the planner optimizes.
type UtilityCheck struct {
	Center, Class, Level int
	// Rate is the commodity's aggregate arrival rate at the center.
	Rate              float64
	MeanDelayUtility  float64
	PerRequestUtility float64
}

// UtilityGap simulates every loaded commodity of a plan with n Poisson
// arrivals and evaluates both utility semantics on the realized delays.
func UtilityGap(sys *datacenter.System, plan *core.Plan, n int, seed int64) ([]UtilityCheck, error) {
	if n < 1 {
		return nil, ErrNoWork
	}
	var out []UtilityCheck
	for l := 0; l < sys.L(); l++ {
		dc := &sys.Centers[l]
		for k := 0; k < sys.K(); k++ {
			cls := sys.Classes[k].TUF
			for q := range plan.Rate[k] {
				lamTotal := plan.CenterRate(k, q, l)
				if lamTotal <= 1e-9 {
					continue
				}
				if plan.ServersOn[l] == 0 {
					return nil, fmt.Errorf("queuesim: center %d has load but no servers on", l)
				}
				lam := lamTotal / float64(plan.ServersOn[l])
				mu := plan.Phi[l][k][q] * dc.Capacity * dc.ServiceRate[k]
				sim := MM1{Lambda: lam, Mu: mu, Seed: seed + int64(l*1000+k*100+q)}
				delays, err := sim.RunDelays(n)
				if err != nil {
					return nil, fmt.Errorf("queuesim: center %d k=%d q=%d: %w", l, k, q, err)
				}
				var perReq float64
				for _, d := range delays {
					perReq += cls.Utility(d)
				}
				perReq /= float64(len(delays))
				// The mean-delay semantics use the analytical expectation
				// (what the planner contracted), snapped onto the level
				// deadline it meets with equality.
				expected := sim.ExpectedDelay()
				if dq := cls.Level(q).Deadline; expected > dq && expected <= dq*(1+1e-9) {
					expected = dq
				}
				out = append(out, UtilityCheck{
					Center: l, Class: k, Level: q, Rate: lamTotal,
					MeanDelayUtility:  cls.Utility(expected),
					PerRequestUtility: perReq,
				})
			}
		}
	}
	return out, nil
}

// RevenueRates aggregates the checks into slot revenue rates ($ per time
// unit) under both semantics.
func RevenueRates(checks []UtilityCheck) (meanDelay, perRequest float64) {
	for _, c := range checks {
		meanDelay += c.MeanDelayUtility * c.Rate
		perRequest += c.PerRequestUtility * c.Rate
	}
	return
}

package queue

import (
	"fmt"
	"math"
)

// MG1 is an M/G/1 station: Poisson arrivals, a general service-time
// distribution described by its mean rate Mu and coefficient of variation
// CV (standard deviation over mean; 1 = exponential reduces to M/M/1,
// 0 = deterministic). The paper's delay model assumes exponential service;
// this extension quantifies what its guarantees are worth when real
// service times are burstier or steadier.
type MG1 struct {
	Phi float64 // CPU share in [0, 1]
	C   float64 // server capacity
	Mu  float64 // service rate at full capacity
	CV  float64 // coefficient of variation of the service time
}

// ServiceRate returns φ·C·μ.
func (q MG1) ServiceRate() float64 { return q.Phi * q.C * q.Mu }

// Delay returns the expected sojourn time by the Pollaczek–Khinchine
// formula:
//
//	W = 1/μ' + ρ·(1+CV²) / (2·μ'·(1−ρ)),  μ' = φCμ, ρ = λ/μ'.
func (q MG1) Delay(lambda float64) (float64, error) {
	if lambda < 0 {
		return 0, fmt.Errorf("queue: negative arrival rate %g", lambda)
	}
	if q.CV < 0 {
		return 0, fmt.Errorf("queue: negative CV %g", q.CV)
	}
	mu := q.ServiceRate()
	if lambda >= mu {
		return math.Inf(1), ErrUnstable
	}
	if lambda == 0 {
		return 1 / mu, nil
	}
	rho := lambda / mu
	wait := rho * (1 + q.CV*q.CV) / (2 * mu * (1 - rho))
	return 1/mu + wait, nil
}

// Stable reports whether lambda admits a steady state.
func (q MG1) Stable(lambda float64) bool { return lambda >= 0 && lambda < q.ServiceRate() }

// DelayInflation returns the ratio of the M/G/1 expected delay to the
// M/M/1 delay the planner assumed, at arrival rate lambda. Values above 1
// mean the paper's model is optimistic for this service distribution.
func (q MG1) DelayInflation(lambda float64) (float64, error) {
	dg, err := q.Delay(lambda)
	if err != nil {
		return 0, err
	}
	mm1 := MM1{Phi: q.Phi, C: q.C, Mu: q.Mu}
	dm, err := mm1.Delay(lambda)
	if err != nil {
		return 0, err
	}
	return dg / dm, nil
}

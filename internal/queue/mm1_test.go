package queue

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMM1Delay(t *testing.T) {
	q := MM1{Phi: 0.5, C: 1, Mu: 10} // service rate 5
	d, err := q.Delay(3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.5) > 1e-12 { // 1/(5-3)
		t.Fatalf("Delay = %g, want 0.5", d)
	}
}

func TestMM1DelayUnstable(t *testing.T) {
	q := MM1{Phi: 1, C: 1, Mu: 4}
	for _, lambda := range []float64{4, 5} {
		d, err := q.Delay(lambda)
		if !errors.Is(err, ErrUnstable) || !math.IsInf(d, 1) {
			t.Fatalf("lambda=%g: want unstable, got d=%g err=%v", lambda, d, err)
		}
	}
}

func TestMM1DelayNegativeRate(t *testing.T) {
	q := MM1{Phi: 1, C: 1, Mu: 4}
	if _, err := q.Delay(-1); err == nil {
		t.Fatal("want error on negative rate")
	}
}

func TestMM1Utilization(t *testing.T) {
	q := MM1{Phi: 0.5, C: 2, Mu: 10} // rate 10
	if u := q.Utilization(5); u != 0.5 {
		t.Fatalf("Utilization = %g, want 0.5", u)
	}
	zero := MM1{}
	if u := zero.Utilization(0); u != 0 {
		t.Fatalf("zero-share idle utilization = %g", u)
	}
	if u := zero.Utilization(1); !math.IsInf(u, 1) {
		t.Fatalf("zero-share loaded utilization = %g, want +Inf", u)
	}
}

func TestMM1QueueLength(t *testing.T) {
	q := MM1{Phi: 1, C: 1, Mu: 10}
	l, err := q.QueueLength(5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-1) > 1e-12 { // rho=0.5 → L=1
		t.Fatalf("QueueLength = %g, want 1", l)
	}
	if _, err := q.QueueLength(10); !errors.Is(err, ErrUnstable) {
		t.Fatal("want unstable")
	}
}

func TestRequiredShareInvertsDelay(t *testing.T) {
	// The share returned must achieve exactly the target delay.
	c, mu, lambda, target := 1.0, 120.0, 30.0, 0.25
	phi, err := RequiredShare(lambda, c, mu, target)
	if err != nil {
		t.Fatal(err)
	}
	q := MM1{Phi: phi, C: c, Mu: mu}
	d, err := q.Delay(lambda)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-target) > 1e-9 {
		t.Fatalf("delay at required share = %g, want %g", d, target)
	}
}

func TestRequiredShareZeroLoadReserves(t *testing.T) {
	// The paper's linearization reserves capacity even at zero load.
	phi, err := RequiredShare(0, 1, 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if phi <= 0 {
		t.Fatalf("zero-load share = %g, want positive reservation", phi)
	}
}

func TestRequiredShareErrors(t *testing.T) {
	if _, err := RequiredShare(1, 1, 100, 0); err == nil {
		t.Fatal("want error on zero target")
	}
	if _, err := RequiredShare(1, 0, 100, 1); err == nil {
		t.Fatal("want error on zero capacity")
	}
	if _, err := RequiredShare(-1, 1, 100, 1); err == nil {
		t.Fatal("want error on negative rate")
	}
}

func TestMaxRate(t *testing.T) {
	// phi*C*mu = 50, 1/D = 10 → 40.
	if r := MaxRate(0.5, 1, 100, 0.1); math.Abs(r-40) > 1e-12 {
		t.Fatalf("MaxRate = %g, want 40", r)
	}
	if r := MaxRate(0.001, 1, 100, 0.1); r != 0 {
		t.Fatalf("infeasible share should give 0, got %g", r)
	}
	if r := MaxRate(1, 1, 100, 0); r != 0 {
		t.Fatalf("zero target should give 0, got %g", r)
	}
}

// Property: RequiredShare and MaxRate are inverses wherever both defined.
func TestShareRateInverseQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 0.5 + rng.Float64()*2
		mu := 10 + rng.Float64()*200
		target := 0.05 + rng.Float64()
		lambda := rng.Float64() * 50
		phi, err := RequiredShare(lambda, c, mu, target)
		if err != nil {
			return false
		}
		back := MaxRate(phi, c, mu, target)
		return math.Abs(back-lambda) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: delay is increasing in lambda and decreasing in phi.
func TestDelayMonotoneQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mu := 10 + rng.Float64()*100
		phi := 0.2 + rng.Float64()*0.8
		q := MM1{Phi: phi, C: 1, Mu: mu}
		max := q.ServiceRate() * 0.95
		l1 := rng.Float64() * max * 0.5
		l2 := l1 + rng.Float64()*(max-l1)
		d1, err1 := q.Delay(l1)
		d2, err2 := q.Delay(l2)
		if err1 != nil || err2 != nil {
			return false
		}
		if d2 < d1-1e-12 {
			return false
		}
		q2 := MM1{Phi: math.Min(1, phi*1.1), C: 1, Mu: mu}
		d3, err := q2.Delay(l1)
		return err == nil && d3 <= d1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMMCErlangC(t *testing.T) {
	// Single server M/M/1: wait probability equals utilization.
	q := MMC{Servers: 1, Mu: 10}
	pw, err := q.ErlangC(5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pw-0.5) > 1e-9 {
		t.Fatalf("ErlangC(M/M/1, rho=0.5) = %g, want 0.5", pw)
	}
}

func TestMMCDelayMatchesMM1(t *testing.T) {
	// With one server, M/M/c delay must equal the M/M/1 closed form.
	mmc := MMC{Servers: 1, Mu: 10}
	mm1 := MM1{Phi: 1, C: 1, Mu: 10}
	for _, l := range []float64{1, 4, 8, 9.5} {
		d1, err1 := mmc.Delay(l)
		d2, err2 := mm1.Delay(l)
		if err1 != nil || err2 != nil {
			t.Fatalf("lambda=%g: errs %v %v", l, err1, err2)
		}
		if math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("lambda=%g: M/M/c %g vs M/M/1 %g", l, d1, d2)
		}
	}
}

func TestMMCPoolingBeatsSplitting(t *testing.T) {
	// Classic result: one pooled M/M/2 beats two split M/M/1s.
	pooled := MMC{Servers: 2, Mu: 10}
	split := MM1{Phi: 1, C: 1, Mu: 10}
	dPool, err := pooled.Delay(12)
	if err != nil {
		t.Fatal(err)
	}
	dSplit, err := split.Delay(6)
	if err != nil {
		t.Fatal(err)
	}
	if dPool >= dSplit {
		t.Fatalf("pooled %g should beat split %g", dPool, dSplit)
	}
}

func TestMMCErrors(t *testing.T) {
	if _, err := (MMC{Servers: 0, Mu: 10}).ErlangC(1); err == nil {
		t.Fatal("want error for zero servers")
	}
	if _, err := (MMC{Servers: 2, Mu: 10}).ErlangC(-1); err == nil {
		t.Fatal("want error for negative rate")
	}
	if _, err := (MMC{Servers: 2, Mu: 10}).Delay(25); !errors.Is(err, ErrUnstable) {
		t.Fatal("want unstable")
	}
	if (MMC{Servers: 2, Mu: 10}).Stable(25) {
		t.Fatal("should be unstable")
	}
	if !(MMC{Servers: 2, Mu: 10}).Stable(15) {
		t.Fatal("should be stable")
	}
}

func TestMM1Stable(t *testing.T) {
	q := MM1{Phi: 1, C: 1, Mu: 10}
	if !q.Stable(9.9) || q.Stable(10) || q.Stable(-1) {
		t.Fatal("Stable boundary wrong")
	}
}

func TestMG1ReducesToMM1(t *testing.T) {
	// CV = 1 (exponential) must reproduce the M/M/1 closed form.
	g := MG1{Phi: 0.5, C: 1, Mu: 100, CV: 1}
	m := MM1{Phi: 0.5, C: 1, Mu: 100}
	for _, lam := range []float64{0, 10, 30, 45} {
		dg, err1 := g.Delay(lam)
		dm, err2 := m.Delay(lam)
		if err1 != nil || err2 != nil {
			t.Fatalf("lambda %g: %v %v", lam, err1, err2)
		}
		if math.Abs(dg-dm) > 1e-12 {
			t.Fatalf("lambda %g: M/G/1 %g vs M/M/1 %g", lam, dg, dm)
		}
	}
}

func TestMG1Deterministic(t *testing.T) {
	// CV = 0 (M/D/1): the queueing term is exactly half of M/M/1's.
	g := MG1{Phi: 1, C: 1, Mu: 10, CV: 0}
	lam := 5.0
	d, err := g.Delay(lam)
	if err != nil {
		t.Fatal(err)
	}
	// 1/mu + rho/(2 mu (1-rho)) = 0.1 + 0.5/(2*10*0.5) = 0.15.
	if math.Abs(d-0.15) > 1e-12 {
		t.Fatalf("M/D/1 delay %g, want 0.15", d)
	}
}

func TestMG1BurstyWorse(t *testing.T) {
	steady := MG1{Phi: 1, C: 1, Mu: 10, CV: 0}
	bursty := MG1{Phi: 1, C: 1, Mu: 10, CV: 2}
	ds, _ := steady.Delay(6)
	db, _ := bursty.Delay(6)
	if db <= ds {
		t.Fatalf("bursty %g not worse than deterministic %g", db, ds)
	}
	infl, err := bursty.DelayInflation(6)
	if err != nil {
		t.Fatal(err)
	}
	if infl <= 1 {
		t.Fatalf("CV=2 inflation %g, want > 1", infl)
	}
	defl, err := steady.DelayInflation(6)
	if err != nil {
		t.Fatal(err)
	}
	if defl >= 1 {
		t.Fatalf("CV=0 inflation %g, want < 1", defl)
	}
}

func TestMG1Errors(t *testing.T) {
	g := MG1{Phi: 1, C: 1, Mu: 10, CV: 1}
	if _, err := g.Delay(-1); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := g.Delay(10); !errors.Is(err, ErrUnstable) {
		t.Fatal("want unstable")
	}
	if _, err := (MG1{Phi: 1, C: 1, Mu: 10, CV: -1}).Delay(1); err == nil {
		t.Fatal("negative CV accepted")
	}
	if g.Stable(10) || !g.Stable(9) {
		t.Fatal("Stable boundary wrong")
	}
}

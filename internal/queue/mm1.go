// Package queue implements the queueing-theoretic delay models the paper
// builds on. The dispatcher treats each (request type, server) pair as an
// M/M/1 queue whose service rate is the CPU share φ granted to the type
// times the server capacity C times the type's full-capacity rate μ
// (paper Eq. 1):
//
//	R = 1 / (φ·C·μ − λ)
//
// The package provides the forward model, its inverse forms (which the
// planner uses to linearize the deadline constraint), and an M/M/c
// Erlang-C extension used by the heterogeneous-cluster example.
package queue

import (
	"errors"
	"fmt"
	"math"
)

// ErrUnstable is returned when the offered load meets or exceeds the
// effective service rate, i.e. the queue has no steady state.
var ErrUnstable = errors.New("queue: arrival rate >= service rate (unstable)")

// MM1 describes one M/M/1 station: a server of capacity C serving one
// request type at full-capacity rate Mu under CPU share Phi.
type MM1 struct {
	Phi float64 // CPU share in [0, 1]
	C   float64 // server capacity (paper normalizes to 1)
	Mu  float64 // service rate at full capacity, requests per time unit
}

// ServiceRate returns the effective service rate φ·C·μ.
func (q MM1) ServiceRate() float64 { return q.Phi * q.C * q.Mu }

// Delay returns the expected response time at arrival rate lambda
// (paper Eq. 1). It returns ErrUnstable when lambda ≥ φCμ.
func (q MM1) Delay(lambda float64) (float64, error) {
	if lambda < 0 {
		return 0, fmt.Errorf("queue: negative arrival rate %g", lambda)
	}
	s := q.ServiceRate()
	if lambda >= s {
		return math.Inf(1), ErrUnstable
	}
	return 1 / (s - lambda), nil
}

// Utilization returns λ/(φCμ), the fraction of the granted share in use.
func (q MM1) Utilization(lambda float64) float64 {
	s := q.ServiceRate()
	if s == 0 {
		if lambda == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return lambda / s
}

// Stable reports whether arrival rate lambda admits a steady state.
func (q MM1) Stable(lambda float64) bool { return lambda >= 0 && lambda < q.ServiceRate() }

// QueueLength returns the expected number of requests in the system
// (waiting plus in service), L = ρ/(1−ρ).
func (q MM1) QueueLength(lambda float64) (float64, error) {
	rho := q.Utilization(lambda)
	if rho >= 1 {
		return math.Inf(1), ErrUnstable
	}
	return rho / (1 - rho), nil
}

// RequiredShare returns the minimum CPU share φ that keeps the expected
// delay of a type within target at arrival rate lambda on a server of
// capacity c and full-capacity rate mu. This is the planner's linearized
// form of paper Constraint 6:
//
//	1/(φCμ − λ) ≤ D  ⇔  φ ≥ (λ + 1/D) / (Cμ)
//
// Note the paper applies this even at λ = 0, reserving a sliver of
// capacity per admitted type; callers decide whether to keep that
// behaviour (the faithful default) or skip idle types.
func RequiredShare(lambda, c, mu, target float64) (float64, error) {
	if target <= 0 {
		return 0, fmt.Errorf("queue: non-positive delay target %g", target)
	}
	if c <= 0 || mu <= 0 {
		return 0, fmt.Errorf("queue: non-positive capacity c=%g mu=%g", c, mu)
	}
	if lambda < 0 {
		return 0, fmt.Errorf("queue: negative arrival rate %g", lambda)
	}
	return (lambda + 1/target) / (c * mu), nil
}

// MaxRate returns the largest arrival rate that a share φ can serve while
// keeping the expected delay within target: λ ≤ φCμ − 1/D.
// It returns 0 when the share cannot even meet the target at zero load.
func MaxRate(phi, c, mu, target float64) float64 {
	if target <= 0 {
		return 0
	}
	r := phi*c*mu - 1/target
	if r < 0 {
		return 0
	}
	return r
}

// MMC describes an M/M/c station with c identical servers, each of service
// rate Mu. It extends the paper's per-server model to pooled clusters.
type MMC struct {
	Servers int
	Mu      float64
}

// ErlangC returns the probability that an arriving request must wait,
// computed with the numerically stable iterative form of the Erlang-C
// formula.
func (q MMC) ErlangC(lambda float64) (float64, error) {
	c := q.Servers
	if c < 1 {
		return 0, fmt.Errorf("queue: M/M/c needs at least one server, got %d", c)
	}
	a := lambda / q.Mu // offered load in Erlangs
	if a >= float64(c) {
		return 1, ErrUnstable
	}
	if lambda < 0 {
		return 0, fmt.Errorf("queue: negative arrival rate %g", lambda)
	}
	// Iterative Erlang-B, then convert to Erlang-C.
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	return b / (1 - rho*(1-b)), nil
}

// Delay returns the expected response time of the M/M/c system, the sum of
// the expected wait (Erlang-C over remaining capacity) and the service time.
func (q MMC) Delay(lambda float64) (float64, error) {
	pw, err := q.ErlangC(lambda)
	if err != nil {
		return math.Inf(1), err
	}
	wait := pw / (float64(q.Servers)*q.Mu - lambda)
	return wait + 1/q.Mu, nil
}

// Stable reports whether the pooled station admits a steady state.
func (q MMC) Stable(lambda float64) bool {
	return lambda >= 0 && lambda < float64(q.Servers)*q.Mu
}

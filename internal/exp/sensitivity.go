package exp

import (
	"fmt"

	"profitlb/internal/core"
	"profitlb/internal/queuesim"
	"profitlb/internal/report"
)

func init() {
	register(&Experiment{
		ID:    "abl7-shadowprices",
		Title: "Extension: shadow prices of CPU share and demand (LP duals)",
		Paper: "beyond the paper (capacity-planning sensitivity)",
		Run:   runAblShadowPrices,
	})
	register(&Experiment{
		ID:    "val2-utility",
		Title: "Validation: mean-delay vs per-request TUF utility semantics",
		Paper: "beyond the paper (SLA semantics, cf. paper refs [17][23])",
		Run:   runValUtility,
	})
}

// runAblShadowPrices prices the scarce resources of the Section VI day
// hour by hour: the dual of each center's share constraint says what one
// more unit of per-server CPU share would earn, i.e. where expansion pays.
func runAblShadowPrices() (*Result, error) {
	ts := NewTraceSetup()
	sys := ts.Sys
	planner := core.NewOptimized()
	L := sys.L()
	series := make([][]float64, L)
	names := make([]string, L)
	for l := 0; l < L; l++ {
		series[l] = make([]float64, 24)
		names[l] = sys.Centers[l].Name + "($/share)"
	}
	totals := make([]float64, L)
	for slot := 0; slot < 24; slot++ {
		arr := make([][]float64, sys.S())
		for s := 0; s < sys.S(); s++ {
			arr[s] = make([]float64, sys.K())
			for k := 0; k < sys.K(); k++ {
				arr[s][k] = ts.Traces[s].At(slot, k)
			}
		}
		prices := make([]float64, L)
		for l := 0; l < L; l++ {
			prices[l] = ts.Prices[l].At(slot)
		}
		sens, err := planner.Sensitivity(&core.Input{Sys: sys, Arrivals: arr, Prices: prices})
		if err != nil {
			return nil, err
		}
		for l := 0; l < L; l++ {
			series[l][slot] = sens.ShareValue[l]
			totals[l] += sens.ShareValue[l]
		}
	}
	t := report.SeriesTable("Hourly shadow price of per-server CPU share", "hour",
		report.SlotLabels(0, 24), names, series...)
	best, bestV := 0, totals[0]
	for l := 1; l < L; l++ {
		if totals[l] > bestV {
			best, bestV = l, totals[l]
		}
	}
	sum := report.NewTable("Day totals", "center", "Σ share value($)")
	for l := 0; l < L; l++ {
		sum.AddRow(sys.Centers[l].Name, report.F(totals[l]))
	}
	return &Result{
		ID: "abl7-shadowprices", Title: "Shadow prices",
		Tables: []*report.Table{t, sum},
		Notes: []string{fmt.Sprintf(
			"%s has the highest accumulated share value ($%s/day): the LP duals point there for expansion",
			sys.Centers[best].Name, report.F(bestV))},
	}, nil
}

// runValUtility quantifies the gap between the paper's mean-delay SLA
// semantics (utility of the expected delay) and per-request TUF semantics
// (expected utility of each request's delay) on a planned Section VII
// slot, via discrete-event replay.
func runValUtility() (*Result, error) {
	ts := NewTwoLevelSetup()
	in := &core.Input{
		Sys:      ts.Sys,
		Arrivals: [][]float64{{ts.Traces[0].At(15, 0), ts.Traces[0].At(15, 1)}},
		Prices:   []float64{ts.Prices[0].At(15), ts.Prices[1].At(15)},
	}
	plan, err := core.NewOptimized().Plan(in)
	if err != nil {
		return nil, err
	}
	const arrivals = 300000
	checks, err := queuesim.UtilityGap(ts.Sys, plan, arrivals, 515)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(fmt.Sprintf("Utility semantics on realized delays (%d arrivals per queue)", arrivals),
		"center", "type", "level", "rate(#/h)", "U(E[R]) $", "E[U(R)] $", "per-request share")
	for _, c := range checks {
		ratio := 0.0
		if c.MeanDelayUtility > 0 {
			ratio = c.PerRequestUtility / c.MeanDelayUtility
		}
		t.AddRow(
			ts.Sys.Centers[c.Center].Name,
			ts.Sys.Classes[c.Class].Name,
			fmt.Sprintf("%d", c.Level+1),
			report.F(c.Rate),
			report.F(c.MeanDelayUtility), report.F(c.PerRequestUtility),
			report.Pct(ratio))
	}
	meanRev, perRev := queuesim.RevenueRates(checks)
	return &Result{
		ID: "val2-utility", Title: "Utility semantics gap",
		Tables: []*report.Table{t},
		Notes: []string{
			fmt.Sprintf("slot revenue rate: $%s/h under the paper's mean-delay SLA vs $%s/h if billed per request (%s)",
				report.F(meanRev), report.F(perRev), report.Pct(perRev/meanRev)),
			"the two semantics diverge in both directions: top-level commodities lose their exponential delay tail to lower levels, while commodities planned at a loose level serve many individual requests fast enough to earn the higher step — the quantitative difference between this paper's mean-delay SLA and per-job TUF scheduling (its ref [17])",
		},
	}, nil
}

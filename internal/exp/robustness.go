package exp

import (
	"fmt"

	"profitlb/internal/core"
	"profitlb/internal/des"
	"profitlb/internal/queue"
	"profitlb/internal/report"
)

func init() {
	register(&Experiment{
		ID:    "val4-servicecv",
		Title: "Validation: M/M/1 plans under non-exponential service times",
		Paper: "beyond the paper (M/G/1 robustness of the delay model)",
		Run:   runValServiceCV,
	})
}

// runValServiceCV realizes the Section VII plans under service-time
// distributions the paper's M/M/1 model does not cover, sweeping the
// coefficient of variation from near-deterministic to very bursty, and
// compares the realized miss rates and dollars with the Pollaczek–
// Khinchine prediction of the delay inflation.
func runValServiceCV() (*Result, error) {
	ts := NewTwoLevelSetup()
	t := report.NewTable("Service-time CV sweep (request-level realization, 14:00-19:00)",
		"service CV", "realized net($)", "vs exponential", "miss rate r1", "miss rate r2", "P-K delay inflation")
	var expNet float64
	type rowData struct {
		cv       float64
		net      float64
		miss     [2]float64
		inflated float64
	}
	var rows []rowData
	for _, cv := range []float64{0.25, 0.5, 1, 2, 3} {
		cfg := des.Config{Sim: ts.Config(), Planner: core.NewOptimized(), Seed: 777, ServiceCV: cv}
		rep, err := des.Run(cfg)
		if err != nil {
			return nil, err
		}
		// P-K inflation of the mean delay at a representative utilization
		// (ρ = 0.8, the planner's typical operating point at the deadline).
		g := queue.MG1{Phi: 1, C: 1, Mu: 1, CV: cv}
		infl, err := g.DelayInflation(0.8)
		if err != nil {
			return nil, err
		}
		rows = append(rows, rowData{
			cv: cv, net: rep.TotalRealized(),
			miss: [2]float64{rep.MissRate(0), rep.MissRate(1)}, inflated: infl,
		})
		if cv == 1 {
			expNet = rep.TotalRealized()
		}
	}
	for _, r := range rows {
		t.AddRow(report.F(r.cv), report.F(r.net), report.Pct(r.net/expNet),
			report.Pct(r.miss[0]), report.Pct(r.miss[1]), report.F(r.inflated))
	}
	first, last := rows[0], rows[len(rows)-1]
	return &Result{
		ID: "val4-servicecv", Title: "Service-distribution robustness",
		Tables: []*report.Table{t},
		Notes: []string{
			fmt.Sprintf("steadier-than-exponential service (CV %.2g) cuts deadline misses to %s/%s; burstier service (CV %.2g) raises them to %s/%s — exactly the Pollaczek–Khinchine direction",
				first.cv, report.Pct(first.miss[0]), report.Pct(first.miss[1]),
				last.cv, report.Pct(last.miss[0]), report.Pct(last.miss[1])),
			"the paper's M/M/1 guarantees are conservative for steady services and optimistic for bursty ones; a deployment should measure its service CV before trusting the deadlines",
		},
	}, nil
}

package exp

import (
	"fmt"

	"profitlb/internal/core"
	"profitlb/internal/datacenter"
	"profitlb/internal/fault"
	"profitlb/internal/market"
	"profitlb/internal/mpc"
	"profitlb/internal/report"
	"profitlb/internal/resilient"
	"profitlb/internal/sim"
	"profitlb/internal/tuf"
	"profitlb/internal/workload"
)

func init() {
	register(&Experiment{
		ID:    "mpc1-priceshift",
		Title: "Extension: online MPC vs myopic over the Houston price vibration",
		Paper: "beyond the paper (receding-horizon planning; abl13-defer is the clairvoyant bound)",
		Run:   runMPCPriceShift,
	})
	register(&Experiment{
		ID:    "mpc2-faultdefer",
		Title: "Extension: deferral vs shed when a planner fault hits the backlog window",
		Paper: "beyond the paper (MPC backlog under the resilience ladder)",
		Run:   runMPCFaultDefer,
	})
}

// mpcSystem is the deferral study's topology: a web class that must run
// in its arrival hour and an energy-heavy batch class (utility 5, 40 kWh
// per krequest) that turns loss-making whenever electricity crosses
// ~0.124 $/kWh — exactly the Houston afternoon spikes.
func mpcSystem() *datacenter.System {
	return &datacenter.System{
		Classes: []datacenter.RequestClass{
			{Name: "web", TUF: tuf.MustNew([]tuf.Level{{Utility: 10, Deadline: 0.2}}), TransferCostPerMile: 0.0005},
			{Name: "batch", TUF: tuf.MustNew([]tuf.Level{{Utility: 5, Deadline: 1.0}}), TransferCostPerMile: 0.0005},
		},
		FrontEnds: []datacenter.FrontEnd{{Name: "fe", DistanceMiles: []float64{100}}},
		Centers: []datacenter.DataCenter{{
			Name: "dc", Servers: 8, Capacity: 1,
			ServiceRate:      []float64{120, 100},
			EnergyPerRequest: []float64{1.0, 40},
		}},
	}
}

func mpcConfig(prices *market.PriceTrace, start, slots int) sim.Config {
	return sim.Config{
		Sys:       mpcSystem(),
		Traces:    []*workload.Trace{workload.Constant("fe", []float64{300, 200}, start+slots)},
		Prices:    []*market.PriceTrace{prices},
		Slots:     slots,
		StartSlot: start,
	}
}

// runMPCPriceShift replays the 13:00–21:00 Houston vibration window
// (spikes at 14/16/18h, valleys in between) under the online MPC planner
// and the paper's myopic one, and tables where each puts the batch work.
// Nothing is clairvoyant: the MPC lane learns prices and arrivals from
// the slots it has already seen.
func runMPCPriceShift() (*Result, error) {
	const start, slots = 13, 8
	cfg := mpcConfig(market.Houston(), start, slots)
	mp := mpc.New(mpc.Config{Horizon: 5, MaxDefer: []int{0, 2}, EndSlot: start + slots})
	reports, err := sim.Compare(cfg, mp, core.NewOptimized())
	if err != nil {
		return nil, err
	}
	m, myo := reports[0], reports[1]

	hours := report.NewTable("Batch placement, Houston 13:00-21:00 (spikes at 14/16/18h)",
		"hour", "price($/kWh)", "batch myopic", "batch mpc", "deferred", "backlog out")
	houston := market.Houston()
	for i := range m.Slots {
		t := start + i
		var deferredNew, backlogOut float64
		if b := m.Slots[i].Backlog; b != nil {
			deferredNew = core.Total(b.DeferredNew)
			backlogOut = core.Total(b.BacklogOut)
		}
		hours.AddRow(fmt.Sprintf("%d", t), fmt.Sprintf("%.3f", houston.At(t)),
			report.F(myo.Slots[i].ServedByType[1]), report.F(m.Slots[i].ServedByType[1]),
			report.F(deferredNew), report.F(backlogOut))
	}

	sum := report.NewTable("Window outcome", "planner", "net($)", "batch completion", "lost($)")
	sum.AddRow("mpc h=5 defer<=2", report.F(m.TotalNetProfit()),
		report.Pct(m.CompletionRate(1)), report.F(m.TotalLostRevenue()))
	sum.AddRow("myopic", report.F(myo.TotalNetProfit()),
		report.Pct(myo.CompletionRate(1)), report.F(myo.TotalLostRevenue()))

	deferred, drained, _, shed := m.DeferralTotals()
	return &Result{
		ID: "mpc1-priceshift", Title: "Online temporal shifting",
		Tables: []*report.Table{hours, sum},
		Notes: []string{
			fmt.Sprintf("the myopic planner drops the batch class at every spike; the MPC lane defers %s req/h into the valleys and drains %s with %s shed, lifting window net profit by %s",
				report.F(deferred), report.F(drained), report.F(shed),
				report.Pct(m.TotalNetProfit()/myo.TotalNetProfit()-1)),
			"abl13-defer solves the same trade with the whole day visible up front; this run matches its mechanism online, from forecasts only",
		},
	}, nil
}

// mpcStormPrices: cheap, two consecutive spikes, cheap again. Work
// deferred at the first spike comes due at the second — exactly when the
// planner fault fires.
func mpcStormPrices() *market.PriceTrace {
	return &market.PriceTrace{Name: "storm", Prices: []float64{0.08, 0.148, 0.139, 0.08, 0.08, 0.08}}
}

// runMPCFaultDefer compares the two ends of the deferral-versus-shed
// trade: a planner fault fires at slot 2, while the backlog deferred at
// slot 1 is due. Behind the resilience ladder the fallback tier knows
// nothing about the backlog, so the commit hook force-dispatches the due
// bucket; without a ladder the slot sheds and the bucket expires as a
// deadline miss billed to lost revenue.
func runMPCFaultDefer() (*Result, error) {
	sched := func() *fault.Schedule {
		return &fault.Schedule{Events: []fault.Event{{Kind: fault.PlannerError, From: 2, To: 2}}}
	}
	mc := mpc.Config{Horizon: 4, MaxDefer: []int{0, 1}, EndSlot: 6}

	// Lane 1: the fault is absorbed by the resilient chain.
	rescueCfg := mpcConfig(mpcStormPrices(), 0, 6)
	rescueCfg.Faults = sched()
	rescued, err := sim.Run(rescueCfg,
		resilient.Wrap(&fault.Injector{Planner: mpc.New(mc), Sched: rescueCfg.Faults}))
	if err != nil {
		return nil, err
	}
	// Lane 2: no ladder — the faulted slot sheds everything, backlog included.
	shedCfg := mpcConfig(mpcStormPrices(), 0, 6)
	shedCfg.Faults = sched()
	shedCfg.DegradeOnFailure = true
	unrescued, err := sim.Run(shedCfg, &fault.Injector{Planner: mpc.New(mc), Sched: shedCfg.Faults})
	if err != nil {
		return nil, err
	}

	t := report.NewTable("Planner fault at slot 2 with a due backlog bucket",
		"lane", "net($)", "deferred", "forced", "shed", "lost($)", "degraded")
	for _, ln := range []struct {
		name string
		rep  *sim.Report
	}{{"resilient chain", rescued}, {"no rescue", unrescued}} {
		deferred, _, forced, shed := ln.rep.DeferralTotals()
		t.AddRow(ln.name, report.F(ln.rep.TotalNetProfit()),
			report.F(deferred), report.F(forced), report.F(shed),
			report.F(ln.rep.TotalLostRevenue()),
			fmt.Sprintf("%d/%d", ln.rep.DegradedSlots(), len(ln.rep.Slots)))
	}

	_, _, forced, rescShed := rescued.DeferralTotals()
	_, _, _, bareShed := unrescued.DeferralTotals()
	return &Result{
		ID: "mpc2-faultdefer", Title: "Deferral under faults",
		Tables: []*report.Table{t},
		Notes: []string{
			fmt.Sprintf("the ladder's fallback tier is backlog-blind, yet the commit hook force-dispatches %s req/h of due work so no deadline is missed (%s shed); without rescue the same fault sheds %s and bills the expired bucket to lost revenue",
				report.F(forced), report.F(rescShed), report.F(bareShed)),
			"deferral widens the blast radius of a fault — work parked across a slot boundary is hostage to the next slot's planner — which is why the backlog plane degrades to forced drains instead of trusting any single plan",
		},
	}, nil
}

package exp

import (
	"fmt"

	"profitlb/internal/report"
	"profitlb/internal/stats"
)

func init() {
	register(&Experiment{
		ID:    "fig5",
		Title: "Request traces at the four front-end servers",
		Paper: "Figure 5",
		Run:   runFig5,
	})
	register(&Experiment{
		ID:    "tab4",
		Title: "Processing capacities of each data center",
		Paper: "Table IV",
		Run:   runTab4,
	})
	register(&Experiment{
		ID:    "tab5",
		Title: "Distances among front-end servers and data centers",
		Paper: "Table V",
		Run:   runTab5,
	})
	register(&Experiment{
		ID:    "tab6",
		Title: "Processing cost at each data center per service type",
		Paper: "Table VI",
		Run:   runTab6,
	})
	register(&Experiment{
		ID:    "tab7",
		Title: "TUFs for each type of request",
		Paper: "Table VII",
		Run:   runTab7,
	})
	register(&Experiment{
		ID:    "fig6",
		Title: "Net profits with real-trace workload and one-level TUFs",
		Paper: "Figure 6",
		Run:   runFig6,
	})
	register(&Experiment{
		ID:    "fig7",
		Title: "Request-1 dispatching across the three data centers",
		Paper: "Figure 7",
		Run:   runFig7,
	})
}

func runFig5() (*Result, error) {
	ts := NewTraceSetup()
	var tables []*report.Table
	for s, tr := range ts.Traces {
		series := make([][]float64, tr.Types())
		names := make([]string, tr.Types())
		for k := 0; k < tr.Types(); k++ {
			names[k] = fmt.Sprintf("request%d(#/h)", k+1)
			col := make([]float64, tr.Slots())
			for slot := 0; slot < tr.Slots(); slot++ {
				col[slot] = tr.At(slot, k)
			}
			series[k] = col
		}
		tables = append(tables, report.SeriesTable(
			fmt.Sprintf("(%c) Requests at front-end server %d", 'a'+s, s+1),
			"hour", report.SlotLabels(0, tr.Slots()), names, series...))
	}
	// Characterize the traces: the diurnality and burstiness that drive
	// the evaluation.
	chart := report.NewTable("Trace characterization (type 0 of each front-end)",
		"front-end", "mean(#/h)", "CV", "peak/mean", "lag-1 autocorr")
	for s, tr := range ts.Traces {
		sums, err := stats.ForTrace(tr)
		if err != nil {
			return nil, err
		}
		sm := sums[0]
		chart.AddRow(ts.Sys.FrontEnds[s].Name,
			report.F(sm.Summary.Mean), report.F(sm.Summary.CV),
			report.F(sm.Summary.PeakToMean), report.F(sm.Lag1))
	}
	tables = append(tables, chart)
	return &Result{
		ID: "fig5", Title: "Request traces", Tables: tables,
		Notes: []string{"diurnal World-Cup-like stand-in; the three types are time-shifted copies, as in the paper"},
	}, nil
}

func runTab4() (*Result, error) {
	ts := NewTraceSetup()
	t := report.NewTable("Processing capacities (per hour, whole center)",
		"type", "datacenter1", "datacenter2", "datacenter3")
	for k := 0; k < 3; k++ {
		row := []string{fmt.Sprintf("request%d(#/hour)", k+1)}
		for l := 0; l < 3; l++ {
			dc := ts.Sys.Centers[l]
			row = append(row, report.F(dc.ServiceRate[k]*float64(dc.Servers)))
		}
		t.AddRow(row...)
	}
	return &Result{ID: "tab4", Title: "Processing capacities", Tables: []*report.Table{t},
		Notes: []string{"datacenter1 and datacenter2 tie on request1; datacenter3 processes it fastest (drives Fig. 7)"}}, nil
}

func runTab5() (*Result, error) {
	ts := NewTraceSetup()
	t := report.NewTable("Distances (miles)", "front-end", "datacenter1", "datacenter2", "datacenter3")
	for _, fe := range ts.Sys.FrontEnds {
		t.AddRow(fe.Name,
			report.F(fe.DistanceMiles[0]), report.F(fe.DistanceMiles[1]), report.F(fe.DistanceMiles[2]))
	}
	return &Result{ID: "tab5", Title: "Distances", Tables: []*report.Table{t},
		Notes: []string{"datacenter2 is the farthest from every front-end, as in the paper"}}, nil
}

func runTab6() (*Result, error) {
	ts := NewTraceSetup()
	t := report.NewTable("Processing cost (kWh per request)",
		"type", "datacenter1", "datacenter2", "datacenter3")
	for k := 0; k < 3; k++ {
		row := []string{fmt.Sprintf("request%d(kWh)", k+1)}
		for l := 0; l < 3; l++ {
			row = append(row, report.F(ts.Sys.Centers[l].EnergyPerRequest[k]))
		}
		t.AddRow(row...)
	}
	return &Result{ID: "tab6", Title: "Processing costs", Tables: []*report.Table{t},
		Notes: []string{"around 0.0003 kWh per request, per Google's energy-per-search figure the paper cites"}}, nil
}

func runTab7() (*Result, error) {
	ts := NewTraceSetup()
	t := report.NewTable("One-level TUFs", "type", "max value($)", "deadline(hour)", "transfer($/mile)")
	for k, cls := range ts.Sys.Classes {
		t.AddRow(fmt.Sprintf("request%d", k+1),
			report.F(cls.TUF.MaxUtility()), report.F(cls.TUF.Deadline()), report.F(cls.TransferCostPerMile))
	}
	return &Result{ID: "tab7", Title: "TUFs", Tables: []*report.Table{t}}, nil
}

func runFig6() (*Result, error) {
	ts := NewTraceSetup()
	opt, bal, err := compare(ts.Config())
	if err != nil {
		return nil, err
	}
	t := profitTable("Hourly net profit over the trace day", 0, opt, bal)
	// The paper observes near-equal profits at the end of the traces,
	// when the workload tails off.
	last := len(opt.Slots) - 1
	tailGap := opt.Slots[last].NetProfit - bal.Slots[last].NetProfit
	peakGap := 0.0
	for i := range opt.Slots {
		if g := opt.Slots[i].NetProfit - bal.Slots[i].NetProfit; g > peakGap {
			peakGap = g
		}
	}
	return &Result{
		ID: "fig6", Title: "Net profits, one-level TUFs", Tables: []*report.Table{t},
		Notes: []string{
			gainNote(opt, bal),
			fmt.Sprintf("hourly gap shrinks at the trace tail: final-slot gap $%s vs peak gap $%s",
				report.F(tailGap), report.F(peakGap)),
		},
	}, nil
}

func runFig7() (*Result, error) {
	ts := NewTraceSetup()
	cfg := ts.Config()
	opt, bal, err := compare(cfg)
	if err != nil {
		return nil, err
	}
	labels := report.SlotLabels(0, len(opt.Slots))
	mk := func(title string, rep interface {
		CenterSeries(k, l int) []float64
	}) *report.Table {
		return report.SeriesTable(title, "hour", labels,
			[]string{"datacenter1", "datacenter2", "datacenter3"},
			rep.CenterSeries(0, 0), rep.CenterSeries(0, 1), rep.CenterSeries(0, 2))
	}
	tOpt := mk("Request1 allocation per data center (optimized)", opt)
	tBal := mk("Request1 allocation per data center (balanced)", bal)

	var dc [3]float64
	for i := range opt.Slots {
		for l := 0; l < 3; l++ {
			dc[l] += opt.Slots[i].CenterServed[0][l]
		}
	}
	return &Result{
		ID: "fig7", Title: "Request-1 dispatching", Tables: []*report.Table{tOpt, tBal},
		Notes: []string{fmt.Sprintf(
			"optimized totals: dc1 %s, dc2 %s, dc3 %s — datacenter2 (farthest) receives far fewer request1, as in the paper",
			report.F(dc[0]), report.F(dc[1]), report.F(dc[2]))},
	}, nil
}

package exp

import (
	"fmt"

	"profitlb/internal/baseline"
	"profitlb/internal/core"
	"profitlb/internal/report"
	"profitlb/internal/sim"
	"profitlb/internal/workload"
)

func init() {
	register(&Experiment{
		ID:    "abl17-week",
		Title: "Extension: a full week with weekday/weekend seasonality",
		Paper: "beyond the paper (168-slot endurance run)",
		Run:   runAblWeek,
	})
}

// runAblWeek stretches the Section VI system over 168 hourly slots with
// weekday/weekend amplitude: an endurance check that the per-slot
// optimization stays ahead of the baseline across regime changes, and a
// look at how the gap moves between busy weekdays and quiet weekends.
func runAblWeek() (*Result, error) {
	ts := NewTraceSetup()
	traces := make([]*workload.Trace, len(ts.Traces))
	for s := range traces {
		week := workload.WeekLike(workload.WeekConfig{
			Daily: workload.WorldCupConfig{Base: 650 + 100*float64(s)},
			Seed:  int64(900 + s),
		})
		traces[s] = workload.ShiftTypes(ts.Sys.FrontEnds[s].Name, week, 3, 4)
	}
	cfg := sim.Config{Sys: ts.Sys, Traces: traces, Prices: ts.Prices, Slots: 168}
	reports, err := sim.Compare(cfg, core.NewOptimized(), baseline.NewBalanced())
	if err != nil {
		return nil, err
	}
	opt, bal := reports[0], reports[1]

	t := report.NewTable("Per-day net profit over the week",
		"day", "optimized($)", "balanced($)", "gain")
	days := []string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}
	var weekdayGain, weekendGain float64
	for d := 0; d < 7; d++ {
		var o, b float64
		for h := 0; h < 24; h++ {
			o += opt.Slots[d*24+h].NetProfit
			b += bal.Slots[d*24+h].NetProfit
		}
		gain := report.Frac(o, b) - 1
		if d < 5 {
			weekdayGain += gain / 5
		} else {
			weekendGain += gain / 2
		}
		t.AddRow(days[d], report.F(o), report.F(b), report.Pct(gain))
	}
	t.AddRow("week", report.F(opt.TotalNetProfit()), report.F(bal.TotalNetProfit()),
		report.Pct(report.Frac(opt.TotalNetProfit(), bal.TotalNetProfit())-1))
	return &Result{
		ID: "abl17-week", Title: "Week-long run",
		Tables: []*report.Table{t},
		Notes: []string{fmt.Sprintf(
			"the optimized gain averages %s on weekdays and %s on the quieter weekend — scarcity is where optimization pays, consistent with Fig. 4",
			report.Pct(weekdayGain), report.Pct(weekendGain))},
	}, nil
}

// Package exp defines one runnable experiment per table and figure of the
// paper's evaluation (Sections V–VII) and a registry the CLI and the
// benchmark harness share. Each experiment reconstructs its setup from the
// paper's printed parameters where available and from the documented
// substitutions in DESIGN.md otherwise, runs the Optimized and Balanced
// approaches through the simulator, and renders the same rows/series the
// paper reports.
package exp

import (
	"profitlb/internal/datacenter"
	"profitlb/internal/market"
	"profitlb/internal/sim"
	"profitlb/internal/tuf"
	"profitlb/internal/workload"
)

// BasicSetup reproduces the Section V configuration: 4 front-ends, 3
// request types with constant (one-level) TUFs, 3 heterogeneous data
// centers of 6 homogeneous servers each, synthetic workloads and synthetic
// electricity prices, and no transfer costs ("transferring cost is not
// considered in this basic study"). Rates are per second; the slot scalar
// T converts them to hourly request counts.
type BasicSetup struct {
	Sys    *datacenter.System
	Low    [][]float64 // Table II(a): λ_{k,s} per second, [s][k]
	High   [][]float64 // Table II(b)
	Prices []*market.PriceTrace
}

// NewBasicSetup builds the Section V setup.
func NewBasicSetup() *BasicSetup {
	sys := &datacenter.System{
		SlotHours: 3600, // rates are per second; a slot is one hour
		Classes: []datacenter.RequestClass{
			{Name: "request1", TUF: tuf.MustNew([]tuf.Level{{Utility: 10, Deadline: 0.5}})},
			{Name: "request2", TUF: tuf.MustNew([]tuf.Level{{Utility: 20, Deadline: 0.8}})},
			{Name: "request3", TUF: tuf.MustNew([]tuf.Level{{Utility: 30, Deadline: 1.0}})},
		},
		FrontEnds: []datacenter.FrontEnd{
			{Name: "server1", DistanceMiles: []float64{0, 0, 0}},
			{Name: "server2", DistanceMiles: []float64{0, 0, 0}},
			{Name: "server3", DistanceMiles: []float64{0, 0, 0}},
			{Name: "server4", DistanceMiles: []float64{0, 0, 0}},
		},
		Centers: []datacenter.DataCenter{
			{
				// Table III: C=1, μ = 150/130/110 req/s, cost = 2/4/6 kWh.
				Name: "datacenter1", Servers: 6, Capacity: 1,
				ServiceRate:      []float64{150, 130, 110},
				EnergyPerRequest: []float64{2, 4, 6},
			},
			{
				Name: "datacenter2", Servers: 6, Capacity: 1,
				ServiceRate:      []float64{140, 120, 130},
				EnergyPerRequest: []float64{1, 3, 5},
			},
			{
				Name: "datacenter3", Servers: 6, Capacity: 1,
				ServiceRate:      []float64{120, 130, 160},
				EnergyPerRequest: []float64{1, 3, 6},
			},
		},
	}
	low := [][]float64{
		{60, 30, 15},
		{55, 32, 18},
		{65, 28, 12},
		{60, 31, 16},
	}
	// The high set is deliberately skewed toward request1: the balanced
	// baseline's fixed 1/K share starves the hot type while idling the
	// cold one, which is where the optimized approach's ~16% service gain
	// comes from in the paper.
	high := [][]float64{
		{620, 300, 140},
		{600, 320, 150},
		{640, 280, 130},
		{610, 310, 145},
	}
	// Synthetic prices with distinct bases, phases and strong swings; the
	// kWh-scale per-request energies of Table III make dispatch placement
	// matter at these prices.
	prices := []*market.PriceTrace{
		market.Synthetic(market.SyntheticConfig{Name: "loc1", Base: 1.20, Seed: 11, PeakHour: 15}),
		market.Synthetic(market.SyntheticConfig{Name: "loc2", Base: 2.00, Seed: 12, PeakHour: 18}),
		market.Synthetic(market.SyntheticConfig{Name: "loc3", Base: 1.60, Seed: 13, PeakHour: 12}),
	}
	return &BasicSetup{Sys: sys, Low: low, High: high, Prices: prices}
}

// Config assembles a 24-slot simulation with constant arrival rates drawn
// from the chosen Table II set.
func (b *BasicSetup) Config(high bool) sim.Config {
	rates := b.Low
	if high {
		rates = b.High
	}
	traces := make([]*workload.Trace, len(rates))
	for s, r := range rates {
		traces[s] = workload.Constant(b.Sys.FrontEnds[s].Name, r, 24)
	}
	return sim.Config{Sys: b.Sys, Traces: traces, Prices: b.Prices, Slots: 24}
}

// TraceSetup reproduces the Section VI configuration: the World-Cup-like
// day-long traces of Fig. 5 at 4 front-ends, 3 request types derived by
// time-shifting, one-level TUFs (Table VII), the Tables IV–VI capacities,
// distances and processing costs, and the Fig. 1 electricity prices. Rates
// are per hour; T = 1 hour.
type TraceSetup struct {
	Sys    *datacenter.System
	Traces []*workload.Trace
	Prices []*market.PriceTrace
}

// NewTraceSetup builds the Section VI setup.
func NewTraceSetup() *TraceSetup {
	sys := &datacenter.System{
		Classes: []datacenter.RequestClass{
			// Table VII: max values 10/20/30 $; deadlines in hours.
			// Table: transfer costs 0.003/0.005/0.007 $/mile.
			{Name: "request1", TUF: tuf.MustNew([]tuf.Level{{Utility: 10, Deadline: 0.010}}), TransferCostPerMile: 0.003},
			{Name: "request2", TUF: tuf.MustNew([]tuf.Level{{Utility: 20, Deadline: 0.008}}), TransferCostPerMile: 0.005},
			{Name: "request3", TUF: tuf.MustNew([]tuf.Level{{Utility: 30, Deadline: 0.006}}), TransferCostPerMile: 0.007},
		},
		// Table V: DC2 is farthest from every front-end.
		FrontEnds: []datacenter.FrontEnd{
			{Name: "frontend1", DistanceMiles: []float64{300, 1900, 700}},
			{Name: "frontend2", DistanceMiles: []float64{500, 2100, 900}},
			{Name: "frontend3", DistanceMiles: []float64{400, 2000, 600}},
			{Name: "frontend4", DistanceMiles: []float64{600, 2200, 800}},
		},
		// Table IV: per-DC hourly capacities; per-server μ = capacity / 6.
		// DC1 and DC2 tie on request1; DC3 is fastest for it.
		Centers: []datacenter.DataCenter{
			{
				Name: "datacenter1", Servers: 6, Capacity: 1,
				ServiceRate:      []float64{9000.0 / 6, 8400.0 / 6, 7200.0 / 6},
				EnergyPerRequest: []float64{0.0003, 0.0005, 0.0007},
			},
			{
				Name: "datacenter2", Servers: 6, Capacity: 1,
				ServiceRate:      []float64{9000.0 / 6, 7800.0 / 6, 9600.0 / 6},
				EnergyPerRequest: []float64{0.00028, 0.00052, 0.00068},
			},
			{
				Name: "datacenter3", Servers: 6, Capacity: 1,
				ServiceRate:      []float64{15000.0 / 6, 9000.0 / 6, 8400.0 / 6},
				EnergyPerRequest: []float64{0.00032, 0.00048, 0.00072},
			},
		},
	}
	// Fig. 5: four day-long traces with diurnal swing and a flash crowd,
	// shifted into three request types per front-end.
	seeds := []int64{101, 102, 103, 104}
	traces := make([]*workload.Trace, len(seeds))
	for s, seed := range seeds {
		base := workload.WorldCupLike(workload.WorldCupConfig{
			Seed: seed, Base: 650 + 100*float64(s), Slots: 24,
		})
		traces[s] = workload.ShiftTypes(sys.FrontEnds[s].Name, base, 3, 4)
	}
	return &TraceSetup{Sys: sys, Traces: traces, Prices: market.Locations()}
}

// Config assembles the 24-hour Section VI simulation.
func (t *TraceSetup) Config() sim.Config {
	return sim.Config{Sys: t.Sys, Traces: t.Traces, Prices: t.Prices, Slots: 24}
}

// TwoLevelSetup reproduces the Section VII configuration: the Google-like
// 7-hour trace duplicated into two request types, two-level step-downward
// TUFs (Tables IX–X), two data centers of 6 servers (Table VIII
// capacities, Table XI energies), one front-end at 1000/2000 miles, and
// the Houston / Mountain View prices in the high-vibration 14:00–19:00
// window.
type TwoLevelSetup struct {
	Sys    *datacenter.System
	Traces []*workload.Trace
	Prices []*market.PriceTrace
	// Scale multiplies both centers' service rates, reproducing the
	// "relatively low workload" (scale 2) and "relatively high workload"
	// (scale 0.5) variants of Fig. 10.
	Scale float64
}

// NewTwoLevelSetup builds the Section VII setup at unit capacity scale.
func NewTwoLevelSetup() *TwoLevelSetup { return newTwoLevelSetup(1) }

// NewTwoLevelSetupScaled builds the Fig. 10 variants.
func NewTwoLevelSetupScaled(scale float64) *TwoLevelSetup { return newTwoLevelSetup(scale) }

func newTwoLevelSetup(scale float64) *TwoLevelSetup {
	sys := &datacenter.System{
		Classes: []datacenter.RequestClass{
			{
				Name: "request1",
				// Tables IX–X: sub-deadlines 0.005/0.02 h, values 10/4 $.
				TUF:                 tuf.MustNew([]tuf.Level{{Utility: 10, Deadline: 0.005}, {Utility: 4, Deadline: 0.02}}),
				TransferCostPerMile: 0.0002,
			},
			{
				Name:                "request2",
				TUF:                 tuf.MustNew([]tuf.Level{{Utility: 20, Deadline: 0.004}, {Utility: 8, Deadline: 0.015}}),
				TransferCostPerMile: 0.0003,
			},
		},
		FrontEnds: []datacenter.FrontEnd{
			{Name: "frontend", DistanceMiles: []float64{1000, 2000}},
		},
		Centers: []datacenter.DataCenter{
			{
				// Table VIII: hourly capacities; Table XI: kWh/request.
				Name: "datacenter1", Servers: 6, Capacity: 1,
				ServiceRate:      []float64{scale * 9000 / 6, scale * 3600 / 6},
				EnergyPerRequest: []float64{0.0004, 0.0006},
			},
			{
				Name: "datacenter2", Servers: 6, Capacity: 1,
				ServiceRate:      []float64{scale * 7200 / 6, scale * 5400 / 6},
				EnergyPerRequest: []float64{0.0005, 0.0005},
			},
		},
	}
	// The 2010 Google trace spans ~7 hours; the paper duplicates it and
	// shifts it along the time scale to get the second request type.
	base := workload.GoogleLike(workload.GoogleConfig{Seed: 200, Mean: 4100, Slots: 7})
	traces := []*workload.Trace{workload.ShiftTypes("frontend", base, 2, 2)}
	prices := []*market.PriceTrace{market.Houston(), market.MountainView()}
	return &TwoLevelSetup{Sys: sys, Traces: traces, Prices: prices, Scale: scale}
}

// Config assembles the Section VII simulation over the 14:00–19:00 window
// (6 hourly slots).
func (t *TwoLevelSetup) Config() sim.Config {
	return sim.Config{
		Sys: t.Sys, Traces: t.Traces, Prices: t.Prices,
		Slots: 6, StartSlot: 14,
	}
}

package exp

import (
	"fmt"

	"profitlb/internal/baseline"
	"profitlb/internal/core"
	"profitlb/internal/report"
	"profitlb/internal/sim"
)

func init() {
	register(&Experiment{
		ID:    "abl15-priceblind",
		Title: "Ablation: what is price-awareness itself worth?",
		Paper: "beyond the paper (decomposing the Optimized-vs-Balanced gap)",
		Run:   runAblPriceBlind,
	})
}

// priceBlind wraps a planner and feeds it the day-average price of every
// center instead of the current slot's price. The wrapped planner still
// optimizes dispatch against capacities, distances and TUFs — it just
// cannot see the hourly electricity market. Accounting always uses the
// true prices, so the difference to the full Optimized run is exactly the
// value of hourly price-awareness.
type priceBlind struct {
	inner    core.Planner
	avgPrice []float64
}

func (p *priceBlind) Name() string { return "price-blind(" + p.inner.Name() + ")" }

func (p *priceBlind) Plan(in *core.Input) (*core.Plan, error) {
	blind := &core.Input{Sys: in.Sys, Arrivals: in.Arrivals, Prices: p.avgPrice}
	plan, err := p.inner.Plan(blind)
	if err != nil {
		return nil, err
	}
	return plan, nil
}

// runAblPriceBlind decomposes the Section VI gap: Balanced loses to
// Optimized for two reasons — it neither optimizes the dispatch LP nor
// adapts shares — and price-awareness is only one ingredient. Running
// Optimized against frozen day-average prices isolates it.
func runAblPriceBlind() (*Result, error) {
	decompose := func(title string, cfg sim.Config) (*report.Table, float64, float64, error) {
		avg := make([]float64, cfg.Sys.L())
		for l, p := range cfg.Prices {
			_, _, mean := p.Stats()
			avg[l] = mean
		}
		planners := []core.Planner{
			core.NewOptimized(),
			&priceBlind{inner: core.NewOptimized(), avgPrice: avg},
			baseline.NewBalanced(),
		}
		reports, err := sim.Compare(cfg, planners...)
		if err != nil {
			return nil, 0, 0, err
		}
		full, blind, bal := reports[0], reports[1], reports[2]
		t := report.NewTable(title, "planner", "net profit($)", "fraction of full")
		for _, r := range []*sim.Report{full, blind, bal} {
			t.AddRow(r.Planner, report.F(r.TotalNetProfit()), report.Pct(report.Frac(r.TotalNetProfit(), full.TotalNetProfit())))
		}
		gapTotal := full.TotalNetProfit() - bal.TotalNetProfit()
		gapPrice := full.TotalNetProfit() - blind.TotalNetProfit()
		return t, gapPrice, gapTotal, nil
	}

	// Section VI: Google-scale per-request energies (~0.0003 kWh).
	ts := NewTraceSetup()
	t1, gp1, gt1, err := decompose("Section VI day (per-request energy ≈ 0.0003 kWh)", ts.Config())
	if err != nil {
		return nil, err
	}
	// Section V: kWh-scale per-request energies, high load.
	b := NewBasicSetup()
	t2, gp2, gt2, err := decompose("Section V day, high load (per-request energy 1-6 kWh)", b.Config(true))
	if err != nil {
		return nil, err
	}
	return &Result{
		ID: "abl15-priceblind", Title: "Price-awareness decomposition",
		Tables: []*report.Table{t1, t2},
		Notes: []string{
			fmt.Sprintf("Section VI: price-awareness contributes %s of the Optimized-over-Balanced gap — at Google's per-search energy figure, electricity is a rounding error and the gains come from LP dispatch and adaptive shares",
				report.Pct(gp1/gt1)),
			fmt.Sprintf("Section V: with kWh-scale per-request energies, price-awareness contributes %s of the gap — the multi-electricity-market story only bites when compute is energy-hungry",
				report.Pct(gp2/gt2)),
		},
	}, nil
}

package exp

import (
	"fmt"
	"sort"
	"strings"

	"profitlb/internal/baseline"
	"profitlb/internal/core"
	"profitlb/internal/fault"
	"profitlb/internal/report"
	"profitlb/internal/resilient"
	"profitlb/internal/sim"
)

func init() {
	register(&Experiment{
		ID:    "rob2-chaos",
		Title: "Robustness: profit retention under an outage + price-spike storm",
		Paper: "beyond the paper (fault injection & resilient planning)",
		Run:   runChaosStorm,
	})
}

// chaosStormSchedule is the canonical storm of the robustness study: one
// data center offline for 3 of the Section VII window's 6 slots, a 2×
// price spike at the other center, and two planner faults (an error
// while the outage bites, a timeout during the spike) that force the
// fallback chain to actually fire. Explicit events (rather than a seeded
// Storm draw) keep the experiment's table stable across runs.
func chaosStormSchedule() *fault.Schedule {
	return &fault.Schedule{Events: []fault.Event{
		{Kind: fault.CenterOutage, Center: 1, From: 15, To: 17},
		{Kind: fault.PriceSpike, Center: 0, Factor: 2, From: 16, To: 18},
		{Kind: fault.PlannerError, From: 16, To: 16},
		{Kind: fault.PlannerTimeout, From: 18, To: 18},
	}}
}

// runChaosStorm replays the Section VII window clean and under the storm
// for each planner, every faulted lane wrapped in the resilient fallback
// chain, and tables profit retention, completion rate and degradation.
func runChaosStorm() (*Result, error) {
	ts := NewTwoLevelSetup()
	cleanCfg := ts.Config()
	stormCfg := cleanCfg
	stormCfg.Faults = chaosStormSchedule()
	stormCfg.DegradeOnFailure = true

	lanes := []struct {
		name    string
		planner func() core.Planner
	}{
		{"optimized", func() core.Planner { return core.NewOptimized() }},
		{"level-search", func() core.Planner { return core.NewLevelSearch() }},
		{"balanced", func() core.Planner { return baseline.NewBalanced() }},
	}
	cleanPlanners := make([]core.Planner, len(lanes))
	stormPlanners := make([]core.Planner, len(lanes))
	for i, ln := range lanes {
		cleanPlanners[i] = ln.planner()
		// The injector fires the schedule's planner faults at the primary
		// tier; the chain's deadline is shorter than the injected hang so
		// a timeout slot falls through instead of stalling.
		chain := resilient.Wrap(&fault.Injector{Planner: ln.planner(), Sched: stormCfg.Faults})
		chain.Timeout = fault.DefaultHang / 2
		stormPlanners[i] = chain
	}
	clean, err := sim.Compare(cleanCfg, cleanPlanners...)
	if err != nil {
		return nil, err
	}
	faulted, err := sim.Compare(stormCfg, stormPlanners...)
	if err != nil {
		return nil, err
	}

	t := report.NewTable("Outage + price-spike storm (14:00-19:00, center 2 down 15-17h, 2x spike 16-18h)",
		"planner", "clean net($)", "storm net($)", "retained", "completion", "degraded slots", "lost($)")
	for i, ln := range lanes {
		var completion float64
		K := cleanCfg.Sys.K()
		for k := 0; k < K; k++ {
			completion += faulted[i].CompletionRate(k)
		}
		completion = report.Frac(completion, float64(K))
		retained := report.Frac(faulted[i].TotalNetProfit(), clean[i].TotalNetProfit())
		t.AddRow(ln.name, report.F(clean[i].TotalNetProfit()), report.F(faulted[i].TotalNetProfit()),
			report.Pct(retained), report.Pct(completion),
			fmt.Sprintf("%d/%d", faulted[i].DegradedSlots(), len(faulted[i].Slots)),
			report.F(faulted[i].TotalLostRevenue()))
	}

	tiers := report.NewTable("Per-slot fallback tiers (optimized lane)",
		"hour", "tier", "faults active")
	for _, s := range faulted[0].Slots {
		label := "primary"
		if s.FallbackTier > 0 {
			label = fmt.Sprintf("%d:%s", s.FallbackTier, s.FallbackName)
		} else if s.FallbackTier < 0 && s.FallbackName != "" {
			label = s.FallbackName
		}
		tiers.AddRow(fmt.Sprintf("%d", s.Slot), label, strings.Join(s.FaultsActive, " "))
	}

	var acts []string
	for name, n := range faulted[0].FallbackActivations() {
		acts = append(acts, fmt.Sprintf("%s×%d", name, n))
	}
	sort.Strings(acts)
	actNote := "no fallback tier fired in the optimized lane"
	if len(acts) > 0 {
		actNote = "optimized-lane fallback activations: " + strings.Join(acts, ", ")
	}
	return &Result{
		ID: "rob2-chaos", Title: "Fault-storm robustness",
		Tables: []*report.Table{t, tiers},
		Notes: []string{
			fmt.Sprintf("under the storm the optimized planner keeps $%s of net profit vs $%s for balanced — price-aware dispatch matters most exactly when capacity is scarce and prices spike",
				report.F(faulted[0].TotalNetProfit()), report.F(faulted[2].TotalNetProfit())),
			actNote,
			"every lane finishes the full horizon: outage slots shed only the load that no longer fits, and the accounting books the shortfall as lost revenue instead of aborting",
		},
	}, nil
}

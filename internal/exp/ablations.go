package exp

import (
	"fmt"
	"time"

	"profitlb/internal/baseline"
	"profitlb/internal/core"
	"profitlb/internal/forecast"
	"profitlb/internal/report"
	"profitlb/internal/sim"
	"profitlb/internal/workload"
)

// The abl* experiments go beyond the paper: they ablate the design
// choices DESIGN.md §5 calls out, on the paper's own Section VII setup,
// so each knob's contribution is measurable in isolation.

func init() {
	register(&Experiment{
		ID:    "abl1-levelsearch",
		Title: "Ablation: level-search strategies (exhaustive / greedy / branch-and-bound)",
		Paper: "beyond the paper (DESIGN.md §5.1)",
		Run:   runAblLevelSearch,
	})
	register(&Experiment{
		ID:    "abl2-refine",
		Title: "Ablation: commodity-subset refinement on/off",
		Paper: "beyond the paper (DESIGN.md §5.5)",
		Run:   runAblRefine,
	})
	register(&Experiment{
		ID:    "abl3-aggregation",
		Title: "Ablation: aggregated vs per-server LP variables",
		Paper: "beyond the paper (DESIGN.md §5.3)",
		Run:   runAblAggregation,
	})
	register(&Experiment{
		ID:    "abl4-topup",
		Title: "Ablation: leftover-share top-up on/off",
		Paper: "beyond the paper (DESIGN.md §5.4)",
		Run:   runAblTopUp,
	})
	register(&Experiment{
		ID:    "abl5-forecast",
		Title: "Ablation: planning on Kalman-predicted vs oracle arrival rates",
		Paper: "beyond the paper (the prediction substrate of paper §III)",
		Run:   runAblForecast,
	})
	register(&Experiment{
		ID:    "abl6-baselines",
		Title: "Ablation: all static baselines vs the optimized planner",
		Paper: "beyond the paper (baseline ordering policies)",
		Run:   runAblBaselines,
	})
}

// runPlanner runs one planner over the Section VII window and reports
// profit and wall time.
func runPlanner(p core.Planner) (profit float64, elapsed time.Duration, err error) {
	ts := NewTwoLevelSetup()
	start := time.Now()
	rep, err := sim.Run(ts.Config(), p)
	if err != nil {
		return 0, 0, err
	}
	return rep.TotalNetProfit(), time.Since(start), nil
}

func runAblLevelSearch() (*Result, error) {
	t := report.NewTable("Level-search strategies on the Section VII window",
		"strategy", "net profit($)", "wall time")
	strategies := []core.Strategy{core.Exhaustive, core.Greedy, core.BranchBound}
	profits := make([]float64, len(strategies))
	for i, s := range strategies {
		p := core.NewLevelSearch()
		p.Strategy = s
		profit, elapsed, err := runPlanner(p)
		if err != nil {
			return nil, err
		}
		profits[i] = profit
		t.AddRow(s.String(), report.F(profit), elapsed.Round(time.Microsecond).String())
	}
	notes := []string{
		"branch-and-bound matches exhaustive exactly; greedy is a lower bound",
	}
	if profits[2] != profits[0] {
		notes = append(notes, fmt.Sprintf("WARNING: b&b %g differs from exhaustive %g", profits[2], profits[0]))
	}
	return &Result{ID: "abl1-levelsearch", Title: "Level-search strategies",
		Tables: []*report.Table{t}, Notes: notes}, nil
}

func runAblRefine() (*Result, error) {
	t := report.NewTable("Subset refinement", "refine", "net profit($)", "wall time")
	var with, without float64
	for _, refine := range []bool{true, false} {
		p := core.NewOptimized()
		p.Refine = refine
		profit, elapsed, err := runPlanner(p)
		if err != nil {
			return nil, err
		}
		if refine {
			with = profit
		} else {
			without = profit
		}
		t.AddRow(fmt.Sprintf("%v", refine), report.F(profit), elapsed.Round(time.Microsecond).String())
	}
	return &Result{ID: "abl2-refine", Title: "Subset refinement",
		Tables: []*report.Table{t},
		Notes: []string{fmt.Sprintf(
			"refinement recovers %s net profit by evicting reservation-heavy commodities (the paper's zero-load deadline reservation artifact)",
			report.Pct(with/without-1))},
	}, nil
}

func runAblAggregation() (*Result, error) {
	t := report.NewTable("Variable layout", "layout", "net profit($)", "wall time")
	var profits []float64
	for _, perServer := range []bool{false, true} {
		p := core.NewOptimized()
		p.PerServer = perServer
		name := "aggregated"
		if perServer {
			name = "per-server (paper-faithful)"
		}
		profit, elapsed, err := runPlanner(p)
		if err != nil {
			return nil, err
		}
		profits = append(profits, profit)
		t.AddRow(name, report.F(profit), elapsed.Round(time.Microsecond).String())
	}
	return &Result{ID: "abl3-aggregation", Title: "Aggregated vs per-server variables",
		Tables: []*report.Table{t},
		Notes: []string{fmt.Sprintf(
			"identical profit (homogeneous servers make the layouts equivalent; gap %.4f%%), very different cost — the paper's Fig. 11 in miniature",
			100*(profits[0]/profits[1]-1))},
	}, nil
}

func runAblTopUp() (*Result, error) {
	t := report.NewTable("Leftover-share top-up", "top-up", "net profit($)")
	var on, off float64
	for _, topUp := range []bool{false, true} {
		p := core.NewOptimized()
		p.TopUp = topUp
		profit, _, err := runPlanner(p)
		if err != nil {
			return nil, err
		}
		if topUp {
			on = profit
		} else {
			off = profit
		}
		t.AddRow(fmt.Sprintf("%v", topUp), report.F(profit))
	}
	return &Result{ID: "abl4-topup", Title: "Share top-up",
		Tables: []*report.Table{t},
		Notes: []string{fmt.Sprintf(
			"distributing slack share lowers delays and can cross TUF levels: %s extra profit",
			report.Pct(on/off-1))},
	}, nil
}

func runAblForecast() (*Result, error) {
	ts := NewTraceSetup()
	oracleCfg := ts.Config()
	oracle, err := sim.Run(oracleCfg, core.NewOptimized())
	if err != nil {
		return nil, err
	}
	predicted := make([]*workload.Trace, len(ts.Traces))
	var mapeSum float64
	for i, tr := range ts.Traces {
		p, err := forecast.PredictTrace(tr, 50000, 20000)
		if err != nil {
			return nil, err
		}
		predicted[i] = p
		m, err := forecast.MAPE(tr, p)
		if err != nil {
			return nil, err
		}
		mapeSum += m
	}
	// Plan on forecasts, account on actual arrivals: under-forecast drops
	// the uncovered tail, over-forecast wastes reservations.
	fcCfg := oracleCfg
	fcCfg.PlanTraces = predicted
	fc, err := sim.Run(fcCfg, core.NewOptimized())
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Planning on forecasts (Section VI day)",
		"input", "net profit($)", "fraction of oracle")
	t.AddRow("oracle rates", report.F(oracle.TotalNetProfit()), "100.00%")
	t.AddRow("Kalman one-step forecasts", report.F(fc.TotalNetProfit()),
		report.Pct(report.Frac(fc.TotalNetProfit(), oracle.TotalNetProfit())))
	return &Result{ID: "abl5-forecast", Title: "Forecast-driven planning",
		Tables: []*report.Table{t},
		Notes: []string{fmt.Sprintf(
			"mean MAPE of the forecasts: %s; planning on them keeps %s of the oracle profit (under-forecasted arrivals are dropped, over-forecasts waste reservations)",
			report.Pct(report.Frac(mapeSum, float64(len(ts.Traces)))),
			report.Pct(report.Frac(fc.TotalNetProfit(), oracle.TotalNetProfit())))},
	}, nil
}

func runAblBaselines() (*Result, error) {
	ts := NewTraceSetup()
	planners := []core.Planner{
		core.NewOptimized(),
		baseline.NewBalanced(),
		baseline.NewNearest(),
		baseline.NewGreedyProfit(),
		baseline.NewRandom(42),
	}
	reports, err := sim.Compare(ts.Config(), planners...)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("All dispatchers on the Section VI day",
		"planner", "net profit($)", "vs optimized")
	opt := reports[0].TotalNetProfit()
	for _, r := range reports {
		t.AddRow(r.Planner, report.F(r.TotalNetProfit()), report.Pct(r.TotalNetProfit()/opt))
	}
	return &Result{ID: "abl6-baselines", Title: "Baseline ordering policies",
		Tables: []*report.Table{t},
		Notes:  []string{"every static ordering loses to the per-slot optimization; price-only ordering (the paper's Balanced) is the strongest static policy here"},
	}, nil
}

package exp

import (
	"fmt"

	"profitlb/internal/core"
	"profitlb/internal/datacenter"
	"profitlb/internal/lp"
	"profitlb/internal/market"
	"profitlb/internal/report"
	"profitlb/internal/tuf"
	"profitlb/internal/workload"
)

func init() {
	register(&Experiment{
		ID:    "abl13-defer",
		Title: "Extension: temporal arbitrage with deferrable batch work",
		Paper: "beyond the paper (multi-slot lookahead; the paper plans each slot myopically)",
		Run:   runAblDefer,
	})
}

// deferSetup: an interactive class pinned to its arrival slot and an
// energy-hungry batch class that may wait, under the Houston diurnal
// price curve over a full day.
func deferSetup() *core.HorizonInput {
	sys := &datacenter.System{
		Classes: []datacenter.RequestClass{
			{Name: "interactive", TUF: tuf.MustNew([]tuf.Level{{Utility: 10, Deadline: 0.005}}), TransferCostPerMile: 0.0002},
			{Name: "batch", TUF: tuf.MustNew([]tuf.Level{{Utility: 8, Deadline: 0.2}}), TransferCostPerMile: 0.0001},
		},
		FrontEnds: []datacenter.FrontEnd{{Name: "fe", DistanceMiles: []float64{300, 1200}}},
		Centers: []datacenter.DataCenter{
			{Name: "dc1", Servers: 5, Capacity: 1,
				ServiceRate: []float64{2000, 700}, EnergyPerRequest: []float64{0.5, 20}},
			{Name: "dc2", Servers: 5, Capacity: 1,
				ServiceRate: []float64{1800, 800}, EnergyPerRequest: []float64{0.45, 18}},
		},
	}
	base := workload.WorldCupLike(workload.WorldCupConfig{Seed: 55, Base: 1500})
	batch := workload.WorldCupLike(workload.WorldCupConfig{Seed: 56, Base: 900})
	houston, mv := market.Houston(), market.MountainView()
	h := &core.HorizonInput{Sys: sys, MaxDefer: []int{0, 0}}
	for t := 0; t < 24; t++ {
		h.Arrivals = append(h.Arrivals, [][]float64{{base[t], batch[t]}})
		h.Prices = append(h.Prices, []float64{houston.At(t), mv.At(t)})
	}
	return h
}

func runAblDefer() (*Result, error) {
	t := report.NewTable("Deferral sweep (24 h, batch pays 18-20 kWh/request)",
		"max defer (slots)", "window net profit($)", "vs myopic", "batch deferred")
	var myopic float64
	var rows []*core.HorizonPlan
	defers := []int{0, 1, 2, 4, 8}
	for _, d := range defers {
		h := deferSetup()
		h.MaxDefer = []int{0, d}
		hp, err := core.PlanHorizon(h, lp.Options{})
		if err != nil {
			return nil, err
		}
		if err := core.VerifyHorizon(h, hp, 1e-5); err != nil {
			return nil, fmt.Errorf("abl13: defer %d: %w", d, err)
		}
		if d == 0 {
			myopic = hp.Objective
		}
		rows = append(rows, hp)
	}
	for i, d := range defers {
		hp := rows[i]
		t.AddRow(fmt.Sprintf("%d", d), report.F(hp.Objective),
			report.Pct(hp.Objective/myopic), report.Pct(hp.DeferredFraction[1]))
	}
	best := rows[len(rows)-1]
	return &Result{
		ID: "abl13-defer", Title: "Temporal arbitrage",
		Tables: []*report.Table{t},
		Notes: []string{fmt.Sprintf(
			"an 8-slot deferral allowance lifts the window profit by %s by running %s of the batch work in cheap-electricity hours — headroom the paper's per-slot optimization cannot reach",
			report.Pct(best.Objective/myopic-1), report.Pct(best.DeferredFraction[1]))},
	}, nil
}

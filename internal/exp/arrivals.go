package exp

import (
	"fmt"

	"profitlb/internal/core"
	"profitlb/internal/queuesim"
	"profitlb/internal/report"
	"profitlb/internal/workload"
)

func init() {
	register(&Experiment{
		ID:    "val5-arrivals",
		Title: "Validation: M/M/1 plans under bursty (MMPP) arrivals",
		Paper: "beyond the paper (arrival-process robustness)",
		Run:   runValArrivals,
	})
}

// runValArrivals replays a planned Section VII commodity queue under
// Markov-modulated Poisson arrivals of increasing burstiness while
// keeping the long-run rate fixed at the planned λ. The paper assumes
// plain Poisson arrivals within a slot; the index of dispersion measures
// how far each process strays from that, and the realized delay shows
// what the stray costs.
func runValArrivals() (*Result, error) {
	ts := NewTwoLevelSetup()
	in := &core.Input{
		Sys:      ts.Sys,
		Arrivals: [][]float64{{ts.Traces[0].At(15, 0), ts.Traces[0].At(15, 1)}},
		Prices:   []float64{ts.Prices[0].At(15), ts.Prices[1].At(15)},
	}
	plan, err := core.NewOptimized().Plan(in)
	if err != nil {
		return nil, err
	}
	// Pick the most loaded commodity queue in the plan.
	var lam, mu, deadline float64
	for l := 0; l < ts.Sys.L(); l++ {
		for k := 0; k < ts.Sys.K(); k++ {
			for q := range plan.Rate[k] {
				v := plan.CenterRate(k, q, l)
				if v > lam*float64(plan.ServersOn[l]) && plan.ServersOn[l] > 0 {
					lam = v / float64(plan.ServersOn[l])
					mu = plan.Phi[l][k][q] * ts.Sys.Centers[l].Capacity * ts.Sys.Centers[l].ServiceRate[k]
					deadline = ts.Sys.Classes[k].TUF.Level(q).Deadline
				}
			}
		}
	}
	if lam == 0 {
		return nil, fmt.Errorf("val5: no loaded commodity found")
	}

	t := report.NewTable(fmt.Sprintf("Arrival burstiness sweep on the hottest planned queue (λ=%s/h, μ=%s/h)",
		report.F(lam), report.F(mu)),
		"process", "dispersion index", "mean delay(h)", "p95 delay(h)", "vs planned deadline")
	horizon := 400.0 // hours of synthetic arrivals
	type variant struct {
		name string
		p    workload.MMPP
	}
	variants := []variant{
		{"poisson (paper)", workload.MMPP{RateLow: lam, RateHigh: lam, MeanLow: 1, MeanHigh: 1}},
		{"mild bursts", workload.MMPP{RateLow: lam * 0.7, RateHigh: lam * 1.9, MeanLow: 0.75, MeanHigh: 0.25}},
		{"heavy bursts", workload.MMPP{RateLow: lam * 0.4, RateHigh: lam * 2.8, MeanLow: 0.75, MeanHigh: 0.25}},
	}
	var first, last float64
	for i, v := range variants {
		arr, err := v.p.Arrivals(horizon, 404)
		if err != nil {
			return nil, err
		}
		st, err := queuesim.MM1{Mu: mu, Seed: 405}.RunArrivals(arr)
		if err != nil {
			return nil, err
		}
		disp, err := v.p.Burstiness(1, int(horizon), 406)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.name, report.F(disp), report.F(st.MeanDelay), report.F(st.P95Delay),
			report.Pct(st.MeanDelay/deadline))
		if i == 0 {
			first = st.MeanDelay
		}
		last = st.MeanDelay
	}
	return &Result{
		ID: "val5-arrivals", Title: "Arrival burstiness",
		Tables: []*report.Table{t},
		Notes: []string{
			fmt.Sprintf("with the same long-run rate, bursty arrivals inflate the mean delay x%s over the Poisson assumption", report.F(last/first)),
			"the mechanism: the planner reserves exactly the share that meets the deadline at Poisson arrivals, leaving the queue at high utilization — burst phases transiently exceed the reserved capacity and the backlog explodes until the quiet phase drains it; a deployment facing non-Poisson traffic needs a share margin (cf. abl14) or burst-aware admission",
		},
	}, nil
}

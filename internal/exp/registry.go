package exp

import (
	"fmt"
	"sort"
	"strings"

	"profitlb/internal/baseline"
	"profitlb/internal/core"
	"profitlb/internal/report"
	"profitlb/internal/sim"
)

// Result is a rendered experiment outcome.
type Result struct {
	ID     string
	Title  string
	Tables []*report.Table
	// Notes carries shape observations (who won, by what factor) that
	// EXPERIMENTS.md records against the paper.
	Notes []string
}

// String renders the whole result as text.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteByte('\n')
		b.WriteString(t.String())
	}
	if len(r.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "note: %s\n", n)
		}
	}
	return b.String()
}

// Experiment is one registered paper artifact reproduction.
type Experiment struct {
	ID    string
	Title string
	// Paper names the table/figure being reproduced.
	Paper string
	Run   func() (*Result, error)
}

var registry = map[string]*Experiment{}

func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exp: duplicate experiment id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every registered experiment ordered by ID.
func All() []*Experiment {
	out := make([]*Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get returns the experiment with the given ID.
func Get(id string) (*Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs returns the sorted registered IDs.
func IDs() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out
}

// compare runs the Optimized and Balanced planners over the same
// configuration, the comparison every evaluation figure is built on.
func compare(cfg sim.Config) (opt, bal *sim.Report, err error) {
	reports, err := sim.Compare(cfg, core.NewOptimized(), baseline.NewBalanced())
	if err != nil {
		return nil, nil, err
	}
	return reports[0], reports[1], nil
}

// profitTable renders the per-slot net profit of both approaches plus a
// totals row.
func profitTable(title string, start int, opt, bal *sim.Report) *report.Table {
	t := report.SeriesTable(title, "hour",
		report.SlotLabels(start, len(opt.Slots)),
		[]string{"optimized($)", "balanced($)"},
		opt.NetProfitSeries(), bal.NetProfitSeries())
	t.AddRow("total", report.F(opt.TotalNetProfit()), report.F(bal.TotalNetProfit()))
	return t
}

// gainNote summarizes the Optimized-over-Balanced improvement.
func gainNote(opt, bal *sim.Report) string {
	o, b := opt.TotalNetProfit(), bal.TotalNetProfit()
	if b == 0 {
		return fmt.Sprintf("optimized total $%s, balanced total $0", report.F(o))
	}
	return fmt.Sprintf("optimized improves net profit by %s (%s vs %s)",
		report.Pct(o/b-1), report.F(o), report.F(b))
}

package exp

import (
	"fmt"

	"profitlb/internal/core"
	"profitlb/internal/des"
	"profitlb/internal/report"
	"profitlb/internal/sim"
)

func init() {
	register(&Experiment{
		ID:    "val3-des",
		Title: "Validation: request-level realization of the fluid plans",
		Paper: "beyond the paper (end-to-end discrete-event check)",
		Run:   runValDES,
	})
}

// runValDES replays the Section VII window request by request: every slot
// is planned exactly as in the fluid evaluation, then realized with
// Poisson arrivals and exponential service, billing each request at the
// TUF value of its own response time.
func runValDES() (*Result, error) {
	ts := NewTwoLevelSetup()
	cfg := des.Config{Sim: ts.Config(), Planner: core.NewOptimized(), Seed: 1234}
	rep, err := des.Run(cfg)
	if err != nil {
		return nil, err
	}
	fluid, err := sim.Run(ts.Config(), core.NewOptimized())
	if err != nil {
		return nil, err
	}

	t := report.NewTable("Fluid plan vs request-level realization (14:00-19:00)",
		"hour", "planned net($)", "realized net($)", "realized/planned",
		"requests served", "fluid served")
	for i, sr := range rep.Slots {
		var served int
		for _, cs := range sr.Classes {
			served += cs.Served
		}
		t.AddRow(fmt.Sprintf("h%02d", sr.Slot),
			report.F(sr.PlannedNetProfit), report.F(sr.RealizedNetProfit),
			report.Pct(report.Frac(sr.RealizedNetProfit, sr.PlannedNetProfit)),
			fmt.Sprintf("%d", served),
			report.F(fluid.Slots[i].Served()))
	}
	miss := report.NewTable("Per-type realized behaviour", "type",
		"mean delay(h)", "max delay(h)", "deadline-miss rate")
	for k, cls := range ts.Sys.Classes {
		var meanD, maxD float64
		var served int
		for _, sr := range rep.Slots {
			cs := sr.Classes[k]
			meanD += cs.MeanDelay * float64(cs.Served)
			served += cs.Served
			if cs.MaxDelay > maxD {
				maxD = cs.MaxDelay
			}
		}
		if served > 0 {
			meanD /= float64(served)
		}
		miss.AddRow(cls.Name, report.F(meanD), report.F(maxD), report.Pct(rep.MissRate(k)))
	}
	ratio := report.Frac(rep.TotalRealized(), rep.TotalPlanned())
	return &Result{
		ID: "val3-des", Title: "Request-level realization",
		Tables: []*report.Table{t, miss},
		Notes: []string{
			fmt.Sprintf("realized per-request profit is %s of the fluid expectation over the window", report.Pct(ratio)),
			"served counts track the fluid rates; per-request step-TUF billing shifts dollars relative to the paper's mean-delay accounting (see val2-utility for the mechanism)",
		},
	}, nil
}

package exp

import (
	"fmt"

	"profitlb/internal/core"
	"profitlb/internal/report"
	"profitlb/internal/sim"
	"profitlb/internal/switching"
)

func init() {
	register(&Experiment{
		ID:    "abl10-switching",
		Title: "Extension: server switching costs and power hysteresis",
		Paper: "beyond the paper (relaxes its negligible-switching assumption)",
		Run:   runAblSwitching,
	})
}

// runAblSwitching puts idle power draw on the Section VI fleet (making
// consolidation financially real), then sweeps the hold-down hysteresis
// under a per-toggle fee. Following the plan exactly toggles servers with
// every demand swing; holding them a few slots trades idle energy for
// toggle fees.
func runAblSwitching() (*Result, error) {
	const togglePrice = 75.0 // $ per power-state change (wear + migration + warm-up)
	t := report.NewTable(fmt.Sprintf("Hysteresis sweep (toggle fee $%g, idle draw 5 kWh/server-slot)", togglePrice),
		"hold slots", "sim net($)", "toggles", "toggle cost($)", "adjusted net($)")
	var base, best float64
	bestHold := 0
	for _, hold := range []int{0, 1, 2, 4} {
		ts := NewTraceSetup()
		for l := range ts.Sys.Centers {
			ts.Sys.Centers[l].IdleEnergyPerServer = 5
		}
		w := &switching.Planner{Inner: core.NewOptimized(), TogglePrice: togglePrice, HoldSlots: hold}
		rep, err := sim.Run(ts.Config(), w)
		if err != nil {
			return nil, err
		}
		adjusted := rep.TotalNetProfit() - w.NetAdjustment()
		t.AddRow(fmt.Sprintf("%d", hold), report.F(rep.TotalNetProfit()),
			fmt.Sprintf("%d", w.Toggles), report.F(w.ToggleCost), report.F(adjusted))
		if hold == 0 {
			base = adjusted
		}
		if adjusted > best {
			best, bestHold = adjusted, hold
		}
	}
	return &Result{
		ID: "abl10-switching", Title: "Switching costs",
		Tables: []*report.Table{t},
		Notes: []string{fmt.Sprintf(
			"holding servers for %d slot(s) is best, worth $%s over toggling freely — the knob the paper's negligible-switching assumption hides",
			bestHold, report.F(best-base))},
	}, nil
}

package exp

import (
	"fmt"

	"profitlb/internal/core"
	"profitlb/internal/queuesim"
	"profitlb/internal/report"
)

func init() {
	register(&Experiment{
		ID:    "val1-mm1",
		Title: "Validation: discrete-event check of the M/M/1 delay model (paper Eq. 1)",
		Paper: "beyond the paper (model validation)",
		Run:   runValMM1,
	})
}

// runValMM1 plans one Section VII slot, then replays every loaded
// commodity through the discrete-event simulator with Poisson arrivals
// and exponential service, comparing realized mean delays with the
// analytical values the planner optimized against.
func runValMM1() (*Result, error) {
	ts := NewTwoLevelSetup()
	in := &core.Input{
		Sys:      ts.Sys,
		Arrivals: [][]float64{{ts.Traces[0].At(15, 0), ts.Traces[0].At(15, 1)}},
		Prices:   []float64{ts.Prices[0].At(15), ts.Prices[1].At(15)},
	}
	plan, err := core.NewOptimized().Plan(in)
	if err != nil {
		return nil, err
	}
	const arrivals = 400000
	checks, err := queuesim.ValidatePlan(ts.Sys, plan, arrivals, 2024)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(fmt.Sprintf("Analytical vs simulated mean delay (%d arrivals per queue)", arrivals),
		"center", "type", "level", "lambda/server", "phi*C*mu", "deadline(h)", "Eq.1 delay(h)", "simulated(h)", "rel err")
	for _, c := range checks {
		t.AddRow(
			ts.Sys.Centers[c.Center].Name,
			ts.Sys.Classes[c.Class].Name,
			fmt.Sprintf("%d", c.Level+1),
			report.F(c.Lambda), report.F(c.ServiceRate), report.F(c.Deadline),
			report.F(c.Expected), report.F(c.Simulated), report.Pct(c.RelErr))
	}
	worst := queuesim.WorstRelErr(checks)
	return &Result{
		ID: "val1-mm1", Title: "M/M/1 delay-model validation",
		Tables: []*report.Table{t},
		Notes: []string{
			fmt.Sprintf("worst relative model error: %s — the expected-delay formula the whole optimization rests on holds empirically", report.Pct(worst)),
			"every analytical delay sits exactly on its TUF level deadline: the planner reserves the minimum share that meets the SLA",
		},
	}, nil
}

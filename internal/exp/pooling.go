package exp

import (
	"fmt"

	"profitlb/internal/queue"
	"profitlb/internal/report"
)

func init() {
	register(&Experiment{
		ID:    "abl16-pooling",
		Title: "Extension: the capacity cost of dedicated shares vs pooled queues",
		Paper: "beyond the paper (its virtualization model vs M/M/c pooling)",
		Run:   runAblPooling,
	})
}

// runAblPooling quantifies a structural choice the paper inherits from
// its virtualization model: every (type, server) pair is an isolated
// M/M/1 queue with a dedicated share, so each of the M servers pays the
// 1/D reservation separately. A pooled M/M/c queue over the same M
// servers (one queue per type per center, requests go to any free server)
// needs no per-server reservation and serves strictly more within the
// same deadline. The table reports, per Section VII type and center, the
// maximum sustainable rate under both disciplines.
func runAblPooling() (*Result, error) {
	ts := NewTwoLevelSetup()
	sys := ts.Sys
	t := report.NewTable("Max arrival rate within the level-1 deadline (requests/hour)",
		"center", "type", "per-server M/M/1 (paper)", "pooled M/M/c", "pooling gain")
	var worst, best float64 = 1e18, 0
	for l := 0; l < sys.L(); l++ {
		dc := &sys.Centers[l]
		for k := 0; k < sys.K(); k++ {
			deadline := sys.Classes[k].TUF.Level(0).Deadline
			mu := dc.Capacity * dc.ServiceRate[k]
			// Paper discipline: M isolated M/M/1 queues at full share.
			perServer := float64(dc.Servers) * (mu - 1/deadline)
			if perServer < 0 {
				perServer = 0
			}
			// Pooled discipline: one M/M/c queue; binary-search the max λ
			// with expected sojourn ≤ deadline.
			pool := queue.MMC{Servers: dc.Servers, Mu: mu}
			lo, hi := 0.0, float64(dc.Servers)*mu
			for i := 0; i < 60; i++ {
				mid := (lo + hi) / 2
				d, err := pool.Delay(mid)
				if err == nil && d <= deadline {
					lo = mid
				} else {
					hi = mid
				}
			}
			pooled := lo
			gain := 0.0
			if perServer > 0 {
				gain = pooled/perServer - 1
			}
			if gain < worst {
				worst = gain
			}
			if gain > best {
				best = gain
			}
			t.AddRow(dc.Name, sys.Classes[k].Name,
				report.F(perServer), report.F(pooled), report.Pct(gain))
		}
	}
	return &Result{
		ID: "abl16-pooling", Title: "Pooling vs dedicated shares",
		Tables: []*report.Table{t},
		Notes: []string{fmt.Sprintf(
			"pooling the same servers into one queue per type raises deadline-feasible capacity by %s-%s: the price of the paper's per-server share isolation (a real system pays it for tenant isolation and simple SLAs)",
			report.Pct(worst), report.Pct(best))},
	}, nil
}

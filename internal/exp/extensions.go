package exp

import (
	"fmt"
	"time"

	"profitlb/internal/core"
	"profitlb/internal/datacenter"
	"profitlb/internal/market"
	"profitlb/internal/report"
	"profitlb/internal/sim"
	"profitlb/internal/tuf"
	"profitlb/internal/workload"
)

func init() {
	register(&Experiment{
		ID:    "abl8-pue",
		Title: "Extension: power-usage-effectiveness (cooling overhead) sweep",
		Paper: "beyond the paper (the PUE extension its Section II suggests)",
		Run:   runAblPUE,
	})
	register(&Experiment{
		ID:    "abl9-scale",
		Title: "Extension: planner cost as the topology grows (types x front-ends x centers)",
		Paper: "beyond the paper (scalability of the LP formulation)",
		Run:   runAblScale,
	})
}

// runAblPUE sweeps a cooling-overhead multiplier over one data center of
// the Section V setup (whose kWh-scale per-request energies make cooling
// visible) and shows how load and profit drain away from it — the
// extension the paper proposes for accounting cooling energy.
func runAblPUE() (*Result, error) {
	t := report.NewTable("PUE sweep on datacenter2 (Section V setup, low load)",
		"PUE(dc2)", "net profit($)", "share of load at dc2", "optimized vs balanced")
	var first, last float64
	var firstShare, lastShare float64
	for _, pue := range []float64{1.0, 1.2, 1.5, 2.0, 3.0} {
		b := NewBasicSetup()
		b.Sys.Centers[1].PUE = pue
		opt, bal, err := compare(b.Config(false))
		if err != nil {
			return nil, err
		}
		var dc2, total float64
		for i := range opt.Slots {
			for k := 0; k < b.Sys.K(); k++ {
				dc2 += opt.Slots[i].CenterServed[k][1]
				for l := 0; l < b.Sys.L(); l++ {
					total += opt.Slots[i].CenterServed[k][l]
				}
			}
		}
		profit := opt.TotalNetProfit()
		share := report.Frac(dc2, total)
		if first == 0 {
			first, firstShare = profit, share
		}
		last, lastShare = profit, share
		t.AddRow(report.F(pue), report.F(profit), report.Pct(share),
			report.Pct(report.Frac(opt.TotalNetProfit(), bal.TotalNetProfit())-1))
	}
	return &Result{
		ID: "abl8-pue", Title: "PUE sweep",
		Tables: []*report.Table{t},
		Notes: []string{fmt.Sprintf(
			"raising dc2's cooling overhead from 1.0 to 3.0 costs %s of net profit and cuts dc2's load share from %s to %s",
			report.Pct(1-report.Frac(last, first)), report.Pct(firstShare), report.Pct(lastShare))},
	}, nil
}

// scaleSystem builds a K-type, S-front-end, L-center topology of a given
// size with seeded parameters.
func scaleSystem(K, S, L int) (*datacenter.System, sim.Config) {
	sys := &datacenter.System{}
	for k := 0; k < K; k++ {
		u := 10 + float64(k)*5
		sys.Classes = append(sys.Classes, datacenter.RequestClass{
			Name: fmt.Sprintf("t%d", k),
			TUF: tuf.MustNew([]tuf.Level{
				{Utility: u, Deadline: 0.004 + 0.001*float64(k)},
				{Utility: u * 0.4, Deadline: 0.02 + 0.005*float64(k)},
			}),
			TransferCostPerMile: 0.0002,
		})
	}
	for s := 0; s < S; s++ {
		dist := make([]float64, L)
		for l := range dist {
			dist[l] = 200 + 150*float64((s+l)%5)
		}
		sys.FrontEnds = append(sys.FrontEnds, datacenter.FrontEnd{
			Name: fmt.Sprintf("fe%d", s), DistanceMiles: dist,
		})
	}
	for l := 0; l < L; l++ {
		mu := make([]float64, K)
		en := make([]float64, K)
		for k := 0; k < K; k++ {
			mu[k] = 1200 + 100*float64((k+l)%4)
			en[k] = 0.0004 + 0.0001*float64(k%3)
		}
		sys.Centers = append(sys.Centers, datacenter.DataCenter{
			Name: fmt.Sprintf("dc%d", l), Servers: 6, Capacity: 1,
			ServiceRate: mu, EnergyPerRequest: en,
		})
	}
	traces := make([]*workload.Trace, S)
	for s := 0; s < S; s++ {
		base := workload.WorldCupLike(workload.WorldCupConfig{Seed: int64(300 + s), Base: 400 * float64(L) / float64(S)})
		traces[s] = workload.ShiftTypes(sys.FrontEnds[s].Name, base, K, 3)
	}
	prices := make([]*market.PriceTrace, L)
	for l := 0; l < L; l++ {
		prices[l] = market.Synthetic(market.SyntheticConfig{
			Name: fmt.Sprintf("m%d", l), Seed: int64(l), PeakHour: float64(8 + 2*l%12),
		})
	}
	return sys, sim.Config{Sys: sys, Traces: traces, Prices: prices, Slots: 1, StartSlot: 15}
}

// runAblScale times one planning slot as the topology grows, showing the
// aggregated LP scales polynomially where the paper's MINLP blew up.
func runAblScale() (*Result, error) {
	t := report.NewTable("Planner wall time vs topology size (one slot)",
		"types x FEs x centers", "LP variables", "plan time (ms)", "net profit($)")
	sizes := [][3]int{{2, 2, 2}, {3, 4, 3}, {4, 6, 4}, {5, 8, 6}, {6, 10, 8}}
	var firstMS, lastMS float64
	var firstVars, lastVars int
	for _, sz := range sizes {
		K, S, L := sz[0], sz[1], sz[2]
		_, cfg := scaleSystem(K, S, L)
		start := time.Now()
		rep, err := sim.Run(cfg, core.NewOptimized())
		if err != nil {
			return nil, fmt.Errorf("scale %v: %w", sz, err)
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		vars := K * 2 * L * (S + 1) // commodities × (rates + share)
		if firstMS == 0 {
			firstMS, firstVars = ms, vars
		}
		lastMS, lastVars = ms, vars
		t.AddRow(fmt.Sprintf("%dx%dx%d", K, S, L),
			fmt.Sprintf("≈%d", vars), report.F(ms), report.F(rep.TotalNetProfit()))
	}
	return &Result{
		ID: "abl9-scale", Title: "Topology scaling",
		Tables: []*report.Table{t},
		Notes: []string{fmt.Sprintf(
			"plan time grows x%s over a x%s variable growth — polynomial in the LP size, where the paper's MINLP grew exponentially",
			report.F(report.Frac(lastMS, firstMS)), report.F(report.Frac(float64(lastVars), float64(firstVars))))},
	}, nil
}

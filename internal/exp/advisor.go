package exp

import (
	"fmt"

	"profitlb/internal/advisor"
	"profitlb/internal/report"
)

func init() {
	register(&Experiment{
		ID:    "abl11-advisor",
		Title: "Extension: capacity-expansion advice (what-if vs dual signal)",
		Paper: "beyond the paper (provisioning on top of the dispatcher)",
		Run:   runAblAdvisor,
	})
}

// runAblAdvisor asks where the Section VI fleet should grow: the exact
// what-if (re-simulating with +2 servers per candidate center) is ranked
// against the accumulated LP shadow prices of abl7.
func runAblAdvisor() (*Result, error) {
	ts := NewTraceSetup()
	adv, err := advisor.Advise(advisor.Config{
		Sim:        ts.Config(),
		AddServers: 2,
		ServerCost: 5000,
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable(fmt.Sprintf("Expansion candidates (+2 servers, baseline $%s/day)", report.F(adv.BaselineProfit)),
		"center", "profit gain($/day)", "gain/server($/day)", "Σ share dual($)", "payback (slots)")
	for _, rec := range adv.Recommendations {
		t.AddRow(rec.Name, report.F(rec.ProfitGain), report.F(rec.GainPerServer),
			report.F(rec.ShareDual), report.F(rec.PaybackSlots))
	}
	best := adv.Best()
	return &Result{
		ID: "abl11-advisor", Title: "Capacity-expansion advice",
		Tables: []*report.Table{t},
		Notes: []string{fmt.Sprintf(
			"grow %s first: +$%s/day per server, hardware amortized in %s slots; the what-if ranking and the dual signal agree",
			best.Name, report.F(best.GainPerServer), report.F(best.PaybackSlots))},
	}, nil
}

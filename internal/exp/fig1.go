package exp

import (
	"profitlb/internal/market"
	"profitlb/internal/report"
)

func init() {
	register(&Experiment{
		ID:    "fig1",
		Title: "Electricity prices at different locations in a day",
		Paper: "Figure 1",
		Run:   runFig1,
	})
}

func runFig1() (*Result, error) {
	locs := market.Locations()
	names := make([]string, len(locs))
	series := make([][]float64, len(locs))
	for i, tr := range locs {
		if err := tr.Validate(); err != nil {
			return nil, err
		}
		names[i] = tr.Name + "($/kWh)"
		series[i] = tr.Prices
	}
	t := report.SeriesTable("Hourly electricity prices", "hour",
		report.SlotLabels(0, 24), names, series...)

	stats := report.NewTable("Per-location statistics", "location", "min", "max", "mean", "max/min")
	for _, tr := range locs {
		min, max, mean := tr.Stats()
		stats.AddRow(tr.Name, report.F(min), report.F(max), report.F(mean), report.F(max/min))
	}
	spread := market.Spread(locs, 24)
	var maxSpread float64
	for _, s := range spread {
		if s > maxSpread {
			maxSpread = s
		}
	}
	return &Result{
		ID:     "fig1",
		Title:  "Electricity prices at different locations in a day",
		Tables: []*report.Table{t, stats},
		Notes: []string{
			"prices differ per location and vary through the day (the multi-electricity-market premise)",
			"peak cross-location spread: $" + report.F(maxSpread) + "/kWh",
		},
	}, nil
}

package exp

import (
	"fmt"
	"strings"

	"profitlb/internal/core"
	"profitlb/internal/fault"
	"profitlb/internal/feed"
	"profitlb/internal/report"
	"profitlb/internal/resilient"
	"profitlb/internal/sim"
)

func init() {
	register(&Experiment{
		ID:    "rob3-darkfeeds",
		Title: "Robustness: planning on degraded telemetry, from noisy feeds to total darkness",
		Paper: "beyond the paper (telemetry feed layer & forecast fallback)",
		Run:   runDarkFeeds,
	})
}

// darkFeedsLanes defines the degradation ladder of the study. Explicit
// events (rather than a seeded Storm draw) keep the tables stable. The
// Section VII window runs slots 14-19 over 2 price feeds and 1 arrival
// feed.
func darkFeedsLanes() []struct {
	name   string
	faults *fault.Schedule
} {
	return []struct {
		name   string
		faults *fault.Schedule
	}{
		{"feeds-clean", nil},
		{"noisy", &fault.Schedule{Events: []fault.Event{
			{Kind: fault.FeedNoise, Feed: fault.FeedPrice, Center: 0, Factor: 0.25, From: 14, To: 19},
			{Kind: fault.FeedNoise, Feed: fault.FeedPrice, Center: 1, Factor: 0.25, From: 14, To: 19},
			{Kind: fault.FeedNoise, Feed: fault.FeedArrival, FrontEnd: 0, Factor: 0.25, From: 14, To: 19},
		}}},
		{"flaky", &fault.Schedule{Events: []fault.Event{
			{Kind: fault.FeedDropout, Feed: fault.FeedPrice, Center: 0, Factor: 0.95, From: 15, To: 17},
			{Kind: fault.FeedDropout, Feed: fault.FeedArrival, FrontEnd: 0, Factor: 0.9, From: 16, To: 18},
			{Kind: fault.FeedDelay, Feed: fault.FeedPrice, Center: 1, Factor: 100, From: 16, To: 17},
		}}},
		{"dark", &fault.Schedule{Events: []fault.Event{
			{Kind: fault.FeedLoss, Feed: fault.FeedPrice, Center: 0, From: 14, To: 19},
			{Kind: fault.FeedLoss, Feed: fault.FeedPrice, Center: 1, From: 14, To: 19},
			{Kind: fault.FeedLoss, Feed: fault.FeedArrival, FrontEnd: 0, From: 14, To: 19},
		}}},
	}
}

// runDarkFeeds replays the Section VII window with the planner's inputs
// routed through the telemetry feed layer at increasing levels of feed
// degradation, against the oracle path as the reference. The "dark" lane
// is the acid test: every feed is permanently lost from the first slot,
// so the planner runs entirely on priors — the run must still complete
// and serve real load, because the priors are trace means and the
// committed plan is reconciled against actual arrivals.
func runDarkFeeds() (*Result, error) {
	ts := NewTwoLevelSetup()
	base := ts.Config()
	K := base.Sys.K()

	oracle, err := sim.Run(base, core.NewOptimized())
	if err != nil {
		return nil, err
	}
	oracleNet := oracle.TotalNetProfit()

	t := report.NewTable("Planning on degraded telemetry (14:00-19:00, feed layer on, optimized planner)",
		"lane", "net($)", "% of oracle", "completion", "feed tiers", "stale(avg)", "brk-open", "degraded")
	t.AddRow("oracle", report.F(oracleNet), report.Pct(1), report.Pct(completionMean(oracle, K)),
		"-", "-", "-", fmt.Sprintf("%d/%d", oracle.DegradedSlots(), len(oracle.Slots)))

	var dark *sim.Report
	for _, lane := range darkFeedsLanes() {
		cfg := base
		cfg.Faults = lane.faults
		cfg.Feeds = &feed.Config{Seed: 7}
		cfg.DegradeOnFailure = true
		var planner core.Planner
		if lane.name == "dark" {
			// With every feed on its prior the optimizer would be polishing
			// guesswork; the resilient chain escalates straight to a cheap
			// tier on unusable slots.
			chain := resilient.Wrap(core.NewOptimized())
			chain.EscalateOnDegraded = true
			planner = chain
		} else {
			planner = core.NewOptimized()
		}
		rep, err := sim.Run(cfg, planner)
		if err != nil {
			return nil, fmt.Errorf("lane %s: %w", lane.name, err)
		}
		if lane.name == "dark" {
			dark = rep
		}
		ratio := report.Frac(rep.TotalNetProfit(), oracleNet)
		t.AddRow(lane.name, report.F(rep.TotalNetProfit()), report.Pct(ratio),
			report.Pct(completionMean(rep, K)), tierMixLabel(rep),
			fmt.Sprintf("%.2f", rep.MeanFeedStaleness()),
			fmt.Sprintf("%d", rep.BreakerOpenSlots()),
			fmt.Sprintf("%d/%d", rep.DegradedSlots(), len(rep.Slots)))
	}

	slots := report.NewTable("Per-slot feed health and fallback tier (dark lane)",
		"hour", "served", "price feeds", "arrival feed", "planner tier")
	for _, s := range dark.Slots {
		var pl []string
		for _, h := range s.Feeds.Prices {
			pl = append(pl, h.Label())
		}
		al := make([]string, 0, len(s.Feeds.Arrivals))
		for _, h := range s.Feeds.Arrivals {
			al = append(al, h.Label())
		}
		tier := "primary"
		if s.FallbackTier > 0 {
			tier = fmt.Sprintf("%d:%s", s.FallbackTier, s.FallbackName)
		} else if s.FallbackTier < 0 && s.FallbackName != "" {
			tier = s.FallbackName
		}
		slots.AddRow(fmt.Sprintf("%d", s.Slot), fmt.Sprintf("%.0f", s.Served()),
			strings.Join(pl, " "), strings.Join(al, " "), tier)
	}

	return &Result{
		ID: "rob3-darkfeeds", Title: "Degraded-telemetry robustness",
		Tables: []*report.Table{t, slots},
		Notes: []string{
			"feeds-clean matches the oracle lane exactly: with no feed faults every fetch is a first-attempt fresh sample, so the feed layer is a zero-cost pass-through",
			fmt.Sprintf("with every feed dark the run still completes and serves %.0f requests on trace-mean priors — stale-margin headroom plus reconciliation turn blind planning into conservative planning instead of a crash",
				totalServed(dark)),
			"the dark lane's breakers open after 2 failed slots and stay open (half-open probes keep failing against a permanently lost feed), so the transport stops burning its retry budget",
		},
	}, nil
}

// completionMean averages the per-type completion rate.
func completionMean(r *sim.Report, K int) float64 {
	var c float64
	for k := 0; k < K; k++ {
		c += r.CompletionRate(k)
	}
	return c / float64(K)
}

// tierMixLabel renders the run's estimator-tier counts compactly.
func tierMixLabel(r *sim.Report) string {
	counts := r.FeedTierCounts()
	var parts []string
	for _, tier := range []string{"fresh", "lkg", "forecast", "prior"} {
		if counts[tier] > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", tier, counts[tier]))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// totalServed sums served requests over the run.
func totalServed(r *sim.Report) float64 {
	var s float64
	for i := range r.Slots {
		s += r.Slots[i].Served()
	}
	return s
}

package exp

import (
	"fmt"

	"profitlb/internal/core"
	"profitlb/internal/forecast"
	"profitlb/internal/report"
	"profitlb/internal/sim"
	"profitlb/internal/workload"
)

func init() {
	register(&Experiment{
		ID:    "abl14-margin",
		Title: "Extension: demand margin on forecast-driven planning",
		Paper: "beyond the paper (robustness to forecast error)",
		Run:   runAblMargin,
	})
}

// runAblMargin sweeps a multiplicative safety margin on the Kalman
// forecasts of the Section VI day: planning exactly to the forecast drops
// every under-predicted request, while over-reserving wastes capacity on
// demand that never comes. The sweep locates the sweet spot.
func runAblMargin() (*Result, error) {
	ts := NewTraceSetup()
	oracleCfg := ts.Config()
	oracle, err := sim.Run(oracleCfg, core.NewOptimized())
	if err != nil {
		return nil, err
	}
	predicted := make([]*workload.Trace, len(ts.Traces))
	for i, tr := range ts.Traces {
		p, err := forecast.PredictTrace(tr, 50000, 20000)
		if err != nil {
			return nil, err
		}
		predicted[i] = p
	}
	t := report.NewTable("Forecast margin sweep (Section VI day, Kalman forecasts)",
		"margin", "net profit($)", "fraction of oracle", "completion r1/r2/r3")
	var base, best float64
	bestMargin := 0.0
	for _, margin := range []float64{0, 0.05, 0.10, 0.20, 0.40} {
		scaled := make([]*workload.Trace, len(predicted))
		for i, tr := range predicted {
			cp := &workload.Trace{Name: tr.Name, Rates: make([][]float64, tr.Slots())}
			for s := 0; s < tr.Slots(); s++ {
				row := make([]float64, tr.Types())
				for k := range row {
					row[k] = tr.At(s, k) * (1 + margin)
				}
				cp.Rates[s] = row
			}
			scaled[i] = cp
		}
		cfg := oracleCfg
		cfg.PlanTraces = scaled
		rep, err := sim.Run(cfg, core.NewOptimized())
		if err != nil {
			return nil, err
		}
		profit := rep.TotalNetProfit()
		if margin == 0 {
			base = profit
		}
		if profit > best {
			best, bestMargin = profit, margin
		}
		t.AddRow(report.Pct(margin), report.F(profit), report.Pct(report.Frac(profit, oracle.TotalNetProfit())),
			fmt.Sprintf("%s/%s/%s", report.Pct(rep.CompletionRate(0)),
				report.Pct(rep.CompletionRate(1)), report.Pct(rep.CompletionRate(2))))
	}
	return &Result{
		ID: "abl14-margin", Title: "Forecast margin",
		Tables: []*report.Table{t},
		Notes: []string{fmt.Sprintf(
			"a %s demand margin recovers %s over planning exactly to the forecast (oracle profit $%s)",
			report.Pct(bestMargin), report.Pct(report.Frac(best, base)-1), report.F(oracle.TotalNetProfit()))},
	}, nil
}

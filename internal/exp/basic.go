package exp

import (
	"fmt"

	"profitlb/internal/report"
)

func init() {
	register(&Experiment{
		ID:    "tab2",
		Title: "Synthetic request arrival sets (low and high)",
		Paper: "Table II",
		Run:   runTab2,
	})
	register(&Experiment{
		ID:    "tab3",
		Title: "Data center parameter setup for the basic study",
		Paper: "Table III",
		Run:   runTab3,
	})
	register(&Experiment{
		ID:    "fig4a",
		Title: "Net profit with a low arrival rate (synthetic workload)",
		Paper: "Figure 4(a)",
		Run:   func() (*Result, error) { return runFig4(false) },
	})
	register(&Experiment{
		ID:    "fig4b",
		Title: "Net profit with a high arrival rate (synthetic workload)",
		Paper: "Figure 4(b)",
		Run:   func() (*Result, error) { return runFig4(true) },
	})
}

func runTab2() (*Result, error) {
	b := NewBasicSetup()
	mk := func(title string, rates [][]float64) *report.Table {
		t := report.NewTable(title, "front-end", "request1(#/s)", "request2(#/s)", "request3(#/s)")
		for s, row := range rates {
			t.AddRow(b.Sys.FrontEnds[s].Name, report.F(row[0]), report.F(row[1]), report.F(row[2]))
		}
		return t
	}
	return &Result{
		ID:    "tab2",
		Title: "Synthetic request arrival sets",
		Tables: []*report.Table{
			mk("(a) Low arrival rates at every front-end", b.Low),
			mk("(b) High arrival rates at every front-end", b.High),
		},
	}, nil
}

func runTab3() (*Result, error) {
	b := NewBasicSetup()
	t := report.NewTable("Data center parameters",
		"parameter", "datacenter1", "datacenter2", "datacenter3")
	t.AddRow("servers (M)", "6", "6", "6")
	t.AddRow("C", "1", "1", "1")
	for k := 0; k < 3; k++ {
		t.AddRow(fmt.Sprintf("mu%d (#/s)", k+1),
			report.F(b.Sys.Centers[0].ServiceRate[k]),
			report.F(b.Sys.Centers[1].ServiceRate[k]),
			report.F(b.Sys.Centers[2].ServiceRate[k]))
	}
	for k := 0; k < 3; k++ {
		t.AddRow(fmt.Sprintf("cost%d (kWh)", k+1),
			report.F(b.Sys.Centers[0].EnergyPerRequest[k]),
			report.F(b.Sys.Centers[1].EnergyPerRequest[k]),
			report.F(b.Sys.Centers[2].EnergyPerRequest[k]))
	}
	var means []float64
	for _, p := range b.Prices {
		_, _, m := p.Stats()
		means = append(means, m)
	}
	t.AddRow("p ($, mean)", report.F(means[0]), report.F(means[1]), report.F(means[2]))
	return &Result{ID: "tab3", Title: "Data center parameter setup", Tables: []*report.Table{t}}, nil
}

func runFig4(high bool) (*Result, error) {
	b := NewBasicSetup()
	cfg := b.Config(high)
	opt, bal, err := compare(cfg)
	if err != nil {
		return nil, err
	}
	id, label := "fig4a", "low arrival rate"
	if high {
		id, label = "fig4b", "high arrival rate"
	}
	tables := []*report.Table{profitTable("Hourly net profit, "+label, 0, opt, bal)}
	notes := []string{gainNote(opt, bal)}

	if high {
		// The paper: under the high arrival rate neither approach serves
		// everything, but Optimized processes ~16% more requests.
		var optServed, balServed float64
		for i := range opt.Slots {
			optServed += opt.Slots[i].Served()
			balServed += bal.Slots[i].Served()
		}
		srv := report.NewTable("Requests processed over the day", "approach", "requests", "share of offered")
		var offered float64
		for i := range opt.Slots {
			offered += opt.Slots[i].Offered()
		}
		srv.AddRow("optimized", report.F(optServed), report.Pct(optServed/offered))
		srv.AddRow("balanced", report.F(balServed), report.Pct(balServed/offered))
		tables = append(tables, srv)
		notes = append(notes, fmt.Sprintf("optimized processes %s more requests than balanced (paper: ~16%%)",
			report.Pct(optServed/balServed-1)))
	}
	return &Result{ID: id, Title: "Net profit with a " + label, Tables: tables, Notes: notes}, nil
}

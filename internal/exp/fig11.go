package exp

import (
	"fmt"
	"time"

	"profitlb/internal/core"
	"profitlb/internal/report"
)

func init() {
	register(&Experiment{
		ID:    "fig11",
		Title: "Computation times of different server sets",
		Paper: "Figure 11",
		Run:   runFig11,
	})
}

// Fig11ServerCounts is the sweep of servers-per-center sizes.
var Fig11ServerCounts = []int{2, 4, 6, 8, 10, 12}

// PlanOnce builds the Section VII slot input for the given fleet size and
// runs the given planner once, returning the wall time. Exported for the
// benchmark harness.
func PlanOnce(servers int, planner core.Planner) (time.Duration, error) {
	ts := NewTwoLevelSetup()
	for l := range ts.Sys.Centers {
		ts.Sys.Centers[l].Servers = servers
	}
	in := &core.Input{
		Sys: ts.Sys,
		Arrivals: [][]float64{{
			ts.Traces[0].At(14, 0),
			ts.Traces[0].At(14, 1),
		}},
		Prices: []float64{ts.Prices[0].At(14), ts.Prices[1].At(14)},
	}
	start := time.Now()
	_, err := planner.Plan(in)
	return time.Since(start), err
}

func runFig11() (*Result, error) {
	t := report.NewTable("Planner computation time vs servers per data center",
		"servers/center", "optimized per-server (ms)", "level-search per-server (ms)")
	var firstOpt, lastOpt float64
	const runs = 5 // the paper averages five runs per server set
	for _, m := range Fig11ServerCounts {
		var optTotal, lsTotal time.Duration
		for r := 0; r < runs; r++ {
			opt := core.NewOptimized()
			opt.PerServer = true
			d, err := PlanOnce(m, opt)
			if err != nil {
				return nil, fmt.Errorf("fig11: optimized with %d servers: %w", m, err)
			}
			optTotal += d

			ls := core.NewLevelSearch()
			ls.Strategy = core.Exhaustive
			ls.PerServer = true
			d, err = PlanOnce(m, ls)
			if err != nil {
				return nil, fmt.Errorf("fig11: level-search with %d servers: %w", m, err)
			}
			lsTotal += d
		}
		optMS := float64(optTotal.Microseconds()) / float64(runs) / 1000
		lsMS := float64(lsTotal.Microseconds()) / float64(runs) / 1000
		t.AddRow(fmt.Sprintf("%d", m), report.F(optMS), report.F(lsMS))
		if firstOpt == 0 {
			firstOpt = optMS
		}
		lastOpt = optMS
	}
	growth := 0.0
	if firstOpt > 0 {
		growth = lastOpt / firstOpt
	}
	return &Result{
		ID: "fig11", Title: "Computation times", Tables: []*report.Table{t},
		Notes: []string{fmt.Sprintf(
			"per-server planning time grows x%s from %d to %d servers per center (the paper reports exponential growth on CPLEX)",
			report.F(growth), Fig11ServerCounts[0], Fig11ServerCounts[len(Fig11ServerCounts)-1])},
	}, nil
}

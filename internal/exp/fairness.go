package exp

import (
	"fmt"

	"profitlb/internal/core"
	"profitlb/internal/report"
	"profitlb/internal/sim"
)

func init() {
	register(&Experiment{
		ID:    "abl12-fairness",
		Title: "Extension: completion floors (the price of fairness)",
		Paper: "beyond the paper (per-type minimum-service SLAs)",
		Run:   runAblFairness,
	})
}

// runAblFairness sweeps a uniform per-type completion floor on the
// Section V high-load day. Pure profit maximization serves the most
// valuable work first and can push a type's completion arbitrarily low;
// the floors force minimum service and the sweep prices that fairness.
func runAblFairness() (*Result, error) {
	b := NewBasicSetup()
	t := report.NewTable("Completion-floor sweep (Section V, high load)",
		"floor", "net profit($)", "vs unconstrained",
		"request1 completed", "request2 completed", "request3 completed")
	var base float64
	var notes []string
	for _, floor := range []float64{0, 0.4, 0.5, 0.6} {
		p := core.NewOptimized()
		if floor > 0 {
			p.MinCompletion = []float64{floor, floor, floor}
		}
		rep, err := sim.Run(b.Config(true), p)
		if err != nil {
			if floor > 0 {
				t.AddRow(report.F(floor), "infeasible", "-", "-", "-", "-")
				notes = append(notes, fmt.Sprintf("floor %s exceeds fleet capacity", report.F(floor)))
				continue
			}
			return nil, err
		}
		profit := rep.TotalNetProfit()
		if floor == 0 {
			base = profit
		}
		t.AddRow(report.F(floor), report.F(profit), report.Pct(profit/base),
			report.Pct(rep.CompletionRate(0)), report.Pct(rep.CompletionRate(1)), report.Pct(rep.CompletionRate(2)))
	}
	notes = append(notes,
		"the unconstrained planner serves the highest value-per-capacity work first; floors trade profit for per-type minimum service, and beyond the fleet's capacity they become infeasible")
	return &Result{
		ID: "abl12-fairness", Title: "Completion floors",
		Tables: []*report.Table{t}, Notes: notes,
	}, nil
}

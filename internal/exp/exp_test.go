package exp

import (
	"strings"
	"testing"

	"profitlb/internal/core"
	"profitlb/internal/sim"
)

func TestRegistryComplete(t *testing.T) {
	// One experiment per paper table and figure.
	want := []string{
		"fig1", "tab2", "tab3", "fig4a", "fig4b",
		"fig5", "tab4", "tab5", "tab6", "tab7", "fig6", "fig7",
		"tab8", "tab9", "tab10", "tab11", "fig8", "fig9", "fig10a", "fig10b",
		"fig11",
		// Beyond the paper: ablations and model validation.
		"abl1-levelsearch", "abl2-refine", "abl3-aggregation",
		"abl4-topup", "abl5-forecast", "abl6-baselines",
		"abl7-shadowprices", "abl8-pue", "abl9-scale", "abl10-switching",
		"abl11-advisor", "abl12-fairness", "abl13-defer", "abl14-margin",
		"abl15-priceblind", "abl16-pooling", "abl17-week",
		"val1-mm1", "val2-utility", "val3-des", "val4-servicecv", "val5-arrivals",
		"rob2-chaos", "rob3-darkfeeds",
		"mpc1-priceshift", "mpc2-faultdefer",
	}
	for _, id := range want {
		e, ok := Get(id)
		if !ok {
			t.Errorf("missing experiment %s", id)
			continue
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	if len(IDs()) != len(want) {
		t.Errorf("IDs() size mismatch")
	}
}

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if res.ID != e.ID {
				t.Fatalf("result id %q != %q", res.ID, e.ID)
			}
			if len(res.Tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			out := res.String()
			if !strings.Contains(out, e.ID) {
				t.Fatalf("%s: render missing id", e.ID)
			}
		})
	}
}

// totals sums the served requests of a report.
func totals(r *sim.Report) (offered, served float64) {
	for i := range r.Slots {
		offered += r.Slots[i].Offered()
		served += r.Slots[i].Served()
	}
	return
}

func TestFig4Shapes(t *testing.T) {
	b := NewBasicSetup()
	if err := b.Sys.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, high := range []bool{false, true} {
		opt, bal, err := compare(b.Config(high))
		if err != nil {
			t.Fatal(err)
		}
		if opt.TotalNetProfit() <= bal.TotalNetProfit() {
			t.Fatalf("high=%v: optimized %g not above balanced %g",
				high, opt.TotalNetProfit(), bal.TotalNetProfit())
		}
		if high {
			_, optServed := totals(opt)
			offered, balServed := totals(bal)
			if optServed >= offered*0.999 {
				t.Fatalf("high load should overload even optimized: served %g of %g", optServed, offered)
			}
			ratio := optServed/balServed - 1
			// Paper reports ~16% more requests processed.
			if ratio < 0.08 || ratio > 0.30 {
				t.Fatalf("optimized processes %.1f%% more requests; want the paper's ~16%% band", ratio*100)
			}
		} else {
			offered, served := totals(opt)
			if served < offered*0.999 {
				t.Fatalf("low load: optimized should serve everything, got %g of %g", served, offered)
			}
		}
	}
}

func TestFig6TailConvergence(t *testing.T) {
	ts := NewTraceSetup()
	if err := ts.Sys.Validate(); err != nil {
		t.Fatal(err)
	}
	opt, bal, err := compare(ts.Config())
	if err != nil {
		t.Fatal(err)
	}
	if opt.TotalNetProfit() <= bal.TotalNetProfit() {
		t.Fatal("optimized must beat balanced on the trace day")
	}
	// Paper: the approaches converge when the trace tails off.
	last := len(opt.Slots) - 1
	tailGap := opt.Slots[last].NetProfit - bal.Slots[last].NetProfit
	var peakGap float64
	for i := range opt.Slots {
		if g := opt.Slots[i].NetProfit - bal.Slots[i].NetProfit; g > peakGap {
			peakGap = g
		}
	}
	if tailGap > 0.25*peakGap {
		t.Fatalf("tail gap %g not well below peak gap %g", tailGap, peakGap)
	}
}

func TestFig7DC2Starved(t *testing.T) {
	ts := NewTraceSetup()
	opt, _, err := compare(ts.Config())
	if err != nil {
		t.Fatal(err)
	}
	var dc [3]float64
	for i := range opt.Slots {
		for l := 0; l < 3; l++ {
			dc[l] += opt.Slots[i].CenterServed[0][l]
		}
	}
	// Paper: DC2 (farthest) receives far fewer request1 than DC1 and DC3.
	if dc[1] >= dc[0] || dc[1] >= dc[2] {
		t.Fatalf("dc2 %g not starved: dc1 %g, dc3 %g", dc[1], dc[0], dc[2])
	}
	if dc[2] <= dc[0] {
		t.Fatalf("dc3 (fastest for request1) should lead: dc3 %g vs dc1 %g", dc[2], dc[0])
	}
}

func TestFig9CompletionOrdering(t *testing.T) {
	ts := NewTwoLevelSetup()
	if err := ts.Sys.Validate(); err != nil {
		t.Fatal(err)
	}
	opt, bal, err := compare(ts.Config())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		if opt.CompletionRate(k) < bal.CompletionRate(k)-1e-9 {
			t.Fatalf("type %d: optimized completion %g below balanced %g",
				k, opt.CompletionRate(k), bal.CompletionRate(k))
		}
	}
	// Paper: optimized completes everything (here ≥ 97%), balanced drops
	// a visible share of request2.
	if opt.CompletionRate(0) < 0.97 {
		t.Fatalf("optimized request1 completion %g too low", opt.CompletionRate(0))
	}
	if bal.CompletionRate(1) > 0.97 {
		t.Fatalf("balanced request2 completion %g should show drops", bal.CompletionRate(1))
	}
	if opt.TotalNetProfit() <= bal.TotalNetProfit() {
		t.Fatal("optimized must net more profit")
	}
}

func TestFig10BothRegimes(t *testing.T) {
	for _, scale := range []float64{2.0, 0.5} {
		ts := NewTwoLevelSetupScaled(scale)
		opt, bal, err := compare(ts.Config())
		if err != nil {
			t.Fatal(err)
		}
		if opt.TotalNetProfit() <= bal.TotalNetProfit() {
			t.Fatalf("scale %g: optimized %g not above balanced %g",
				scale, opt.TotalNetProfit(), bal.TotalNetProfit())
		}
		if scale > 1 {
			// Low workload: everything completes under both approaches.
			for k := 0; k < 2; k++ {
				if opt.CompletionRate(k) < 0.999 || bal.CompletionRate(k) < 0.999 {
					t.Fatalf("scale %g: expected full completion, got opt %g bal %g",
						scale, opt.CompletionRate(k), bal.CompletionRate(k))
				}
			}
		} else {
			// High workload: nobody completes everything.
			if opt.CompletionRate(0)+opt.CompletionRate(1) >= 1.999 {
				t.Fatalf("scale %g: optimized should not complete everything", scale)
			}
		}
	}
}

func TestFig8GapTracksSpread(t *testing.T) {
	ts := NewTwoLevelSetup()
	opt, bal, err := compare(ts.Config())
	if err != nil {
		t.Fatal(err)
	}
	// Per-slot: optimized never below balanced in the window.
	for i := range opt.Slots {
		if opt.Slots[i].NetProfit < bal.Slots[i].NetProfit-1e-6 {
			t.Fatalf("slot %d: optimized below balanced", i)
		}
	}
}

func TestPlanOnce(t *testing.T) {
	o := core.NewOptimized()
	d, err := PlanOnce(3, o)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("non-positive duration")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate id")
		}
	}()
	register(&Experiment{ID: "fig1"})
}

func TestAblationInvariants(t *testing.T) {
	ts := NewTwoLevelSetup()
	cfg := ts.Config()

	// Branch-and-bound must equal exhaustive; greedy must not exceed it.
	profits := map[core.Strategy]float64{}
	for _, s := range []core.Strategy{core.Exhaustive, core.Greedy, core.BranchBound} {
		p := core.NewLevelSearch()
		p.Strategy = s
		rep, err := sim.Run(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		profits[s] = rep.TotalNetProfit()
	}
	if d := profits[core.BranchBound] - profits[core.Exhaustive]; d > 1e-6 || d < -1e-6 {
		t.Fatalf("b&b %g != exhaustive %g", profits[core.BranchBound], profits[core.Exhaustive])
	}
	if profits[core.Greedy] > profits[core.Exhaustive]+1e-6 {
		t.Fatal("greedy exceeded exhaustive")
	}

	// Refinement must never hurt.
	on := core.NewOptimized()
	off := core.NewOptimized()
	off.Refine = false
	repOn, err := sim.Run(cfg, on)
	if err != nil {
		t.Fatal(err)
	}
	repOff, err := sim.Run(cfg, off)
	if err != nil {
		t.Fatal(err)
	}
	if repOn.TotalNetProfit() < repOff.TotalNetProfit()-1e-6 {
		t.Fatalf("refinement hurt: %g vs %g", repOn.TotalNetProfit(), repOff.TotalNetProfit())
	}

	// Per-server and aggregated layouts agree on homogeneous servers.
	ps := core.NewOptimized()
	ps.PerServer = true
	repPS, err := sim.Run(cfg, ps)
	if err != nil {
		t.Fatal(err)
	}
	rel := (repOn.TotalNetProfit() - repPS.TotalNetProfit()) / repOn.TotalNetProfit()
	if rel > 1e-4 || rel < -1e-4 {
		t.Fatalf("layouts disagree: aggregated %g vs per-server %g", repOn.TotalNetProfit(), repPS.TotalNetProfit())
	}
}

func TestAblBaselinesOptimizedOnTop(t *testing.T) {
	res, err := runAblBaselines()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 || res.Tables[0].NumRows() != 5 {
		t.Fatalf("expected 5 planners in the comparison")
	}
}

func TestValMM1SmallError(t *testing.T) {
	res, err := runValMM1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables[0].String()) == 0 {
		t.Fatal("empty validation table")
	}
}

func TestExtensionShapes(t *testing.T) {
	// abl16: pooling must dominate per-server isolation everywhere.
	res, err := runAblPooling()
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0].NumRows() != 4 {
		t.Fatalf("pooling rows %d", res.Tables[0].NumRows())
	}

	// abl17: weekday gain exceeds weekend gain, both positive.
	week, err := runAblWeek()
	if err != nil {
		t.Fatal(err)
	}
	if len(week.Notes) == 0 {
		t.Fatal("week experiment missing note")
	}

	// val5: burstiness strictly inflates the realized delay.
	arr, err := runValArrivals()
	if err != nil {
		t.Fatal(err)
	}
	if arr.Tables[0].NumRows() != 3 {
		t.Fatalf("arrivals rows %d", arr.Tables[0].NumRows())
	}
}

func TestAblMarginSweetSpot(t *testing.T) {
	// The margin sweep must be non-trivial: some positive margin beats
	// planning exactly to the forecast.
	res, err := runAblMargin()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Notes) == 0 || res.Tables[0].NumRows() != 5 {
		t.Fatalf("margin result malformed: %+v", res)
	}
}

func TestAblPriceBlindDecomposition(t *testing.T) {
	res, err := runAblPriceBlind()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 || len(res.Notes) != 2 {
		t.Fatalf("expected two setups in the decomposition, got %d tables", len(res.Tables))
	}
}

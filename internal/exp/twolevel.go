package exp

import (
	"fmt"

	"profitlb/internal/report"
)

func init() {
	register(&Experiment{
		ID:    "tab8",
		Title: "Processing capacities of each data center (two-level study)",
		Paper: "Table VIII",
		Run:   runTab8,
	})
	register(&Experiment{
		ID:    "tab9",
		Title: "Sub-deadlines of the requests",
		Paper: "Table IX",
		Run:   runTab9,
	})
	register(&Experiment{
		ID:    "tab10",
		Title: "TUF values at different steps of the requests",
		Paper: "Table X",
		Run:   runTab10,
	})
	register(&Experiment{
		ID:    "tab11",
		Title: "Power consumption of the requests in each data center",
		Paper: "Table XI",
		Run:   runTab11,
	})
	register(&Experiment{
		ID:    "fig8",
		Title: "Net profits with two-level TUFs (Google-like trace)",
		Paper: "Figure 8",
		Run:   runFig8,
	})
	register(&Experiment{
		ID:    "fig9",
		Title: "Per-type allocations and completion under both approaches",
		Paper: "Figure 9",
		Run:   runFig9,
	})
	register(&Experiment{
		ID:    "fig10a",
		Title: "Net profits with a relatively low workload",
		Paper: "Figure 10(a)",
		Run:   func() (*Result, error) { return runFig10("fig10a", 2.0) },
	})
	register(&Experiment{
		ID:    "fig10b",
		Title: "Net profits with a relatively high workload",
		Paper: "Figure 10(b)",
		Run:   func() (*Result, error) { return runFig10("fig10b", 0.5) },
	})
}

func runTab8() (*Result, error) {
	ts := NewTwoLevelSetup()
	t := report.NewTable("Processing capacities (per hour, whole center)",
		"type", "datacenter1", "datacenter2")
	for k := 0; k < 2; k++ {
		row := []string{fmt.Sprintf("request%d(#/hour)", k+1)}
		for l := 0; l < 2; l++ {
			dc := ts.Sys.Centers[l]
			row = append(row, report.F(dc.ServiceRate[k]*float64(dc.Servers)))
		}
		t.AddRow(row...)
	}
	return &Result{ID: "tab8", Title: "Processing capacities", Tables: []*report.Table{t}}, nil
}

func runTab9() (*Result, error) {
	ts := NewTwoLevelSetup()
	t := report.NewTable("Sub-deadlines (hours)", "sub-deadline", "request1", "request2")
	for q := 0; q < 2; q++ {
		t.AddRow(fmt.Sprintf("sub-deadline%d(hour)", q+1),
			report.F(ts.Sys.Classes[0].TUF.Level(q).Deadline),
			report.F(ts.Sys.Classes[1].TUF.Level(q).Deadline))
	}
	return &Result{ID: "tab9", Title: "Sub-deadlines", Tables: []*report.Table{t}}, nil
}

func runTab10() (*Result, error) {
	ts := NewTwoLevelSetup()
	t := report.NewTable("TUF step values ($)", "type", "level1", "level2")
	for k := 0; k < 2; k++ {
		t.AddRow(fmt.Sprintf("request%d($)", k+1),
			report.F(ts.Sys.Classes[k].TUF.Level(0).Utility),
			report.F(ts.Sys.Classes[k].TUF.Level(1).Utility))
	}
	return &Result{ID: "tab10", Title: "TUF values", Tables: []*report.Table{t}}, nil
}

func runTab11() (*Result, error) {
	ts := NewTwoLevelSetup()
	t := report.NewTable("Power consumption (kWh per request)", "type", "datacenter1", "datacenter2")
	for k := 0; k < 2; k++ {
		t.AddRow(fmt.Sprintf("request%d(kWh)", k+1),
			report.F(ts.Sys.Centers[0].EnergyPerRequest[k]),
			report.F(ts.Sys.Centers[1].EnergyPerRequest[k]))
	}
	return &Result{ID: "tab11", Title: "Power consumption", Tables: []*report.Table{t}}, nil
}

func runFig8() (*Result, error) {
	ts := NewTwoLevelSetup()
	opt, bal, err := compare(ts.Config())
	if err != nil {
		return nil, err
	}
	t := profitTable("Hourly net profit, 14:00-19:00 window", 14, opt, bal)
	// The paper: the advantage is boosted where price differences spike
	// (hours 2-4 of the window).
	gaps := make([]float64, len(opt.Slots))
	spreads := make([]float64, len(opt.Slots))
	for i := range opt.Slots {
		gaps[i] = opt.Slots[i].NetProfit - bal.Slots[i].NetProfit
		hi, lo := opt.Slots[i].Prices[0], opt.Slots[i].Prices[0]
		for _, p := range opt.Slots[i].Prices {
			if p > hi {
				hi = p
			}
			if p < lo {
				lo = p
			}
		}
		spreads[i] = hi - lo
	}
	g := report.SeriesTable("Optimized-over-balanced gap vs price spread", "hour",
		report.SlotLabels(14, len(gaps)), []string{"gap($)", "spread($/kWh)"}, gaps, spreads)
	return &Result{
		ID: "fig8", Title: "Net profits, two-level TUFs",
		Tables: []*report.Table{t, g},
		Notes:  []string{gainNote(opt, bal), "the gap tracks the cross-location price spread"},
	}, nil
}

func runFig9() (*Result, error) {
	ts := NewTwoLevelSetup()
	cfg := ts.Config()
	opt, bal, err := compare(cfg)
	if err != nil {
		return nil, err
	}
	labels := report.SlotLabels(14, len(opt.Slots))
	var tables []*report.Table
	for k := 0; k < 2; k++ {
		tables = append(tables, report.SeriesTable(
			fmt.Sprintf("Request%d allocation (balanced)", k+1), "hour", labels,
			[]string{"datacenter1", "datacenter2"},
			bal.CenterSeries(k, 0), bal.CenterSeries(k, 1)))
		tables = append(tables, report.SeriesTable(
			fmt.Sprintf("Request%d allocation (optimized)", k+1), "hour", labels,
			[]string{"datacenter1", "datacenter2"},
			opt.CenterSeries(k, 0), opt.CenterSeries(k, 1)))
	}
	comp := report.NewTable("Completion and cost", "approach",
		"request1 completed", "request2 completed", "total cost($)", "net profit($)")
	comp.AddRow("optimized",
		report.Pct(opt.CompletionRate(0)), report.Pct(opt.CompletionRate(1)),
		report.F(opt.TotalCost()), report.F(opt.TotalNetProfit()))
	comp.AddRow("balanced",
		report.Pct(bal.CompletionRate(0)), report.Pct(bal.CompletionRate(1)),
		report.F(bal.TotalCost()), report.F(bal.TotalNetProfit()))
	tables = append(tables, comp)

	costOver := 0.0
	if bc := bal.TotalCost(); bc > 0 {
		costOver = opt.TotalCost()/bc - 1
	}
	return &Result{
		ID: "fig9", Title: "Allocations of the requests", Tables: tables,
		Notes: []string{
			fmt.Sprintf("optimized completes %s/%s of request1/request2; balanced %s/%s (paper: 100%% vs 99.45%%/90.19%%)",
				report.Pct(opt.CompletionRate(0)), report.Pct(opt.CompletionRate(1)),
				report.Pct(bal.CompletionRate(0)), report.Pct(bal.CompletionRate(1))),
			fmt.Sprintf("optimized spends %s more on cost yet nets more profit (paper: 7.74%% more cost)",
				report.Pct(costOver)),
		},
	}, nil
}

func runFig10(id string, scale float64) (*Result, error) {
	ts := NewTwoLevelSetupScaled(scale)
	opt, bal, err := compare(ts.Config())
	if err != nil {
		return nil, err
	}
	label := "relatively low workload (capacities scaled x" + report.F(scale) + ")"
	if scale < 1 {
		label = "relatively high workload (capacities scaled x" + report.F(scale) + ")"
	}
	t := profitTable("Hourly net profit, "+label, 14, opt, bal)
	comp := report.NewTable("Completion", "approach", "request1", "request2")
	comp.AddRow("optimized", report.Pct(opt.CompletionRate(0)), report.Pct(opt.CompletionRate(1)))
	comp.AddRow("balanced", report.Pct(bal.CompletionRate(0)), report.Pct(bal.CompletionRate(1)))
	return &Result{
		ID: id, Title: "Net profits, " + label,
		Tables: []*report.Table{t, comp},
		Notes:  []string{gainNote(opt, bal), "optimized stays superior regardless of workload, as the paper claims"},
	}, nil
}

package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Demo", "name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRow("b", "22")
	out := tbl.String()
	if !strings.Contains(out, "Demo") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + rule + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Fatalf("header line: %q", lines[1])
	}
	if !strings.Contains(lines[3], "alpha  1") {
		t.Fatalf("row alignment: %q", lines[3])
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
}

func TestTableRaggedRows(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("x")
	tbl.AddRow("y", "z", "extra")
	out := tbl.String()
	if !strings.Contains(out, "extra") {
		t.Fatal("extra column dropped")
	}
}

func TestF(t *testing.T) {
	cases := map[float64]string{
		3:        "3",
		1234.567: "1234.6",
		12.345:   "12.35",
		0.5:      "0.5000",
		0.000012: "1.2e-05",
	}
	for v, want := range cases {
		if got := F(v); got != want {
			t.Errorf("F(%g) = %q, want %q", v, got, want)
		}
	}
	if F(math.NaN()) != "NaN" || F(math.Inf(1)) != "Inf" {
		t.Error("special values")
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.9945); got != "99.45%" {
		t.Fatalf("Pct = %q", got)
	}
}

func TestSeriesTable(t *testing.T) {
	tbl := SeriesTable("S", "hour", SlotLabels(14, 3), []string{"opt", "bal"},
		[]float64{1, 2, 3}, []float64{4, 5})
	out := tbl.String()
	if !strings.Contains(out, "h14") || !strings.Contains(out, "h16") {
		t.Fatalf("labels missing: %q", out)
	}
	if !strings.Contains(out, "opt") || !strings.Contains(out, "bal") {
		t.Fatal("series names missing")
	}
	// Short series pads with blank, long index labels synthesized.
	tbl2 := SeriesTable("S2", "i", nil, []string{"x"}, []float64{7, 8})
	if !strings.Contains(tbl2.String(), "1") {
		t.Fatal("synthesized index missing")
	}
}

func TestSlotLabels(t *testing.T) {
	got := SlotLabels(22, 3)
	if got[0] != "h22" || got[2] != "h24" {
		t.Fatalf("labels = %v", got)
	}
}

func TestTableWriteCSV(t *testing.T) {
	tbl := NewTable("Demo", "name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRow("beta", "2")
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "name,value\nalpha,1\nbeta,2\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

func TestFracGuardsZeroDenominator(t *testing.T) {
	if got := Frac(5, 0); got != 0 {
		t.Fatalf("Frac(5,0) = %g, want 0", got)
	}
	if got := Frac(0, 0); got != 0 {
		t.Fatalf("Frac(0,0) = %g, want 0", got)
	}
	if got := Frac(3, 4); got != 0.75 {
		t.Fatalf("Frac(3,4) = %g, want 0.75", got)
	}
	if got := Frac(-2, 4); got != -0.5 {
		t.Fatalf("Frac(-2,4) = %g, want -0.5", got)
	}
}

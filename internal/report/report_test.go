package report

import (
	"encoding/csv"
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Demo", "name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRow("b", "22")
	out := tbl.String()
	if !strings.Contains(out, "Demo") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + rule + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Fatalf("header line: %q", lines[1])
	}
	if !strings.Contains(lines[3], "alpha  1") {
		t.Fatalf("row alignment: %q", lines[3])
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
}

func TestTableRaggedRows(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("x")
	tbl.AddRow("y", "z", "extra")
	out := tbl.String()
	if !strings.Contains(out, "extra") {
		t.Fatal("extra column dropped")
	}
}

func TestF(t *testing.T) {
	cases := map[float64]string{
		3:        "3",
		1234.567: "1234.6",
		12.345:   "12.35",
		0.5:      "0.5000",
		0.000012: "1.2e-05",
	}
	for v, want := range cases {
		if got := F(v); got != want {
			t.Errorf("F(%g) = %q, want %q", v, got, want)
		}
	}
	if F(math.NaN()) != "NaN" || F(math.Inf(1)) != "Inf" {
		t.Error("special values")
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.9945); got != "99.45%" {
		t.Fatalf("Pct = %q", got)
	}
}

func TestSeriesTable(t *testing.T) {
	tbl := SeriesTable("S", "hour", SlotLabels(14, 3), []string{"opt", "bal"},
		[]float64{1, 2, 3}, []float64{4, 5})
	out := tbl.String()
	if !strings.Contains(out, "h14") || !strings.Contains(out, "h16") {
		t.Fatalf("labels missing: %q", out)
	}
	if !strings.Contains(out, "opt") || !strings.Contains(out, "bal") {
		t.Fatal("series names missing")
	}
	// Short series pads with blank, long index labels synthesized.
	tbl2 := SeriesTable("S2", "i", nil, []string{"x"}, []float64{7, 8})
	if !strings.Contains(tbl2.String(), "1") {
		t.Fatal("synthesized index missing")
	}
}

func TestSlotLabels(t *testing.T) {
	got := SlotLabels(22, 3)
	if got[0] != "h22" || got[2] != "h24" {
		t.Fatalf("labels = %v", got)
	}
}

func TestTableWriteCSV(t *testing.T) {
	tbl := NewTable("Demo", "name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRow("beta", "2")
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "name,value\nalpha,1\nbeta,2\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

func TestFracGuardsZeroDenominator(t *testing.T) {
	cases := []struct {
		name     string
		num, den float64
		want     float64
	}{
		{"zero-den-positive-num", 5, 0, 0},
		{"zero-den-zero-num", 0, 0, 0},
		{"zero-den-negative-num", -7, 0, 0},
		{"zero-den-inf-num", math.Inf(1), 0, 0},
		{"plain-ratio", 3, 4, 0.75},
		{"negative-ratio", -2, 4, -0.5},
		{"negative-den", 2, -4, -0.5},
		{"zero-num", 0, 9, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Frac(tc.num, tc.den); got != tc.want {
				t.Fatalf("Frac(%g, %g) = %g, want %g", tc.num, tc.den, got, tc.want)
			}
		})
	}
	// The pairing every call site relies on: a degenerate run renders as
	// "0.00%", never NaN/Inf.
	if got := Pct(Frac(3, 0)); got != "0.00%" {
		t.Fatalf("Pct(Frac(3,0)) = %q", got)
	}
}

func TestSeriesTableTrailingLabels(t *testing.T) {
	// More labels than any series has points: the trailing labels must
	// still produce rows (with empty value cells), not vanish.
	tbl := SeriesTable("S", "hour", SlotLabels(0, 4), []string{"x"}, []float64{1, 2})
	if tbl.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4", tbl.NumRows())
	}
	out := tbl.String()
	if !strings.Contains(out, "h02") || !strings.Contains(out, "h03") {
		t.Fatalf("trailing label rows dropped: %q", out)
	}
	// Degenerate but legal: labels with no series at all.
	onlyLabels := SeriesTable("L", "i", []string{"a", "b"}, nil)
	if onlyLabels.NumRows() != 2 {
		t.Fatalf("labels-only rows = %d, want 2", onlyLabels.NumRows())
	}
}

func TestTableRaggedCSV(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("x")
	tbl.AddRow("y", "z", "extra")
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	// The acid test: encoding/csv's Reader rejects records with
	// inconsistent field counts, which is exactly what the old ragged
	// output produced.
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("ragged CSV emitted: %v\n%s", err, b.String())
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	for i, r := range recs {
		if len(r) != 3 {
			t.Fatalf("record %d has %d fields, want 3: %v", i, len(r), r)
		}
	}
	if recs[2][2] != "extra" {
		t.Fatalf("extra cell lost: %v", recs[2])
	}
}

func TestPctNonFinite(t *testing.T) {
	if got := Pct(math.NaN()); got != "NaN" {
		t.Fatalf("Pct(NaN) = %q", got)
	}
	if got := Pct(math.Inf(1)); got != "Inf" {
		t.Fatalf("Pct(+Inf) = %q", got)
	}
	if got := Pct(math.Inf(-1)); got != "Inf" {
		t.Fatalf("Pct(-Inf) = %q", got)
	}
}

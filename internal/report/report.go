// Package report renders plain-text tables and numeric series for the
// experiment harness and the CLI. It has no knowledge of the experiments
// themselves; it only aligns columns and formats numbers compactly.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled grid of cells rendered with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns an empty table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(cells))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// numCols returns the table's column count: the widest of the header
// row and every data row. Render and WriteCSV both normalize to it, so
// ragged AddRow calls come out consistently padded in either format.
func (t *Table) numCols() int {
	cols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	return cols
}

// padded returns row normalized to exactly cols cells: short rows gain
// trailing empty cells, long rows are truncated.
func padded(row []string, cols int) []string {
	if len(row) == cols {
		return row
	}
	out := make([]string, cols)
	copy(out, row)
	return out
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	cols := t.numCols()
	width := make([]int, cols)
	measure := func(row []string) {
		for i, c := range padded(row, cols) {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		row = padded(row, cols)
		for i := 0; i < cols; i++ {
			cell := row[i]
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", width[i]-len(cell)))
		}
		// Trim trailing padding.
		s := strings.TrimRight(b.String(), " ")
		b.Reset()
		b.WriteString(s)
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		var rule []string
		for i := 0; i < cols; i++ {
			rule = append(rule, strings.Repeat("-", width[i]))
		}
		writeRow(rule)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV emits the table as CSV (headers first; the title is not
// included — name the file after it). Every record is padded to the
// table's column count: encoding/csv's Writer happily emits ragged
// records, but its Reader — and most consumers — reject them.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	cols := t.numCols()
	if len(t.Headers) > 0 {
		if err := cw.Write(padded(t.Headers, cols)); err != nil {
			return err
		}
	}
	for _, r := range t.rows {
		if err := cw.Write(padded(r, cols)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("report: render failed: %v", err)
	}
	return b.String()
}

// F formats a float compactly: integers without decimals, small values
// with enough precision to be meaningful.
func F(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 0):
		return "Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	case math.Abs(v) >= 0.001:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// Pct formats a ratio as a percentage, guarding non-finite inputs the
// same way F does (a NaN ratio must not render as "NaN%").
func Pct(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 0):
		return "Inf"
	}
	return fmt.Sprintf("%.2f%%", v*100)
}

// Frac returns num/den, or 0 when den is zero — the guard every ratio
// metric (completion rates, profit retention, share-of-best) should use
// so a degenerate run renders as 0% instead of NaN/Inf poisoning a table
// or a downstream mean.
func Frac(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// SeriesTable builds a table with one row per index and one column per
// named series (plus a leading label column).
func SeriesTable(title, indexName string, labels []string, names []string, series ...[]float64) *Table {
	headers := append([]string{indexName}, names...)
	t := NewTable(title, headers...)
	// One row per index across the longest series AND the label list:
	// trailing labels beyond every series still get a (empty-celled)
	// row instead of being silently dropped.
	n := len(labels)
	for _, s := range series {
		if len(s) > n {
			n = len(s)
		}
	}
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(series)+1)
		if i < len(labels) {
			row = append(row, labels[i])
		} else {
			row = append(row, fmt.Sprintf("%d", i))
		}
		for _, s := range series {
			if i < len(s) {
				row = append(row, F(s[i]))
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// SlotLabels returns "h00".."hNN" style labels starting at start.
func SlotLabels(start, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("h%02d", start+i)
	}
	return out
}

// Package nlp implements a projected-gradient penalty solver for the
// dispatch optimization, used to cross-validate the simplex solver in
// internal/lp. The paper solves its formulations with commercial
// nonlinear/constraint solvers (CPLEX, AIMMS); this package is the
// reproduction's independent second opinion: a completely different
// algorithm that must land on (nearly) the same optimum.
//
// The method maximizes c'x over Ax ≤ b, x ≥ 0 by gradient ascent on the
// quadratic-penalty surrogate
//
//	F(x) = c'x − ρ/2 · Σ_i max(0, a_i'x − b_i)²
//
// with projection onto x ≥ 0, doubling ρ on an outer loop until the
// worst violation is within tolerance. It is slower and only
// near-optimal — which is exactly what makes it a useful cross-check.
package nlp

import (
	"errors"
	"fmt"
	"math"

	"profitlb/internal/lp"
)

// Options tunes the penalty solver. Zero values select defaults.
type Options struct {
	// Tol is the acceptable constraint violation and the relative
	// objective-improvement threshold. Default 1e-6.
	Tol float64
	// MaxOuter bounds penalty-increase rounds. Default 20.
	MaxOuter int
	// MaxInner bounds gradient steps per round. Default 4000.
	MaxInner int
	// Rho0 is the initial penalty weight. Default 10.
	Rho0 float64
	// X0 optionally warm-starts the ascent (e.g. from another solver's
	// solution, to certify its first-order optimality).
	X0 []float64
}

func (o Options) withDefaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	if o.MaxOuter <= 0 {
		o.MaxOuter = 20
	}
	if o.MaxInner <= 0 {
		o.MaxInner = 4000
	}
	if o.Rho0 <= 0 {
		o.Rho0 = 10
	}
	return o
}

// Result is the solver outcome.
type Result struct {
	X         []float64
	Objective float64
	// Violation is the worst remaining constraint violation.
	Violation float64
	Rounds    int
}

// ErrNotConverged is returned when the penalty loop exhausts its rounds
// with a violation above tolerance. The best iterate is still returned.
var ErrNotConverged = errors.New("nlp: penalty loop did not converge")

// row is a densified constraint in ≤ form.
type row struct {
	a  []float64
	b  float64
	eq bool // equality rows penalize both directions
}

// SolveLP solves the linear model with the projected-gradient penalty
// method. GE rows are negated into ≤ form; EQ rows are penalized in both
// directions. Minimization models are negated internally.
func SolveLP(m *lp.Model, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	n := m.NumVariables()
	c := m.ObjectiveCoefs()
	if m.IsMinimize() {
		for i := range c {
			c[i] = -c[i]
		}
	}
	rows := make([]row, 0, m.NumConstraints())
	for i := 0; i < m.NumConstraints(); i++ {
		terms, sense, rhs := m.RowSpec(i)
		a := make([]float64, n)
		for _, t := range terms {
			a[t.Var] += t.Coef
		}
		switch sense {
		case lp.LE:
			rows = append(rows, row{a: a, b: rhs})
		case lp.GE:
			neg := make([]float64, n)
			for j, v := range a {
				neg[j] = -v
			}
			rows = append(rows, row{a: neg, b: -rhs})
		case lp.EQ:
			rows = append(rows, row{a: a, b: rhs, eq: true})
		default:
			return nil, fmt.Errorf("nlp: unknown sense %v", sense)
		}
	}

	// Equilibrate: badly scaled LPs (the dispatch model mixes unit-share
	// variables with thousands-per-hour rates) stall a fixed-step gradient
	// method. Substitute x_j = y_j / colScale_j so every column's largest
	// coefficient is 1, then normalize each row's largest entry to 1.
	colScale := make([]float64, n)
	for j := 0; j < n; j++ {
		m := math.Abs(c[j])
		for _, r := range rows {
			if a := math.Abs(r.a[j]); a > m {
				m = a
			}
		}
		if m == 0 {
			m = 1
		}
		colScale[j] = m
	}
	for j := 0; j < n; j++ {
		c[j] /= colScale[j]
		for _, r := range rows {
			r.a[j] /= colScale[j]
		}
	}
	for i := range rows {
		var m float64
		for _, a := range rows[i].a {
			if v := math.Abs(a); v > m {
				m = v
			}
		}
		if m == 0 {
			continue
		}
		for j := range rows[i].a {
			rows[i].a[j] /= m
		}
		rows[i].b /= m
	}

	x := make([]float64, n)
	if opts.X0 != nil {
		if len(opts.X0) != n {
			return nil, fmt.Errorf("nlp: X0 has %d values, model has %d variables", len(opts.X0), n)
		}
		for j := range x {
			v := opts.X0[j] * colScale[j] // into the equilibrated space
			if v < 0 {
				v = 0
			}
			x[j] = v
		}
	}
	grad := make([]float64, n)
	trial := make([]float64, n)
	rho := opts.Rho0

	var rounds int
	for outer := 0; outer < opts.MaxOuter; outer++ {
		rounds = outer + 1
		// Backtracking line search: grow the step while ascents succeed,
		// halve it when the surrogate worsens. This adapts to whatever
		// residual scale survives equilibration.
		step := 1.0
		stall := 0
		for inner := 0; inner < opts.MaxInner; inner++ {
			f := objective(c, rows, x, rho, grad)
			improved := false
			for tries := 0; tries < 50; tries++ {
				for j := range x {
					v := x[j] + step*grad[j]
					if v < 0 {
						v = 0
					}
					trial[j] = v
				}
				if f2 := objective(c, rows, trial, rho, nil); f2 > f {
					copy(x, trial)
					if f2-f < opts.Tol*(1+math.Abs(f2)) {
						stall++
					} else {
						stall = 0
					}
					step *= 1.5
					improved = true
					break
				}
				step *= 0.5
			}
			if !improved || stall > 5 {
				break
			}
		}
		if worstViolation(rows, x) <= opts.Tol*10 {
			break
		}
		rho *= 4
	}
	// Map the equilibrated solution back to the original variables.
	orig := make([]float64, n)
	for j := range orig {
		orig[j] = x[j] / colScale[j]
	}
	res := &Result{X: orig, Objective: dot(c, x), Violation: worstViolation(rows, x), Rounds: rounds}
	if m.IsMinimize() {
		res.Objective = -res.Objective
	}
	if res.Violation > opts.Tol*100 {
		return res, ErrNotConverged
	}
	return res, nil
}

// objective evaluates the penalty surrogate and, when grad is non-nil,
// writes its gradient.
func objective(c []float64, rows []row, x []float64, rho float64, grad []float64) float64 {
	if grad != nil {
		copy(grad, c)
	}
	f := dot(c, x)
	for _, r := range rows {
		v := dot(r.a, x) - r.b
		if !r.eq && v <= 0 {
			continue
		}
		f -= 0.5 * rho * v * v
		if grad != nil {
			for j, a := range r.a {
				grad[j] -= rho * v * a
			}
		}
	}
	return f
}

func worstViolation(rows []row, x []float64) float64 {
	var worst float64
	for _, r := range rows {
		v := dot(r.a, x) - r.b
		if r.eq {
			v = math.Abs(v)
		}
		if v > worst {
			worst = v
		}
	}
	return worst
}

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

package nlp

import (
	"math"
	"math/rand"
	"testing"

	"profitlb/internal/lp"
)

func TestSolveLPMatchesSimplexSmall(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → 36.
	m := lp.NewModel()
	x := m.AddVariable("x", 3)
	y := m.AddVariable("y", 5)
	m.AddConstraint("c1", []lp.Term{{Var: x, Coef: 1}}, lp.LE, 4)
	m.AddConstraint("c2", []lp.Term{{Var: y, Coef: 2}}, lp.LE, 12)
	m.AddConstraint("c3", []lp.Term{{Var: x, Coef: 3}, {Var: y, Coef: 2}}, lp.LE, 18)
	res, err := SolveLP(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-36) > 0.05 {
		t.Fatalf("objective %g, want ≈36 (violation %g)", res.Objective, res.Violation)
	}
}

func TestSolveLPGEAndEq(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 10 → 20 at (10, 0).
	m := lp.NewModel()
	m.SetMinimize(true)
	m.AddVariable("x", 2)
	m.AddVariable("y", 3)
	m.AddConstraint("cover", []lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, lp.GE, 10)
	res, err := SolveLP(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-20) > 0.05 {
		t.Fatalf("objective %g, want ≈20", res.Objective)
	}

	// max x + 2y s.t. x + y = 5, y ≤ 3 → 8.
	m2 := lp.NewModel()
	m2.AddVariable("x", 1)
	m2.AddVariable("y", 2)
	m2.AddConstraint("bal", []lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, lp.EQ, 5)
	m2.AddConstraint("cap", []lp.Term{{Var: 1, Coef: 1}}, lp.LE, 3)
	res2, err := SolveLP(m2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.Objective-8) > 0.05 {
		t.Fatalf("objective %g, want ≈8", res2.Objective)
	}
}

// TestCrossValidateSimplex is the package's raison d'être: on random
// bounded LPs, two structurally different solvers must agree.
func TestCrossValidateSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		nvars := 2 + rng.Intn(4)
		m := lp.NewModel()
		for v := 0; v < nvars; v++ {
			m.AddVariable("x", rng.Float64()*5)
		}
		for r := 0; r < 2+rng.Intn(4); r++ {
			terms := make([]lp.Term, nvars)
			for v := 0; v < nvars; v++ {
				terms[v] = lp.Term{Var: v, Coef: 0.2 + rng.Float64()*3}
			}
			m.AddConstraint("c", terms, lp.LE, 2+rng.Float64()*10)
		}
		exact, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d: simplex: %v", trial, err)
		}
		approx, err := SolveLP(m, Options{})
		if err != nil {
			t.Fatalf("trial %d: nlp: %v", trial, err)
		}
		// Penalty methods sit slightly outside or inside the feasible
		// region; require agreement within 2%.
		diff := math.Abs(exact.Objective - approx.Objective)
		if diff > 0.02*(1+math.Abs(exact.Objective)) {
			t.Fatalf("trial %d: simplex %g vs nlp %g", trial, exact.Objective, approx.Objective)
		}
	}
}

func TestSolveLPDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Tol != 1e-6 || o.MaxOuter != 20 || o.MaxInner != 4000 || o.Rho0 != 10 {
		t.Fatalf("defaults wrong: %+v", o)
	}
}

func TestSolveLPEmptyModel(t *testing.T) {
	m := lp.NewModel()
	res, err := SolveLP(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != 0 {
		t.Fatalf("empty model objective %g", res.Objective)
	}
}

func TestSolveLPNonNegativeProjection(t *testing.T) {
	// max -x: optimum at x = 0, the projection boundary.
	m := lp.NewModel()
	m.AddVariable("x", -1)
	res, err := SolveLP(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.X[0] != 0 || res.Objective != 0 {
		t.Fatalf("x = %g obj = %g, want 0, 0", res.X[0], res.Objective)
	}
}

func TestSolveLPWarmStart(t *testing.T) {
	m := lp.NewModel()
	x := m.AddVariable("x", 3)
	y := m.AddVariable("y", 5)
	m.AddConstraint("c1", []lp.Term{{Var: x, Coef: 1}}, lp.LE, 4)
	m.AddConstraint("c2", []lp.Term{{Var: y, Coef: 2}}, lp.LE, 12)
	m.AddConstraint("c3", []lp.Term{{Var: x, Coef: 3}, {Var: y, Coef: 2}}, lp.LE, 18)
	// Warm start at the known optimum (2, 6): no improvement possible.
	res, err := SolveLP(m, Options{X0: []float64{2, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective > 36.001 {
		t.Fatalf("warm start improved past the optimum: %g", res.Objective)
	}
	if math.Abs(res.Objective-36) > 0.1 {
		t.Fatalf("warm start drifted: %g", res.Objective)
	}
	// Wrong X0 length is rejected.
	if _, err := SolveLP(m, Options{X0: []float64{1}}); err == nil {
		t.Fatal("bad X0 length accepted")
	}
	// Negative warm-start values are projected onto the feasible orthant.
	res2, err := SolveLP(m, Options{X0: []float64{-5, -5}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.Objective-36) > 0.5 {
		t.Fatalf("projected warm start ended at %g", res2.Objective)
	}
}

package des

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"profitlb/internal/baseline"
	"profitlb/internal/core"
	"profitlb/internal/datacenter"
	"profitlb/internal/fault"
	"profitlb/internal/market"
	"profitlb/internal/queue"
	"profitlb/internal/resilient"
	"profitlb/internal/sim"
	"profitlb/internal/tuf"
	"profitlb/internal/workload"
)

func testConfig(slots int) Config {
	sys := &datacenter.System{
		Classes: []datacenter.RequestClass{
			{Name: "a", TUF: tuf.MustNew([]tuf.Level{{Utility: 10, Deadline: 0.01}}), TransferCostPerMile: 0.0002},
			{Name: "b", TUF: tuf.MustNew([]tuf.Level{{Utility: 20, Deadline: 0.006}, {Utility: 8, Deadline: 0.05}}), TransferCostPerMile: 0.0003},
		},
		FrontEnds: []datacenter.FrontEnd{
			{Name: "fe1", DistanceMiles: []float64{200, 1100}},
			{Name: "fe2", DistanceMiles: []float64{900, 250}},
		},
		Centers: []datacenter.DataCenter{
			{Name: "dc1", Servers: 5, Capacity: 1, ServiceRate: []float64{3000, 2200}, EnergyPerRequest: []float64{0.002, 0.003}},
			{Name: "dc2", Servers: 5, Capacity: 1, ServiceRate: []float64{2800, 2400}, EnergyPerRequest: []float64{0.0022, 0.0028}},
		},
	}
	t1 := workload.ShiftTypes("fe1", workload.WorldCupLike(workload.WorldCupConfig{Seed: 4, Base: 3000}), 2, 5)
	t2 := workload.ShiftTypes("fe2", workload.WorldCupLike(workload.WorldCupConfig{Seed: 5, Base: 2500}), 2, 5)
	return Config{
		Sim: sim.Config{
			Sys:    sys,
			Traces: []*workload.Trace{t1, t2},
			Prices: []*market.PriceTrace{market.Houston(), market.Atlanta()},
			Slots:  slots,
		},
		Planner: core.NewOptimized(),
		Seed:    99,
	}
}

func TestRunRealizesPlans(t *testing.T) {
	cfg := testConfig(4)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Slots) != 4 {
		t.Fatalf("slots %d", len(rep.Slots))
	}
	for i, sr := range rep.Slots {
		if sr.Classes[0].Served == 0 && sr.Classes[1].Served == 0 {
			t.Fatalf("slot %d served nothing", i)
		}
		if math.Abs(sr.RealizedNetProfit-(sr.Revenue-sr.EnergyCost-sr.TransferCost)) > 1e-6 {
			t.Fatalf("slot %d: inconsistent realized accounting", i)
		}
		for k, cs := range sr.Classes {
			if cs.MeanDelay < 0 || cs.MaxDelay < cs.MeanDelay {
				t.Fatalf("slot %d class %d: delays mean %g max %g", i, k, cs.MeanDelay, cs.MaxDelay)
			}
			if cs.DeadlineMisses > cs.Served {
				t.Fatalf("slot %d class %d: more misses than requests", i, k)
			}
		}
	}
}

func TestRealizedTracksPlannedProfit(t *testing.T) {
	// The realized per-request profit differs from the fluid expectation
	// (step TUFs over random delays), but must land in the same ballpark:
	// within 35% over a few busy slots.
	cfg := testConfig(6)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	planned, realized := rep.TotalPlanned(), rep.TotalRealized()
	if planned <= 0 || realized <= 0 {
		t.Fatalf("planned %g realized %g", planned, realized)
	}
	if r := realized / planned; r < 0.65 || r > 1.6 {
		t.Fatalf("realized/planned = %g, outside the plausible band", r)
	}
}

func TestServedCountsNearExpectation(t *testing.T) {
	// Realized arrivals are Poisson with the planned rate; totals over a
	// slot must match λ·T within a few percent at these volumes.
	cfg := testConfig(2)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fluid, err := sim.Run(cfg.Sim, core.NewOptimized())
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Slots {
		for k := 0; k < 2; k++ {
			want := fluid.Slots[i].ServedByType[k]
			got := float64(rep.Slots[i].Classes[k].Served)
			if want == 0 {
				continue
			}
			if math.Abs(got-want)/want > 0.08 {
				t.Fatalf("slot %d type %d: realized %g vs fluid %g", i, k, got, want)
			}
		}
	}
}

func TestDeterministicInSeed(t *testing.T) {
	a, err := Run(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalRealized() != b.TotalRealized() {
		t.Fatal("same seed, different realization")
	}
}

func TestMissRateModerate(t *testing.T) {
	// Plans sit on level deadlines, so roughly an exponential tail of
	// requests misses them; the rate must be far from both 0 and 1.
	rep, err := Run(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		mr := rep.MissRate(k)
		if mr <= 0.01 || mr >= 0.9 {
			t.Fatalf("type %d miss rate %g implausible", k, mr)
		}
	}
}

func TestRunWithBalancedBaseline(t *testing.T) {
	cfg := testConfig(2)
	cfg.Planner = baseline.NewBalanced()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Planner != "balanced" {
		t.Fatalf("planner %q", rep.Planner)
	}
	if rep.TotalRealized() <= 0 {
		t.Fatal("balanced realization unprofitable")
	}
}

func TestRunErrors(t *testing.T) {
	cfg := testConfig(1)
	cfg.Planner = nil
	if _, err := Run(cfg); err == nil {
		t.Fatal("want error without planner")
	}
	cfg = testConfig(1)
	cfg.Sim.Slots = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("want config validation error")
	}
}

func TestThin(t *testing.T) {
	cfg := testConfig(2)
	thin := Thin(cfg, 0.1)
	for s := 0; s < thin.Sim.Traces[0].Slots(); s++ {
		for k := 0; k < 2; k++ {
			want := cfg.Sim.Traces[0].At(s, k) * 0.1
			if math.Abs(thin.Sim.Traces[0].At(s, k)-want) > 1e-9 {
				t.Fatal("thinning wrong")
			}
		}
	}
	// Original untouched.
	if cfg.Sim.Traces[0].At(0, 0) == thin.Sim.Traces[0].At(0, 0) {
		t.Fatal("thin aliases original")
	}
	if _, err := Run(thin); err != nil {
		t.Fatal(err)
	}
}

func TestMissRateEmptyReport(t *testing.T) {
	r := &Report{Slots: []SlotResult{{Classes: make([]ClassSlot, 1)}}}
	if r.MissRate(0) != 0 {
		t.Fatal("empty miss rate should be 0")
	}
}

func TestServiceCVOrdersMissRates(t *testing.T) {
	// The steadier the service distribution, the fewer deadline misses:
	// Erlang-16 < exponential < hyperexponential.
	miss := map[string]float64{}
	for name, cv := range map[string]float64{"det": 0.25, "exp": 1, "hyper": 2.5} {
		cfg := testConfig(3)
		cfg.ServiceCV = cv
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		miss[name] = (rep.MissRate(0) + rep.MissRate(1)) / 2
	}
	if !(miss["det"] < miss["exp"] && miss["exp"] < miss["hyper"]) {
		t.Fatalf("miss-rate ordering wrong: %v", miss)
	}
}

func TestServiceCVErlang(t *testing.T) {
	// CV = 0.5 → Erlang-4: between deterministic and exponential.
	cfg := testConfig(2)
	cfg.ServiceCV = 0.5
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgExp := testConfig(2)
	repExp, err := Run(cfgExp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MissRate(0) >= repExp.MissRate(0) {
		t.Fatalf("Erlang miss %g not below exponential %g", rep.MissRate(0), repExp.MissRate(0))
	}
}

func TestServiceSamplerMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, cv := range []float64{0, 0.5, 1, 2} {
		sample := serviceSampler(cv)
		const n = 200000
		mu := 50.0
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			v := sample(rng, mu)
			sum += v
			sumsq += v * v
		}
		mean := sum / n
		if math.Abs(mean-1/mu) > 0.03/mu {
			t.Fatalf("cv=%g: mean %g, want %g", cv, mean, 1/mu)
		}
		if cv <= 0 {
			continue
		}
		variance := sumsq/n - mean*mean
		wantSD := cv / mu
		gotSD := math.Sqrt(math.Max(variance, 0))
		if math.Abs(gotSD-wantSD) > 0.05/mu+0.05*wantSD {
			t.Fatalf("cv=%g: sd %g, want %g", cv, gotSD, wantSD)
		}
	}
}

func TestServiceSamplerDefaultExponential(t *testing.T) {
	// The zero value must be exponential: mean 1/mu AND sd ≈ 1/mu.
	rng := rand.New(rand.NewSource(12))
	sample := serviceSampler(0)
	const n = 100000
	mu := 20.0
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := sample(rng, mu)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-1/mu) > 0.03/mu || math.Abs(sd-1/mu) > 0.05/mu {
		t.Fatalf("default sampler mean %g sd %g, want both ≈ %g", mean, sd, 1/mu)
	}
}

// failingPlanner errors on every slot at or past `at`.
type failingPlanner struct {
	inner core.Planner
	at    int
}

func (f *failingPlanner) Name() string { return "failing" }
func (f *failingPlanner) Plan(in *core.Input) (*core.Plan, error) {
	if in.Slot >= f.at {
		return nil, errWontPlan
	}
	return f.inner.Plan(in)
}

var errWontPlan = errors.New("des test: scripted planner failure")

func TestRunAbortKeepsPartialReport(t *testing.T) {
	cfg := testConfig(4)
	cfg.Planner = &failingPlanner{inner: core.NewOptimized(), at: 2}
	rep, err := Run(cfg)
	if err == nil {
		t.Fatal("failing planner did not abort")
	}
	if rep == nil || len(rep.Slots) != 2 {
		t.Fatalf("partial report lost: %+v", rep)
	}
}

func TestRunDegradesThroughFaultStorm(t *testing.T) {
	cfg := testConfig(4)
	cfg.Sim.Faults = &fault.Schedule{Events: []fault.Event{
		{Kind: fault.CenterOutage, Center: 1, From: 1, To: 1},
		{Kind: fault.PlannerError, From: 2, To: 2},
	}}
	cfg.Sim.DegradeOnFailure = true
	cfg.Planner = resilient.Wrap(&fault.Injector{Planner: core.NewOptimized(), Sched: cfg.Sim.Faults})
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Slots) != 4 {
		t.Fatalf("storm horizon stopped at %d slots", len(rep.Slots))
	}
	// Outage slot: the surviving center still realizes traffic and the
	// report names the active fault.
	var served int
	for k := range rep.Slots[1].Classes {
		served += rep.Slots[1].Classes[k].Served
	}
	if served == 0 {
		t.Fatal("outage slot realized nothing at the surviving center")
	}
	if len(rep.Slots[1].FaultsActive) == 0 || !strings.Contains(rep.Slots[1].FaultsActive[0], "center-outage") {
		t.Fatalf("outage slot faults = %v", rep.Slots[1].FaultsActive)
	}
	// Injected-error slot: the fallback chain fired and the report says so.
	if !rep.Slots[2].Degraded || rep.Slots[2].FallbackTier != 1 {
		t.Fatalf("slot 2: degraded=%v tier=%d, want fallback tier 1",
			rep.Slots[2].Degraded, rep.Slots[2].FallbackTier)
	}
	if rep.Slots[0].Degraded || rep.Slots[3].Degraded {
		t.Fatal("healthy slots marked degraded")
	}
}

// TestSimulateQueueMatchesPollaczekKhinchine cross-validates the
// request-level simulator against the analytical M/G/1 formula in
// internal/queue for several service-time distributions.
func TestSimulateQueueMatchesPollaczekKhinchine(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	lam, mu := 60.0, 100.0
	utility := func(float64) float64 { return 0 }
	for _, cv := range []float64{0.5, 1, 2} {
		sample := serviceSampler(cv)
		served, _, stats := simulateQueue(rng, sample, lam, mu, 4000, utility, 1)
		if served < 100000 {
			t.Fatalf("cv=%g: only %d requests", cv, served)
		}
		mean := stats.sumDelay / float64(served)
		g := queue.MG1{Phi: 1, C: 1, Mu: mu, CV: cv}
		want, err := g.Delay(lam)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mean-want)/want > 0.08 {
			t.Fatalf("cv=%g: simulated %g vs Pollaczek-Khinchine %g", cv, mean, want)
		}
	}
}

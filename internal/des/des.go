// Package des is a request-level discrete-event simulator for the whole
// distributed system: where internal/sim accounts each slot in fluid
// expectation (rates × expected delays, as the paper's own evaluation
// does), des realizes every individual request — Poisson arrivals within
// the slot, exponential service on the share each commodity owns, and
// per-request utility evaluated on the request's own response time.
//
// It answers the question a downstream operator would ask before trusting
// the fluid numbers: if actual requests flow through the planned shares,
// how close are realized service counts, delays and dollars to the plan?
//
// Each (type, level) commodity on each powered-on server is an
// independent M/M/1 queue (virtualized CPU shares isolate them), so the
// exact Lindley recurrence applies per queue and no global event heap is
// needed. Slot boundaries are treated as queue resets: level deadlines
// (≈ seconds) are several orders of magnitude below the slot length
// (1 hour), so boundary effects are negligible by construction.
package des

import (
	"fmt"
	"math"
	"math/rand"

	"profitlb/internal/core"
	"profitlb/internal/sim"
	"profitlb/internal/workload"
)

// Config drives a request-level run.
type Config struct {
	// Sim is the fluid configuration to realize (system, traces, prices,
	// horizon).
	Sim sim.Config
	// Planner plans each slot exactly as in the fluid simulation.
	Planner core.Planner
	// Seed makes the request sampling deterministic.
	Seed int64
	// ServiceCV is the coefficient of variation of service times: ≤ 0
	// (the zero-value default) or exactly 1 draws exponential service,
	// matching the planner's M/M/1 assumption; 0 < CV < 1 draws Erlang-k
	// (steadier, k capped at 64, so the smallest effective CV is 0.125);
	// CV > 1 draws a balanced two-phase hyperexponential (burstier). Use
	// it to stress the plan against service distributions the paper's
	// model does not cover (see the M/G/1 analysis in internal/queue).
	ServiceCV float64
}

// serviceSampler returns a deterministic-in-rng sampler of service times
// with mean 1/mu and the configured coefficient of variation.
func serviceSampler(cv float64) func(rng *rand.Rand, mu float64) float64 {
	switch {
	case cv <= 0 || cv == 1:
		return func(rng *rand.Rand, mu float64) float64 { return rng.ExpFloat64() / mu }
	case cv < 1:
		// Erlang-k with k = round(1/cv²): sum of k exponentials at rate kμ.
		k := int(math.Round(1 / (cv * cv)))
		if k < 1 {
			k = 1
		}
		if k > 64 {
			k = 64
		}
		return func(rng *rand.Rand, mu float64) float64 {
			var s float64
			for i := 0; i < k; i++ {
				s += rng.ExpFloat64()
			}
			return s / (float64(k) * mu)
		}
	default:
		// Balanced-means H2: with probability p rate 2pμ, else 2(1−p)μ.
		c2 := cv * cv
		p := 0.5 * (1 + math.Sqrt((c2-1)/(c2+1)))
		return func(rng *rand.Rand, mu float64) float64 {
			if rng.Float64() < p {
				return rng.ExpFloat64() / (2 * p * mu)
			}
			return rng.ExpFloat64() / (2 * (1 - p) * mu)
		}
	}
}

// ClassSlot aggregates one request type's realized behaviour in a slot.
type ClassSlot struct {
	// Served is the number of individual requests that flowed through the
	// planned queues.
	Served int
	// MeanDelay is the realized mean response time.
	MeanDelay float64
	// MaxDelay is the slowest request's response time.
	MaxDelay float64
	// DeadlineMisses counts requests finishing after their commodity's
	// level deadline (they earn a lower TUF step, or nothing).
	DeadlineMisses int
}

// SlotResult is the realized accounting of one slot.
type SlotResult struct {
	Slot int
	// Degraded marks a slot that did not get its primary plan: a
	// resilient fallback tier fired, or the plan failed and the slot's
	// load was shed (Config.Sim.DegradeOnFailure).
	Degraded bool
	// FallbackTier mirrors sim.SlotReport.FallbackTier (-1 when the
	// planner reports no fallback state).
	FallbackTier int
	// FallbackName is the committed tier's name ("shed" for a shed slot).
	FallbackName string
	// FaultsActive lists the injected faults in effect during the slot.
	FaultsActive []string
	// PlannedNetProfit is the fluid expectation (the planner's Eq. 5
	// objective value).
	PlannedNetProfit float64
	// RealizedNetProfit bills every request at the TUF value of its own
	// response time, minus realized energy and transfer costs.
	RealizedNetProfit float64
	// Revenue, EnergyCost and TransferCost are the realized components.
	Revenue      float64
	EnergyCost   float64
	TransferCost float64
	// Classes holds the per-type realized statistics.
	Classes []ClassSlot
}

// Report is the realized run.
type Report struct {
	Planner string
	Slots   []SlotResult
}

// TotalPlanned sums the fluid expectations.
func (r *Report) TotalPlanned() float64 {
	var s float64
	for i := range r.Slots {
		s += r.Slots[i].PlannedNetProfit
	}
	return s
}

// TotalRealized sums the realized per-request profits.
func (r *Report) TotalRealized() float64 {
	var s float64
	for i := range r.Slots {
		s += r.Slots[i].RealizedNetProfit
	}
	return s
}

// MissRate returns the fraction of served type-k requests that missed
// their commodity's level deadline over the whole run.
func (r *Report) MissRate(k int) float64 {
	var served, missed int
	for i := range r.Slots {
		served += r.Slots[i].Classes[k].Served
		missed += r.Slots[i].Classes[k].DeadlineMisses
	}
	if served == 0 {
		return 0
	}
	return float64(missed) / float64(served)
}

// Run plans every slot and pushes sampled requests through the planned
// queues. The planner sees exactly what it would see in the fluid
// simulation — including any fault-distorted view from Config.Sim.Faults
// — while realization and accounting use the true arrivals, prices and
// surviving capacity. A failed slot (planner error or panic, infeasible
// plan) aborts the run with the partial report, or — when
// Config.Sim.DegradeOnFailure is set — sheds its load and continues.
func Run(cfg Config) (*Report, error) {
	if cfg.Planner == nil {
		return nil, fmt.Errorf("des: no planner configured")
	}
	if err := cfg.Sim.Validate(); err != nil {
		return nil, err
	}
	sys := cfg.Sim.Sys
	T := sys.Slot()
	K, S, L := sys.K(), sys.S(), sys.L()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sample := serviceSampler(cfg.ServiceCV)
	report := &Report{Planner: cfg.Planner.Name()}
	faults := cfg.Sim.Faults

	for slot := 0; slot < cfg.Sim.Slots; slot++ {
		abs := cfg.Sim.StartSlot + slot
		arr := make([][]float64, S)
		planArr := make([][]float64, S)
		for s := 0; s < S; s++ {
			arr[s] = make([]float64, K)
			planArr[s] = make([]float64, K)
			for k := 0; k < K; k++ {
				arr[s][k] = cfg.Sim.Traces[s].At(abs, k)
				planArr[s][k] = faults.ObservedArrival(arr[s][k], s, abs)
			}
		}
		prices := make([]float64, L)
		planPrices := make([]float64, L)
		for l := 0; l < L; l++ {
			prices[l] = faults.TruePrice(cfg.Sim.Prices[l], l, abs)
			planPrices[l] = faults.ObservedPrice(cfg.Sim.Prices[l], l, abs)
		}
		effSys, _ := faults.EffectiveSystem(sys, abs)
		in := &core.Input{Sys: effSys, Arrivals: planArr, Prices: planPrices, Slot: abs}
		plan, err := planSafely(cfg.Planner, in)
		if err == nil {
			if verr := core.Verify(in, plan, 1e-6); verr != nil {
				err = fmt.Errorf("infeasible plan: %w", verr)
			}
		}
		if err == nil && faults.ArrivalsFaulted(abs) {
			// The planner committed against a distorted arrival view; cap
			// the realized flows to what actually arrived.
			sim.Reconcile(plan, arr)
			realIn := &core.Input{Sys: effSys, Arrivals: arr, Prices: prices, Slot: abs}
			if verr := core.Verify(realIn, plan, 1e-6); verr != nil {
				err = fmt.Errorf("reconciled plan infeasible: %w", verr)
			}
		}
		if err != nil {
			if !cfg.Sim.DegradeOnFailure {
				return report, fmt.Errorf("des: slot %d: %w", slot, err)
			}
			report.Slots = append(report.Slots, SlotResult{
				Slot: abs, Degraded: true, FallbackTier: -1, FallbackName: "shed",
				FaultsActive: faults.ActiveNames(abs),
				Classes:      make([]ClassSlot, K),
			})
			continue
		}
		sr := SlotResult{
			Slot:             abs,
			PlannedNetProfit: plan.Objective,
			FallbackTier:     -1,
			FaultsActive:     faults.ActiveNames(abs),
			Classes:          make([]ClassSlot, K),
		}
		if fr, ok := cfg.Planner.(sim.FallbackReporter); ok {
			sr.FallbackTier, sr.FallbackName, sr.Degraded = fr.FallbackState()
		}
		for l := 0; l < L; l++ {
			dc := &effSys.Centers[l]
			for k := 0; k < K; k++ {
				cls := sys.Classes[k].TUF
				for q := range plan.Rate[k] {
					lamTotal := plan.CenterRate(k, q, l)
					if lamTotal <= 1e-9 {
						continue
					}
					mu := plan.Phi[l][k][q] * dc.Capacity * dc.ServiceRate[k]
					lamPS := lamTotal / float64(plan.ServersOn[l])
					deadline := cls.Level(q).Deadline
					// Expected per-request transfer cost for this
					// commodity, weighted by its front-end mix.
					var tc float64
					for s := 0; s < S; s++ {
						tc += sys.TransferCost(k, s, l) * plan.Rate[k][q][s][l]
					}
					tc /= lamTotal
					energy := sys.EnergyCost(k, l, prices[l])
					for srv := 0; srv < plan.ServersOn[l]; srv++ {
						served, revenue, stats := simulateQueue(rng, sample, lamPS, mu, T, cls.Utility, deadline)
						sr.Revenue += revenue
						sr.EnergyCost += energy * float64(served)
						sr.TransferCost += tc * float64(served)
						agg := &sr.Classes[k]
						// Merge the per-queue stats into the class slot.
						total := agg.Served + served
						if total > 0 {
							agg.MeanDelay = (agg.MeanDelay*float64(agg.Served) + stats.sumDelay) / float64(total)
						}
						agg.Served = total
						agg.DeadlineMisses += stats.misses
						if stats.maxDelay > agg.MaxDelay {
							agg.MaxDelay = stats.maxDelay
						}
					}
				}
			}
		}
		sr.RealizedNetProfit = sr.Revenue - sr.EnergyCost - sr.TransferCost
		report.Slots = append(report.Slots, sr)
	}
	return report, nil
}

// planSafely invokes the planner, recovering a panic into an error so a
// bad planner degrades (or aborts with a partial report) instead of
// crashing the realization.
func planSafely(p core.Planner, in *core.Input) (plan *core.Plan, err error) {
	defer func() {
		if r := recover(); r != nil {
			plan, err = nil, fmt.Errorf("planner %s panicked: %v", p.Name(), r)
		}
	}()
	return p.Plan(in)
}

// queueStats carries per-queue realized aggregates.
type queueStats struct {
	sumDelay float64
	maxDelay float64
	misses   int
}

// simulateQueue realizes one commodity queue on one server for a slot of
// length T: Poisson arrivals at rate lam, exponential service at rate mu,
// FIFO. Revenue is the sum of the TUF evaluated at each request's own
// response time. Requests arriving within the slot are all served (their
// service spills past the boundary by at most a few mean delays, which is
// negligible against T).
func simulateQueue(rng *rand.Rand, sample func(*rand.Rand, float64) float64, lam, mu, T float64, utility func(float64) float64, deadline float64) (int, float64, queueStats) {
	var stats queueStats
	if lam <= 0 || mu <= 0 {
		return 0, 0, stats
	}
	var served int
	var revenue float64
	var arrive, departPrev float64
	for {
		arrive += rng.ExpFloat64() / lam
		if arrive > T {
			break
		}
		start := arrive
		if departPrev > start {
			start = departPrev
		}
		depart := start + sample(rng, mu)
		delay := depart - arrive
		departPrev = depart
		served++
		revenue += utility(delay)
		stats.sumDelay += delay
		if delay > stats.maxDelay {
			stats.maxDelay = delay
		}
		if delay > deadline {
			stats.misses++
		}
	}
	return served, revenue, stats
}

// Thin returns a copy of the configuration with every trace scaled by f,
// for keeping request counts tractable in tests (note that thinning a
// queueing system changes its delays; use it to bound runtime, not to
// extrapolate dollars).
func Thin(cfg Config, f float64) Config {
	out := cfg
	out.Sim.Traces = make([]*workload.Trace, len(cfg.Sim.Traces))
	for i, tr := range cfg.Sim.Traces {
		cp := &workload.Trace{Name: tr.Name, Rates: make([][]float64, tr.Slots())}
		for s := 0; s < tr.Slots(); s++ {
			row := make([]float64, tr.Types())
			for k := range row {
				row[k] = tr.At(s, k) * f
			}
			cp.Rates[s] = row
		}
		out.Sim.Traces[i] = cp
	}
	return out
}

package mpc

import (
	"sort"

	"profitlb/internal/core"
	"profitlb/internal/datacenter"
	"profitlb/internal/obs"
)

// drainEps is the volume below which a due residue is not worth forcing
// (CommitSlot's dust clamp absorbs it anyway).
const drainEps = 1e-9

// ForceDrain implements core.DeferralPlanner: augment a committed plan in
// place so buckets due this slot (r=0) are dispatched wherever capacity
// remains, and return the volume placed. The horizon LP's backlog budget
// rows are ≤, so it may leave a due bucket unserved when serving it is
// unprofitable; the contract says the work must run anyway. Placement is
// a greedy three-stage escalation per center — fill existing commodity
// slack, grow CPU shares out of the center's free share, power on more
// servers — and is deterministic. Work that still does not fit stays in
// the bucket for CommitSlot to shed.
func (p *Planner) ForceDrain(in *core.Input, committed *core.Plan) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.forceDrainLocked(in, committed)
}

func (p *Planner) forceDrainLocked(in *core.Input, plan *core.Plan) float64 {
	K, S := in.Sys.K(), in.Sys.S()
	p.lazyInit(K, S, in.Sys.L())
	for k := range p.forced {
		p.forced[k] = 0
	}
	var total float64
	for s := 0; s < S; s++ {
		for k := 0; k < K; k++ {
			buckets := p.backlog[s][k]
			if len(buckets) == 0 || buckets[0] <= drainEps {
				continue
			}
			// CommitSlot attributes served volume to the oldest bucket
			// first, so the due bucket is covered up to the plan's existing
			// dispatch; only the shortfall needs forcing.
			need := buckets[0] - plan.ServedFrom(k, s)
			if need <= drainEps {
				continue
			}
			placed := placeVolume(in, plan, k, s, need)
			p.forced[k] += placed
			total += placed
		}
	}
	if total > 0 && p.sc.Enabled() {
		p.sc.Counter("mpc_force_drains_total", obs.L("planner", p.Name())).Add(1)
	}
	return total
}

// placeVolume routes up to need rate units of class k from front-end s
// into the plan, preserving feasibility (share sums ≤ 1, level deadlines
// met at the resulting loads), and returns the volume placed. Centers are
// tried in index order; within a center, levels loosest-deadline first —
// the cheapest share reservation per unit of capacity, and force-drained
// work only needs completion, not a premium utility level. Escalation per
// center: fill the free share, power on more servers, and finally reclaim
// other commodities' over-sized share reservations (plans consolidated
// onto few servers carry per-server shares far above what the now-larger
// server count requires).
func placeVolume(in *core.Input, plan *core.Plan, k, s int, need float64) float64 {
	sys := in.Sys
	levels := sys.Classes[k].TUF.Levels()
	order := make([]int, len(levels))
	for q := range order {
		order[q] = q
	}
	sort.SliceStable(order, func(a, b int) bool {
		return levels[order[a]].Deadline > levels[order[b]].Deadline
	})
	var placed float64
	for l := 0; l < sys.L() && need > drainEps; l++ {
		dc := &sys.Centers[l]
		mu := dc.Capacity * dc.ServiceRate[k]
		if mu <= 0 || dc.Servers == 0 {
			continue
		}
		reclaimed := false
		for _, q := range order {
			D := levels[q].Deadline
			for need > drainEps {
				n := float64(plan.ServersOn[l])
				if n > 0 {
					// Capacity for (k,q,l) if its share may grow into the
					// center's free share: n·μ·(φ+free) − n/D − Λ.
					lam := plan.CenterRate(k, q, l)
					phi := plan.Phi[l][k][q]
					free := 1 - centerShare(plan, l)
					if free < 0 {
						free = 0
					}
					avail := n*mu*(phi+free) - n/D - lam
					if avail > drainEps {
						d := need
						if d > avail {
							d = avail
						}
						// Re-derive the exact share at the new load; never
						// shrink an existing reservation.
						if req := (lam+d)/(n*mu) + 1/(D*mu); req > phi {
							plan.Phi[l][k][q] = req
						}
						plan.Rate[k][q][s][l] += d
						need -= d
						placed += d
						continue
					}
				}
				if plan.ServersOn[l] < dc.Servers {
					// Powering on another server never hurts: per-server
					// shares are unchanged and every commodity's per-server
					// load only falls.
					plan.ServersOn[l]++
					continue
				}
				if !reclaimed {
					reclaimed = true
					if reclaimShares(in.Sys, plan, l) {
						continue
					}
				}
				break
			}
		}
	}
	return placed
}

// reclaimShares re-derives every commodity's share reservation at center
// l's current server count and shrinks over-sized ones down to the exact
// delay requirement φ = Λ/(n·μ) + 1/(D·μ) (a commodity with no load needs
// none at all). Only ever shrinks — growth is placeVolume's business — so
// every commodity stays exactly feasible. Returns whether any share was
// released.
func reclaimShares(sys *datacenter.System, plan *core.Plan, l int) bool {
	n := float64(plan.ServersOn[l])
	if n <= 0 {
		return false
	}
	dc := &sys.Centers[l]
	changed := false
	for k := range plan.Phi[l] {
		mu := dc.Capacity * dc.ServiceRate[k]
		if mu <= 0 {
			continue
		}
		levels := sys.Classes[k].TUF.Levels()
		for q := range plan.Phi[l][k] {
			phi := plan.Phi[l][k][q]
			if phi <= 0 {
				continue
			}
			var req float64
			if lam := plan.CenterRate(k, q, l); lam > 0 {
				req = lam/(n*mu) + 1/(levels[q].Deadline*mu)
			}
			if req < phi-1e-12 {
				plan.Phi[l][k][q] = req
				changed = true
			}
		}
	}
	return changed
}

// centerShare sums the per-server CPU shares granted at center l.
func centerShare(plan *core.Plan, l int) float64 {
	var sum float64
	for k := range plan.Phi[l] {
		for _, phi := range plan.Phi[l][k] {
			sum += phi
		}
	}
	return sum
}

// Package mpc implements a rolling-horizon (model-predictive) planning
// plane over the paper's slot optimization. Where the paper's planner is
// slot-myopic — every request is dispatched, or lost, in the slot it
// arrives — the MPC planner treats each slot as the first of an H-slot
// window: it forecasts the remaining H−1 slots' arrivals and prices,
// solves the joint horizon LP (core.PlanHorizon's formulation, warm-started
// across windows), commits only slot 0's dispatch, and rolls forward.
//
// What makes the window worth solving is deferrable work: classes whose
// contract allows buffering for up to MaxDefer slots before dispatch.
// Work the LP chooses not to serve now enters a deadline-aware backlog —
// per-(front-end, class) aging buckets, where bucket r must be served
// within r further slots — and re-enters every subsequent window as
// carried backlog until it is served, force-dispatched at its deadline,
// or shed. During a price spike the LP sees cheaper forecast slots ahead
// and holds deferrable work back; the valleys drain the buffer. The
// controller enforces what the LP only prefers: buckets reaching r=0 are
// force-drained into whatever capacity remains, and only work that
// physically cannot fit is shed (a deadline miss, billed as lost revenue).
//
// The planner is a core.DeferralPlanner; hosts (internal/sim,
// internal/resilient) drive the settlement hook CommitSlot exactly once
// per slot and verify committed plans against arrivals plus the backlog
// budget. All planner state is mutex-guarded: a resilient chain's
// abandoned-timeout goroutines may still be inside Plan while the chain
// commits a fallback tier and calls ForceDrain.
package mpc

import "fmt"

// Config tunes the rolling-horizon controller.
type Config struct {
	// Horizon is the window length H in slots. 1 disables lookahead — a
	// one-slot window cannot see the future, so deferral is pointless and
	// the planner reduces exactly to the myopic optimizer.
	Horizon int `json:"horizon,omitempty"`
	// MaxDefer[k] is how many whole slots class k may be buffered before
	// dispatch (0 = the paper's must-serve-on-arrival). Nil means all
	// zeros, which also reduces the planner to the myopic optimizer.
	MaxDefer []int `json:"maxDefer,omitempty"`
	// EndSlot, when positive, is the first absolute slot past the run:
	// planning windows truncate at it and nothing is deferred beyond it,
	// so work that could only run after the end is lost immediately
	// instead of stranded in the buffer.
	EndSlot int `json:"endSlot,omitempty"`
	// DeferMargin is the robustness hedge on forecast prices: horizon
	// assembly inflates every future slot's price by (1+DeferMargin), so
	// the LP only withholds profitable work for later when the predicted
	// saving is large enough to survive forecast error. Without it a
	// lagging forecast under-predicts prices on every upward ramp and the
	// planner defers work straight into the peak. Passively-unserved work
	// (unprofitable or capacity-starved now) still enters the backlog
	// regardless — the margin gates active withholding only. 0 means the
	// default 0.2; negative means no hedge.
	DeferMargin float64 `json:"deferMargin,omitempty"`
	// ProcessRel and MeasureRel scale the internal Kalman filters' noise
	// relative to each element's first observation (used only when no
	// external forecast source is attached). Defaults 0.15 and 0.05,
	// matching the feed layer's.
	ProcessRel float64 `json:"processRel,omitempty"`
	MeasureRel float64 `json:"measureRel,omitempty"`
	// MinObservations is how many samples an internal filter needs before
	// its projection outranks the last observation held flat (default 3).
	MinObservations int `json:"minObservations,omitempty"`
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Horizon == 0 {
		c.Horizon = 4
	}
	switch {
	case c.DeferMargin == 0:
		c.DeferMargin = 0.2
	case c.DeferMargin < 0:
		c.DeferMargin = 0
	}
	if c.ProcessRel <= 0 {
		c.ProcessRel = 0.15
	}
	if c.MeasureRel <= 0 {
		c.MeasureRel = 0.05
	}
	if c.MinObservations <= 0 {
		c.MinObservations = 3
	}
	return c
}

// Validate checks the configuration; K is the number of request classes
// (pass a negative K to skip the dimension check).
func (c Config) Validate(K int) error {
	if c.Horizon < 1 {
		return fmt.Errorf("mpc: horizon %d, want >= 1", c.Horizon)
	}
	if c.EndSlot < 0 {
		return fmt.Errorf("mpc: negative end slot %d", c.EndSlot)
	}
	if K >= 0 && c.MaxDefer != nil && len(c.MaxDefer) != K {
		return fmt.Errorf("mpc: maxDefer has %d entries, want %d", len(c.MaxDefer), K)
	}
	for k, d := range c.MaxDefer {
		if d < 0 {
			return fmt.Errorf("mpc: maxDefer[%d] negative", k)
		}
	}
	return nil
}

// maxDefer returns class k's deferral allowance (0 beyond the slice).
func (c *Config) maxDefer(k int) int {
	if k < len(c.MaxDefer) {
		return c.MaxDefer[k]
	}
	return 0
}

// myopicOnly reports whether the configuration reduces to the slot-myopic
// planner: no lookahead, or no class allowed to defer.
func (c *Config) myopicOnly() bool {
	if c.Horizon == 1 {
		return true
	}
	for _, d := range c.MaxDefer {
		if d > 0 {
			return false
		}
	}
	return true
}

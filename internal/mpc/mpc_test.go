package mpc

import (
	"math"
	"reflect"
	"testing"

	"profitlb/internal/core"
	"profitlb/internal/datacenter"
	"profitlb/internal/tuf"
)

// unitSys is a single-front-end, single-center system with one interactive
// class (always profitable) and one energy-heavy batch class: at spike
// prices (≥ ~0.124 $/kWh) serving batch costs more than its utility, so a
// myopic planner drops it while a deferring planner buffers it.
func unitSys() *datacenter.System {
	return &datacenter.System{
		Classes: []datacenter.RequestClass{
			{Name: "web", TUF: tuf.MustNew([]tuf.Level{{Utility: 10, Deadline: 0.2}}), TransferCostPerMile: 0.0005},
			{Name: "batch", TUF: tuf.MustNew([]tuf.Level{{Utility: 5, Deadline: 1.0}}), TransferCostPerMile: 0.0005},
		},
		FrontEnds: []datacenter.FrontEnd{{Name: "fe", DistanceMiles: []float64{100}}},
		Centers: []datacenter.DataCenter{{
			Name: "dc", Servers: 8, Capacity: 1,
			ServiceRate:      []float64{120, 100},
			EnergyPerRequest: []float64{1.0, 40},
		}},
	}
}

func slotInput(sys *datacenter.System, slot int, price, web, batch float64) *core.Input {
	return &core.Input{
		Sys:      sys,
		Arrivals: [][]float64{{web, batch}},
		Prices:   []float64{price},
		Slot:     slot,
	}
}

func TestConfigWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Horizon != 4 || c.DeferMargin != 0.2 || c.ProcessRel != 0.15 ||
		c.MeasureRel != 0.05 || c.MinObservations != 3 {
		t.Fatalf("defaults = %+v", c)
	}
	if got := (Config{DeferMargin: -1}).WithDefaults().DeferMargin; got != 0 {
		t.Fatalf("negative margin → %g, want explicit 0", got)
	}
	if got := (Config{DeferMargin: 0.05}).WithDefaults().DeferMargin; got != 0.05 {
		t.Fatalf("explicit margin overwritten: %g", got)
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Horizon: 4, MaxDefer: []int{0, 2}, EndSlot: 24}
	if err := good.Validate(2); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Horizon: 0},
		{Horizon: -3},
		{Horizon: 2, EndSlot: -1},
		{Horizon: 2, MaxDefer: []int{0, -1}},
		{Horizon: 2, MaxDefer: []int{1}}, // wrong K
	}
	for i, c := range bad {
		if err := c.Validate(2); err == nil {
			t.Fatalf("bad config %d accepted: %+v", i, c)
		}
	}
	// Negative K skips only the dimension check.
	if err := (Config{Horizon: 2, MaxDefer: []int{1}}).Validate(-1); err != nil {
		t.Fatalf("dimension check not skipped: %v", err)
	}
}

func TestDeferWindow(t *testing.T) {
	p := New(Config{Horizon: 4, MaxDefer: []int{0, 3}, EndSlot: 10})
	cases := []struct {
		k, slot, want int
	}{
		{0, 0, -1}, // no allowance
		{1, 0, 2},  // full allowance
		{1, 5, 2},  // clamp inactive: 10-2-5 = 3 > 2
		{1, 7, 1},  // clamp: served by slot 9 at the latest
		{1, 8, 0},  // must be served in slot 9
		{1, 9, -1}, // nothing after the run: lose immediately
	}
	for _, c := range cases {
		if got := p.deferWindow(c.k, c.slot); got != c.want {
			t.Fatalf("deferWindow(%d, %d) = %d, want %d", c.k, c.slot, got, c.want)
		}
	}
	// A myopic-only configuration never defers regardless of allowance.
	m := New(Config{Horizon: 1, MaxDefer: []int{0, 3}})
	if got := m.deferWindow(1, 0); got != -1 {
		t.Fatalf("myopic-only deferWindow = %d, want -1", got)
	}
}

// TestMyopicReductionBitIdentical drives the two degenerate configurations
// (H=1, and all-zero MaxDefer) against the reference myopic optimizer over
// the same input sequence and demands byte-identical plans: the fast path
// must delegate, not approximate.
func TestMyopicReductionBitIdentical(t *testing.T) {
	sys := unitSys()
	prices := []float64{0.148, 0.088, 0.139, 0.095, 0.126, 0.079}
	for name, cfg := range map[string]Config{
		"horizon-1":  {Horizon: 1, MaxDefer: []int{0, 2}},
		"zero-defer": {Horizon: 4},
	} {
		t.Run(name, func(t *testing.T) {
			p := New(cfg)
			ref := core.NewOptimized()
			for slot, price := range prices {
				in := slotInput(sys, slot, price, 300, 200)
				got, err := p.Plan(in)
				if err != nil {
					t.Fatalf("slot %d: %v", slot, err)
				}
				want, err := ref.Plan(in)
				if err != nil {
					t.Fatalf("slot %d ref: %v", slot, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("slot %d: plan diverges from myopic reference", slot)
				}
				ledger := p.CommitSlot(in, got)
				if core.Total(ledger.DeferredNew) != 0 || core.Total(ledger.BacklogOut) != 0 {
					t.Fatalf("slot %d: degenerate config buffered work: %+v", slot, ledger)
				}
			}
		})
	}
}

// TestPlanCommitConservation runs the full plan→verify→commit protocol over
// a vibrating price trace and checks the settlement identities every slot:
// the ledger's backlog flow balances exactly, carried backlog matches the
// previous slot's output, no bucket outlives its allowance, and over the
// whole run arrivals = served + shed + lost with an empty final buffer.
func TestPlanCommitConservation(t *testing.T) {
	sys := unitSys()
	const slots = 10
	p := New(Config{Horizon: 4, MaxDefer: []int{0, 2}, EndSlot: slots})
	var prevOut []float64
	var totArr, totServed, totShed, totLost, totDef float64
	for slot := 0; slot < slots; slot++ {
		price := 0.148 // spikes on even slots, valleys on odd
		if slot%2 == 1 {
			price = 0.088
		}
		in := slotInput(sys, slot, price, 300, 200)
		plan, err := p.Plan(in)
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		if err := core.Verify(core.RelaxArrivals(in, p.BacklogBudget()), plan, 1e-6); err != nil {
			t.Fatalf("slot %d: committed plan infeasible: %v", slot, err)
		}
		ledger := p.CommitSlot(in, plan)
		K := sys.K()
		for k := 0; k < K; k++ {
			flow := ledger.CarriedIn[k] - ledger.Drained[k] - ledger.Shed[k] + ledger.DeferredNew[k]
			if math.Abs(flow-ledger.BacklogOut[k]) > 1e-9 {
				t.Fatalf("slot %d class %d: backlog flow %g vs out %g", slot, k, flow, ledger.BacklogOut[k])
			}
			if prevOut != nil && math.Abs(ledger.CarriedIn[k]-prevOut[k]) > 1e-9 {
				t.Fatalf("slot %d class %d: carried %g, previous out %g", slot, k, ledger.CarriedIn[k], prevOut[k])
			}
			var served float64
			for s := 0; s < sys.S(); s++ {
				served += plan.ServedFrom(k, s)
			}
			arr := in.Arrivals[0][k]
			servedNew := served - ledger.Drained[k]
			if gap := arr - servedNew - ledger.DeferredNew[k] - ledger.LostNew[k]; math.Abs(gap) > 1e-6 {
				t.Fatalf("slot %d class %d: arrival conservation off by %g", slot, k, gap)
			}
			totServed += served
			totArr += arr
			// No bucket may outlive its allowance (indices 0..MaxDefer-1),
			// and a class without an allowance may never have buckets.
			if got, max := len(p.backlog[0][k]), p.cfg.maxDefer(k); got > max {
				t.Fatalf("slot %d class %d: %d buckets, allowance %d", slot, k, got, max)
			}
		}
		totShed += core.Total(ledger.Shed)
		totLost += core.Total(ledger.LostNew)
		totDef += core.Total(ledger.DeferredNew)
		prevOut = ledger.BacklogOut
	}
	if !p.backlogEmpty() {
		t.Fatalf("final backlog nonzero: %v", p.backlog)
	}
	if totDef == 0 {
		t.Fatal("vibrating prices deferred nothing — the scenario is inert")
	}
	if totShed != 0 || totLost != 0 {
		t.Fatalf("ample-capacity run shed %g / lost %g", totShed, totLost)
	}
	if gap := totArr - totServed; math.Abs(gap) > 1e-6 {
		t.Fatalf("run-level conservation: arrivals-served gap %g", gap)
	}
}

// TestCommitSlotShedOnEmptyPlan settles two slots against no plan at all
// (the simulator's shed-slot degradation): deferrable arrivals are buffered
// on the first, and the now-due bucket expires as Shed on the second.
func TestCommitSlotShedOnEmptyPlan(t *testing.T) {
	sys := unitSys()
	p := New(Config{Horizon: 4, MaxDefer: []int{0, 1}, EndSlot: 10})
	l0 := p.CommitSlot(slotInput(sys, 0, 0.148, 300, 200), nil)
	if l0.DeferredNew[1] != 200 || l0.LostNew[0] != 300 {
		t.Fatalf("first shed slot ledger: %+v", l0)
	}
	l1 := p.CommitSlot(slotInput(sys, 1, 0.148, 300, 200), nil)
	if math.Abs(l1.Shed[1]-200) > 1e-9 {
		t.Fatalf("due bucket not shed: %+v", l1)
	}
	if l1.DeferredNew[1] != 200 {
		t.Fatalf("second slot's arrivals not re-deferred: %+v", l1)
	}
}

// TestForceDrainPlacesDueWork builds a due bucket by hand and checks the
// three-stage placement: the full volume lands in the plan, the augmented
// plan still verifies against arrivals+backlog, and an oversized bucket is
// placed only up to physical capacity with the remainder shed at commit.
func TestForceDrainPlacesDueWork(t *testing.T) {
	sys := unitSys()
	in := slotInput(sys, 0, 0.148, 300, 0)
	t.Run("fits", func(t *testing.T) {
		p := New(Config{Horizon: 4, MaxDefer: []int{0, 2}, EndSlot: 10})
		p.lazyInit(sys.K(), sys.S(), sys.L())
		p.backlog[0][1] = []float64{150}
		plan, err := core.NewOptimized().Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		placed := p.ForceDrain(in, plan)
		if math.Abs(placed-150) > 1e-6 {
			t.Fatalf("placed %g of 150", placed)
		}
		if got := plan.ServedFrom(1, 0); math.Abs(got-150) > 1e-6 {
			t.Fatalf("plan dispatches %g", got)
		}
		if err := core.Verify(core.RelaxArrivals(in, p.BacklogBudget()), plan, 1e-6); err != nil {
			t.Fatalf("forced plan infeasible: %v", err)
		}
		ledger := p.CommitSlot(in, plan)
		if math.Abs(ledger.Forced[1]-150) > 1e-6 || ledger.Shed[1] != 0 {
			t.Fatalf("ledger after drain: %+v", ledger)
		}
	})
	t.Run("overflow", func(t *testing.T) {
		p := New(Config{Horizon: 4, MaxDefer: []int{0, 2}, EndSlot: 10})
		p.lazyInit(sys.K(), sys.S(), sys.L())
		p.backlog[0][1] = []float64{10000}
		plan, err := core.NewOptimized().Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		placed := p.ForceDrain(in, plan)
		if placed <= 0 || placed >= 10000 {
			t.Fatalf("placed %g, want partial", placed)
		}
		if err := core.Verify(core.RelaxArrivals(in, p.BacklogBudget()), plan, 1e-6); err != nil {
			t.Fatalf("overflowed plan infeasible: %v", err)
		}
		ledger := p.CommitSlot(in, plan)
		if math.Abs(ledger.Shed[1]-(10000-placed)) > 1e-6 {
			t.Fatalf("shed %g, want %g", ledger.Shed[1], 10000-placed)
		}
	})
}

// TestPlanDoesNotMutateBacklog: settlement belongs to CommitSlot alone.
func TestPlanDoesNotMutateBacklog(t *testing.T) {
	sys := unitSys()
	p := New(Config{Horizon: 4, MaxDefer: []int{0, 2}, EndSlot: 10})
	// Build a nonzero buffer, snapshot it, then plan twice.
	if _, err := p.Plan(slotInput(sys, 0, 0.148, 300, 200)); err != nil {
		t.Fatal(err)
	}
	p.CommitSlot(slotInput(sys, 0, 0.148, 300, 200), nil)
	snap := make([][][]float64, len(p.backlog))
	for s := range p.backlog {
		snap[s] = make([][]float64, len(p.backlog[s]))
		for k := range p.backlog[s] {
			snap[s][k] = append([]float64(nil), p.backlog[s][k]...)
		}
	}
	for slot := 1; slot <= 2; slot++ {
		if _, err := p.Plan(slotInput(sys, slot, 0.088, 300, 200)); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p.backlog, snap) {
			t.Fatalf("Plan mutated backlog at slot %d", slot)
		}
	}
}

package mpc

import (
	"profitlb/internal/core"
	"profitlb/internal/obs"
)

// dust is the bucket floor: volumes below it are clamped to zero so
// floating-point residue cannot keep buckets (and their LP variables)
// alive forever.
const dust = 1e-12

// BacklogBudget implements core.DeferralPlanner: the current buffered
// volume per [frontEnd][class], a fresh copy.
func (p *Planner) BacklogBudget() [][]float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([][]float64, len(p.backlog))
	for s := range p.backlog {
		out[s] = make([]float64, len(p.backlog[s]))
		for k := range p.backlog[s] {
			for _, v := range p.backlog[s][k] {
				out[s][k] += v
			}
		}
	}
	return out
}

// CommitSlot implements core.DeferralPlanner: settle the slot against the
// committed plan. The served volume of each (front-end, class) drains the
// oldest buckets first — work within a class is fungible, so earliest-
// deadline-first attribution is pure bookkeeping — then the residue of
// the due bucket is shed, unserved arrivals are deferred (classes with an
// allowance, within the run's end) or lost, and every surviving bucket
// ages one slot. A nil or empty committed plan settles a shed slot:
// nothing drains, due work expires.
func (p *Planner) CommitSlot(actual *core.Input, committed *core.Plan) core.BacklogSlot {
	p.mu.Lock()
	defer p.mu.Unlock()
	K, S := actual.Sys.K(), actual.Sys.S()
	p.lazyInit(K, S, actual.Sys.L())
	bs := core.BacklogSlot{
		CarriedIn:   make([]float64, K),
		Drained:     make([]float64, K),
		Forced:      append([]float64(nil), p.forced...),
		Shed:        make([]float64, K),
		DeferredNew: make([]float64, K),
		LostNew:     make([]float64, K),
		BacklogOut:  make([]float64, K),
	}
	for k := range p.forced {
		p.forced[k] = 0
	}
	for s := 0; s < S; s++ {
		for k := 0; k < K; k++ {
			buckets := p.backlog[s][k]
			for _, v := range buckets {
				bs.CarriedIn[k] += v
			}
			var served float64
			if committed != nil {
				served = committed.ServedFrom(k, s)
			}
			// Earliest deadline first: service drains bucket r=0, then 1, …
			rem := served
			var drained float64
			for r := range buckets {
				take := buckets[r]
				if take > rem {
					take = rem
				}
				buckets[r] -= take
				rem -= take
				drained += take
			}
			bs.Drained[k] += drained
			// The due bucket's residue missed its deadline.
			if len(buckets) > 0 && buckets[0] > 0 {
				if buckets[0] > dust {
					bs.Shed[k] += buckets[0]
				}
				buckets[0] = 0
			}
			// Unserved arrivals: defer within the allowance, else lose.
			servedNew := served - drained
			if servedNew > actual.Arrivals[s][k] {
				servedNew = actual.Arrivals[s][k] // numeric guard
			}
			unserved := actual.Arrivals[s][k] - servedNew
			rNew := p.deferWindow(k, actual.Slot)
			if unserved <= dust {
				unserved = 0
			}
			if unserved > 0 && rNew < 0 {
				bs.LostNew[k] += unserved
				unserved = 0
			}
			// Age: bucket r becomes bucket r−1 of the next slot; the new
			// deferral joins at its own remaining allowance.
			var next []float64
			if len(buckets) > 1 {
				next = buckets[1:]
			}
			if unserved > 0 {
				for len(next) <= rNew {
					next = append(next, 0)
				}
				next[rNew] += unserved
				bs.DeferredNew[k] += unserved
			}
			for r := range next {
				if next[r] < dust {
					next[r] = 0
				}
			}
			for len(next) > 0 && next[len(next)-1] == 0 {
				next = next[:len(next)-1]
			}
			p.backlog[s][k] = next
			for _, v := range next {
				bs.BacklogOut[k] += v
			}
		}
	}
	if p.sc.Enabled() {
		T := actual.Sys.Slot()
		lbl := obs.L("planner", p.Name())
		count := func(name string, v []float64) {
			p.sc.Counter(name, lbl).Add(int64(core.Total(v)*T + 0.5))
		}
		count("mpc_deferred_requests_total", bs.DeferredNew)
		count("mpc_drained_requests_total", bs.Drained)
		count("mpc_forced_requests_total", bs.Forced)
		count("mpc_shed_requests_total", bs.Shed)
		count("mpc_lost_requests_total", bs.LostNew)
		p.sc.Gauge("mpc_backlog_rate", lbl).Set(core.Total(bs.BacklogOut))
	}
	return bs
}

// deferWindow returns the remaining-slot allowance a class-k arrival
// unserved in the given slot enters the backlog with (the bucket index
// after the age shift), or −1 when it cannot be deferred at all: no
// allowance, no lookahead, or no run slot left to serve it in.
func (p *Planner) deferWindow(k, slot int) int {
	if p.cfg.myopicOnly() {
		return -1
	}
	r := p.cfg.maxDefer(k) - 1
	if r < 0 {
		return -1
	}
	if p.cfg.EndSlot > 0 {
		// Deferred work is served no earlier than slot+1 and no later than
		// slot+1+r; both must precede EndSlot.
		if last := p.cfg.EndSlot - 2 - slot; last < r {
			r = last
		}
	}
	return r
}

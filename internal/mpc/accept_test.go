// Acceptance gates for the MPC planning plane, driven through the full
// simulator (package mpc_test so the sim → core → mpc layering stays
// acyclic): reduction bit-identity, the Houston price-vibration profit
// gate, never-loses on clean scenarios, and fault-storm degradation with
// forced backlog drains.
package mpc_test

import (
	"math"
	"testing"
	"time"

	"profitlb/internal/core"
	"profitlb/internal/datacenter"
	"profitlb/internal/fault"
	"profitlb/internal/market"
	"profitlb/internal/mpc"
	"profitlb/internal/resilient"
	"profitlb/internal/sim"
	"profitlb/internal/tuf"
	"profitlb/internal/workload"
)

// accSys mirrors the package's unit fixture: one interactive class that is
// always profitable and one energy-heavy batch class (utility 5, 40 kWh per
// krequest) that turns loss-making whenever electricity crosses ~0.124
// $/kWh — exactly the Houston afternoon spikes.
func accSys() *datacenter.System {
	return &datacenter.System{
		Classes: []datacenter.RequestClass{
			{Name: "web", TUF: tuf.MustNew([]tuf.Level{{Utility: 10, Deadline: 0.2}}), TransferCostPerMile: 0.0005},
			{Name: "batch", TUF: tuf.MustNew([]tuf.Level{{Utility: 5, Deadline: 1.0}}), TransferCostPerMile: 0.0005},
		},
		FrontEnds: []datacenter.FrontEnd{{Name: "fe", DistanceMiles: []float64{100}}},
		Centers: []datacenter.DataCenter{{
			Name: "dc", Servers: 8, Capacity: 1,
			ServiceRate:      []float64{120, 100},
			EnergyPerRequest: []float64{1.0, 40},
		}},
	}
}

func accConfig(sys *datacenter.System, prices *market.PriceTrace, start, slots int) sim.Config {
	n := start + slots
	return sim.Config{
		Sys:       sys,
		Traces:    []*workload.Trace{workload.Constant("fe", []float64{300, 200}, n)},
		Prices:    []*market.PriceTrace{prices},
		Slots:     slots,
		StartSlot: start,
	}
}

func flatPrices(p float64, n int) *market.PriceTrace {
	tr := &market.PriceTrace{Name: "flat"}
	for i := 0; i < n; i++ {
		tr.Prices = append(tr.Prices, p)
	}
	return tr
}

// TestMPCReductionMatchesMyopicRun: with H=1 or no deferral allowance the
// whole simulated run — profits, costs, server counts, served volumes —
// must be identical to the plain myopic planner's, slot by slot.
func TestMPCReductionMatchesMyopicRun(t *testing.T) {
	cfg := accConfig(accSys(), market.Houston(), 13, 8)
	for name, mc := range map[string]mpc.Config{
		"horizon-1":  {Horizon: 1, MaxDefer: []int{0, 2}, EndSlot: 21},
		"zero-defer": {Horizon: 5, EndSlot: 21},
	} {
		t.Run(name, func(t *testing.T) {
			got, err := sim.Run(cfg, mpc.New(mc))
			if err != nil {
				t.Fatal(err)
			}
			want, err := sim.Run(cfg, core.NewOptimized())
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.Slots {
				g, w := got.Slots[i], want.Slots[i]
				if g.NetProfit != w.NetProfit || g.Revenue != w.Revenue ||
					g.EnergyCost != w.EnergyCost || g.TransferCost != w.TransferCost ||
					g.ServersOn != w.ServersOn || g.LostRevenue != w.LostRevenue {
					t.Fatalf("slot %d diverges: mpc %+v vs myopic %+v", i, g, w)
				}
				for k := range w.ServedByType {
					if g.ServedByType[k] != w.ServedByType[k] {
						t.Fatalf("slot %d class %d served %g vs %g", i, k, g.ServedByType[k], w.ServedByType[k])
					}
				}
			}
		})
	}
}

// TestMPCBeatsMyopicOnHoustonVibration is the paper-window gate: over the
// 14:00–19:00 Houston price vibration the myopic planner drops the batch
// class at every spike (serving it there costs more than its utility),
// while the MPC planner defers it one or two slots into the valleys.
func TestMPCBeatsMyopicOnHoustonVibration(t *testing.T) {
	cfg := accConfig(accSys(), market.Houston(), 13, 8) // slots 13..20, spikes at 14/16/18
	mp := mpc.New(mpc.Config{Horizon: 5, MaxDefer: []int{0, 2}, EndSlot: 21})
	reports, err := sim.Compare(cfg, mp, core.NewOptimized())
	if err != nil {
		t.Fatal(err)
	}
	m, myo := reports[0], reports[1]
	if m.TotalNetProfit() <= myo.TotalNetProfit() {
		t.Fatalf("mpc %g did not beat myopic %g on the vibration window",
			m.TotalNetProfit(), myo.TotalNetProfit())
	}
	deferred, drained, _, shed := m.DeferralTotals()
	if deferred <= 0 {
		t.Fatal("nothing deferred across the spike slots")
	}
	if shed != 0 {
		t.Fatalf("deadline misses on a clean ample-capacity window: shed %g", shed)
	}
	if math.Abs(deferred-drained) > 1e-6 {
		t.Fatalf("deferred %g vs drained %g with empty final backlog", deferred, drained)
	}
	if got := m.FinalBacklog(); got != 0 {
		t.Fatalf("stranded backlog %g despite EndSlot", got)
	}
	// The deferred volume is real service: batch completion ~1 for MPC,
	// while myopic loses the three spike slots (5 of 8 served).
	if got := m.CompletionRate(1); got < 0.999 {
		t.Fatalf("mpc batch completion %g", got)
	}
	if got := myo.CompletionRate(1); got > 0.7 {
		t.Fatalf("myopic batch completion %g — scenario lost its spikes", got)
	}
	if m.TotalLostRevenue() >= myo.TotalLostRevenue() {
		t.Fatalf("mpc lost revenue %g not below myopic %g",
			m.TotalLostRevenue(), myo.TotalLostRevenue())
	}
}

// TestMPCNeverLosesOnCleanScenarios: enabling the MPC plane must never cost
// profit on fault-free scenarios, including the adversarial ones — flat
// prices (deferral can only break even), a monotone morning price ramp
// (where a lagging forecast would defer straight into the peak if the
// DeferMargin hedge were absent), and a plain two-class day.
func TestMPCNeverLosesOnCleanScenarios(t *testing.T) {
	cases := []struct {
		name string
		cfg  sim.Config
		mc   mpc.Config
	}{
		{
			name: "flat-prices",
			cfg:  accConfig(accSys(), flatPrices(0.08, 24), 0, 8),
			mc:   mpc.Config{Horizon: 4, MaxDefer: []int{0, 2}, EndSlot: 8},
		},
		{
			name: "morning-ramp",
			cfg:  accConfig(accSys(), market.Houston(), 6, 7), // 0.048 → 0.101 monotone
			mc:   mpc.Config{Horizon: 4, MaxDefer: []int{0, 2}, EndSlot: 13},
		},
		{
			name: "full-day",
			cfg:  accConfig(accSys(), market.Houston(), 0, 24),
			mc:   mpc.Config{Horizon: 4, MaxDefer: []int{0, 2}, EndSlot: 24},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			reports, err := sim.Compare(c.cfg, mpc.New(c.mc), core.NewOptimized())
			if err != nil {
				t.Fatal(err)
			}
			m, myo := reports[0].TotalNetProfit(), reports[1].TotalNetProfit()
			tol := 1e-6 + 1e-3*math.Abs(myo)
			if m < myo-tol {
				t.Fatalf("mpc %g below myopic %g on a clean scenario", m, myo)
			}
			if _, _, _, shed := reports[0].DeferralTotals(); shed != 0 {
				t.Fatalf("clean scenario shed %g", shed)
			}
			if got := reports[0].FinalBacklog(); got != 0 {
				t.Fatalf("stranded backlog %g", got)
			}
		})
	}
}

// stormPrices: cheap, then two consecutive spikes, then cheap again. Work
// deferred at slot 1 comes due at slot 2 — exactly when the planner fault
// fires — so the fallback tier must force-drain it at a loss rather than
// miss its deadline.
func stormPrices() *market.PriceTrace {
	return &market.PriceTrace{Name: "storm", Prices: []float64{0.08, 0.148, 0.139, 0.08, 0.08, 0.08}}
}

// TestMPCFaultDegradesToForcedDrain: a planner fault in the middle of the
// deferral window drops the chain to its myopic greedy tier, which knows
// nothing about the backlog; the commit hook force-dispatches the due
// bucket so no deadline is violated.
func TestMPCFaultDegradesToForcedDrain(t *testing.T) {
	sched := &fault.Schedule{Events: []fault.Event{{Kind: fault.PlannerError, From: 2, To: 2}}}
	mp := mpc.New(mpc.Config{Horizon: 4, MaxDefer: []int{0, 1}, EndSlot: 6})
	chain := resilient.Wrap(&fault.Injector{Planner: mp, Sched: sched})
	cfg := accConfig(accSys(), stormPrices(), 0, 6)
	cfg.Faults = sched
	rep, err := sim.Run(cfg, chain)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Slots[2].Degraded || rep.Slots[2].FallbackTier < 1 {
		t.Fatalf("fault slot not degraded: %+v", rep.Slots[2])
	}
	deferred, _, forced, shed := rep.DeferralTotals()
	if deferred <= 0 {
		t.Fatal("spike slot deferred nothing")
	}
	if forced <= 0 {
		t.Fatalf("due backlog not force-drained through the fallback tier (forced %g)", forced)
	}
	if shed != 0 {
		t.Fatalf("deadline violations under rescue: shed %g", shed)
	}
	if got := rep.FinalBacklog(); got != 0 {
		t.Fatalf("stranded backlog %g", got)
	}
}

// TestMPCFaultWithoutRescueSheds is the counterfactual: the same storm with
// no resilient chain sheds the faulted slot, and the due bucket expires as
// a deadline miss billed to lost revenue — the deferral-versus-shed trade
// the resilience ladder exists to win.
func TestMPCFaultWithoutRescueSheds(t *testing.T) {
	sched := &fault.Schedule{Events: []fault.Event{{Kind: fault.PlannerError, From: 2, To: 2}}}
	mp := mpc.New(mpc.Config{Horizon: 4, MaxDefer: []int{0, 1}, EndSlot: 6})
	cfg := accConfig(accSys(), stormPrices(), 0, 6)
	cfg.Faults = sched
	cfg.DegradeOnFailure = true
	rep, err := sim.Run(cfg, &fault.Injector{Planner: mp, Sched: sched})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Slots[2].Degraded || rep.Slots[2].FallbackName != "shed" {
		t.Fatalf("fault slot not shed: %+v", rep.Slots[2])
	}
	_, _, _, shed := rep.DeferralTotals()
	if math.Abs(shed-200) > 1e-6 {
		t.Fatalf("due bucket shed %g, want 200", shed)
	}
	if rep.Slots[2].LostRevenue <= 0 {
		t.Fatal("deadline miss not billed to lost revenue")
	}
	if got := rep.FinalBacklog(); got != 0 {
		t.Fatalf("stranded backlog %g", got)
	}
}

// TestMPCTimeoutRaceSafety hammers the abandoned-goroutine overlap: the
// chain's per-tier deadline expires while the injected hang keeps the MPC
// planner computing, so fallback commits (ForceDrain) and settlement
// (CommitSlot) run concurrently with abandoned Plan calls. Meaningful
// chiefly under -race; the functional gates are completion and a clean
// ledger.
func TestMPCTimeoutRaceSafety(t *testing.T) {
	sched := &fault.Schedule{Events: []fault.Event{{Kind: fault.PlannerTimeout, From: 1, To: 3}}}
	mp := mpc.New(mpc.Config{Horizon: 4, MaxDefer: []int{0, 2}, EndSlot: 6})
	chain := resilient.Wrap(&fault.Injector{Planner: mp, Sched: sched, Hang: 50 * time.Millisecond})
	chain.Timeout = 5 * time.Millisecond
	cfg := accConfig(accSys(), stormPrices(), 0, 6)
	cfg.Faults = sched
	rep, err := sim.Run(cfg, chain)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Slots) != 6 {
		t.Fatalf("run truncated: %d slots", len(rep.Slots))
	}
	if _, _, _, shed := rep.DeferralTotals(); shed != 0 {
		t.Fatalf("shed %g under timeouts with capacity to spare", shed)
	}
	if got := rep.FinalBacklog(); got != 0 {
		t.Fatalf("stranded backlog %g", got)
	}
	// Give abandoned goroutines time to finish inside the planner so the
	// race detector sees any unsynchronized overlap before teardown.
	time.Sleep(120 * time.Millisecond)
}

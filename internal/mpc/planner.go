package mpc

import (
	"fmt"
	"math"
	"sync"
	"time"

	"profitlb/internal/core"
	"profitlb/internal/forecast"
	"profitlb/internal/obs"
)

// Planner is the rolling-horizon controller. It implements
// core.DeferralPlanner; hosts must drive CommitSlot exactly once per slot
// (see the package comment). Unlike the other stateful planners, every
// method is mutex-guarded rather than single-caller: a resilient chain
// that abandons a timed-out Plan call leaves its goroutine running, and
// the chain's fallback commit (ForceDrain) plus the simulator's
// settlement (CommitSlot) race against it. The mutex makes those
// overlaps safe — bucket state is only ever mutated by CommitSlot, so an
// abandoned Plan can at worst warm the LP basis with a discarded window
// and overwrite the Forced diagnostic.
type Planner struct {
	mu  sync.Mutex
	cfg Config

	myopic  *core.Optimized
	horizon *core.HorizonPlanner
	fs      core.ForecastSource
	sc      *obs.Scope

	// backlog[s][k][r] is buffered work (rate units) at front-end s of
	// class k that must be served within r further slots.
	backlog [][][]float64
	// forced[k] is the volume the latest force-drain placed, consumed by
	// the next CommitSlot (replace semantics: each drain overwrites it, so
	// an abandoned tier's drain cannot double-count).
	forced []float64

	// Internal filter banks for horizon assembly when no forecast source
	// is attached: one per price element and one per (front-end, class).
	priceF []*kalmanCell
	arrF   [][]*kalmanCell
}

// New returns a controller for the configuration (defaults applied).
func New(cfg Config) *Planner {
	return &Planner{
		cfg:     cfg.WithDefaults(),
		myopic:  core.NewOptimized(),
		horizon: core.NewHorizonPlanner(),
	}
}

// Name implements core.Planner.
func (p *Planner) Name() string { return "mpc" }

// Config returns the effective (defaulted) configuration.
func (p *Planner) Config() Config { return p.cfg }

// AttachForecast routes horizon assembly through an external multi-step
// forecast source (the telemetry feed layer); without one the planner
// projects from its own per-element Kalman filters.
func (p *Planner) AttachForecast(fs core.ForecastSource) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fs = fs
}

// Instrument streams the controller's counters — backlog depth, deferred
// and forced and shed volume, horizon solve latency — into the
// observability layer. The scope only watches; plans are identical with
// or without it.
func (p *Planner) Instrument(sc *obs.Scope) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sc = sc
}

// kalmanCell is one lazily-built scalar filter: the noise scales are set
// relative to the first observation, and until the filter is warm the
// projection holds the last observation flat.
type kalmanCell struct {
	f    *forecast.Kalman
	last float64
}

func (p *Planner) observe(c *kalmanCell, z float64) {
	if c.f == nil {
		scale := z
		if scale < 1e-6 {
			scale = 1e-6
		}
		sq := func(x float64) float64 { return x * x }
		c.f, _ = forecast.NewKalman(sq(p.cfg.ProcessRel*scale), sq(p.cfg.MeasureRel*scale))
	}
	c.f.Observe(z)
	c.last = z
}

// ahead projects the cell h steps forward: the warm filter's trajectory,
// else the last observation held flat.
func (p *Planner) ahead(c *kalmanCell, h int) []float64 {
	if c.f != nil && c.f.Warm(p.cfg.MinObservations) {
		if est, _, err := c.f.PredictH(h); err == nil {
			return est
		}
	}
	out := make([]float64, h)
	for i := range out {
		out[i] = c.last
	}
	return out
}

// lazyInit shapes the per-topology state on first use. K and S never
// change across a run (fault-effective topologies reshape centers, not
// classes or front-ends).
func (p *Planner) lazyInit(K, S, L int) {
	if p.backlog != nil {
		return
	}
	p.backlog = make([][][]float64, S)
	p.arrF = make([][]*kalmanCell, S)
	for s := 0; s < S; s++ {
		p.backlog[s] = make([][]float64, K)
		p.arrF[s] = make([]*kalmanCell, K)
		for k := 0; k < K; k++ {
			p.arrF[s][k] = &kalmanCell{}
		}
	}
	p.priceF = make([]*kalmanCell, L)
	for l := 0; l < L; l++ {
		p.priceF[l] = &kalmanCell{}
	}
	p.forced = make([]float64, K)
}

// Plan implements core.Planner: assemble the window, solve the joint LP,
// commit slot 0 with due buckets force-drained. Plan never mutates the
// backlog — settlement is CommitSlot's.
func (p *Planner) Plan(in *core.Input) (*core.Plan, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	sys := in.Sys
	K, S, L := sys.K(), sys.S(), sys.L()
	p.lazyInit(K, S, L)
	for l := 0; l < L; l++ {
		p.observe(p.priceF[l], in.Prices[l])
	}
	for s := 0; s < S; s++ {
		for k := 0; k < K; k++ {
			p.observe(p.arrF[s][k], in.Arrivals[s][k])
		}
	}
	for k := range p.forced {
		p.forced[k] = 0
	}
	H := p.effHorizon(in.Slot)
	if p.cfg.myopicOnly() || (H == 1 && p.backlogEmpty()) {
		// No lookahead to exploit and nothing buffered: the myopic
		// optimizer (with its subset refinement, which the horizon LP
		// lacks) is exactly right, and bit-identical to a plain run.
		return p.myopic.Plan(in)
	}

	hin := p.assembleWindow(in, H)
	start := time.Now()
	hp, err := p.horizon.Plan(hin)
	if p.sc.Enabled() {
		p.sc.Histogram("mpc_horizon_solve_seconds", nil, obs.L("planner", p.Name())).
			Observe(time.Since(start).Seconds())
		p.sc.Gauge("mpc_horizon_slots", obs.L("planner", p.Name())).Set(float64(H))
	}
	if err != nil {
		if p.sc.Enabled() {
			p.sc.Counter("mpc_horizon_failures_total", obs.L("planner", p.Name())).Add(1)
		}
		return nil, fmt.Errorf("mpc: horizon solve: %w", err)
	}
	plan := hp.Slots[0]
	p.forceDrainLocked(in, plan)
	plan.Objective = core.PlanObjective(in, plan)
	return plan, nil
}

// effHorizon is the window length for a plan starting at slot: the
// configured horizon, truncated at the run's end.
func (p *Planner) effHorizon(slot int) int {
	H := p.cfg.Horizon
	if p.cfg.EndSlot > 0 {
		if rem := p.cfg.EndSlot - slot; rem < H {
			H = rem
		}
	}
	if H < 1 {
		H = 1
	}
	return H
}

// assembleWindow builds the H-slot horizon input: slot 0 is the live
// telemetry, slots 1..H−1 come from the attached forecast source (or the
// internal filters), and the backlog is a snapshot of the aging buckets.
func (p *Planner) assembleWindow(in *core.Input, H int) *core.HorizonInput {
	sys := in.Sys
	K, S, L := sys.K(), sys.S(), sys.L()
	hin := &core.HorizonInput{
		Sys:      sys,
		Arrivals: make([][][]float64, H),
		Prices:   make([][]float64, H),
		MaxDefer: make([]int, K),
		Backlog:  make([][][]float64, S),
	}
	for k := 0; k < K; k++ {
		hin.MaxDefer[k] = p.cfg.maxDefer(k)
	}
	for s := 0; s < S; s++ {
		hin.Backlog[s] = make([][]float64, K)
		for k := 0; k < K; k++ {
			hin.Backlog[s][k] = append([]float64(nil), p.backlog[s][k]...)
		}
	}
	hin.Arrivals[0] = copyMatrix(in.Arrivals)
	hin.Prices[0] = append([]float64(nil), in.Prices...)
	if H == 1 {
		return hin
	}
	prices, arrivals := p.projection(H - 1)
	for t := 1; t < H; t++ {
		hin.Prices[t] = clampRow(prices[t-1], L)
		// Robustness hedge: deferring work to slot t only pays if the
		// forecast saving survives a (1+DeferMargin) price error.
		for l := range hin.Prices[t] {
			hin.Prices[t][l] *= 1 + p.cfg.DeferMargin
		}
		hin.Arrivals[t] = make([][]float64, S)
		for s := 0; s < S; s++ {
			hin.Arrivals[t][s] = clampRow(arrivals[t-1][s], K)
		}
	}
	return hin
}

// projection returns the h-step forecast from the attached source, or
// the internal filter banks when no source is attached (or the source
// returns a malformed shape).
func (p *Planner) projection(h int) (prices [][]float64, arrivals [][][]float64) {
	if p.fs != nil {
		prices, arrivals = p.fs.ForecastHorizon(h)
		if sourceShapeOK(prices, arrivals, h, len(p.priceF), len(p.arrF)) {
			return prices, arrivals
		}
	}
	prices = make([][]float64, h)
	arrivals = make([][][]float64, h)
	for i := 0; i < h; i++ {
		prices[i] = make([]float64, len(p.priceF))
		arrivals[i] = make([][]float64, len(p.arrF))
		for s := range p.arrF {
			arrivals[i][s] = make([]float64, len(p.arrF[s]))
		}
	}
	for l, c := range p.priceF {
		traj := p.ahead(c, h)
		for i := 0; i < h; i++ {
			prices[i][l] = traj[i]
		}
	}
	for s := range p.arrF {
		for k, c := range p.arrF[s] {
			traj := p.ahead(c, h)
			for i := 0; i < h; i++ {
				arrivals[i][s][k] = traj[i]
			}
		}
	}
	return prices, arrivals
}

// sourceShapeOK validates an external forecast's dimensions.
func sourceShapeOK(prices [][]float64, arrivals [][][]float64, h, L, S int) bool {
	if len(prices) != h || len(arrivals) != h {
		return false
	}
	for i := 0; i < h; i++ {
		if len(prices[i]) != L || len(arrivals[i]) != S {
			return false
		}
	}
	return true
}

// clampRow copies a forecast row, flooring negatives, NaNs and
// infinities to zero so a degraded source cannot produce an invalid
// horizon input.
func clampRow(row []float64, n int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n && i < len(row); i++ {
		if v := row[i]; v > 0 && !math.IsNaN(v) && !math.IsInf(v, 0) {
			out[i] = v
		}
	}
	return out
}

func copyMatrix(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i := range m {
		out[i] = append([]float64(nil), m[i]...)
	}
	return out
}

func (p *Planner) backlogEmpty() bool {
	for s := range p.backlog {
		for k := range p.backlog[s] {
			for _, v := range p.backlog[s][k] {
				if v > 0 {
					return false
				}
			}
		}
	}
	return true
}

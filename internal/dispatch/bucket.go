package dispatch

import "sync"

// bucket is a token bucket in virtual time: tokens accrue at the lane's
// planned rate up to the burst capacity, and each admitted request spends
// one token. Buckets start full so a plan swap does not starve the first
// arrivals of a slot. Each lane owns one bucket; the per-lane mutex is
// the only lock on the request path.
type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   float64
	_      [24]byte // pad toward a cache line to keep hot lanes from false sharing
}

// take refills the bucket to virtual time now and spends one token if
// available. Time moving backwards (concurrent requests observed out of
// order) refills nothing — tokens never decay, so admission is monotone
// in the tokens actually accrued. It returns whether the request is
// admitted and the post-decision token level.
func (b *bucket) take(now, rate, burst float64) (ok bool, level float64) {
	b.mu.Lock()
	if now > b.last {
		b.tokens += (now - b.last) * rate
		if b.tokens > burst {
			b.tokens = burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		ok = true
	}
	level = b.tokens
	b.mu.Unlock()
	return ok, level
}

// peek refills the bucket to virtual time now and returns the token
// level without spending anything.
func (b *bucket) peek(now, rate, burst float64) float64 {
	b.mu.Lock()
	if now > b.last {
		b.tokens += (now - b.last) * rate
		if b.tokens > burst {
			b.tokens = burst
		}
		b.last = now
	}
	level := b.tokens
	b.mu.Unlock()
	return level
}

// reset refills the bucket to full at virtual time now.
func (b *bucket) reset(now, burst float64) {
	b.mu.Lock()
	b.tokens = burst
	b.last = now
	b.mu.Unlock()
}

// set pins the bucket to an exact token level at virtual time now — the
// hot-swap carry path, where a new table's lane inherits the old lane's
// accumulated (possibly fractional) tokens instead of refilling to full.
func (b *bucket) set(now, tokens float64) {
	b.mu.Lock()
	b.tokens = tokens
	b.last = now
	b.mu.Unlock()
}

package dispatch

import (
	"errors"
	"math"
	"sync"
	"testing"

	"profitlb/internal/core"
	"profitlb/internal/datacenter"
	"profitlb/internal/tuf"
)

// testSystem is a small 2-class, 2-front-end, 2-center topology sized so
// the optimized planner serves everything comfortably.
func testSystem() *datacenter.System {
	return &datacenter.System{
		Classes: []datacenter.RequestClass{
			{Name: "web", TUF: tuf.MustNew([]tuf.Level{{Utility: 0.01, Deadline: 0.01}}),
				TransferCostPerMile: 1e-6},
			{Name: "batch", TUF: tuf.MustNew([]tuf.Level{
				{Utility: 0.05, Deadline: 0.05}, {Utility: 0.02, Deadline: 0.25}}),
				TransferCostPerMile: 2e-6},
		},
		FrontEnds: []datacenter.FrontEnd{
			{Name: "east", DistanceMiles: []float64{300, 2400}},
			{Name: "west", DistanceMiles: []float64{2500, 200}},
		},
		Centers: []datacenter.DataCenter{
			{Name: "tx", Servers: 8, Capacity: 1,
				ServiceRate: []float64{20000, 3000}, EnergyPerRequest: []float64{0.0003, 0.004}},
			{Name: "ca", Servers: 8, Capacity: 1,
				ServiceRate: []float64{18000, 3500}, EnergyPerRequest: []float64{0.0003, 0.0035}},
		},
	}
}

func testInput(sys *datacenter.System) *core.Input {
	return &core.Input{
		Sys:      sys,
		Arrivals: [][]float64{{30000, 2000}, {24000, 1500}},
		Prices:   []float64{0.05, 0.08},
		Slot:     7,
	}
}

// testTable plans the fixture with the optimized planner and compiles it.
func testTable(t *testing.T, cfg Config) (*core.Input, *core.Plan, *Table) {
	t.Helper()
	in := testInput(testSystem())
	plan, err := core.NewOptimized().Plan(in)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	tab, err := Compile(in, plan, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return in, plan, tab
}

func TestConfigValidate(t *testing.T) {
	sys := testSystem()
	cases := []struct {
		name string
		cfg  *Config
		want string // substring of the error, "" for ok
	}{
		{"nil config", nil, ""},
		{"defaults", &Config{SlotSeconds: 60}, ""},
		{"negative burst", &Config{Burst: -0.1, SlotSeconds: 60}, "negative burst"},
		{"negative minBurst", &Config{MinBurst: -1, SlotSeconds: 60}, "negative minBurst"},
		{"zero slot length", &Config{}, "positive length"},
		{"negative slot length", &Config{SlotSeconds: -5}, "positive length"},
		{"negative drain", &Config{SlotSeconds: 60, DrainSeconds: -1}, "negative drainSeconds"},
		{"unknown front-end", &Config{SlotSeconds: 60, FrontEnds: []string{"mars"}}, `unknown front-end "mars"`},
		{"duplicate front-end", &Config{SlotSeconds: 60, FrontEnds: []string{"east", "east"}}, "listed twice"},
		{"known front-ends", &Config{SlotSeconds: 60, FrontEnds: []string{"east", "west"}}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate(sys)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestConfigWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Burst != DefaultBurst || c.MinBurst != DefaultMinBurst ||
		c.SlotSeconds != DefaultSlotSeconds || c.DrainSeconds != DefaultDrainSeconds {
		t.Fatalf("WithDefaults() = %+v", c)
	}
	set := Config{Burst: 0.2, MinBurst: 1, SlotSeconds: 5, DrainSeconds: 3}.WithDefaults()
	if set.Burst != 0.2 || set.MinBurst != 1 || set.SlotSeconds != 5 || set.DrainSeconds != 3 {
		t.Fatalf("WithDefaults() clobbered explicit values: %+v", set)
	}
}

// TestCompile checks that the table mirrors the plan: one lane per
// positive (k, q, s, l) rate, stream budgets summing to the plan's
// dispatch totals, and frozen economics consistent with the topology.
func TestCompile(t *testing.T) {
	in, plan, tab := testTable(t, Config{Seed: 42, SlotSeconds: 60})
	sys := in.Sys
	T := sys.Slot()
	if tab.Slot != in.Slot || tab.SlotLen != T || tab.Seed != 42 {
		t.Fatalf("table header: %+v", tab)
	}
	if tab.Objective != plan.Objective {
		t.Fatalf("objective %g, plan %g", tab.Objective, plan.Objective)
	}
	var wantLanes int
	for k := range plan.Rate {
		for q := range plan.Rate[k] {
			for s := range plan.Rate[k][q] {
				var streamRate float64
				for l, r := range plan.Rate[k][q][s] {
					if r > rateEps {
						wantLanes++
						streamRate += r
						_ = l
					}
				}
				_ = streamRate
			}
		}
	}
	if len(tab.Lanes) != wantLanes {
		t.Fatalf("%d lanes, want %d", len(tab.Lanes), wantLanes)
	}
	for k := 0; k < sys.K(); k++ {
		for s := 0; s < sys.S(); s++ {
			planned, arrival := tab.Planned(k, s)
			var want float64
			for q := range plan.Rate[k] {
				for _, r := range plan.Rate[k][q][s] {
					if r > rateEps {
						want += r
					}
				}
			}
			if math.Abs(planned-want) > 1e-9 {
				t.Errorf("stream (%d,%d) planned %g, want %g", k, s, planned, want)
			}
			if arrival != in.Arrivals[s][k] {
				t.Errorf("stream (%d,%d) arrival %g, want %g", k, s, arrival, in.Arrivals[s][k])
			}
		}
	}
	for i, ln := range tab.Lanes {
		if ln.Rate <= rateEps {
			t.Errorf("lane %d has non-positive rate %g", i, ln.Rate)
		}
		if ln.Burst < DefaultMinBurst {
			t.Errorf("lane %d burst %g below floor", i, ln.Burst)
		}
		if ln.Utility <= 0 {
			t.Errorf("lane %d utility %g; the plan should not buy worthless lanes", i, ln.Utility)
		}
		if want := sys.TransferCost(ln.K, ln.S, ln.L); ln.UnitTransfer != want {
			t.Errorf("lane %d transfer %g, want %g", i, ln.UnitTransfer, want)
		}
		if want := sys.EnergyCost(ln.K, ln.L, in.Prices[ln.L]); ln.UnitEnergy != want {
			t.Errorf("lane %d energy %g, want %g", i, ln.UnitEnergy, want)
		}
	}
}

func TestCompileRejectsShapeMismatch(t *testing.T) {
	in := testInput(testSystem())
	plan, err := core.NewOptimized().Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	bad := *plan
	bad.Rate = bad.Rate[:1] // drop a type
	if _, err := Compile(in, &bad, Config{}); err == nil {
		t.Fatal("Compile accepted a plan with a missing type")
	}
	nan := core.NewPlan(in.Sys)
	nan.Rate[0][0][0][0] = math.NaN()
	if _, err := Compile(in, nan, Config{}); err == nil {
		t.Fatal("Compile accepted a NaN rate")
	}
}

// TestAliasDistribution draws a long sequence from one stream's alias
// table and checks the empirical lane frequencies against the plan's
// rates.
func TestAliasDistribution(t *testing.T) {
	_, _, tab := testTable(t, Config{Seed: 9, SlotSeconds: 60})
	for k := 0; k < tab.K(); k++ {
		for s := 0; s < tab.S(); s++ {
			e := &tab.entries[k][s]
			if len(e.lanes) == 0 {
				continue
			}
			const n = 200000
			counts := map[int32]int{}
			for seq := uint64(0); seq < n; seq++ {
				lane := e.draw(seq)
				if lane < 0 || int(lane) >= len(tab.Lanes) {
					t.Fatalf("stream (%d,%d) drew out-of-range lane %d", k, s, lane)
				}
				counts[lane]++
			}
			for _, li := range e.lanes {
				want := tab.Lanes[li].Rate / e.planned
				got := float64(counts[li]) / n
				if math.Abs(got-want) > 0.01 {
					t.Errorf("stream (%d,%d) lane %d frequency %.4f, want %.4f", k, s, li, got, want)
				}
			}
		}
	}
}

// replayStream drives one (k, s) stream through the gateway with evenly
// spaced arrivals and returns the outcome sequence.
func replayStream(gw *Gateway, k, s, n int, T float64) []Outcome {
	out := make([]Outcome, n)
	for i := 0; i < n; i++ {
		at := T * float64(i) / float64(n)
		out[i] = gw.Handle(k, s, at).Outcome
	}
	return out
}

// TestDeterminism replays the same arrivals through two independently
// compiled gateways — once sequentially, once with one goroutine per
// stream — and requires identical per-stream routing and admit/shed
// sequences. Run under -race this also proves the hot path is
// deterministic per stream in the presence of concurrency.
func TestDeterminism(t *testing.T) {
	const n = 5000
	run := func(parallel bool) map[[2]int][]Outcome {
		_, _, tab := testTable(t, Config{Seed: 1234, SlotSeconds: 60})
		gw := NewGateway(testSystem(), Config{Seed: 1234, SlotSeconds: 60}, nil)
		gw.Install(tab, 0, 0)
		T := tab.SlotLen
		res := make(map[[2]int][]Outcome)
		if !parallel {
			for k := 0; k < tab.K(); k++ {
				for s := 0; s < tab.S(); s++ {
					res[[2]int{k, s}] = replayStream(gw, k, s, n, T)
				}
			}
			return res
		}
		var mu sync.Mutex
		var wg sync.WaitGroup
		for k := 0; k < tab.K(); k++ {
			for s := 0; s < tab.S(); s++ {
				wg.Add(1)
				go func(k, s int) {
					defer wg.Done()
					seq := replayStream(gw, k, s, n, T)
					mu.Lock()
					res[[2]int{k, s}] = seq
					mu.Unlock()
				}(k, s)
			}
		}
		wg.Wait()
		return res
	}
	base := run(false)
	again := run(false)
	conc := run(true)
	for key, want := range base {
		for name, got := range map[string][]Outcome{"sequential rerun": again[key], "concurrent run": conc[key]} {
			if len(got) != len(want) {
				t.Fatalf("stream %v %s: %d outcomes, want %d", key, name, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("stream %v %s diverges at request %d: %v vs %v", key, name, i, got[i], want[i])
				}
			}
		}
	}
}

// TestDeterministicRouting checks the stronger property behind the
// determinism test: request i of a stream always draws the same lane.
func TestDeterministicRouting(t *testing.T) {
	_, _, tab := testTable(t, Config{Seed: 77, SlotSeconds: 60})
	for k := 0; k < tab.K(); k++ {
		for s := 0; s < tab.S(); s++ {
			e := &tab.entries[k][s]
			for seq := uint64(0); seq < 1000; seq++ {
				if a, b := e.draw(seq), e.draw(seq); a != b {
					t.Fatalf("stream (%d,%d) seq %d drew %d then %d", k, s, seq, a, b)
				}
			}
		}
	}
}

// TestBudgetEnforcement floods one stream at a single instant: the
// bucket admits exactly its burst and sheds the rest, then refills as
// virtual time advances.
func TestBudgetEnforcement(t *testing.T) {
	_, _, tab := testTable(t, Config{Seed: 5, SlotSeconds: 60})
	gw := NewGateway(testSystem(), Config{Seed: 5, SlotSeconds: 60}, nil)
	gw.Install(tab, 0, 0)
	// Flood k=0, s=0 at t=0. Buckets start full, so the admitted count
	// must equal the total burst across the stream's lanes (±1 per lane
	// for fractional token boundaries).
	var burst float64
	for _, ln := range tab.Lanes {
		if ln.K == 0 && ln.S == 0 {
			burst += ln.Burst
		}
	}
	if burst == 0 {
		t.Skip("stream (0,0) has no lanes in this plan")
	}
	total := int(burst) + 2000
	var admitted, shed int
	for i := 0; i < total; i++ {
		switch gw.Handle(0, 0, 0).Outcome {
		case Admitted:
			admitted++
		case ShedBudget:
			shed++
		default:
			t.Fatalf("unexpected outcome at request %d", i)
		}
	}
	if float64(admitted) > burst+2 || float64(admitted) < burst-2 {
		t.Fatalf("admitted %d at t=0, want ≈ burst %g", admitted, burst)
	}
	if shed == 0 {
		t.Fatal("no budget shed despite flooding")
	}
	// Advance half a slot: buckets refill at λ/2·T ≫ burst, so the next
	// request must be admitted again.
	if got := gw.Handle(0, 0, tab.SlotLen/2).Outcome; got != Admitted {
		t.Fatalf("after refill: %v, want admitted", got)
	}
}

// TestShedTable checks the emergency table: the gateway stays up and
// sheds every request as unplanned.
func TestShedTable(t *testing.T) {
	sys := testSystem()
	cfg := Config{SlotSeconds: 60}
	gw := NewGateway(sys, cfg, nil)
	gw.Install(ShedTable(sys, 3, cfg), 0, 0)
	for i := 0; i < 100; i++ {
		if got := gw.Handle(i%sys.K(), i%sys.S(), float64(i)).Outcome; got != ShedUnplanned {
			t.Fatalf("request %d: %v, want shed-unplanned", i, got)
		}
	}
	if got := gw.Handle(99, 0, 0).Outcome; got != Invalid {
		t.Fatalf("out-of-range type: %v, want invalid", got)
	}
	st := gw.Stats(0)
	if st.Tier != "shed" || !st.Degraded {
		t.Fatalf("stats: tier %q degraded %v", st.Tier, st.Degraded)
	}
	if st.ShedUnplanned != 100 {
		t.Fatalf("shed %d, want 100", st.ShedUnplanned)
	}
}

// TestHandleWithoutTable: a gateway with no installed table answers
// Invalid rather than panicking.
func TestHandleWithoutTable(t *testing.T) {
	gw := NewGateway(testSystem(), Config{SlotSeconds: 60}, nil)
	if got := gw.Handle(0, 0, 0).Outcome; got != Invalid {
		t.Fatalf("no table: %v, want invalid", got)
	}
	if tab := gw.Table(); tab != nil {
		t.Fatalf("Table() = %v, want nil", tab)
	}
}

// --- driver fixtures ---

type stubSource struct {
	in  *core.Input
	err error
}

func (s *stubSource) PlannerInput(abs int) (*core.Input, error) {
	if s.err != nil {
		return nil, s.err
	}
	in := *s.in
	in.Slot = abs
	return &in, nil
}

type stubPlanner struct {
	planner core.Planner
	err     error
	panics  bool
	tier    string
}

func (p *stubPlanner) Name() string { return "stub" }
func (p *stubPlanner) Plan(in *core.Input) (*core.Plan, error) {
	if p.panics {
		panic("solver exploded")
	}
	if p.err != nil {
		return nil, p.err
	}
	return p.planner.Plan(in)
}

// FallbackState mimics the resilient chain's degradation reporting.
func (p *stubPlanner) FallbackState() (int, string, bool) {
	if p.tier == "" {
		return 0, "", false
	}
	return 1, p.tier, true
}

func TestDriverHappyPath(t *testing.T) {
	in := testInput(testSystem())
	gw := NewGateway(in.Sys, Config{SlotSeconds: 60}, nil)
	d := &Driver{
		Gateway: gw,
		Planner: &stubPlanner{planner: core.NewOptimized()},
		Source:  &stubSource{in: in},
	}
	tab, err := d.BeginSlot(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.LastErr != nil {
		t.Fatalf("LastErr = %v", d.LastErr)
	}
	if tab.Degraded || tab.Slot != 7 || len(tab.Lanes) == 0 {
		t.Fatalf("table: %+v", tab)
	}
	if got := gw.Handle(0, 0, 0).Outcome; got != Admitted {
		t.Fatalf("first request: %v, want admitted", got)
	}
}

func TestDriverDegradesToShed(t *testing.T) {
	in := testInput(testSystem())
	cases := []struct {
		name string
		d    *Driver
	}{
		{"planner error", &Driver{
			Planner: &stubPlanner{err: errors.New("no solution")},
			Source:  &stubSource{in: in},
		}},
		{"planner panic", &Driver{
			Planner: &stubPlanner{panics: true},
			Source:  &stubSource{in: in},
		}},
		{"source error", &Driver{
			Planner: &stubPlanner{planner: core.NewOptimized()},
			Source:  &stubSource{err: errors.New("feed dark")},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gw := NewGateway(in.Sys, Config{SlotSeconds: 60}, nil)
			tc.d.Gateway = gw
			tab, err := tc.d.BeginSlot(3, 0)
			if err != nil {
				t.Fatalf("BeginSlot returned a wiring error: %v", err)
			}
			if tc.d.LastErr == nil {
				t.Fatal("LastErr is nil for a degraded slot")
			}
			if !tab.Degraded || tab.Tier != "shed" {
				t.Fatalf("table: degraded %v tier %q", tab.Degraded, tab.Tier)
			}
			// The gateway keeps answering: everything sheds, nothing errors.
			if got := gw.Handle(0, 0, 0).Outcome; got != ShedUnplanned {
				t.Fatalf("degraded gateway: %v, want shed-unplanned", got)
			}
		})
	}
}

func TestDriverMarksFallbackTier(t *testing.T) {
	in := testInput(testSystem())
	gw := NewGateway(in.Sys, Config{SlotSeconds: 60}, nil)
	d := &Driver{
		Gateway: gw,
		Planner: &stubPlanner{planner: core.NewOptimized(), tier: "balanced"},
		Source:  &stubSource{in: in},
	}
	tab, err := d.BeginSlot(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Degraded || tab.Tier != "balanced" {
		t.Fatalf("fallback table: degraded %v tier %q", tab.Degraded, tab.Tier)
	}
}

func TestDriverMissingWiring(t *testing.T) {
	if _, err := (&Driver{}).BeginSlot(0, 0); err == nil {
		t.Fatal("BeginSlot with no wiring succeeded")
	}
}

// TestHotSwap installs a second table mid-flight and checks the slot
// tallies reset while lifetime totals carry over.
func TestHotSwap(t *testing.T) {
	_, _, tab := testTable(t, Config{Seed: 2, SlotSeconds: 60})
	gw := NewGateway(testSystem(), Config{Seed: 2, SlotSeconds: 60}, nil)
	gw.Install(tab, 0, 0)
	for i := 0; i < 50; i++ {
		gw.Handle(0, 0, 0.01*float64(i))
	}
	_, _, tab2 := testTable(t, Config{Seed: 3, SlotSeconds: 60})
	gw.Install(tab2, tab.SlotLen, 0)
	st := gw.Stats(tab.SlotLen)
	if st.Offered != 0 {
		t.Fatalf("slot tally survived the swap: %d", st.Offered)
	}
	if st.TotalRequests != 50 {
		t.Fatalf("lifetime total %d, want 50", st.TotalRequests)
	}
	if st.Swaps != 2 {
		t.Fatalf("swaps %d, want 2", st.Swaps)
	}
}

func TestOutcomeString(t *testing.T) {
	want := map[Outcome]string{
		Admitted: "admitted", ShedUnplanned: "shed-unplanned",
		ShedBudget: "shed-budget", Invalid: "invalid",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), s)
		}
	}
}

// FuzzCompile feeds arbitrary per-lane rates and bucket parameters into
// the plan→routing-table compiler and asserts its structural invariants:
// it either rejects the plan or produces a table whose alias draws stay
// in range for every stream.
func FuzzCompile(f *testing.F) {
	f.Add(100.0, 50.0, 25.0, 10.0, uint64(1), 0.05, 8.0)
	f.Add(0.0, 0.0, 0.0, 0.0, uint64(0), 0.0, 0.0)
	f.Add(1e-12, 1e12, 1.0, 0.5, uint64(42), 1.0, 1.0)
	f.Add(-1.0, 2.0, 3.0, 4.0, uint64(7), 0.1, 2.0)
	f.Add(math.MaxFloat64, 1.0, 1.0, 1.0, uint64(3), 0.5, 4.0)
	f.Fuzz(func(t *testing.T, r0, r1, r2, r3 float64, seed uint64, burst, minBurst float64) {
		sys := &datacenter.System{
			Classes: []datacenter.RequestClass{
				{Name: "w", TUF: tuf.MustNew([]tuf.Level{{Utility: 0.01, Deadline: 0.01}})},
			},
			FrontEnds: []datacenter.FrontEnd{
				{Name: "a", DistanceMiles: []float64{1, 2}},
				{Name: "b", DistanceMiles: []float64{2, 1}},
			},
			Centers: []datacenter.DataCenter{
				{Name: "x", Servers: 4, Capacity: 1, ServiceRate: []float64{1000}, EnergyPerRequest: []float64{1e-4}},
				{Name: "y", Servers: 4, Capacity: 1, ServiceRate: []float64{1000}, EnergyPerRequest: []float64{1e-4}},
			},
		}
		in := &core.Input{
			Sys:      sys,
			Arrivals: [][]float64{{1e9}, {1e9}},
			Prices:   []float64{0.05, 0.05},
		}
		plan := core.NewPlan(sys)
		plan.Rate[0][0][0][0] = r0
		plan.Rate[0][0][0][1] = r1
		plan.Rate[0][0][1][0] = r2
		plan.Rate[0][0][1][1] = r3
		plan.ServersOn = []int{4, 4}
		for l := 0; l < 2; l++ {
			plan.Phi[l][0] = []float64{1}
		}
		cfg := Config{Seed: seed, Burst: burst, MinBurst: minBurst, SlotSeconds: 60}
		if cfg.Validate(sys) != nil {
			t.Skip()
		}
		tab, err := Compile(in, plan, cfg)
		if err != nil {
			return // rejected is a valid answer; not panicking is the property
		}
		for k := 0; k < tab.K(); k++ {
			for s := 0; s < tab.S(); s++ {
				e := &tab.entries[k][s]
				if len(e.prob) != len(e.lanes) || len(e.alias) != len(e.lanes) {
					t.Fatalf("stream (%d,%d): ragged alias table", k, s)
				}
				for i, p := range e.prob {
					if math.IsNaN(p) || p < 0 || p > 1+1e-9 {
						t.Fatalf("stream (%d,%d) cell %d: prob %g", k, s, i, p)
					}
					if e.alias[i] < 0 || int(e.alias[i]) >= len(e.lanes) {
						t.Fatalf("stream (%d,%d) cell %d: alias %d out of range", k, s, i, e.alias[i])
					}
				}
				for seq := uint64(0); seq < 64; seq++ {
					lane := e.draw(seq)
					if len(e.lanes) == 0 {
						if lane != -1 {
							t.Fatalf("empty stream drew lane %d", lane)
						}
						continue
					}
					if lane < 0 || int(lane) >= len(tab.Lanes) {
						t.Fatalf("stream (%d,%d) seq %d: lane %d out of range", k, s, seq, lane)
					}
				}
			}
		}
		for i, ln := range tab.Lanes {
			if math.IsNaN(ln.Burst) || ln.Burst < 0 {
				t.Fatalf("lane %d: burst %g", i, ln.Burst)
			}
		}
	})
}

package dispatch

import (
	"fmt"
	"math"
)

// TableWire is the serializable form of a compiled routing table: what
// the cluster control plane publishes to gateway replicas over HTTP. It
// carries the lanes in compile order plus the per-stream arrival budgets;
// the alias tables are not shipped — FromWire rebuilds them from the lane
// rates with the same deterministic construction Compile uses, so a
// round-tripped table routes identically to the original.
type TableWire struct {
	Epoch     uint64      `json:"epoch"`
	Sub       uint64      `json:"sub,omitempty"`
	Slot      int         `json:"slot"`
	SlotLen   float64     `json:"slotLen"`
	Seed      uint64      `json:"seed"`
	Objective float64     `json:"objective"`
	IdleCost  float64     `json:"idleCost"`
	ServersOn []int       `json:"serversOn"`
	Degraded  bool        `json:"degraded,omitempty"`
	Tier      string      `json:"tier,omitempty"`
	K         int         `json:"k"`
	S         int         `json:"s"`
	Lanes     []Lane      `json:"lanes"`
	Arrivals  [][]float64 `json:"arrivals"` // [k][s] planner-budgeted arrival rates
}

// Wire serializes the table. The lane slice is copied; the table stays
// immutable.
func (t *Table) Wire() *TableWire {
	w := &TableWire{
		Epoch:     t.Epoch,
		Sub:       t.Sub,
		Slot:      t.Slot,
		SlotLen:   t.SlotLen,
		Seed:      t.Seed,
		Objective: t.Objective,
		IdleCost:  t.IdleCost,
		ServersOn: append([]int(nil), t.ServersOn...),
		Degraded:  t.Degraded,
		Tier:      t.Tier,
		K:         t.k,
		S:         t.s,
		Lanes:     append([]Lane(nil), t.Lanes...),
	}
	w.Arrivals = make([][]float64, t.k)
	for k := 0; k < t.k; k++ {
		w.Arrivals[k] = make([]float64, t.s)
		for s := 0; s < t.s; s++ {
			w.Arrivals[k][s] = t.entries[k][s].arrival
		}
	}
	return w
}

// FromWire reconstructs a routing table from its wire form, rebuilding
// the per-stream alias tables from the lane rates. It validates what a
// hostile or corrupted payload can get wrong — dimensions, lane
// coordinates, non-finite rates — and rejects rather than installing
// garbage into a gateway.
func FromWire(w *TableWire) (*Table, error) {
	if w == nil {
		return nil, fmt.Errorf("dispatch: nil wire table")
	}
	if w.K <= 0 || w.S <= 0 {
		return nil, fmt.Errorf("dispatch: wire table shaped %d×%d streams", w.K, w.S)
	}
	if w.SlotLen <= 0 || math.IsNaN(w.SlotLen) || math.IsInf(w.SlotLen, 0) {
		return nil, fmt.Errorf("dispatch: wire table slot length %g", w.SlotLen)
	}
	if len(w.Arrivals) != w.K {
		return nil, fmt.Errorf("dispatch: wire table has %d arrival rows for %d types", len(w.Arrivals), w.K)
	}
	t := &Table{
		Epoch:     w.Epoch,
		Sub:       w.Sub,
		Slot:      w.Slot,
		SlotLen:   w.SlotLen,
		Seed:      w.Seed,
		Objective: w.Objective,
		IdleCost:  w.IdleCost,
		ServersOn: append([]int(nil), w.ServersOn...),
		Degraded:  w.Degraded,
		Tier:      w.Tier,
		k:         w.K,
		s:         w.S,
		Lanes:     append([]Lane(nil), w.Lanes...),
	}
	t.entries = make([][]entry, w.K)
	weights := make([][][]float64, w.K)
	for k := 0; k < w.K; k++ {
		if len(w.Arrivals[k]) != w.S {
			return nil, fmt.Errorf("dispatch: wire table arrival row %d has %d front-ends for %d", k, len(w.Arrivals[k]), w.S)
		}
		t.entries[k] = make([]entry, w.S)
		weights[k] = make([][]float64, w.S)
		for s := 0; s < w.S; s++ {
			t.entries[k][s] = entry{
				arrival: w.Arrivals[k][s],
				seed:    streamSeed(w.Seed, w.Slot, k, s),
			}
		}
	}
	for i := range t.Lanes {
		ln := &t.Lanes[i]
		if ln.K < 0 || ln.K >= w.K || ln.S < 0 || ln.S >= w.S {
			return nil, fmt.Errorf("dispatch: wire lane %d addresses stream (%d,%d) of %d×%d", i, ln.K, ln.S, w.K, w.S)
		}
		if ln.Rate <= 0 || math.IsNaN(ln.Rate) || math.IsInf(ln.Rate, 0) {
			return nil, fmt.Errorf("dispatch: wire lane %d has rate %g", i, ln.Rate)
		}
		if ln.Burst < 0 || math.IsNaN(ln.Burst) || math.IsInf(ln.Burst, 0) {
			return nil, fmt.Errorf("dispatch: wire lane %d has burst %g", i, ln.Burst)
		}
		if math.IsNaN(ln.MaxRate) || math.IsInf(ln.MaxRate, 0) {
			return nil, fmt.Errorf("dispatch: wire lane %d has max rate %g", i, ln.MaxRate)
		}
		if ln.MaxRate < ln.Rate {
			// Unknown (0), negative, or sub-rate headroom all normalize to
			// "no headroom": the lane's own rate.
			ln.MaxRate = ln.Rate
		}
		e := &t.entries[ln.K][ln.S]
		e.lanes = append(e.lanes, int32(i))
		weights[ln.K][ln.S] = append(weights[ln.K][ln.S], ln.Rate)
		e.planned += ln.Rate
	}
	for k := 0; k < w.K; k++ {
		for s := 0; s < w.S; s++ {
			e := &t.entries[k][s]
			e.prob, e.alias = buildAlias(weights[k][s])
		}
	}
	return t, nil
}

package dispatch

import (
	"sync/atomic"
	"time"

	"profitlb/internal/datacenter"
	"profitlb/internal/obs"
)

// Outcome classifies one request decision.
type Outcome uint8

const (
	// Admitted: the request was routed to its lane and fit the budget.
	Admitted Outcome = iota
	// ShedUnplanned: the plan dispatches nothing for the request's
	// (type, front-end) stream — no capacity was bought for it anywhere.
	ShedUnplanned
	// ShedBudget: the request drew a lane whose token bucket was empty —
	// arrivals ran ahead of the plan's budget λ·T (+burst).
	ShedBudget
	// Invalid: the request named a type or front-end outside the
	// topology, or hit a gateway with no table installed yet.
	Invalid
)

// String names the outcome for reports and HTTP bodies.
func (o Outcome) String() string {
	switch o {
	case Admitted:
		return "admitted"
	case ShedUnplanned:
		return "shed-unplanned"
	case ShedBudget:
		return "shed-budget"
	default:
		return "invalid"
	}
}

// Decision is the gateway's answer for one request. Admitted requests
// carry the serving lane; shed requests carry Lane -1.
type Decision struct {
	Outcome Outcome
	// Lane indexes Table.Lanes for admitted requests; -1 otherwise.
	Lane int32
	// Level and Center are the admitted lane's TUF level and data center
	// (-1 when shed).
	Level, Center int32
}

// compiled is a Table plus its mutable run state. One compiled value is
// installed at a time; a hot swap replaces the whole value so bucket and
// tally state never leaks across slots.
type compiled struct {
	t *Table
	// buckets[i] guards Lanes[i].
	buckets []bucket
	// admitted[i] counts requests admitted on Lanes[i].
	admitted []atomic.Int64
	// seq[k*S+s] numbers the stream's alias draws.
	seq []atomic.Uint64
	// offered / shedUnplanned / shedBudget tally the slot.
	offered       atomic.Int64
	shedUnplanned atomic.Int64
	shedBudget    atomic.Int64
	start         float64 // virtual time the table was installed
}

// Gateway executes the current slot's routing table. Handle is safe for
// concurrent use and allocation-free; Install atomically hot-swaps the
// table (typically from the Driver's background planner loop) without
// pausing the request path.
type Gateway struct {
	sys *datacenter.System
	cfg Config

	cur atomic.Pointer[compiled]

	// epoch is the highest plan epoch installed so far; sub is the highest
	// sub-epoch installed within it. InstallIfNewer fences on the
	// lexicographic pair: anything at or below (epoch, sub) is rejected.
	epoch atomic.Uint64
	sub   atomic.Uint64

	// Totals survive swaps (the per-slot tallies reset with each table).
	totalRequests atomic.Int64
	totalAdmitted atomic.Int64
	totalShed     atomic.Int64
	swaps         atomic.Int64
	fencedStale   atomic.Int64
	fencedDup     atomic.Int64

	// Pre-resolved observability instruments; nil without a scope (all
	// methods on them are nil-safe no-ops).
	cReq, cAdmit, cShedBudget, cShedUnplanned, cInvalid *obs.Counter
	cFencedStale, cFencedDup                            *obs.Counter
	hSwap                                               *obs.Histogram
	scope                                               *obs.Scope
}

// NewGateway builds a gateway for the system. The scope may be nil; when
// set, the hot path bumps pre-resolved counters (no per-request metric
// lookups) and Install records the swap-latency histogram.
func NewGateway(sys *datacenter.System, cfg Config, scope *obs.Scope) *Gateway {
	g := &Gateway{sys: sys, cfg: cfg.WithDefaults(), scope: scope}
	if scope != nil && scope.Metrics != nil {
		g.cReq = scope.Counter("dispatch_requests_total")
		g.cAdmit = scope.Counter("dispatch_admitted_total")
		g.cShedBudget = scope.Counter("dispatch_shed_total", obs.L("reason", "budget"))
		g.cShedUnplanned = scope.Counter("dispatch_shed_total", obs.L("reason", "unplanned"))
		g.cInvalid = scope.Counter("dispatch_invalid_total")
		g.cFencedStale = scope.Counter("dispatch_fenced_total", obs.L("reason", "stale"))
		g.cFencedDup = scope.Counter("dispatch_fenced_total", obs.L("reason", "duplicate"))
		g.hSwap = scope.Histogram("dispatch_swap_seconds", obs.ExpBuckets(1e-6, 4, 12))
	}
	return g
}

// Scope returns the gateway's observability scope (possibly nil); the
// slot engine shares it for its own counters.
func (g *Gateway) Scope() *obs.Scope { return g.scope }

// Epoch returns the highest plan epoch installed so far (0 before any
// epoch-stamped install).
func (g *Gateway) Epoch() uint64 { return g.epoch.Load() }

// Sub returns the highest sub-epoch installed within the current epoch
// (0 for a slot's committed plan; controller corrections tick it up).
func (g *Gateway) Sub() uint64 { return g.sub.Load() }

// Fenced returns the lifetime counts of rejected installs: stale (epoch
// below current) and duplicate (epoch equal to current).
func (g *Gateway) Fenced() (stale, dup int64) {
	return g.fencedStale.Load(), g.fencedDup.Load()
}

// System returns the topology the gateway serves.
func (g *Gateway) System() *datacenter.System { return g.sys }

// Config returns the gateway's (defaulted) configuration.
func (g *Gateway) Config() Config { return g.cfg }

// Install hot-swaps the routing table: the new compiled state becomes
// current in one atomic pointer store. now is the virtual time of the
// swap — the instant bucket refill starts. The elapsed argument is the
// plan+compile latency the caller measured; it lands in the swap
// histogram. Publishing per-lane occupancy gauges for the outgoing table
// happens here, off the request path.
//
// Bucket state across the swap: a table for a *new* slot starts every
// bucket full (a fresh slot is a fresh budget, and a full bucket does not
// starve the slot's first arrivals). A table for the *same* slot — a
// mid-slot re-spread after a cluster membership change, or a staleness
// downgrade — carries each matching lane's accumulated token level,
// fractional part included, clamped to the new capacity: refilling to
// full on every re-spread would hand the fleet a free burst per swap, and
// discarding the fraction would bias admission low by up to one request
// per lane per swap.
func (g *Gateway) Install(t *Table, now float64, elapsed time.Duration) {
	c := &compiled{
		t:        t,
		buckets:  make([]bucket, len(t.Lanes)),
		admitted: make([]atomic.Int64, len(t.Lanes)),
		seq:      make([]atomic.Uint64, t.k*t.s),
		start:    now,
	}
	old := g.cur.Load()
	var carry map[Lane]int
	if old != nil && old.t.Slot == t.Slot {
		carry = make(map[Lane]int, len(old.t.Lanes))
		for i := range old.t.Lanes {
			carry[laneCoord(&old.t.Lanes[i])] = i
		}
	}
	for i := range c.buckets {
		burst := t.Lanes[i].Burst
		if j, ok := carry[laneCoord(&t.Lanes[i])]; ok {
			ln := &old.t.Lanes[j]
			level := old.buckets[j].peek(now, ln.Rate, ln.Burst)
			if level > burst {
				level = burst
			}
			c.buckets[i].set(now, level)
			continue
		}
		c.buckets[i].reset(now, burst)
	}
	if t.Epoch > g.epoch.Load() {
		g.epoch.Store(t.Epoch)
		g.sub.Store(t.Sub)
	} else if t.Epoch == g.epoch.Load() && t.Sub > g.sub.Load() {
		g.sub.Store(t.Sub)
	}
	g.cur.Store(c)
	g.swaps.Add(1)
	g.hSwap.Observe(elapsed.Seconds())
	if g.scope.Enabled() {
		g.scope.Gauge("dispatch_current_slot").Set(float64(t.Slot))
		g.scope.Gauge("dispatch_current_epoch").Set(float64(t.Epoch))
		g.scope.Gauge("dispatch_current_sub").Set(float64(t.Sub))
		g.scope.Gauge("dispatch_lanes").Set(float64(len(t.Lanes)))
		g.scope.Gauge("dispatch_plan_objective").Set(t.Objective)
		if old != nil {
			g.publishOccupancy(old, now)
		}
	}
}

// laneCoord strips a lane to its (k, q, s, l) identity for carry
// matching across tables (the economics and rate fields are zeroed so
// re-spread shares of the same lane still match).
func laneCoord(ln *Lane) Lane {
	return Lane{K: ln.K, Q: ln.Q, S: ln.S, L: ln.L}
}

// InstallIfNewer installs the table only if its (epoch, sub-epoch) pair
// advances lexicographically past the gateway's current one — the fence
// that makes distributed plan application safe against stale, duplicate
// and out-of-order deliveries, for slot plans (sub 0) and in-slot
// controller corrections (sub > 0) alike. It reports whether the table
// was installed; fenced tables bump the stale/duplicate counters and
// leave the serving state untouched. Like Install, it is meant for a
// single installer goroutine per gateway.
func (g *Gateway) InstallIfNewer(t *Table, now float64, elapsed time.Duration) bool {
	curE, curS := g.epoch.Load(), g.sub.Load()
	if t.Epoch < curE || (t.Epoch == curE && t.Sub <= curS) {
		if t.Epoch == curE && t.Sub == curS {
			g.fencedDup.Add(1)
			g.cFencedDup.Inc()
		} else {
			g.fencedStale.Add(1)
			g.cFencedStale.Inc()
		}
		return false
	}
	g.Install(t, now, elapsed)
	return true
}

// publishOccupancy exports the outgoing table's final per-lane bucket
// occupancy (tokens as a fraction of burst) as gauges, labelled by lane
// coordinates. Called on swap only — never on the request path.
func (g *Gateway) publishOccupancy(c *compiled, now float64) {
	for i := range c.t.Lanes {
		ln := &c.t.Lanes[i]
		level := c.buckets[i].peek(now, ln.Rate, ln.Burst)
		occ := 0.0
		if ln.Burst > 0 {
			occ = level / ln.Burst
		}
		g.scope.Gauge("dispatch_lane_occupancy",
			obs.L("k", itoa(ln.K)), obs.L("q", itoa(ln.Q)),
			obs.L("s", itoa(ln.S)), obs.L("l", itoa(ln.L))).Set(occ)
	}
}

// Table returns the currently installed table (nil before the first
// Install).
func (g *Gateway) Table() *Table {
	c := g.cur.Load()
	if c == nil {
		return nil
	}
	return c.t
}

// Handle decides one request of type k arriving at front-end s at
// virtual time now. It is the hot path: no allocations, no locks beyond
// the drawn lane's bucket mutex, and deterministic per (k, s) stream
// under a fixed table and seed — request i of a stream always draws the
// same lane, and the admit/shed answer depends only on the stream's
// arrival times.
func (g *Gateway) Handle(k, s int, now float64) Decision {
	g.totalRequests.Add(1)
	g.cReq.Inc()
	c := g.cur.Load()
	if c == nil || k < 0 || k >= c.t.k || s < 0 || s >= c.t.s {
		g.cInvalid.Inc()
		return Decision{Outcome: Invalid, Lane: -1, Level: -1, Center: -1}
	}
	c.offered.Add(1)
	e := &c.t.entries[k][s]
	seq := c.seq[k*c.t.s+s].Add(1) - 1
	lane := e.draw(seq)
	if lane < 0 {
		c.shedUnplanned.Add(1)
		g.totalShed.Add(1)
		g.cShedUnplanned.Inc()
		return Decision{Outcome: ShedUnplanned, Lane: -1, Level: -1, Center: -1}
	}
	ln := &c.t.Lanes[lane]
	ok, _ := c.buckets[lane].take(now, ln.Rate, ln.Burst)
	if !ok {
		c.shedBudget.Add(1)
		g.totalShed.Add(1)
		g.cShedBudget.Inc()
		return Decision{Outcome: ShedBudget, Lane: -1, Level: -1, Center: -1}
	}
	c.admitted[lane].Add(1)
	g.totalAdmitted.Add(1)
	g.cAdmit.Inc()
	return Decision{Outcome: Admitted, Lane: lane, Level: int32(ln.Q), Center: int32(ln.L)}
}

// LaneCount is one lane's slot tally.
type LaneCount struct {
	Lane
	Admitted int64
	// Occupancy is the bucket's current token level as a fraction of
	// burst (1 = full, 0 = exhausted).
	Occupancy float64
}

// Stats is a point-in-time snapshot of the gateway.
type Stats struct {
	// Slot and Degraded/Tier describe the installed table; Epoch and Sub
	// are the highest (epoch, sub-epoch) pair applied.
	Slot     int
	Epoch    uint64
	Sub      uint64
	Degraded bool
	Tier     string
	// FencedStale and FencedDup count installs rejected by the epoch
	// fence over the gateway's lifetime.
	FencedStale, FencedDup int64
	// Offered/Admitted/ShedUnplanned/ShedBudget tally the current slot.
	Offered, Admitted, ShedUnplanned, ShedBudget int64
	// TotalRequests/TotalAdmitted/TotalShed/Swaps tally the gateway's
	// lifetime across swaps.
	TotalRequests, TotalAdmitted, TotalShed, Swaps int64
	// Lanes carries the per-lane admitted counts and bucket occupancy.
	Lanes []LaneCount
}

// Stats snapshots the gateway (allocates; not for the request path). now
// refills buckets before reading occupancy so the fractions are current.
func (g *Gateway) Stats(now float64) Stats {
	st := Stats{
		TotalRequests: g.totalRequests.Load(),
		TotalAdmitted: g.totalAdmitted.Load(),
		TotalShed:     g.totalShed.Load(),
		Swaps:         g.swaps.Load(),
		Epoch:         g.epoch.Load(),
		Sub:           g.sub.Load(),
		FencedStale:   g.fencedStale.Load(),
		FencedDup:     g.fencedDup.Load(),
		Slot:          -1,
	}
	c := g.cur.Load()
	if c == nil {
		return st
	}
	st.Slot = c.t.Slot
	st.Degraded = c.t.Degraded
	st.Tier = c.t.Tier
	st.Offered = c.offered.Load()
	st.ShedUnplanned = c.shedUnplanned.Load()
	st.ShedBudget = c.shedBudget.Load()
	st.Lanes = make([]LaneCount, len(c.t.Lanes))
	for i := range c.t.Lanes {
		ln := c.t.Lanes[i]
		n := c.admitted[i].Load()
		st.Admitted += n
		level := c.buckets[i].peek(now, ln.Rate, ln.Burst)
		occ := 0.0
		if ln.Burst > 0 {
			occ = level / ln.Burst
		}
		st.Lanes[i] = LaneCount{Lane: ln, Admitted: n, Occupancy: occ}
	}
	return st
}

// StreamOffered returns the current table's per-stream draw counts,
// indexed k·S+s — the number of in-topology requests each (type,
// front-end) stream has offered since the table was installed. Because
// draw counters reset on every install, a sub-slot controller reading
// this sees exactly the traffic the current table has absorbed. Nil
// before the first Install.
func (g *Gateway) StreamOffered() []int64 {
	c := g.cur.Load()
	if c == nil {
		return nil
	}
	out := make([]int64, len(c.seq))
	for i := range c.seq {
		out[i] = int64(c.seq[i].Load())
	}
	return out
}

// LaneAdmitted returns the current slot's admitted count per lane,
// aligned with Table().Lanes. Nil before the first Install.
func (g *Gateway) LaneAdmitted() []int64 {
	c := g.cur.Load()
	if c == nil {
		return nil
	}
	out := make([]int64, len(c.admitted))
	for i := range c.admitted {
		out[i] = c.admitted[i].Load()
	}
	return out
}

// itoa renders small non-negative ints without strconv allocations on
// the swap path (label values are tiny).
func itoa(n int) string {
	if n < 10 {
		return string([]byte{byte('0' + n)})
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

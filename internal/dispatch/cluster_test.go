package dispatch

import (
	"errors"
	"math"
	"testing"

	"profitlb/internal/core"
	"profitlb/internal/datacenter"
	"profitlb/internal/obs"
	"profitlb/internal/tuf"
)

// oneLaneSystem is the smallest topology that compiles to a single lane,
// so bucket-level behaviour is directly observable.
func oneLaneSystem() *datacenter.System {
	return &datacenter.System{
		Classes: []datacenter.RequestClass{
			{Name: "w", TUF: tuf.MustNew([]tuf.Level{{Utility: 0.01, Deadline: 0.01}})},
		},
		FrontEnds: []datacenter.FrontEnd{{Name: "a", DistanceMiles: []float64{1}}},
		Centers: []datacenter.DataCenter{
			{Name: "x", Servers: 4, Capacity: 1, ServiceRate: []float64{1000}, EnergyPerRequest: []float64{1e-4}},
		},
	}
}

// oneLaneTable compiles a table with exactly one lane of the given rate
// and a burst pinned to cfg.MinBurst (cfg.Burst is left tiny).
func oneLaneTable(t *testing.T, slot int, rate float64, cfg Config) *Table {
	t.Helper()
	sys := oneLaneSystem()
	in := &core.Input{Sys: sys, Arrivals: [][]float64{{1e9}}, Prices: []float64{0.05}, Slot: slot}
	plan := core.NewPlan(sys)
	plan.Rate[0][0][0][0] = rate
	plan.ServersOn = []int{4}
	plan.Phi[0][0] = []float64{1}
	tab, err := Compile(in, plan, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if len(tab.Lanes) != 1 {
		t.Fatalf("%d lanes, want 1", len(tab.Lanes))
	}
	return tab
}

// TestEpochFence: InstallIfNewer rejects stale and duplicate epochs,
// counts each kind, and leaves the serving table untouched.
func TestEpochFence(t *testing.T) {
	cfg := Config{SlotSeconds: 60, Burst: 1e-9, MinBurst: 4}
	gw := NewGateway(oneLaneSystem(), cfg, nil)

	t3 := oneLaneTable(t, 0, 2, cfg)
	t3.Epoch = 3
	if !gw.InstallIfNewer(t3, 0, 0) {
		t.Fatal("epoch 3 fenced on a fresh gateway")
	}
	if gw.Epoch() != 3 {
		t.Fatalf("Epoch() = %d, want 3", gw.Epoch())
	}

	dup := oneLaneTable(t, 0, 9, cfg)
	dup.Epoch = 3
	if gw.InstallIfNewer(dup, 0, 0) {
		t.Fatal("duplicate epoch installed")
	}
	stale := oneLaneTable(t, 0, 9, cfg)
	stale.Epoch = 1
	if gw.InstallIfNewer(stale, 0, 0) {
		t.Fatal("stale epoch installed")
	}
	if s, d := gw.Fenced(); s != 1 || d != 1 {
		t.Fatalf("Fenced() = (%d, %d), want (1, 1)", s, d)
	}
	if got := gw.Table().Lanes[0].Rate; got != 2 {
		t.Fatalf("serving lane rate %g after fenced installs, want 2", got)
	}

	t5 := oneLaneTable(t, 0, 7, cfg)
	t5.Epoch = 5
	if !gw.InstallIfNewer(t5, 0, 0) {
		t.Fatal("epoch 5 fenced")
	}
	if gw.Epoch() != 5 || gw.Table().Lanes[0].Rate != 7 {
		t.Fatalf("epoch %d rate %g after advance", gw.Epoch(), gw.Table().Lanes[0].Rate)
	}
	st := gw.Stats(0)
	if st.Epoch != 5 || st.FencedStale != 1 || st.FencedDup != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestTokenCarrySameSlotSwap: a same-slot hot swap (re-spread or
// staleness downgrade) inherits each lane's accumulated token level —
// fractional part included — instead of refilling to full; a new slot's
// table starts full again.
func TestTokenCarrySameSlotSwap(t *testing.T) {
	const rate, burst = 2.0, 4.0
	cfg := Config{SlotSeconds: 60, Burst: 1e-9, MinBurst: burst}
	gw := NewGateway(oneLaneSystem(), cfg, nil)
	gw.Install(oneLaneTable(t, 0, rate, cfg), 0, 0)

	// Drain the bucket at t=0: exactly burst admits, then budget sheds.
	var admitted int
	for i := 0; i < 10; i++ {
		if gw.Handle(0, 0, 0).Outcome == Admitted {
			admitted++
		}
	}
	if admitted != int(burst) {
		t.Fatalf("flood admitted %d, want %g", admitted, burst)
	}

	// Same-slot swap with the bucket empty: no free burst.
	gw.Install(oneLaneTable(t, 0, rate, cfg), 0, 0)
	if got := gw.Handle(0, 0, 0).Outcome; got != ShedBudget {
		t.Fatalf("after empty-bucket same-slot swap: %v, want shed-budget", got)
	}
	// That probe ran at tokens < 1, spending nothing.

	// Let 1.5 tokens accrue, then swap again: the fraction must survive.
	t1 := 1.5 / rate
	gw.Install(oneLaneTable(t, 0, rate, cfg), t1, 0)
	if got := gw.Handle(0, 0, t1).Outcome; got != Admitted {
		t.Fatalf("carried 1.5 tokens: first request %v, want admitted", got)
	}
	if got := gw.Handle(0, 0, t1).Outcome; got != ShedBudget {
		t.Fatalf("carried 1.5 tokens: second request %v, want shed-budget", got)
	}
	// 0.5 tokens remain. Another swap, then half a token's worth of time:
	// 0.5 carried + 0.5 accrued = 1.0 — admitted only if the fraction was
	// carried through both swaps.
	gw.Install(oneLaneTable(t, 0, rate, cfg), t1, 0)
	t2 := t1 + 0.5/rate
	if got := gw.Handle(0, 0, t2).Outcome; got != Admitted {
		t.Fatalf("fractional carry lost: %v, want admitted", got)
	}

	// A new slot resets to a full bucket.
	gw.Install(oneLaneTable(t, 1, rate, cfg), t2, 0)
	admitted = 0
	for i := 0; i < 10; i++ {
		if gw.Handle(0, 0, t2).Outcome == Admitted {
			admitted++
		}
	}
	if admitted != int(burst) {
		t.Fatalf("new slot admitted %d, want full burst %g", admitted, burst)
	}
}

// TestTokenCarryClampsToNewBurst: a downgrade swap (smaller burst) clamps
// the inherited level to the new capacity instead of importing the old.
func TestTokenCarryClampsToNewBurst(t *testing.T) {
	cfg := Config{SlotSeconds: 60, Burst: 1e-9, MinBurst: 8}
	gw := NewGateway(oneLaneSystem(), cfg, nil)
	gw.Install(oneLaneTable(t, 0, 2, cfg), 0, 0) // full at 8 tokens

	small := Config{SlotSeconds: 60, Burst: 1e-9, MinBurst: 3}
	gw.Install(oneLaneTable(t, 0, 2, small), 0, 0)
	var admitted int
	for i := 0; i < 12; i++ {
		if gw.Handle(0, 0, 0).Outcome == Admitted {
			admitted++
		}
	}
	if admitted != 3 {
		t.Fatalf("admitted %d after clamping swap, want 3", admitted)
	}
}

// TestSubdivideSharesSumExactly: the telescoping subdivision reproduces
// every lane's rate and every stream's planned budget exactly when the
// replica shares are summed — the property that lets per-replica
// accounting reconcile against the fleet plan with zero tolerance.
func TestSubdivideSharesSumExactly(t *testing.T) {
	cfg := Config{Seed: 21, SlotSeconds: 60}
	_, _, tab := testTable(t, cfg)
	for _, n := range []int{1, 2, 3, 4, 7} {
		rates := make([]float64, len(tab.Lanes))
		planned := make([][]float64, tab.K())
		for k := range planned {
			planned[k] = make([]float64, tab.S())
		}
		for idx := 0; idx < n; idx++ {
			sub, err := tab.Subdivide(idx, n, cfg)
			if err != nil {
				t.Fatalf("subdivide %d/%d: %v", idx, n, err)
			}
			if sub.Epoch != tab.Epoch || sub.Slot != tab.Slot || len(sub.Lanes) != len(tab.Lanes) {
				t.Fatalf("subdivision %d/%d lost identity: %+v", idx, n, sub)
			}
			for i := range sub.Lanes {
				rates[i] += sub.Lanes[i].Rate
				if sub.Lanes[i].Burst < DefaultMinBurst {
					t.Fatalf("lane %d burst %g below floor", i, sub.Lanes[i].Burst)
				}
			}
			for k := 0; k < tab.K(); k++ {
				for s := 0; s < tab.S(); s++ {
					p, _ := sub.Planned(k, s)
					planned[k][s] += p
				}
			}
		}
		for i := range rates {
			if rates[i] != tab.Lanes[i].Rate {
				t.Errorf("n=%d lane %d shares sum to %g, want exactly %g (Δ=%g)",
					n, i, rates[i], tab.Lanes[i].Rate, rates[i]-tab.Lanes[i].Rate)
			}
		}
		for k := 0; k < tab.K(); k++ {
			for s := 0; s < tab.S(); s++ {
				want, _ := tab.Planned(k, s)
				if math.Abs(planned[k][s]-want) > 1e-9 {
					t.Errorf("n=%d stream (%d,%d) planned sums to %g, want %g", n, k, s, planned[k][s], want)
				}
			}
		}
	}
	if _, err := tab.Subdivide(0, 0, cfg); err == nil {
		t.Error("subdivide into 0 replicas accepted")
	}
	if _, err := tab.Subdivide(3, 3, cfg); err == nil {
		t.Error("replica index == fleet size accepted")
	}
	if _, err := tab.Subdivide(-1, 3, cfg); err == nil {
		t.Error("negative replica index accepted")
	}
}

// TestSubdivideIndependentRouting: replicas walk independent routing
// sequences (re-mixed seeds) over the same lane distribution.
func TestSubdivideIndependentRouting(t *testing.T) {
	// A hand-built stream split across two centers, so draws actually
	// have two lanes to choose between.
	sys := &datacenter.System{
		Classes: []datacenter.RequestClass{
			{Name: "w", TUF: tuf.MustNew([]tuf.Level{{Utility: 0.01, Deadline: 0.01}})},
		},
		FrontEnds: []datacenter.FrontEnd{{Name: "a", DistanceMiles: []float64{1, 2}}},
		Centers: []datacenter.DataCenter{
			{Name: "x", Servers: 4, Capacity: 1, ServiceRate: []float64{1000}, EnergyPerRequest: []float64{1e-4}},
			{Name: "y", Servers: 4, Capacity: 1, ServiceRate: []float64{1000}, EnergyPerRequest: []float64{1e-4}},
		},
	}
	in := &core.Input{Sys: sys, Arrivals: [][]float64{{1e9}}, Prices: []float64{0.05, 0.05}}
	plan := core.NewPlan(sys)
	plan.Rate[0][0][0][0] = 300
	plan.Rate[0][0][0][1] = 200
	plan.ServersOn = []int{4, 4}
	plan.Phi[0][0] = []float64{1}
	plan.Phi[1][0] = []float64{1}
	cfg := Config{Seed: 8, SlotSeconds: 60}
	tab, err := Compile(in, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.entries[0][0].lanes) != 2 {
		t.Fatalf("fixture has %d lanes, want 2", len(tab.entries[0][0].lanes))
	}
	a, err := tab.Subdivide(0, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tab.Subdivide(1, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := &a.entries[0][0], &b.entries[0][0]
	for seq := uint64(0); seq < 256; seq++ {
		if ea.draw(seq) != eb.draw(seq) {
			return
		}
	}
	t.Fatal("replicas 0 and 1 drew identical routing sequences across 256 draws")
}

// TestWireRoundTrip: Wire→FromWire reconstructs a table that routes and
// admits identically to the original.
func TestWireRoundTrip(t *testing.T) {
	cfg := Config{Seed: 13, SlotSeconds: 60}
	_, _, tab := testTable(t, cfg)
	tab.Epoch = 42
	back, err := FromWire(tab.Wire())
	if err != nil {
		t.Fatal(err)
	}
	if back.Epoch != 42 || back.Slot != tab.Slot || back.SlotLen != tab.SlotLen ||
		back.Objective != tab.Objective || len(back.Lanes) != len(tab.Lanes) {
		t.Fatalf("round trip lost header: %+v", back)
	}
	for k := 0; k < tab.K(); k++ {
		for s := 0; s < tab.S(); s++ {
			ea, eb := &tab.entries[k][s], &back.entries[k][s]
			if math.Abs(ea.planned-eb.planned) > 1e-9 || ea.arrival != eb.arrival {
				t.Fatalf("stream (%d,%d) budgets differ: %g/%g vs %g/%g",
					k, s, ea.planned, ea.arrival, eb.planned, eb.arrival)
			}
			for seq := uint64(0); seq < 2000; seq++ {
				if ea.draw(seq) != eb.draw(seq) {
					t.Fatalf("stream (%d,%d) seq %d routes differently after round trip", k, s, seq)
				}
			}
		}
	}
}

// TestFromWireRejectsHostile: corrupted or hostile wire payloads are
// rejected instead of installing garbage.
func TestFromWireRejectsHostile(t *testing.T) {
	cfg := Config{Seed: 13, SlotSeconds: 60}
	_, _, tab := testTable(t, cfg)
	good := tab.Wire()
	mutate := map[string]func(w *TableWire){
		"zero types":         func(w *TableWire) { w.K = 0 },
		"negative fronts":    func(w *TableWire) { w.S = -1 },
		"zero slot length":   func(w *TableWire) { w.SlotLen = 0 },
		"NaN slot length":    func(w *TableWire) { w.SlotLen = math.NaN() },
		"short arrivals":     func(w *TableWire) { w.Arrivals = w.Arrivals[:1] },
		"ragged arrivals":    func(w *TableWire) { w.Arrivals[0] = w.Arrivals[0][:1] },
		"lane out of range":  func(w *TableWire) { w.Lanes[0].K = 99 },
		"negative lane rate": func(w *TableWire) { w.Lanes[0].Rate = -1 },
		"NaN lane rate":      func(w *TableWire) { w.Lanes[0].Rate = math.NaN() },
		"infinite burst":     func(w *TableWire) { w.Lanes[0].Burst = math.Inf(1) },
	}
	for name, f := range mutate {
		w := *good
		w.Lanes = append([]Lane(nil), good.Lanes...)
		w.Arrivals = make([][]float64, len(good.Arrivals))
		for k := range good.Arrivals {
			w.Arrivals[k] = append([]float64(nil), good.Arrivals[k]...)
		}
		f(&w)
		if _, err := FromWire(&w); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := FromWire(nil); err == nil {
		t.Error("nil wire accepted")
	}
}

// TestScaleConservativeShed: the staleness downgrade transform keeps the
// routing distribution but cuts the admitted budget to the factor.
func TestScaleConservativeShed(t *testing.T) {
	const rate, burst = 2.0, 6.0
	cfg := Config{SlotSeconds: 60, Burst: 1e-9, MinBurst: burst}
	tab := oneLaneTable(t, 0, rate, cfg)
	half := tab.Scale(0.5, "stale", Config{SlotSeconds: 60, Burst: 1e-9, MinBurst: burst / 2})
	if !half.Degraded || half.Tier != "stale" {
		t.Fatalf("scaled table: degraded %v tier %q", half.Degraded, half.Tier)
	}
	if half.Lanes[0].Rate != rate/2 {
		t.Fatalf("scaled rate %g, want %g", half.Lanes[0].Rate, rate/2)
	}
	if tab.Lanes[0].Rate != rate {
		t.Fatal("Scale mutated the source table")
	}
	gw := NewGateway(oneLaneSystem(), cfg, nil)
	gw.Install(half, 0, 0)
	var admitted int
	for i := 0; i < 20; i++ {
		if gw.Handle(0, 0, 0).Outcome == Admitted {
			admitted++
		}
	}
	if admitted != int(burst/2) {
		t.Fatalf("scaled flood admitted %d, want %g", admitted, burst/2)
	}
}

// flakyPlanner fails on scheduled calls and delegates otherwise.
type flakyPlanner struct {
	inner core.Planner
	calls int
	fail  map[int]bool // by call index (1-based)
}

func (p *flakyPlanner) Name() string { return "flaky" }
func (p *flakyPlanner) Plan(in *core.Input) (*core.Plan, error) {
	p.calls++
	if p.fail[p.calls] {
		return nil, errors.New("induced planner failure")
	}
	return p.inner.Plan(in)
}

// TestDriverMultiSlotRecovery: consecutive planner failures degrade each
// slot to all-shed under strictly increasing epochs, and the first clean
// slot recovers primary serving — with the obs slot counters agreeing.
func TestDriverMultiSlotRecovery(t *testing.T) {
	reg := obs.NewRegistry()
	scope := obs.NewScope(reg, nil)
	in := testInput(testSystem())
	gw := NewGateway(in.Sys, Config{SlotSeconds: 60}, scope)
	d := &Driver{
		Gateway: gw,
		Planner: &flakyPlanner{inner: core.NewOptimized(), fail: map[int]bool{2: true, 3: true}},
		Source:  &stubSource{in: in},
	}
	type slotState struct {
		epoch    uint64
		degraded bool
		tier     string
	}
	var got []slotState
	for i := 0; i < 4; i++ {
		tab, err := d.BeginSlot(10+i, float64(i)*in.Sys.Slot())
		if err != nil {
			t.Fatalf("slot %d: %v", 10+i, err)
		}
		got = append(got, slotState{tab.Epoch, tab.Degraded, tab.Tier})
		wantErr := i == 1 || i == 2
		if (d.LastErr != nil) != wantErr {
			t.Fatalf("slot %d LastErr = %v", 10+i, d.LastErr)
		}
	}
	for i, s := range got {
		if s.epoch != uint64(i+1) {
			t.Fatalf("slot %d epoch %d, want %d (monotone, no gaps)", i, s.epoch, i+1)
		}
	}
	if got[0].degraded || got[3].degraded {
		t.Fatalf("clean slots degraded: %+v", got)
	}
	if !got[1].degraded || got[1].tier != "shed" || !got[2].degraded || got[2].tier != "shed" {
		t.Fatalf("failed slots not all-shed: %+v", got)
	}
	// The recovered gateway serves primary traffic again.
	if out := gw.Handle(0, 0, 3*in.Sys.Slot()).Outcome; out != Admitted {
		t.Fatalf("post-recovery request: %v, want admitted", out)
	}
	if n := scope.Counter("dispatch_slots_total").Value(); n != 4 {
		t.Fatalf("dispatch_slots_total = %d, want 4", n)
	}
	if n := scope.Counter("dispatch_slots_degraded_total").Value(); n != 2 {
		t.Fatalf("dispatch_slots_degraded_total = %d, want 2", n)
	}
	if gw.Epoch() != 4 {
		t.Fatalf("gateway epoch %d, want 4", gw.Epoch())
	}
}

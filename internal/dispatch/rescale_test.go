package dispatch

import (
	"math"
	"testing"

	"profitlb/internal/core"
)

// TestRescaleIdentity: an all-ones multiplier vector reproduces the base
// table bit for bit — same per-stream budgets, same routing draws — with
// only the sub-epoch advanced. This is the controller's no-op contract:
// publishing an identity correction must not perturb serving.
func TestRescaleIdentity(t *testing.T) {
	cfg := Config{Seed: 31, SlotSeconds: 60}
	_, _, tab := testTable(t, cfg)
	tab.Epoch = 9
	ones := make([]float64, len(tab.Lanes))
	for i := range ones {
		ones[i] = 1
	}
	re, err := tab.Rescale(ones, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if re.Epoch != 9 || re.Sub != 4 {
		t.Fatalf("identity rescale pair (%d, %d), want (9, 4)", re.Epoch, re.Sub)
	}
	for i := range tab.Lanes {
		if re.Lanes[i].Rate != tab.Lanes[i].Rate || re.Lanes[i].MaxRate != tab.Lanes[i].MaxRate {
			t.Fatalf("lane %d changed under identity: rate %g→%g maxRate %g→%g",
				i, tab.Lanes[i].Rate, re.Lanes[i].Rate, tab.Lanes[i].MaxRate, re.Lanes[i].MaxRate)
		}
	}
	for k := 0; k < tab.K(); k++ {
		for s := 0; s < tab.S(); s++ {
			pa, aa := tab.Planned(k, s)
			pb, ab := re.Planned(k, s)
			if pa != pb || aa != ab {
				t.Fatalf("stream (%d,%d) budgets moved: %g/%g → %g/%g", k, s, pa, aa, pb, ab)
			}
			ea, eb := &tab.entries[k][s], &re.entries[k][s]
			for seq := uint64(0); seq < 4000; seq++ {
				if ea.draw(seq) != eb.draw(seq) {
					t.Fatalf("stream (%d,%d) seq %d routes differently under identity rescale", k, s, seq)
				}
			}
		}
	}
}

// TestRescaleMaxRateCap: a multiplier that would push a lane past its
// compiled headroom is silently capped at MaxRate — the actuated table
// can never leave the capacity/deadline envelope the plan was verified
// against — while lanes with room scale exactly.
func TestRescaleMaxRateCap(t *testing.T) {
	cfg := Config{SlotSeconds: 60}.WithDefaults()
	w := &TableWire{
		Epoch: 1, SlotLen: 60, Seed: 7, K: 1, S: 2,
		ServersOn: []int{1, 1},
		Lanes: []Lane{
			{K: 0, Q: 0, S: 0, L: 0, Rate: 100, MaxRate: 150, Burst: 300},
			{K: 0, Q: 0, S: 1, L: 1, Rate: 80, MaxRate: 400, Burst: 240},
		},
		Arrivals: [][]float64{{100, 80}},
	}
	tab, err := FromWire(w)
	if err != nil {
		t.Fatal(err)
	}
	re, err := tab.Rescale([]float64{3, 3}, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := re.Lanes[0].Rate; got != 150 {
		t.Fatalf("capped lane rate %g, want MaxRate 150", got)
	}
	if got := re.Lanes[1].Rate; got != 240 {
		t.Fatalf("free lane rate %g, want 3×80 = 240", got)
	}
	// The per-stream planned budget tracks the re-scaled lane sum.
	if p, _ := re.Planned(0, 0); p != 150 {
		t.Fatalf("stream (0,0) planned %g, want 150", p)
	}
	if p, _ := re.Planned(0, 1); p != 240 {
		t.Fatalf("stream (0,1) planned %g, want 240", p)
	}
}

// TestRescaleInvalidMultipliers: malformed multiplier vectors are
// refused outright — the controller freezes on the error rather than
// installing a corrupt table.
func TestRescaleInvalidMultipliers(t *testing.T) {
	cfg := Config{Seed: 31, SlotSeconds: 60}
	_, _, tab := testTable(t, cfg)
	ones := make([]float64, len(tab.Lanes))
	for i := range ones {
		ones[i] = 1
	}
	bad := map[string][]float64{
		"short vector": ones[:1],
		"long vector":  append(append([]float64(nil), ones...), 1),
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), 0, -0.5} {
		m := append([]float64(nil), ones...)
		m[0] = v
		bad[formatMult(v)] = m
	}
	for name, m := range bad {
		if _, err := tab.Rescale(m, 1, cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func formatMult(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN multiplier"
	case math.IsInf(v, 0):
		return "Inf multiplier"
	case v == 0:
		return "zero multiplier"
	default:
		return "negative multiplier"
	}
}

// TestInstallIfNewerLexicographic: the gateway fence orders tables by
// the (epoch, sub) pair lexicographically — a sub-epoch advances within
// its epoch only, a new epoch resets the sub sequence, and equal pairs
// count as duplicates.
func TestInstallIfNewerLexicographic(t *testing.T) {
	cfg := Config{SlotSeconds: 60, Burst: 1e-9, MinBurst: 4}
	gw := NewGateway(oneLaneSystem(), cfg, nil)

	mk := func(epoch, sub uint64, rate float64) *Table {
		tab := oneLaneTable(t, 0, rate, cfg)
		tab.Epoch, tab.Sub = epoch, sub
		return tab
	}
	steps := []struct {
		epoch, sub uint64
		install    bool
		why        string
	}{
		{3, 0, true, "first install"},
		{3, 1, true, "sub advance within epoch"},
		{3, 3, true, "sub may skip"},
		{3, 3, false, "duplicate pair"},
		{3, 2, false, "stale sub within epoch"},
		{2, 9, false, "older epoch loses despite higher sub"},
		{4, 0, true, "new epoch resets sub"},
		{4, 0, false, "duplicate at sub 0"},
		{3, 7, false, "stale epoch after reset"},
		{4, 2, true, "sub advances in the new epoch"},
	}
	rate := 1.0
	for _, st := range steps {
		rate++
		got := gw.InstallIfNewer(mk(st.epoch, st.sub, rate), 0, 0)
		if got != st.install {
			t.Fatalf("%s: install(%d,%d) = %v, want %v", st.why, st.epoch, st.sub, got, st.install)
		}
		if st.install {
			if gw.Epoch() != st.epoch || gw.Sub() != st.sub {
				t.Fatalf("%s: serving pair (%d,%d), want (%d,%d)",
					st.why, gw.Epoch(), gw.Sub(), st.epoch, st.sub)
			}
			if gw.Table().Lanes[0].Rate != rate {
				t.Fatalf("%s: serving rate %g, want %g", st.why, gw.Table().Lanes[0].Rate, rate)
			}
		}
	}
}

// TestWireSubMaxRate: the sub-epoch and per-lane headroom survive the
// wire round trip; hostile MaxRate values are rejected (NaN/Inf) or
// normalized up to Rate (a missing or undercut headroom must never make
// Rescale clamp below the committed plan).
func TestWireSubMaxRate(t *testing.T) {
	cfg := Config{Seed: 13, SlotSeconds: 60}
	_, _, tab := testTable(t, cfg)
	tab.Epoch, tab.Sub = 6, 2
	back, err := FromWire(tab.Wire())
	if err != nil {
		t.Fatal(err)
	}
	if back.Epoch != 6 || back.Sub != 2 {
		t.Fatalf("round trip pair (%d,%d), want (6,2)", back.Epoch, back.Sub)
	}
	for i := range tab.Lanes {
		if back.Lanes[i].MaxRate != tab.Lanes[i].MaxRate {
			t.Fatalf("lane %d headroom %g → %g across the wire", i, tab.Lanes[i].MaxRate, back.Lanes[i].MaxRate)
		}
	}

	good := tab.Wire()
	clone := func() *TableWire {
		w := *good
		w.Lanes = append([]Lane(nil), good.Lanes...)
		return &w
	}
	w := clone()
	w.Lanes[0].MaxRate = math.NaN()
	if _, err := FromWire(w); err == nil {
		t.Error("NaN MaxRate accepted")
	}
	w = clone()
	w.Lanes[0].MaxRate = math.Inf(1)
	if _, err := FromWire(w); err == nil {
		t.Error("infinite MaxRate accepted")
	}
	w = clone()
	w.Lanes[0].MaxRate = 0 // legacy wire with no headroom field
	norm, err := FromWire(w)
	if err != nil {
		t.Fatal(err)
	}
	if norm.Lanes[0].MaxRate != norm.Lanes[0].Rate {
		t.Fatalf("zero headroom normalized to %g, want Rate %g", norm.Lanes[0].MaxRate, norm.Lanes[0].Rate)
	}
	w = clone()
	w.Lanes[0].MaxRate = w.Lanes[0].Rate / 2
	norm, err = FromWire(w)
	if err != nil {
		t.Fatal(err)
	}
	if norm.Lanes[0].MaxRate != norm.Lanes[0].Rate {
		t.Fatalf("undercut headroom normalized to %g, want Rate %g", norm.Lanes[0].MaxRate, norm.Lanes[0].Rate)
	}
}

// TestCompileMaxRateHeadroom: every compiled lane carries MaxRate ≥ Rate
// — the committed share plus a nonnegative slice of the center's
// unallocated slack — so the controller always has a well-formed boost
// ceiling.
func TestCompileMaxRateHeadroom(t *testing.T) {
	cfg := Config{Seed: 3, SlotSeconds: 60}
	_, _, tab := testTable(t, cfg)
	for i, ln := range tab.Lanes {
		if ln.MaxRate < ln.Rate {
			t.Errorf("lane %d MaxRate %g < Rate %g", i, ln.MaxRate, ln.Rate)
		}
		if math.IsNaN(ln.MaxRate) || math.IsInf(ln.MaxRate, 0) {
			t.Errorf("lane %d MaxRate %g not finite", i, ln.MaxRate)
		}
	}
}

// TestSubdivideMaxRateTelescopes: the per-replica headroom shares sum
// back to the fleet-wide headroom exactly, like the rates — otherwise a
// fleet of controllers could jointly boost past the plan's envelope.
func TestSubdivideMaxRateTelescopes(t *testing.T) {
	cfg := Config{Seed: 21, SlotSeconds: 60}
	_, _, tab := testTable(t, cfg)
	for _, n := range []int{2, 3, 5} {
		sums := make([]float64, len(tab.Lanes))
		for idx := 0; idx < n; idx++ {
			sub, err := tab.Subdivide(idx, n, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := range sub.Lanes {
				if sub.Lanes[i].MaxRate < sub.Lanes[i].Rate-1e-12 {
					t.Fatalf("n=%d idx=%d lane %d share headroom %g < rate %g",
						n, idx, i, sub.Lanes[i].MaxRate, sub.Lanes[i].Rate)
				}
				sums[i] += sub.Lanes[i].MaxRate
			}
		}
		for i := range sums {
			if sums[i] != tab.Lanes[i].MaxRate {
				t.Errorf("n=%d lane %d headroom shares sum to %g, want exactly %g",
					n, i, sums[i], tab.Lanes[i].MaxRate)
			}
		}
	}
}

// FuzzControlRescale throws arbitrary multiplier vectors at Rescale and
// checks the controller-facing invariants: invalid multipliers always
// error; valid ones produce a table whose lanes respect the MaxRate
// envelope, whose per-stream planned budget equals its lane-rate sum,
// whose alias tables still route every draw to a lane of the right
// stream, and whose λ shares still telescope exactly across a Subdivide.
func FuzzControlRescale(f *testing.F) {
	cfg := Config{Seed: 51, SlotSeconds: 60}
	f.Add(1.0, 1.0, 1.0, 1.0)
	f.Add(2.5, 0.3, 1.0, 4.0)
	f.Add(0.001, 1000.0, 1.0, 1.0)
	f.Add(math.NaN(), 1.0, 1.0, 1.0)
	f.Add(-1.0, math.Inf(1), 0.0, 1.0)
	f.Fuzz(func(t *testing.T, m0, m1, m2, m3 float64) {
		in := testInput(testSystem())
		plan, err := core.NewOptimized().Plan(in)
		if err != nil {
			t.Skip()
		}
		tab, err := Compile(in, plan, cfg)
		if err != nil {
			t.Skip()
		}
		seed := []float64{m0, m1, m2, m3}
		mult := make([]float64, len(tab.Lanes))
		valid := true
		for i := range mult {
			m := seed[i%len(seed)]
			mult[i] = m
			if math.IsNaN(m) || math.IsInf(m, 0) || m <= 0 {
				valid = false
			}
		}
		re, err := tab.Rescale(mult, 1, cfg)
		if !valid {
			if err == nil {
				t.Fatalf("invalid multipliers %v accepted", seed)
			}
			return
		}
		if err != nil {
			t.Fatalf("valid multipliers %v rejected: %v", seed, err)
		}
		for i, ln := range re.Lanes {
			base := tab.Lanes[i]
			if ln.MaxRate > 0 && ln.Rate > ln.MaxRate*(1+1e-12) {
				t.Fatalf("lane %d rate %g above headroom %g", i, ln.Rate, ln.MaxRate)
			}
			want := base.Rate * mult[i]
			if base.MaxRate > 0 && want > base.MaxRate {
				want = base.MaxRate
			}
			if diff := math.Abs(ln.Rate - want); diff > 1e-9*math.Max(1, want) {
				t.Fatalf("lane %d rate %g, want %g", i, ln.Rate, want)
			}
		}
		for k := 0; k < re.K(); k++ {
			for s := 0; s < re.S(); s++ {
				sum := 0.0
				for _, ln := range re.Lanes {
					if ln.K == k && ln.S == s {
						sum += ln.Rate
					}
				}
				p, _ := re.Planned(k, s)
				if math.Abs(p-sum) > 1e-9*math.Max(1, sum) {
					t.Fatalf("stream (%d,%d) planned %g but lanes sum to %g", k, s, p, sum)
				}
				if sum == 0 {
					continue
				}
				e := &re.entries[k][s]
				for seq := uint64(0); seq < 64; seq++ {
					li := e.draw(seq)
					if li < 0 || int(li) >= len(re.Lanes) {
						t.Fatalf("stream (%d,%d) drew lane %d out of range", k, s, li)
					}
					if re.Lanes[li].K != k || re.Lanes[li].S != s {
						t.Fatalf("stream (%d,%d) drew foreign lane %d (k=%d s=%d)",
							k, s, li, re.Lanes[li].K, re.Lanes[li].S)
					}
				}
			}
		}
		// λ telescoping survives a rescale: subdividing the actuated table
		// still sums shares back to it exactly.
		const n = 3
		sums := make([]float64, len(re.Lanes))
		for idx := 0; idx < n; idx++ {
			sub, err := re.Subdivide(idx, n, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := range sub.Lanes {
				sums[i] += sub.Lanes[i].Rate
			}
		}
		for i := range sums {
			if sums[i] != re.Lanes[i].Rate {
				t.Fatalf("lane %d shares sum to %g, want exactly %g after rescale", i, sums[i], re.Lanes[i].Rate)
			}
		}
	})
}

package dispatch

import (
	"fmt"
	"math"
)

// shardBurstSigmas floors a subdivided lane's burst at this many standard
// deviations of its slot budget (σ = √(λ·T) for a Poisson slice), so thin
// per-replica shares do not shed on ordinary clumping.
const shardBurstSigmas = 6

// Subdivide splits the fleet-wide table into replica idx's share of an
// n-replica fleet: every lane's planned rate λ becomes the telescoping
// share λ·(idx+1)/n − λ·idx/n, so the n shares sum to exactly λ with the
// floating-point remainder spread across replicas — no replica needs a
// global lock or a view of its peers to admit its slice of the budget.
// Token-bucket capacities are re-derived from the share with a √n slack
// factor, and floored at both cfg.MinBurst and shardBurstSigmas standard
// deviations of the share's slot budget: a replica's slice of a Poisson
// stream fluctuates with the square root of its share, not linearly, so
// a linearly-scaled burst would shed traffic the fleet-wide plan admits,
// and a thin share's burst must cover its clumping outright. The fleet's
// aggregate burst therefore exceeds the single-gateway burst, which only
// ever errs permissive. The alias
// tables are shared with the parent — routing probabilities are
// rate-ratios, which subdivision leaves unchanged — but each replica's
// draw seed is re-mixed with (idx, n) so replicas walk independent
// routing sequences. Objective, idle cost and per-stream budgets scale by
// the share fraction so per-replica accounting sums back to the plan.
func (t *Table) Subdivide(idx, n int, cfg Config) (*Table, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dispatch: subdivide into %d replicas", n)
	}
	if idx < 0 || idx >= n {
		return nil, fmt.Errorf("dispatch: replica index %d outside fleet of %d", idx, n)
	}
	cfg = cfg.WithDefaults()
	lo := float64(idx) / float64(n)
	hi := float64(idx+1) / float64(n)
	share := hi - lo
	sub := &Table{
		Epoch:     t.Epoch,
		Sub:       t.Sub,
		Slot:      t.Slot,
		SlotLen:   t.SlotLen,
		Seed:      t.Seed,
		Objective: t.Objective * share,
		IdleCost:  t.IdleCost * share,
		ServersOn: append([]int(nil), t.ServersOn...),
		Degraded:  t.Degraded,
		Tier:      t.Tier,
		k:         t.k,
		s:         t.s,
	}
	slack := math.Sqrt(float64(n))
	sub.Lanes = make([]Lane, len(t.Lanes))
	for i, ln := range t.Lanes {
		ln.Rate = t.Lanes[i].Rate*hi - t.Lanes[i].Rate*lo
		// MaxRate telescopes exactly like Rate, so the per-replica headroom
		// shares sum back to the fleet-wide headroom.
		ln.MaxRate = t.Lanes[i].MaxRate*hi - t.Lanes[i].MaxRate*lo
		budget := ln.Rate * t.SlotLen
		ln.Burst = math.Max(cfg.MinBurst,
			math.Max(cfg.Burst*budget*slack, shardBurstSigmas*math.Sqrt(budget)))
		sub.Lanes[i] = ln
	}
	sub.entries = make([][]entry, t.k)
	for k := range t.entries {
		sub.entries[k] = make([]entry, t.s)
		for s := range t.entries[k] {
			e := t.entries[k][s] // alias slices shared: immutable after compile
			e.planned = e.planned*hi - e.planned*lo
			e.arrival *= share
			e.seed = splitmix64(e.seed ^ (uint64(idx)+1)*0x9e3779b97f4a7c15 ^ uint64(n)<<32)
			sub.entries[k][s] = e
		}
	}
	return sub, nil
}

// Scale returns a copy of the table with every lane's admission rate (and
// bucket capacity) multiplied by factor, routing distribution unchanged.
// It is the conservative-shed transform a replica applies when its plan
// goes stale past the cluster TTL: the last good epoch keeps serving, at
// a fraction of its budget. The result is marked Degraded with the given
// tier name.
func (t *Table) Scale(factor float64, tier string, cfg Config) *Table {
	if factor < 0 {
		factor = 0
	}
	cfg = cfg.WithDefaults()
	out := *t
	out.Degraded = true
	out.Tier = tier
	out.Objective = t.Objective * factor
	out.ServersOn = append([]int(nil), t.ServersOn...)
	out.Lanes = make([]Lane, len(t.Lanes))
	for i, ln := range t.Lanes {
		ln.Rate *= factor
		ln.MaxRate *= factor
		ln.Burst = math.Max(cfg.MinBurst, cfg.Burst*ln.Rate*t.SlotLen)
		out.Lanes[i] = ln
	}
	out.entries = make([][]entry, t.k)
	for k := range t.entries {
		out.entries[k] = make([]entry, t.s)
		for s := range t.entries[k] {
			e := t.entries[k][s]
			e.planned *= factor
			out.entries[k][s] = e
		}
	}
	return &out
}

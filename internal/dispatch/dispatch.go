// Package dispatch is the online serving plane: it executes a committed
// core.Plan at per-request granularity. The paper's optimizer emits a
// per-slot dispatch matrix λ_{k,s,i,l} and CPU shares φ; everything else
// in this repo *evaluates* those plans in a slot-granular simulator.
// This package makes the plan answer for individual arrivals:
//
//   - Compile turns a committed plan into a per-(type, front-end) routing
//     table: Walker alias tables for O(1) weighted sampling over the
//     plan's (level, center) lanes, deterministic under a seed.
//   - Every lane carries a token bucket (rate λ, configurable burst) that
//     enforces the plan's arrival budget request by request: a request is
//     routed by the alias draw and then admitted or shed against its
//     lane's bucket.
//   - Gateway holds the current compiled table behind an atomic pointer
//     and hot-swaps it at slot boundaries; the request path never locks
//     anything but its own lane's bucket and allocates nothing.
//   - Driver runs the background planner loop: each slot it pulls the
//     planner-facing input from a PlanSource (the simulator's fault- and
//     feed-aware InputSource in production use), asks the planner — a raw
//     core planner or a resilient fallback chain — for the slot's plan,
//     verifies it, compiles it and swaps it in. A slot whose plan cannot
//     be produced degrades to an all-shed table instead of erroring.
//
// The package is exercised by internal/loadgen (closed/open-loop replay in
// virtual time) and by the `profitlb serve` HTTP front-end.
package dispatch

import (
	"fmt"

	"profitlb/internal/datacenter"
)

// Defaults for Config fields left zero.
const (
	// DefaultBurst is the token-bucket capacity as a fraction of the
	// lane's slot budget λT.
	DefaultBurst = 0.05
	// DefaultMinBurst floors every lane's bucket capacity, in requests,
	// so thin lanes survive ordinary Poisson clumping.
	DefaultMinBurst = 8.0
	// DefaultSlotSeconds is the wall-clock length `profitlb serve` gives
	// one plan slot when the scenario does not say otherwise.
	DefaultSlotSeconds = 60.0
	// DefaultDrainSeconds bounds the graceful-drain wait on shutdown.
	DefaultDrainSeconds = 10.0
)

// Config tunes the serving plane. It is the `dispatch` block of a
// scenario JSON file; zero values mean the defaults above, except
// SlotSeconds, which must be set explicitly when the block is present
// (a gateway cannot run slots of no length).
type Config struct {
	// Burst sets every lane's token-bucket capacity as a fraction of the
	// lane's slot budget λ·T (0 means DefaultBurst). The capacity is
	// floored at MinBurst requests.
	Burst float64 `json:"burst,omitempty"`
	// MinBurst floors the bucket capacity in requests (0 means
	// DefaultMinBurst).
	MinBurst float64 `json:"minBurst,omitempty"`
	// SlotSeconds is the wall-clock duration `profitlb serve` maps onto
	// one plan slot (the system's Slot() T virtual time units). Required
	// when the config arrives via a scenario's dispatch block.
	SlotSeconds float64 `json:"slotSeconds,omitempty"`
	// Seed drives the alias draws; the same plan and seed reproduce the
	// identical routing-decision sequence per (type, front-end) stream.
	Seed uint64 `json:"seed,omitempty"`
	// FrontEnds optionally restricts which front-ends the HTTP gateway
	// exposes, by system front-end name. Empty exposes all of them.
	FrontEnds []string `json:"frontEnds,omitempty"`
	// DrainSeconds bounds the graceful drain on shutdown (0 means
	// DefaultDrainSeconds).
	DrainSeconds float64 `json:"drainSeconds,omitempty"`
}

// WithDefaults returns the config with zero fields replaced by defaults.
func (c Config) WithDefaults() Config {
	if c.Burst == 0 {
		c.Burst = DefaultBurst
	}
	if c.MinBurst == 0 {
		c.MinBurst = DefaultMinBurst
	}
	if c.SlotSeconds == 0 {
		c.SlotSeconds = DefaultSlotSeconds
	}
	if c.DrainSeconds == 0 {
		c.DrainSeconds = DefaultDrainSeconds
	}
	return c
}

// Validate checks the config against the system it will serve. It is the
// gate behind the scenario `dispatch` JSON block, so it rejects what a
// hand-written file can get wrong: negative burst or floor, a zero or
// negative slot length, a negative drain bound, and front-end names the
// topology does not declare.
func (c *Config) Validate(sys *datacenter.System) error {
	if c == nil {
		return nil
	}
	if c.Burst < 0 {
		return fmt.Errorf("dispatch: negative burst %g", c.Burst)
	}
	if c.MinBurst < 0 {
		return fmt.Errorf("dispatch: negative minBurst %g", c.MinBurst)
	}
	if c.SlotSeconds <= 0 {
		return fmt.Errorf("dispatch: slot length %g seconds; a slot must have positive length", c.SlotSeconds)
	}
	if c.DrainSeconds < 0 {
		return fmt.Errorf("dispatch: negative drainSeconds %g", c.DrainSeconds)
	}
	seen := map[string]bool{}
	for _, name := range c.FrontEnds {
		if seen[name] {
			return fmt.Errorf("dispatch: front-end %q listed twice", name)
		}
		seen[name] = true
		found := false
		if sys != nil {
			for i := range sys.FrontEnds {
				if sys.FrontEnds[i].Name == name {
					found = true
					break
				}
			}
		}
		if !found {
			return fmt.Errorf("dispatch: unknown front-end %q", name)
		}
	}
	return nil
}

// splitmix64 is the SplitMix64 mixer: a full-period bijection on uint64
// used to derive per-request random draws from (seed, stream, sequence)
// without any allocation or shared state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// streamSeed mixes the table seed, slot and (k, s) stream identity into
// the base of the stream's per-request draw sequence.
func streamSeed(seed uint64, slot, k, s int) uint64 {
	x := splitmix64(seed ^ 0x6a09e667f3bcc908)
	x = splitmix64(x ^ uint64(int64(slot)))
	x = splitmix64(x ^ uint64(k)<<32 ^ uint64(s))
	return x
}

package dispatch

import (
	"fmt"
	"math"

	"profitlb/internal/core"
	"profitlb/internal/datacenter"
)

// rateEps is the rate below which a commodity's dispatch entry is treated
// as LP noise and excluded from the routing table.
const rateEps = 1e-9

// Lane is one (type, level, front-end, center) dispatch stream of the
// compiled plan, with the per-request economics frozen at compile time so
// the hot path and the load-test accounting never re-derive them.
type Lane struct {
	K, Q, S, L int
	// Rate is the plan's dispatch rate λ_{k,q,s,l}, requests per unit
	// virtual time.
	Rate float64
	// MaxRate is the lane's capacity headroom: the largest admission rate
	// the committed plan's shares (plus the center's unallocated share
	// slack, spread over the commodity's lanes in proportion to rate) can
	// sustain without violating the level deadline. A sub-slot controller
	// may boost the lane up to MaxRate and no further; MaxRate ≥ Rate
	// always, and 0 means "no headroom known" (treated as Rate).
	MaxRate float64
	// Burst is the lane's token-bucket capacity in requests.
	Burst float64
	// Delay is the commodity's expected M/M/1 delay under the plan, in
	// virtual time units (the closed-loop load generator's response time).
	Delay float64
	// Utility is the per-request revenue at the plan's expected delay for
	// the commodity (the TUF evaluated exactly as the simulator does).
	Utility float64
	// UnitEnergy and UnitTransfer are the per-request dollar costs at the
	// slot's electricity price and the (front-end, center) distance.
	UnitEnergy   float64
	UnitTransfer float64
}

// entry is the per-(k, s) routing state: a Walker alias table over the
// stream's lanes plus the stream's plan budgets.
type entry struct {
	lanes []int32   // lane index per alias cell
	prob  []float64 // alias acceptance probability per cell
	alias []int32   // alias cell redirect
	// planned is the stream's total planned dispatch rate Σ_q,l λ.
	planned float64
	// arrival is the arrival rate the planner budgeted for the stream.
	arrival float64
	// seed is the base of the stream's per-request draw sequence.
	seed uint64
}

// Table is a compiled routing table for one slot: the immutable part of
// the gateway's hot state. Mutable run state (token buckets, draw
// counters, tallies) lives in the gateway's compiled wrapper so a Table
// can be inspected, serialized or re-installed freely.
type Table struct {
	// Epoch is the monotonically increasing plan version stamped by the
	// minting Driver (or cluster publisher). Zero means unversioned — a
	// table compiled outside any epoch-fenced distribution path.
	Epoch uint64
	// Sub is the sub-epoch sequence within the epoch: 0 for the slot's
	// committed plan, ticking up for every in-slot controller correction
	// published against it. Installs are fenced on the lexicographic pair
	// (Epoch, Sub).
	Sub uint64
	// Slot is the absolute slot the plan was committed for.
	Slot int
	// SlotLen is the slot length T in virtual time units (sys.Slot()).
	SlotLen float64
	// Seed is the routing seed the table was compiled under.
	Seed uint64
	// Objective is the committed plan's predicted net profit.
	Objective float64
	// ServersOn mirrors the plan's powered-on counts.
	ServersOn []int
	// IdleCost is the slot's idle-draw dollar cost of the powered-on
	// servers (zero under the paper's purely per-request energy model).
	IdleCost float64
	// Degraded and Tier record how the plan was obtained: Tier is the
	// resilient fallback tier name when one fired, or "" for a primary
	// plan; an all-shed emergency table sets Degraded with Tier "shed".
	Degraded bool
	Tier     string
	// Lanes lists every dispatch stream with positive planned rate.
	Lanes []Lane

	entries [][]entry // [k][s]
	k, s    int
}

// K and S report the table's type and front-end dimensions.
func (t *Table) K() int { return t.k }

// S reports the table's front-end dimension.
func (t *Table) S() int { return t.s }

// Planned returns the plan's total dispatch rate for stream (k, s), and
// the arrival rate the planner budgeted for it.
func (t *Table) Planned(k, s int) (planned, arrival float64) {
	e := &t.entries[k][s]
	return e.planned, e.arrival
}

// ShedTable builds the emergency table for a slot with no usable plan:
// every stream exists with zero lanes, so each request is shed as
// unplanned and the gateway stays up.
func ShedTable(sys *datacenter.System, slot int, cfg Config) *Table {
	t := &Table{
		Slot:      slot,
		SlotLen:   sys.Slot(),
		Seed:      cfg.Seed,
		ServersOn: make([]int, sys.L()),
		Degraded:  true,
		Tier:      "shed",
		k:         sys.K(),
		s:         sys.S(),
	}
	t.entries = make([][]entry, t.k)
	for k := 0; k < t.k; k++ {
		t.entries[k] = make([]entry, t.s)
		for s := 0; s < t.s; s++ {
			t.entries[k][s] = entry{seed: streamSeed(cfg.Seed, slot, k, s)}
		}
	}
	return t
}

// Compile freezes a committed plan into a routing table: one alias table
// per (type, front-end) stream over the plan's positive (level, center)
// lanes, per-lane token-bucket capacities, and the per-request economics
// at the slot's prices. The input must be the one the plan was committed
// against (it supplies the topology, budgets and prices). Compile does
// not re-verify feasibility — the Driver gates plans through core.Verify
// before compiling.
func Compile(in *core.Input, plan *core.Plan, cfg Config) (*Table, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("dispatch: %w", err)
	}
	cfg = cfg.WithDefaults()
	sys := in.Sys
	K, S, L := sys.K(), sys.S(), sys.L()
	if len(plan.Rate) != K || len(plan.ServersOn) != L {
		return nil, fmt.Errorf("dispatch: plan shaped %d types × %d centers, system has %d × %d",
			len(plan.Rate), len(plan.ServersOn), K, L)
	}
	T := sys.Slot()
	t := &Table{
		Slot:      in.Slot,
		SlotLen:   T,
		Seed:      cfg.Seed,
		Objective: plan.Objective,
		ServersOn: append([]int(nil), plan.ServersOn...),
		k:         K,
		s:         S,
	}
	for l := 0; l < L; l++ {
		t.IdleCost += sys.IdleCost(l, in.Prices[l]) * float64(plan.ServersOn[l])
	}
	// Per-center committed share totals: whatever the plan left unallocated
	// is slack a sub-slot controller may draw on. Spreading the slack over
	// a center's commodities in proportion to their committed shares keeps
	// the boosted shares summing to exactly 1, so every lane serving at its
	// MaxRate simultaneously still meets the capacity and deadline
	// constraints core.Verify enforces.
	sumPhi := make([]float64, L)
	for l := 0; l < L; l++ {
		for k := range plan.Rate {
			for q := range plan.Phi[l][k] {
				sumPhi[l] += plan.Phi[l][k][q]
			}
		}
	}
	// headroom returns MaxRate/Rate for commodity (k, q, l): the factor by
	// which the commodity's aggregate rate can grow — under its share plus
	// its proportional cut of the center's slack — before the M/M/1 delay
	// hits the level deadline. Never below 1.
	headroom := func(k, q, l int, deadline float64) float64 {
		lam := plan.CenterRate(k, q, l)
		n := float64(plan.ServersOn[l])
		if lam <= rateEps || n == 0 || deadline <= 0 {
			return 1
		}
		phi := plan.Phi[l][k][q]
		boosted := phi
		if slack := 1 - sumPhi[l]; slack > 0 && sumPhi[l] > 0 {
			boosted += slack * phi / sumPhi[l]
		}
		dc := &sys.Centers[l]
		lamMax := n * (boosted*dc.Capacity*dc.ServiceRate[k] - 1/deadline)
		if math.IsNaN(lamMax) || lamMax <= lam {
			return 1
		}
		return lamMax / lam
	}
	t.entries = make([][]entry, K)
	for k := 0; k < K; k++ {
		t.entries[k] = make([]entry, S)
		cls := sys.Classes[k].TUF
		levels := cls.Levels()
		if len(plan.Rate[k]) != len(levels) {
			return nil, fmt.Errorf("dispatch: type %d plan has %d levels, TUF has %d", k, len(plan.Rate[k]), len(levels))
		}
		for s := 0; s < S; s++ {
			e := entry{
				arrival: in.Arrivals[s][k],
				seed:    streamSeed(cfg.Seed, in.Slot, k, s),
			}
			var weights []float64
			for q := range plan.Rate[k] {
				if len(plan.Rate[k][q]) != S {
					return nil, fmt.Errorf("dispatch: type %d level %d plan has %d front-ends, system has %d",
						k, q, len(plan.Rate[k][q]), S)
				}
				if len(plan.Rate[k][q][s]) != L {
					return nil, fmt.Errorf("dispatch: type %d level %d front-end %d plan has %d centers, system has %d",
						k, q, s, len(plan.Rate[k][q][s]), L)
				}
				for l, rate := range plan.Rate[k][q][s] {
					if rate <= rateEps {
						continue
					}
					if math.IsNaN(rate) || math.IsInf(rate, 0) {
						return nil, fmt.Errorf("dispatch: invalid rate %g at k=%d q=%d s=%d l=%d", rate, k, q, s, l)
					}
					// The achieved delay (and so the per-request utility)
					// is the simulator's: the commodity's expected M/M/1
					// delay under the plan, snapped onto the level
					// deadline when the LP meets it with equality.
					d := plan.Delay(sys, k, q, l)
					if dq := levels[q].Deadline; d > dq && d <= dq*(1+1e-9) {
						d = dq
					}
					lane := Lane{
						K: k, Q: q, S: s, L: l,
						Rate:         rate,
						MaxRate:      rate * headroom(k, q, l, levels[q].Deadline),
						Burst:        math.Max(cfg.MinBurst, cfg.Burst*rate*T),
						Delay:        d,
						Utility:      cls.Utility(d),
						UnitEnergy:   sys.EnergyCost(k, l, in.Prices[l]),
						UnitTransfer: sys.TransferCost(k, s, l),
					}
					e.lanes = append(e.lanes, int32(len(t.Lanes)))
					weights = append(weights, rate)
					t.Lanes = append(t.Lanes, lane)
					e.planned += rate
				}
			}
			e.prob, e.alias = buildAlias(weights)
			t.entries[k][s] = e
		}
	}
	return t, nil
}

// Rescale returns a copy of the table with every lane i's admission rate
// set to mult[i]·Rate, capped at the lane's MaxRate headroom (when known)
// so a boosted table can never violate the committed plan's capacity or
// deadline envelope. Alias tables are rebuilt from the scaled weights and
// bucket capacities re-derived from the scaled rates; the frozen per-lane
// economics (Delay, Utility, unit costs) and MaxRate itself are carried
// unchanged, as are every stream's arrival budget and draw seed — an
// all-ones mult reproduces the base routing bit for bit. The result keeps
// the base Epoch and carries sub as its sub-epoch sequence. Rescale is
// meant for fleet-level (undivided) tables: bucket sizing uses the plain
// Burst·λ·T rule, not Subdivide's √n slack discipline.
func (t *Table) Rescale(mult []float64, sub uint64, cfg Config) (*Table, error) {
	if len(mult) != len(t.Lanes) {
		return nil, fmt.Errorf("dispatch: rescale got %d multipliers for %d lanes", len(mult), len(t.Lanes))
	}
	cfg = cfg.WithDefaults()
	out := *t
	out.Sub = sub
	out.Lanes = make([]Lane, len(t.Lanes))
	for i, ln := range t.Lanes {
		m := mult[i]
		if math.IsNaN(m) || math.IsInf(m, 0) || m <= 0 {
			return nil, fmt.Errorf("dispatch: rescale multiplier %g for lane %d", m, i)
		}
		r := ln.Rate * m
		if ln.MaxRate > 0 && r > ln.MaxRate {
			r = ln.MaxRate
		}
		ln.Rate = r
		ln.Burst = math.Max(cfg.MinBurst, cfg.Burst*r*t.SlotLen)
		out.Lanes[i] = ln
	}
	out.entries = make([][]entry, t.k)
	for k := range t.entries {
		out.entries[k] = make([]entry, t.s)
		for s := range t.entries[k] {
			e := t.entries[k][s]
			weights := make([]float64, len(e.lanes))
			planned := 0.0
			for j, li := range e.lanes {
				w := out.Lanes[li].Rate
				weights[j] = w
				planned += w
			}
			e.prob, e.alias = buildAlias(weights)
			e.planned = planned
			out.entries[k][s] = e
		}
	}
	return &out, nil
}

// buildAlias constructs a Walker alias table (Vose's algorithm) over the
// weights. Sampling cell i accepts i with probability prob[i] and
// otherwise redirects to alias[i]; the stationary distribution is
// weights/Σweights. The construction is deterministic: worklists are
// filled in ascending index order.
func buildAlias(weights []float64) (prob []float64, alias []int32) {
	n := len(weights)
	if n == 0 {
		return nil, nil
	}
	prob = make([]float64, n)
	alias = make([]int32, n)
	var sum float64
	for _, w := range weights {
		sum += w
	}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		prob[s] = scaled[s]
		alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Numerical leftovers: whatever remains has weight 1 up to rounding.
	for _, i := range large {
		prob[i] = 1
	}
	for _, i := range small {
		prob[i] = 1
	}
	return prob, alias
}

// draw samples a lane index for the stream's seq-th request. It returns
// -1 when the stream has no lanes. Allocation-free.
func (e *entry) draw(seq uint64) int32 {
	n := uint64(len(e.lanes))
	if n == 0 {
		return -1
	}
	u := splitmix64(e.seed + seq*0x9e3779b97f4a7c15)
	cell := (u >> 32) * n >> 32
	frac := float64(u&0xffffffff) / (1 << 32)
	if frac < e.prob[cell] {
		return e.lanes[cell]
	}
	return e.lanes[e.alias[cell]]
}

package dispatch

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"profitlb/internal/core"
)

// benchGateway compiles the fixture plan and installs it.
func benchGateway(b testing.TB) *Gateway {
	in := testInput(testSystem())
	plan, err := core.NewOptimized().Plan(in)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Seed: 1, SlotSeconds: 60}
	tab, err := Compile(in, plan, cfg)
	if err != nil {
		b.Fatal(err)
	}
	gw := NewGateway(in.Sys, cfg, nil)
	gw.Install(tab, 0, 0)
	return gw
}

// BenchmarkDispatchHotPath times Gateway.Handle — the per-request path —
// on the fixture plan. The target is 0 allocs/op: the alias draw, the
// bucket take and the Decision are all value operations.
func BenchmarkDispatchHotPath(b *testing.B) {
	gw := benchGateway(b)
	T := gw.Table().SlotLen
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := T * float64(i%1000) / 1000
		gw.Handle(i&1, (i>>1)&1, now)
	}
}

// BenchmarkDispatchHotPathParallel exercises the same path from all
// procs: the only contention is the drawn lane's bucket mutex.
func BenchmarkDispatchHotPathParallel(b *testing.B) {
	gw := benchGateway(b)
	T := gw.Table().SlotLen
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			now := T * float64(i%1000) / 1000
			gw.Handle(i&1, (i>>1)&1, now)
			i++
		}
	})
}

// BenchmarkCompile times the slot-boundary cost: freezing a committed
// plan into a routing table.
func BenchmarkCompile(b *testing.B) {
	in := testInput(testSystem())
	plan, err := core.NewOptimized().Plan(in)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Seed: 1, SlotSeconds: 60}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(in, plan, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDispatchHotPathTrajectory measures the request path — ns/op and
// allocs/op — and writes the point to the file named by
// BENCH_DISPATCH_JSON (skipped when unset; `make bench` sets it). It
// also enforces the subsystem's headline property: the hot path must not
// allocate.
func TestDispatchHotPathTrajectory(t *testing.T) {
	out := os.Getenv("BENCH_DISPATCH_JSON")
	if out == "" {
		t.Skip("set BENCH_DISPATCH_JSON=FILE to record the benchmark trajectory")
	}
	gw := benchGateway(t)
	T := gw.Table().SlotLen
	var i int
	allocs := testing.AllocsPerRun(10000, func() {
		now := T * float64(i%1000) / 1000
		gw.Handle(i&1, (i>>1)&1, now)
		i++
	})
	if allocs != 0 {
		t.Errorf("hot path allocates %.1f allocs/op, want 0", allocs)
	}
	const n = 2_000_000
	best := time.Duration(1 << 62)
	for round := 0; round < 3; round++ {
		start := time.Now()
		for j := 0; j < n; j++ {
			now := T * float64(j%1000) / 1000
			gw.Handle(j&1, (j>>1)&1, now)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	nsPerOp := float64(best.Nanoseconds()) / n
	updateBenchJSON(t, out, "dispatch_hot_path", map[string]any{
		"bench":     "dispatch-hot-path",
		"scenario":  "2x2x2 optimized plan",
		"workers":   runtime.NumCPU(),
		"ns_per_op": nsPerOp,
		"allocs_op": allocs,
		"lanes":     len(gw.Table().Lanes),
	})
}

// updateBenchJSON read-modify-writes one top-level section of the
// benchmark trajectory file, so the dispatch and control trajectory
// tests can share BENCH_dispatch.json without clobbering each other. A
// missing or legacy single-object file starts the document fresh.
func updateBenchJSON(t *testing.T, path, key string, section any) {
	t.Helper()
	doc := map[string]json.RawMessage{}
	if blob, err := os.ReadFile(path); err == nil {
		var probe map[string]json.RawMessage
		if json.Unmarshal(blob, &probe) == nil {
			if _, legacy := probe["bench"]; !legacy {
				doc = probe
			}
		}
	}
	raw, err := json.Marshal(section)
	if err != nil {
		t.Fatal(err)
	}
	doc[key] = raw
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("%s section of %s: %s", key, path, raw)
}

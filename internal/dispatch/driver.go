package dispatch

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"profitlb/internal/core"
)

// PlanSource yields the planner-facing input for an absolute slot. The
// production implementation is the simulator's InputSource, which folds
// in fault observation and the telemetry feed layer; it is stateful and
// must be asked for slots in order. *sim.InputSource satisfies this
// interface structurally (no import needed).
type PlanSource interface {
	PlannerInput(abs int) (*core.Input, error)
}

// Driver is the gateway's slot engine: each BeginSlot it pulls the
// slot's planner input from the source, asks the planner for a plan,
// verifies it, compiles the routing table and hot-swaps it into the
// gateway. Any failure along the way degrades to an all-shed table — a
// serving plane must keep answering requests even when planning is on
// fire — and the failure is recorded on the table, never returned as an
// error. Like every stateful planner holder in this codebase, a Driver
// is driven by exactly one goroutine (the serve loop or the load
// generator); the Gateway it feeds is the concurrency boundary.
type Driver struct {
	Gateway *Gateway
	Planner core.Planner
	Source  PlanSource
	// VerifyTol gates compiled plans through core.Verify (0 means 1e-6).
	VerifyTol float64

	// LastErr records why the most recent slot degraded (nil otherwise).
	LastErr error

	// epoch numbers every table the driver mints, monotonically: the
	// driver is the fleet's single source of planning truth, and each
	// plan it commits — primary, fallback or emergency shed — gets the
	// next epoch. Replicas fence on it. Atomic because the cluster
	// publisher mints re-spread epochs from HTTP handler goroutines
	// while the slot loop plans.
	epoch atomic.Uint64
}

// Epoch returns the last epoch minted (0 before the first slot).
func (d *Driver) Epoch() uint64 { return d.epoch.Load() }

// NextEpoch mints the next plan epoch. The cluster publisher also draws
// from this sequence when a membership change forces a re-spread of the
// current plan without a new solve.
func (d *Driver) NextEpoch() uint64 { return d.epoch.Add(1) }

// tol returns the feasibility-gate tolerance.
func (d *Driver) tol() float64 {
	if d.VerifyTol > 0 {
		return d.VerifyTol
	}
	return 1e-6
}

// BeginSlot plans, compiles and installs slot abs, with the swap taking
// effect at virtual time now. It returns the installed table; the only
// errors are wiring mistakes (missing gateway/planner/source). A slot
// whose input, plan or compile fails installs ShedTable and parks the
// cause in LastErr — the gateway sheds instead of erroring.
func (d *Driver) BeginSlot(abs int, now float64) (*Table, error) {
	start := time.Now()
	t, err := d.PlanTable(abs)
	if err != nil {
		return nil, err
	}
	d.Gateway.Install(t, now, time.Since(start))
	return t, nil
}

// PlanTable plans and compiles slot abs without installing it — the
// cluster publisher path, where the control plane mints tables for a
// fleet of replicas instead of a local gateway. The returned table is
// epoch-stamped; failures degrade to an all-shed table with the cause in
// LastErr, exactly as BeginSlot does. The only error is a wiring mistake.
func (d *Driver) PlanTable(abs int) (*Table, error) {
	if d.Gateway == nil || d.Planner == nil || d.Source == nil {
		return nil, errors.New("dispatch: driver needs a gateway, a planner and a plan source")
	}
	t, err := d.buildTable(abs)
	d.LastErr = err
	if err != nil {
		t = ShedTable(d.Gateway.sys, abs, d.Gateway.cfg)
	}
	t.Epoch = d.NextEpoch()
	if scope := d.Gateway.Scope(); scope.Enabled() {
		scope.Counter("dispatch_slots_total").Inc()
		if t.Degraded {
			scope.Counter("dispatch_slots_degraded_total").Inc()
		}
	}
	return t, nil
}

// buildTable produces the slot's routing table from a fresh plan.
func (d *Driver) buildTable(abs int) (*Table, error) {
	in, err := d.Source.PlannerInput(abs)
	if err != nil {
		return nil, fmt.Errorf("dispatch: slot %d input: %w", abs, err)
	}
	plan, err := d.safePlan(in)
	if err != nil {
		return nil, fmt.Errorf("dispatch: slot %d plan: %w", abs, err)
	}
	if err := core.Verify(in, plan, d.tol()); err != nil {
		return nil, fmt.Errorf("dispatch: slot %d infeasible plan from %s: %w", abs, d.Planner.Name(), err)
	}
	t, err := Compile(in, plan, d.Gateway.cfg)
	if err != nil {
		return nil, fmt.Errorf("dispatch: slot %d compile: %w", abs, err)
	}
	if fr, ok := d.Planner.(interface {
		FallbackState() (tier int, tierName string, degraded bool)
	}); ok {
		if tier, name, degraded := fr.FallbackState(); degraded {
			t.Degraded = true
			t.Tier = name
			_ = tier
		}
	}
	return t, nil
}

// safePlan invokes the planner, recovering a panic into an error so a
// crashing solver degrades the slot instead of killing the gateway.
func (d *Driver) safePlan(in *core.Input) (plan *core.Plan, err error) {
	defer func() {
		if r := recover(); r != nil {
			plan, err = nil, fmt.Errorf("planner %s panicked: %v", d.Planner.Name(), r)
		}
	}()
	return d.Planner.Plan(in)
}

// Package linalg provides the small dense vector and matrix helpers used by
// the optimization solvers. It is deliberately minimal: the simplex and
// projected-gradient solvers need little more than row operations, dot
// products and norms, and keeping the dependency surface tiny makes the
// solvers easy to audit.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape is returned when operands have incompatible dimensions.
var ErrShape = errors.New("linalg: incompatible shapes")

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Dot returns the inner product of v and w.
// It panics if the lengths differ; solver code always pairs equal lengths.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// AddScaled adds alpha*w to v in place.
func (v Vector) AddScaled(alpha float64, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: AddScaled length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
}

// Scale multiplies every element of v by alpha in place.
func (v Vector) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute element of v (0 for an empty vector).
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of the elements of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	data       []float64
}

// NewMatrix returns a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixIn returns a zero Rows×Cols matrix backed by buf when buf has
// sufficient capacity, growing it otherwise, along with the (possibly
// reallocated) buffer for the caller to retain. Solvers use it to reuse
// one tableau arena across solves instead of reallocating per solve.
func NewMatrixIn(rows, cols int, buf []float64) (*Matrix, []float64) {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	n := rows * cols
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return &Matrix{Rows: rows, Cols: cols, data: buf}, buf
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.Cols+j] = v }

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) Vector { return Vector(m.data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.data, m.data)
	return c
}

// MulVec computes m*v.
func (m *Matrix) MulVec(v Vector) (Vector, error) {
	if len(v) != m.Cols {
		return nil, fmt.Errorf("%w: MulVec %dx%d by %d", ErrShape, m.Rows, m.Cols, len(v))
	}
	out := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Row(i).Dot(v)
	}
	return out, nil
}

// SwapRows exchanges rows i and j in place.
func (m *Matrix) SwapRows(i, j int) {
	if i == j {
		return
	}
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// ScaleRow multiplies row i by alpha in place.
func (m *Matrix) ScaleRow(i int, alpha float64) { m.Row(i).Scale(alpha) }

// AddScaledRow adds alpha*row(src) to row(dst) in place.
func (m *Matrix) AddScaledRow(dst int, alpha float64, src int) {
	m.Row(dst).AddScaled(alpha, m.Row(src))
}

// ApproxEqual reports whether a and b are element-wise within tol.
func ApproxEqual(a, b Vector, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

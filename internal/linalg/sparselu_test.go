package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// sparseCol is a test-side basis column.
type sparseCol struct {
	ind []int
	val []float64
}

// mulCols computes B·x for the basis given as columns (position-indexed x,
// original-row-indexed result).
func mulCols(n int, cols []sparseCol, x []float64) []float64 {
	out := make([]float64, n)
	for k, c := range cols {
		for i, r := range c.ind {
			out[r] += c.val[i] * x[k]
		}
	}
	return out
}

// colDot computes one entry of Bᵀ·y.
func colDot(c sparseCol, y []float64) float64 {
	var s float64
	for i, r := range c.ind {
		s += c.val[i] * y[r]
	}
	return s
}

func maxAbs(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// checkFactors verifies Solve and SolveT against the column set by
// residual: B·Solve(b) ≈ b and Bᵀ·SolveT(c) ≈ c.
func checkFactors(t *testing.T, n int, cols []sparseCol, solve func(b, out []float64), solveT func(c, out []float64)) {
	t.Helper()
	scale := 1.0
	for _, c := range cols {
		if a := maxAbs(c.val); a > scale {
			scale = a
		}
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64((i*7)%5) - 2
	}
	x := make([]float64, n)
	solve(b, x)
	got := mulCols(n, cols, x)
	tol := 1e-6 * scale * (1 + maxAbs(x))
	for i := range b {
		if math.Abs(got[i]-b[i]) > tol {
			t.Fatalf("FTRAN residual row %d: got %g want %g (tol %g)", i, got[i], b[i], tol)
		}
	}
	c := make([]float64, n)
	for i := range c {
		c[i] = float64((i*3)%7) - 3
	}
	y := make([]float64, n)
	solveT(c, y)
	tolT := 1e-6 * scale * (1 + maxAbs(y))
	for k := range cols {
		if d := colDot(cols[k], y); math.Abs(d-c[k]) > tolT {
			t.Fatalf("BTRAN residual col %d: got %g want %g (tol %g)", k, d, c[k], tolT)
		}
	}
}

func factorAll(n int, cols []sparseCol, pivTol float64) *SparseLU {
	f := NewSparseLU(n, pivTol)
	for _, c := range cols {
		if !f.AddColumn(c.ind, c.val) {
			return nil
		}
	}
	return f
}

func TestSparseLURandomMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(14)
		cols := make([]sparseCol, n)
		// Diagonal plus random fill keeps the matrix nonsingular.
		for k := 0; k < n; k++ {
			cols[k].ind = append(cols[k].ind, k)
			cols[k].val = append(cols[k].val, 1+rng.Float64()*4)
			for extra := rng.Intn(4); extra > 0; extra-- {
				cols[k].ind = append(cols[k].ind, rng.Intn(n))
				cols[k].val = append(cols[k].val, rng.NormFloat64())
			}
		}
		f := factorAll(n, cols, 0)
		if f == nil {
			t.Fatalf("trial %d: nonsingular matrix rejected", trial)
		}
		if !f.Complete() {
			t.Fatalf("trial %d: factorization incomplete", trial)
		}
		checkFactors(t, n, cols, f.Solve, f.SolveT)
	}
}

func TestSparseLURejectsDependentColumns(t *testing.T) {
	// Second column is a scalar multiple of the first.
	f := NewSparseLU(3, 0)
	if !f.AddColumn([]int{0, 1}, []float64{1, 2}) {
		t.Fatal("first column rejected")
	}
	if f.AddColumn([]int{0, 1}, []float64{2, 4}) {
		t.Fatal("duplicate column accepted")
	}
	if f.Rank() != 1 {
		t.Fatalf("rank %d after rejection, want 1", f.Rank())
	}
	// An all-zero column is dependent by definition.
	if f.AddColumn([]int{2}, []float64{0}) {
		t.Fatal("zero column accepted")
	}
	// Completing with independent columns still works after rejections.
	if !f.AddColumn([]int{1}, []float64{1}) || !f.AddColumn([]int{2}, []float64{5}) {
		t.Fatal("independent completion rejected")
	}
	if !f.Complete() {
		t.Fatal("factorization incomplete")
	}
}

func TestSparseLUZeroRowSingular(t *testing.T) {
	// Row 1 is zero in every column: at most n-1 columns can be accepted.
	cols := []sparseCol{
		{ind: []int{0}, val: []float64{1}},
		{ind: []int{2}, val: []float64{1}},
		{ind: []int{0, 2}, val: []float64{3, -1}},
	}
	f := NewSparseLU(3, 0)
	accepted := 0
	for _, c := range cols {
		if f.AddColumn(c.ind, c.val) {
			accepted++
		}
	}
	if accepted != 2 || f.Complete() {
		t.Fatalf("accepted %d columns of a zero-row matrix, complete=%v", accepted, f.Complete())
	}
	if f.Pivoted(1) {
		t.Fatal("zero row reported pivoted")
	}
}

func TestSparseLUDuplicateRowEntriesAccumulate(t *testing.T) {
	// (0: 1+2, 1: 5) should behave exactly like (0: 3, 1: 5).
	a := factorAll(2, []sparseCol{
		{ind: []int{0, 1, 0}, val: []float64{1, 5, 2}},
		{ind: []int{1}, val: []float64{1}},
	}, 0)
	b := factorAll(2, []sparseCol{
		{ind: []int{0, 1}, val: []float64{3, 5}},
		{ind: []int{1}, val: []float64{1}},
	}, 0)
	if a == nil || b == nil {
		t.Fatal("factorization rejected")
	}
	rhs := []float64{7, -2}
	xa := make([]float64, 2)
	xb := make([]float64, 2)
	a.Solve(rhs, xa)
	b.Solve(rhs, xb)
	for i := range xa {
		if math.Abs(xa[i]-xb[i]) > 1e-12 {
			t.Fatalf("duplicate-entry solve differs: %v vs %v", xa, xb)
		}
	}
}

func TestEtaFileUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(10)
		cols := make([]sparseCol, n)
		for k := 0; k < n; k++ {
			cols[k].ind = append(cols[k].ind, k)
			cols[k].val = append(cols[k].val, 1+rng.Float64()*3)
			if k > 0 {
				cols[k].ind = append(cols[k].ind, rng.Intn(k))
				cols[k].val = append(cols[k].val, rng.NormFloat64())
			}
		}
		f := factorAll(n, cols, 0)
		if f == nil {
			t.Fatalf("trial %d: base factorization rejected", trial)
		}
		etas := NewEtaFile(n)
		ftran := func(b, out []float64) {
			f.Solve(b, out)
			etas.Apply(out)
		}
		btran := func(c, out []float64) {
			tmp := make([]float64, n)
			copy(tmp, c)
			etas.ApplyT(tmp)
			f.SolveT(tmp, out)
		}
		// A few random column replacements, each recorded as an eta.
		for upd := 0; upd < 4; upd++ {
			r := rng.Intn(n)
			repl := sparseCol{
				ind: []int{r, rng.Intn(n)},
				val: []float64{2 + rng.Float64(), rng.NormFloat64()},
			}
			dense := make([]float64, n)
			for i, row := range repl.ind {
				dense[row] += repl.val[i]
			}
			w := make([]float64, n)
			ftran(dense, w)
			if !etas.Append(r, w, 1e-11) {
				continue // singular replacement refused: basis unchanged
			}
			cols[r] = repl
		}
		checkFactors(t, n, cols, ftran, btran)
	}
}

func TestEtaFileRefusesSingularUpdate(t *testing.T) {
	etas := NewEtaFile(2)
	if etas.Append(0, []float64{0, 3}, 1e-11) {
		t.Fatal("singular eta accepted")
	}
	if etas.Len() != 0 {
		t.Fatalf("eta file grew on refusal: %d", etas.Len())
	}
}

// FuzzSparseFactors throws hostile basis column sets — duplicate columns,
// zero rows, near-singular bases — at the LU + eta update path. Any basis
// the factorization accepts must solve FTRAN/BTRAN to a small residual,
// both before and after a product-form column replacement.
func FuzzSparseFactors(f *testing.F) {
	f.Add(uint8(3), []byte{0, 0, 10, 1, 1, 20, 2, 2, 30})             // diagonal
	f.Add(uint8(3), []byte{0, 0, 10, 0, 0, 10, 1, 1, 5, 2, 2, 5})     // duplicate column
	f.Add(uint8(4), []byte{0, 0, 9, 1, 1, 9, 3, 3, 9, 2, 0, 4})       // zero row 2
	f.Add(uint8(2), []byte{0, 0, 1, 0, 1, 255, 1, 0, 254, 1, 1, 255}) // near-singular
	f.Add(uint8(1), []byte{0, 0, 0})                                  // 1×1 zero
	f.Fuzz(func(t *testing.T, dim uint8, data []byte) {
		n := 1 + int(dim)%12
		var cols []sparseCol
		cur := -1
		for i := 0; i+2 < len(data); i += 3 {
			c := int(data[i]) % n
			r := int(data[i+1]) % n
			v := (float64(data[i+2]) - 127) / 16
			if c != cur {
				if len(cols) >= 2*n {
					break
				}
				cols = append(cols, sparseCol{})
				cur = c
			}
			last := &cols[len(cols)-1]
			last.ind = append(last.ind, r)
			last.val = append(last.val, v)
		}
		lu := NewSparseLU(n, 1e-10)
		var accepted []sparseCol
		for _, c := range cols {
			if len(c.ind) == 0 {
				continue
			}
			if lu.AddColumn(c.ind, c.val) {
				accepted = append(accepted, c)
			}
		}
		if lu.Rank() != len(accepted) {
			t.Fatalf("rank %d but %d columns accepted", lu.Rank(), len(accepted))
		}
		if !lu.Complete() {
			return
		}
		// Residual checks are only meaningful when the accepted basis is not
		// pathologically ill-conditioned; a tiny pivot relative to the
		// largest one is the cheap proxy.
		minD, maxD := math.Inf(1), 0.0
		for k := 0; k < n; k++ {
			a := math.Abs(lu.udiag[k])
			if a < minD {
				minD = a
			}
			if a > maxD {
				maxD = a
			}
		}
		if minD < 1e-7*maxD {
			return
		}
		etas := NewEtaFile(n)
		ftran := func(b, out []float64) {
			lu.Solve(b, out)
			etas.Apply(out)
		}
		btran := func(c, out []float64) {
			tmp := make([]float64, n)
			copy(tmp, c)
			etas.ApplyT(tmp)
			lu.SolveT(tmp, out)
		}
		checkFactors(t, n, accepted, ftran, btran)
		// One product-form replacement drawn from the rejected columns (or a
		// unit column when none were rejected), then re-verify.
		repl := sparseCol{ind: []int{n - 1, 0}, val: []float64{2, 1}}
		for _, c := range cols[len(accepted):] {
			if len(c.ind) > 0 {
				repl = c
				break
			}
		}
		dense := make([]float64, n)
		for i, r := range repl.ind {
			dense[r] += repl.val[i]
		}
		w := make([]float64, n)
		ftran(dense, w)
		r := int(dim) % n
		if etas.Append(r, w, 1e-6) {
			accepted[r] = repl
			checkFactors(t, n, accepted, ftran, btran)
		}
	})
}

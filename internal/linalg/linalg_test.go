package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVectorDot(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %g, want 32", got)
	}
}

func TestVectorDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestVectorAddScaled(t *testing.T) {
	v := Vector{1, 1}
	v.AddScaled(2, Vector{3, 4})
	if v[0] != 7 || v[1] != 9 {
		t.Fatalf("AddScaled = %v", v)
	}
}

func TestVectorScaleSumNorms(t *testing.T) {
	v := Vector{3, -4}
	if v.Norm2() != 5 {
		t.Fatalf("Norm2 = %g", v.Norm2())
	}
	if v.NormInf() != 4 {
		t.Fatalf("NormInf = %g", v.NormInf())
	}
	if v.Sum() != -1 {
		t.Fatalf("Sum = %g", v.Sum())
	}
	v.Scale(2)
	if v[0] != 6 || v[1] != -8 {
		t.Fatalf("Scale = %v", v)
	}
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2}
	w := v.Clone()
	w[0] = 9
	if v[0] != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 2)
	m.Set(1, 1, 3)
	if m.At(0, 2) != 2 || m.At(1, 1) != 3 {
		t.Fatal("At/Set mismatch")
	}
	out, err := m.MulVec(Vector{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 3 || out[1] != 3 {
		t.Fatalf("MulVec = %v", out)
	}
	if _, err := m.MulVec(Vector{1}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestMatrixRowOps(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	m.SwapRows(0, 1)
	if m.At(0, 0) != 3 {
		t.Fatal("SwapRows failed")
	}
	m.SwapRows(1, 1) // no-op must be safe
	m.ScaleRow(0, 2)
	if m.At(0, 1) != 8 {
		t.Fatal("ScaleRow failed")
	}
	m.AddScaledRow(1, -1, 0)
	if m.At(1, 0) != -5 || m.At(1, 1) != -6 {
		t.Fatalf("AddScaledRow: %v %v", m.At(1, 0), m.At(1, 1))
	}
}

func TestMatrixClone(t *testing.T) {
	m := NewMatrix(1, 1)
	m.Set(0, 0, 5)
	c := m.Clone()
	c.Set(0, 0, 7)
	if m.At(0, 0) != 5 {
		t.Fatal("Clone aliases original")
	}
}

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(Vector{1, 2}, Vector{1.0000001, 2}, 1e-5) {
		t.Fatal("should be approximately equal")
	}
	if ApproxEqual(Vector{1}, Vector{1, 2}, 1) {
		t.Fatal("length mismatch must not be equal")
	}
	if ApproxEqual(Vector{1}, Vector{2}, 0.5) {
		t.Fatal("difference above tol must not be equal")
	}
}

// Property: dot product is symmetric and Cauchy-Schwarz holds.
func TestDotPropertiesQuick(t *testing.T) {
	f := func(a, b [6]float64) bool {
		// Avoid NaN/Inf noise from quick's extreme values.
		v, w := make(Vector, 6), make(Vector, 6)
		for i := range a {
			v[i] = math.Mod(a[i], 1e6)
			w[i] = math.Mod(b[i], 1e6)
			if math.IsNaN(v[i]) {
				v[i] = 0
			}
			if math.IsNaN(w[i]) {
				w[i] = 0
			}
		}
		d1, d2 := v.Dot(w), w.Dot(v)
		if d1 != d2 {
			return false
		}
		return math.Abs(d1) <= v.Norm2()*w.Norm2()*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

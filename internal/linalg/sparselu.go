package linalg

import "math"

// SparseLU is a sparse LU factorization of an n×n basis matrix assembled
// column by column (Gilbert–Peierls left-looking elimination with partial
// pivoting). The revised simplex solver feeds it basis columns in basis
// order; each AddColumn performs a sparse triangular solve against the L
// columns accepted so far (pattern by DFS reachability, numerics by
// scatter/gather), picks the largest-magnitude unpivoted row as the pivot,
// and either accepts the column or reports it linearly dependent. Once all
// n columns are accepted, Solve (FTRAN) and SolveT (BTRAN) answer
// B·x = b and Bᵀ·y = c in time proportional to the factor fill.
//
// Storage: L is unit lower triangular with the unit diagonal implicit and
// entries indexed by original row; U columns are indexed by pivot position
// (strictly above the diagonal), with the pivots kept separately in udiag.
// p[k] is the original row pivotal at position k and pinv is its inverse
// (-1 while unpivoted).
type SparseLU struct {
	n      int
	pivTol float64

	lind  [][]int
	lval  [][]float64
	uind  [][]int
	uval  [][]float64
	udiag []float64
	p     []int
	pinv  []int

	// scratch (x must be all-zero between AddColumn calls)
	x       []float64
	fwd     []float64
	visited []bool
	topo    []int
	stack   []int
	scur    []int
}

// NewSparseLU returns an empty factorization for an n×n basis. pivTol is
// the smallest pivot magnitude accepted; anything at or below it makes
// AddColumn report the column dependent. pivTol <= 0 selects 1e-11.
func NewSparseLU(n int, pivTol float64) *SparseLU {
	if pivTol <= 0 {
		pivTol = 1e-11
	}
	f := &SparseLU{
		n:       n,
		pivTol:  pivTol,
		udiag:   make([]float64, 0, n),
		p:       make([]int, 0, n),
		pinv:    make([]int, n),
		x:       make([]float64, n),
		fwd:     make([]float64, n),
		visited: make([]bool, n),
	}
	for i := range f.pinv {
		f.pinv[i] = -1
	}
	return f
}

// N returns the basis dimension.
func (f *SparseLU) N() int { return f.n }

// Rank returns the number of columns accepted so far.
func (f *SparseLU) Rank() int { return len(f.p) }

// Complete reports whether all n columns have been accepted.
func (f *SparseLU) Complete() bool { return len(f.p) == f.n }

// Pivoted reports whether original row r already hosts a pivot.
func (f *SparseLU) Pivoted(r int) bool { return f.pinv[r] >= 0 }

// AddColumn eliminates one basis column (row indices ind, values val;
// duplicate row entries accumulate) against the factors built so far and
// accepts it as the next pivot column. It returns false — leaving the
// factorization unchanged — when the column is linearly dependent on the
// columns already accepted (no unpivoted row carries more than pivTol
// after elimination), or when the factorization is already complete.
func (f *SparseLU) AddColumn(ind []int, val []float64) bool {
	if len(f.p) >= f.n {
		return false
	}
	// Scatter the column and find the reachable pattern.
	for i, r := range ind {
		f.x[r] += val[i]
	}
	f.reach(ind)
	// Eliminate in topological order (reverse DFS post-order): pivotal row
	// r with multiplier x[r] updates the rows of its L column.
	for t := len(f.topo) - 1; t >= 0; t-- {
		r := f.topo[t]
		k := f.pinv[r]
		if k < 0 {
			continue
		}
		xr := f.x[r]
		if xr != 0 {
			li, lv := f.lind[k], f.lval[k]
			for j, rr := range li {
				f.x[rr] -= xr * lv[j]
			}
		}
	}
	// Partial pivoting: the largest-magnitude unpivoted row wins.
	piv, pivAbs := -1, f.pivTol
	for _, r := range f.topo {
		if f.pinv[r] >= 0 {
			continue
		}
		if a := math.Abs(f.x[r]); a > pivAbs {
			piv, pivAbs = r, a
		}
	}
	if piv < 0 {
		f.clear()
		return false
	}
	// Harvest U (pivotal rows) and L (unpivoted rows, scaled by the pivot).
	k := len(f.p)
	d := f.x[piv]
	var uind []int
	var uval []float64
	var lind []int
	var lval []float64
	for _, r := range f.topo {
		v := f.x[r]
		if v == 0 {
			continue
		}
		switch {
		case r == piv:
		case f.pinv[r] >= 0:
			uind = append(uind, f.pinv[r])
			uval = append(uval, v)
		default:
			lind = append(lind, r)
			lval = append(lval, v/d)
		}
	}
	f.lind = append(f.lind, lind)
	f.lval = append(f.lval, lval)
	f.uind = append(f.uind, uind)
	f.uval = append(f.uval, uval)
	f.udiag = append(f.udiag, d)
	f.p = append(f.p, piv)
	f.pinv[piv] = k
	f.clear()
	return true
}

// reach computes the DFS post-order of every row reachable from ind
// through the L columns of pivotal rows, into f.topo. Iterative DFS so
// deep factor graphs cannot overflow the goroutine stack.
func (f *SparseLU) reach(ind []int) {
	f.topo = f.topo[:0]
	for _, root := range ind {
		if f.visited[root] {
			continue
		}
		f.visited[root] = true
		f.stack = append(f.stack[:0], root)
		f.scur = append(f.scur[:0], 0)
		for len(f.stack) > 0 {
			top := len(f.stack) - 1
			r := f.stack[top]
			k := f.pinv[r]
			advanced := false
			if k >= 0 {
				li := f.lind[k]
				for f.scur[top] < len(li) {
					child := li[f.scur[top]]
					f.scur[top]++
					if !f.visited[child] {
						f.visited[child] = true
						f.stack = append(f.stack, child)
						f.scur = append(f.scur, 0)
						advanced = true
						break
					}
				}
			}
			if !advanced {
				f.topo = append(f.topo, r)
				f.stack = f.stack[:top]
				f.scur = f.scur[:top]
			}
		}
	}
}

// clear zeroes the scratch touched by the last AddColumn.
func (f *SparseLU) clear() {
	for _, r := range f.topo {
		f.x[r] = 0
		f.visited[r] = false
	}
	f.topo = f.topo[:0]
}

// Solve answers B·x = b (FTRAN through the factors): b is indexed by
// original row, out by basis position. out must have length n and may
// alias b. It panics when the factorization is incomplete.
func (f *SparseLU) Solve(b, out []float64) {
	if !f.Complete() {
		panic("linalg: SparseLU.Solve on incomplete factorization")
	}
	x := f.fwd
	copy(x, b)
	// Unit lower triangular forward solve in pivot order.
	for k := 0; k < f.n; k++ {
		xr := x[f.p[k]]
		if xr != 0 {
			li, lv := f.lind[k], f.lval[k]
			for j, r := range li {
				x[r] -= xr * lv[j]
			}
		}
	}
	for k := 0; k < f.n; k++ {
		out[k] = x[f.p[k]]
	}
	// Upper triangular backward solve, column-oriented.
	for j := f.n - 1; j >= 0; j-- {
		out[j] /= f.udiag[j]
		v := out[j]
		if v != 0 {
			ui, uv := f.uind[j], f.uval[j]
			for t, i := range ui {
				out[i] -= v * uv[t]
			}
		}
	}
}

// SolveT answers Bᵀ·y = c (BTRAN through the factors): c is indexed by
// basis position, out by original row. out must have length n and may
// alias c. It panics when the factorization is incomplete.
func (f *SparseLU) SolveT(c, out []float64) {
	if !f.Complete() {
		panic("linalg: SparseLU.SolveT on incomplete factorization")
	}
	w := f.fwd
	// Uᵀ forward solve: w[j] depends only on w[i] with i < j.
	for j := 0; j < f.n; j++ {
		s := c[j]
		ui, uv := f.uind[j], f.uval[j]
		for t, i := range ui {
			s -= uv[t] * w[i]
		}
		w[j] = s / f.udiag[j]
	}
	// Lᵀ backward solve: position k picks up the later positions its L
	// column scattered into.
	for k := f.n - 1; k >= 0; k-- {
		s := w[k]
		li, lv := f.lind[k], f.lval[k]
		for j, r := range li {
			s -= lv[j] * w[f.pinv[r]]
		}
		w[k] = s
	}
	for k := 0; k < f.n; k++ {
		out[f.p[k]] = w[k]
	}
}

// EtaFile accumulates product-form basis updates on top of a SparseLU:
// after replacing basis position r with a column whose FTRAN image is w,
// the new basis is B·E with E the identity carrying w in column r. FTRAN
// applies the inverses in append order after the LU solve; BTRAN applies
// the transposed inverses in reverse order before it. The simplex layer
// refactorizes once the file grows past its refresh bound.
type EtaFile struct {
	n    int
	etas []eta
}

type eta struct {
	r    int
	ind  []int
	val  []float64
	diag float64
}

// NewEtaFile returns an empty file for n-dimensional bases.
func NewEtaFile(n int) *EtaFile { return &EtaFile{n: n} }

// Len returns the number of recorded updates.
func (f *EtaFile) Len() int { return len(f.etas) }

// Reset drops every recorded update (after a refactorization).
func (f *EtaFile) Reset() { f.etas = f.etas[:0] }

// Append records the replacement of basis position r by the column whose
// FTRAN image (position-indexed, dense) is w. It refuses — returning
// false — when the diagonal |w[r]| is at or below tol, which would make
// the update numerically singular.
func (f *EtaFile) Append(r int, w []float64, tol float64) bool {
	d := w[r]
	if math.Abs(d) <= tol {
		return false
	}
	e := eta{r: r, diag: d}
	for i, v := range w {
		if i != r && v != 0 {
			e.ind = append(e.ind, i)
			e.val = append(e.val, v)
		}
	}
	f.etas = append(f.etas, e)
	return true
}

// Apply maps x ← E_k⁻¹···E_1⁻¹·x in place (the FTRAN tail).
func (f *EtaFile) Apply(x []float64) {
	for i := range f.etas {
		e := &f.etas[i]
		xr := x[e.r] / e.diag
		for j, idx := range e.ind {
			x[idx] -= e.val[j] * xr
		}
		x[e.r] = xr
	}
}

// ApplyT maps c ← E_1ᵀ⁻¹···E_kᵀ⁻¹·c in place, newest update first (the
// BTRAN head, run before SparseLU.SolveT).
func (f *EtaFile) ApplyT(c []float64) {
	for i := len(f.etas) - 1; i >= 0; i-- {
		e := &f.etas[i]
		s := 0.0
		for j, idx := range e.ind {
			s += e.val[j] * c[idx]
		}
		c[e.r] = (c[e.r] - s) / e.diag
	}
}

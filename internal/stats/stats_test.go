package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"profitlb/internal/workload"
)

func TestSummarizeKnownSeries(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.SD-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("SD = %g, want sqrt(2)", s.SD)
	}
	if s.P50 != 3 || s.P95 != 5 {
		t.Fatalf("percentiles %g/%g", s.P50, s.P95)
	}
	if math.Abs(s.PeakToMean-5.0/3) > 1e-12 {
		t.Fatalf("peak/mean %g", s.PeakToMean)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatal("empty accepted")
	}
	s, err := Summarize([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.CV != 0 || s.PeakToMean != 0 {
		t.Fatal("zero-mean ratios should be 0")
	}
	one, err := Summarize([]float64{7})
	if err != nil || one.SD != 0 || one.P50 != 7 {
		t.Fatalf("singleton summary %+v err %v", one, err)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if Percentile(sorted, 0) != 10 || Percentile(sorted, 1) != 40 {
		t.Fatal("extremes wrong")
	}
	if Percentile(sorted, 0.5) != 20 {
		t.Fatalf("p50 = %g", Percentile(sorted, 0.5))
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty should be 0")
	}
}

func TestAutoCorr(t *testing.T) {
	// A constant series has zero variance → 0 by convention.
	if AutoCorr([]float64{5, 5, 5, 5}, 1) != 0 {
		t.Fatal("constant series")
	}
	// Perfectly alternating series: lag-1 autocorrelation ≈ -1.
	alt := make([]float64, 200)
	for i := range alt {
		alt[i] = float64(i % 2)
	}
	if ac := AutoCorr(alt, 1); ac > -0.9 {
		t.Fatalf("alternating lag-1 = %g, want ≈ -1", ac)
	}
	// A smooth sinusoid has high positive lag-1 autocorrelation.
	sin := make([]float64, 200)
	for i := range sin {
		sin[i] = math.Sin(2 * math.Pi * float64(i) / 50)
	}
	if ac := AutoCorr(sin, 1); ac < 0.9 {
		t.Fatalf("sinusoid lag-1 = %g, want ≈ 1", ac)
	}
	if AutoCorr([]float64{1}, 1) != 0 || AutoCorr([]float64{1, 2, 3}, -1) != 0 {
		t.Fatal("degenerate inputs should be 0")
	}
}

func TestForTrace(t *testing.T) {
	base := workload.WorldCupLike(workload.WorldCupConfig{Seed: 3})
	tr := workload.ShiftTypes("fe", base, 3, 4)
	sums, err := ForTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 3 {
		t.Fatalf("types %d", len(sums))
	}
	for _, ts := range sums {
		// Time-shifted copies share the same marginal statistics.
		if math.Abs(ts.Summary.Mean-sums[0].Summary.Mean) > 1e-9 {
			t.Fatal("shifted types should share the mean")
		}
		// Diurnal series: positive slot-to-slot correlation.
		if ts.Lag1 < 0.3 {
			t.Fatalf("type %d lag-1 %g, want clearly positive", ts.Type, ts.Lag1)
		}
		if ts.Summary.PeakToMean < 1.5 {
			t.Fatalf("flash-crowd trace peak/mean %g too flat", ts.Summary.PeakToMean)
		}
	}
	bad := &workload.Trace{Name: "bad"}
	if _, err := ForTrace(bad); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

// Property: mean is within [min, max] and percentiles are ordered.
func TestSummaryInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*1000 - 200
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.Max &&
			s.SD >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

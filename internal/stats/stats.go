// Package stats provides the series statistics used to characterize
// workloads and reports: moments, percentiles, autocorrelation and
// peak-to-mean ratios. The paper motivates its design with the shape of
// its traces (diurnality, bursts); these are the numbers that make such
// shapes comparable.
package stats

import (
	"errors"
	"math"
	"sort"

	"profitlb/internal/workload"
)

// Summary describes one numeric series.
type Summary struct {
	N          int
	Mean, SD   float64
	CV         float64 // SD/Mean (0 when Mean is 0)
	Min, Max   float64
	P50, P95   float64
	PeakToMean float64 // Max/Mean (0 when Mean is 0)
}

// ErrEmpty is returned for empty series.
var ErrEmpty = errors.New("stats: empty series")

// Summarize computes the summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	n := float64(len(xs))
	s.Mean = sum / n
	variance := sumsq/n - s.Mean*s.Mean
	if variance > 0 {
		s.SD = math.Sqrt(variance)
	}
	if s.Mean != 0 {
		s.CV = s.SD / s.Mean
		s.PeakToMean = s.Max / s.Mean
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 0.50)
	s.P95 = Percentile(sorted, 0.95)
	return s, nil
}

// Percentile reads the p-quantile (0 < p ≤ 1) from an ascending-sorted
// series using the nearest-rank method.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// AutoCorr returns the lag-k autocorrelation of xs (1 at lag 0; 0 for
// series shorter than k+2 or with zero variance).
func AutoCorr(xs []float64, lag int) float64 {
	n := len(xs)
	if lag < 0 || n < lag+2 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - mean
		den += d * d
		if i+lag < n {
			num += d * (xs[i+lag] - mean)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// TraceSummary is the per-type characterization of an arrival trace.
type TraceSummary struct {
	Type    int
	Summary Summary
	// Lag1 is the slot-to-slot autocorrelation, high for diurnal series.
	Lag1 float64
}

// ForTrace summarizes every type of an arrival trace over its slots.
func ForTrace(tr *workload.Trace) ([]TraceSummary, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	out := make([]TraceSummary, tr.Types())
	for k := 0; k < tr.Types(); k++ {
		series := make([]float64, tr.Slots())
		for s := 0; s < tr.Slots(); s++ {
			series[s] = tr.At(s, k)
		}
		sum, err := Summarize(series)
		if err != nil {
			return nil, err
		}
		out[k] = TraceSummary{Type: k, Summary: sum, Lag1: AutoCorr(series, 1)}
	}
	return out, nil
}

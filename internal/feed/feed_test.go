package feed

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"profitlb/internal/fault"
)

// testSet builds a 2-center / 1-front-end / 2-type feed layer over
// synthetic oscillating sources.
func testSet(t *testing.T, cfg Config, sch *fault.Schedule) *Set {
	t.Helper()
	priceSrc := []func(int) float64{
		func(slot int) float64 { return 0.08 + 0.02*math.Sin(float64(slot)) },
		func(slot int) float64 { return 0.11 + 0.03*math.Cos(float64(slot)) },
	}
	arrivalSrc := []func(int) []float64{
		func(slot int) []float64 {
			return []float64{4000 + 500*math.Sin(float64(slot)/2), 1500 + 300*math.Cos(float64(slot)/3)}
		},
	}
	st, err := NewSet(cfg, sch, priceSrc, []float64{0.08, 0.11}, arrivalSrc, [][]float64{{4000, 1500}})
	if err != nil {
		t.Fatalf("NewSet: %v", err)
	}
	return st
}

func TestCleanFeedsAreFreshAndExact(t *testing.T) {
	st := testSet(t, Config{}, nil)
	for slot := 0; slot < 10; slot++ {
		s := st.FetchSlot(slot)
		if !s.Health.AllFresh() || s.Distorted {
			t.Fatalf("slot %d: clean feeds not fresh: %+v", slot, s.Health)
		}
		wantP0 := 0.08 + 0.02*math.Sin(float64(slot))
		if s.Prices[0] != wantP0 {
			t.Fatalf("slot %d: price 0 = %g, want bit-identical %g", slot, s.Prices[0], wantP0)
		}
		for _, h := range append(append([]Health(nil), s.Health.Prices...), s.Health.Arrivals...) {
			if h.Tier != TierFresh || h.Staleness != 0 || h.Attempts != 1 || h.Breaker != Closed {
				t.Fatalf("slot %d: unexpected clean health %+v", slot, h)
			}
		}
	}
}

func TestEstimatorChainTiers(t *testing.T) {
	// The price-0 feed dies permanently at slot 3; TTL 3 carries the LKG
	// through slots 3-5, then the Kalman (warm after 3 good samples) takes
	// over.
	sch := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.FeedLoss, Feed: fault.FeedPrice, Center: 0, From: 3, To: 99},
	}}
	st := testSet(t, Config{}, sch)
	wantTiers := map[int]Tier{0: TierFresh, 2: TierFresh, 3: TierLKG, 5: TierLKG, 6: TierForecast, 9: TierForecast}
	for slot := 0; slot < 10; slot++ {
		s := st.FetchSlot(slot)
		if want, ok := wantTiers[slot]; ok && s.Health.Prices[0].Tier != want {
			t.Fatalf("slot %d: price-0 tier %s, want %s", slot, s.Health.Prices[0].Tier, want)
		}
		if slot >= 3 {
			if got, want := s.Health.Prices[0].Staleness, slot-2; got != want {
				t.Fatalf("slot %d: staleness %d, want %d", slot, got, want)
			}
		}
		// The untouched feeds stay fresh.
		if s.Health.Prices[1].Tier != TierFresh || s.Health.Arrivals[0].Tier != TierFresh {
			t.Fatalf("slot %d: unfaulted feeds degraded: %+v", slot, s.Health)
		}
	}
}

func TestPriorTierWhenFeedNeverDelivers(t *testing.T) {
	sch := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.FeedLoss, Feed: fault.FeedArrival, FrontEnd: 0, From: 0, To: 99},
	}}
	cfg := Config{StaleMargin: 0.05, MaxMargin: 0.5}
	st := testSet(t, cfg, sch)
	for slot := 0; slot < 8; slot++ {
		s := st.FetchSlot(slot)
		h := s.Health.Arrivals[0]
		if h.Tier != TierPrior {
			t.Fatalf("slot %d: tier %s, want prior", slot, h.Tier)
		}
		if h.Staleness != slot+1 {
			t.Fatalf("slot %d: staleness %d, want %d (born-slot bookkeeping)", slot, h.Staleness, slot+1)
		}
		if !s.Health.Unusable() {
			t.Fatalf("slot %d: a prior-tier feed must make the slot unusable", slot)
		}
		// Prior is inflated by the capped staleness margin.
		m := 0.05 * float64(h.Staleness)
		if m > 0.5 {
			m = 0.5
		}
		want := 4000 * (1 + m)
		if math.Abs(s.Arrivals[0][0]-want) > 1e-9 {
			t.Fatalf("slot %d: arrival %g, want prior with margin %g", slot, s.Arrivals[0][0], want)
		}
	}
}

func TestLKGDecayBlendsTowardPrior(t *testing.T) {
	sch := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.FeedLoss, Feed: fault.FeedPrice, Center: 1, From: 1, To: 99},
	}}
	st := testSet(t, Config{Decay: 0.5}, sch)
	s0 := st.FetchSlot(0)
	lkg := s0.Prices[1]
	prior := 0.11
	for age := 1; age <= 3; age++ {
		s := st.FetchSlot(age)
		want := prior + (lkg-prior)*math.Pow(0.5, float64(age))
		if math.Abs(s.Prices[1]-want) > 1e-12 {
			t.Fatalf("age %d: decayed LKG %g, want %g", age, s.Prices[1], want)
		}
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := breaker{threshold: 2, cooldown: 2}
	if !b.Allow(0) {
		t.Fatal("closed breaker must allow")
	}
	b.Record(0, false)
	if b.state != Closed {
		t.Fatalf("one failure must not open (got %s)", b.state)
	}
	b.Record(1, false)
	if b.state != Open {
		t.Fatalf("threshold failures must open (got %s)", b.state)
	}
	if b.Allow(2) {
		t.Fatal("open breaker inside cooldown must block")
	}
	if !b.Allow(3) || b.state != HalfOpen {
		t.Fatalf("cooldown elapsed must half-open (got %s)", b.state)
	}
	b.Record(3, false)
	if b.state != Open || b.openedAt != 3 {
		t.Fatalf("failed trial must re-open at the trial slot (got %s@%d)", b.state, b.openedAt)
	}
	if !b.Allow(5) || b.state != HalfOpen {
		t.Fatalf("second cooldown must half-open again (got %s)", b.state)
	}
	b.Record(5, true)
	if b.state != Closed || b.fails != 0 {
		t.Fatalf("successful trial must close and reset (got %s, fails %d)", b.state, b.fails)
	}
	// A success after a single failure resets the consecutive count.
	b.Record(6, false)
	b.Record(7, true)
	b.Record(8, false)
	if b.state != Closed {
		t.Fatalf("non-consecutive failures must not open (got %s)", b.state)
	}
}

func TestBreakerOpensAndRecoversThroughFeed(t *testing.T) {
	// Dropout with probability 1 over slots 0-3: failed slots 0-1 reach
	// the breaker threshold, slot 2 sits out the cooldown, the slot-3
	// half-open trial still hits the dropout and re-opens, slot 4 cools
	// down again, and the slot-5 trial hits a healthy feed and closes.
	sch := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.FeedDropout, Feed: fault.FeedPrice, Center: 0, Factor: 1, From: 0, To: 3},
	}}
	st := testSet(t, Config{}, sch)
	states := make([]BreakerState, 6)
	attempts := make([]int, 6)
	for slot := 0; slot < 6; slot++ {
		s := st.FetchSlot(slot)
		states[slot] = s.Health.Prices[0].Breaker
		attempts[slot] = s.Health.Prices[0].Attempts
	}
	want := []BreakerState{Closed, Open, Open, Open, Open, Closed}
	if !reflect.DeepEqual(states, want) {
		t.Fatalf("breaker states %v, want %v", states, want)
	}
	if attempts[2] != 0 || attempts[4] != 0 {
		t.Fatalf("open breaker must skip the transport (attempts %v)", attempts)
	}
	if attempts[3] == 0 {
		t.Fatalf("slot-3 half-open trial must actually fetch (attempts %v)", attempts)
	}
	if attempts[5] != 1 {
		t.Fatalf("healthy half-open trial should succeed on attempt 1, got %d", attempts[5])
	}
}

func TestDeadlineFailsUnderExtremeDelay(t *testing.T) {
	sch := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.FeedDelay, Feed: fault.FeedArrival, FrontEnd: 0, Factor: 1000, From: 0, To: 0},
	}}
	st := testSet(t, Config{}, sch)
	s := st.FetchSlot(0)
	h := s.Health.Arrivals[0]
	if h.Failure != "deadline" || h.Tier == TierFresh {
		t.Fatalf("1000x delay must blow the deadline, got %+v", h)
	}
}

func TestFeedDeterminismAcrossRebuilds(t *testing.T) {
	sch := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.FeedDropout, Feed: fault.FeedPrice, Center: 0, Factor: 0.5, From: 0, To: 19},
		{Kind: fault.FeedNoise, Feed: fault.FeedArrival, FrontEnd: 0, Factor: 0.3, From: 0, To: 19},
	}}
	run := func() ([]*Sample, *Set) {
		st := testSet(t, Config{Seed: 42}, sch)
		var out []*Sample
		for slot := 0; slot < 20; slot++ {
			out = append(out, st.FetchSlot(slot))
		}
		return out, st
	}
	a, _ := run()
	b, _ := run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("rebuilt Set must replay the identical degradation sequence")
	}
}

// TestEstimatesNeverNegative is the property test of the estimator
// chain: under random fault storms, every emitted arrival is >= 0, every
// price is > 0, and nothing is NaN or Inf — whatever mix of noise,
// dropouts, delays and losses is active.
func TestEstimatesNeverNegative(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		sch, err := fault.Storm(fault.StormConfig{
			Seed: int64(trial), Start: 0, Slots: 24, Centers: 2, FrontEnds: 1,
			FeedDropouts:   1 + rng.Intn(3),
			FeedNoises:     1 + rng.Intn(3),
			FeedDelays:     rng.Intn(2),
			FeedLosses:     rng.Intn(2),
			FeedNoiseSigma: 0.5 + rng.Float64(), // violent noise to probe the clamps
		})
		if err != nil {
			t.Fatalf("trial %d: storm: %v", trial, err)
		}
		st := testSet(t, Config{Seed: int64(trial), Decay: 0.9}, sch)
		for slot := 0; slot < 24; slot++ {
			s := st.FetchSlot(slot)
			for l, p := range s.Prices {
				if !(p > 0) || math.IsInf(p, 0) {
					t.Fatalf("trial %d slot %d: price %d = %g (tier %s)", trial, slot, l, p, s.Health.Prices[l].Tier)
				}
			}
			for fe, row := range s.Arrivals {
				for k, v := range row {
					if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("trial %d slot %d: arrival [%d][%d] = %g (tier %s)", trial, slot, fe, k, v, s.Health.Arrivals[fe].Tier)
					}
				}
			}
			for _, h := range append(append([]Health(nil), s.Health.Prices...), s.Health.Arrivals...) {
				if h.Staleness < 0 || h.Tier < TierFresh || h.Tier > TierPrior {
					t.Fatalf("trial %d slot %d: invalid health %+v", trial, slot, h)
				}
				if h.Tier == TierFresh && h.Failure != "" {
					t.Fatalf("trial %d slot %d: fresh tier with failure %q", trial, slot, h.Failure)
				}
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Decay: 1.5},
		{Decay: -0.1},
		{MaxAttempts: -1},
		{DeadlineMs: math.NaN()},
		{StaleMargin: math.Inf(1)},
		{PricePriors: []float64{0.1, -0.2}},
		{ArrivalPriors: [][]float64{{math.NaN()}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d validated: %+v", i, c)
		}
	}
	dims := Config{PricePriors: []float64{0.1}}
	if err := dims.ValidateDims(2, 1, 2); err == nil {
		t.Fatal("1 price prior for 2 centers must fail dims check")
	}
	ok := Config{Decay: 0.5, PricePriors: []float64{0.1, 0.2}, ArrivalPriors: [][]float64{{1, 2}}}
	if err := ok.ValidateDims(2, 1, 2); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestTierAndStateStrings(t *testing.T) {
	if TierFresh.String() != "fresh" || TierLKG.String() != "lkg" ||
		TierForecast.String() != "forecast" || TierPrior.String() != "prior" {
		t.Fatal("tier strings drifted")
	}
	if Closed.String() != "closed" || Open.String() != "open" || HalfOpen.String() != "half-open" {
		t.Fatal("breaker state strings drifted")
	}
	h := Health{Tier: TierLKG, Staleness: 2, Breaker: Open}
	if h.Label() != "lkg(2)!" {
		t.Fatalf("label = %q", h.Label())
	}
}

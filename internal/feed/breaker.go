package feed

// BreakerState is the circuit-breaker position of one feed.
type BreakerState int

// The breaker state machine: Closed (fetching normally) opens after a
// run of consecutive failed slots; Open skips fetching entirely until the
// cooldown elapses; HalfOpen lets one trial fetch through — success
// closes the breaker, failure re-opens it for another cooldown.
const (
	Closed BreakerState = iota
	Open
	HalfOpen
)

// String renders the state for reports.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is a slot-granular circuit breaker. Outcomes are recorded once
// per slot (a slot's bounded retries count as one outcome), so threshold
// and cooldown are both measured in slots.
type breaker struct {
	threshold int // consecutive failed slots before opening
	cooldown  int // slots to stay open before a half-open trial
	state     BreakerState
	fails     int
	openedAt  int
}

// Allow reports whether the feed should attempt a fetch this slot,
// transitioning Open → HalfOpen when the cooldown has elapsed.
func (b *breaker) Allow(slot int) bool {
	if b.state == Open {
		if slot-b.openedAt >= b.cooldown {
			b.state = HalfOpen
			return true
		}
		return false
	}
	return true
}

// Record feeds one slot-level fetch outcome into the state machine.
func (b *breaker) Record(slot int, ok bool) {
	if ok {
		b.state, b.fails = Closed, 0
		return
	}
	b.fails++
	if b.state == HalfOpen || b.fails >= b.threshold {
		b.state, b.openedAt = Open, slot
	}
}

package feed

import (
	"fmt"

	"profitlb/internal/obs"
)

// Instrument attaches an observability scope to every feed of the Set.
// The scope only watches: fetch counters, estimator-tier counters, and
// one feed-transition trace event whenever a feed's tier or breaker
// state changes between slots. Readings are never altered, so an
// instrumented Set replays bit-identically. A nil or disabled scope is
// a no-op; call before the first FetchSlot.
func (st *Set) Instrument(sc *obs.Scope) {
	if !sc.Enabled() {
		return
	}
	for _, f := range st.prices {
		f.sc = sc
	}
	for _, f := range st.arrivals {
		f.sc = sc
	}
}

// note publishes one slot's fetch outcome to the attached scope and
// advances the transition tracker. The first observed slot emits a
// transition only when the feed is already degraded — a fresh fetch on
// a closed breaker is the steady state, not a transition.
func (f *Feed) note(slot int, h Health) {
	if !f.sc.Enabled() {
		return
	}
	f.sc.Counter("feed_fetches_total", obs.L("kind", f.kind)).Add(1)
	f.sc.Counter("feed_tier_total", obs.L("tier", h.Tier.String())).Add(1)
	if h.Breaker == Open && (!f.prevKnown || f.prevBreaker != Open) {
		f.sc.Counter("feed_breaker_opens_total", obs.L("kind", f.kind)).Add(1)
	}
	changed := f.prevKnown && (h.Tier != f.prevTier || h.Breaker != f.prevBreaker) ||
		!f.prevKnown && (h.Tier != TierFresh || h.Breaker != Closed)
	if changed {
		f.sc.Emit(obs.Event{
			Kind:      obs.KindFeedTransition,
			Slot:      slot,
			Feed:      fmt.Sprintf("%s/%d", f.kind, f.idx),
			FeedTier:  h.Tier.String(),
			Breaker:   h.Breaker.String(),
			Staleness: h.Staleness,
			Reason:    h.Failure,
		})
	}
	f.prevTier, f.prevBreaker, f.prevKnown = h.Tier, h.Breaker, true
}

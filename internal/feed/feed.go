// Package feed models the telemetry layer between the scenario oracle and
// the planner: typed electricity-price and arrival-rate feeds with the
// failure semantics of a real ingestion path. The paper's optimization
// assumes every slot boundary delivers perfect p_l and λ_{k,s}; this
// package is where that assumption goes to die gracefully.
//
// Each feed fetches its oracle reading once per slot under bounded retry
// with exponential backoff and a per-slot latency deadline (time is
// virtual — milliseconds are accounted, never slept). Fault events from
// internal/fault (feed-delay, feed-dropout, feed-noise, feed-corrupt,
// feed-loss) impair the transport; a per-feed circuit breaker (closed →
// open → half-open) stops hammering a dead feed and probes it after a
// cooldown. When the live fetch fails, a fallback estimator chain stands
// in:
//
//	fresh sample → last-known-good (TTL, decayed toward the prior)
//	→ Kalman one-step forecast (internal/forecast) → configured prior
//
// Every Fetch reports Health — estimator tier, staleness age, breaker
// state, attempts spent — which the simulator records per slot and the
// resilient planner chain uses to escalate. With no feed faults active
// every fetch is a first-attempt fresh sample, so a feed-routed run is
// bit-identical to the oracle path.
//
// All randomness (dropout draws, noise) is derived from a per-(feed,
// slot) splitmix hash of the configured seed, so a Set replays
// identically however many times it is rebuilt — sim.Compare lanes each
// build their own Set and face the same degradation sequence.
package feed

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"profitlb/internal/fault"
	"profitlb/internal/forecast"
	"profitlb/internal/obs"
)

// Tier identifies which estimator produced a slot's planner-facing value.
type Tier int

// The estimator chain, best to worst.
const (
	// TierFresh is a live sample fetched this slot (possibly noisy —
	// feed-noise corrupts readings undetectably).
	TierFresh Tier = iota
	// TierLKG replays the last-known-good sample, decayed toward the
	// prior, while its age is within the TTL.
	TierLKG
	// TierForecast is the Kalman filter's one-step-ahead prediction from
	// the good samples seen so far.
	TierForecast
	// TierPrior is the configured prior — the feed is effectively dark.
	TierPrior
)

// String renders the tier for reports.
func (t Tier) String() string {
	switch t {
	case TierFresh:
		return "fresh"
	case TierLKG:
		return "lkg"
	case TierForecast:
		return "forecast"
	case TierPrior:
		return "prior"
	default:
		return "unknown"
	}
}

// Health is one feed's condition during one slot.
type Health struct {
	// Tier is the estimator that produced the value.
	Tier Tier
	// Staleness is the age in slots of the newest good sample backing the
	// value: 0 when fresh, and the slots since the feed was born when no
	// good sample has ever arrived.
	Staleness int
	// Breaker is the circuit breaker's state after this slot's fetch.
	Breaker BreakerState
	// Attempts is the number of fetch attempts spent (0 when the breaker
	// was open and no fetch was tried).
	Attempts int
	// Noisy marks a fresh sample perturbed by an active feed-noise fault.
	Noisy bool
	// Failure is why the live fetch failed ("" on a fresh sample):
	// "deadline", "dropout", "corrupt", "lost" or "breaker-open".
	Failure string
}

// Label renders the health compactly, e.g. "fresh", "lkg(2)",
// "prior(5)!" — the bang marks an open breaker.
func (h Health) Label() string {
	s := h.Tier.String()
	if h.Tier != TierFresh {
		s = fmt.Sprintf("%s(%d)", s, h.Staleness)
	}
	if h.Breaker == Open {
		s += "!"
	}
	return s
}

// SlotHealth aggregates every feed's health for one slot.
type SlotHealth struct {
	// Prices[l] is the price feed of center l.
	Prices []Health
	// Arrivals[s] is the arrival feed of front-end s.
	Arrivals []Health
}

// WorstTier returns the deepest estimator tier any feed fell to.
func (sh *SlotHealth) WorstTier() Tier {
	worst := TierFresh
	for _, h := range sh.Prices {
		if h.Tier > worst {
			worst = h.Tier
		}
	}
	for _, h := range sh.Arrivals {
		if h.Tier > worst {
			worst = h.Tier
		}
	}
	return worst
}

// Unusable reports whether any feed is down to its prior — it has no
// sample, no usable cache and no warmed forecast, i.e. the planner is
// flying blind on at least one input. The resilient chain escalates past
// its primary tier on unusable slots (Chain.EscalateOnDegraded).
func (sh *SlotHealth) Unusable() bool { return sh.WorstTier() == TierPrior }

// AllFresh reports whether every feed delivered a live sample.
func (sh *SlotHealth) AllFresh() bool {
	for _, h := range sh.Prices {
		if h.Tier != TierFresh {
			return false
		}
	}
	for _, h := range sh.Arrivals {
		if h.Tier != TierFresh {
			return false
		}
	}
	return true
}

// Config parameterizes every feed of a Set. The zero value is valid and
// means "all defaults"; fields left zero take the documented default.
type Config struct {
	// MaxAttempts bounds fetch retries per slot (default 3).
	MaxAttempts int `json:"maxAttempts,omitempty"`
	// AttemptLatencyMs is the virtual cost of one fetch attempt
	// (default 20). Feed-delay faults multiply it.
	AttemptLatencyMs float64 `json:"attemptLatencyMs,omitempty"`
	// BaseBackoffMs is the backoff before the second attempt, doubling
	// per retry (default 25).
	BaseBackoffMs float64 `json:"baseBackoffMs,omitempty"`
	// DeadlineMs is the per-slot fetch budget (default 250); attempts
	// that would start past it fail the slot with "deadline".
	DeadlineMs float64 `json:"deadlineMs,omitempty"`
	// BreakerThreshold is the consecutive failed slots that open the
	// circuit breaker (default 2).
	BreakerThreshold int `json:"breakerThreshold,omitempty"`
	// BreakerCooldown is the slots the breaker stays open before a
	// half-open trial fetch (default 2).
	BreakerCooldown int `json:"breakerCooldown,omitempty"`
	// TTL is how many slots a last-known-good sample stays usable
	// (default 3).
	TTL int `json:"ttl,omitempty"`
	// Decay blends an aging LKG sample toward the prior per slot of
	// staleness: value = prior + (lkg-prior)·Decay^age. Default 1 (hold
	// the sample); must be in (0,1].
	Decay float64 `json:"decay,omitempty"`
	// ProcessRel and MeasureRel set each element's Kalman filter noise
	// relative to its prior magnitude: Q=(ProcessRel·prior)², likewise R
	// (defaults 0.15 and 0.05) — scale-free across $/kWh prices and
	// requests/s arrivals.
	ProcessRel float64 `json:"processRel,omitempty"`
	MeasureRel float64 `json:"measureRel,omitempty"`
	// MinObservations gates the forecast tier: the filter must have
	// consumed at least this many good samples (default 2).
	MinObservations int `json:"minObservations,omitempty"`
	// StaleMargin inflates the planner's arrival inputs by this fraction
	// per slot of staleness (default 0.05), reserving headroom for the
	// demand a stale estimate may be under-calling; MaxMargin caps the
	// inflation (default 0.5). The simulator reconciles the committed
	// plan against actual arrivals, so the margin costs reservation
	// headroom, never phantom revenue.
	StaleMargin float64 `json:"staleMargin,omitempty"`
	MaxMargin   float64 `json:"maxMargin,omitempty"`
	// EscalateOnDark makes the resilient chain skip its primary
	// optimizer on slots where feeds report Unusable.
	EscalateOnDark bool `json:"escalateOnDark,omitempty"`
	// PricePriors and ArrivalPriors override the per-feed priors
	// (defaults: the mean of each oracle trace, standing in for the
	// provider's historical telemetry). PricePriors[l] must be positive;
	// ArrivalPriors[s][k] non-negative.
	PricePriors   []float64   `json:"pricePriors,omitempty"`
	ArrivalPriors [][]float64 `json:"arrivalPriors,omitempty"`
	// Seed drives dropout and noise draws; equal seeds replay equal
	// degradation sequences.
	Seed int64 `json:"seed,omitempty"`
}

// withDefaults returns a copy with every zero field set to its default.
func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.AttemptLatencyMs <= 0 {
		c.AttemptLatencyMs = 20
	}
	if c.BaseBackoffMs <= 0 {
		c.BaseBackoffMs = 25
	}
	if c.DeadlineMs <= 0 {
		c.DeadlineMs = 250
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 2
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2
	}
	if c.TTL <= 0 {
		c.TTL = 3
	}
	if c.Decay <= 0 {
		c.Decay = 1
	}
	if c.ProcessRel <= 0 {
		c.ProcessRel = 0.15
	}
	if c.MeasureRel <= 0 {
		c.MeasureRel = 0.05
	}
	if c.MinObservations <= 0 {
		c.MinObservations = 2
	}
	if c.StaleMargin == 0 {
		c.StaleMargin = 0.05
	}
	if c.MaxMargin <= 0 {
		c.MaxMargin = 0.5
	}
	return c
}

// Validate rejects configurations no defaulting can repair.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	if c.MaxAttempts < 0 || c.TTL < 0 || c.BreakerThreshold < 0 || c.BreakerCooldown < 0 || c.MinObservations < 0 {
		return fmt.Errorf("feed: negative counts in config")
	}
	for _, v := range []float64{c.AttemptLatencyMs, c.BaseBackoffMs, c.DeadlineMs, c.ProcessRel, c.MeasureRel, c.MaxMargin} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("feed: invalid config value %g", v)
		}
	}
	if c.StaleMargin < 0 || math.IsNaN(c.StaleMargin) || math.IsInf(c.StaleMargin, 0) {
		return fmt.Errorf("feed: invalid stale margin %g", c.StaleMargin)
	}
	if c.Decay < 0 || c.Decay > 1 || math.IsNaN(c.Decay) {
		return fmt.Errorf("feed: decay %g outside [0,1]", c.Decay)
	}
	for l, p := range c.PricePriors {
		if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("feed: price prior %d invalid: %g", l, p)
		}
	}
	for s, row := range c.ArrivalPriors {
		for k, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("feed: arrival prior [%d][%d] invalid: %g", s, k, v)
			}
		}
	}
	return nil
}

// ValidateDims checks the optional prior overrides against the topology.
func (c *Config) ValidateDims(centers, frontEnds, types int) error {
	if c == nil {
		return nil
	}
	if err := c.Validate(); err != nil {
		return err
	}
	if len(c.PricePriors) > 0 && len(c.PricePriors) != centers {
		return fmt.Errorf("feed: %d price priors for %d centers", len(c.PricePriors), centers)
	}
	if len(c.ArrivalPriors) > 0 {
		if len(c.ArrivalPriors) != frontEnds {
			return fmt.Errorf("feed: %d arrival priors for %d front-ends", len(c.ArrivalPriors), frontEnds)
		}
		for s, row := range c.ArrivalPriors {
			if len(row) != types {
				return fmt.Errorf("feed: arrival prior %d has %d types, want %d", s, len(row), types)
			}
		}
	}
	return nil
}

// Feed is one telemetry feed: a vector source (width 1 for a price feed,
// K for an arrival feed) behind the transport, breaker, cache and
// estimator chain. Fetch must be called by a single goroutine with
// non-decreasing slots — the simulator's slot loop is that driver. A
// small mutex additionally serializes Fetch against PredictAhead, whose
// caller (a rolling-horizon planner under a resilient chain's per-tier
// deadline) can outlive its slot and overlap the next slot's fetch.
type Feed struct {
	mu sync.Mutex
	kind string // fault.FeedPrice or fault.FeedArrival
	idx  int
	cfg  Config
	sch  *fault.Schedule
	src  func(slot int) []float64
	// prior is the estimator of last resort; floor is the smallest value
	// the feed ever emits (a sliver of the prior for prices — electricity
	// is never free — and zero for arrivals).
	prior   []float64
	floor   float64
	br      breaker
	filters []*forecast.Kalman
	lkg      []float64
	lkgSlot  int
	hasLKG   bool
	born     int
	started  bool
	lastSlot int // most recent Fetch slot, the "now" PredictAhead steps from
	// Observability (see obs.go): the attached scope plus the previous
	// slot's tier and breaker state, so transitions emit exactly one
	// trace event. All nil-safe; a scope never alters a reading.
	sc          *obs.Scope
	prevTier    Tier
	prevBreaker BreakerState
	prevKnown   bool
}

// newFeed builds one feed; cfg must already carry defaults.
func newFeed(kind string, idx int, cfg Config, sch *fault.Schedule, prior []float64, src func(int) []float64) (*Feed, error) {
	f := &Feed{
		kind: kind, idx: idx, cfg: cfg, sch: sch, src: src,
		prior:   append([]float64(nil), prior...),
		br:      breaker{threshold: cfg.BreakerThreshold, cooldown: cfg.BreakerCooldown},
		filters: make([]*forecast.Kalman, len(prior)),
	}
	if kind == fault.FeedPrice {
		f.floor = prior[0] * 0.01
	}
	for i, p := range prior {
		scale := p
		if scale <= 0 {
			scale = 1
		}
		k, err := forecast.NewKalman(sq(cfg.ProcessRel*scale), sq(cfg.MeasureRel*scale))
		if err != nil {
			return nil, fmt.Errorf("feed: %s %d: %w", kind, idx, err)
		}
		f.filters[i] = k
	}
	return f, nil
}

func sq(v float64) float64 { return v * v }

// Fetch produces the slot's planner-facing reading and its health. The
// returned slice is owned by the caller.
func (f *Feed) Fetch(slot int) ([]float64, Health) {
	f.mu.Lock()
	out, h := f.fetch(slot)
	f.mu.Unlock()
	f.note(slot, h)
	return out, h
}

func (f *Feed) fetch(slot int) ([]float64, Health) {
	if !f.started {
		f.born, f.started = slot, true
	}
	f.lastSlot = slot
	h := Health{}
	eff := f.sch.FeedEffects(f.kind, f.idx, slot)
	var ok bool
	if f.br.Allow(slot) {
		rng := slotRNG(f.cfg.Seed, f.kind, f.idx, slot)
		ok, h.Attempts, h.Failure = f.transport(rng, eff)
		f.br.Record(slot, ok)
		if ok {
			out := f.observe(slot, rng, eff, &h)
			h.Breaker = f.br.state
			return out, h
		}
	} else {
		h.Failure = "breaker-open"
	}
	out := f.estimate(slot, &h)
	h.Breaker = f.br.state
	return out, h
}

// transport runs the bounded-retry fetch against the slot's fault
// effects, spending virtual latency against the per-slot deadline.
func (f *Feed) transport(rng *rand.Rand, eff fault.FeedEffects) (ok bool, attempts int, failure string) {
	elapsed := 0.0
	backoff := f.cfg.BaseBackoffMs
	for attempt := 1; attempt <= f.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			elapsed += backoff
			backoff *= 2
		}
		elapsed += f.cfg.AttemptLatencyMs * eff.LatencyFactor
		if elapsed > f.cfg.DeadlineMs {
			return false, attempt, "deadline"
		}
		switch {
		case eff.Lost:
			failure = "lost"
		case eff.DropProb > 0 && rng.Float64() < eff.DropProb:
			failure = "dropout"
		case eff.Corrupt:
			failure = "corrupt"
		default:
			return true, attempt, ""
		}
		attempts = attempt
	}
	return false, attempts, failure
}

// observe turns a successful fetch into the fresh reading: the oracle
// values, noise-perturbed under an active feed-noise fault, clamped to
// the feed's floor, then folded into the LKG cache and the filters. A
// noisy reading poisons the cache and the filters too — the feed cannot
// tell it is wrong, which is exactly the exposure feed-noise models.
func (f *Feed) observe(slot int, rng *rand.Rand, eff fault.FeedEffects, h *Health) []float64 {
	row := f.src(slot)
	out := make([]float64, len(f.prior))
	copy(out, row)
	if eff.NoiseSigma > 0 {
		h.Noisy = true
		for i := range out {
			out[i] *= 1 + eff.NoiseSigma*rng.NormFloat64()
			// Only noisy readings need the floor — an unperturbed sample is
			// the oracle value and must pass through bit-identical.
			if out[i] < f.floor || math.IsNaN(out[i]) {
				out[i] = f.floor
			}
		}
	}
	for i := range out {
		f.filters[i].Observe(out[i])
	}
	f.lkg = append(f.lkg[:0], out...)
	f.lkgSlot, f.hasLKG = slot, true
	h.Tier, h.Staleness = TierFresh, 0
	return append([]float64(nil), out...)
}

// estimate runs the fallback chain for a slot whose live fetch failed.
func (f *Feed) estimate(slot int, h *Health) []float64 {
	out := make([]float64, len(f.prior))
	switch {
	case f.hasLKG && slot-f.lkgSlot <= f.cfg.TTL:
		h.Tier, h.Staleness = TierLKG, slot-f.lkgSlot
		decay := math.Pow(f.cfg.Decay, float64(h.Staleness))
		for i := range out {
			out[i] = f.prior[i] + (f.lkg[i]-f.prior[i])*decay
		}
	case f.filters[0].Warm(f.cfg.MinObservations):
		h.Tier = TierForecast
		h.Staleness = f.age(slot)
		for i := range out {
			est, _ := f.filters[i].Predict()
			out[i] = est
		}
	default:
		h.Tier = TierPrior
		h.Staleness = f.age(slot)
		copy(out, f.prior)
	}
	for i := range out {
		if out[i] < f.floor || math.IsNaN(out[i]) {
			out[i] = f.floor
		}
	}
	return out
}

// age is the slots since the newest good sample (since birth when none).
func (f *Feed) age(slot int) int {
	if f.hasLKG {
		return slot - f.lkgSlot
	}
	return slot - f.born + 1
}

// Set bundles one price feed per data center and one arrival feed per
// front-end. Build one per simulation run: feeds are stateful (breaker,
// cache, filters) and single-goroutine, and a freshly built Set replays
// the same degradation sequence, which is what keeps sim.Compare lanes
// aligned.
type Set struct {
	cfg      Config
	prices   []*Feed
	arrivals []*Feed
}

// NewSet builds the feed layer. priceSrc[l] and arrivalSrc[s] are the
// oracle readings (already composed with any legacy observation faults);
// pricePriors[l] and arrivalPriors[s][k] are the default priors, which
// cfg.PricePriors / cfg.ArrivalPriors override.
func NewSet(cfg Config, sch *fault.Schedule, priceSrc []func(int) float64, pricePriors []float64,
	arrivalSrc []func(int) []float64, arrivalPriors [][]float64) (*Set, error) {
	if err := cfg.ValidateDims(len(priceSrc), len(arrivalSrc), widthOf(arrivalPriors)); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	st := &Set{cfg: c}
	for l := range priceSrc {
		prior := pricePriors[l]
		if len(c.PricePriors) > 0 {
			prior = c.PricePriors[l]
		}
		if prior <= 0 {
			return nil, fmt.Errorf("feed: price feed %d needs a positive prior, got %g", l, prior)
		}
		src := priceSrc[l]
		f, err := newFeed(fault.FeedPrice, l, c, sch, []float64{prior},
			func(slot int) []float64 { return []float64{src(slot)} })
		if err != nil {
			return nil, err
		}
		st.prices = append(st.prices, f)
	}
	for s := range arrivalSrc {
		prior := arrivalPriors[s]
		if len(c.ArrivalPriors) > 0 {
			prior = c.ArrivalPriors[s]
		}
		f, err := newFeed(fault.FeedArrival, s, c, sch, prior, arrivalSrc[s])
		if err != nil {
			return nil, err
		}
		st.arrivals = append(st.arrivals, f)
	}
	return st, nil
}

// widthOf returns the type count of the arrival priors (0 when empty).
func widthOf(priors [][]float64) int {
	if len(priors) == 0 {
		return 0
	}
	return len(priors[0])
}

// Sample is one slot's planner-facing inputs as the feed layer delivered
// them.
type Sample struct {
	// Prices[l] and Arrivals[s][k] are the planner's inputs; stale
	// arrival estimates are already inflated by the staleness margin.
	Prices   []float64
	Arrivals [][]float64
	// Health records every feed's condition.
	Health SlotHealth
	// Distorted reports whether the planner's view may differ from the
	// oracle readings (any non-fresh tier, noise, or margin inflation) —
	// the simulator reconciles the committed plan against reality when
	// set.
	Distorted bool
}

// FetchSlot fetches every feed for the slot and applies the staleness
// margin to non-fresh arrival estimates.
func (st *Set) FetchSlot(slot int) *Sample {
	out := &Sample{
		Prices:   make([]float64, len(st.prices)),
		Arrivals: make([][]float64, len(st.arrivals)),
		Health: SlotHealth{
			Prices:   make([]Health, len(st.prices)),
			Arrivals: make([]Health, len(st.arrivals)),
		},
	}
	for l, f := range st.prices {
		v, h := f.Fetch(slot)
		out.Prices[l], out.Health.Prices[l] = v[0], h
		if h.Tier != TierFresh || h.Noisy {
			out.Distorted = true
		}
	}
	for s, f := range st.arrivals {
		row, h := f.Fetch(slot)
		if h.Tier != TierFresh {
			m := st.cfg.StaleMargin * float64(h.Staleness)
			if m > st.cfg.MaxMargin {
				m = st.cfg.MaxMargin
			}
			for k := range row {
				row[k] *= 1 + m
			}
		}
		out.Arrivals[s], out.Health.Arrivals[s] = row, h
		if h.Tier != TierFresh || h.Noisy {
			out.Distorted = true
		}
	}
	return out
}

// StaleMarginFor exposes the capped margin applied at the given
// staleness, for reports and tests.
func (st *Set) StaleMarginFor(staleness int) float64 {
	m := st.cfg.StaleMargin * float64(staleness)
	if m > st.cfg.MaxMargin {
		m = st.cfg.MaxMargin
	}
	return m
}

// slotRNG derives the per-(feed, slot) random stream: a splitmix64 hash
// of seed, feed identity and slot, so draws are independent of call
// order across feeds and identical across rebuilt Sets.
func slotRNG(seed int64, kind string, idx, slot int) *rand.Rand {
	h := uint64(seed)
	for _, b := range []byte(kind) {
		h = splitmix64(h ^ uint64(b))
	}
	h = splitmix64(h ^ uint64(uint32(idx)))
	h = splitmix64(h ^ uint64(uint32(slot)))
	return rand.New(rand.NewSource(int64(h)))
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

package feed

// Multi-step forecasting for receding-horizon planning. A rolling-horizon
// controller (internal/mpc) plans an H-slot window every slot, but only
// slot 0 has telemetry: the remaining H−1 slots must be forecast. This
// file extends each feed's estimator ladder from "stand in for one failed
// fetch" to "project h slots ahead", and bundles the per-feed projections
// into the core.ForecastSource shape the planner consumes.

// PredictAhead projects the feed i slots past its most recent Fetch for
// i in [1, h]: out[i-1] is the step-i estimate (same width as a Fetch
// reading). The estimator ladder mirrors the per-slot fallback chain,
// adapted to projection:
//
//	warmed Kalman filter (flat random-walk mean — forecast.PredictH)
//	→ last-known-good decayed toward the prior by its age at that step
//	→ prior
//
// Unlike a failed fetch — where a young LKG sample outranks the filter —
// projection prefers the filter whenever it is warm: the filter already
// consumed every good sample including the LKG one, and holding a raw
// sample flat for i slots is strictly worse than the filter's smoothed
// state. Values are clamped to the feed's floor. PredictAhead never
// mutates feed state and is safe to call concurrently with Fetch.
func (f *Feed) PredictAhead(h int) [][]float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([][]float64, h)
	useFilter := f.filters[0].Warm(f.cfg.MinObservations)
	var traj [][]float64 // traj[i] is element i's h-step estimate trajectory
	if useFilter {
		traj = make([][]float64, len(f.filters))
		for i, k := range f.filters {
			est, _, err := k.PredictH(h)
			if err != nil {
				traj[i] = nil
				useFilter = false
				break
			}
			traj[i] = est
		}
	}
	for step := 1; step <= h; step++ {
		row := make([]float64, len(f.prior))
		switch {
		case useFilter:
			for i := range row {
				row[i] = traj[i][step-1]
			}
		case f.hasLKG:
			age := f.lastSlot - f.lkgSlot + step
			decay := pow(f.cfg.Decay, age)
			for i := range row {
				row[i] = f.prior[i] + (f.lkg[i]-f.prior[i])*decay
			}
		default:
			copy(row, f.prior)
		}
		for i := range row {
			if row[i] < f.floor || row[i] != row[i] {
				row[i] = f.floor
			}
		}
		out[step-1] = row
	}
	return out
}

// pow is an integer-exponent power without math.Pow's special cases.
func pow(base float64, exp int) float64 {
	out := 1.0
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

// ForecastHorizon implements core.ForecastSource over the whole set:
// prices[i-1][l] and arrivals[i-1][s][k] estimate the slot i steps past
// the most recent FetchSlot, for i in [1, h]. It composes each feed's
// PredictAhead, so degraded feeds degrade their own projections (LKG
// decay, then prior) without poisoning healthy ones.
func (st *Set) ForecastHorizon(h int) (prices [][]float64, arrivals [][][]float64) {
	if h < 1 {
		return nil, nil
	}
	prices = make([][]float64, h)
	arrivals = make([][][]float64, h)
	for i := 0; i < h; i++ {
		prices[i] = make([]float64, len(st.prices))
		arrivals[i] = make([][]float64, len(st.arrivals))
	}
	for l, f := range st.prices {
		proj := f.PredictAhead(h)
		for i := 0; i < h; i++ {
			prices[i][l] = proj[i][0]
		}
	}
	for s, f := range st.arrivals {
		proj := f.PredictAhead(h)
		for i := 0; i < h; i++ {
			arrivals[i][s] = proj[i]
		}
	}
	return prices, arrivals
}

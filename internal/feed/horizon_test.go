package feed

import (
	"math"
	"testing"

	"profitlb/internal/fault"
)

// TestForecastHorizonShapeAndFilterPath checks the healthy path: after a
// few fresh fetches every filter is warm, so the projection is the flat
// random-walk mean at every step, shaped [h][L] / [h][S][K].
func TestForecastHorizonShapeAndFilterPath(t *testing.T) {
	st := testSet(t, Config{}, nil)
	for slot := 0; slot < 6; slot++ {
		st.FetchSlot(slot)
	}
	const H = 4
	prices, arrivals := st.ForecastHorizon(H)
	if len(prices) != H || len(arrivals) != H {
		t.Fatalf("horizon shape: %d/%d steps, want %d", len(prices), len(arrivals), H)
	}
	for i := 0; i < H; i++ {
		if len(prices[i]) != 2 || len(arrivals[i]) != 1 || len(arrivals[i][0]) != 2 {
			t.Fatalf("step %d: bad widths %d/%d", i, len(prices[i]), len(arrivals[i]))
		}
		// Random-walk projection: flat across steps, equal to step 1.
		for l := range prices[i] {
			if prices[i][l] != prices[0][l] {
				t.Fatalf("price %d not flat: step %d %g vs step 1 %g", l, i+1, prices[i][l], prices[0][l])
			}
			if prices[i][l] <= 0 {
				t.Fatalf("price %d step %d not positive: %g", l, i+1, prices[i][l])
			}
		}
	}
	// The warmed filter tracks the source scale (oscillating around 0.08).
	if prices[0][0] < 0.04 || prices[0][0] > 0.14 {
		t.Fatalf("price-0 projection %g far from source scale", prices[0][0])
	}
}

// TestPredictAheadFallsBackToLKGThenPrior drives the ladder: a feed dead
// from birth projects its prior; one with good samples but a cold filter
// (high MinObservations) decays its LKG toward the prior step by step.
func TestPredictAheadFallsBackToLKGThenPrior(t *testing.T) {
	schDark := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.FeedLoss, Feed: fault.FeedPrice, Center: 0, From: 0, To: 99},
	}}
	st := testSet(t, Config{}, schDark)
	for slot := 0; slot < 3; slot++ {
		st.FetchSlot(slot)
	}
	prices, _ := st.ForecastHorizon(3)
	for i := range prices {
		if prices[i][0] != 0.08 { // the configured prior
			t.Fatalf("dark feed step %d projects %g, want prior 0.08", i+1, prices[i][0])
		}
	}

	// Cold filter + live LKG: Decay < 1 pulls the projection toward the
	// prior as the projected age grows.
	schDie := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.FeedLoss, Feed: fault.FeedPrice, Center: 1, From: 2, To: 99},
	}}
	st2 := testSet(t, Config{MinObservations: 100, Decay: 0.5}, schDie)
	for slot := 0; slot < 3; slot++ {
		st2.FetchSlot(slot)
	}
	prices2, _ := st2.ForecastHorizon(3)
	prior := 0.11
	lkg := 0.11 + 0.03*math.Cos(1.0) // last good sample was slot 1
	for i := range prices2 {
		age := 3 - 1 - 1 + (i + 1) // lastSlot − lkgSlot + step
		want := prior + (lkg-prior)*math.Pow(0.5, float64(age))
		if math.Abs(prices2[i][1]-want) > 1e-12 {
			t.Fatalf("LKG step %d projects %g, want %g", i+1, prices2[i][1], want)
		}
	}
	// Monotone approach to the prior.
	d0 := math.Abs(prices2[0][1] - prior)
	d2 := math.Abs(prices2[2][1] - prior)
	if d2 >= d0 {
		t.Fatalf("LKG projection not decaying toward prior: |Δ| %g → %g", d0, d2)
	}
}

// TestPredictAheadDoesNotMutate pins the read-only contract: projecting
// must not change what the next Fetch or projection sees.
func TestPredictAheadDoesNotMutate(t *testing.T) {
	st := testSet(t, Config{}, nil)
	for slot := 0; slot < 4; slot++ {
		st.FetchSlot(slot)
	}
	p1, a1 := st.ForecastHorizon(5)
	p2, a2 := st.ForecastHorizon(5)
	for i := range p1 {
		for l := range p1[i] {
			if p1[i][l] != p2[i][l] {
				t.Fatalf("repeated projection differs at step %d center %d", i+1, l)
			}
		}
		for s := range a1[i] {
			for k := range a1[i][s] {
				if a1[i][s][k] != a2[i][s][k] {
					t.Fatalf("repeated projection differs at step %d fe %d type %d", i+1, s, k)
				}
			}
		}
	}
	// And the slot fetch after projections is byte-identical to a fresh set
	// driven without them.
	ref := testSet(t, Config{}, nil)
	for slot := 0; slot < 4; slot++ {
		ref.FetchSlot(slot)
	}
	a := st.FetchSlot(4)
	b := ref.FetchSlot(4)
	for l := range a.Prices {
		if a.Prices[l] != b.Prices[l] {
			t.Fatalf("projection perturbed fetch: price %d %g vs %g", l, a.Prices[l], b.Prices[l])
		}
	}
}

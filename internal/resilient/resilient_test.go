package resilient_test

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"profitlb/internal/baseline"
	"profitlb/internal/core"
	"profitlb/internal/datacenter"
	"profitlb/internal/fault"
	"profitlb/internal/market"
	"profitlb/internal/resilient"
	"profitlb/internal/sim"
	"profitlb/internal/tuf"
	"profitlb/internal/workload"
)

func testSystem() *datacenter.System {
	return &datacenter.System{
		Classes: []datacenter.RequestClass{
			{Name: "r1", TUF: tuf.MustNew([]tuf.Level{{Utility: 10, Deadline: 0.2}}), TransferCostPerMile: 0.0005},
		},
		FrontEnds: []datacenter.FrontEnd{
			{Name: "fe1", DistanceMiles: []float64{150, 1100}},
		},
		Centers: []datacenter.DataCenter{
			{Name: "dc1", Servers: 5, Capacity: 1, ServiceRate: []float64{120}, EnergyPerRequest: []float64{1.0}},
			{Name: "dc2", Servers: 5, Capacity: 1, ServiceRate: []float64{130}, EnergyPerRequest: []float64{0.9}},
		},
	}
}

func testInput(slot int) *core.Input {
	return &core.Input{
		Sys:      testSystem(),
		Arrivals: [][]float64{{200}},
		Prices:   []float64{30, 35},
		Slot:     slot,
	}
}

// misbehaver is a scriptable planner: it fails in a chosen mode, or
// delegates to a real baseline when well-behaved.
type misbehaver struct {
	name string
	mode string // "", "error", "panic", "hang", "infeasible"
	hang time.Duration
}

func (m *misbehaver) Name() string { return m.name }
func (m *misbehaver) Plan(in *core.Input) (*core.Plan, error) {
	switch m.mode {
	case "error":
		return nil, errors.New("scripted failure")
	case "panic":
		panic("scripted panic")
	case "hang":
		time.Sleep(m.hang)
		return baseline.NewBalanced().Plan(in)
	case "infeasible":
		// A plan that claims dispatch with every server off.
		p := core.NewPlan(in.Sys)
		p.Rate[0][0][0][0] = 50
		p.Phi[0][0][0] = 1
		return p, nil
	default:
		return baseline.NewBalanced().Plan(in)
	}
}

func TestTierOrderAndTaxonomy(t *testing.T) {
	// Each tier fails in a distinct mode; the chain must walk them in
	// order, classify every rejection, and commit the first healthy tier.
	cases := []struct {
		name       string
		modes      []string
		wantTier   int
		wantName   string
		wantReason []resilient.Reason
	}{
		{"primary healthy", []string{"", "error"}, 0, "t0", nil},
		{"error falls through", []string{"error", ""}, 1, "t1",
			[]resilient.Reason{resilient.ReasonError}},
		{"panic falls through", []string{"panic", ""}, 1, "t1",
			[]resilient.Reason{resilient.ReasonPanic}},
		{"hang times out", []string{"hang", ""}, 1, "t1",
			[]resilient.Reason{resilient.ReasonTimeout}},
		{"infeasible rejected", []string{"infeasible", ""}, 1, "t1",
			[]resilient.Reason{resilient.ReasonInfeasible}},
		{"full ladder timeout,error,panic,infeasible", []string{"hang", "error", "panic", "infeasible", ""}, 4, "t4",
			[]resilient.Reason{resilient.ReasonTimeout, resilient.ReasonError, resilient.ReasonPanic, resilient.ReasonInfeasible}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tiers := make([]core.Planner, len(c.modes))
			for i, mode := range c.modes {
				tiers[i] = &misbehaver{name: "t" + string(rune('0'+i)), mode: mode, hang: 200 * time.Millisecond}
			}
			chain := resilient.New(tiers...)
			chain.Timeout = 20 * time.Millisecond
			plan, err := chain.Plan(testInput(0))
			if err != nil {
				t.Fatalf("chain errored: %v", err)
			}
			if plan == nil {
				t.Fatal("no plan committed")
			}
			dec := chain.LastDecision()
			if dec.Tier != c.wantTier || dec.TierName != c.wantName {
				t.Fatalf("committed tier %d (%s), want %d (%s)", dec.Tier, dec.TierName, c.wantTier, c.wantName)
			}
			if dec.Degraded != (c.wantTier > 0) {
				t.Fatalf("Degraded = %v at tier %d", dec.Degraded, dec.Tier)
			}
			for i, want := range c.wantReason {
				if dec.Attempts[i].Reason != want {
					t.Fatalf("attempt %d reason %q, want %q", i, dec.Attempts[i].Reason, want)
				}
			}
			if got := dec.Attempts[len(dec.Attempts)-1].Reason; got != "" {
				t.Fatalf("committed attempt carries rejection %q", got)
			}
		})
	}
}

func TestAllTiersDeadEndsInShed(t *testing.T) {
	chain := resilient.New(&misbehaver{name: "t0", mode: "error"})
	chain.DisableReplay = true
	in := testInput(0)
	plan, err := chain.Plan(in)
	if err != nil {
		t.Fatalf("chain errored: %v", err)
	}
	dec := chain.LastDecision()
	if dec.TierName != "shed" || dec.Tier != 2 {
		t.Fatalf("terminal tier = %d (%s), want 2 (shed)", dec.Tier, dec.TierName)
	}
	if !dec.Degraded {
		t.Fatal("shed slot not marked degraded")
	}
	for k := range plan.Rate {
		for s := range in.Arrivals {
			if plan.ServedFrom(k, s) != 0 {
				t.Fatal("shed plan serves load")
			}
		}
	}
	if err := core.Verify(in, plan, 1e-6); err != nil {
		t.Fatalf("shed plan infeasible: %v", err)
	}
}

func TestReplayScalesToSurvivingCapacity(t *testing.T) {
	// Slot 0 commits a healthy plan; slot 1 the only tier dies and the
	// topology has lost servers, so the chain must replay the last plan
	// scaled down to the surviving fleet.
	flaky := &misbehaver{name: "t0"}
	chain := resilient.New(flaky)
	in0 := testInput(0)
	if _, err := chain.Plan(in0); err != nil {
		t.Fatal(err)
	}
	flaky.mode = "error"
	in1 := testInput(1)
	in1.Sys.Centers[0].Servers = 2 // degraded: 5 → 2
	plan, err := chain.Plan(in1)
	if err != nil {
		t.Fatalf("chain errored: %v", err)
	}
	dec := chain.LastDecision()
	if dec.TierName != "replay" {
		t.Fatalf("committed %q, want replay", dec.TierName)
	}
	if plan.ServersOn[0] > 2 {
		t.Fatalf("replay powers %d servers at the degraded center", plan.ServersOn[0])
	}
	if err := core.Verify(in1, plan, 1e-6); err != nil {
		t.Fatalf("replayed plan infeasible: %v", err)
	}
	// Replay also respects a shrunken arrival budget.
	flaky.mode = ""
	if _, err := chain.Plan(testInput(2)); err != nil {
		t.Fatal(err)
	}
	flaky.mode = "error"
	in3 := testInput(3)
	in3.Arrivals[0][0] = 40 // far below what slot 2 committed
	plan, err = chain.Plan(in3)
	if err != nil {
		t.Fatal(err)
	}
	if chain.LastDecision().TierName != "replay" {
		t.Fatalf("committed %q, want replay", chain.LastDecision().TierName)
	}
	if got := plan.ServedFrom(0, 0); got > 40+1e-9 {
		t.Fatalf("replay dispatches %g beyond the %g offered", got, 40.0)
	}
}

func TestChainDeterministic(t *testing.T) {
	// Two identical chains over identical slot sequences commit identical
	// plans and identical decisions (Elapsed aside — it is wall-clock).
	run := func() (*core.Plan, resilient.Decision) {
		chain := resilient.New(
			&misbehaver{name: "t0", mode: "error"},
			core.NewLevelSearch(),
		)
		plan, err := chain.Plan(testInput(5))
		if err != nil {
			t.Fatal(err)
		}
		return plan, chain.LastDecision()
	}
	p1, d1 := run()
	p2, d2 := run()
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("same inputs, different plans")
	}
	for i := range d1.Attempts {
		d1.Attempts[i].Elapsed = 0
		d2.Attempts[i].Elapsed = 0
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Fatalf("same inputs, different decisions:\n%+v\n%+v", d1, d2)
	}
}

func TestWrapSkipsDuplicateTiers(t *testing.T) {
	chain := resilient.Wrap(baseline.NewBalanced())
	if len(chain.Tiers) != 2 {
		t.Fatalf("balanced-primary chain has %d tiers, want 2 (balanced not duplicated)", len(chain.Tiers))
	}
	chain = resilient.Wrap(nil)
	if len(chain.Tiers) != 3 || chain.Name() != "resilient/optimized" {
		t.Fatalf("default chain: %d tiers, name %q", len(chain.Tiers), chain.Name())
	}
}

func TestEmptyAndInvalid(t *testing.T) {
	chain := resilient.New()
	if _, err := chain.Plan(testInput(0)); err == nil {
		t.Fatal("empty chain accepted")
	}
	chain = resilient.New(&misbehaver{name: "t0"})
	bad := testInput(0)
	bad.Prices = nil
	if _, err := chain.Plan(bad); err == nil {
		t.Fatal("invalid input accepted")
	}
}

// simConfig builds a 4-slot simulation over the shared test system.
func simConfig(slots int) sim.Config {
	base := workload.WorldCupLike(workload.WorldCupConfig{Seed: 3, Base: 150})
	return sim.Config{
		Sys:    testSystem(),
		Traces: []*workload.Trace{workload.ShiftTypes("fe1", base, 1, 1)},
		Prices: []*market.PriceTrace{market.Houston(), market.MountainView()},
		Slots:  slots,
	}
}

func TestFallbackTierRecordedInReport(t *testing.T) {
	// A planner-error injected at slot 2 must surface in the sim report as
	// FallbackTier 1 on exactly that slot, with the tier's name attached.
	sch := &fault.Schedule{Events: []fault.Event{{Kind: fault.PlannerError, From: 2, To: 2}}}
	cfg := simConfig(4)
	cfg.Faults = sch
	cfg.DegradeOnFailure = true
	chain := resilient.Wrap(&fault.Injector{Planner: core.NewOptimized(), Sched: sch})
	rep, err := sim.Run(cfg, chain)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Slots) != 4 {
		t.Fatalf("horizon aborted at %d slots", len(rep.Slots))
	}
	for i, sr := range rep.Slots {
		if i == 2 {
			if sr.FallbackTier != 1 || !sr.Degraded {
				t.Fatalf("slot 2: tier %d degraded %v, want 1/true", sr.FallbackTier, sr.Degraded)
			}
			if sr.FallbackName != "level-search/greedy" {
				t.Fatalf("slot 2: fallback name %q", sr.FallbackName)
			}
			continue
		}
		if sr.FallbackTier != 0 || sr.Degraded {
			t.Fatalf("slot %d: tier %d degraded %v, want primary", i, sr.FallbackTier, sr.Degraded)
		}
	}
	if got := rep.DegradedSlots(); got != 1 {
		t.Fatalf("DegradedSlots = %d", got)
	}
	if acts := rep.FallbackActivations(); acts["level-search/greedy"] != 1 {
		t.Fatalf("activations = %v", acts)
	}
}

func TestSimReproducibleUnderFaults(t *testing.T) {
	sch := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.CenterOutage, Center: 1, From: 1, To: 2},
		{Kind: fault.PlannerPanic, From: 3, To: 3},
	}}
	run := func() *sim.Report {
		cfg := simConfig(5)
		cfg.Faults = sch
		cfg.DegradeOnFailure = true
		chain := resilient.Wrap(&fault.Injector{Planner: core.NewOptimized(), Sched: sch})
		rep, err := sim.Run(cfg, chain)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical fault schedules produced different reports")
	}
}

// TestShedDoesNotPoisonReplay covers the fail → shed → recover → fail →
// replay sequence: committing the shed plan used to overwrite the
// chain's replay memory with an empty plan, so every later failure
// could only "replay" zero dispatch even though a perfectly good plan
// had been committed earlier in the horizon.
func TestShedDoesNotPoisonReplay(t *testing.T) {
	flaky := &misbehaver{name: "t0"}
	chain := resilient.New(flaky)

	// Slot 0: healthy; commits a dispatching plan the chain should remember.
	if _, err := chain.Plan(testInput(0)); err != nil {
		t.Fatal(err)
	}

	// Slot 1: the planner fails AND the fleet is so degraded that replaying
	// the slot-0 plan fails verification — the chain must shed.
	flaky.mode = "error"
	in1 := testInput(1)
	in1.Sys.Centers[0].ServiceRate[0] *= 0.01
	in1.Sys.Centers[1].ServiceRate[0] *= 0.01
	if _, err := chain.Plan(in1); err != nil {
		t.Fatal(err)
	}
	if got := chain.LastDecision().TierName; got != "shed" {
		t.Fatalf("degraded slot committed %q, want shed", got)
	}

	// Slot 2: fleet recovered, planner still down. Replay must bring back
	// the slot-0 plan — before the fix the shed commit had erased it and
	// the chain replayed emptiness here.
	plan, err := chain.Plan(testInput(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := chain.LastDecision().TierName; got != "replay" {
		t.Fatalf("recovered slot committed %q, want replay", got)
	}
	if got := plan.Served(0); got < 100 {
		t.Fatalf("replay serves %g, want the slot-0 plan's dispatch back", got)
	}

	// Slots 3–4: a healthy commit refreshes the memory, and the next
	// failure replays that newer plan.
	flaky.mode = ""
	if _, err := chain.Plan(testInput(3)); err != nil {
		t.Fatal(err)
	}
	flaky.mode = "error"
	plan, err = chain.Plan(testInput(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := chain.LastDecision().TierName; got != "replay" || plan.Served(0) < 100 {
		t.Fatalf("post-recovery failure committed %q serving %g, want a replay of the slot-3 plan", got, plan.Served(0))
	}
}

// TestChainWithParallelPlanner drives chains whose fallback tier uses
// core's Parallelism knob, concurrently from two goroutines (one chain
// per goroutine, per the single-caller contract), and checks every
// committed plan is identical to a serial chain's. Under `make race`
// this is the proof of the chain/engine concurrency contract.
func TestChainWithParallelPlanner(t *testing.T) {
	runChain := func(par int) []*core.Plan {
		prim := &misbehaver{name: "t0"}
		o := core.NewOptimized()
		o.Parallelism = par
		chain := resilient.New(prim, o)
		var plans []*core.Plan
		for slot := 0; slot < 4; slot++ {
			prim.mode = ""
			if slot%2 == 1 {
				prim.mode = "error" // odd slots fall through to the parallel tier
			}
			plan, err := chain.Plan(testInput(slot))
			if err != nil {
				t.Errorf("slot %d: %v", slot, err)
				return nil
			}
			plans = append(plans, plan)
		}
		return plans
	}
	serial := runChain(0)
	results := make([][]*core.Plan, 2)
	var wg sync.WaitGroup
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = runChain(4)
		}(g)
	}
	wg.Wait()
	for g, plans := range results {
		if !reflect.DeepEqual(plans, serial) {
			t.Fatalf("goroutine %d: parallel-tier chain diverged from the serial chain", g)
		}
	}
}

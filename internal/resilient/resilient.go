// Package resilient wraps any core.Planner in an ordered fallback chain
// with per-tier deadlines, panic recovery and feasibility gating, so that
// one failing solver cannot kill a simulation horizon. The default chain
// mirrors the degradation ladder a production dispatcher would use:
//
//	Optimized LP  →  greedy LevelSearch  →  Balanced baseline
//	→  replay of the last committed plan scaled to surviving capacity
//	→  shed everything (an empty, trivially feasible plan)
//
// Each tier is attempted in order; a tier is rejected if it times out,
// returns an error, panics, or emits a plan that fails core.Verify
// against the slot's (possibly fault-degraded) topology. The chain records
// a structured Decision for every slot — which tier fired, and why every
// earlier tier was rejected — which internal/sim surfaces per slot as
// FallbackTier / FallbackName in its reports.
package resilient

import (
	"fmt"
	"time"

	"profitlb/internal/baseline"
	"profitlb/internal/core"
	"profitlb/internal/feed"
	"profitlb/internal/obs"
)

// Reason classifies why a tier was rejected.
type Reason string

// The rejection taxonomy, in the order the chain detects them.
const (
	// ReasonTimeout: the tier did not answer within the per-tier deadline.
	ReasonTimeout Reason = "timeout"
	// ReasonError: the tier returned an error.
	ReasonError Reason = "error"
	// ReasonPanic: the tier panicked (recovered by the chain).
	ReasonPanic Reason = "panic"
	// ReasonInfeasible: the tier's plan failed core.Verify.
	ReasonInfeasible Reason = "infeasible"
	// ReasonDegradedInputs: the tier was skipped without running because
	// the slot's telemetry feeds reported unusable inputs
	// (Chain.EscalateOnDegraded) — spending the expensive optimizer on
	// guesswork buys nothing over a cheap tier.
	ReasonDegradedInputs Reason = "degraded-inputs"
)

// Attempt records one tier invocation.
type Attempt struct {
	// Planner is the tier's name ("replay" for the last-plan tier).
	Planner string
	// Reason is empty when the attempt produced the committed plan.
	Reason Reason
	// Err carries the rejection detail.
	Err string
	// Elapsed is the tier's wall-clock planning time.
	Elapsed time.Duration
}

// Decision is the chain's structured record of one slot.
type Decision struct {
	// Slot is the absolute slot index (from core.Input.Slot).
	Slot int
	// Tier indexes the tier that produced the committed plan: 0..n-1 are
	// the configured planners, n is the last-plan replay, n+1 is the
	// shed-everything plan.
	Tier int
	// TierName is the committed tier's name ("replay" or "shed" for the
	// terminal tiers).
	TierName string
	// Degraded is true whenever any tier beyond the primary fired.
	Degraded bool
	// Attempts lists every tier tried this slot, in order.
	Attempts []Attempt
}

// Chain is a resilient planner. It implements core.Planner and, like
// every stateful planner in this codebase, must be driven by exactly one
// goroutine; sim.Compare callers pass one instance per lane. Tiers with
// core's Parallelism knob enabled are fine here: their worker
// goroutines live entirely inside a single Plan call and never touch
// chain state, so the single-caller contract is unchanged (the race
// tests drive a parallel planner through a faulted chain to prove it).
type Chain struct {
	// Tiers are tried in order. Must be non-empty.
	Tiers []core.Planner
	// Timeout is the per-tier planning deadline; zero disables it. A tier
	// that overruns keeps computing in its goroutine but its eventual
	// answer is discarded.
	Timeout time.Duration
	// VerifyTol is the feasibility-gate tolerance (default 1e-6).
	VerifyTol float64
	// DisableReplay skips the last-committed-plan tier.
	DisableReplay bool
	// EscalateOnDegraded skips the primary tier on slots whose telemetry
	// feeds report unusable inputs (some feed fell all the way to its
	// prior — see feed.SlotHealth.Unusable). The slot's health arrives
	// via ObserveFeedHealth and applies to the next Plan call only.
	EscalateOnDegraded bool
	// Obs, when non-nil, streams every rejected tier (one escalation
	// event per rejection, counted by reason) and every commit (one
	// tier-commit event, counted by tier name) into the observability
	// layer. The scope only watches; decisions are identical with or
	// without it.
	Obs *obs.Scope

	last        *core.Plan
	dec         Decision
	inputHealth *feed.SlotHealth
}

// New builds a chain over the given tiers.
func New(tiers ...core.Planner) *Chain { return &Chain{Tiers: tiers} }

// Wrap builds the default degradation ladder under the given primary
// planner: primary → greedy LevelSearch → Balanced (tiers already equal to
// the primary are not duplicated). A nil primary means core.NewOptimized.
func Wrap(primary core.Planner) *Chain {
	if primary == nil {
		primary = core.NewOptimized()
	}
	ls := core.NewLevelSearch()
	ls.Strategy = core.Greedy
	tiers := []core.Planner{primary}
	for _, t := range []core.Planner{ls, baseline.NewBalanced()} {
		if t.Name() != primary.Name() {
			tiers = append(tiers, t)
		}
	}
	return New(tiers...)
}

// Name implements core.Planner.
func (c *Chain) Name() string {
	if len(c.Tiers) == 0 {
		return "resilient/empty"
	}
	return "resilient/" + c.Tiers[0].Name()
}

// LastDecision returns the structured record of the most recent slot.
func (c *Chain) LastDecision() Decision { return c.dec }

// Unwrap exposes the primary tier, so hosts can discover capabilities of
// the wrapped planner (core.AsDeferral, forecast attachment) through the
// chain.
func (c *Chain) Unwrap() core.Planner {
	if len(c.Tiers) == 0 {
		return nil
	}
	return c.Tiers[0]
}

// FallbackState implements sim.FallbackReporter.
func (c *Chain) FallbackState() (tier int, tierName string, degraded bool) {
	return c.dec.Tier, c.dec.TierName, c.dec.Degraded
}

// ObserveFeedHealth implements sim.FeedHealthObserver: the simulator
// hands over the slot's feed health before asking for the plan. The
// health is consumed by the next Plan call.
func (c *Chain) ObserveFeedHealth(h *feed.SlotHealth) { c.inputHealth = h }

// tol returns the feasibility tolerance.
func (c *Chain) tol() float64 {
	if c.VerifyTol > 0 {
		return c.VerifyTol
	}
	return 1e-6
}

// Plan implements core.Planner. It only errors on invalid input or an
// empty chain; any tier failure falls through to the next tier, ending at
// the always-feasible shed plan, so a valid slot always commits.
func (c *Chain) Plan(in *core.Input) (*core.Plan, error) {
	if len(c.Tiers) == 0 {
		return nil, fmt.Errorf("resilient: chain has no tiers")
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	dec := Decision{Slot: in.Slot, Tier: -1}
	// A deferring primary (internal/mpc) changes two things about the
	// chain: committed plans are feasibility-gated against the slot's
	// arrivals plus the backlog budget (backlog service is real work
	// beyond the arrivals), and any commit the deferral planner did not
	// produce itself — a fallback tier, a replay, the shed plan — gets a
	// force-drain pass so buckets due this slot still meet their
	// deadlines on a degraded slot.
	dp, hasDefer := core.AsDeferral(c.Tiers[0])
	vIn := in
	if hasDefer {
		vIn = core.RelaxArrivals(in, dp.BacklogBudget())
	}
	commit := func(plan *core.Plan, tier int, name string) *core.Plan {
		if hasDefer && tier > 0 {
			dp.ForceDrain(in, plan)
		}
		dec.Tier, dec.TierName, dec.Degraded = tier, name, tier > 0
		c.dec = dec
		if c.Obs.Enabled() {
			c.Obs.Counter("resilient_commits_total", obs.L("tier", name)).Add(1)
			c.Obs.Emit(obs.Event{Kind: obs.KindTierCommit, Slot: in.Slot,
				Planner: c.Name(), Tier: tier, TierName: name})
		}
		// The replay tier only learns plans that actually dispatch
		// traffic. Recording the shed plan (or any other zero-dispatch
		// commit) here would overwrite the last useful plan with
		// emptiness, leaving replay nothing to offer on the next failed
		// slot even though a perfectly serviceable plan had been
		// committed earlier in the horizon.
		if planDispatches(plan) {
			c.last = plan.Clone()
		}
		return plan
	}
	start := 0
	if c.EscalateOnDegraded && c.inputHealth != nil && c.inputHealth.Unusable() && len(c.Tiers) > 1 {
		at := Attempt{
			Planner: c.Tiers[0].Name(), Reason: ReasonDegradedInputs,
			Err: "feeds report unusable inputs; escalating past primary tier",
		}
		dec.Attempts = append(dec.Attempts, at)
		c.observeReject(in.Slot, 0, at)
		start = 1
	}
	c.inputHealth = nil
	for i := start; i < len(c.Tiers); i++ {
		p := c.Tiers[i]
		plan, at := c.attempt(p, in, vIn)
		dec.Attempts = append(dec.Attempts, at)
		if plan != nil {
			return commit(plan, i, p.Name()), nil
		}
		c.observeReject(in.Slot, i, at)
	}
	n := len(c.Tiers)
	if !c.DisableReplay {
		plan, at := c.replay(in, vIn)
		dec.Attempts = append(dec.Attempts, at)
		if plan != nil {
			return commit(plan, n, "replay"), nil
		}
		c.observeReject(in.Slot, n, at)
	}
	return commit(core.NewPlan(in.Sys), n+1, "shed"), nil
}

// observeReject publishes one rejected tier attempt as an escalation
// event plus a by-reason counter. Nil-safe; no-op without a scope.
func (c *Chain) observeReject(slot, tier int, at Attempt) {
	if !c.Obs.Enabled() {
		return
	}
	c.Obs.Counter("resilient_escalations_total", obs.L("reason", string(at.Reason))).Add(1)
	c.Obs.Emit(obs.Event{Kind: obs.KindEscalation, Slot: slot, Planner: at.Planner,
		Tier: tier, Reason: string(at.Reason), Err: at.Err,
		Values: map[string]float64{"elapsedMs": float64(at.Elapsed) / float64(time.Millisecond)}})
}

// planDispatches reports whether the plan serves any traffic at all.
func planDispatches(p *core.Plan) bool {
	for k := range p.Rate {
		for q := range p.Rate[k] {
			for s := range p.Rate[k][q] {
				for _, v := range p.Rate[k][q][s] {
					if v > 0 {
						return true
					}
				}
			}
		}
	}
	return false
}

// attempt runs one tier under the deadline with panic recovery, and
// feasibility-gates its plan against vIn (the slot input, with the
// arrival budgets relaxed by the backlog budget when the primary tier is
// a deferring planner). A nil plan means rejection.
func (c *Chain) attempt(p core.Planner, in, vIn *core.Input) (*core.Plan, Attempt) {
	start := time.Now()
	type outcome struct {
		plan     *core.Plan
		err      error
		panicked any
	}
	invoke := func() (o outcome) {
		defer func() {
			if r := recover(); r != nil {
				o.panicked = r
			}
		}()
		o.plan, o.err = p.Plan(in)
		return o
	}
	var o outcome
	if c.Timeout > 0 {
		done := make(chan outcome, 1)
		go func() { done <- invoke() }()
		select {
		case o = <-done:
		case <-time.After(c.Timeout):
			return nil, Attempt{
				Planner: p.Name(), Reason: ReasonTimeout,
				Err:     fmt.Sprintf("no plan within %s", c.Timeout),
				Elapsed: time.Since(start),
			}
		}
	} else {
		o = invoke()
	}
	at := Attempt{Planner: p.Name(), Elapsed: time.Since(start)}
	switch {
	case o.panicked != nil:
		at.Reason, at.Err = ReasonPanic, fmt.Sprint(o.panicked)
	case o.err != nil:
		at.Reason, at.Err = ReasonError, o.err.Error()
	default:
		if err := core.Verify(vIn, o.plan, c.tol()); err != nil {
			at.Reason, at.Err = ReasonInfeasible, err.Error()
			return nil, at
		}
		return o.plan, at
	}
	return nil, at
}

// replay adapts the last committed plan to the slot: powered-on counts
// are capped to the surviving fleet and the capped centers' rates shrink
// proportionally (per-server load, and therefore every delay, never
// rises), then dispatch is capped to the slot's arrival budget per
// (type, front-end). The result is feasibility-gated like any tier.
func (c *Chain) replay(in, vIn *core.Input) (*core.Plan, Attempt) {
	at := Attempt{Planner: "replay"}
	if c.last == nil {
		at.Reason, at.Err = ReasonError, "no committed plan to replay"
		return nil, at
	}
	p := c.last.Clone()
	if len(p.ServersOn) != in.Sys.L() || len(p.Rate) != in.Sys.K() {
		at.Reason, at.Err = ReasonError, "last plan has a different topology shape"
		return nil, at
	}
	for l := range p.ServersOn {
		limit := in.Sys.Centers[l].Servers
		if p.ServersOn[l] <= limit {
			continue
		}
		f := float64(limit) / float64(p.ServersOn[l])
		for k := range p.Rate {
			for q := range p.Rate[k] {
				for s := range p.Rate[k][q] {
					p.Rate[k][q][s][l] *= f
				}
			}
		}
		p.ServersOn[l] = limit
	}
	for k := range p.Rate {
		if len(p.Rate[k]) == 0 {
			continue
		}
		for s := range p.Rate[k][0] {
			committed := p.ServedFrom(k, s)
			a := in.Arrivals[s][k]
			if committed <= a || committed == 0 {
				continue
			}
			f := a / committed
			for q := range p.Rate[k] {
				for l := range p.Rate[k][q][s] {
					p.Rate[k][q][s][l] *= f
				}
			}
		}
	}
	// The replayed plan was optimized for a different slot; its objective
	// is unknown until the simulator accounts it.
	p.Objective = 0
	if err := core.Verify(vIn, p, c.tol()); err != nil {
		at.Reason, at.Err = ReasonInfeasible, err.Error()
		return nil, at
	}
	return p, at
}

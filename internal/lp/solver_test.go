package lp

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// buildTransportLP builds a small dispatch-shaped LP: route flows from
// sources to sinks under capacity (LE), demand (GE) and a balance (EQ)
// row, maximizing profit. rhsScale and priceScale perturb the rhs vector
// and objective without touching the constraint matrix, mimicking the
// planner's slot-to-slot drift.
func buildTransportLP(rhsScale, priceScale float64) *Model {
	m := NewModel()
	var x [2][3]int
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			price := priceScale * float64(10+3*i+2*j)
			x[i][j] = m.AddVariable(fmt.Sprintf("x_%d_%d", i, j), price)
		}
	}
	for i := 0; i < 2; i++ {
		terms := make([]Term, 0, 3)
		for j := 0; j < 3; j++ {
			terms = append(terms, Term{Var: x[i][j], Coef: 1})
		}
		m.AddConstraint(fmt.Sprintf("cap_%d", i), terms, LE, rhsScale*float64(40+10*i))
	}
	for j := 0; j < 3; j++ {
		terms := []Term{{Var: x[0][j], Coef: 1}, {Var: x[1][j], Coef: 1}}
		m.AddConstraint(fmt.Sprintf("dem_%d", j), terms, GE, rhsScale*float64(5+2*j))
	}
	// Balance: source 0 ships exactly twice source 1's first-lane flow.
	m.AddConstraint("bal",
		[]Term{{Var: x[0][0], Coef: 1}, {Var: x[1][0], Coef: -2}}, EQ, 0)
	return m
}

func TestSolverColdMatchesSolveOpts(t *testing.T) {
	var s Solver
	for trial := 0; trial < 4; trial++ {
		m := buildTransportLP(1+0.1*float64(trial), 1+0.05*float64(trial))
		want, wantErr := m.SolveOpts(Options{})
		got, gotErr := s.Solve(m, Options{})
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: err %v vs %v", trial, gotErr, wantErr)
		}
		got.Warm = false // Solve never sets it; normalize for DeepEqual
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Solver.Solve diverged from SolveOpts:\n%+v\n%+v", trial, got, want)
		}
		if s.LastOutcome().Path != "cold" {
			t.Fatalf("trial %d: path %q, want cold", trial, s.LastOutcome().Path)
		}
	}
}

func TestSolveWarmHotPath(t *testing.T) {
	var s Solver
	base := buildTransportLP(1, 1)
	res0, err := s.SolveWarm(base, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seed, ok := s.ExportBasis()
	if !ok {
		t.Fatal("cold optimal solve did not export a basis")
	}
	if res0.Warm {
		t.Fatal("first solve (no retained state, no seed) claimed warm")
	}
	// Re-solve a perturbed sequence: same structure, drifting rhs+costs.
	for k := 1; k <= 6; k++ {
		m := buildTransportLP(1+0.02*float64(k), 1+0.01*float64(k))
		warm, err := s.SolveWarm(m, seed, Options{})
		if err != nil {
			t.Fatalf("slot %d: %v", k, err)
		}
		out := s.LastOutcome()
		if k >= 2 && out.Path != "hot" {
			t.Fatalf("slot %d: path %q (fellBack=%v), want hot", k, out.Path, out.FellBack)
		}
		cold, err := m.SolveOpts(Options{})
		if err != nil {
			t.Fatalf("slot %d cold: %v", k, err)
		}
		if math.Abs(warm.Objective-cold.Objective) > 1e-9*(1+math.Abs(cold.Objective)) {
			t.Fatalf("slot %d: warm objective %g vs cold %g", k, warm.Objective, cold.Objective)
		}
		for i := range cold.Duals {
			if math.Abs(warm.Duals[i]-cold.Duals[i]) > 1e-9*(1+math.Abs(cold.Duals[i])) {
				t.Fatalf("slot %d: dual %d warm %g vs cold %g", k, i, warm.Duals[i], cold.Duals[i])
			}
		}
		if out.Path == "hot" && warm.Iterations >= cold.Iterations && cold.Iterations > 2 {
			t.Fatalf("slot %d: hot path spent %d pivots, cold %d — no savings",
				k, warm.Iterations, cold.Iterations)
		}
		if b, ok := s.ExportBasis(); ok {
			seed = b
		}
	}
	st := s.Stats()
	if st.HotSolves == 0 {
		t.Fatalf("no hot solves recorded: %+v", st)
	}
}

func TestSolveSeededImportMatchesCold(t *testing.T) {
	var base Solver
	m0 := buildTransportLP(1, 1)
	if _, err := base.Solve(m0, Options{}); err != nil {
		t.Fatal(err)
	}
	seed, ok := base.ExportBasis()
	if !ok {
		t.Fatal("no basis exported")
	}
	var s Solver
	m1 := buildTransportLP(1.05, 0.97)
	warm, err := s.SolveSeeded(m1, seed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.LastOutcome().Path; got != "import" {
		t.Fatalf("path %q, want import", got)
	}
	cold, err := m1.SolveOpts(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.Objective-cold.Objective) > 1e-9*(1+math.Abs(cold.Objective)) {
		t.Fatalf("import objective %g vs cold %g", warm.Objective, cold.Objective)
	}
	// Purity: the same (model, seed, opts) must reproduce bit-identically,
	// whatever the solver instance ran before.
	again, err := s.SolveSeeded(m1, seed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, again) {
		t.Fatal("SolveSeeded is not a pure function of (model, seed, opts)")
	}
}

func TestSolveSeededHostileSeedFallsBackCold(t *testing.T) {
	var s Solver
	m := buildTransportLP(1, 1)
	hostile := NewBasis(
		[]string{"no_such_var", "x_0_0", "x_0_0", "x_0_0"},
		[]string{"missing_row", "bal", "bal", "cap_0", "cap_0"},
	)
	res, err := s.SolveSeeded(m, hostile, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := m.SolveOpts(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-cold.Objective) > 1e-9*(1+math.Abs(cold.Objective)) {
		t.Fatalf("objective %g vs cold %g", res.Objective, cold.Objective)
	}
}

// TestWarmEquivalenceProperty is the randomized three-way equivalence
// suite: over random dispatch-shaped LP sequences with perturbed rhs and
// costs, the dense warm chain and the sparse revised-simplex chain must
// both match the dense cold solve's objective and duals within 1e-9
// (relative), with zero audit failures. Runs under -race via
// `make verify-lp`.
func TestWarmEquivalenceProperty(t *testing.T) {
	spOpts := Options{Sparse: true, SparseMinRows: 1}
	for seedIdx, rngSeed := range []int64{1, 7, 42, 1337} {
		rng := rand.New(rand.NewSource(rngSeed))
		var sDense, sSparse Solver
		var seedDense, seedSparse *Basis
		sawSparse := false
		for slot := 0; slot < 12; slot++ {
			rhsScale := 0.8 + 0.4*rng.Float64()
			priceScale := 0.9 + 0.2*rng.Float64()
			m := buildTransportLP(rhsScale, priceScale)
			cold, coldErr := m.SolveOpts(Options{})
			check := func(name string, s *Solver, res *Result, err error) {
				t.Helper()
				if (err == nil) != (coldErr == nil) {
					t.Fatalf("rng %d slot %d: %s err %v, cold err %v", seedIdx, slot, name, err, coldErr)
				}
				if err != nil {
					return
				}
				if math.Abs(res.Objective-cold.Objective) > 1e-9*(1+math.Abs(cold.Objective)) {
					t.Fatalf("rng %d slot %d (%s %s): %g vs cold %g",
						seedIdx, slot, name, s.LastOutcome().Path, res.Objective, cold.Objective)
				}
				for i := range cold.Duals {
					if math.Abs(res.Duals[i]-cold.Duals[i]) > 1e-9*(1+math.Abs(cold.Duals[i])) {
						t.Fatalf("rng %d slot %d: %s dual %d %g vs cold %g",
							seedIdx, slot, name, i, res.Duals[i], cold.Duals[i])
					}
				}
				if err := m.CheckFeasible(res.X, 1e-6); err != nil {
					t.Fatalf("rng %d slot %d: %s solution infeasible: %v", seedIdx, slot, name, err)
				}
			}
			warm, err := sDense.SolveWarm(m, seedDense, Options{})
			check("dense-warm", &sDense, warm, err)
			sp, spErr := sSparse.SolveWarm(m, seedSparse, spOpts)
			check("sparse", &sSparse, sp, spErr)
			if sSparse.LastOutcome().Sparse {
				sawSparse = true
			}
			if b, ok := sDense.ExportBasis(); ok {
				seedDense = b
			}
			if b, ok := sSparse.ExportBasis(); ok {
				seedSparse = b
			}
		}
		if !sawSparse {
			t.Fatalf("rng %d: the sparse chain never took a sparse path", seedIdx)
		}
	}
}

// TestDualIterateRepairsRHS exercises the dual simplex in isolation: an
// optimal warm tableau whose rhs is then tightened must be repaired by
// dual pivots alone, without refactorization or artificials.
func TestDualIterateRepairsRHS(t *testing.T) {
	var s Solver
	m0 := buildTransportLP(1, 1)
	if _, err := s.Solve(m0, Options{}); err != nil {
		t.Fatal(err)
	}
	seed, _ := s.ExportBasis()
	if _, err := s.SolveSeeded(m0, seed, Options{}); err != nil {
		t.Fatal(err) // arms a warm tableau inside the solver
	}
	// Tighten capacities by 20%: the retained basis becomes primal
	// infeasible and only the dual phase can repair it.
	m1 := buildTransportLP(0.8, 1)
	res, err := s.SolveWarm(m1, seed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := m1.SolveOpts(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-cold.Objective) > 1e-9*(1+math.Abs(cold.Objective)) {
		t.Fatalf("objective %g vs cold %g", res.Objective, cold.Objective)
	}
}

// TestIterationLimitNotConflated is the regression for the exhaustion
// audit: running out of pivot budget must surface as ErrIterationLimit —
// never as a fake Infeasible or Unbounded certificate — so the resilient
// chain escalates instead of silently shedding commodities.
func TestIterationLimitNotConflated(t *testing.T) {
	// A GE model forces phase 1; MaxIterations=1 exhausts it mid-phase.
	m := buildTransportLP(1, 1)
	res, err := m.SolveOpts(Options{MaxIterations: 1})
	if err != ErrIterationLimit {
		t.Fatalf("err = %v, want ErrIterationLimit", err)
	}
	if res.Status != IterationLimit {
		t.Fatalf("status = %v, want IterationLimit", res.Status)
	}
}

// TestPhase1NumericalBreakdownIsIterationLimit pins the phase-1 status
// mapping: the phase-1 objective is bounded below by zero, so a "no
// leaving row" exit there is numerical breakdown on a degenerate tableau,
// not an unboundedness certificate. With a coarse tolerance every
// eligible pivot element (0.4) sits below tol while the priced-out
// reduced cost (-0.8) stays above it, reproducing the breakdown exactly;
// the solver must answer ErrIterationLimit, not ErrUnbounded — an
// Unbounded (or Infeasible) verdict here would make internal/resilient
// drop commodities off a false certificate.
func TestPhase1NumericalBreakdownIsIterationLimit(t *testing.T) {
	m := NewModel()
	x := m.AddVariable("x", 0)
	m.AddConstraint("r0", []Term{{Var: x, Coef: 0.4}}, GE, 1)
	m.AddConstraint("r1", []Term{{Var: x, Coef: 0.4}}, GE, 1)
	res, err := m.SolveOpts(Options{Tol: 0.6})
	if err != ErrIterationLimit {
		t.Fatalf("err = %v (status %v), want ErrIterationLimit", err, res.Status)
	}
	if res.Status != IterationLimit {
		t.Fatalf("status = %v, want IterationLimit", res.Status)
	}
}

// TestGenuineCertificatesSurvive makes sure the exhaustion audit did not
// weaken real certificates.
func TestGenuineCertificatesSurvive(t *testing.T) {
	inf := NewModel()
	x := inf.AddVariable("x", 1)
	inf.AddConstraint("lo", []Term{{Var: x, Coef: 1}}, GE, 2)
	inf.AddConstraint("hi", []Term{{Var: x, Coef: 1}}, LE, 1)
	if _, err := inf.SolveOpts(Options{}); err != ErrInfeasible {
		t.Fatalf("infeasible model: err = %v", err)
	}
	unb := NewModel()
	y := unb.AddVariable("y", 1)
	unb.AddConstraint("lo", []Term{{Var: y, Coef: 1}}, GE, 1)
	if _, err := unb.SolveOpts(Options{}); err != ErrUnbounded {
		t.Fatalf("unbounded model: err = %v", err)
	}
}

func TestExportBasisRoundTrip(t *testing.T) {
	var s Solver
	m := buildTransportLP(1, 1)
	if _, err := s.Solve(m, Options{}); err != nil {
		t.Fatal(err)
	}
	seed, ok := s.ExportBasis()
	if !ok {
		t.Fatal("export failed")
	}
	if seed.Size() != m.NumConstraints() {
		t.Fatalf("basis size %d, want %d", seed.Size(), m.NumConstraints())
	}
	var s2 Solver
	res, err := s2.SolveSeeded(m, seed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.LastOutcome().Path != "import" {
		t.Fatalf("path %q, want import", s2.LastOutcome().Path)
	}
	// Re-importing the optimal basis of the same model needs no pivots
	// beyond the crash itself: at most one pass of refactorization.
	if res.Iterations > m.NumConstraints() {
		t.Fatalf("round-trip import took %d pivots for %d rows", res.Iterations, m.NumConstraints())
	}
}

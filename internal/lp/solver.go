package lp

import "math"

// Basis identifies an optimal basis by name: the basic structural
// variables plus the rows whose slack/surplus variable is basic. Naming
// (rather than indexing) makes a basis portable across related models —
// the planner's memoized subset-LPs share variable and row names, so a
// basis exported from one solve seeds a neighboring solve even when the
// column order differs. A Basis is immutable once built.
type Basis struct {
	vars      []string
	slackRows []string
}

// NewBasis builds a basis from explicit name lists. It is exposed for
// tests and fuzzing; production code obtains bases from ExportBasis.
func NewBasis(vars, slackRows []string) *Basis {
	b := &Basis{
		vars:      make([]string, len(vars)),
		slackRows: make([]string, len(slackRows)),
	}
	copy(b.vars, vars)
	copy(b.slackRows, slackRows)
	return b
}

// Size returns the number of named basis members.
func (b *Basis) Size() int {
	if b == nil {
		return 0
	}
	return len(b.vars) + len(b.slackRows)
}

// Outcome describes how the most recent solve on a Solver ran.
type Outcome struct {
	// Path is "hot" (retained tableau or factors, rhs refresh), "import"
	// (seed basis crashed into a fresh warm state) or "cold" (two-phase
	// simplex).
	Path string
	// Sparse reports that the warm path ran the sparse revised simplex
	// rather than the dense warm tableau.
	Sparse bool
	// FellBack reports that a warm attempt was abandoned for the cold
	// path (singular import, infeasible repair, drift guard, limits).
	FellBack bool
	// WarmPivots and ColdPivots count simplex pivots spent on the
	// respective path during this solve.
	WarmPivots int
	ColdPivots int
	// AbandonedPivots counts pivots spent on warm attempts that were
	// abandoned mid-way during this solve; without it the cost of a
	// fallback would vanish from the accounting.
	AbandonedPivots int
}

// SolverStats accumulates per-path counters across the life of a Solver.
type SolverStats struct {
	HotSolves    int64
	ImportSolves int64
	ColdSolves   int64
	SparseSolves int64 // warm solves answered by the sparse revised simplex
	Fallbacks    int64 // warm attempts abandoned for the cold path
	WarmPivots   int64
	ColdPivots   int64
	// AbandonedPivots counts pivots spent on abandoned warm attempts —
	// work done and thrown away, invisible to WarmPivots/ColdPivots.
	AbandonedPivots int64
}

// Solver runs successive LP solves while retaining the dense tableau
// arenas (allocation reuse) and, via SolveWarm, the factorized final
// tableau of the previous solve (hot re-solves). See DESIGN.md §12.
//
// A Solver is not safe for concurrent use; the planner keeps one hot
// solver for its sequential baseline chain and a pool for workers.
type Solver struct {
	coldAr arena
	warmAr arena
	ws     retained
	sws    retainedSparse
	last   lastSolve
	out    Outcome
	stats  SolverStats
}

// retained is the hot state kept between SolveWarm calls: the final warm
// tableau of the previous solve, whose marker block holds B⁻¹.
type retained struct {
	t     *tableau
	valid bool
	uses  int
}

// retainedSparse is the sparse counterpart: the revised-simplex state of
// the previous solve, whose LU factors plus eta file play the marker
// block's role.
type retainedSparse struct {
	ss    *sparseSolve
	valid bool
	uses  int
}

// lastSolve records the final state of the most recent solve for
// ExportBasis; exactly one of t (dense) and ss (sparse) is set.
type lastSolve struct {
	t  *tableau
	ss *sparseSolve
	ok bool
}

// maxHotUses bounds how many consecutive hot re-solves may reuse one
// tableau before forcing a fresh import/refactorization, so floating-point
// drift cannot accumulate without bound.
const maxHotUses = 200

// Solve runs the cold two-phase simplex, reusing the solver's arena. The
// result is bit-identical to (*Model).SolveOpts.
func (s *Solver) Solve(m *Model, opts Options) (*Result, error) {
	s.begin()
	s.out.Path = "cold"
	return s.solveCold(m, opts)
}

// SolveWarm solves m using every warm path available, in order: a hot
// re-solve on the retained tableau when the constraint matrix is
// unchanged (only rhs and objective may differ — the cross-slot case), an
// import of the seed basis otherwise, and the cold two-phase path as the
// correctness anchor whenever a warm attempt fails. A warm result is
// accepted only at status Optimal and after the model re-verifies the
// solution, so correctness never depends on the warm path.
//
// With opts.Sparse set and the model at or above the row threshold, the
// warm paths run the sparse revised simplex instead of the dense warm
// tableau (see solveWarmSparse); the cold anchor stays dense either way.
func (s *Solver) SolveWarm(m *Model, seed *Basis, opts Options) (*Result, error) {
	s.begin()
	if opts.sparseEligible(m) {
		return s.solveWarmSparse(m, seed, opts)
	}
	s.sws = retainedSparse{}
	attempted := false
	if s.ws.valid && s.ws.t != nil && sameStructure(s.ws.t.m, m) {
		attempted = true
		if res := s.hotSolve(m, opts); res != nil {
			s.out.Path = "hot"
			s.stats.HotSolves++
			return res, nil
		}
	}
	if seed.Size() > 0 {
		attempted = true
		if res := s.importSolve(m, seed, opts); res != nil {
			s.out.Path = "import"
			s.stats.ImportSolves++
			return res, nil
		}
	}
	if attempted {
		s.out.FellBack = true
		s.stats.Fallbacks++
	}
	s.out.Path = "cold"
	return s.solveCold(m, opts)
}

// SolveSeeded solves m from an optional seed basis without consulting any
// cross-call retained state, so the result is a pure function of
// (model, seed, opts). The planner's parallel workers rely on that purity
// for worker-count-invariant plans (DESIGN.md §7): any worker solving the
// same subset from the same frozen seed produces the identical result.
func (s *Solver) SolveSeeded(m *Model, seed *Basis, opts Options) (*Result, error) {
	s.begin()
	s.ws = retained{} // stateless by contract
	s.sws = retainedSparse{}
	if opts.sparseEligible(m) {
		if res := s.importSparse(m, seed, opts); res != nil {
			s.sws = retainedSparse{} // drop state armed by importSparse
			s.out.Path = "import"
			s.out.Sparse = true
			s.stats.ImportSolves++
			s.stats.SparseSolves++
			return res, nil
		}
		s.out.FellBack = true
		s.stats.Fallbacks++
		s.out.Path = "cold"
		return s.solveCold(m, opts)
	}
	if seed.Size() > 0 {
		if res := s.importSolve(m, seed, opts); res != nil {
			s.ws = retained{} // drop state armed by importSolve
			s.out.Path = "import"
			s.stats.ImportSolves++
			return res, nil
		}
		s.out.FellBack = true
		s.stats.Fallbacks++
	}
	s.out.Path = "cold"
	return s.solveCold(m, opts)
}

// LastOutcome reports how the most recent solve ran.
func (s *Solver) LastOutcome() Outcome { return s.out }

// Stats returns the cumulative per-path counters.
func (s *Solver) Stats() SolverStats { return s.stats }

// ExportBasis returns the final basis of the immediately preceding solve
// on this Solver, by name. It fails when that solve did not end Optimal
// or when an artificial variable is still basic (degenerate redundant
// rows), in which case the caller keeps its previous seed. The basis is
// only meaningful until the next solve on this Solver.
func (s *Solver) ExportBasis() (*Basis, bool) {
	if !s.last.ok {
		return nil, false
	}
	if ss := s.last.ss; ss != nil {
		// Sparse bases contain only structural and slack columns by
		// construction, so they are always representable.
		b := &Basis{}
		for _, c := range ss.basis {
			if c < ss.n {
				b.vars = append(b.vars, ss.m.names[c])
			} else {
				b.slackRows = append(b.slackRows, ss.m.rows[ss.slackRow[c-ss.n]].name)
			}
		}
		return b, true
	}
	if s.last.t == nil {
		return nil, false
	}
	t := s.last.t
	m := t.m
	slackOwner := make([]int, t.artStart-t.n)
	for i := range slackOwner {
		slackOwner[i] = -1
	}
	for r, c := range t.rowSlack {
		if c >= 0 {
			slackOwner[c-t.n] = r
		}
	}
	b := &Basis{}
	for _, c := range t.basis {
		switch {
		case c >= 0 && c < t.n:
			b.vars = append(b.vars, m.names[c])
		case c >= t.n && c < t.artStart:
			r := slackOwner[c-t.n]
			if r < 0 {
				return nil, false
			}
			b.slackRows = append(b.slackRows, m.rows[r].name)
		default:
			// Artificial (cold path) or unassigned: not representable.
			return nil, false
		}
	}
	return b, true
}

func (s *Solver) begin() {
	s.out = Outcome{}
	s.last = lastSolve{}
}

func (s *Solver) setLast(t *tableau, ok bool) { s.last = lastSolve{t: t, ok: ok} }

func (s *Solver) setLastSparse(ss *sparseSolve) { s.last = lastSolve{ss: ss, ok: true} }

// abandonDense records the pivots a failed dense warm attempt burned and
// drops the retained tableau.
func (s *Solver) abandonDense(t *tableau) {
	s.out.AbandonedPivots += t.iters
	s.stats.AbandonedPivots += int64(t.iters)
	s.ws = retained{}
}

// abandonSparse records the pivots a failed sparse warm attempt burned
// and drops the retained factors.
func (s *Solver) abandonSparse(ss *sparseSolve) {
	s.out.AbandonedPivots += ss.iters
	s.stats.AbandonedPivots += int64(ss.iters)
	s.sws = retainedSparse{}
}

func (s *Solver) solveCold(m *Model, opts Options) (*Result, error) {
	t := newTableauIn(m, opts, &s.coldAr)
	st := t.run()
	s.stats.ColdSolves++
	s.stats.ColdPivots += int64(t.iters)
	s.out.ColdPivots = t.iters
	s.setLast(t, st == Optimal)
	return t.result(st)
}

// hotSolve re-solves on the retained tableau: the marker block (B⁻¹)
// turns the new rhs into the new basic solution in O(rows²) with no
// refactorization; the dual simplex under the previous (still
// dual-feasible) cost row repairs primal feasibility; then the new costs
// are priced in and primal pivots finish. Any non-Optimal exit
// invalidates the retained state and reports failure (nil) so the caller
// falls back.
func (s *Solver) hotSolve(m *Model, opts Options) *Result {
	if s.ws.uses >= maxHotUses {
		s.ws = retained{}
		return nil
	}
	t := s.ws.t
	t.m = m
	t.opts = opts.withDefaults(t.a.Rows, t.n)
	t.iters = 0
	t.refreshRHS()
	if st := t.dualIterate(); st != Optimal {
		s.abandonDense(t)
		return nil
	}
	t.setPhase2Z()
	if st := t.iterate(); st != Optimal {
		s.abandonDense(t)
		return nil
	}
	res := s.acceptWarm(t)
	if res == nil {
		s.abandonDense(t)
		return nil
	}
	s.ws.uses++
	return res
}

// importSolve crashes the seed basis into a fresh warm tableau. A basis
// imported into a different model is generally neither primal nor dual
// feasible; primal-feasible starts finish with primal pivots, and
// primal-infeasible starts are repaired by a zero-cost dual phase (the
// all-zero reduced-cost row is trivially dual feasible) before the true
// costs are priced in.
func (s *Solver) importSolve(m *Model, seed *Basis, opts Options) *Result {
	s.ws = retained{} // the build below reuses the retained tableau's arena
	t := newWarmTableauIn(m, opts, &s.warmAr)
	if !t.importBasis(seed) {
		return nil
	}
	if st := t.dualIterate(); st != Optimal {
		s.abandonDense(t)
		return nil
	}
	t.setPhase2Z()
	if st := t.iterate(); st != Optimal {
		s.abandonDense(t)
		return nil
	}
	res := s.acceptWarm(t)
	if res == nil {
		s.abandonDense(t)
		return nil
	}
	s.ws = retained{t: t, valid: true}
	return res
}

// warmFeasFactor scales the solver tolerance (per unit of rhs magnitude)
// for the post-solve feasibility audits (warm results and cold Optimal
// claims alike).
const warmFeasFactor = 100

// auditTol is the rhs-scaled feasibility tolerance shared by the warm
// accept gates and the cold-path Optimal audit.
func auditTol(m *Model, tol float64) float64 {
	scale := 1.0
	for i := range m.rows {
		if a := math.Abs(m.rows[i].rhs); a > scale {
			scale = a
		}
	}
	return tol * warmFeasFactor * scale
}

// acceptWarm audits a warm tableau that claims optimality. The solution
// must re-verify against the model within a tolerance proportional to the
// rhs scale; numerical drift beyond it rejects the warm result so the
// cold path re-solves from scratch.
func (s *Solver) acceptWarm(t *tableau) *Result {
	x := t.extract()
	if t.m.CheckFeasible(x, auditTol(t.m, t.opts.Tol)) != nil {
		return nil
	}
	s.out.WarmPivots = t.iters
	s.stats.WarmPivots += int64(t.iters)
	s.setLast(t, true)
	return &Result{
		Status:     Optimal,
		Objective:  t.m.ObjectiveValue(x),
		X:          x,
		Duals:      t.duals(),
		Iterations: t.iters,
		Warm:       true,
	}
}

// sameStructure reports whether two models share variable names, senses
// and constraint coefficients exactly — the condition under which a
// retained tableau's marker block (B⁻¹) applies to the new model. Only
// the rhs vector and objective coefficients may differ.
func sameStructure(a, b *Model) bool {
	if a == nil || b == nil || a.minimize != b.minimize ||
		len(a.names) != len(b.names) || len(a.rows) != len(b.rows) {
		return false
	}
	for i, n := range a.names {
		if b.names[i] != n {
			return false
		}
	}
	for i := range a.rows {
		ra, rb := &a.rows[i], &b.rows[i]
		if ra.sense != rb.sense || len(ra.terms) != len(rb.terms) {
			return false
		}
		for j, term := range ra.terms {
			if rb.terms[j] != term {
				return false
			}
		}
	}
	return true
}

// newWarmTableauIn builds the warm-layout tableau: rows kept unflipped,
// one slack/surplus column per inequality row, no artificials, and a full
// identity "marker" block — one zero-cost column per row that is never
// eligible to enter the basis. After any pivot sequence the marker block
// holds B⁻¹, which powers the hot rhs refresh and uniform dual recovery
// (y_r = dir·z[marker_r]).
func newWarmTableauIn(m *Model, opts Options, ar *arena) *tableau {
	rows := len(m.rows)
	n := len(m.names)
	t := &tableau{m: m, n: n, ar: ar}
	t.opts = opts.withDefaults(rows, n)
	slacks := 0
	for i := range m.rows {
		if m.rows[i].sense != EQ {
			slacks++
		}
	}
	t.artStart = n + slacks
	t.colLimit = t.artStart
	t.total = t.artStart + rows
	t.alloc(rows)
	t.z = t.newZ()
	slackCol := n
	for i := range m.rows {
		row := &m.rows[i]
		r := t.a.Row(i)
		t.rowSlack[i] = -1
		for _, term := range row.terms {
			r[term.Var] += term.Coef
		}
		r[t.total] = row.rhs
		switch row.sense {
		case LE:
			r[slackCol] = 1
			t.rowSlack[i] = slackCol
			slackCol++
		case GE:
			r[slackCol] = -1
			t.rowSlack[i] = slackCol
			slackCol++
		}
		r[t.artStart+i] = 1
		t.dualCol[i], t.dualSign[i] = t.artStart+i, 1
		t.basis[i] = -1 // assigned by importBasis
	}
	return t
}

// importPivTol is the minimum pivot magnitude accepted while crashing a
// named basis; anything smaller is treated as singular.
const importPivTol = 1e-7

// importBasis pivots the named basis members into the warm tableau.
// Unknown names and columns that turn out linearly dependent are dropped;
// rows left uncovered fall back to their own slack. It returns false —
// leaving the caller to go cold — when a row cannot be covered at all
// (uncovered EQ row, or a singular slack pivot).
func (t *tableau) importBasis(b *Basis) bool {
	m := t.m
	varIdx := make(map[string]int, len(m.names))
	for i, name := range m.names {
		varIdx[name] = i
	}
	rowIdx := make(map[string]int, len(m.rows))
	for i := range m.rows {
		rowIdx[m.rows[i].name] = i
	}
	cols := make([]int, 0, b.Size())
	for _, name := range b.vars {
		if c, ok := varIdx[name]; ok {
			cols = append(cols, c)
		}
	}
	for _, name := range b.slackRows {
		if r, ok := rowIdx[name]; ok {
			if c := t.rowSlack[r]; c >= 0 {
				cols = append(cols, c)
			}
		}
	}
	for _, c := range cols {
		best, bestAbs := -1, importPivTol
		for r := 0; r < t.a.Rows; r++ {
			if t.basis[r] >= 0 {
				continue
			}
			if a := math.Abs(t.a.At(r, c)); a > bestAbs {
				best, bestAbs = r, a
			}
		}
		if best < 0 {
			continue // dependent on columns already imported: drop it
		}
		t.pivot(best, c)
	}
	for r := 0; r < t.a.Rows; r++ {
		if t.basis[r] >= 0 {
			continue
		}
		c := t.rowSlack[r]
		if c < 0 || math.Abs(t.a.At(r, c)) <= importPivTol {
			return false
		}
		t.pivot(r, c)
	}
	return true
}

// refreshRHS recomputes the basic solution for the model's current rhs
// vector through the marker block: rhs column ← B⁻¹·b. O(rows²), no
// refactorization — this is the hot path's whole trick.
func (t *tableau) refreshRHS() {
	rows := t.a.Rows
	var scratch []float64
	if t.ar != nil {
		t.ar.rhs = growFloats(t.ar.rhs, rows)
		scratch = t.ar.rhs
	} else {
		scratch = make([]float64, rows)
	}
	for i := 0; i < rows; i++ {
		r := t.a.Row(i)
		var sum float64
		for j := 0; j < rows; j++ {
			sum += r[t.artStart+j] * t.m.rows[j].rhs
		}
		scratch[i] = sum
	}
	for i := 0; i < rows; i++ {
		t.a.Set(i, t.total, scratch[i])
	}
}

// dualIterate runs the dual simplex on the current reduced-cost row,
// which must be dual feasible (z ≥ 0 over enterable columns): it drives
// negative basic values out while preserving dual feasibility — exactly
// the repair needed after an rhs perturbation. Returns Optimal when the
// rhs is non-negative, Infeasible when a negative row has no eligible
// entering column (a primal infeasibility certificate, which callers
// re-confirm via the cold path), or IterationLimit.
//
// Like the primal iterate, it starts on Dantzig-style pricing (most
// negative basic value, minimum ratio) and switches to Bland's
// smallest-index rule — smallest basic column among the violating rows,
// smallest entering column among the ratio minimizers — after stalling,
// so a dual-degenerate rhs perturbation cannot cycle the hot path into
// its MaxIterations budget. The objective value in the z row's rhs cell
// is the progress measure: dual pivots only ever decrease it, and a long
// run without decrease is the cycling signature.
func (t *tableau) dualIterate() Status {
	tol := t.opts.Tol
	rhs := t.total
	bland := t.opts.Bland
	stall := 0
	lastObj := math.Inf(1)
	for {
		if t.iters >= t.opts.MaxIterations {
			return IterationLimit
		}
		leave := -1
		if bland {
			bestCol := t.total + 1
			for r := 0; r < t.a.Rows; r++ {
				if t.a.At(r, rhs) < -tol && t.basis[r] < bestCol {
					leave, bestCol = r, t.basis[r]
				}
			}
		} else {
			minVal := -tol
			for r := 0; r < t.a.Rows; r++ {
				if v := t.a.At(r, rhs); v < minVal {
					leave, minVal = r, v
				}
			}
		}
		if leave < 0 {
			return Optimal
		}
		row := t.a.Row(leave)
		enter, bestRatio := -1, math.Inf(1)
		for c := 0; c < t.colLimit; c++ {
			a := row[c]
			if a >= -tol {
				continue
			}
			if ratio := t.z[c] / -a; ratio < bestRatio {
				enter, bestRatio = c, ratio
			}
		}
		if enter >= 0 && bland {
			// Smallest-index tie-break among the ratio minimizers.
			edge := bestRatio + tol*(1+math.Abs(bestRatio))
			for c := 0; c < enter; c++ {
				a := row[c]
				if a >= -tol {
					continue
				}
				if t.z[c]/-a <= edge {
					enter = c
					break
				}
			}
		}
		if enter < 0 {
			return Infeasible
		}
		t.pivot(leave, enter)
		t.iters++
		obj := t.z[t.total]
		if obj <= lastObj-tol {
			stall = 0
			lastObj = obj
		} else {
			stall++
			if stall > 64 {
				bland = true
			}
		}
	}
}

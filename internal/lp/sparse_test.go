package lp

import (
	"math"
	"reflect"
	"testing"
)

// sparseTestOpts forces the sparse revised simplex on for any model size.
func sparseTestOpts() Options { return Options{Sparse: true, SparseMinRows: 1} }

// buildInequalityLP builds a small profit-style LP with only LE/GE rows —
// no EQ row — so the sparse all-slack crash basis always exists and even a
// seedless first solve can take the sparse import path. The GE row makes
// the all-slack start primal infeasible, exercising the zero-cost dual
// repair phase.
func buildInequalityLP(scale float64) *Model {
	m := NewModel()
	x := m.AddVariable("x", 3)
	y := m.AddVariable("y", 2)
	z := m.AddVariable("z", 4)
	w := m.AddVariable("w", 1)
	m.AddConstraint("cap_xy", []Term{{x, 1}, {y, 1}}, LE, 10*scale)
	m.AddConstraint("cap_yz", []Term{{y, 1}, {z, 1}}, LE, 8*scale)
	m.AddConstraint("cap_zw", []Term{{z, 1}, {w, 2}}, LE, 6*scale)
	m.AddConstraint("floor_xz", []Term{{x, 1}, {z, 1}}, GE, 2*scale)
	m.AddConstraint("floor_w", []Term{{w, 1}}, GE, 0.5*scale)
	return m
}

func requireClose(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		t.Fatalf("%s: got %g, want %g", what, got, want)
	}
}

// TestSparseWarmChainMatchesCold runs the canonical slot chain on the
// transport LP with the sparse path forced on. The transport LP has an EQ
// row, so the seedless slot 0 cannot slack-crash and must fall back cold;
// slot 1 imports the exported basis sparsely; later slots run hot on the
// retained factors. Every slot must match the cold reference.
func TestSparseWarmChainMatchesCold(t *testing.T) {
	var s Solver
	var seed *Basis
	opts := sparseTestOpts()
	wantPath := []string{"cold", "import", "hot", "hot", "hot", "hot"}
	for slot, path := range wantPath {
		scale := 1 + 0.05*float64(slot)
		m := buildTransportLP(scale, 1/scale)
		res, err := s.SolveWarm(m, seed, opts)
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		out := s.LastOutcome()
		if out.Path != path {
			t.Fatalf("slot %d: path %q, want %q", slot, out.Path, path)
		}
		if wantSparse := path != "cold"; out.Sparse != wantSparse {
			t.Fatalf("slot %d (%s): Sparse=%v, want %v", slot, path, out.Sparse, wantSparse)
		}
		cold, err := m.SolveOpts(Options{})
		if err != nil {
			t.Fatalf("slot %d cold: %v", slot, err)
		}
		requireClose(t, "objective", res.Objective, cold.Objective)
		for i := range cold.Duals {
			requireClose(t, "dual", res.Duals[i], cold.Duals[i])
		}
		if err := m.CheckFeasible(res.X, 1e-6); err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		if b, ok := s.ExportBasis(); ok {
			seed = b
		} else {
			t.Fatalf("slot %d: basis not exportable", slot)
		}
	}
	st := s.Stats()
	if st.SparseSolves != 5 || st.HotSolves != 4 || st.ImportSolves != 1 || st.ColdSolves != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestSparseEmptySeedImportsOnInequalityLP verifies the all-slack crash:
// with no EQ rows a seedless sparse solve takes the import path directly
// — no dense tableau is ever built for the LP.
func TestSparseEmptySeedImportsOnInequalityLP(t *testing.T) {
	var s Solver
	m := buildInequalityLP(1)
	res, err := s.SolveWarm(m, nil, sparseTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := s.LastOutcome()
	if out.Path != "import" || !out.Sparse || out.FellBack {
		t.Fatalf("outcome %+v, want sparse import without fallback", out)
	}
	cold, err := m.SolveOpts(Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireClose(t, "objective", res.Objective, cold.Objective)
	for i := range cold.Duals {
		requireClose(t, "dual", res.Duals[i], cold.Duals[i])
	}
	// And the follow-up slot goes hot on the retained factors.
	m2 := buildInequalityLP(1.1)
	res2, err := s.SolveWarm(m2, nil, sparseTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	if out := s.LastOutcome(); out.Path != "hot" || !out.Sparse {
		t.Fatalf("slot 1 outcome %+v, want sparse hot", out)
	}
	cold2, err := m2.SolveOpts(Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireClose(t, "objective", res2.Objective, cold2.Objective)
}

// TestSparseSolveSeededPure verifies the worker-purity contract on the
// sparse path: SolveSeeded must be a pure function of (model, seed, opts),
// unaffected by whatever retained state the solver accumulated before.
func TestSparseSolveSeededPure(t *testing.T) {
	opts := sparseTestOpts()
	m := buildInequalityLP(1)

	var fresh Solver
	want, err := fresh.SolveSeeded(buildInequalityLP(1), nil, opts)
	if err != nil {
		t.Fatal(err)
	}

	var dirty Solver
	for i := 0; i < 3; i++ { // accumulate sparse hot state first
		if _, err := dirty.SolveWarm(buildInequalityLP(1+0.1*float64(i)), nil, opts); err != nil {
			t.Fatal(err)
		}
	}
	got, err := dirty.SolveSeeded(m, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("SolveSeeded not pure on sparse path:\nfresh %+v\ndirty %+v", want, got)
	}
	if out := dirty.LastOutcome(); out.Path != "import" || !out.Sparse {
		t.Fatalf("outcome %+v, want sparse import", out)
	}
}

// TestSparseExportBasisRoundTrip re-imports a sparse solve's own exported
// basis and expects it to verify optimality almost immediately.
func TestSparseExportBasisRoundTrip(t *testing.T) {
	opts := sparseTestOpts()
	var s Solver
	m := buildInequalityLP(1)
	res, err := s.SolveWarm(m, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := s.ExportBasis()
	if !ok {
		t.Fatal("sparse basis not exportable")
	}
	var s2 Solver
	res2, err := s2.SolveSeeded(buildInequalityLP(1), b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if out := s2.LastOutcome(); out.Path != "import" || !out.Sparse {
		t.Fatalf("outcome %+v, want sparse import", out)
	}
	requireClose(t, "objective", res2.Objective, res.Objective)
	if res2.Iterations > m.NumConstraints() {
		t.Fatalf("re-import of own optimal basis took %d pivots", res2.Iterations)
	}
}

// TestSparseOffBitIdentical verifies the knob's contract: with Sparse off,
// or on but below the row threshold, a SolveWarm chain is bit-identical to
// the plain dense chain.
func TestSparseOffBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"off", Options{}},
		{"below-threshold", Options{Sparse: true, SparseMinRows: 1000}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var dense, other Solver
			var seedD, seedO *Basis
			for slot := 0; slot < 6; slot++ {
				scale := 1 + 0.07*float64(slot)
				wantRes, err1 := dense.SolveWarm(buildTransportLP(scale, 1), seedD, Options{})
				gotRes, err2 := other.SolveWarm(buildTransportLP(scale, 1), seedO, tc.opts)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("slot %d: errs %v vs %v", slot, err1, err2)
				}
				if !reflect.DeepEqual(wantRes, gotRes) {
					t.Fatalf("slot %d: results differ:\ndense %+v\nother %+v", slot, wantRes, gotRes)
				}
				if dOut, oOut := dense.LastOutcome(), other.LastOutcome(); !reflect.DeepEqual(dOut, oOut) {
					t.Fatalf("slot %d: outcomes differ: %+v vs %+v", slot, dOut, oOut)
				}
				if b, ok := dense.ExportBasis(); ok {
					seedD = b
				}
				if b, ok := other.ExportBasis(); ok {
					seedO = b
				}
			}
			if s := other.Stats(); s.SparseSolves != 0 {
				t.Fatalf("sparse solves on a dense-only chain: %+v", s)
			}
		})
	}
}

// TestSparseHostileSeedFallsBackCold gives the sparse import a seed basis
// and model whose EQ row can only be covered by seed columns; a seed
// naming none of them must send the solve to the audited cold path.
func TestSparseHostileSeedFallsBackCold(t *testing.T) {
	var s Solver
	m := buildTransportLP(1, 1)
	hostile := NewBasis([]string{"no_such_var"}, nil)
	res, err := s.SolveWarm(m, hostile, sparseTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := s.LastOutcome()
	if out.Path != "cold" || !out.FellBack || out.Sparse {
		t.Fatalf("outcome %+v, want cold fallback", out)
	}
	cold, err := m.SolveOpts(Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireClose(t, "objective", res.Objective, cold.Objective)
}

package lp

import (
	"math"
	"testing"
)

// preFixDualIterate replicates the dual simplex loop exactly as it stood
// before the anti-cycling fix: most-negative leaving row, min-ratio
// entering column, no tie-breaking, no stall detection. Kept here as the
// executable "before" half of the cycling regression test.
func preFixDualIterate(t *tableau) Status {
	tol := t.opts.Tol
	rhs := t.total
	for {
		if t.iters >= t.opts.MaxIterations {
			return IterationLimit
		}
		leave, minVal := -1, -tol
		for r := 0; r < t.a.Rows; r++ {
			if v := t.a.At(r, rhs); v < minVal {
				leave, minVal = r, v
			}
		}
		if leave < 0 {
			return Optimal
		}
		row := t.a.Row(leave)
		enter, bestRatio := -1, math.Inf(1)
		for c := 0; c < t.colLimit; c++ {
			a := row[c]
			if a >= -tol {
				continue
			}
			if ratio := t.z[c] / -a; ratio < bestRatio {
				enter, bestRatio = c, ratio
			}
		}
		if enter < 0 {
			return Infeasible
		}
		t.pivot(leave, enter)
		t.iters++
	}
}

// buildBealeDual is the LP dual of Beale's classic cycling example
// (min −0.75x₁ + 150x₂ − 0.02x₃ + 6x₄ over three ≤-rows). Started from
// the all-surplus basis — dual feasible, primal infeasible, massively
// degenerate — it drives the dual simplex through the mirror image of
// Beale's primal cycle.
func buildBealeDual() *Model {
	m := NewModel()
	m.SetMinimize(true)
	u1 := m.AddVariable("u1", 0)
	u2 := m.AddVariable("u2", 0)
	u3 := m.AddVariable("u3", 1)
	m.AddConstraint("d1", []Term{{u1, 0.25}, {u2, 0.5}}, GE, 0.75)
	m.AddConstraint("d2", []Term{{u1, -60}, {u2, -90}}, GE, -150)
	m.AddConstraint("d3", []Term{{u1, -0.04}, {u2, -0.02}, {u3, 1}}, GE, 0.02)
	m.AddConstraint("d4", []Term{{u1, 9}, {u2, 3}}, GE, -6)
	return m
}

// bealeDualRepairState builds the exact state dualIterate sees on the
// warm paths: a warm tableau with the all-surplus basis crashed in and
// the true costs priced out (dual feasible), with negative basic values
// awaiting repair.
func bealeDualRepairState(t *testing.T) *tableau {
	t.Helper()
	tb := newWarmTableauIn(buildBealeDual(), Options{}, nil)
	if !tb.importBasis(&Basis{}) {
		t.Fatal("all-surplus import failed")
	}
	tb.setPhase2Z()
	tb.opts.MaxIterations = 1000
	return tb
}

// TestDualSimplexCyclingRegression is the regression test for the dual
// simplex anti-cycling fix. Before the fix, dualIterate had no Bland
// switch: on the dual of Beale's cycling LP it loops degenerate pivots
// forever and burns its whole iteration budget. The fixed rule detects
// the stall and finishes Optimal with the same starting state.
func TestDualSimplexCyclingRegression(t *testing.T) {
	old := bealeDualRepairState(t)
	if st := preFixDualIterate(old); st != IterationLimit {
		t.Fatalf("pre-fix rule no longer cycles (status %v after %d iters); "+
			"the regression instance needs rebuilding", st, old.iters)
	}

	tb := bealeDualRepairState(t)
	if st := tb.dualIterate(); st != Optimal {
		t.Fatalf("fixed dual simplex: status %v after %d iters", st, tb.iters)
	}
	if tb.iters >= old.iters {
		t.Fatalf("fixed rule used %d iters, no better than the cycling budget %d", tb.iters, old.iters)
	}
	// Finish the solve and verify the answer against the cold two-phase
	// path, which never enters dualIterate.
	if st := tb.iterate(); st != Optimal {
		t.Fatalf("primal finish: status %v", st)
	}
	res, err := tb.result(Optimal)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := buildBealeDual().SolveOpts(Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireClose(t, "objective", res.Objective, cold.Objective)
}

// TestSparseDualSimplexAntiCycling runs the same degenerate instance
// through the sparse revised dual simplex: the all-surplus crash basis is
// exactly what the seedless sparse import builds, so the solve exercises
// the sparse stall→Bland switch end to end.
func TestSparseDualSimplexAntiCycling(t *testing.T) {
	var s Solver
	m := buildBealeDual()
	res, err := s.SolveWarm(m, nil, sparseTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	if out := s.LastOutcome(); out.Path != "import" || !out.Sparse {
		t.Fatalf("outcome %+v, want sparse import", out)
	}
	cold, err := m.SolveOpts(Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireClose(t, "objective", res.Objective, cold.Objective)
}

package lp

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteLPFormat exports the model in the CPLEX LP file format, so the
// exact problem this package solves can be loaded into the commercial
// solvers the paper used (CPLEX, Gurobi, GLPK, lp_solve) and
// cross-checked. Variable names are sanitized to the LP-format alphabet
// and deduplicated; every variable carries its implicit x ≥ 0 bound.
func (m *Model) WriteLPFormat(w io.Writer) error {
	bw := bufio.NewWriter(w)
	names := m.lpNames()

	if m.minimize {
		fmt.Fprintln(bw, "Minimize")
	} else {
		fmt.Fprintln(bw, "Maximize")
	}
	fmt.Fprint(bw, " obj:")
	wrote := false
	for v, c := range m.obj {
		if c == 0 {
			continue
		}
		writeTerm(bw, c, names[v], !wrote)
		wrote = true
	}
	if !wrote {
		fmt.Fprint(bw, " 0 "+firstName(names))
	}
	fmt.Fprintln(bw)

	fmt.Fprintln(bw, "Subject To")
	for i, row := range m.rows {
		fmt.Fprintf(bw, " c%d:", i)
		// Accumulate duplicate terms per variable, as Solve does.
		acc := map[int]float64{}
		order := make([]int, 0, len(row.terms))
		for _, t := range row.terms {
			if _, seen := acc[t.Var]; !seen {
				order = append(order, t.Var)
			}
			acc[t.Var] += t.Coef
		}
		wrote := false
		for _, v := range order {
			if acc[v] == 0 {
				continue
			}
			writeTerm(bw, acc[v], names[v], !wrote)
			wrote = true
		}
		if !wrote {
			fmt.Fprint(bw, " 0 "+firstName(names))
		}
		fmt.Fprintf(bw, " %s %g\n", row.sense, row.rhs)
	}

	fmt.Fprintln(bw, "Bounds")
	for v := range m.names {
		fmt.Fprintf(bw, " %s >= 0\n", names[v])
	}
	fmt.Fprintln(bw, "End")
	return bw.Flush()
}

// writeTerm emits " + c name" / " - c name" with LP-format conventions.
func writeTerm(w io.Writer, c float64, name string, first bool) {
	switch {
	case first && c >= 0:
		fmt.Fprintf(w, " %g %s", c, name)
	case c >= 0:
		fmt.Fprintf(w, " + %g %s", c, name)
	default:
		fmt.Fprintf(w, " - %g %s", -c, name)
	}
}

// lpNames sanitizes and deduplicates variable names for the LP format.
func (m *Model) lpNames() []string {
	out := make([]string, len(m.names))
	seen := map[string]int{}
	for i, n := range m.names {
		s := sanitizeLPName(n)
		if s == "" {
			s = "x"
		}
		if k, dup := seen[s]; dup {
			seen[s] = k + 1
			s = fmt.Sprintf("%s_%d", s, k+1)
		}
		seen[s] = 0
		out[i] = s
	}
	return out
}

func firstName(names []string) string {
	if len(names) > 0 {
		return names[0]
	}
	return "x0"
}

// sanitizeLPName keeps the LP-format-legal characters and forces a legal
// leading character.
func sanitizeLPName(n string) string {
	var b strings.Builder
	for _, r := range n {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	s := b.String()
	if s == "" {
		return s
	}
	if c := s[0]; c >= '0' && c <= '9' || c == '.' {
		s = "v" + s
	}
	return s
}

package lp

import (
	"math"

	"profitlb/internal/linalg"
)

// Options tunes the simplex solver. The zero value selects sensible
// defaults via (*Options).withDefaults.
type Options struct {
	// MaxIterations bounds the total pivot count across both phases.
	// 0 means an automatic bound of 200*(rows+cols)+2000.
	MaxIterations int
	// Tol is the numeric tolerance for zero tests. 0 means 1e-9.
	Tol float64
	// Bland forces Bland's smallest-index rule from the first pivot.
	// By default Dantzig pricing is used and the solver switches to
	// Bland's rule after stalling to guarantee termination.
	Bland bool
	// Sparse routes a Solver's warm paths (SolveWarm/SolveSeeded) through
	// the sparse revised simplex — LU-factorized basis, FTRAN/BTRAN
	// solves, partial pricing — once the model has at least SparseMinRows
	// rows. The cold path and every model below the threshold stay on the
	// dense tableau, bit-identical to Sparse being off.
	Sparse bool
	// SparseMinRows overrides the Sparse row threshold; 0 means
	// DefaultSparseMinRows.
	SparseMinRows int
}

func (o Options) withDefaults(rows, cols int) Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 200*(rows+cols) + 2000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	return o
}

// Solve optimizes the model with default options.
func (m *Model) Solve() (*Result, error) { return m.SolveOpts(Options{}) }

// SolveOpts optimizes the model with the given options. On Infeasible,
// Unbounded or IterationLimit outcomes it returns both a Result carrying
// the status and the matching sentinel error.
func (m *Model) SolveOpts(opts Options) (*Result, error) {
	t := newTableau(m, opts)
	return t.result(t.run())
}

// result assembles the Result (and sentinel error) for a finished tableau.
// Optimal claims are audited against the model with the same rhs-scaled
// CheckFeasible gate the warm paths use: a tableau that drifted far enough
// to report basic values beyond the audit tolerance surfaces
// NumericBreakdown instead of a silently wrong answer.
func (t *tableau) result(status Status) (*Result, error) {
	res := &Result{Status: status, Iterations: t.iters}
	if status != Optimal {
		var err error
		switch status {
		case Infeasible:
			err = ErrInfeasible
		case Unbounded:
			err = ErrUnbounded
		default:
			err = ErrIterationLimit
		}
		return res, err
	}
	x := t.extract()
	if t.m.CheckFeasible(x, auditTol(t.m, t.opts.Tol)) != nil {
		res.Status = NumericBreakdown
		return res, ErrNumericBreakdown
	}
	res.X = x
	res.Objective = t.m.ObjectiveValue(x)
	res.Duals = t.duals()
	return res, nil
}

// tableau is the dense two-phase simplex working state.
//
// Layout: columns 0..n-1 are the structural variables, then one slack or
// surplus column per inequality row, then one artificial column per row
// that needs one (GE and EQ rows, and LE rows with negative rhs after sign
// normalization), and a final rhs column. Row r of the matrix is constraint
// r; basis[r] holds the index of the column currently basic in that row.
type tableau struct {
	m        *Model
	opts     Options
	a        *linalg.Matrix // rows x (totalCols+1); last column is rhs
	basis    []int
	n        int // structural variable count
	total    int // structural + slack + artificial count
	artStart int
	colLimit int // entering columns are restricted to [0, colLimit)
	iters    int
	// objective row being optimized, length total+1 (reduced costs + value)
	z linalg.Vector
	// dualCol and dualSign recover the dual value of each original row
	// from the final reduced-cost row: y_i = dualSign[i] * z[dualCol[i]].
	// The column is the row's slack (LE), surplus (GE, sign -1) or
	// artificial (EQ) column; rows flipped during rhs normalization carry
	// an extra sign flip.
	dualCol  []int
	dualSign []float64
	// rowSlack holds each row's slack/surplus column (-1 for EQ rows); it
	// lets a Solver export the basis by name (DESIGN.md §12).
	rowSlack []int
	// ar, when non-nil, supplies reusable backing buffers so repeated
	// solves through one Solver stay allocation-free.
	ar *arena
}

// arena holds the reusable backing buffers of a tableau. A Solver keeps
// two (one for cold solves, one for the retained warm tableau) and threads
// them through newTableauIn so successive solves reuse the dense state.
type arena struct {
	mat      []float64
	z        []float64
	basis    []int
	rowSlack []int
	dualCol  []int
	dualSign []float64
	rhs      []float64 // scratch for the warm rhs refresh
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// alloc sizes the tableau's matrix, basis and per-row bookkeeping for the
// given shape, drawing from the arena when one is attached.
func (t *tableau) alloc(rows int) {
	cols := t.total + 1
	if t.ar != nil {
		t.a, t.ar.mat = linalg.NewMatrixIn(rows, cols, t.ar.mat)
		t.ar.basis = growInts(t.ar.basis, rows)
		t.basis = t.ar.basis
		t.ar.rowSlack = growInts(t.ar.rowSlack, rows)
		t.rowSlack = t.ar.rowSlack
		t.ar.dualCol = growInts(t.ar.dualCol, rows)
		t.dualCol = t.ar.dualCol
		t.ar.dualSign = growFloats(t.ar.dualSign, rows)
		t.dualSign = t.ar.dualSign
		return
	}
	t.a = linalg.NewMatrix(rows, cols)
	t.basis = make([]int, rows)
	t.rowSlack = make([]int, rows)
	t.dualCol = make([]int, rows)
	t.dualSign = make([]float64, rows)
}

// newZ returns a zeroed objective row of length total+1, reusing the
// arena's buffer when one is attached.
func (t *tableau) newZ() linalg.Vector {
	n := t.total + 1
	if t.ar != nil {
		t.ar.z = growFloats(t.ar.z, n)
		return linalg.Vector(t.ar.z)
	}
	return linalg.NewVector(n)
}

func newTableau(m *Model, opts Options) *tableau { return newTableauIn(m, opts, nil) }

func newTableauIn(m *Model, opts Options, ar *arena) *tableau {
	rows := len(m.rows)
	n := len(m.names)
	t := &tableau{m: m, n: n, ar: ar}
	t.opts = opts.withDefaults(rows, n)

	// Count slack/surplus and artificial columns. Normalize rhs ≥ 0 by
	// flipping rows first so the artificial assignment is decidable.
	type rowPlan struct {
		sense Sense
		flip  bool
	}
	plans := make([]rowPlan, rows)
	slacks := 0
	arts := 0
	for i, row := range m.rows {
		sense := row.sense
		flip := row.rhs < 0
		if flip {
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		plans[i] = rowPlan{sense: sense, flip: flip}
		if sense != EQ {
			slacks++
		}
		if sense != LE {
			arts++
		}
	}
	t.total = n + slacks + arts
	t.artStart = n + slacks
	t.alloc(rows)

	slackCol := n
	artCol := t.artStart
	for i, row := range m.rows {
		t.rowSlack[i] = -1
		r := t.a.Row(i)
		sign := 1.0
		if plans[i].flip {
			sign = -1.0
		}
		for _, term := range row.terms {
			r[term.Var] += sign * term.Coef
		}
		r[t.total] = sign * row.rhs
		switch plans[i].sense {
		case LE:
			r[slackCol] = 1
			t.basis[i] = slackCol
			t.dualCol[i], t.dualSign[i] = slackCol, sign
			t.rowSlack[i] = slackCol
			slackCol++
		case GE:
			r[slackCol] = -1
			t.dualCol[i], t.dualSign[i] = slackCol, -sign
			t.rowSlack[i] = slackCol
			slackCol++
			r[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			r[artCol] = 1
			t.basis[i] = artCol
			t.dualCol[i], t.dualSign[i] = artCol, sign
			artCol++
		}
	}
	return t
}

// duals recovers the dual value of every original constraint row from the
// final phase-2 reduced-cost row. For a maximization model, y_i is the
// marginal objective gain per unit of rhs slack on row i (≥ 0 for binding
// LE rows, ≤ 0 for binding GE rows, free for EQ rows); minimization
// models report ∂objective/∂rhs in the minimized direction.
func (t *tableau) duals() []float64 {
	y := make([]float64, len(t.dualCol))
	dir := 1.0
	if t.m.minimize {
		dir = -1.0
	}
	for i, col := range t.dualCol {
		y[i] = dir * t.dualSign[i] * t.z[col]
	}
	return y
}

// run executes both phases and returns the final status.
func (t *tableau) run() Status {
	tol := t.opts.Tol
	// Phase 1: minimize the sum of artificial variables, expressed as
	// maximizing -(sum of artificials). Build the phase-1 reduced-cost row
	// by pricing out the basic artificial columns.
	if t.artStart < t.total {
		t.colLimit = t.total
		t.z = t.newZ()
		for c := t.artStart; c < t.total; c++ {
			t.z[c] = 1 // minimize sum of artificials
		}
		// Price out: subtract rows whose basic variable is artificial.
		for r, b := range t.basis {
			if b >= t.artStart {
				t.z.AddScaled(-1, t.a.Row(r))
			}
		}
		if st := t.iterate(); st != Optimal {
			// The phase-1 objective is bounded below by 0, so Unbounded is
			// only ever numerical breakdown on a degenerate tableau, never a
			// certificate about the model. Report it as IterationLimit so
			// callers escalate (resilient chain, drop-worst retry) instead
			// of acting on a false infeasible/unbounded verdict.
			if st == Unbounded {
				return IterationLimit
			}
			return st
		}
		if -t.z[t.total] > tol { // objective value = -z[rhs]
			return Infeasible
		}
		// Drive any artificial variables that remain basic at zero out of
		// the basis so phase 2 never pivots on them.
		for r, b := range t.basis {
			if b < t.artStart {
				continue
			}
			row := t.a.Row(r)
			pivoted := false
			for c := 0; c < t.artStart; c++ {
				if math.Abs(row[c]) > tol {
					t.pivot(r, c)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// The row is all-zero over structural+slack columns: it is
				// redundant; leave the zero artificial basic. Blocking its
				// column in phase 2 keeps it at zero.
				_ = r
			}
		}
	}

	// Phase 2: maximize the true objective. Reduced costs start from -c
	// (maximization) and are priced out against the current basis.
	// Artificial columns are blocked from entering; any still basic are
	// stuck at zero in redundant rows and stay there.
	t.colLimit = t.artStart
	t.setPhase2Z()
	return t.iterate()
}

// setPhase2Z rebuilds the reduced-cost row for the true objective by
// pricing out the current basis. colLimit must already exclude any
// artificial columns. The warm path calls it directly after refreshing
// the rhs or importing a basis.
func (t *tableau) setPhase2Z() {
	t.z = t.newZ()
	dir := 1.0
	if t.m.minimize {
		dir = -1.0
	}
	for v, c := range t.m.obj {
		t.z[v] = -dir * c
	}
	for r, b := range t.basis {
		if coef := t.z[b]; coef != 0 {
			t.z.AddScaled(-coef, t.a.Row(r))
		}
	}
}

// iterate performs simplex pivots on the current objective row until
// optimality, unboundedness or the iteration limit.
func (t *tableau) iterate() Status {
	tol := t.opts.Tol
	bland := t.opts.Bland
	stall := 0
	lastObj := math.Inf(-1)
	for {
		if t.iters >= t.opts.MaxIterations {
			return IterationLimit
		}
		col := t.chooseColumn(bland, tol)
		if col < 0 {
			return Optimal
		}
		row := t.chooseRow(col, bland, tol)
		if row < 0 {
			return Unbounded
		}
		t.pivot(row, col)
		t.iters++
		// Stall detection: if the objective value has not improved for a
		// while under Dantzig pricing, fall back to Bland's rule, which is
		// guaranteed to terminate. The tableau convention keeps the current
		// (maximized) objective value in the rhs cell of the z row.
		obj := t.z[t.total]
		if obj <= lastObj+tol {
			stall++
			if stall > 64 {
				bland = true
			}
		} else {
			stall = 0
			lastObj = obj
		}
	}
}

// chooseColumn returns the entering column, or -1 at optimality. Artificial
// columns are never eligible in phase 2 (they are eligible in phase 1 only
// in the sense of leaving; their reduced costs start at 0 after pricing).
func (t *tableau) chooseColumn(bland bool, tol float64) int {
	limit := t.colLimit
	best := -1
	bestVal := -tol
	for c := 0; c < limit; c++ {
		rc := t.z[c]
		if rc < bestVal {
			if bland {
				return c
			}
			best = c
			bestVal = rc
		}
	}
	return best
}

// chooseRow performs the ratio test for entering column col and returns the
// leaving row, or -1 if the column is unbounded.
func (t *tableau) chooseRow(col int, bland bool, tol float64) int {
	rhs := t.total
	best := -1
	bestRatio := math.Inf(1)
	for r := 0; r < t.a.Rows; r++ {
		a := t.a.At(r, col)
		if a <= tol {
			continue
		}
		ratio := t.a.At(r, rhs) / a
		if ratio < bestRatio-tol {
			best, bestRatio = r, ratio
			continue
		}
		if ratio <= bestRatio+tol && best >= 0 {
			// Tie-break. Under Bland's rule pick the smallest basic index
			// (guarantees termination); otherwise prefer kicking artificial
			// variables out of the basis first.
			bi, bb := t.basis[r], t.basis[best]
			if bland {
				if bi < bb {
					best, bestRatio = r, ratio
				}
			} else if bi >= t.artStart && bb < t.artStart {
				best, bestRatio = r, ratio
			}
		}
	}
	return best
}

// pivot makes column col basic in row row.
func (t *tableau) pivot(row, col int) {
	p := t.a.At(row, col)
	t.a.ScaleRow(row, 1/p)
	// Re-normalize tiny residue on the pivot element.
	t.a.Set(row, col, 1)
	pr := t.a.Row(row)
	for r := 0; r < t.a.Rows; r++ {
		if r == row {
			continue
		}
		if f := t.a.At(r, col); f != 0 {
			t.a.Row(r).AddScaled(-f, pr)
			t.a.Set(r, col, 0)
		}
	}
	if f := t.z[col]; f != 0 {
		t.z.AddScaled(-f, pr)
		t.z[col] = 0
	}
	t.basis[row] = col
}

// extract reads the structural solution out of the final tableau.
func (t *tableau) extract() []float64 {
	x := make([]float64, t.n)
	rhs := t.total
	for r, b := range t.basis {
		if b < t.n {
			v := t.a.At(r, rhs)
			if v < 0 && v > -t.opts.Tol*10 {
				v = 0
			}
			x[b] = v
		}
	}
	return x
}

package lp

import (
	"strings"
	"testing"
)

func TestWriteLPFormat(t *testing.T) {
	m := NewModel()
	x := m.AddVariable("x", 3)
	y := m.AddVariable("y", 5)
	m.AddConstraint("c1", []Term{{x, 1}}, LE, 4)
	m.AddConstraint("c2", []Term{{y, 2}}, LE, 12)
	m.AddConstraint("c3", []Term{{x, 3}, {y, 2}}, GE, 1)
	m.AddConstraint("c4", []Term{{x, 1}, {y, -1}}, EQ, 0.5)
	var b strings.Builder
	if err := m.WriteLPFormat(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Maximize",
		"obj: 3 x + 5 y",
		"c0: 1 x <= 4",
		"c1: 2 y <= 12",
		"c2: 3 x + 2 y >= 1",
		"c3: 1 x - 1 y = 0.5",
		"Bounds",
		"x >= 0",
		"End",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("LP output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteLPFormatMinimize(t *testing.T) {
	m := NewModel()
	m.SetMinimize(true)
	m.AddVariable("x", 2)
	var b strings.Builder
	if err := m.WriteLPFormat(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Minimize") {
		t.Fatal("missing Minimize")
	}
}

func TestWriteLPFormatSanitizesNames(t *testing.T) {
	m := NewModel()
	a := m.AddVariable("lam[k=0,s=1]", 1)
	bvar := m.AddVariable("lam[k=0,s=1]", 2) // duplicate after sanitizing
	c := m.AddVariable("0start", 3)
	_ = a
	_ = bvar
	_ = c
	var b strings.Builder
	if err := m.WriteLPFormat(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "[") || strings.Contains(out, ",") {
		t.Fatalf("illegal characters survived:\n%s", out)
	}
	if !strings.Contains(out, "lam_k_0_s_1_") {
		t.Fatalf("duplicate not deduplicated:\n%s", out)
	}
	if !strings.Contains(out, "v0start") {
		t.Fatalf("leading digit not fixed:\n%s", out)
	}
}

func TestWriteLPFormatDuplicateTermsAccumulate(t *testing.T) {
	m := NewModel()
	x := m.AddVariable("x", 1)
	m.AddConstraint("dup", []Term{{x, 1}, {x, 1}}, LE, 6)
	var b strings.Builder
	if err := m.WriteLPFormat(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "c0: 2 x <= 6") {
		t.Fatalf("duplicate terms not accumulated:\n%s", b.String())
	}
}

func TestWriteLPFormatEmptyRowAndObjective(t *testing.T) {
	m := NewModel()
	m.AddVariable("x", 0)
	m.AddConstraint("zero", []Term{{0, 0}}, LE, 1)
	var b strings.Builder
	if err := m.WriteLPFormat(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "obj: 0 x") || !strings.Contains(out, "c0: 0 x <= 1") {
		t.Fatalf("empty expressions not padded:\n%s", out)
	}
}

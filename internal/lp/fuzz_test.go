package lp

import (
	"math"
	"strings"
	"testing"
)

// FuzzWarmBasisImport drives hostile name-keyed bases through the warm
// import path: whatever garbage the basis carries (unknown names,
// duplicates, truncated or oversized sets), SolveSeeded must return the
// same verdict as the cold solve and, at Optimal, an objective within
// 1e-9 and a solution the model itself verifies. Names are supplied as
// comma-separated lists so the fuzzer can splice real and fake entries.
func FuzzWarmBasisImport(f *testing.F) {
	f.Add("x_0_0,x_1_2", "cap_0,dem_1", 1.0, 1.0)
	f.Add("", "", 0.5, 2.0)
	f.Add("x_0_0,x_0_0,x_0_0,x_0_0,x_0_0,x_0_0,x_0_0", "bal,bal,bal", 1.0, 1.0)
	f.Add("nope,x_9_9,x_0_1", "cap_0,cap_0,cap_1,dem_0,dem_1,dem_2,bal", 1.2, 0.8)
	f.Add("x_0_0,x_0_1,x_0_2,x_1_0,x_1_1,x_1_2", "cap_0,cap_1,dem_0,dem_1,dem_2,bal", 1.0, 1.0)
	f.Fuzz(func(t *testing.T, vars string, slacks string, rhsScale float64, priceScale float64) {
		if !(rhsScale > 0.01 && rhsScale < 100) || !(priceScale > 0.01 && priceScale < 100) {
			t.Skip()
		}
		split := func(s string) []string {
			if s == "" {
				return nil
			}
			parts := strings.Split(s, ",")
			if len(parts) > 64 {
				parts = parts[:64]
			}
			return parts
		}
		seed := NewBasis(split(vars), split(slacks))
		m := buildTransportLP(rhsScale, priceScale)
		var s Solver
		warm, warmErr := s.SolveSeeded(m, seed, Options{})
		cold, coldErr := m.SolveOpts(Options{})
		if (warmErr == nil) != (coldErr == nil) {
			t.Fatalf("verdicts diverge: warm %v, cold %v (seed %q | %q)", warmErr, coldErr, vars, slacks)
		}
		if warmErr != nil {
			return
		}
		if math.Abs(warm.Objective-cold.Objective) > 1e-9*(1+math.Abs(cold.Objective)) {
			t.Fatalf("objective %g vs cold %g (path %s, seed %q | %q)",
				warm.Objective, cold.Objective, s.LastOutcome().Path, vars, slacks)
		}
		if err := m.CheckFeasible(warm.X, 1e-6*(1+rhsScale*50)); err != nil {
			t.Fatalf("warm solution infeasible: %v (seed %q | %q)", err, vars, slacks)
		}
	})
}

package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-6

func solveOrFatal(t *testing.T, m *Model) *Result {
	t.Helper()
	res, err := m.Solve()
	if err != nil {
		t.Fatalf("Solve: %v (status %v)", err, res.Status)
	}
	if err := m.CheckFeasible(res.X, tol); err != nil {
		t.Fatalf("solution infeasible: %v", err)
	}
	return res
}

func TestSimplexTwoVarMax(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → x=2, y=6, obj=36.
	m := NewModel()
	x := m.AddVariable("x", 3)
	y := m.AddVariable("y", 5)
	m.AddConstraint("c1", []Term{{x, 1}}, LE, 4)
	m.AddConstraint("c2", []Term{{y, 2}}, LE, 12)
	m.AddConstraint("c3", []Term{{x, 3}, {y, 2}}, LE, 18)
	res := solveOrFatal(t, m)
	if math.Abs(res.Objective-36) > tol {
		t.Fatalf("objective = %g, want 36", res.Objective)
	}
	if math.Abs(res.Value(x)-2) > tol || math.Abs(res.Value(y)-6) > tol {
		t.Fatalf("solution = (%g, %g), want (2, 6)", res.Value(x), res.Value(y))
	}
}

func TestSimplexMinimization(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 10, x ≥ 2 → x=10-y... optimum x=10, y=0? obj
	// coefficients favor x (2 < 3), so x=10, y=0, obj=20 (x≥2 slack).
	m := NewModel()
	m.SetMinimize(true)
	x := m.AddVariable("x", 2)
	y := m.AddVariable("y", 3)
	m.AddConstraint("cover", []Term{{x, 1}, {y, 1}}, GE, 10)
	m.AddConstraint("floor", []Term{{x, 1}}, GE, 2)
	res := solveOrFatal(t, m)
	if math.Abs(res.Objective-20) > tol {
		t.Fatalf("objective = %g, want 20", res.Objective)
	}
}

func TestSimplexEquality(t *testing.T) {
	// max x + 2y s.t. x + y = 5, y ≤ 3 → x=2, y=3, obj=8.
	m := NewModel()
	x := m.AddVariable("x", 1)
	y := m.AddVariable("y", 2)
	m.AddConstraint("bal", []Term{{x, 1}, {y, 1}}, EQ, 5)
	m.AddConstraint("cap", []Term{{y, 1}}, LE, 3)
	res := solveOrFatal(t, m)
	if math.Abs(res.Objective-8) > tol {
		t.Fatalf("objective = %g, want 8", res.Objective)
	}
}

func TestSimplexNegativeRHS(t *testing.T) {
	// max x s.t. -x ≤ -3 (i.e. x ≥ 3), x ≤ 7 → 7.
	m := NewModel()
	x := m.AddVariable("x", 1)
	m.AddConstraint("lo", []Term{{x, -1}}, LE, -3)
	m.AddConstraint("hi", []Term{{x, 1}}, LE, 7)
	res := solveOrFatal(t, m)
	if math.Abs(res.Objective-7) > tol {
		t.Fatalf("objective = %g, want 7", res.Objective)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddVariable("x", 1)
	m.AddConstraint("lo", []Term{{x, 1}}, GE, 5)
	m.AddConstraint("hi", []Term{{x, 1}}, LE, 3)
	res, err := m.Solve()
	if err != ErrInfeasible || res.Status != Infeasible {
		t.Fatalf("got status %v err %v, want infeasible", res.Status, err)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	m := NewModel()
	x := m.AddVariable("x", 1)
	y := m.AddVariable("y", 1)
	m.AddConstraint("c", []Term{{x, 1}, {y, -1}}, LE, 4)
	res, err := m.Solve()
	if err != ErrUnbounded || res.Status != Unbounded {
		t.Fatalf("got status %v err %v, want unbounded", res.Status, err)
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// Beale's classic cycling example; Bland fallback must terminate.
	m := NewModel()
	x1 := m.AddVariable("x1", 0.75)
	x2 := m.AddVariable("x2", -150)
	x3 := m.AddVariable("x3", 0.02)
	x4 := m.AddVariable("x4", -6)
	m.AddConstraint("r1", []Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
	m.AddConstraint("r2", []Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
	m.AddConstraint("r3", []Term{{x3, 1}}, LE, 1)
	res := solveOrFatal(t, m)
	if math.Abs(res.Objective-0.05) > tol {
		t.Fatalf("objective = %g, want 0.05", res.Objective)
	}
}

func TestSimplexBlandForced(t *testing.T) {
	m := NewModel()
	x := m.AddVariable("x", 3)
	y := m.AddVariable("y", 5)
	m.AddConstraint("c1", []Term{{x, 1}}, LE, 4)
	m.AddConstraint("c2", []Term{{y, 2}}, LE, 12)
	m.AddConstraint("c3", []Term{{x, 3}, {y, 2}}, LE, 18)
	res, err := m.SolveOpts(Options{Bland: true})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(res.Objective-36) > tol {
		t.Fatalf("objective = %g, want 36", res.Objective)
	}
}

func TestSimplexRedundantRows(t *testing.T) {
	// Duplicate equality rows leave a zero artificial basic; phase 2 must
	// still optimize correctly.
	m := NewModel()
	x := m.AddVariable("x", 1)
	y := m.AddVariable("y", 1)
	m.AddConstraint("e1", []Term{{x, 1}, {y, 1}}, EQ, 4)
	m.AddConstraint("e2", []Term{{x, 2}, {y, 2}}, EQ, 8)
	m.AddConstraint("cap", []Term{{x, 1}}, LE, 3)
	res := solveOrFatal(t, m)
	if math.Abs(res.Objective-4) > tol {
		t.Fatalf("objective = %g, want 4", res.Objective)
	}
}

func TestSimplexZeroModel(t *testing.T) {
	m := NewModel()
	res, err := m.Solve()
	if err != nil || res.Status != Optimal || res.Objective != 0 {
		t.Fatalf("empty model: status %v err %v obj %g", res.Status, err, res.Objective)
	}
}

func TestSimplexDuplicateTermsAccumulate(t *testing.T) {
	// x + x ≤ 6 must behave as 2x ≤ 6.
	m := NewModel()
	x := m.AddVariable("x", 1)
	m.AddConstraint("dup", []Term{{x, 1}, {x, 1}}, LE, 6)
	res := solveOrFatal(t, m)
	if math.Abs(res.Objective-3) > tol {
		t.Fatalf("objective = %g, want 3", res.Objective)
	}
}

func TestAddUpperBound(t *testing.T) {
	m := NewModel()
	x := m.AddVariable("x", 1)
	m.AddUpperBound(x, 2.5)
	res := solveOrFatal(t, m)
	if math.Abs(res.Objective-2.5) > tol {
		t.Fatalf("objective = %g, want 2.5", res.Objective)
	}
}

func TestIterationLimit(t *testing.T) {
	m := NewModel()
	x := m.AddVariable("x", 3)
	y := m.AddVariable("y", 5)
	m.AddConstraint("c3", []Term{{x, 3}, {y, 2}}, LE, 18)
	m.AddConstraint("c1", []Term{{x, 1}}, LE, 4)
	res, err := m.SolveOpts(Options{MaxIterations: 1})
	if err != ErrIterationLimit || res.Status != IterationLimit {
		t.Fatalf("got status %v err %v, want iteration limit", res.Status, err)
	}
}

// plane is one bounding hyperplane for the brute-force vertex enumerator.
type plane struct {
	a   []float64
	rhs float64
}

// bruteForceLP maximizes c'x over the intersection of m's constraints by
// enumerating all basic feasible points (vertices) of small dense systems.
// Only usable for tiny models; serves as ground truth for randomized tests.
func bruteForceLP(m *Model, nvars int) (float64, bool) {
	// Collect all hyperplanes: constraint boundaries plus x_i = 0.
	var planes []plane
	for i, row := range m.rows {
		a := make([]float64, nvars)
		for _, t := range row.terms {
			a[t.Var] += t.Coef
		}
		planes = append(planes, plane{a, m.rows[i].rhs})
	}
	for i := 0; i < nvars; i++ {
		a := make([]float64, nvars)
		a[i] = 1
		planes = append(planes, plane{a, 0})
	}
	best := math.Inf(-1)
	found := false
	// Enumerate subsets of size nvars and solve the linear system by
	// Gaussian elimination.
	idx := make([]int, nvars)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == nvars {
			x, ok := solveSquare(planes, idx, nvars)
			if !ok {
				return
			}
			if m.CheckFeasible(x, 1e-7) != nil {
				return
			}
			v := m.ObjectiveValue(x)
			if m.minimize {
				v = -v
			}
			if v > best {
				best = v
			}
			found = true
			return
		}
		for i := start; i < len(planes); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	if m.minimize && found {
		best = -best
	}
	return best, found
}

func solveSquare(planes []plane, idx []int, n int) ([]float64, bool) {
	A := make([][]float64, n)
	for i, p := range idx {
		A[i] = append(append([]float64{}, planes[p].a...), planes[p].rhs)
	}
	for col := 0; col < n; col++ {
		piv := -1
		for r := col; r < n; r++ {
			if math.Abs(A[r][col]) > 1e-9 {
				piv = r
				break
			}
		}
		if piv < 0 {
			return nil, false
		}
		A[col], A[piv] = A[piv], A[col]
		f := A[col][col]
		for j := col; j <= n; j++ {
			A[col][j] /= f
		}
		for r := 0; r < n; r++ {
			if r != col && A[r][col] != 0 {
				f := A[r][col]
				for j := col; j <= n; j++ {
					A[r][j] -= f * A[col][j]
				}
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = A[i][n]
	}
	return x, true
}

func TestSimplexAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 120; trial++ {
		nvars := 2 + rng.Intn(2)
		nrows := 2 + rng.Intn(3)
		m := NewModel()
		for v := 0; v < nvars; v++ {
			m.AddVariable("x", rng.Float64()*10-2)
		}
		for r := 0; r < nrows; r++ {
			terms := make([]Term, nvars)
			for v := 0; v < nvars; v++ {
				terms[v] = Term{v, rng.Float64() * 4}
			}
			m.AddConstraint("c", terms, LE, 1+rng.Float64()*9)
		}
		// Always bounded: add a box.
		for v := 0; v < nvars; v++ {
			m.AddUpperBound(v, 20)
		}
		res, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, ok := bruteForceLP(m, nvars)
		if !ok {
			t.Fatalf("trial %d: brute force found no vertex", trial)
		}
		if math.Abs(res.Objective-want) > 1e-5 {
			t.Fatalf("trial %d: simplex %g, brute force %g", trial, res.Objective, want)
		}
	}
}

func TestSimplexSolutionAlwaysFeasibleQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nvars := 1 + rng.Intn(5)
		m := NewModel()
		for v := 0; v < nvars; v++ {
			m.AddVariable("x", rng.Float64()*6-3)
		}
		for r := 0; r < 1+rng.Intn(5); r++ {
			var terms []Term
			for v := 0; v < nvars; v++ {
				terms = append(terms, Term{v, rng.Float64() * 3})
			}
			sense := LE
			if rng.Intn(4) == 0 {
				sense = GE
			}
			m.AddConstraint("c", terms, sense, rng.Float64()*8)
		}
		for v := 0; v < nvars; v++ {
			m.AddUpperBound(v, 50)
		}
		res, err := m.Solve()
		if err == ErrInfeasible {
			return true // nothing to check
		}
		if err != nil {
			return false
		}
		return m.CheckFeasible(res.X, 1e-6) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSenseString(t *testing.T) {
	cases := map[Sense]string{LE: "<=", GE: ">=", EQ: "=", Sense(9): "Sense(9)"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Sense %d: got %q want %q", int(s), got, want)
		}
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterationLimit: "iteration-limit",
		Status(7): "Status(7)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Status %d: got %q want %q", int(s), got, want)
		}
	}
}

package lp

import (
	"math"

	"profitlb/internal/linalg"
)

// DefaultSparseMinRows is the row count at and above which Options.Sparse
// routes warm solves through the sparse revised simplex. Below it the
// dense tableau's cache behavior wins and the warm paths stay dense (and
// bit-identical to a Solver with Sparse off).
const DefaultSparseMinRows = 64

// sparseRefactorEvery bounds the product-form eta file: once this many
// updates accumulate on top of the LU factors, the basis is refactorized
// from scratch so solve cost and floating-point drift stay bounded.
const sparseRefactorEvery = 100

// sparseStallLimit mirrors the dense stall→Bland switch: after this many
// pivots without objective progress the sparse iterations fall back to
// Bland's smallest-index rule, which cannot cycle.
const sparseStallLimit = 64

// sparseEligible reports whether warm solves of m should use the sparse
// revised simplex path.
func (o Options) sparseEligible(m *Model) bool {
	if !o.Sparse {
		return false
	}
	min := o.SparseMinRows
	if min <= 0 {
		min = DefaultSparseMinRows
	}
	return len(m.rows) >= min
}

// sparseSolve is the revised-simplex working state: the constraint matrix
// in compressed sparse-column form (structural columns then one slack or
// surplus column per inequality row, rows unflipped), an LU-factorized
// basis with a product-form eta file on top, and the basic solution xB
// indexed by basis position. Unlike the dense tableau no quadratic state
// exists: every iteration works through FTRAN/BTRAN solves against the
// factors plus one sweep over the sparse columns for pricing.
type sparseSolve struct {
	m    *Model
	opts Options

	n     int // structural variable count
	rows  int
	ncols int // structural + slack/surplus

	// CSC storage of the full column set.
	ptr []int
	ind []int
	val []float64

	rowSlack []int // row -> slack column, -1 for EQ rows
	slackRow []int // slack column - n -> row

	obj []float64 // internal maximization costs per column (dir·c, slacks 0)

	basis   []int // basis position -> column
	inBasis []int // column -> basis position, -1 when nonbasic
	xB      []float64

	lu   *linalg.SparseLU
	etas *linalg.EtaFile

	iters  int
	cursor int // partial-pricing scan position

	// scratch
	wrk, w, rho, y, tmp, cb, bvec []float64
}

// newSparseSolve builds the CSC representation and scratch state for m.
// The basis is established later by crashBasis.
func newSparseSolve(m *Model, opts Options) *sparseSolve {
	n := len(m.names)
	rows := len(m.rows)
	ss := &sparseSolve{m: m, n: n, rows: rows}
	ss.opts = opts.withDefaults(rows, n)

	slacks := 0
	nnz := 0
	for i := range m.rows {
		if m.rows[i].sense != EQ {
			slacks++
			nnz++
		}
		nnz += len(m.rows[i].terms)
	}
	ss.ncols = n + slacks
	ss.ptr = make([]int, ss.ncols+1)
	ss.ind = make([]int, nnz)
	ss.val = make([]float64, nnz)
	ss.rowSlack = make([]int, rows)
	ss.slackRow = make([]int, slacks)

	// Column counting pass, then fill. Duplicate terms are kept as-is:
	// every consumer (LU, pricing, FTRAN scatter) accumulates.
	count := make([]int, ss.ncols)
	for i := range m.rows {
		for _, t := range m.rows[i].terms {
			count[t.Var]++
		}
	}
	sc := n
	for i := range m.rows {
		ss.rowSlack[i] = -1
		if m.rows[i].sense != EQ {
			ss.rowSlack[i] = sc
			ss.slackRow[sc-n] = i
			count[sc]++
			sc++
		}
	}
	for j := 0; j < ss.ncols; j++ {
		ss.ptr[j+1] = ss.ptr[j] + count[j]
		count[j] = ss.ptr[j]
	}
	for i := range m.rows {
		for _, t := range m.rows[i].terms {
			p := count[t.Var]
			ss.ind[p], ss.val[p] = i, t.Coef
			count[t.Var] = p + 1
		}
		if c := ss.rowSlack[i]; c >= 0 {
			p := count[c]
			v := 1.0
			if m.rows[i].sense == GE {
				v = -1.0
			}
			ss.ind[p], ss.val[p] = i, v
			count[c] = p + 1
		}
	}

	ss.obj = make([]float64, ss.ncols)
	ss.basis = make([]int, 0, rows)
	ss.inBasis = make([]int, ss.ncols)
	for j := range ss.inBasis {
		ss.inBasis[j] = -1
	}
	ss.xB = make([]float64, rows)
	ss.wrk = make([]float64, rows)
	ss.w = make([]float64, rows)
	ss.rho = make([]float64, rows)
	ss.y = make([]float64, rows)
	ss.tmp = make([]float64, rows)
	ss.cb = make([]float64, rows)
	ss.bvec = make([]float64, rows)
	return ss
}

func (ss *sparseSolve) col(j int) ([]int, []float64) {
	return ss.ind[ss.ptr[j]:ss.ptr[j+1]], ss.val[ss.ptr[j]:ss.ptr[j+1]]
}

// colDot returns Σ a_ij · v[i] over column j's entries (v row-indexed).
func (ss *sparseSolve) colDot(j int, v []float64) float64 {
	ci, cv := ss.col(j)
	var s float64
	for t, r := range ci {
		s += cv[t] * v[r]
	}
	return s
}

func (ss *sparseSolve) dir() float64 {
	if ss.m.minimize {
		return -1
	}
	return 1
}

// setObj loads the internal maximization costs from the current model.
func (ss *sparseSolve) setObj() {
	d := ss.dir()
	for v := 0; v < ss.n; v++ {
		ss.obj[v] = d * ss.m.obj[v]
	}
	for v := ss.n; v < ss.ncols; v++ {
		ss.obj[v] = 0
	}
}

// zeroObj clears the costs; a zero cost row is trivially dual feasible,
// which is what the import path's repair phase needs.
func (ss *sparseSolve) zeroObj() {
	for v := range ss.obj {
		ss.obj[v] = 0
	}
}

// crashBasis assembles the starting basis: seed members first (unknown
// names and linearly dependent columns dropped, exactly like the dense
// import), then slack columns until every row is covered. It fails —
// sending the caller to the cold path — when no complete basis emerges
// (e.g. an EQ row no seed column covers).
func (ss *sparseSolve) crashBasis(seed *Basis) bool {
	lu := linalg.NewSparseLU(ss.rows, importPivTol)
	ss.basis = ss.basis[:0]
	add := func(c int) {
		ci, cv := ss.col(c)
		if lu.AddColumn(ci, cv) {
			ss.basis = append(ss.basis, c)
		}
	}
	if seed != nil {
		varIdx := make(map[string]int, ss.n)
		for i, name := range ss.m.names {
			varIdx[name] = i
		}
		rowIdx := make(map[string]int, ss.rows)
		for i := range ss.m.rows {
			rowIdx[ss.m.rows[i].name] = i
		}
		for _, name := range seed.vars {
			if lu.Complete() {
				break
			}
			if c, ok := varIdx[name]; ok {
				add(c)
			}
		}
		for _, name := range seed.slackRows {
			if lu.Complete() {
				break
			}
			if r, ok := rowIdx[name]; ok {
				if c := ss.rowSlack[r]; c >= 0 {
					add(c)
				}
			}
		}
	}
	for r := 0; r < ss.rows && !lu.Complete(); r++ {
		if c := ss.rowSlack[r]; c >= 0 {
			add(c)
		}
	}
	if !lu.Complete() {
		return false
	}
	ss.lu = lu
	if ss.etas == nil {
		ss.etas = linalg.NewEtaFile(ss.rows)
	} else {
		ss.etas.Reset()
	}
	for j := range ss.inBasis {
		ss.inBasis[j] = -1
	}
	for i, c := range ss.basis {
		ss.inBasis[c] = i
	}
	return true
}

// refactorize rebuilds the LU factors from the current basis columns,
// drops the eta file and recomputes xB from the model rhs. False means
// the basis went numerically singular — the caller abandons to cold.
func (ss *sparseSolve) refactorize() bool {
	lu := linalg.NewSparseLU(ss.rows, 0)
	for _, c := range ss.basis {
		ci, cv := ss.col(c)
		if !lu.AddColumn(ci, cv) {
			return false
		}
	}
	ss.lu = lu
	ss.etas.Reset()
	ss.computeXB()
	return true
}

// computeXB refreshes the basic solution from the model's current rhs by
// an FTRAN through the factors — the sparse hot path's whole trick.
func (ss *sparseSolve) computeXB() {
	for i := range ss.m.rows {
		ss.bvec[i] = ss.m.rows[i].rhs
	}
	ss.lu.Solve(ss.bvec, ss.xB)
	ss.etas.Apply(ss.xB)
}

// ftranCol computes w = B⁻¹·a_j into ss.w.
func (ss *sparseSolve) ftranCol(j int) []float64 {
	ci, cv := ss.col(j)
	for t, r := range ci {
		ss.wrk[r] += cv[t]
	}
	ss.lu.Solve(ss.wrk, ss.w)
	for _, r := range ci {
		ss.wrk[r] = 0
	}
	ss.etas.Apply(ss.w)
	return ss.w
}

// btranUnit computes ss.rho = row r of B⁻¹ (i.e. Bᵀ·rho = e_r).
func (ss *sparseSolve) btranUnit(r int) []float64 {
	for i := range ss.tmp {
		ss.tmp[i] = 0
	}
	ss.tmp[r] = 1
	ss.etas.ApplyT(ss.tmp)
	ss.lu.SolveT(ss.tmp, ss.rho)
	return ss.rho
}

// btranCosts computes ss.y = Bᵀ⁻¹·c_B, the simplex multipliers for the
// current internal cost row.
func (ss *sparseSolve) btranCosts() []float64 {
	for i, c := range ss.basis {
		ss.tmp[i] = ss.obj[c]
	}
	ss.etas.ApplyT(ss.tmp)
	ss.lu.SolveT(ss.tmp, ss.y)
	return ss.y
}

// objValue returns the current (maximized) objective c_B·xB.
func (ss *sparseSolve) objValue() float64 {
	var s float64
	for i, c := range ss.basis {
		s += ss.obj[c] * ss.xB[i]
	}
	return s
}

// replace swaps the basis column at position pos for column enter, with w
// the entering column's FTRAN image. False means the product-form update
// would be singular (breakdown — abandon to cold).
func (ss *sparseSolve) replace(pos, enter int, w []float64) bool {
	if !ss.etas.Append(pos, w, ss.opts.Tol) {
		return false
	}
	ss.inBasis[ss.basis[pos]] = -1
	ss.basis[pos] = enter
	ss.inBasis[enter] = pos
	return true
}

// dualIterate runs the revised dual simplex under the current cost row,
// which must be dual feasible: it drives negative basic values out —
// the repair needed after an rhs refresh or a basis crash. Bland's
// smallest-index rule engages after stalling so degenerate rhs
// perturbations cannot cycle. Returns Optimal, Infeasible (certificate,
// re-confirmed cold by the caller) or IterationLimit (budget or
// numerical breakdown; the caller abandons).
func (ss *sparseSolve) dualIterate() Status {
	tol := ss.opts.Tol
	bland := ss.opts.Bland
	stall := 0
	lastObj := math.Inf(1)
	for {
		if ss.iters >= ss.opts.MaxIterations {
			return IterationLimit
		}
		leave := -1
		if bland {
			bestCol := ss.ncols
			for r, v := range ss.xB {
				if v < -tol && ss.basis[r] < bestCol {
					leave, bestCol = r, ss.basis[r]
				}
			}
		} else {
			minVal := -tol
			for r, v := range ss.xB {
				if v < minVal {
					leave, minVal = r, v
				}
			}
		}
		if leave < 0 {
			return Optimal
		}
		rho := ss.btranUnit(leave)
		y := ss.btranCosts()
		enter, bestRatio := -1, math.Inf(1)
		for j := 0; j < ss.ncols; j++ {
			if ss.inBasis[j] >= 0 {
				continue
			}
			alpha := ss.colDot(j, rho)
			if alpha >= -tol {
				continue
			}
			z := ss.colDot(j, y) - ss.obj[j] // ≥ -tol by dual feasibility
			if z < 0 {
				z = 0
			}
			if ratio := z / -alpha; ratio < bestRatio {
				enter, bestRatio = j, ratio
			}
		}
		if enter >= 0 && bland {
			// Smallest-index tie-break among the ratio minimizers.
			edge := bestRatio + tol*(1+math.Abs(bestRatio))
			for j := 0; j < enter; j++ {
				if ss.inBasis[j] >= 0 {
					continue
				}
				alpha := ss.colDot(j, rho)
				if alpha >= -tol {
					continue
				}
				z := ss.colDot(j, y) - ss.obj[j]
				if z < 0 {
					z = 0
				}
				if z/-alpha <= edge {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return Infeasible
		}
		w := ss.ftranCol(enter)
		piv := w[leave]
		if math.Abs(piv) <= tol {
			return IterationLimit // FTRAN disagrees with pricing: breakdown
		}
		theta := ss.xB[leave] / piv
		for i := range ss.xB {
			ss.xB[i] -= theta * w[i]
		}
		ss.xB[leave] = theta
		if !ss.replace(leave, enter, w) {
			return IterationLimit
		}
		ss.iters++
		if ss.etas.Len() >= sparseRefactorEvery && !ss.refactorize() {
			return IterationLimit
		}
		obj := ss.objValue()
		if obj <= lastObj-tol {
			stall = 0
			lastObj = obj
		} else {
			stall++
			if stall > sparseStallLimit {
				bland = true
			}
		}
	}
}

// primalIterate runs the revised primal simplex with partial pricing
// over the sparse columns, switching to Bland's rule after stalling.
func (ss *sparseSolve) primalIterate() Status {
	tol := ss.opts.Tol
	bland := ss.opts.Bland
	stall := 0
	lastObj := math.Inf(-1)
	for {
		if ss.iters >= ss.opts.MaxIterations {
			return IterationLimit
		}
		y := ss.btranCosts()
		enter := ss.price(y, bland, tol)
		if enter < 0 {
			return Optimal
		}
		w := ss.ftranCol(enter)
		leave, bestRatio := -1, math.Inf(1)
		for i, wi := range w {
			if wi <= tol {
				continue
			}
			ratio := ss.xB[i] / wi
			if ratio < bestRatio-tol {
				leave, bestRatio = i, ratio
				continue
			}
			if ratio <= bestRatio+tol && leave >= 0 {
				// Tie-break: Bland takes the smallest basic column index
				// (termination); otherwise the larger pivot wins (stability).
				if bland {
					if ss.basis[i] < ss.basis[leave] {
						leave, bestRatio = i, ratio
					}
				} else if wi > w[leave] {
					leave, bestRatio = i, ratio
				}
			}
		}
		if leave < 0 {
			return Unbounded
		}
		piv := w[leave]
		theta := ss.xB[leave] / piv
		for i := range ss.xB {
			ss.xB[i] -= theta * w[i]
		}
		ss.xB[leave] = theta
		if !ss.replace(leave, enter, w) {
			return IterationLimit
		}
		ss.iters++
		if ss.etas.Len() >= sparseRefactorEvery && !ss.refactorize() {
			return IterationLimit
		}
		obj := ss.objValue()
		if obj >= lastObj+tol {
			stall = 0
			lastObj = obj
		} else {
			stall++
			if stall > sparseStallLimit {
				bland = true
			}
		}
	}
}

// price returns the entering column, or -1 at optimality. The default
// mode is partial (cyclic block) pricing: scan blocks of columns from a
// persistent cursor and take the best violator in the first block that
// has one, falling through to a full sweep before declaring optimality.
// Bland mode scans from column 0 for the smallest violating index.
func (ss *sparseSolve) price(y []float64, bland bool, tol float64) int {
	if bland {
		for j := 0; j < ss.ncols; j++ {
			if ss.inBasis[j] >= 0 {
				continue
			}
			if ss.obj[j]-ss.colDot(j, y) > tol {
				return j
			}
		}
		return -1
	}
	span := ss.ncols / 16
	if span < 128 {
		span = 128
	}
	best, bestD := -1, tol
	j := ss.cursor
	if j >= ss.ncols {
		j = 0
	}
	for scanned := 0; scanned < ss.ncols; {
		if ss.inBasis[j] < 0 {
			if d := ss.obj[j] - ss.colDot(j, y); d > bestD {
				best, bestD = j, d
			}
		}
		scanned++
		j++
		if j == ss.ncols {
			j = 0
		}
		if best >= 0 && scanned%span == 0 {
			break
		}
	}
	ss.cursor = j
	return best
}

// extract reads the structural solution out of the basic values, with the
// same tiny-negative clamp as the dense tableau.
func (ss *sparseSolve) extract() []float64 {
	x := make([]float64, ss.n)
	for i, c := range ss.basis {
		if c < ss.n {
			v := ss.xB[i]
			if v < 0 && v > -ss.opts.Tol*10 {
				v = 0
			}
			x[c] = v
		}
	}
	return x
}

// duals recovers the per-row shadow prices from the simplex multipliers
// under the true costs: y solves Bᵀy = c_B, reported in the model's own
// optimization direction (matching the dense marker-column recovery).
func (ss *sparseSolve) duals() []float64 {
	y := ss.btranCosts()
	d := ss.dir()
	out := make([]float64, ss.rows)
	for i := range out {
		out[i] = d * y[i]
	}
	return out
}

// solveWarmSparse is SolveWarm's sparse arm: hot re-solve on the retained
// factors when the structure is unchanged, otherwise a crash-import (the
// seed may be empty — the all-slack basis then starts the dual repair, so
// even a first solve avoids the dense tableau), with the cold dense
// two-phase path as the audited correctness anchor.
func (s *Solver) solveWarmSparse(m *Model, seed *Basis, opts Options) (*Result, error) {
	s.ws = retained{} // dense hot state does not survive a sparse round
	if s.sws.valid && s.sws.ss != nil && sameStructure(s.sws.ss.m, m) {
		if res := s.hotSparse(m, opts); res != nil {
			s.out.Path = "hot"
			s.out.Sparse = true
			s.stats.HotSolves++
			s.stats.SparseSolves++
			return res, nil
		}
	}
	if res := s.importSparse(m, seed, opts); res != nil {
		s.out.Path = "import"
		s.out.Sparse = true
		s.stats.ImportSolves++
		s.stats.SparseSolves++
		return res, nil
	}
	s.out.FellBack = true
	s.stats.Fallbacks++
	s.out.Path = "cold"
	return s.solveCold(m, opts)
}

// hotSparse re-solves on the retained factors: FTRAN turns the new rhs
// into the new basic solution, the dual simplex under the previous
// (still dual-feasible) costs repairs primal feasibility, then the new
// costs are priced in and primal pivots finish. Non-Optimal exits abandon
// the retained state (recording the wasted pivots) so the caller falls
// back. Instead of abandoning at the drift bound like the dense path, the
// sparse path simply refactorizes — an O(fill) operation.
func (s *Solver) hotSparse(m *Model, opts Options) *Result {
	ss := s.sws.ss
	ss.m = m
	ss.opts = opts.withDefaults(ss.rows, ss.n)
	ss.iters = 0
	if s.sws.uses >= maxHotUses {
		if !ss.refactorize() {
			s.abandonSparse(ss)
			return nil
		}
		s.sws.uses = 0
	}
	ss.computeXB()
	// Dual repair runs under the previous solve's costs: they are still
	// dual feasible for this basis, while the new costs need not be.
	if st := ss.dualIterate(); st != Optimal {
		s.abandonSparse(ss)
		return nil
	}
	ss.setObj()
	if st := ss.primalIterate(); st != Optimal {
		s.abandonSparse(ss)
		return nil
	}
	res := s.acceptSparse(ss)
	if res == nil {
		s.abandonSparse(ss)
		return nil
	}
	s.sws.uses++
	return res
}

// importSparse crashes the seed basis (or, with no seed, the all-slack
// basis) into fresh factors, repairs primal feasibility with a zero-cost
// dual phase (an all-zero cost row is trivially dual feasible), prices in
// the true costs and finishes with primal pivots.
func (s *Solver) importSparse(m *Model, seed *Basis, opts Options) *Result {
	s.sws = retainedSparse{}
	ss := newSparseSolve(m, opts)
	if !ss.crashBasis(seed) {
		return nil
	}
	ss.computeXB()
	ss.zeroObj()
	if st := ss.dualIterate(); st != Optimal {
		s.abandonSparse(ss)
		return nil
	}
	ss.setObj()
	if st := ss.primalIterate(); st != Optimal {
		s.abandonSparse(ss)
		return nil
	}
	res := s.acceptSparse(ss)
	if res == nil {
		s.abandonSparse(ss)
		return nil
	}
	s.sws = retainedSparse{ss: ss, valid: true}
	return res
}

// acceptSparse audits a sparse state that claims optimality against the
// model, with the same rhs-scaled tolerance as the dense acceptWarm;
// numerical drift beyond it rejects the result so the cold path re-solves
// from scratch.
func (s *Solver) acceptSparse(ss *sparseSolve) *Result {
	x := ss.extract()
	if ss.m.CheckFeasible(x, auditTol(ss.m, ss.opts.Tol)) != nil {
		return nil
	}
	s.out.WarmPivots = ss.iters
	s.stats.WarmPivots += int64(ss.iters)
	s.setLastSparse(ss)
	return &Result{
		Status:     Optimal,
		Objective:  ss.m.ObjectiveValue(x),
		X:          x,
		Duals:      ss.duals(),
		Iterations: ss.iters,
		Warm:       true,
	}
}

// Package lp implements a dense two-phase primal simplex solver for linear
// programs, together with a small model-builder API with named variables.
//
// The paper's one-level-TUF dispatch problem is a pure LP (Section IV-1),
// and its multi-level problems reduce to LPs once every (request type, data
// center) pair commits to a utility level, so this package is the
// optimization substrate for the whole reproduction. Go has no production
// LP ecosystem, so the solver is built from scratch on the standard tableau
// method: Phase 1 drives artificial variables out of the basis to find a
// feasible vertex, Phase 2 optimizes the true objective. Dantzig pricing is
// used by default with an automatic switch to Bland's rule to guarantee
// termination on degenerate problems.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the direction of a constraint row.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // left-hand side ≤ rhs
	GE              // left-hand side ≥ rhs
	EQ              // left-hand side = rhs
)

// String returns the conventional symbol for the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Status describes the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterationLimit
	// NumericBreakdown reports that the simplex claimed optimality but the
	// solution failed the post-solve feasibility audit — the tableau
	// drifted numerically. Surfaced instead of a silently wrong answer;
	// callers treat it like IterationLimit (retry, escalate, re-scale).
	NumericBreakdown
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	case NumericBreakdown:
		return "numeric-breakdown"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Errors reported by Solve. A Result is still returned alongside these so
// the caller can inspect the status.
var (
	ErrInfeasible       = errors.New("lp: problem is infeasible")
	ErrUnbounded        = errors.New("lp: problem is unbounded")
	ErrIterationLimit   = errors.New("lp: iteration limit exceeded")
	ErrNumericBreakdown = errors.New("lp: solution failed the feasibility audit (numeric breakdown)")
)

// Term is one coefficient*variable entry of a linear expression.
type Term struct {
	Var  int // variable index returned by AddVariable
	Coef float64
}

// constraint is one stored row of the model.
type constraint struct {
	name  string
	terms []Term
	sense Sense
	rhs   float64
}

// Model is a linear program under construction. All variables are
// non-negative; upper bounds are expressed as explicit ≤ rows by the caller
// (or with AddUpperBound). The zero value is an empty maximization model.
type Model struct {
	names    []string
	obj      []float64
	rows     []constraint
	minimize bool
}

// NewModel returns an empty maximization model.
func NewModel() *Model { return &Model{} }

// SetMinimize switches the model to minimization of the objective.
func (m *Model) SetMinimize(min bool) { m.minimize = min }

// NumVariables returns the number of variables added so far.
func (m *Model) NumVariables() int { return len(m.names) }

// NumConstraints returns the number of constraint rows added so far.
func (m *Model) NumConstraints() int { return len(m.rows) }

// AddVariable adds a non-negative variable with the given objective
// coefficient and returns its index.
func (m *Model) AddVariable(name string, objCoef float64) int {
	m.names = append(m.names, name)
	m.obj = append(m.obj, objCoef)
	return len(m.names) - 1
}

// SetObjective overwrites the objective coefficient of variable v.
func (m *Model) SetObjective(v int, coef float64) {
	m.obj[v] = coef
}

// VariableName returns the name given to variable v.
func (m *Model) VariableName(v int) string { return m.names[v] }

// AddConstraint adds the row Σ terms (sense) rhs and returns its index.
// Terms may mention a variable more than once; coefficients accumulate.
func (m *Model) AddConstraint(name string, terms []Term, sense Sense, rhs float64) int {
	cp := make([]Term, len(terms))
	copy(cp, terms)
	m.rows = append(m.rows, constraint{name: name, terms: cp, sense: sense, rhs: rhs})
	return len(m.rows) - 1
}

// AddUpperBound constrains variable v ≤ bound via an explicit row.
func (m *Model) AddUpperBound(v int, bound float64) int {
	return m.AddConstraint(m.names[v]+"_ub", []Term{{Var: v, Coef: 1}}, LE, bound)
}

// RowSpec returns a copy of constraint row c: its terms, sense and rhs.
// It lets alternative solvers (e.g. internal/nlp) consume a Model without
// reaching into its representation.
func (m *Model) RowSpec(c int) ([]Term, Sense, float64) {
	row := m.rows[c]
	terms := make([]Term, len(row.terms))
	copy(terms, row.terms)
	return terms, row.sense, row.rhs
}

// ObjectiveCoefs returns a copy of the objective coefficient vector.
func (m *Model) ObjectiveCoefs() []float64 {
	out := make([]float64, len(m.obj))
	copy(out, m.obj)
	return out
}

// IsMinimize reports whether the model minimizes its objective.
func (m *Model) IsMinimize() bool { return m.minimize }

// Result is the outcome of solving a Model.
type Result struct {
	Status    Status
	Objective float64   // objective value in the model's own direction
	X         []float64 // one value per variable, indexed as returned by AddVariable
	// Duals holds one shadow price per constraint row: the marginal change
	// of the objective per unit increase of that row's rhs (in the model's
	// own direction). Zero for non-binding rows by complementary
	// slackness. Only populated at Optimal.
	Duals      []float64
	Iterations int
	// Warm reports that the result came from a warm-started path (hot
	// re-solve or basis import) of a Solver rather than the cold
	// two-phase simplex. Warm results are audited against the model
	// before being returned; see DESIGN.md §12.
	Warm bool
}

// Value returns the solution value of variable v.
func (r *Result) Value(v int) float64 { return r.X[v] }

// RowActivity returns Σ coef*x for constraint row c under solution x.
func (m *Model) RowActivity(c int, x []float64) float64 {
	var s float64
	for _, t := range m.rows[c].terms {
		s += t.Coef * x[t.Var]
	}
	return s
}

// CheckFeasible verifies that x satisfies every constraint and the
// non-negativity bounds within tol, returning a descriptive error for the
// first violation found. It is used heavily by tests and by callers that
// post-process solutions.
func (m *Model) CheckFeasible(x []float64, tol float64) error {
	if len(x) != len(m.names) {
		return fmt.Errorf("lp: solution has %d values, model has %d variables", len(x), len(m.names))
	}
	for i, v := range x {
		if v < -tol {
			return fmt.Errorf("lp: variable %s = %g violates non-negativity", m.names[i], v)
		}
	}
	for i, row := range m.rows {
		act := m.RowActivity(i, x)
		switch row.sense {
		case LE:
			if act > row.rhs+tol {
				return fmt.Errorf("lp: row %s: %g > %g", row.name, act, row.rhs)
			}
		case GE:
			if act < row.rhs-tol {
				return fmt.Errorf("lp: row %s: %g < %g", row.name, act, row.rhs)
			}
		case EQ:
			if math.Abs(act-row.rhs) > tol {
				return fmt.Errorf("lp: row %s: %g != %g", row.name, act, row.rhs)
			}
		}
	}
	return nil
}

// ObjectiveValue evaluates the model objective at x (in the model's own
// direction, i.e. the value being maximized or minimized).
func (m *Model) ObjectiveValue(x []float64) float64 {
	var s float64
	for i, c := range m.obj {
		s += c * x[i]
	}
	return s
}

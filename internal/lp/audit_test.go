package lp

import (
	"errors"
	"testing"
)

// TestColdAuditSurfacesNumericBreakdown is the regression test for the
// silent-negative-solution leak: extract's clamp only fixes values in
// (−10·Tol, 0), so a tableau whose basic values drifted further negative
// used to pass its answer out of the cold path unaudited. The cold
// Optimal claim now runs the same rhs-scaled CheckFeasible gate as the
// warm paths and surfaces NumericBreakdown instead.
func TestColdAuditSurfacesNumericBreakdown(t *testing.T) {
	build := func() *tableau {
		m := NewModel()
		x := m.AddVariable("x", 1)
		m.AddConstraint("cap", []Term{{x, 1}}, LE, 5)
		tb := newTableau(m, Options{})
		if st := tb.run(); st != Optimal {
			t.Fatalf("setup solve: %v", st)
		}
		return tb
	}

	// Healthy tableau: the audit passes and the result is Optimal.
	tb := build()
	res, err := tb.result(Optimal)
	if err != nil || res.Status != Optimal {
		t.Fatalf("healthy path: status %v err %v", res.Status, err)
	}

	// Corrupt the basic value of x beyond the clamp window (−10·Tol) but
	// exactly in the range the old code leaked silently.
	tb = build()
	for r, b := range tb.basis {
		if b == 0 { // structural x basic
			tb.a.Set(r, tb.total, -1e-6)
		}
	}
	res, err = tb.result(Optimal)
	if !errors.Is(err, ErrNumericBreakdown) {
		t.Fatalf("corrupted tableau: err %v, want ErrNumericBreakdown", err)
	}
	if res.Status != NumericBreakdown {
		t.Fatalf("corrupted tableau: status %v, want NumericBreakdown", res.Status)
	}
	if res.X != nil || res.Duals != nil {
		t.Fatalf("breakdown result must not carry a solution: %+v", res)
	}
}

// TestAbandonedPivotAccounting verifies that pivots burned on abandoned
// warm attempts are reported instead of vanishing: a budget-starved warm
// solve must surface them in Outcome.AbandonedPivots and the cumulative
// SolverStats, while healthy chains report zero.
func TestAbandonedPivotAccounting(t *testing.T) {
	// Healthy warm chain: nothing is abandoned.
	var healthy Solver
	var seed *Basis
	for slot := 0; slot < 3; slot++ {
		scale := 1 + 0.1*float64(slot)
		if _, err := healthy.SolveWarm(buildTransportLP(scale, 1), seed, Options{}); err != nil {
			t.Fatal(err)
		}
		if out := healthy.LastOutcome(); out.AbandonedPivots != 0 {
			t.Fatalf("slot %d: abandoned pivots %d on a healthy chain", slot, out.AbandonedPivots)
		}
		if b, ok := healthy.ExportBasis(); ok {
			seed = b
		}
	}
	if st := healthy.Stats(); st.AbandonedPivots != 0 {
		t.Fatalf("healthy chain stats: %+v", st)
	}

	// A one-pivot budget starves the dense import mid-repair; the burned
	// pivot must be accounted, not lost. The all-surplus seed on the Beale
	// dual guarantees the repair cannot finish in one pivot.
	var starved Solver
	allSurplus := NewBasis(nil, []string{"d1", "d2", "d3", "d4"})
	res, err := starved.SolveWarm(buildBealeDual(), allSurplus, Options{MaxIterations: 1})
	out := starved.LastOutcome()
	if !out.FellBack || out.Path != "cold" {
		t.Fatalf("outcome %+v (res %v err %v), want cold fallback", out, res, err)
	}
	if out.AbandonedPivots < 1 {
		t.Fatalf("outcome %+v: abandoned pivots not recorded", out)
	}
	if st := starved.Stats(); st.AbandonedPivots != int64(out.AbandonedPivots) {
		t.Fatalf("stats %+v disagree with outcome %+v", st, out)
	}

	// Same contract on the sparse path.
	var sparse Solver
	opts := sparseTestOpts()
	opts.MaxIterations = 1
	res, err = sparse.SolveWarm(buildInequalityLP(1), nil, opts)
	out = sparse.LastOutcome()
	if !out.FellBack || out.Path != "cold" {
		t.Fatalf("sparse outcome %+v (res %v err %v), want cold fallback", out, res, err)
	}
	if out.AbandonedPivots < 1 {
		t.Fatalf("sparse outcome %+v: abandoned pivots not recorded", out)
	}
	if st := sparse.Stats(); st.AbandonedPivots != int64(out.AbandonedPivots) {
		t.Fatalf("sparse stats %+v disagree with outcome %+v", st, out)
	}
}

package lp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadLPFormat parses the subset of the CPLEX LP file format that
// WriteLPFormat emits (and that standard tools produce for pure LPs):
// an objective section, Subject To rows with <=, >=, =, and a Bounds
// section restricted to "name >= 0" (the package's implicit bound).
// It enables round-tripping models through files and importing problems
// written by other solvers for cross-checking.
func ReadLPFormat(r io.Reader) (*Model, error) {
	m := NewModel()
	varIdx := map[string]int{}
	getVar := func(name string) int {
		if i, ok := varIdx[name]; ok {
			return i
		}
		i := m.AddVariable(name, 0)
		varIdx[name] = i
		return i
	}

	type section int
	const (
		secNone section = iota
		secObjective
		secSubject
		secBounds
		secEnd
	)
	sec := secNone

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	// Expressions may span lines; accumulate until the row terminator
	// (objective: next section keyword; constraints: sense+rhs present).
	var pending string
	flushObjective := func() error {
		if strings.TrimSpace(pending) == "" {
			return nil
		}
		terms, err := parseLinExpr(pending, getVar)
		if err != nil {
			return fmt.Errorf("lp: objective: %w", err)
		}
		for _, t := range terms {
			m.obj[t.Var] += t.Coef
		}
		pending = ""
		return nil
	}
	flushConstraint := func() error {
		body := strings.TrimSpace(pending)
		pending = ""
		if body == "" {
			return nil
		}
		sense, pos := findSense(body)
		if pos < 0 {
			return fmt.Errorf("lp: constraint %q has no sense", body)
		}
		lhs := body[:pos]
		rhsStr := strings.TrimSpace(body[pos+len(sense.String()):])
		rhs, err := strconv.ParseFloat(rhsStr, 64)
		if err != nil {
			return fmt.Errorf("lp: constraint rhs %q: %w", rhsStr, err)
		}
		name := "c"
		if i := strings.Index(lhs, ":"); i >= 0 {
			name = strings.TrimSpace(lhs[:i])
			lhs = lhs[i+1:]
		}
		terms, err := parseLinExpr(lhs, getVar)
		if err != nil {
			return fmt.Errorf("lp: constraint %s: %w", name, err)
		}
		m.AddConstraint(name, terms, sense, rhs)
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, `\`) {
			continue
		}
		lower := strings.ToLower(line)
		switch {
		case lower == "maximize" || lower == "max":
			sec = secObjective
			m.SetMinimize(false)
			continue
		case lower == "minimize" || lower == "min":
			sec = secObjective
			m.SetMinimize(true)
			continue
		case lower == "subject to" || lower == "st" || lower == "s.t.":
			if err := flushObjective(); err != nil {
				return nil, err
			}
			sec = secSubject
			continue
		case lower == "bounds":
			if err := flushConstraint(); err != nil {
				return nil, err
			}
			sec = secBounds
			continue
		case lower == "end":
			if sec == secSubject {
				if err := flushConstraint(); err != nil {
					return nil, err
				}
			}
			sec = secEnd
			continue
		}
		switch sec {
		case secObjective:
			// Strip an "obj:" label if present.
			if i := strings.Index(line, ":"); i >= 0 && !strings.ContainsAny(line[:i], "+-<>=") {
				line = line[i+1:]
			}
			pending += " " + line
		case secSubject:
			// A new labeled row flushes the previous one.
			if i := strings.Index(line, ":"); i >= 0 && !strings.ContainsAny(line[:i], "+-<>=") {
				if err := flushConstraint(); err != nil {
					return nil, err
				}
			}
			pending += " " + line
			if _, pos := findSense(pending); pos >= 0 {
				// The rhs may still be on the next line; only flush when a
				// number follows the sense.
				body := strings.TrimSpace(pending)
				s, p := findSense(body)
				rhs := strings.TrimSpace(body[p+len(s.String()):])
				if rhs != "" {
					if err := flushConstraint(); err != nil {
						return nil, err
					}
				}
			}
		case secBounds:
			// Only the implicit non-negativity bound is supported.
			f := strings.Fields(line)
			if len(f) == 3 && f[1] == ">=" && f[2] == "0" {
				getVar(f[0])
				continue
			}
			return nil, fmt.Errorf("lp: line %d: unsupported bound %q (only 'name >= 0')", lineNo, line)
		case secNone:
			return nil, fmt.Errorf("lp: line %d: content before objective section", lineNo)
		case secEnd:
			return nil, fmt.Errorf("lp: line %d: content after End", lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if sec == secObjective {
		if err := flushObjective(); err != nil {
			return nil, err
		}
	}
	if sec == secSubject {
		if err := flushConstraint(); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// findSense locates the first <=, >= or = in s, returning its Sense and
// byte position (-1 if absent).
func findSense(s string) (Sense, int) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			if i+1 < len(s) && s[i+1] == '=' {
				return LE, i
			}
			return LE, i // tolerate bare '<'
		case '>':
			if i+1 < len(s) && s[i+1] == '=' {
				return GE, i
			}
			return GE, i
		case '=':
			return EQ, i
		}
	}
	return LE, -1
}

// parseLinExpr parses "± c name ± c name …" with whitespace-separated
// tokens (the form WriteLPFormat emits; coefficients optional, scientific
// notation like 1e-05 supported).
func parseLinExpr(s string, getVar func(string) int) ([]Term, error) {
	fields := strings.Fields(s)
	var terms []Term
	sign := 1.0
	coef := 1.0
	haveCoef := false
	for _, f := range fields {
		switch f {
		case "+":
			sign = 1
			continue
		case "-":
			sign = -1
			continue
		}
		if v, err := strconv.ParseFloat(f, 64); err == nil {
			if haveCoef {
				return nil, fmt.Errorf("two consecutive numbers near %q", f)
			}
			coef = v
			haveCoef = true
			continue
		}
		terms = append(terms, Term{Var: getVar(f), Coef: sign * coef})
		sign, coef, haveCoef = 1, 1, false
	}
	if haveCoef {
		return nil, fmt.Errorf("dangling coefficient in %q", s)
	}
	return terms, nil
}

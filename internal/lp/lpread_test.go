package lp

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestReadLPFormatBasic(t *testing.T) {
	in := `Maximize
 obj: 3 x + 5 y
Subject To
 c0: 1 x <= 4
 c1: 2 y <= 12
 c2: 3 x + 2 y <= 18
Bounds
 x >= 0
 y >= 0
End
`
	m, err := ReadLPFormat(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-36) > 1e-9 {
		t.Fatalf("objective %g, want 36", res.Objective)
	}
}

func TestReadLPFormatMinimizeAndSenses(t *testing.T) {
	in := `Minimize
 obj: 2 x + 3 y
Subject To
 cover: 1 x + 1 y >= 10
 pin: 1 y = 2
End
`
	m, err := ReadLPFormat(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// y pinned at 2, x = 8 → 16 + 6 = 22.
	if math.Abs(res.Objective-22) > 1e-9 {
		t.Fatalf("objective %g, want 22", res.Objective)
	}
}

func TestReadLPFormatImplicitCoefficientsAndComments(t *testing.T) {
	in := `\ a comment
Maximize
 obj: x + 2.5 y - z
Subject To
 c0: x + y + z <= 10
 c1: - x + y <= 2
End
`
	m, err := ReadLPFormat(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVariables() != 3 || m.NumConstraints() != 2 {
		t.Fatalf("model shape %d/%d", m.NumVariables(), m.NumConstraints())
	}
	res, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: z=0, y as large as possible: y ≤ x+2, x+y ≤ 10 → x=4, y=6 → 4+15=19.
	if math.Abs(res.Objective-19) > 1e-9 {
		t.Fatalf("objective %g, want 19", res.Objective)
	}
}

func TestReadLPFormatErrors(t *testing.T) {
	cases := map[string]string{
		"no sense":          "Maximize\nobj: x\nSubject To\nc: 1 x 4\nEnd\n",
		"bad rhs":           "Maximize\nobj: x\nSubject To\nc: 1 x <= abc\nEnd\n",
		"double number":     "Maximize\nobj: 3 4 x\nSubject To\nc: x <= 1\nEnd\n",
		"dangling coef":     "Maximize\nobj: x + 3\nSubject To\nc: x <= 1\nEnd\n",
		"content before":    "x <= 1\nMaximize\nobj: x\nEnd\n",
		"content after end": "Maximize\nobj: x\nEnd\nstray\n",
		"unsupported bound": "Maximize\nobj: x\nSubject To\nc: x <= 1\nBounds\nx <= 5\nEnd\n",
		"free bound":        "Maximize\nobj: x\nSubject To\nc: x <= 1\nBounds\nx free\nEnd\n",
	}
	for name, in := range cases {
		if _, err := ReadLPFormat(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestLPFormatRoundTrip writes random models, reads them back and checks
// the optimum is preserved — the write/read pair is a faithful codec for
// everything this package can express.
func TestLPFormatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		m := NewModel()
		nvars := 1 + rng.Intn(5)
		for v := 0; v < nvars; v++ {
			m.AddVariable("x", rng.Float64()*10-3)
		}
		for r := 0; r < 1+rng.Intn(4); r++ {
			terms := make([]Term, nvars)
			for v := 0; v < nvars; v++ {
				terms[v] = Term{v, rng.Float64()*4 - 1}
			}
			sense := []Sense{LE, GE, EQ}[rng.Intn(3)]
			m.AddConstraint("c", terms, sense, rng.Float64()*8)
		}
		for v := 0; v < nvars; v++ {
			m.AddUpperBound(v, 30)
		}
		orig, err := m.Solve()
		if err != nil {
			continue // infeasible/unbounded randoms are fine to skip
		}
		var b strings.Builder
		if err := m.WriteLPFormat(&b); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		back, err := ReadLPFormat(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("trial %d: read: %v\n%s", trial, err, b.String())
		}
		res, err := back.Solve()
		if err != nil {
			t.Fatalf("trial %d: re-solve: %v", trial, err)
		}
		if math.Abs(res.Objective-orig.Objective) > 1e-6*(1+math.Abs(orig.Objective)) {
			t.Fatalf("trial %d: round trip changed optimum: %g vs %g\n%s",
				trial, res.Objective, orig.Objective, b.String())
		}
	}
}

// TestDispatchLPRoundTrip exercises the codec on the real exported model
// shape (names with underscores, tiny scientific-notation coefficients).
func TestDispatchLPRoundTrip(t *testing.T) {
	m := NewModel()
	phi := m.AddVariable("phi_k0_q0_l0", 0)
	lam := m.AddVariable("lam_k0_q0_s0_l0", 1e-5)
	m.AddConstraint("cap_k0_q0_l0", []Term{{phi, 160000}, {lam, -1}}, GE, 800)
	m.AddConstraint("arr_k0_s0", []Term{{lam, 1}}, LE, 30000)
	m.AddConstraint("share_l0", []Term{{phi, 1}}, LE, 1)
	orig, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := m.WriteLPFormat(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLPFormat(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	res, err := back.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-orig.Objective) > 1e-9 {
		t.Fatalf("round trip optimum %g vs %g", res.Objective, orig.Objective)
	}
}

package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestDualsTextbook(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18.
	// Known duals: y1 = 0 (slack), y2 = 3/2, y3 = 1.
	m := NewModel()
	x := m.AddVariable("x", 3)
	y := m.AddVariable("y", 5)
	m.AddConstraint("c1", []Term{{x, 1}}, LE, 4)
	m.AddConstraint("c2", []Term{{y, 2}}, LE, 12)
	m.AddConstraint("c3", []Term{{x, 3}, {y, 2}}, LE, 18)
	res := solveOrFatal(t, m)
	want := []float64{0, 1.5, 1}
	for i, w := range want {
		if math.Abs(res.Duals[i]-w) > 1e-9 {
			t.Fatalf("dual %d = %g, want %g (all: %v)", i, res.Duals[i], w, res.Duals)
		}
	}
}

func TestDualsStrongDuality(t *testing.T) {
	// On random bounded LPs, Σ y_i b_i must equal the primal objective.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 80; trial++ {
		nvars := 2 + rng.Intn(3)
		nrows := 2 + rng.Intn(4)
		m := NewModel()
		for v := 0; v < nvars; v++ {
			m.AddVariable("x", rng.Float64()*8-1)
		}
		rhs := make([]float64, 0, nrows+nvars)
		for r := 0; r < nrows; r++ {
			terms := make([]Term, nvars)
			for v := 0; v < nvars; v++ {
				terms[v] = Term{v, rng.Float64() * 4}
			}
			b := 1 + rng.Float64()*9
			m.AddConstraint("c", terms, LE, b)
			rhs = append(rhs, b)
		}
		for v := 0; v < nvars; v++ {
			m.AddUpperBound(v, 25)
			rhs = append(rhs, 25)
		}
		res, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var dualObj float64
		for i, b := range rhs {
			dualObj += res.Duals[i] * b
		}
		if math.Abs(dualObj-res.Objective) > 1e-6*(1+math.Abs(res.Objective)) {
			t.Fatalf("trial %d: dual objective %g != primal %g (duals %v)",
				trial, dualObj, res.Objective, res.Duals)
		}
		// Complementary slackness: non-binding rows carry zero duals.
		for i := 0; i < m.NumConstraints(); i++ {
			slack := rhs[i] - m.RowActivity(i, res.X)
			if slack > 1e-6 && math.Abs(res.Duals[i]) > 1e-6 {
				t.Fatalf("trial %d: row %d slack %g but dual %g", trial, i, slack, res.Duals[i])
			}
		}
		// Max problem with LE rows: duals are non-negative.
		for i, y := range res.Duals {
			if y < -1e-9 {
				t.Fatalf("trial %d: negative dual %g on LE row %d", trial, y, i)
			}
		}
	}
}

func TestDualsGEAndEQ(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 10: dual of the cover row is the marginal
	// cost of one more unit of required coverage = 2 (x is cheaper).
	m := NewModel()
	m.SetMinimize(true)
	m.AddVariable("x", 2)
	m.AddVariable("y", 3)
	m.AddConstraint("cover", []Term{{0, 1}, {1, 1}}, GE, 10)
	res := solveOrFatal(t, m)
	if math.Abs(res.Duals[0]-2) > 1e-9 {
		t.Fatalf("GE dual = %g, want 2", res.Duals[0])
	}

	// max x + 2y s.t. x + y = 5, y ≤ 3: at (2,3), the EQ row's shadow
	// price is 1 (extra balance goes to x) and the cap's is 1 (swap x→y).
	m2 := NewModel()
	m2.AddVariable("x", 1)
	m2.AddVariable("y", 2)
	m2.AddConstraint("bal", []Term{{0, 1}, {1, 1}}, EQ, 5)
	m2.AddConstraint("cap", []Term{{1, 1}}, LE, 3)
	res2 := solveOrFatal(t, m2)
	if math.Abs(res2.Duals[0]-1) > 1e-9 || math.Abs(res2.Duals[1]-1) > 1e-9 {
		t.Fatalf("duals = %v, want [1 1]", res2.Duals)
	}
}

func TestDualsPredictRHSPerturbation(t *testing.T) {
	// The dual must predict the objective change for a small rhs bump.
	build := func(b3 float64) *Model {
		m := NewModel()
		x := m.AddVariable("x", 3)
		y := m.AddVariable("y", 5)
		m.AddConstraint("c1", []Term{{x, 1}}, LE, 4)
		m.AddConstraint("c2", []Term{{y, 2}}, LE, 12)
		m.AddConstraint("c3", []Term{{x, 3}, {y, 2}}, LE, b3)
		return m
	}
	base := solveOrFatal(t, build(18))
	eps := 0.01
	bumped := solveOrFatal(t, build(18+eps))
	predicted := base.Objective + base.Duals[2]*eps
	if math.Abs(bumped.Objective-predicted) > 1e-9 {
		t.Fatalf("perturbed objective %g, dual-predicted %g", bumped.Objective, predicted)
	}
}

func TestDualsFlippedRow(t *testing.T) {
	// max x s.t. -x ≤ -3 (normalized to x ≥ 3), x ≤ 7. The binding row is
	// the cap: dual 1; the flipped lower bound is slack: dual 0.
	m := NewModel()
	x := m.AddVariable("x", 1)
	m.AddConstraint("lo", []Term{{x, -1}}, LE, -3)
	m.AddConstraint("hi", []Term{{x, 1}}, LE, 7)
	res := solveOrFatal(t, m)
	if math.Abs(res.Duals[0]) > 1e-9 || math.Abs(res.Duals[1]-1) > 1e-9 {
		t.Fatalf("duals = %v, want [0 1]", res.Duals)
	}
}

// Package baseline implements the static dispatchers the paper's
// "Optimized" approach is evaluated against.
//
// The primary comparator is Balanced (paper Section V-A): CPU shares are
// split evenly across the K request types on every server, and each
// front-end fills data centers in ascending order of current electricity
// price, moving to the next center once one is saturated. Additional
// ordering policies (nearest-first, best-unit-profit-first, seeded random)
// are provided for ablations; they reuse the same fill mechanics and
// differ only in how each front-end ranks the centers.
package baseline

import (
	"fmt"
	"math/rand"
	"sort"

	"profitlb/internal/core"
)

// Order ranks data centers for one front-end in one slot. It returns the
// indices of the centers in visit order.
type Order func(in *core.Input, s int) []int

// Dispatcher is a static planner: even shares, ordered fill, no
// optimization. The zero value is unusable; use the constructors.
type Dispatcher struct {
	name  string
	order Order
}

// Name implements core.Planner.
func (d *Dispatcher) Name() string { return d.name }

// NewBalanced returns the paper's Balanced baseline: centers are visited
// in ascending electricity-price order.
func NewBalanced() *Dispatcher {
	return &Dispatcher{name: "balanced", order: func(in *core.Input, s int) []int {
		return sortedBy(in.Sys.L(), func(a, b int) bool { return in.Prices[a] < in.Prices[b] })
	}}
}

// NewNearest returns the distance-greedy ablation: each front-end fills
// its nearest center first.
func NewNearest() *Dispatcher {
	return &Dispatcher{name: "nearest", order: func(in *core.Input, s int) []int {
		d := in.Sys.FrontEnds[s].DistanceMiles
		return sortedBy(in.Sys.L(), func(a, b int) bool { return d[a] < d[b] })
	}}
}

// NewRandom returns a seeded random-order ablation. The order is drawn
// per front-end per call, deterministically in the seed.
func NewRandom(seed int64) *Dispatcher {
	rng := rand.New(rand.NewSource(seed))
	return &Dispatcher{name: "random", order: func(in *core.Input, s int) []int {
		idx := sortedBy(in.Sys.L(), func(a, b int) bool { return a < b })
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		return idx
	}}
}

// NewGreedyProfit returns the myopic unit-profit ablation: each front-end
// ranks centers by the per-request profit of the first (best) TUF level,
// summed over its types, ignoring congestion.
func NewGreedyProfit() *Dispatcher {
	return &Dispatcher{name: "greedy-profit", order: func(in *core.Input, s int) []int {
		sys := in.Sys
		score := make([]float64, sys.L())
		for l := 0; l < sys.L(); l++ {
			for k := 0; k < sys.K(); k++ {
				score[l] += sys.UnitProfit(k, s, l, sys.Classes[k].TUF.MaxUtility(), in.Prices[l])
			}
		}
		return sortedBy(sys.L(), func(a, b int) bool { return score[a] > score[b] })
	}}
}

func sortedBy(n int, less func(a, b int) bool) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return less(idx[i], idx[j]) })
	return idx
}

// Plan implements core.Planner. Front-ends are processed in order; each
// visits centers in the dispatcher's order, assigning as much of its
// per-type arrivals as the center's remaining capacity allows. Capacity of
// type k at center l is the even-share rate that still meets the type's
// final deadline: M_l·(C·μ_k/K − 1/D_k), shared across front-ends.
// Requests beyond total capacity are dropped (the paper's Balanced also
// fails to complete all requests under load).
func (d *Dispatcher) Plan(in *core.Input) (*core.Plan, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	sys := in.Sys
	K, S, L := sys.K(), sys.S(), sys.L()
	share := 1.0 / float64(K)

	remaining := make([][]float64, K) // [k][l] residual capacity
	for k := 0; k < K; k++ {
		remaining[k] = make([]float64, L)
		deadline := sys.Classes[k].TUF.Deadline()
		for l := 0; l < L; l++ {
			remaining[k][l] = sys.DedicatedCapacity(k, l, share, deadline)
		}
	}

	// assigned[k][s][l] before levels are known.
	assigned := make([][][]float64, K)
	for k := range assigned {
		assigned[k] = make([][]float64, S)
		for s := range assigned[k] {
			assigned[k][s] = make([]float64, L)
		}
	}
	for s := 0; s < S; s++ {
		order := d.order(in, s)
		if len(order) != L {
			return nil, fmt.Errorf("baseline: order for front-end %d returned %d centers, want %d", s, len(order), L)
		}
		for k := 0; k < K; k++ {
			left := in.Arrivals[s][k]
			for _, l := range order {
				if left <= 0 {
					break
				}
				take := left
				if take > remaining[k][l] {
					take = remaining[k][l]
				}
				if take <= 0 {
					continue
				}
				assigned[k][s][l] += take
				remaining[k][l] -= take
				left -= take
			}
		}
	}

	plan := core.NewPlan(sys)
	for l := 0; l < L; l++ {
		dc := &sys.Centers[l]
		anyLoad := false
		for k := 0; k < K; k++ {
			var lam float64
			for s := 0; s < S; s++ {
				lam += assigned[k][s][l]
			}
			if lam <= 0 {
				continue
			}
			anyLoad = true
			// Achieved delay at even share with the load spread across all
			// M servers, then the TUF level it lands in.
			perServer := lam / float64(dc.Servers)
			rate := share*dc.Capacity*dc.ServiceRate[k] - perServer
			if rate <= 0 {
				return nil, fmt.Errorf("baseline: center %d type %d overloaded despite capacity cap", l, k)
			}
			delay := 1 / rate
			cls := sys.Classes[k].TUF
			q := cls.LevelIndex(delay)
			if q < 0 {
				// A center filled to exactly its capacity meets the final
				// deadline with equality; floating point may land one ulp
				// past it.
				if delay <= cls.Deadline()*(1+1e-9) {
					q = cls.NumLevels() - 1
				} else {
					return nil, fmt.Errorf("baseline: center %d type %d delay %g beyond final deadline", l, k, delay)
				}
			}
			for s := 0; s < S; s++ {
				plan.Rate[k][q][s][l] = assigned[k][s][l]
			}
			plan.Phi[l][k][q] = share
		}
		if anyLoad {
			// The static baseline leaves the whole fleet powered on; only a
			// fully idle center is switched off.
			plan.ServersOn[l] = dc.Servers
		}
	}
	plan.Objective = planProfit(in, plan)
	return plan, nil
}

// planProfit evaluates the achieved net profit of a static plan using the
// utility of the TUF level each (type, center) landed in.
func planProfit(in *core.Input, plan *core.Plan) float64 {
	sys := in.Sys
	T := sys.Slot()
	var sum float64
	for l, n := range plan.ServersOn {
		sum -= sys.IdleCost(l, in.Prices[l]) * float64(n)
	}
	for k := 0; k < sys.K(); k++ {
		levels := sys.Classes[k].TUF.Levels()
		for q := range plan.Rate[k] {
			for s := range plan.Rate[k][q] {
				for l, v := range plan.Rate[k][q][s] {
					if v <= 0 {
						continue
					}
					sum += T * v * sys.UnitProfit(k, s, l, levels[q].Utility, in.Prices[l])
				}
			}
		}
	}
	return sum
}

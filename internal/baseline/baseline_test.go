package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"profitlb/internal/core"
	"profitlb/internal/datacenter"
	"profitlb/internal/tuf"
)

func testSystem() *datacenter.System {
	return &datacenter.System{
		Classes: []datacenter.RequestClass{
			{Name: "r1", TUF: tuf.MustNew([]tuf.Level{{Utility: 10, Deadline: 0.2}}), TransferCostPerMile: 0.0004},
			{Name: "r2", TUF: tuf.MustNew([]tuf.Level{{Utility: 20, Deadline: 0.5}, {Utility: 8, Deadline: 1.5}}), TransferCostPerMile: 0.0006},
		},
		FrontEnds: []datacenter.FrontEnd{
			{Name: "fe1", DistanceMiles: []float64{200, 900}},
			{Name: "fe2", DistanceMiles: []float64{700, 300}},
		},
		Centers: []datacenter.DataCenter{
			{Name: "cheap", Servers: 4, Capacity: 1, ServiceRate: []float64{100, 90}, EnergyPerRequest: []float64{0.8, 1.2}},
			{Name: "pricey", Servers: 4, Capacity: 1, ServiceRate: []float64{110, 95}, EnergyPerRequest: []float64{0.8, 1.2}},
		},
	}
}

func input(arr [][]float64, prices []float64) *core.Input {
	return &core.Input{Sys: testSystem(), Arrivals: arr, Prices: prices}
}

func mustPlan(t *testing.T, p core.Planner, in *core.Input) *core.Plan {
	t.Helper()
	plan, err := p.Plan(in)
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	if err := core.Verify(in, plan, 1e-6); err != nil {
		t.Fatalf("%s: plan fails verification: %v", p.Name(), err)
	}
	return plan
}

func TestBalancedFillsCheapestFirst(t *testing.T) {
	in := input([][]float64{{50, 30}, {40, 20}}, []float64{0.05, 0.50})
	plan := mustPlan(t, NewBalanced(), in)
	// Light load: everything fits in the cheap center.
	for k := 0; k < 2; k++ {
		if got := plan.TypeCenterRate(k, 1); got != 0 {
			t.Fatalf("type %d sent %g to the pricey center under light load", k, got)
		}
	}
	if plan.Served(0) != 90 || plan.Served(1) != 50 {
		t.Fatalf("served %g/%g, want 90/50", plan.Served(0), plan.Served(1))
	}
}

func TestBalancedOverflowsToNextCenter(t *testing.T) {
	// Type 0 capacity at even share: 4×(100/2 − 1/0.2) = 180 per center.
	in := input([][]float64{{150, 0}, {150, 0}}, []float64{0.05, 0.50})
	plan := mustPlan(t, NewBalanced(), in)
	cheap := plan.TypeCenterRate(0, 0)
	pricey := plan.TypeCenterRate(0, 1)
	if math.Abs(cheap-180) > 1e-6 {
		t.Fatalf("cheap center got %g, want its full 180", cheap)
	}
	if math.Abs(pricey-120) > 1e-6 {
		t.Fatalf("pricey center got %g, want the 120 overflow", pricey)
	}
}

func TestBalancedDropsBeyondTotalCapacity(t *testing.T) {
	in := input([][]float64{{400, 0}, {400, 0}}, []float64{0.05, 0.50})
	plan := mustPlan(t, NewBalanced(), in)
	// Total type-0 capacity: 180 (cheap) + 4×(55−5)=200 (pricey) = 380.
	if got := plan.Served(0); math.Abs(got-380) > 1e-6 {
		t.Fatalf("served %g, want capacity 380", got)
	}
}

func TestBalancedLevelReflectsCongestion(t *testing.T) {
	// Type 1 has two levels (D1=0.5, D2=1.5). Push its load high enough
	// at one center that its even-share delay exceeds D1 but not D2.
	// Even-share rate is 90/2 = 45/server; delay 1/(45 − λ/4).
	// λ=172 → per-server 43 → delay 0.5 exactly at the boundary; use a
	// slightly higher load so delay lands in the second level.
	in := input([][]float64{{0, 174}, {0, 0}}, []float64{0.05, 0.50})
	plan := mustPlan(t, NewBalanced(), in)
	if q1 := plan.CenterRate(1, 1, 0); q1 <= 0 {
		t.Fatalf("expected congested traffic in level 2, got level split %g/%g",
			plan.CenterRate(1, 0, 0), q1)
	}
}

func TestBalancedPowersOffIdleCenters(t *testing.T) {
	in := input([][]float64{{10, 0}, {0, 0}}, []float64{0.05, 0.50})
	plan := mustPlan(t, NewBalanced(), in)
	if plan.ServersOn[0] != 4 {
		t.Fatalf("loaded center servers on = %d, want all 4 (static baseline)", plan.ServersOn[0])
	}
	if plan.ServersOn[1] != 0 {
		t.Fatalf("idle center servers on = %d, want 0", plan.ServersOn[1])
	}
}

func TestNearestPrefersClose(t *testing.T) {
	// fe2 is nearest to center 1; with nearest ordering its traffic goes
	// there even though center 0 is cheaper.
	in := input([][]float64{{0, 0}, {50, 0}}, []float64{0.05, 0.50})
	plan := mustPlan(t, NewNearest(), in)
	if got := plan.Rate[0][0][1][1]; math.Abs(got-50) > 1e-9 {
		t.Fatalf("fe2 sent %g to its nearest center, want 50", got)
	}
}

func TestGreedyProfitOrdering(t *testing.T) {
	in := input([][]float64{{50, 0}, {0, 0}}, []float64{0.05, 0.50})
	plan := mustPlan(t, NewGreedyProfit(), in)
	// For fe1, center 0 is both cheaper and closer: it must win.
	if got := plan.TypeCenterRate(0, 0); math.Abs(got-50) > 1e-9 {
		t.Fatalf("greedy-profit sent %g to the best center, want 50", got)
	}
}

func TestRandomDeterministicInSeed(t *testing.T) {
	in := input([][]float64{{300, 100}, {200, 80}}, []float64{0.05, 0.50})
	p1 := mustPlan(t, NewRandom(7), in)
	p2 := mustPlan(t, NewRandom(7), in)
	if p1.Objective != p2.Objective {
		t.Fatalf("same seed, different objectives: %g vs %g", p1.Objective, p2.Objective)
	}
}

func TestOptimizedBeatsBalanced(t *testing.T) {
	// The paper's headline: Optimized ≥ Balanced, with a real gap when
	// prices diverge and load is non-trivial.
	in := input([][]float64{{250, 120}, {220, 100}}, []float64{0.02, 0.9})
	opt := mustPlan(t, core.NewOptimized(), in)
	bal := mustPlan(t, NewBalanced(), in)
	if opt.Objective < bal.Objective {
		t.Fatalf("optimized %g below balanced %g", opt.Objective, bal.Objective)
	}
}

// Property: on random inputs the Balanced plan always verifies and the
// Optimized planner is never worse (the paper's central comparison).
func TestBalancedVsOptimizedQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		arr := [][]float64{
			{rng.Float64() * 400, rng.Float64() * 200},
			{rng.Float64() * 400, rng.Float64() * 200},
		}
		prices := []float64{0.02 + rng.Float64(), 0.02 + rng.Float64()}
		in := input(arr, prices)
		bal, err := NewBalanced().Plan(in)
		if err != nil {
			return false
		}
		if err := core.Verify(in, bal, 1e-6); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		opt, err := core.NewOptimized().Plan(in)
		if err != nil {
			return false
		}
		return opt.Objective >= bal.Objective-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

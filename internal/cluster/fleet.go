package cluster

import (
	"fmt"

	"profitlb/internal/datacenter"
	"profitlb/internal/dispatch"
	"profitlb/internal/fault"
	"profitlb/internal/obs"
)

// Fleet is the deterministic in-process harness: a Publisher and N
// Replicas driven in virtual time by one goroutine, with cluster faults
// (replica kills, partitions, publisher outages) observed from a fault
// schedule instead of real network failures. It exists so fleet
// behaviour — epoch fencing, re-spread after eviction, staleness
// escalation, outage degradation — is testable under -race with exact
// reproducibility; the HTTP transport in this package carries the same
// Publication type over real connections.
type Fleet struct {
	Pub      *Publisher
	Replicas []*Replica

	cfg   Config
	sch   *fault.Schedule
	scope *obs.Scope
	// joined tracks which replicas have ever beaten, so the first slot
	// joins everyone before the first publish.
	joined []bool
}

// NewFleet builds a publisher around the driver plus cfg.Replicas
// replicas sharing the scope. The schedule may be nil (no faults).
func NewFleet(sys *datacenter.System, dcfg dispatch.Config, cfg Config, drv *dispatch.Driver, sch *fault.Schedule, scope *obs.Scope) (*Fleet, error) {
	cfg = cfg.WithDefaults()
	if cfg.Replicas <= 0 {
		return nil, fmt.Errorf("cluster: fleet needs at least one replica, got %d", cfg.Replicas)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := sch.ValidateCluster(cfg.Replicas); err != nil {
		return nil, err
	}
	f := &Fleet{
		Pub:    NewPublisher(cfg, drv, scope),
		cfg:    cfg,
		sch:    sch,
		scope:  scope,
		joined: make([]bool, cfg.Replicas),
	}
	for i := 0; i < cfg.Replicas; i++ {
		f.Replicas = append(f.Replicas, NewReplica(ReplicaID(i), sys, dcfg, cfg, scope))
	}
	return f, nil
}

// Down reports whether replica i is killed at the slot.
func (f *Fleet) Down(i, slot int) bool { return f.sch.ReplicaDown(i, slot) }

// Reachable reports whether replica i can talk to the control plane at
// the slot: alive, not partitioned, and the control plane itself up.
func (f *Fleet) Reachable(i, slot int) bool {
	return !f.sch.ReplicaDown(i, slot) && !f.sch.ReplicaPartitioned(i, slot) && !f.sch.PublisherDown(slot)
}

// Live returns the indices of replicas serving at the slot (everything
// not killed — partitioned and stale replicas still answer requests).
func (f *Fleet) Live(slot int) []int {
	var out []int
	for i := range f.Replicas {
		if !f.sch.ReplicaDown(i, slot) {
			out = append(out, i)
		}
	}
	return out
}

// BeginSlot advances the whole fleet across the slot boundary at
// virtual time now, in the order a real deployment would experience it:
// heartbeats from reachable replicas, the health sweep (evictions and
// rejoins take effect in this slot's publish), the publish itself, then
// delivery to every reachable replica and a staleness tick for every
// live one. A publisher outage skips straight to the ticks — the fleet
// serves its last epochs. Returns the slot's publication (nil during an
// outage); the only errors are wiring mistakes.
func (f *Fleet) BeginSlot(abs int, now float64) (*Publication, error) {
	pubDown := f.sch.PublisherDown(abs)
	var pub *Publication
	if !pubDown {
		for i := range f.Replicas {
			if f.Reachable(i, abs) {
				f.Pub.Beat(f.Replicas[i].ID, abs)
				f.joined[i] = true
			}
		}
		f.Pub.SweepHealth(abs)
		var err error
		pub, err = f.Pub.PublishSlot(abs)
		if err != nil {
			return nil, err
		}
		for i, r := range f.Replicas {
			if !f.Reachable(i, abs) {
				continue
			}
			if _, err := r.Apply(pub, now); err != nil {
				return nil, err
			}
		}
	}
	for i, r := range f.Replicas {
		if f.sch.ReplicaDown(i, abs) {
			continue
		}
		r.Tick(abs, now)
		if f.scope.Enabled() {
			lag := float64(f.Pub.Epoch()) - float64(r.Epoch())
			f.scope.Gauge("cluster_epoch_lag", obs.L("replica", r.ID)).Set(lag)
		}
	}
	return pub, nil
}

// Ready reports whether every live replica has applied a first epoch.
func (f *Fleet) Ready(slot int) bool {
	for _, i := range f.Live(slot) {
		if !f.Replicas[i].Ready() {
			return false
		}
	}
	return true
}

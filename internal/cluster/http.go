package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Handler serves the control plane's distribution endpoint:
//
//	GET /plan?after=<epoch>&sub=<sub-epoch>&id=<replica>&wait=<ms>
//
// The request heartbeats the replica (pulling IS proof of life — a
// dedicated beat round-trip would only add a failure mode), then
// long-polls: if an epoch newer than after is already published it
// answers immediately, otherwise it holds the request up to wait
// milliseconds (capped by PollWaitMs) and answers 204 if nothing fresher
// arrives. A control plane in outage answers 503.
func (p *Publisher) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/plan", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		if p.Down() {
			http.Error(w, "control plane down", http.StatusServiceUnavailable)
			return
		}
		after, _ := strconv.ParseUint(r.URL.Query().Get("after"), 10, 64)
		afterSub, _ := strconv.ParseUint(r.URL.Query().Get("sub"), 10, 64)
		slot := 0
		if cur := p.Current(); cur != nil {
			slot = cur.Slot
		}
		p.Beat(r.URL.Query().Get("id"), slot)
		// A first-contact (or rejoin) beat changes membership: re-spread
		// the current plan under a fresh epoch right away rather than
		// making the joiner wait out the slot. No-op when nothing changed.
		p.Respread(slot)
		waitMs := p.cfg.PollWaitMs
		if v, err := strconv.Atoi(r.URL.Query().Get("wait")); err == nil && v >= 0 && v < waitMs {
			waitMs = v
		}
		ctx, cancel := context.WithTimeout(r.Context(), time.Duration(waitMs)*time.Millisecond)
		defer cancel()
		pub := p.Wait(after, afterSub, ctx.Done())
		if pub == nil {
			if p.Down() {
				http.Error(w, "control plane down", http.StatusServiceUnavailable)
				return
			}
			w.WriteHeader(http.StatusNoContent)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(pub)
	})
	return mux
}

// Subscriber pulls publications from a remote control plane into a
// local Replica with the telemetry-feed transport discipline: a
// per-attempt deadline, bounded retries with exponential backoff inside
// each pull round, and — past the retry budget — giving the round up and
// starting the next, because a replica that cannot reach its control
// plane must keep serving its last epoch, not spin or crash.
type Subscriber struct {
	// URL is the control plane base URL (the Handler mount point).
	URL string
	// Replica receives applied publications.
	Replica *Replica
	// Now maps wall time to the virtual time installs are stamped with.
	Now func() float64
	// Client defaults to http.DefaultClient.
	Client *http.Client

	cfg  Config
	stop chan struct{}
	done sync.WaitGroup

	mu       sync.Mutex
	rounds   int64 // completed pull rounds (fresh epoch, 204, or give-up)
	failures int64 // transport attempts that errored
	lastErr  error
}

// NewSubscriber wires a replica to a remote control plane.
func NewSubscriber(url string, r *Replica, cfg Config, now func() float64) *Subscriber {
	return &Subscriber{
		URL:     url,
		Replica: r,
		Now:     now,
		cfg:     cfg.WithDefaults(),
		stop:    make(chan struct{}),
	}
}

// Start launches the pull loop.
func (s *Subscriber) Start() {
	s.done.Add(1)
	go func() {
		defer s.done.Done()
		for {
			select {
			case <-s.stop:
				return
			default:
			}
			s.pullRound()
		}
	}()
}

// Stop terminates the pull loop and waits for it to exit.
func (s *Subscriber) Stop() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.done.Wait()
}

// Stats returns the pull-round and transport-failure tallies plus the
// last transport error (nil when the last round was clean).
func (s *Subscriber) Stats() (rounds, failures int64, lastErr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rounds, s.failures, s.lastErr
}

// pullRound performs one long-poll with bounded retries. Connection
// errors and 5xx answers back off and retry; 204 (nothing fresher) and a
// fresh publication both end the round cleanly; exhausting the retry
// budget ends it dirty — the replica just stays on its last epoch.
func (s *Subscriber) pullRound() {
	var lastErr error
	for attempt := 0; attempt < s.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			backoff := time.Duration(s.cfg.BaseBackoffMs<<(attempt-1)) * time.Millisecond
			select {
			case <-time.After(backoff):
			case <-s.stop:
				return
			}
		}
		pub, err := s.pull()
		if err == nil {
			if pub != nil {
				if _, err := s.Replica.Apply(pub, s.Now()); err != nil {
					lastErr = err
					continue // corrupt payload: retry, the next pull may be clean
				}
			}
			s.mu.Lock()
			s.rounds++
			s.lastErr = nil
			s.mu.Unlock()
			return
		}
		lastErr = err
		s.mu.Lock()
		s.failures++
		s.mu.Unlock()
	}
	s.mu.Lock()
	s.rounds++
	s.lastErr = lastErr
	s.mu.Unlock()
}

// pull performs one long-poll attempt. A nil, nil return means 204.
func (s *Subscriber) pull() (*Publication, error) {
	client := s.Client
	if client == nil {
		client = http.DefaultClient
	}
	deadline := time.Duration(s.cfg.TimeoutMs+s.cfg.PollWaitMs) * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	url := fmt.Sprintf("%s/plan?after=%d&sub=%d&id=%s&wait=%d",
		s.URL, s.Replica.Gateway().Epoch(), s.Replica.Gateway().Sub(), s.Replica.ID, s.cfg.PollWaitMs)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNoContent:
		return nil, nil
	case resp.StatusCode != http.StatusOK:
		return nil, fmt.Errorf("cluster: control plane answered %s", resp.Status)
	}
	var pub Publication
	if err := json.NewDecoder(resp.Body).Decode(&pub); err != nil {
		return nil, fmt.Errorf("cluster: decoding publication: %w", err)
	}
	return &pub, nil
}

package cluster

import (
	"errors"
	"sync"

	"profitlb/internal/dispatch"
	"profitlb/internal/obs"
)

// Publication is one epoch's complete distribution unit: the fleet-wide
// routing table in wire form plus the membership it was spread over.
// Replicas locate themselves in Members to pick their subdivision index;
// the pairing is atomic — a table is never delivered with a membership
// other than the one its epoch was published under.
type Publication struct {
	Epoch uint64 `json:"epoch"`
	// Sub is the sub-epoch sequence within Epoch: 0 for the slot's
	// committed plan or a membership re-spread, ticking up for in-slot
	// controller corrections published against the epoch.
	Sub     uint64              `json:"sub,omitempty"`
	Slot    int                 `json:"slot"`
	Members []string            `json:"members"`
	Table   *dispatch.TableWire `json:"table"`
}

// member is the control plane's health record for one replica.
type member struct {
	beaten bool // heartbeat seen since the last sweep
	misses int  // consecutive sweeps without a heartbeat
}

// Publisher is the fleet's control plane: it owns the Driver that plans
// each slot, numbers every published table with the driver's epoch
// sequence, tracks replica membership through heartbeats, and re-spreads
// the current plan under a fresh epoch whenever membership changes. All
// methods are safe for concurrent use (the HTTP handler serves long-polls
// from many replicas while the slot loop publishes).
type Publisher struct {
	cfg   Config
	drv   *dispatch.Driver
	scope *obs.Scope

	mu      sync.Mutex
	cur     *Publication // last published epoch (nil before the first)
	order   []string     // live members in join order — the subdivision order
	health  map[string]*member
	down    bool
	notify  chan struct{} // closed and remade on every publish
	changed bool          // membership changed since the last publish
}

// NewPublisher wraps a slot-engine driver as the fleet control plane.
// The driver keeps sole ownership of planning and the epoch sequence.
func NewPublisher(cfg Config, drv *dispatch.Driver, scope *obs.Scope) *Publisher {
	return &Publisher{
		cfg:    cfg.WithDefaults(),
		drv:    drv,
		scope:  scope,
		health: make(map[string]*member),
		notify: make(chan struct{}),
	}
}

// Epoch returns the last published epoch (0 before the first publish).
func (p *Publisher) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cur == nil {
		return 0
	}
	return p.cur.Epoch
}

// Members returns the live membership in subdivision order.
func (p *Publisher) Members() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.order...)
}

// SetDown simulates a control-plane outage: while down, heartbeats are
// dropped, health rounds do not run, nothing publishes, and Wait fails
// immediately. Serving replicas notice only through staleness.
func (p *Publisher) SetDown(down bool) {
	p.mu.Lock()
	p.down = down
	p.mu.Unlock()
}

// Down reports whether the control plane is in simulated outage.
func (p *Publisher) Down() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.down
}

// Beat records a heartbeat from the replica. An unknown ID joins the
// fleet (first contact and recovery after eviction look identical —
// that is what makes rejoin free); the join takes effect at the next
// publish, when the membership change forces a re-spread epoch.
func (p *Publisher) Beat(id string, slot int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down || id == "" {
		return
	}
	m, ok := p.health[id]
	if !ok {
		reason := "join"
		if p.cur != nil {
			reason = "rejoin"
		}
		m = &member{}
		p.health[id] = m
		p.order = append(p.order, id)
		p.changed = true
		p.emitMembership(reason, id, slot)
	}
	m.beaten = true
	m.misses = 0
}

// SweepHealth closes one health round: members that did not heartbeat
// since the previous sweep accrue a miss, and members reaching the
// consecutive-miss threshold are evicted. Returns the evicted IDs.
// Evictions mark the membership changed; the next publish re-spreads.
func (p *Publisher) SweepHealth(slot int) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down {
		return nil
	}
	var evicted []string
	for _, id := range p.order {
		m := p.health[id]
		if m.beaten {
			m.beaten = false
			continue
		}
		m.misses++
		if m.misses >= p.cfg.FailThreshold {
			evicted = append(evicted, id)
		}
	}
	for _, id := range evicted {
		delete(p.health, id)
		for i, o := range p.order {
			if o == id {
				p.order = append(p.order[:i], p.order[i+1:]...)
				break
			}
		}
		p.changed = true
		p.emitMembership("evict", id, slot)
	}
	return evicted
}

// PublishSlot plans slot abs through the driver and publishes the result
// under its freshly minted epoch. Failures inside planning have already
// degraded to an all-shed table (the driver's contract), so the only
// errors are wiring mistakes or an outage.
func (p *Publisher) PublishSlot(abs int) (*Publication, error) {
	if p.Down() {
		return nil, errors.New("cluster: control plane is down")
	}
	t, err := p.drv.PlanTable(abs)
	if err != nil {
		return nil, err
	}
	return p.publish(t.Wire(), abs), nil
}

// Respread re-publishes the current table under a fresh epoch if (and
// only if) membership changed since the last publish — the mid-slot path
// that redistributes an evicted replica's share without a new solve.
// Returns the new publication, or nil when nothing needed re-spreading.
func (p *Publisher) Respread(slot int) *Publication {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down || p.cur == nil || !p.changed {
		return nil
	}
	w := *p.cur.Table // shallow copy; slices are immutable after compile
	w.Epoch = p.drv.NextEpoch()
	w.Sub = 0 // a fresh epoch restarts the sub-epoch sequence
	return p.publishLocked(&w, slot)
}

// publish stamps and stores a new publication, waking every long-poll.
func (p *Publisher) publish(w *dispatch.TableWire, slot int) *Publication {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.publishLocked(w, slot)
}

func (p *Publisher) publishLocked(w *dispatch.TableWire, slot int) *Publication {
	pub := &Publication{
		Epoch:   w.Epoch,
		Sub:     w.Sub,
		Slot:    slot,
		Members: append([]string(nil), p.order...),
		Table:   w,
	}
	p.cur = pub
	p.changed = false
	close(p.notify)
	p.notify = make(chan struct{})
	if p.scope.Enabled() {
		p.scope.Gauge("cluster_published_epoch").Set(float64(pub.Epoch))
		p.scope.Gauge("cluster_published_sub").Set(float64(pub.Sub))
		p.scope.Gauge("cluster_members").Set(float64(len(pub.Members)))
	}
	return pub
}

// PublishControl distributes an in-slot controller correction: a table
// re-scaled against the *current* epoch, carrying the next sub-epoch.
// Unlike a slot publish it never mints an epoch, never consumes the
// pending membership-change flag, and re-spreads nothing — the correction
// is pinned to the exact membership the epoch was spread over, because a
// replica's subdivision index must not move mid-epoch. The publish is
// refused (nil) when the control plane is down, nothing was ever
// published, the correction targets a different epoch (a slot or
// re-spread publish won the race), or its sub-epoch does not advance.
func (p *Publisher) PublishControl(w *dispatch.TableWire, slot int) *Publication {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down || p.cur == nil || w == nil {
		return nil
	}
	if w.Epoch != p.cur.Epoch || w.Sub <= p.cur.Sub {
		return nil
	}
	pub := &Publication{
		Epoch:   w.Epoch,
		Sub:     w.Sub,
		Slot:    slot,
		Members: append([]string(nil), p.cur.Members...),
		Table:   w,
	}
	p.cur = pub
	close(p.notify)
	p.notify = make(chan struct{})
	if p.scope.Enabled() {
		p.scope.Gauge("cluster_published_sub").Set(float64(pub.Sub))
	}
	return pub
}

// Current returns the last publication (nil before the first).
func (p *Publisher) Current() *Publication {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cur
}

// Wait long-polls for a publication whose (epoch, sub-epoch) pair is
// lexicographically newer than (after, afterSub): it returns immediately
// when one is already published, otherwise blocks until the next publish
// or until cancel closes. A nil return means nothing newer arrived in
// time (the HTTP layer's 204) or the control plane is down.
func (p *Publisher) Wait(after, afterSub uint64, cancel <-chan struct{}) *Publication {
	for {
		p.mu.Lock()
		if p.down {
			p.mu.Unlock()
			return nil
		}
		if p.cur != nil && (p.cur.Epoch > after || (p.cur.Epoch == after && p.cur.Sub > afterSub)) {
			pub := p.cur
			p.mu.Unlock()
			return pub
		}
		ch := p.notify
		p.mu.Unlock()
		select {
		case <-ch:
		case <-cancel:
			return nil
		}
	}
}

// emitMembership traces one membership transition (caller holds mu).
func (p *Publisher) emitMembership(reason, id string, slot int) {
	if !p.scope.Enabled() {
		return
	}
	p.scope.Counter("cluster_membership_total", obs.L("change", reason)).Inc()
	p.scope.Gauge("cluster_members").Set(float64(len(p.order)))
	epoch := uint64(0)
	if p.cur != nil {
		epoch = p.cur.Epoch
	}
	p.scope.Emit(obs.Event{
		Kind: obs.KindMembership, Slot: slot, Planner: id, Reason: reason,
		Values: map[string]float64{
			"epoch":   float64(epoch),
			"members": float64(len(p.order)),
		},
	})
}

// Package cluster replicates the dispatch gateway into a fleet: one
// control plane (a Publisher wrapping the slot engine's Driver) plans
// each slot, stamps the compiled routing table with a monotonically
// increasing epoch, and publishes it; N data-plane Replicas pull the
// table — over HTTP long-poll in production, or synchronously in the
// deterministic Fleet harness — fence it against their current epoch
// (stale, duplicate and out-of-order deliveries are rejected and
// counted, never applied), subdivide the fleet-wide plan into their own
// share of every lane's budget, and hot-swap it into a local Gateway.
//
// The failure discipline mirrors the planning plane's: a replica that
// misses a slot boundary keeps serving its last good epoch with a rising
// staleness gauge, and past a configurable TTL it escalates to
// conservative-shed serving (the stale plan at a fraction of its budget)
// rather than guessing. A replica that stops heartbeating is evicted
// after consecutive missed health rounds and its share re-spreads across
// the survivors on the next epoch; it rejoins by heartbeating again. A
// dead control plane publishes nothing — the whole fleet degrades to
// last-known-epoch serving and reconverges the moment publishing
// resumes. Requests are shed, never errored: the fleet's invariant is
// the gateway's, extended across processes.
package cluster

import "fmt"

// Config is the cluster block of a scenario configuration. The zero
// value is "no cluster" (Replicas 0); WithDefaults fills the tunables.
type Config struct {
	// Replicas is the gateway fleet size. 0 disables clustering; 1 is a
	// degenerate but valid fleet (useful for the join-mode server).
	Replicas int `json:"replicas"`
	// StaleSlots is the staleness TTL: after serving this many slot
	// boundaries without a fresh epoch, a replica downgrades to
	// conservative-shed serving. Default 2.
	StaleSlots int `json:"staleSlots,omitempty"`
	// StaleFactor is the budget fraction a stale replica keeps serving
	// at once past the TTL, in (0,1]. Default 0.5.
	StaleFactor float64 `json:"staleFactor,omitempty"`
	// FailThreshold is the number of consecutive missed health rounds
	// after which the control plane evicts a replica. Default 2.
	FailThreshold int `json:"failThreshold,omitempty"`
	// PollWaitMs is how long the control plane holds a long-poll open
	// waiting for a fresher epoch before answering 204. Default 2000.
	PollWaitMs int `json:"pollWaitMs,omitempty"`
	// MaxAttempts bounds one pull round's retries before the subscriber
	// gives up on the round (and keeps serving stale). Default 4.
	MaxAttempts int `json:"maxAttempts,omitempty"`
	// BaseBackoffMs is the first retry backoff; it doubles per attempt.
	// Default 50.
	BaseBackoffMs int `json:"baseBackoffMs,omitempty"`
	// TimeoutMs is the per-attempt transport deadline (on top of the
	// long-poll hold). Default 1000.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// WithDefaults fills unset tunables, leaving Replicas as given.
func (c Config) WithDefaults() Config {
	if c.StaleSlots <= 0 {
		c.StaleSlots = 2
	}
	if c.StaleFactor <= 0 || c.StaleFactor > 1 {
		c.StaleFactor = 0.5
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.PollWaitMs <= 0 {
		c.PollWaitMs = 2000
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseBackoffMs <= 0 {
		c.BaseBackoffMs = 50
	}
	if c.TimeoutMs <= 0 {
		c.TimeoutMs = 1000
	}
	return c
}

// Validate rejects configurations the defaults cannot repair.
func (c Config) Validate() error {
	if c.Replicas < 0 {
		return fmt.Errorf("cluster: %d replicas", c.Replicas)
	}
	if c.Replicas > 64 {
		return fmt.Errorf("cluster: %d replicas exceeds the supported fleet size (64)", c.Replicas)
	}
	if c.StaleFactor < 0 || c.StaleFactor > 1 {
		return fmt.Errorf("cluster: stale factor %g outside [0,1]", c.StaleFactor)
	}
	if c.StaleSlots < 0 {
		return fmt.Errorf("cluster: negative staleness TTL %d", c.StaleSlots)
	}
	if c.FailThreshold < 0 {
		return fmt.Errorf("cluster: negative fail threshold %d", c.FailThreshold)
	}
	return nil
}

// ReplicaID names fleet replica i ("r0", "r1", ...): the identity used
// for membership, heartbeats and trace events.
func ReplicaID(i int) string { return fmt.Sprintf("r%d", i) }

package cluster

import (
	"testing"

	"profitlb/internal/core"
	"profitlb/internal/datacenter"
	"profitlb/internal/dispatch"
	"profitlb/internal/fault"
	"profitlb/internal/obs"
	"profitlb/internal/tuf"
)

// testSystem is the dispatch test topology: 2 classes, 2 front-ends,
// 2 centers, sized so the optimized planner serves everything.
func testSystem() *datacenter.System {
	return &datacenter.System{
		Classes: []datacenter.RequestClass{
			{Name: "web", TUF: tuf.MustNew([]tuf.Level{{Utility: 0.01, Deadline: 0.01}}),
				TransferCostPerMile: 1e-6},
			{Name: "batch", TUF: tuf.MustNew([]tuf.Level{
				{Utility: 0.05, Deadline: 0.05}, {Utility: 0.02, Deadline: 0.25}}),
				TransferCostPerMile: 2e-6},
		},
		FrontEnds: []datacenter.FrontEnd{
			{Name: "east", DistanceMiles: []float64{300, 2400}},
			{Name: "west", DistanceMiles: []float64{2500, 200}},
		},
		Centers: []datacenter.DataCenter{
			{Name: "tx", Servers: 8, Capacity: 1,
				ServiceRate: []float64{20000, 3000}, EnergyPerRequest: []float64{0.0003, 0.004}},
			{Name: "ca", Servers: 8, Capacity: 1,
				ServiceRate: []float64{18000, 3500}, EnergyPerRequest: []float64{0.0003, 0.0035}},
		},
	}
}

// stubSource replays one planner input at every slot.
type stubSource struct{ in *core.Input }

func (s *stubSource) PlannerInput(abs int) (*core.Input, error) {
	in := *s.in
	in.Slot = abs
	return &in, nil
}

// testDriver wires a slot engine over the fixture topology.
func testDriver(sys *datacenter.System, dcfg dispatch.Config, scope *obs.Scope) *dispatch.Driver {
	in := &core.Input{
		Sys:      sys,
		Arrivals: [][]float64{{30000, 2000}, {24000, 1500}},
		Prices:   []float64{0.05, 0.08},
	}
	return &dispatch.Driver{
		Gateway: dispatch.NewGateway(sys, dcfg, scope),
		Planner: core.NewOptimized(),
		Source:  &stubSource{in: in},
	}
}

// testClusterConfig keeps the tunables small and explicit for tests.
func testClusterConfig(replicas int) Config {
	return Config{
		Replicas: replicas, StaleSlots: 2, StaleFactor: 0.5, FailThreshold: 2,
		PollWaitMs: 50, MaxAttempts: 3, BaseBackoffMs: 1, TimeoutMs: 500,
	}
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{Replicas: 4}.WithDefaults()).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Replicas: -1},
		{Replicas: 100},
		{Replicas: 2, StaleFactor: 2},
		{Replicas: 2, StaleFactor: -0.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: %+v accepted", i, c)
		}
	}
}

// TestPublisherMembership drives join → evict → rejoin through Beat and
// SweepHealth and checks that each membership change forces exactly one
// re-spread epoch.
func TestPublisherMembership(t *testing.T) {
	dcfg := dispatch.Config{Seed: 3, SlotSeconds: 60}
	drv := testDriver(testSystem(), dcfg, nil)
	p := NewPublisher(testClusterConfig(0), drv, nil)

	p.Beat("r0", 0)
	p.Beat("r1", 0)
	if got := p.Members(); len(got) != 2 || got[0] != "r0" || got[1] != "r1" {
		t.Fatalf("members after joins: %v", got)
	}
	p.SweepHealth(0) // consumes the joining beats, as a slot cycle would
	pub, err := p.PublishSlot(0)
	if err != nil {
		t.Fatal(err)
	}
	if pub.Epoch != 1 || len(pub.Members) != 2 {
		t.Fatalf("first publication: epoch %d members %v", pub.Epoch, pub.Members)
	}
	// No membership change: re-spread must be a no-op.
	if rp := p.Respread(0); rp != nil {
		t.Fatalf("re-spread without change published epoch %d", rp.Epoch)
	}

	// r1 goes silent: FailThreshold consecutive missed sweeps evict it.
	p.Beat("r0", 1)
	if ev := p.SweepHealth(1); len(ev) != 0 {
		t.Fatalf("evicted %v after one miss (threshold 2)", ev)
	}
	p.Beat("r0", 2)
	if ev := p.SweepHealth(2); len(ev) != 1 || ev[0] != "r1" {
		t.Fatalf("sweep 2 evicted %v, want [r1]", ev)
	}
	rp := p.Respread(2)
	if rp == nil || rp.Epoch != 2 || len(rp.Members) != 1 || rp.Members[0] != "r0" {
		t.Fatalf("post-evict re-spread: %+v", rp)
	}

	// r1 comes back: an unknown ID beating is a rejoin.
	p.Beat("r1", 3)
	rp = p.Respread(3)
	if rp == nil || rp.Epoch != 3 || len(rp.Members) != 2 {
		t.Fatalf("post-rejoin re-spread: %+v", rp)
	}
	if rp.Members[0] != "r0" || rp.Members[1] != "r1" {
		t.Fatalf("rejoin order: %v", rp.Members)
	}
}

// TestPublisherOutageBehaviour: a down control plane drops beats, skips
// sweeps, refuses publishes and fails waits immediately.
func TestPublisherOutageBehaviour(t *testing.T) {
	drv := testDriver(testSystem(), dispatch.Config{SlotSeconds: 60}, nil)
	p := NewPublisher(testClusterConfig(0), drv, nil)
	p.Beat("r0", 0)
	if _, err := p.PublishSlot(0); err != nil {
		t.Fatal(err)
	}
	p.SetDown(true)
	p.Beat("r9", 1) // dropped
	if got := p.Members(); len(got) != 1 {
		t.Fatalf("down publisher accepted a join: %v", got)
	}
	if _, err := p.PublishSlot(1); err == nil {
		t.Fatal("down publisher published")
	}
	if pub := p.Wait(0, 0, nil); pub != nil {
		t.Fatal("down publisher answered a wait")
	}
	p.SetDown(false)
	if pub, err := p.PublishSlot(2); err != nil || pub.Epoch != 2 {
		t.Fatalf("recovery publish: %v, %v", pub, err)
	}
}

// TestReplicaApplyFences: stale, duplicate and not-a-member publications
// are counted and never disturb the serving state.
func TestReplicaApplyFences(t *testing.T) {
	sys := testSystem()
	dcfg := dispatch.Config{Seed: 5, SlotSeconds: 60}
	drv := testDriver(sys, dcfg, nil)
	ccfg := testClusterConfig(0)
	p := NewPublisher(ccfg, drv, nil)
	r := NewReplica("r0", sys, dcfg, ccfg, nil)

	p.Beat("r0", 0)
	pub1, err := p.PublishSlot(0)
	if err != nil {
		t.Fatal(err)
	}
	installed, err := r.Apply(pub1, 0)
	if err != nil || !installed {
		t.Fatalf("first apply: %v, %v", installed, err)
	}
	if !r.Ready() || r.Epoch() != pub1.Epoch {
		t.Fatalf("replica after apply: ready %v epoch %d", r.Ready(), r.Epoch())
	}

	// Duplicate delivery.
	if installed, err := r.Apply(pub1, 0); err != nil || installed {
		t.Fatalf("duplicate apply: %v, %v", installed, err)
	}
	// Stale delivery.
	pub2, err := p.PublishSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	if installed, err := r.Apply(pub2, 60); err != nil || !installed {
		t.Fatalf("apply epoch 2: %v, %v", installed, err)
	}
	if installed, err := r.Apply(pub1, 60); err != nil || installed {
		t.Fatalf("stale apply: %v, %v", installed, err)
	}
	if stale, dup := r.Gateway().Fenced(); stale != 1 || dup != 1 {
		t.Fatalf("gateway fence counters (%d, %d), want (1, 1)", stale, dup)
	}
	// Not a member.
	alien := &Publication{Epoch: pub2.Epoch + 1, Slot: 2, Members: []string{"other"}, Table: pub2.Table}
	if installed, err := r.Apply(alien, 120); err != nil || installed {
		t.Fatalf("not-member apply: %v, %v", installed, err)
	}
	if r.FencedNotMember() != 1 {
		t.Fatalf("FencedNotMember = %d, want 1", r.FencedNotMember())
	}
	// Corrupt payload.
	if _, err := r.Apply(nil, 0); err == nil {
		t.Fatal("nil publication accepted")
	}
	bad := *pub2
	w := *pub2.Table
	w.Epoch = pub2.Epoch + 5
	w.SlotLen = 0
	bad.Epoch = pub2.Epoch + 5
	bad.Table = &w
	if _, err := r.Apply(&bad, 0); err == nil {
		t.Fatal("corrupt wire table accepted")
	}
	if r.Epoch() != pub2.Epoch {
		t.Fatalf("fenced deliveries moved the replica to epoch %d", r.Epoch())
	}
}

// TestReplicaStaleTTLDowngrade: missed slot boundaries grow staleness,
// crossing the TTL downgrades to conservative-shed serving on the last
// good epoch, and a fresh epoch clears the downgrade.
func TestReplicaStaleTTLDowngrade(t *testing.T) {
	sys := testSystem()
	dcfg := dispatch.Config{Seed: 7, SlotSeconds: 60}
	drv := testDriver(sys, dcfg, nil)
	ccfg := testClusterConfig(0) // StaleSlots 2, StaleFactor 0.5
	p := NewPublisher(ccfg, drv, nil)
	r := NewReplica("r0", sys, dcfg, ccfg, nil)

	// Ticking before any plan is a no-op, not a crash.
	r.Tick(0, 0)
	if r.Ready() || r.Degraded() {
		t.Fatal("un-applied replica claims state")
	}

	p.Beat("r0", 0)
	pub, err := p.PublishSlot(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Apply(pub, 0); err != nil {
		t.Fatal(err)
	}
	T := sys.Slot()
	r.Tick(0, 0)
	if r.Staleness() != 0 || r.Degraded() {
		t.Fatalf("fresh replica: staleness %d degraded %v", r.Staleness(), r.Degraded())
	}
	r.Tick(1, T)
	if r.Staleness() != 1 || r.Degraded() {
		t.Fatalf("one missed boundary: staleness %d degraded %v", r.Staleness(), r.Degraded())
	}
	full := r.Gateway().Table().Lanes[0].Rate
	r.Tick(2, 2*T)
	if r.Staleness() != 2 || !r.Degraded() {
		t.Fatalf("TTL crossed: staleness %d degraded %v", r.Staleness(), r.Degraded())
	}
	tab := r.Gateway().Table()
	if !tab.Degraded || tab.Tier != "stale" {
		t.Fatalf("downgraded table: degraded %v tier %q", tab.Degraded, tab.Tier)
	}
	if got := tab.Lanes[0].Rate; got != full*ccfg.StaleFactor {
		t.Fatalf("downgraded lane rate %g, want %g", got, full*ccfg.StaleFactor)
	}
	// Still serving: requests shed or admit, never error.
	if out := r.Gateway().Handle(0, 0, 2*T).Outcome; out == dispatch.Invalid {
		t.Fatal("downgraded replica answered Invalid")
	}
	// The downgrade happens once, not once per tick.
	r.Tick(3, 3*T)
	if got := r.Gateway().Table().Lanes[0].Rate; got != full*ccfg.StaleFactor {
		t.Fatalf("second tick re-scaled to %g", got)
	}

	// Recovery: the next epoch clears staleness and the downgrade.
	pub2, err := p.PublishSlot(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Apply(pub2, 4*T); err != nil {
		t.Fatal(err)
	}
	if r.Staleness() != 0 || r.Degraded() {
		t.Fatalf("after recovery: staleness %d degraded %v", r.Staleness(), r.Degraded())
	}
	if tab := r.Gateway().Table(); tab.Degraded {
		t.Fatal("recovered table still degraded")
	}
}

// TestFleetCleanRun: a healthy fleet advances one epoch per slot, every
// replica applies it, and the replica shares sum exactly to the
// published plan.
func TestFleetCleanRun(t *testing.T) {
	sys := testSystem()
	dcfg := dispatch.Config{Seed: 11, SlotSeconds: 60}
	scope := obs.NewScope(obs.NewRegistry(), nil)
	drv := testDriver(sys, dcfg, scope)
	f, err := NewFleet(sys, dcfg, testClusterConfig(3), drv, nil, scope)
	if err != nil {
		t.Fatal(err)
	}
	T := sys.Slot()
	for i := 0; i < 4; i++ {
		pub, err := f.BeginSlot(i, float64(i)*T)
		if err != nil {
			t.Fatal(err)
		}
		if pub.Epoch != uint64(i+1) {
			t.Fatalf("slot %d published epoch %d, want %d", i, pub.Epoch, i+1)
		}
		if len(pub.Members) != 3 {
			t.Fatalf("slot %d members %v", i, pub.Members)
		}
		full, err := dispatch.FromWire(pub.Table)
		if err != nil {
			t.Fatal(err)
		}
		for li := range full.Lanes {
			var sum float64
			for _, r := range f.Replicas {
				sum += r.Gateway().Table().Lanes[li].Rate
			}
			if sum != full.Lanes[li].Rate {
				t.Fatalf("slot %d lane %d shares sum %g, want exactly %g", i, li, sum, full.Lanes[li].Rate)
			}
		}
		for _, r := range f.Replicas {
			if r.Epoch() != pub.Epoch || r.Staleness() != 0 || r.Degraded() {
				t.Fatalf("slot %d replica %s: epoch %d staleness %d degraded %v",
					i, r.ID, r.Epoch(), r.Staleness(), r.Degraded())
			}
		}
		if !f.Ready(i) {
			t.Fatalf("slot %d fleet not ready", i)
		}
	}
}

// TestFleetKillEvictRejoin: a killed replica is evicted after the miss
// threshold (its share re-spread over the survivors), and rejoins with a
// fresh epoch when it recovers.
func TestFleetKillEvictRejoin(t *testing.T) {
	sys := testSystem()
	dcfg := dispatch.Config{Seed: 13, SlotSeconds: 60}
	drv := testDriver(sys, dcfg, nil)
	sch := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.ReplicaKill, Replica: 1, From: 2, To: 4},
	}}
	f, err := NewFleet(sys, dcfg, testClusterConfig(3), drv, sch, nil)
	if err != nil {
		t.Fatal(err)
	}
	T := sys.Slot()
	members := make(map[int]int)
	for i := 0; i < 7; i++ {
		pub, err := f.BeginSlot(i, float64(i)*T)
		if err != nil {
			t.Fatal(err)
		}
		members[i] = len(pub.Members)
	}
	// Slot 2: first miss (members unchanged). Slot 3: second miss →
	// evicted before the publish, so slot 3 already spreads over 2.
	want := map[int]int{0: 3, 1: 3, 2: 3, 3: 2, 4: 2, 5: 3, 6: 3}
	for slot, n := range want {
		if members[slot] != n {
			t.Fatalf("slot %d spread over %d members, want %d (all: %v)", slot, members[slot], n, members)
		}
	}
	// After rejoin every replica is back on the current epoch.
	r1 := f.Replicas[1]
	if r1.Epoch() != f.Pub.Epoch() {
		t.Fatalf("rejoined replica at epoch %d, publisher at %d", r1.Epoch(), f.Pub.Epoch())
	}
	if r1.Degraded() || r1.Staleness() != 0 {
		t.Fatalf("rejoined replica: staleness %d degraded %v", r1.Staleness(), r1.Degraded())
	}
	// Survivors' shares summed to the full plan while the fleet was two.
	if members[3] != 2 {
		t.Fatal("eviction did not land in slot 3")
	}
}

// TestFleetPublisherOutage: a control-plane outage leaves the fleet
// serving its last epoch (staleness rising, requests still answered),
// a long outage triggers the conservative-shed downgrade, and the fleet
// reconverges within one slot of recovery.
func TestFleetPublisherOutage(t *testing.T) {
	sys := testSystem()
	dcfg := dispatch.Config{Seed: 17, SlotSeconds: 60}
	drv := testDriver(sys, dcfg, nil)
	sch := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.PublisherOutage, From: 2, To: 3},
	}}
	f, err := NewFleet(sys, dcfg, testClusterConfig(2), drv, sch, nil)
	if err != nil {
		t.Fatal(err)
	}
	T := sys.Slot()
	var lastEpoch uint64
	for i := 0; i < 2; i++ {
		pub, err := f.BeginSlot(i, float64(i)*T)
		if err != nil {
			t.Fatal(err)
		}
		lastEpoch = pub.Epoch
	}

	// Outage slot 2: no publication, replicas one slot stale, serving.
	pub, err := f.BeginSlot(2, 2*T)
	if err != nil {
		t.Fatal(err)
	}
	if pub != nil {
		t.Fatalf("outage slot published epoch %d", pub.Epoch)
	}
	for _, r := range f.Replicas {
		if r.Epoch() != lastEpoch || r.Staleness() != 1 || r.Degraded() {
			t.Fatalf("outage slot replica %s: epoch %d staleness %d degraded %v",
				r.ID, r.Epoch(), r.Staleness(), r.Degraded())
		}
		if out := r.Gateway().Handle(0, 0, 2*T).Outcome; out == dispatch.Invalid {
			t.Fatal("replica errored during outage")
		}
	}

	// Outage slot 3: staleness hits the TTL → conservative shed.
	if _, err := f.BeginSlot(3, 3*T); err != nil {
		t.Fatal(err)
	}
	for _, r := range f.Replicas {
		if r.Staleness() != 2 || !r.Degraded() {
			t.Fatalf("TTL slot replica %s: staleness %d degraded %v", r.ID, r.Staleness(), r.Degraded())
		}
		if out := r.Gateway().Handle(0, 0, 3*T).Outcome; out == dispatch.Invalid {
			t.Fatal("degraded replica errored")
		}
	}

	// Recovery slot 4: one slot to reconverge.
	pub, err = f.BeginSlot(4, 4*T)
	if err != nil {
		t.Fatal(err)
	}
	if pub == nil {
		t.Fatal("no publication after recovery")
	}
	for _, r := range f.Replicas {
		if r.Epoch() != pub.Epoch || r.Staleness() != 0 || r.Degraded() {
			t.Fatalf("recovered replica %s: epoch %d staleness %d degraded %v",
				r.ID, r.Epoch(), r.Staleness(), r.Degraded())
		}
	}
}

// TestFleetPartitionGoesStaleAlone: a partitioned replica keeps serving
// and goes stale while the rest of the fleet advances.
func TestFleetPartitionGoesStaleAlone(t *testing.T) {
	sys := testSystem()
	dcfg := dispatch.Config{Seed: 19, SlotSeconds: 60}
	drv := testDriver(sys, dcfg, nil)
	sch := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.ReplicaPartition, Replica: 0, From: 1, To: 1},
	}}
	f, err := NewFleet(sys, dcfg, testClusterConfig(2), drv, sch, nil)
	if err != nil {
		t.Fatal(err)
	}
	T := sys.Slot()
	if _, err := f.BeginSlot(0, 0); err != nil {
		t.Fatal(err)
	}
	pub, err := f.BeginSlot(1, T)
	if err != nil {
		t.Fatal(err)
	}
	r0, r1 := f.Replicas[0], f.Replicas[1]
	if r0.Epoch() == pub.Epoch {
		t.Fatal("partitioned replica received the publication")
	}
	if r0.Staleness() != 1 {
		t.Fatalf("partitioned replica staleness %d, want 1", r0.Staleness())
	}
	if r1.Epoch() != pub.Epoch {
		t.Fatalf("healthy replica at epoch %d, want %d", r1.Epoch(), pub.Epoch)
	}
	// Partition heals before the miss threshold: no eviction happened.
	pub, err = f.BeginSlot(2, 2*T)
	if err != nil {
		t.Fatal(err)
	}
	if len(pub.Members) != 2 {
		t.Fatalf("members %v after healed partition", pub.Members)
	}
	if r0.Epoch() != pub.Epoch || r0.Staleness() != 0 {
		t.Fatalf("healed replica: epoch %d staleness %d", r0.Epoch(), r0.Staleness())
	}
}

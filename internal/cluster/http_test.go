package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"profitlb/internal/dispatch"
)

// TestPlanHandler covers the long-poll endpoint's answer matrix: method
// guard, outage 503, 204 on nothing-fresher, and a publication body.
func TestPlanHandler(t *testing.T) {
	sys := testSystem()
	dcfg := dispatch.Config{Seed: 23, SlotSeconds: 60}
	drv := testDriver(sys, dcfg, nil)
	p := NewPublisher(testClusterConfig(0), drv, nil)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	post, err := http.Post(srv.URL+"/plan", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST answered %d", post.StatusCode)
	}

	// Nothing published yet: the poll parks and answers 204.
	resp, err := http.Get(srv.URL + "/plan?after=0&id=rA&wait=10")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("empty publisher answered %d, want 204", resp.StatusCode)
	}
	// The poll heartbeat joined rA.
	if got := p.Members(); len(got) != 1 || got[0] != "rA" {
		t.Fatalf("members after first poll: %v", got)
	}

	if _, err := p.PublishSlot(0); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/plan?after=0&id=rA&wait=10")
	if err != nil {
		t.Fatal(err)
	}
	var pub Publication
	if err := json.NewDecoder(resp.Body).Decode(&pub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || pub.Epoch == 0 || pub.Table == nil {
		t.Fatalf("publication answer: %d %+v", resp.StatusCode, pub)
	}
	if len(pub.Members) != 1 || pub.Members[0] != "rA" {
		t.Fatalf("publication members %v", pub.Members)
	}

	// Caught up: nothing fresher than the current epoch.
	resp, err = http.Get(srv.URL + "/plan?after=" + itoa64(pub.Epoch) + "&id=rA&wait=10")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("caught-up poll answered %d, want 204", resp.StatusCode)
	}

	p.SetDown(true)
	resp, err = http.Get(srv.URL + "/plan?after=0&id=rA&wait=10")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("down publisher answered %d, want 503", resp.StatusCode)
	}
}

func itoa64(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSubscriberJoinsAndFollows: a subscriber's first pull joins its
// replica (getting a re-spread share immediately), and subsequent
// publishes flow through the long-poll.
func TestSubscriberJoinsAndFollows(t *testing.T) {
	sys := testSystem()
	dcfg := dispatch.Config{Seed: 29, SlotSeconds: 60}
	drv := testDriver(sys, dcfg, nil)
	ccfg := testClusterConfig(0)
	p := NewPublisher(ccfg, drv, nil)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	// The control plane has a plan out before the joiner arrives.
	p.Beat("r0", 0)
	p.SweepHealth(0)
	if _, err := p.PublishSlot(0); err != nil {
		t.Fatal(err)
	}

	rep := NewReplica("ext", sys, dcfg, ccfg, nil)
	sub := NewSubscriber(srv.URL, rep, ccfg, func() float64 { return 0 })
	sub.Start()
	defer sub.Stop()

	// First contact re-spreads: the joiner gets a share without waiting
	// for the next slot.
	waitFor(t, "joiner to apply its first epoch", rep.Ready)
	if got := p.Members(); len(got) != 2 {
		t.Fatalf("members after join: %v", got)
	}
	if rep.Epoch() != p.Epoch() {
		t.Fatalf("joiner at epoch %d, publisher at %d", rep.Epoch(), p.Epoch())
	}

	// The next slot's publish reaches the parked long-poll.
	if _, err := p.PublishSlot(1); err != nil {
		t.Fatal(err)
	}
	target := p.Epoch()
	waitFor(t, "slot publication to arrive", func() bool { return rep.Epoch() == target })
	rounds, _, lastErr := sub.Stats()
	if rounds == 0 {
		t.Fatal("subscriber recorded no pull rounds")
	}
	if lastErr != nil {
		t.Fatalf("subscriber lastErr: %v", lastErr)
	}
}

// TestSubscriberRetriesFlakyTransport: connection-level failures (5xx
// here) back off and retry inside the round; the replica converges once
// the transport heals, and the failures are tallied.
func TestSubscriberRetriesFlakyTransport(t *testing.T) {
	sys := testSystem()
	dcfg := dispatch.Config{Seed: 31, SlotSeconds: 60}
	drv := testDriver(sys, dcfg, nil)
	ccfg := testClusterConfig(0)
	p := NewPublisher(ccfg, drv, nil)

	var failures atomic.Int64
	inner := p.Handler()
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failures.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusBadGateway)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	p.Beat("ext", 0)
	p.SweepHealth(0)
	if _, err := p.PublishSlot(0); err != nil {
		t.Fatal(err)
	}

	rep := NewReplica("ext", sys, dcfg, ccfg, nil)
	sub := NewSubscriber(flaky.URL, rep, ccfg, func() float64 { return 0 })
	sub.Start()
	defer sub.Stop()

	waitFor(t, "replica to converge through the flaky transport", func() bool {
		return rep.Ready() && rep.Epoch() == p.Epoch()
	})
	_, failed, _ := sub.Stats()
	if failed < 2 {
		t.Fatalf("subscriber tallied %d transport failures, want ≥ 2", failed)
	}
}

// TestSubscriberGivesUpAndServesStale: with the control plane dead, the
// pull loop exhausts its retry budget per round and the replica keeps
// its last epoch instead of crashing or clearing state.
func TestSubscriberGivesUpAndServesStale(t *testing.T) {
	sys := testSystem()
	dcfg := dispatch.Config{Seed: 37, SlotSeconds: 60}
	drv := testDriver(sys, dcfg, nil)
	ccfg := testClusterConfig(0)
	ccfg.PollWaitMs = 5
	p := NewPublisher(ccfg, drv, nil)
	srv := httptest.NewServer(p.Handler())

	p.Beat("ext", 0)
	p.SweepHealth(0)
	if _, err := p.PublishSlot(0); err != nil {
		t.Fatal(err)
	}
	rep := NewReplica("ext", sys, dcfg, ccfg, nil)
	sub := NewSubscriber(srv.URL, rep, ccfg, func() float64 { return 0 })
	sub.Start()
	defer sub.Stop()
	waitFor(t, "initial apply", rep.Ready)
	epoch := rep.Epoch()

	srv.Close() // control plane dies: every pull now fails at the dial
	waitFor(t, "a dirty round to be recorded", func() bool {
		_, _, lastErr := sub.Stats()
		return lastErr != nil
	})
	if !rep.Ready() || rep.Epoch() != epoch {
		t.Fatalf("replica lost state during outage: ready %v epoch %d", rep.Ready(), rep.Epoch())
	}
	// Its gateway still answers.
	if out := rep.Gateway().Handle(0, 0, 0).Outcome; out == dispatch.Invalid {
		t.Fatal("stale replica answered Invalid")
	}
}

package cluster

import (
	"testing"

	"profitlb/internal/dispatch"
)

// controlWire builds a controller correction against the current
// publication: the published table re-scaled by mult with the next
// sub-epoch.
func controlWire(t *testing.T, pub *Publication, mult float64, dcfg dispatch.Config) *dispatch.TableWire {
	t.Helper()
	full, err := dispatch.FromWire(pub.Table)
	if err != nil {
		t.Fatal(err)
	}
	m := make([]float64, len(full.Lanes))
	for i := range m {
		m[i] = mult
	}
	re, err := full.Rescale(m, pub.Sub+1, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	return re.Wire()
}

// TestPublishControlGuards: a controller correction only lands when the
// control plane is up, something was already published, the correction
// targets the current epoch, and its sub-epoch strictly advances — and
// it is always pinned to the exact membership its epoch was spread over,
// even when membership has changed since.
func TestPublishControlGuards(t *testing.T) {
	sys := testSystem()
	dcfg := dispatch.Config{Seed: 41, SlotSeconds: 60}
	drv := testDriver(sys, dcfg, nil)
	ccfg := testClusterConfig(0)
	p := NewPublisher(ccfg, drv, nil)

	// Nothing published yet: any control publish is refused.
	if got := p.PublishControl(&dispatch.TableWire{}, 0); got != nil {
		t.Fatal("control publish landed before any slot publish")
	}

	p.Beat("r0", 0)
	p.Beat("r1", 0)
	pub, err := p.PublishSlot(0)
	if err != nil {
		t.Fatal(err)
	}

	if got := p.PublishControl(nil, 0); got != nil {
		t.Fatal("nil control wire accepted")
	}

	// Sub must strictly advance: a re-send of the committed sub is refused.
	same := controlWire(t, pub, 1, dcfg)
	same.Sub = pub.Sub
	if got := p.PublishControl(same, 0); got != nil {
		t.Fatal("control publish with a non-advancing sub accepted")
	}

	// Wrong epoch: a correction computed against a superseded plan loses.
	stale := controlWire(t, pub, 1.1, dcfg)
	stale.Epoch = pub.Epoch + 1
	if got := p.PublishControl(stale, 0); got != nil {
		t.Fatal("control publish against a foreign epoch accepted")
	}

	// A member joining mid-slot must not move the correction's membership:
	// the replicas' subdivision indices are pinned for the epoch.
	p.Beat("r2", 0)
	cp := p.PublishControl(controlWire(t, pub, 1.1, dcfg), 0)
	if cp == nil {
		t.Fatal("valid control publish refused")
	}
	if cp.Epoch != pub.Epoch || cp.Sub != pub.Sub+1 {
		t.Fatalf("control publication pair (%d,%d), want (%d,%d)", cp.Epoch, cp.Sub, pub.Epoch, pub.Sub+1)
	}
	if len(cp.Members) != len(pub.Members) {
		t.Fatalf("control publication re-spread membership: %v vs %v", cp.Members, pub.Members)
	}
	for i := range cp.Members {
		if cp.Members[i] != pub.Members[i] {
			t.Fatalf("control membership %v diverged from epoch membership %v", cp.Members, pub.Members)
		}
	}

	// The joiner still forces a re-spread at the next slot publish.
	pub2, err := p.PublishSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pub2.Members) != 3 {
		t.Fatalf("next slot publish members %v, want the joined trio", pub2.Members)
	}

	// Once a newer sub is current, older subs are refused.
	cpOld := controlWire(t, pub, 1.2, dcfg)
	if got := p.PublishControl(cpOld, 1); got != nil {
		t.Fatal("control publish against a superseded epoch accepted after re-plan")
	}

	// Down control plane refuses corrections outright.
	p.SetDown(true)
	if got := p.PublishControl(controlWire(t, pub2, 1.1, dcfg), 1); got != nil {
		t.Fatal("down control plane accepted a control publish")
	}
}

// TestReplicaSubEpochFence: replicas order deliveries by the full
// (epoch, sub) pair — corrections advance within the epoch, duplicates
// and regressions are fenced without touching serving state, and the
// next slot epoch resets the sub sequence.
func TestReplicaSubEpochFence(t *testing.T) {
	sys := testSystem()
	dcfg := dispatch.Config{Seed: 43, SlotSeconds: 60}
	drv := testDriver(sys, dcfg, nil)
	ccfg := testClusterConfig(0)
	p := NewPublisher(ccfg, drv, nil)
	r := NewReplica("r0", sys, dcfg, ccfg, nil)

	p.Beat("r0", 0)
	pub, err := p.PublishSlot(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Apply(pub, 0); err != nil {
		t.Fatal(err)
	}
	if r.Sub() != 0 {
		t.Fatalf("fresh slot sub %d, want 0", r.Sub())
	}
	baseRate := r.Gateway().Table().Lanes[0].Rate

	cp1 := p.PublishControl(controlWire(t, pub, 1.5, dcfg), 0)
	if cp1 == nil {
		t.Fatal("control publish refused")
	}
	installed, err := r.Apply(cp1, 10)
	if err != nil || !installed {
		t.Fatalf("control apply: %v %v", installed, err)
	}
	if r.Epoch() != pub.Epoch || r.Sub() != 1 {
		t.Fatalf("after correction: pair (%d,%d), want (%d,1)", r.Epoch(), r.Sub(), pub.Epoch)
	}
	boosted := r.Gateway().Table().Lanes[0].Rate
	if boosted == baseRate {
		t.Fatal("correction did not change the serving table")
	}

	// Duplicate correction: fenced, serving untouched.
	if installed, err := r.Apply(cp1, 11); err != nil || installed {
		t.Fatalf("duplicate correction apply: %v %v", installed, err)
	}
	// Regressed sub (the committed plan re-delivered): fenced as stale.
	if installed, err := r.Apply(pub, 12); err != nil || installed {
		t.Fatalf("regressed sub apply: %v %v", installed, err)
	}
	if stale, dup := r.Gateway().Fenced(); stale != 1 || dup != 1 {
		t.Fatalf("fence counters (%d,%d), want (1,1)", stale, dup)
	}
	if got := r.Gateway().Table().Lanes[0].Rate; got != boosted {
		t.Fatalf("fenced deliveries moved the serving rate %g → %g", boosted, got)
	}

	// The next slot epoch supersedes any sub within the old epoch.
	pub2, err := p.PublishSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	if installed, err := r.Apply(pub2, 60); err != nil || !installed {
		t.Fatalf("next epoch apply: %v %v", installed, err)
	}
	if r.Epoch() != pub2.Epoch || r.Sub() != 0 {
		t.Fatalf("new epoch pair (%d,%d), want (%d,0)", r.Epoch(), r.Sub(), pub2.Epoch)
	}
	// A late correction from the dead epoch is fenced.
	if installed, err := r.Apply(cp1, 61); err != nil || installed {
		t.Fatalf("dead-epoch correction apply: %v %v", installed, err)
	}
}

// TestPartitionedReplicaKeepsFencedSub: a replica cut off mid-slot keeps
// serving the last correction it fenced in — no rollback, no implicit
// degradation — while its peers advance; the slot boundary behaves the
// same as for any missed epoch.
func TestPartitionedReplicaKeepsFencedSub(t *testing.T) {
	sys := testSystem()
	dcfg := dispatch.Config{Seed: 47, SlotSeconds: 60}
	drv := testDriver(sys, dcfg, nil)
	ccfg := testClusterConfig(0)
	p := NewPublisher(ccfg, drv, nil)
	r0 := NewReplica("r0", sys, dcfg, ccfg, nil)
	r1 := NewReplica("r1", sys, dcfg, ccfg, nil)

	p.Beat("r0", 0)
	p.Beat("r1", 0)
	pub, err := p.PublishSlot(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Replica{r0, r1} {
		if _, err := r.Apply(pub, 0); err != nil {
			t.Fatal(err)
		}
	}
	cp1 := p.PublishControl(controlWire(t, pub, 1.4, dcfg), 0)
	for _, r := range []*Replica{r0, r1} {
		if installed, err := r.Apply(cp1, 10); err != nil || !installed {
			t.Fatalf("%s correction: %v %v", r.ID, installed, err)
		}
	}
	// r1 partitions; only r0 sees the second correction.
	cp2 := p.PublishControl(controlWire(t, cp1, 0.9, dcfg), 0)
	if cp2 == nil || cp2.Sub != 2 {
		t.Fatalf("second correction: %+v", cp2)
	}
	if installed, err := r0.Apply(cp2, 20); err != nil || !installed {
		t.Fatalf("r0 second correction: %v %v", installed, err)
	}
	if r0.Sub() != 2 || r1.Sub() != 1 {
		t.Fatalf("subs (r0=%d, r1=%d), want (2, 1)", r0.Sub(), r1.Sub())
	}
	r1Rate := r1.Gateway().Table().Lanes[0].Rate
	if r1.Degraded() || !r1.Ready() {
		t.Fatal("partitioned replica dropped out of serving mid-slot")
	}
	// Mid-slot ticks (same slot) do not punish the partition.
	r1.Tick(0, 30)
	if r1.Staleness() != 0 || r1.Gateway().Table().Lanes[0].Rate != r1Rate {
		t.Fatal("same-slot tick disturbed the fenced table")
	}
	// Reconnection: the next slot epoch lands normally on both.
	pub2, err := p.PublishSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Replica{r0, r1} {
		if installed, err := r.Apply(pub2, 60); err != nil || !installed {
			t.Fatalf("%s rejoin epoch: %v %v", r.ID, installed, err)
		}
	}
	if r0.Sub() != 0 || r1.Sub() != 0 {
		t.Fatalf("post-rejoin subs (%d,%d), want (0,0)", r0.Sub(), r1.Sub())
	}
}

// TestStaleDowngradeAppliesExactlyOnce: the conservative-shed downgrade
// multiplies the last good plan by StaleFactor once — consecutive stale
// slot boundaries re-arm the same downgraded table instead of
// compounding Scale(StaleFactor) into factor^n oblivion.
func TestStaleDowngradeAppliesExactlyOnce(t *testing.T) {
	sys := testSystem()
	dcfg := dispatch.Config{Seed: 53, SlotSeconds: 60}
	drv := testDriver(sys, dcfg, nil)
	ccfg := testClusterConfig(0) // StaleSlots 2, StaleFactor 0.5
	p := NewPublisher(ccfg, drv, nil)
	r := NewReplica("r0", sys, dcfg, ccfg, nil)

	p.Beat("r0", 0)
	pub, err := p.PublishSlot(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Apply(pub, 0); err != nil {
		t.Fatal(err)
	}
	T := sys.Slot()
	full := make([]float64, len(r.Gateway().Table().Lanes))
	for i, ln := range r.Gateway().Table().Lanes {
		full[i] = ln.Rate
	}
	// Walk six missed boundaries: staleness 2 crosses the TTL; every
	// boundary after it must keep the rate at exactly full·StaleFactor.
	for slot := 1; slot <= 6; slot++ {
		r.Tick(slot, float64(slot)*T)
		if slot < int(ccfg.StaleSlots) {
			if r.Degraded() {
				t.Fatalf("slot %d: degraded before the TTL", slot)
			}
			continue
		}
		if !r.Degraded() {
			t.Fatalf("slot %d: not degraded past the TTL", slot)
		}
		for i, ln := range r.Gateway().Table().Lanes {
			want := full[i] * ccfg.StaleFactor
			if ln.Rate != want {
				t.Fatalf("slot %d lane %d rate %g, want exactly %g (downgrade compounded?)",
					slot, i, ln.Rate, want)
			}
		}
	}
	if r.Staleness() != 6 {
		t.Fatalf("staleness %d after six missed boundaries, want 6", r.Staleness())
	}
}

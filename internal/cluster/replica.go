package cluster

import (
	"fmt"
	"sync"

	"profitlb/internal/datacenter"
	"profitlb/internal/dispatch"
	"profitlb/internal/obs"
)

// Replica is one data-plane gateway in the fleet: it owns a Gateway,
// applies publications to it through the epoch fence, and manages its
// own staleness escalation. Apply and Tick are driven by one goroutine
// (the Fleet harness or a Subscriber); Handle on the embedded gateway
// stays the lock-free concurrent hot path.
type Replica struct {
	// ID is the replica's fleet identity (ReplicaID(i) in a Fleet).
	ID string

	cfg   Config
	dcfg  dispatch.Config
	gw    *dispatch.Gateway
	scope *obs.Scope

	// mu guards the bookkeeping below: the Fleet harness is
	// single-threaded, but in join-mode serving a Subscriber goroutine
	// applies publications while admin handlers read the state. The
	// request hot path never takes it — Handle only touches the gateway.
	mu sync.Mutex
	// applied describes the last publication that passed the fence.
	appliedEpoch uint64
	appliedSub   uint64
	appliedSlot  int
	fleetSize    int
	// staleness is how many slot boundaries have passed since the
	// applied slot; degraded marks the conservative-shed downgrade.
	staleness int
	degraded  bool
	// fencedNotMember counts publications skipped because the replica
	// was not in their membership (evicted but still pulling).
	fencedNotMember int64
}

// NewReplica builds a fleet replica with its own gateway over the
// topology. The scope may be nil or shared fleet-wide: gateway counters
// then aggregate across replicas while per-replica reconciliation reads
// Gateway.Stats directly.
func NewReplica(id string, sys *datacenter.System, dcfg dispatch.Config, cfg Config, scope *obs.Scope) *Replica {
	return &Replica{
		ID:          id,
		cfg:         cfg.WithDefaults(),
		dcfg:        dcfg.WithDefaults(),
		gw:          dispatch.NewGateway(sys, dcfg, scope),
		scope:       scope,
		appliedSlot: -1,
	}
}

// Gateway returns the replica's serving gateway.
func (r *Replica) Gateway() *dispatch.Gateway { return r.gw }

// Ready reports whether the replica has applied its first plan epoch —
// the /readyz condition: before this it can only answer Invalid.
func (r *Replica) Ready() bool { return r.gw.Table() != nil }

// Epoch returns the last applied plan epoch.
func (r *Replica) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.appliedEpoch
}

// Sub returns the last applied sub-epoch within the applied epoch.
func (r *Replica) Sub() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.appliedSub
}

// Staleness returns how many slot boundaries the replica has served
// past its applied slot (0 when fresh).
func (r *Replica) Staleness() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.staleness
}

// Degraded reports whether the replica is in conservative-shed serving.
func (r *Replica) Degraded() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.degraded
}

// FencedNotMember returns how many publications were skipped because
// this replica was absent from their membership.
func (r *Replica) FencedNotMember() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fencedNotMember
}

// Apply runs one publication through the epoch fence and, if it
// advances, installs this replica's subdivision of it at virtual time
// now. It returns whether the publication was installed; fenced
// deliveries (stale, duplicate, not-a-member) are counted and traced
// but never disturb the serving state. Corrupt payloads are rejected
// with an error before touching the gateway.
func (r *Replica) Apply(pub *Publication, now float64) (bool, error) {
	if pub == nil || pub.Table == nil {
		return false, fmt.Errorf("cluster: %s received an empty publication", r.ID)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := -1
	for i, id := range pub.Members {
		if id == r.ID {
			idx = i
			break
		}
	}
	if idx < 0 {
		r.fencedNotMember++
		r.emitFenced(pub, "not-member")
		return false, nil
	}
	// Fence before the rebuild: a stale (epoch, sub-epoch) pair must not
	// cost a compile, and must not be able to fail one either.
	if curE, curS := r.gw.Epoch(), r.gw.Sub(); pub.Epoch < curE || (pub.Epoch == curE && pub.Sub <= curS) {
		reason := "stale"
		if pub.Epoch == curE && pub.Sub == curS {
			reason = "duplicate"
		}
		r.emitFenced(pub, reason)
		// The gateway owns the fence counters; route through it with the
		// pair alone so Stats and metrics agree with the trace.
		r.gw.InstallIfNewer(&dispatch.Table{Epoch: pub.Epoch, Sub: pub.Sub}, now, 0)
		return false, nil
	}
	full, err := dispatch.FromWire(pub.Table)
	if err != nil {
		return false, fmt.Errorf("cluster: %s rejected publication epoch %d: %w", r.ID, pub.Epoch, err)
	}
	sub, err := full.Subdivide(idx, len(pub.Members), r.dcfg)
	if err != nil {
		return false, fmt.Errorf("cluster: %s subdividing epoch %d: %w", r.ID, pub.Epoch, err)
	}
	if !r.gw.InstallIfNewer(sub, now, 0) {
		return false, nil // lost a race with a newer epoch; fence counted
	}
	r.appliedEpoch = pub.Epoch
	r.appliedSub = pub.Sub
	r.appliedSlot = pub.Slot
	r.fleetSize = len(pub.Members)
	r.staleness = 0
	r.degraded = false
	if r.scope.Enabled() {
		r.scope.Gauge("cluster_replica_epoch", obs.L("replica", r.ID)).Set(float64(pub.Epoch))
		r.scope.Gauge("cluster_replica_staleness", obs.L("replica", r.ID)).Set(0)
		r.scope.Emit(obs.Event{
			Kind: obs.KindEpochApplied, Slot: pub.Slot, Planner: r.ID,
			Values: map[string]float64{
				"epoch":   float64(pub.Epoch),
				"sub":     float64(pub.Sub),
				"members": float64(len(pub.Members)),
				"index":   float64(idx),
			},
		})
	}
	return true, nil
}

// Tick closes the replica's view of a slot boundary: if no epoch for
// slot (or later) has been applied, staleness grows and the stale plan
// is re-armed for the new slot — same table, same epoch, re-stamped to
// the current slot so the token buckets reset to a fresh slot budget (a
// slot boundary renews the budget even when the plan could not be
// renewed; carrying a depleted bucket into the new slot would shed
// traffic the stale plan still pays for). Crossing the TTL downgrades
// the replica to conservative-shed serving instead — the last good plan
// rescaled to StaleFactor of its budget. A replica that has never
// applied a plan has nothing to re-arm and stays not-ready.
func (r *Replica) Tick(slot int, now float64) {
	if !r.Ready() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.appliedSlot >= slot {
		r.staleness = 0
		return
	}
	r.staleness = slot - r.appliedSlot
	if r.scope.Enabled() {
		r.scope.Gauge("cluster_replica_staleness", obs.L("replica", r.ID)).Set(float64(r.staleness))
	}
	cur := r.gw.Table()
	if r.staleness < r.cfg.StaleSlots || r.degraded {
		renewed := *cur
		renewed.Slot = slot // new slot: buckets reset to a full budget
		r.gw.Install(&renewed, now, 0)
		return
	}
	scaled := cur.Scale(r.cfg.StaleFactor, "stale", r.dcfg)
	scaled.Slot = slot // the downgrade lands on a boundary: fresh (scaled) budget
	r.gw.Install(scaled, now, 0)
	r.degraded = true
	if r.scope.Enabled() {
		r.scope.Counter("cluster_stale_downgrades_total").Inc()
		r.scope.Emit(obs.Event{
			Kind: obs.KindStaleServing, Slot: slot, Planner: r.ID, Staleness: r.staleness,
			Values: map[string]float64{
				"epoch":  float64(r.appliedEpoch),
				"factor": r.cfg.StaleFactor,
			},
		})
	}
}

// emitFenced traces one fenced delivery.
func (r *Replica) emitFenced(pub *Publication, reason string) {
	if !r.scope.Enabled() {
		return
	}
	r.scope.Emit(obs.Event{
		Kind: obs.KindEpochFenced, Slot: pub.Slot, Planner: r.ID, Reason: reason,
		Values: map[string]float64{
			"epoch":   float64(pub.Epoch),
			"sub":     float64(pub.Sub),
			"current": float64(r.gw.Epoch()),
		},
	})
}

package market

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmbeddedTracesValid(t *testing.T) {
	for _, tr := range Locations() {
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", tr.Name, err)
		}
		if tr.Len() != 24 {
			t.Errorf("%s: len = %d, want 24", tr.Name, tr.Len())
		}
	}
}

func TestEmbeddedTracesDiffer(t *testing.T) {
	// The multi-electricity-market premise: locations must not be
	// identical, and there must be real spread to arbitrage.
	spread := Spread(Locations(), 24)
	var maxSpread float64
	for _, s := range spread {
		if s > maxSpread {
			maxSpread = s
		}
	}
	if maxSpread < 0.02 {
		t.Fatalf("max spread %g too small to drive the paper's results", maxSpread)
	}
}

func TestVibrationWindow(t *testing.T) {
	// Paper Section VII: "prices in the 14:00-19:00 period are
	// representative in terms of large price vibration" for Houston and
	// Mountain View. Verify hour-to-hour movement is largest there.
	for _, tr := range []*PriceTrace{Houston(), MountainView()} {
		vib := func(lo, hi int) float64 {
			var v float64
			for h := lo; h < hi; h++ {
				v += math.Abs(tr.At(h+1) - tr.At(h))
			}
			return v / float64(hi-lo)
		}
		if vib(14, 19) <= vib(0, 6) {
			t.Errorf("%s: 14-19h vibration %g not above night %g", tr.Name, vib(14, 19), vib(0, 6))
		}
	}
}

func TestAtWraps(t *testing.T) {
	tr := Houston()
	if tr.At(24) != tr.At(0) || tr.At(25) != tr.At(1) {
		t.Fatal("At must wrap daily")
	}
	if tr.At(-1) != tr.At(23) {
		t.Fatal("At must wrap negative slots")
	}
	empty := &PriceTrace{}
	if empty.At(3) != 0 {
		t.Fatal("empty trace should read 0")
	}
}

func TestWindow(t *testing.T) {
	tr := Houston()
	w := tr.Window(14, 6)
	if w.Len() != 6 {
		t.Fatalf("window len = %d", w.Len())
	}
	for i := 0; i < 6; i++ {
		if w.At(i) != tr.At(14+i) {
			t.Fatalf("window slot %d mismatch", i)
		}
	}
}

func TestStats(t *testing.T) {
	tr := &PriceTrace{Name: "x", Prices: []float64{1, 2, 3}}
	min, max, mean := tr.Stats()
	if min != 1 || max != 3 || mean != 2 {
		t.Fatalf("Stats = %g %g %g", min, max, mean)
	}
	empty := &PriceTrace{}
	if a, b, c := empty.Stats(); a != 0 || b != 0 || c != 0 {
		t.Fatal("empty Stats should be zeros")
	}
}

func TestValidateRejectsBadPrices(t *testing.T) {
	cases := []*PriceTrace{
		{Name: "empty"},
		{Name: "zero", Prices: []float64{0.05, 0}},
		{Name: "neg", Prices: []float64{-0.01}},
		{Name: "nan", Prices: []float64{math.NaN()}},
	}
	for _, tr := range cases {
		if tr.Validate() == nil {
			t.Errorf("%s: expected validation error", tr.Name)
		}
	}
}

func TestSyntheticDefaults(t *testing.T) {
	tr := Synthetic(SyntheticConfig{Name: "syn", Seed: 1})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 24 {
		t.Fatalf("len = %d, want 24", tr.Len())
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(SyntheticConfig{Seed: 42})
	b := Synthetic(SyntheticConfig{Seed: 42})
	for i := range a.Prices {
		if a.Prices[i] != b.Prices[i] {
			t.Fatal("same seed must reproduce the same trace")
		}
	}
	c := Synthetic(SyntheticConfig{Seed: 43})
	same := true
	for i := range a.Prices {
		if a.Prices[i] != c.Prices[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestSyntheticPeakNearConfiguredHour(t *testing.T) {
	tr := Synthetic(SyntheticConfig{Seed: 5, PeakHour: 16, Noise: -1})
	// Noise<0 clamps to 0 → pure sinusoid; argmax must be hour 16.
	best, bestV := -1, 0.0
	for h, v := range tr.Prices {
		if v > bestV {
			best, bestV = h, v
		}
	}
	if best != 16 {
		t.Fatalf("peak at %d, want 16", best)
	}
}

func TestSyntheticAlwaysPositiveQuick(t *testing.T) {
	f := func(seed int64, base float64) bool {
		b := math.Mod(math.Abs(base), 0.5)
		tr := Synthetic(SyntheticConfig{Seed: seed, Base: b, Hours: 48})
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSpreadEmpty(t *testing.T) {
	s := Spread(nil, 3)
	for _, v := range s {
		if v != 0 {
			t.Fatal("spread of no traces should be 0")
		}
	}
}

func TestPriceCSVRoundTrip(t *testing.T) {
	tr := Houston()
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("houston", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatal("length changed")
	}
	for i := range tr.Prices {
		if back.Prices[i] != tr.Prices[i] {
			t.Fatal("values changed")
		}
	}
}

func TestPriceReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"hour,price\n",
		"hour,price\n0,abc\n",
		"hour,price\n0,-1\n",
		"hour,price,extra\n0,1,2\n",
	}
	for i, in := range cases {
		if _, err := ReadCSV("x", strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

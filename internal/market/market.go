// Package market models the multi-electricity-market environment of the
// paper: each data-center location has its own electricity price trace
// that varies over the day (paper Fig. 1), and prices are held constant
// within a scheduling slot (the paper cites the hourly adjustment of
// deregulated wholesale markets).
//
// The paper uses real price histories from Houston TX, Mountain View CA
// and Atlanta GA. Those exact series are not redistributable, so this
// package embeds hand-written hourly tables with the same qualitative
// structure — distinct bases per location, afternoon peaks, and the large
// 14:00–19:00 price vibration the paper exploits in Section VII — plus a
// seeded synthetic generator for arbitrary experiments.
package market

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
)

// PriceTrace is an hourly electricity price series for one location, in
// dollars per kWh. Slots index into the series modulo its length, so a
// 24-entry trace repeats daily.
type PriceTrace struct {
	Name   string
	Prices []float64
}

// ErrEmptyTrace is returned when a trace has no prices.
var ErrEmptyTrace = errors.New("market: price trace has no entries")

// Validate checks that the trace is usable: non-empty and positive.
func (p *PriceTrace) Validate() error {
	if len(p.Prices) == 0 {
		return ErrEmptyTrace
	}
	for i, v := range p.Prices {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("market: trace %q slot %d has invalid price %g", p.Name, i, v)
		}
	}
	return nil
}

// At returns the price in effect during the given slot (wrapping).
func (p *PriceTrace) At(slot int) float64 {
	n := len(p.Prices)
	if n == 0 {
		return 0
	}
	i := slot % n
	if i < 0 {
		i += n
	}
	return p.Prices[i]
}

// Len returns the number of slots in the trace.
func (p *PriceTrace) Len() int { return len(p.Prices) }

// Window returns a sub-trace of n slots starting at slot start (wrapping),
// used e.g. to select the paper's 14:00–19:00 evaluation window.
func (p *PriceTrace) Window(start, n int) *PriceTrace {
	out := &PriceTrace{Name: fmt.Sprintf("%s[%d:+%d]", p.Name, start, n)}
	for i := 0; i < n; i++ {
		out.Prices = append(out.Prices, p.At(start+i))
	}
	return out
}

// Stats returns the minimum, maximum and mean price of the trace.
func (p *PriceTrace) Stats() (min, max, mean float64) {
	if len(p.Prices) == 0 {
		return 0, 0, 0
	}
	min, max = math.Inf(1), math.Inf(-1)
	var sum float64
	for _, v := range p.Prices {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	return min, max, sum / float64(len(p.Prices))
}

// Houston returns the embedded 24-hour stand-in for the Houston, TX trace
// of paper Fig. 1: cheap nights, a steep afternoon ramp, and strong
// vibration between 14:00 and 19:00.
func Houston() *PriceTrace {
	return &PriceTrace{Name: "Houston", Prices: []float64{
		0.042, 0.040, 0.038, 0.037, 0.038, 0.041, // 00–05
		0.048, 0.057, 0.066, 0.074, 0.083, 0.092, // 06–11
		0.101, 0.112, 0.148, 0.095, 0.139, 0.088, // 12–17 (vibration)
		0.126, 0.079, 0.068, 0.058, 0.050, 0.045, // 18–23
	}}
}

// MountainView returns the embedded stand-in for the Mountain View, CA
// trace: higher base, moderate evening peak, its own 14:00–19:00 swing
// out of phase with Houston.
func MountainView() *PriceTrace {
	return &PriceTrace{Name: "MountainView", Prices: []float64{
		0.061, 0.059, 0.058, 0.057, 0.058, 0.060,
		0.064, 0.069, 0.075, 0.081, 0.086, 0.090,
		0.094, 0.098, 0.081, 0.132, 0.077, 0.128,
		0.074, 0.118, 0.092, 0.079, 0.070, 0.064,
	}}
}

// Atlanta returns the embedded stand-in for the Atlanta, GA trace:
// flatter profile with a mild late-afternoon peak.
func Atlanta() *PriceTrace {
	return &PriceTrace{Name: "Atlanta", Prices: []float64{
		0.055, 0.053, 0.052, 0.051, 0.052, 0.054,
		0.058, 0.062, 0.066, 0.070, 0.074, 0.077,
		0.080, 0.083, 0.086, 0.088, 0.089, 0.087,
		0.083, 0.077, 0.071, 0.065, 0.060, 0.057,
	}}
}

// Locations returns the three embedded paper locations in paper order
// (Houston, Mountain View, Atlanta).
func Locations() []*PriceTrace {
	return []*PriceTrace{Houston(), MountainView(), Atlanta()}
}

// SyntheticConfig parameterizes the seeded diurnal price generator.
type SyntheticConfig struct {
	Name      string
	Hours     int     // trace length; 0 means 24
	Base      float64 // mean price, $/kWh; 0 means 0.07
	Amplitude float64 // diurnal swing around the base; 0 means 0.4*Base
	Noise     float64 // uniform per-hour noise amplitude; 0 means 0.1*Base
	PeakHour  float64 // hour of the diurnal maximum; 0 means 16
	Seed      int64
}

// Synthetic generates a diurnal price trace: a sinusoid peaking at
// PeakHour plus seeded uniform noise, clamped to stay strictly positive.
func Synthetic(cfg SyntheticConfig) *PriceTrace {
	if cfg.Hours <= 0 {
		cfg.Hours = 24
	}
	if cfg.Base <= 0 {
		cfg.Base = 0.07
	}
	if cfg.Amplitude <= 0 {
		cfg.Amplitude = 0.4 * cfg.Base
	}
	if cfg.Noise < 0 {
		cfg.Noise = 0
	} else if cfg.Noise == 0 {
		cfg.Noise = 0.1 * cfg.Base
	}
	if cfg.PeakHour == 0 {
		cfg.PeakHour = 16
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &PriceTrace{Name: cfg.Name, Prices: make([]float64, cfg.Hours)}
	for h := range p.Prices {
		phase := 2 * math.Pi * (float64(h) - cfg.PeakHour) / 24
		v := cfg.Base + cfg.Amplitude*math.Cos(phase) + cfg.Noise*(2*rng.Float64()-1)
		if v < 0.2*cfg.Base {
			v = 0.2 * cfg.Base
		}
		p.Prices[h] = v
	}
	return p
}

// Spread returns, per slot, the difference between the most and least
// expensive of the given traces — the cross-location arbitrage opportunity
// the Optimized dispatcher exploits.
func Spread(traces []*PriceTrace, slots int) []float64 {
	out := make([]float64, slots)
	for s := 0; s < slots; s++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, tr := range traces {
			v := tr.At(s)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if len(traces) == 0 {
			lo, hi = 0, 0
		}
		out[s] = hi - lo
	}
	return out
}

// WriteCSV writes the trace as CSV with header "hour,price".
func (p *PriceTrace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"hour", "price"}); err != nil {
		return err
	}
	for h, v := range p.Prices {
		if err := cw.Write([]string{strconv.Itoa(h), strconv.FormatFloat(v, 'g', -1, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace previously written by WriteCSV (or any
// two-column hour,price CSV with a header row), validating the result.
func ReadCSV(name string, r io.Reader) (*PriceTrace, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("market: reading csv: %w", err)
	}
	if len(recs) < 2 {
		return nil, ErrEmptyTrace
	}
	out := &PriceTrace{Name: name}
	for _, rec := range recs[1:] {
		if len(rec) != 2 {
			return nil, fmt.Errorf("market: row has %d fields, want 2", len(rec))
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("market: parsing price %q: %w", rec[1], err)
		}
		out.Prices = append(out.Prices, v)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// Package advisor turns the planner into a capacity-planning instrument.
// Given a workload/price horizon it answers the provider's expansion
// question: which data center should grow, by how much does each added
// server raise net profit, and how long until the hardware pays for
// itself. Two signals are combined: the exact what-if (re-simulating the
// horizon with an enlarged fleet) and the cheap dual signal (the
// accumulated shadow price of CPU share from the slot LPs, see
// core.Sensitivity).
package advisor

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"profitlb/internal/core"
	"profitlb/internal/sim"
)

// Config parameterizes an advice run.
type Config struct {
	// Sim is the horizon to evaluate (system, traces, prices, slots).
	Sim sim.Config
	// AddServers is the expansion candidate evaluated per center
	// (default 2).
	AddServers int
	// ServerCost is the one-time dollar cost of commissioning one server;
	// it drives the payback estimate (0 = payback not computed).
	ServerCost float64
}

// Recommendation is the verdict for one data center.
type Recommendation struct {
	Center int
	Name   string
	// AddedServers is the evaluated expansion size.
	AddedServers int
	// ProfitGain is the horizon net-profit increase from the expansion.
	ProfitGain float64
	// GainPerServer is ProfitGain / AddedServers.
	GainPerServer float64
	// ShareDual is the accumulated shadow price of per-server CPU share
	// over the horizon — the cheap signal that needs no re-simulation.
	ShareDual float64
	// PaybackSlots estimates how many slots of expanded operation recoup
	// ServerCost per server (+Inf when the expansion gains nothing).
	PaybackSlots float64
}

// Advice is the full report.
type Advice struct {
	// BaselineProfit is the horizon profit at the current fleet.
	BaselineProfit float64
	// Recommendations are sorted by GainPerServer, best first.
	Recommendations []Recommendation
}

// Best returns the top recommendation (zero value if none gained).
func (a *Advice) Best() Recommendation {
	if len(a.Recommendations) == 0 {
		return Recommendation{Center: -1}
	}
	return a.Recommendations[0]
}

// ErrNoCenters is returned for an empty topology.
var ErrNoCenters = errors.New("advisor: system has no data centers")

// Advise evaluates expanding each center by AddServers servers across the
// configured horizon under the Optimized planner.
func Advise(cfg Config) (*Advice, error) {
	if err := cfg.Sim.Validate(); err != nil {
		return nil, err
	}
	if cfg.Sim.Sys.L() == 0 {
		return nil, ErrNoCenters
	}
	add := cfg.AddServers
	if add <= 0 {
		add = 2
	}
	baseline, err := sim.Run(cfg.Sim, core.NewOptimized())
	if err != nil {
		return nil, fmt.Errorf("advisor: baseline: %w", err)
	}
	duals, err := accumulateShareDuals(cfg.Sim)
	if err != nil {
		return nil, err
	}
	advice := &Advice{BaselineProfit: baseline.TotalNetProfit()}
	// The per-center what-ifs are independent re-simulations over cloned
	// systems: evaluate them concurrently.
	L := cfg.Sim.Sys.L()
	recs := make([]Recommendation, L)
	errs := make([]error, L)
	var wg sync.WaitGroup
	for l := 0; l < L; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			grown := cfg.Sim
			grown.Sys = cfg.Sim.Sys.Clone()
			grown.Sys.Centers[l].Servers += add
			rep, err := sim.Run(grown, core.NewOptimized())
			if err != nil {
				errs[l] = fmt.Errorf("advisor: expanding center %d: %w", l, err)
				return
			}
			gain := rep.TotalNetProfit() - advice.BaselineProfit
			recs[l] = Recommendation{
				Center:        l,
				Name:          cfg.Sim.Sys.Centers[l].Name,
				AddedServers:  add,
				ProfitGain:    gain,
				GainPerServer: gain / float64(add),
				ShareDual:     duals[l],
				PaybackSlots:  paybackSlots(gain, add, cfg.ServerCost, cfg.Sim.Slots),
			}
		}(l)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	advice.Recommendations = recs
	sort.SliceStable(advice.Recommendations, func(i, j int) bool {
		return advice.Recommendations[i].GainPerServer > advice.Recommendations[j].GainPerServer
	})
	return advice, nil
}

// paybackSlots converts a horizon gain into the number of slots needed to
// amortize the hardware.
func paybackSlots(gain float64, add int, serverCost float64, slots int) float64 {
	if serverCost <= 0 {
		return 0
	}
	perSlotPerServer := gain / float64(add) / float64(slots)
	if perSlotPerServer <= 0 {
		return math.Inf(1)
	}
	return serverCost / perSlotPerServer
}

// accumulateShareDuals sums each center's share shadow price over the
// horizon.
func accumulateShareDuals(cfg sim.Config) ([]float64, error) {
	sys := cfg.Sys
	K, S, L := sys.K(), sys.S(), sys.L()
	out := make([]float64, L)
	planner := core.NewOptimized()
	for slot := 0; slot < cfg.Slots; slot++ {
		abs := cfg.StartSlot + slot
		arr := make([][]float64, S)
		for s := 0; s < S; s++ {
			arr[s] = make([]float64, K)
			for k := 0; k < K; k++ {
				arr[s][k] = cfg.Traces[s].At(abs, k)
			}
		}
		prices := make([]float64, L)
		for l := 0; l < L; l++ {
			prices[l] = cfg.Prices[l].At(abs)
		}
		sens, err := planner.Sensitivity(&core.Input{Sys: sys, Arrivals: arr, Prices: prices})
		if err != nil {
			return nil, fmt.Errorf("advisor: duals at slot %d: %w", slot, err)
		}
		for l := 0; l < L; l++ {
			out[l] += sens.ShareValue[l]
		}
	}
	return out, nil
}

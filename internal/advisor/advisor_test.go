package advisor

import (
	"math"
	"testing"

	"profitlb/internal/datacenter"
	"profitlb/internal/market"
	"profitlb/internal/sim"
	"profitlb/internal/tuf"
	"profitlb/internal/workload"
)

// overloadedSystem has one scarce center (cheap) and one ample center
// (expensive): expansion should clearly favour the scarce cheap one.
func overloadedConfig() sim.Config {
	sys := &datacenter.System{
		Classes: []datacenter.RequestClass{
			{Name: "web", TUF: tuf.MustNew([]tuf.Level{{Utility: 10, Deadline: 0.01}}), TransferCostPerMile: 0.0002},
		},
		FrontEnds: []datacenter.FrontEnd{{Name: "fe", DistanceMiles: []float64{200, 400}}},
		Centers: []datacenter.DataCenter{
			{Name: "scarce-cheap", Servers: 2, Capacity: 1, ServiceRate: []float64{1000}, EnergyPerRequest: []float64{2}},
			{Name: "ample-pricey", Servers: 8, Capacity: 1, ServiceRate: []float64{1000}, EnergyPerRequest: []float64{9}},
		},
	}
	return sim.Config{
		Sys:    sys,
		Traces: []*workload.Trace{workload.Constant("fe", []float64{9000}, 4)},
		Prices: []*market.PriceTrace{market.Houston(), market.Houston()},
		Slots:  4,
	}
}

func TestAdviseRanksScarceCheapCenterFirst(t *testing.T) {
	adv, err := Advise(Config{Sim: overloadedConfig(), AddServers: 2, ServerCost: 500})
	if err != nil {
		t.Fatal(err)
	}
	if adv.BaselineProfit <= 0 {
		t.Fatalf("baseline profit %g", adv.BaselineProfit)
	}
	best := adv.Best()
	if best.Name != "scarce-cheap" {
		t.Fatalf("best expansion = %s, want scarce-cheap (recs %+v)", best.Name, adv.Recommendations)
	}
	if best.ProfitGain <= 0 {
		t.Fatalf("best gain %g, want positive", best.ProfitGain)
	}
	if best.GainPerServer != best.ProfitGain/2 {
		t.Fatal("gain per server inconsistent")
	}
	if best.PaybackSlots <= 0 || math.IsInf(best.PaybackSlots, 1) {
		t.Fatalf("payback %g, want finite positive", best.PaybackSlots)
	}
	// The dual signal must agree with the what-if ranking.
	if best.ShareDual <= adv.Recommendations[len(adv.Recommendations)-1].ShareDual {
		t.Fatalf("dual signal disagrees: best %g vs worst %g",
			best.ShareDual, adv.Recommendations[len(adv.Recommendations)-1].ShareDual)
	}
}

func TestAdviseUnderloadedNoGain(t *testing.T) {
	cfg := overloadedConfig()
	cfg.Traces = []*workload.Trace{workload.Constant("fe", []float64{500}, 4)}
	adv, err := Advise(Config{Sim: cfg, ServerCost: 500})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range adv.Recommendations {
		if rec.ProfitGain > 1e-6 {
			t.Fatalf("underloaded expansion gained %g at %s", rec.ProfitGain, rec.Name)
		}
		if !math.IsInf(rec.PaybackSlots, 1) {
			t.Fatalf("payback should be +Inf, got %g", rec.PaybackSlots)
		}
	}
}

func TestAdviseDefaultsAndErrors(t *testing.T) {
	adv, err := Advise(Config{Sim: overloadedConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Best().AddedServers != 2 {
		t.Fatalf("default AddServers = %d, want 2", adv.Best().AddedServers)
	}
	// ServerCost 0: payback not computed.
	if adv.Best().PaybackSlots != 0 {
		t.Fatal("payback should be 0 when ServerCost unset")
	}
	bad := Config{Sim: sim.Config{}}
	if _, err := Advise(bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestAdviseDoesNotMutateSystem(t *testing.T) {
	cfg := overloadedConfig()
	before := cfg.Sys.Centers[0].Servers
	if _, err := Advise(Config{Sim: cfg}); err != nil {
		t.Fatal(err)
	}
	if cfg.Sys.Centers[0].Servers != before {
		t.Fatal("Advise mutated the input system")
	}
}

func TestBestEmptyAdvice(t *testing.T) {
	a := &Advice{}
	if a.Best().Center != -1 {
		t.Fatal("empty advice should return sentinel")
	}
}
